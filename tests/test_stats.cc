/**
 * @file
 * Unit tests for statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "support/logging.hh"
#include "support/stats.hh"

namespace bpred
{
namespace
{

TEST(RatioStat, Empty)
{
    RatioStat stat;
    EXPECT_EQ(stat.events(), 0u);
    EXPECT_EQ(stat.total(), 0u);
    EXPECT_DOUBLE_EQ(stat.ratio(), 0.0);
}

TEST(RatioStat, Counting)
{
    RatioStat stat;
    stat.sample(true);
    stat.sample(false);
    stat.sample(true);
    stat.sample(false);
    EXPECT_EQ(stat.events(), 2u);
    EXPECT_EQ(stat.total(), 4u);
    EXPECT_DOUBLE_EQ(stat.ratio(), 0.5);
    EXPECT_DOUBLE_EQ(stat.percent(), 50.0);
}

TEST(RatioStat, Merge)
{
    RatioStat a;
    RatioStat b;
    a.sample(true);
    a.sample(false);
    b.sample(true);
    b.sample(true);
    a.merge(b);
    EXPECT_EQ(a.events(), 3u);
    EXPECT_EQ(a.total(), 4u);
}

TEST(RatioStat, Reset)
{
    RatioStat stat;
    stat.sample(true);
    stat.reset();
    EXPECT_EQ(stat.total(), 0u);
    EXPECT_DOUBLE_EQ(stat.ratio(), 0.0);
}

TEST(RunningStat, Empty)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat stat;
    stat.sample(5.0);
    EXPECT_EQ(stat.count(), 1u);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stat.min(), 5.0);
    EXPECT_DOUBLE_EQ(stat.max(), 5.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat stat;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stat.sample(v);
    }
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_NEAR(stat.variance(), 4.0, 1e-12);
    EXPECT_NEAR(stat.stddev(), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
    EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStat, Reset)
{
    RunningStat stat;
    stat.sample(1.0);
    stat.reset();
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_DOUBLE_EQ(stat.sum(), 0.0);
}

TEST(Histogram, Empty)
{
    Histogram histogram;
    EXPECT_EQ(histogram.total(), 0u);
    EXPECT_EQ(histogram.numKeys(), 0u);
    EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
    EXPECT_EQ(histogram.percentile(0.5), 0u);
}

TEST(Histogram, CountsAndMean)
{
    Histogram histogram;
    histogram.sample(1);
    histogram.sample(1);
    histogram.sample(3);
    histogram.sampleN(5, 2);
    EXPECT_EQ(histogram.total(), 5u);
    EXPECT_EQ(histogram.count(1), 2u);
    EXPECT_EQ(histogram.count(3), 1u);
    EXPECT_EQ(histogram.count(5), 2u);
    EXPECT_EQ(histogram.count(7), 0u);
    EXPECT_DOUBLE_EQ(histogram.mean(), (1 + 1 + 3 + 5 + 5) / 5.0);
}

TEST(Histogram, Percentiles)
{
    Histogram histogram;
    for (u64 key = 1; key <= 100; ++key) {
        histogram.sample(key);
    }
    EXPECT_EQ(histogram.percentile(0.5), 50u);
    EXPECT_EQ(histogram.percentile(0.9), 90u);
    EXPECT_EQ(histogram.percentile(1.0), 100u);
    EXPECT_EQ(histogram.percentile(0.01), 1u);
}

TEST(Histogram, PercentileRejectsOutOfRangeFraction)
{
    Histogram histogram;
    histogram.sample(1);
    EXPECT_THROW(histogram.percentile(0.0), FatalError);
    EXPECT_THROW(histogram.percentile(-0.1), FatalError);
    EXPECT_THROW(histogram.percentile(1.5), FatalError);
    EXPECT_THROW(histogram.percentile(std::nan("")), FatalError);
    EXPECT_EQ(histogram.percentile(1.0), 1u); // boundary is valid
}

TEST(Histogram, CumulativeFraction)
{
    Histogram histogram;
    histogram.sampleN(10, 5);
    histogram.sampleN(20, 5);
    EXPECT_DOUBLE_EQ(histogram.cumulativeFraction(9), 0.0);
    EXPECT_DOUBLE_EQ(histogram.cumulativeFraction(10), 0.5);
    EXPECT_DOUBLE_EQ(histogram.cumulativeFraction(20), 1.0);
    EXPECT_DOUBLE_EQ(histogram.cumulativeFraction(1000), 1.0);
}

TEST(Histogram, SortedPairs)
{
    Histogram histogram;
    histogram.sample(5);
    histogram.sample(2);
    histogram.sample(5);
    const auto pairs = histogram.sorted();
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0].first, 2u);
    EXPECT_EQ(pairs[0].second, 1u);
    EXPECT_EQ(pairs[1].first, 5u);
    EXPECT_EQ(pairs[1].second, 2u);
}

TEST(Histogram, Log2Buckets)
{
    Histogram histogram;
    histogram.sample(0);  // bucket 0
    histogram.sample(1);  // bucket 0
    histogram.sample(2);  // bucket 1
    histogram.sample(3);  // bucket 1
    histogram.sample(4);  // bucket 2
    histogram.sample(7);  // bucket 2
    histogram.sample(8);  // bucket 3
    const auto buckets = histogram.log2Buckets();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 2u);
    EXPECT_EQ(buckets[2], 2u);
    EXPECT_EQ(buckets[3], 1u);
}

TEST(Histogram, Reset)
{
    Histogram histogram;
    histogram.sample(1);
    histogram.reset();
    EXPECT_EQ(histogram.total(), 0u);
    EXPECT_EQ(histogram.numKeys(), 0u);
}

} // namespace
} // namespace bpred
