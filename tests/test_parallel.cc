/**
 * @file
 * SweepRunner / parallelMap contract: parallel sweep execution must
 * be observably identical to the serial loop it replaces —
 * element-wise identical results in submission order, at any thread
 * count — and one bad job must never wedge the pool.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "predictors/gshare.hh"
#include "sim/driver.hh"
#include "sim/factory.hh"
#include "sim/parallel.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "trace/trace.hh"

namespace bpred
{
namespace
{

Trace
parallelTrace(u64 seed)
{
    Trace trace("parallel");
    Rng rng(seed);
    for (int i = 0; i < 30000; ++i) {
        const Addr pc = 0x4000 + 4 * rng.uniformInt(500);
        if (rng.chance(0.15)) {
            trace.appendUnconditional(pc + 0x20000);
        } else {
            const bool outcome = (pc >> 2) % 3 == 0
                ? rng.chance(0.85)
                : (i & 4) != 0;
            trace.appendConditional(pc, outcome);
        }
    }
    return trace;
}

/** RAII guard restoring BPRED_THREADS on scope exit. */
class ThreadsEnvGuard
{
  public:
    explicit ThreadsEnvGuard(const char *value)
    {
        const char *old = std::getenv("BPRED_THREADS");
        hadOld = old != nullptr;
        if (hadOld) {
            oldValue = old;
        }
        if (value == nullptr) {
            unsetenv("BPRED_THREADS");
        } else {
            setenv("BPRED_THREADS", value, 1);
        }
    }

    ~ThreadsEnvGuard()
    {
        if (hadOld) {
            setenv("BPRED_THREADS", oldValue.c_str(), 1);
        } else {
            unsetenv("BPRED_THREADS");
        }
    }

  private:
    bool hadOld = false;
    std::string oldValue;
};

TEST(ResolveThreadCount, ExplicitRequestWins)
{
    ThreadsEnvGuard guard("7");
    EXPECT_EQ(resolveThreadCount(2), 2u);
}

TEST(ResolveThreadCount, ReadsEnvironmentVariable)
{
    ThreadsEnvGuard guard("3");
    EXPECT_EQ(resolveThreadCount(), 3u);
}

TEST(ResolveThreadCount, JunkEnvironmentFallsBack)
{
    ThreadsEnvGuard guard("not-a-number");
    EXPECT_GE(resolveThreadCount(), 1u);
}

TEST(ResolveThreadCount, ZeroEnvironmentFallsBack)
{
    ThreadsEnvGuard guard("0");
    EXPECT_GE(resolveThreadCount(), 1u);
}

TEST(ResolveThreadCount, UnsetDefaultsToHardware)
{
    ThreadsEnvGuard guard(nullptr);
    EXPECT_GE(resolveThreadCount(), 1u);
}

TEST(SweepRunner, MatchesSerialSimulationForEverySpec)
{
    const std::vector<std::string> specs = {
        "bimodal:8",       "gshare:8:6",    "gselect:8:4",
        "pag:8:6",         "hybrid:8:6",    "gskewed:3:8:6",
        "gskewed:3:8:6:total", "egskew:8:6", "agree:8:6:8",
        "falru:1024:6",
    };
    const Trace trace = parallelTrace(1);

    SweepRunner runner(4);
    for (const std::string &spec : specs) {
        runner.enqueue(spec, trace);
    }
    EXPECT_EQ(runner.pending(), specs.size());
    const std::vector<SimResult> parallel = runner.run();
    EXPECT_EQ(runner.pending(), 0u);

    ASSERT_EQ(parallel.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto predictor = makePredictor(specs[i]);
        const SimResult serial = simulate(*predictor, trace);
        EXPECT_EQ(parallel[i].predictorName, serial.predictorName)
            << specs[i];
        EXPECT_EQ(parallel[i].traceName, serial.traceName);
        EXPECT_EQ(parallel[i].conditionals, serial.conditionals)
            << specs[i];
        EXPECT_EQ(parallel[i].mispredicts, serial.mispredicts)
            << specs[i];
        EXPECT_EQ(parallel[i].storageBits, serial.storageBits)
            << specs[i];
    }
}

TEST(SweepRunner, SingleThreadDegeneratesToSerial)
{
    const Trace trace = parallelTrace(2);
    SweepRunner runner(1);
    EXPECT_EQ(runner.threads(), 1u);
    runner.enqueue("gshare:8:6", trace);
    runner.enqueue("egskew:8:6", trace);
    const std::vector<SimResult> results = runner.run();

    ASSERT_EQ(results.size(), 2u);
    GSharePredictor gshare(8, 6);
    EXPECT_EQ(results[0].mispredicts,
              simulate(gshare, trace).mispredicts);
    auto egskew = makePredictor("egskew:8:6");
    EXPECT_EQ(results[1].mispredicts,
              simulate(*egskew, trace).mispredicts);
}

TEST(SweepRunner, FactoryEnqueueMatchesSpecEnqueue)
{
    const Trace trace = parallelTrace(3);
    SweepRunner runner(2);
    runner.enqueue(
        [] { return std::make_unique<GSharePredictor>(8, 6); },
        trace);
    runner.enqueue("gshare:8:6", trace);
    const std::vector<SimResult> results = runner.run();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].mispredicts, results[1].mispredicts);
    EXPECT_EQ(results[0].predictorName, results[1].predictorName);
}

TEST(SweepRunner, HonoursSimOptions)
{
    const Trace trace = parallelTrace(4);
    SimOptions options;
    options.warmupBranches = 5000;

    SweepRunner runner(2);
    runner.enqueue("gshare:8:6", trace, options);
    const std::vector<SimResult> results = runner.run();

    GSharePredictor reference(8, 6);
    const SimResult serial =
        simulateWithOptions(reference, trace, options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].conditionals, serial.conditionals);
    EXPECT_EQ(results[0].mispredicts, serial.mispredicts);
}

TEST(SweepRunner, ExceptionDoesNotWedgePool)
{
    const Trace trace = parallelTrace(5);
    SweepRunner runner(3);
    runner.enqueue("gshare:8:6", trace);
    runner.enqueue(
        []() -> std::unique_ptr<Predictor> {
            throw std::runtime_error("factory exploded");
        },
        trace);
    runner.enqueue("bimodal:8", trace);
    EXPECT_THROW(runner.run(), std::runtime_error);
    EXPECT_EQ(runner.pending(), 0u);

    // The runner (and its pool) stays usable for a fresh batch.
    runner.enqueue("gshare:8:6", trace);
    const std::vector<SimResult> results = runner.run();
    ASSERT_EQ(results.size(), 1u);
    GSharePredictor reference(8, 6);
    EXPECT_EQ(results[0].mispredicts,
              simulate(reference, trace).mispredicts);
}

TEST(SweepRunner, BadSpecSurfacesAsFatalError)
{
    const Trace trace = parallelTrace(6);
    SweepRunner runner(2);
    runner.enqueue("perceptron:10", trace);
    EXPECT_THROW(runner.run(), FatalError);
}

TEST(SweepRunner, EmptyQueueRunsToEmptyResults)
{
    SweepRunner runner(2);
    EXPECT_TRUE(runner.run().empty());
}

/** RAII guard restoring BPRED_GANG_WIDTH on scope exit. */
class GangWidthEnvGuard
{
  public:
    explicit GangWidthEnvGuard(const char *value)
    {
        const char *old = std::getenv("BPRED_GANG_WIDTH");
        hadOld = old != nullptr;
        if (hadOld) {
            oldValue = old;
        }
        if (value == nullptr) {
            unsetenv("BPRED_GANG_WIDTH");
        } else {
            setenv("BPRED_GANG_WIDTH", value, 1);
        }
    }

    ~GangWidthEnvGuard()
    {
        if (hadOld) {
            setenv("BPRED_GANG_WIDTH", oldValue.c_str(), 1);
        } else {
            unsetenv("BPRED_GANG_WIDTH");
        }
    }

  private:
    bool hadOld = false;
    std::string oldValue;
};

TEST(SweepRunner, GangedSharedTraceMatchesPerCell)
{
    // Same-trace cells grouped into gangs must report exactly what
    // a per-cell pass reports — with two traces interleaved in the
    // queue so grouping has to keep gangs trace-pure while results
    // stay in submission order.
    const Trace first = parallelTrace(7);
    const Trace second = parallelTrace(8);
    const std::vector<std::string> specs = {
        "gshare:8:6", "bimodal:8", "gskewed:3:8:6", "egskew:8:6"};
    const auto enqueueAll = [&](SweepRunner &runner) {
        for (const std::string &spec : specs) {
            runner.enqueue(spec, first);
            runner.enqueue(spec, second);
        }
    };

    std::vector<SimResult> percell;
    {
        GangWidthEnvGuard guard("1");
        SweepRunner runner(2);
        enqueueAll(runner);
        percell = runner.run();
    }
    std::vector<SimResult> ganged;
    {
        GangWidthEnvGuard guard("4");
        SweepRunner runner(2);
        enqueueAll(runner);
        ganged = runner.run();
    }

    ASSERT_EQ(percell.size(), ganged.size());
    for (std::size_t i = 0; i < percell.size(); ++i) {
        EXPECT_EQ(percell[i].predictorName, ganged[i].predictorName);
        EXPECT_EQ(percell[i].traceName, ganged[i].traceName);
        EXPECT_EQ(percell[i].conditionals, ganged[i].conditionals);
        EXPECT_EQ(percell[i].mispredicts, ganged[i].mispredicts);
    }
}

TEST(SweepRunner, GangedFactoryErrorSparesOtherMembers)
{
    // A factory that explodes inside a gang must surface from
    // run() without wedging the pool or poisoning its gang-mates.
    GangWidthEnvGuard guard("4");
    const Trace trace = parallelTrace(9);
    SweepRunner runner(1);
    runner.enqueue("gshare:8:6", trace);
    runner.enqueue(
        []() -> std::unique_ptr<Predictor> {
            throw std::runtime_error("factory exploded");
        },
        trace);
    runner.enqueue("bimodal:8", trace);
    EXPECT_THROW(runner.run(), std::runtime_error);
    EXPECT_EQ(runner.pending(), 0u);

    runner.enqueue("gshare:8:6", trace);
    const std::vector<SimResult> results = runner.run();
    ASSERT_EQ(results.size(), 1u);
    GSharePredictor reference(8, 6);
    EXPECT_EQ(results[0].mispredicts,
              simulate(reference, trace).mispredicts);
}

TEST(SweepRunner, JunkGangWidthFallsBackSafely)
{
    GangWidthEnvGuard guard("junk");
    const Trace trace = parallelTrace(10);
    SweepRunner runner(2);
    runner.enqueue("gshare:8:6", trace);
    runner.enqueue("gshare:8:6", trace);
    const std::vector<SimResult> results = runner.run();
    ASSERT_EQ(results.size(), 2u);
    GSharePredictor reference(8, 6);
    const u64 want = simulate(reference, trace).mispredicts;
    EXPECT_EQ(results[0].mispredicts, want);
    EXPECT_EQ(results[1].mispredicts, want);
}

TEST(ParallelMap, ReturnsResultsInSubmissionOrder)
{
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 64; ++i) {
        jobs.push_back([i] { return i * i; });
    }
    const std::vector<int> results = parallelMap(jobs, 4);
    ASSERT_EQ(results.size(), jobs.size());
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
    }
}

TEST(ParallelMap, MatchesSerialForMeasurements)
{
    const Trace trace = parallelTrace(7);
    std::vector<std::function<u64()>> jobs;
    for (unsigned bits = 6; bits <= 9; ++bits) {
        jobs.push_back([&trace, bits] {
            GSharePredictor predictor(bits, 6);
            return simulate(predictor, trace).mispredicts;
        });
    }
    const std::vector<u64> parallel = parallelMap(jobs, 4);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(parallel[i], jobs[i]());
    }
}

} // namespace
} // namespace bpred
