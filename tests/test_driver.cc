/**
 * @file
 * Unit tests for the simulation driver.
 */

#include <gtest/gtest.h>

#include "predictors/bimodal.hh"
#include "support/logging.hh"
#include "predictors/static_pred.hh"
#include "sim/driver.hh"

namespace bpred
{
namespace
{

Trace
simpleTrace()
{
    Trace trace("drv");
    for (int i = 0; i < 100; ++i) {
        trace.appendConditional(0x100, true);
        trace.appendConditional(0x104, false);
        trace.appendUnconditional(0x108);
    }
    return trace;
}

TEST(Driver, CountsConditionalsOnly)
{
    StaticPredictor predictor(true);
    const SimResult result = simulate(predictor, simpleTrace());
    EXPECT_EQ(result.conditionals, 200u);
    EXPECT_EQ(result.mispredicts, 100u); // the not-taken branch
    EXPECT_DOUBLE_EQ(result.mispredictRatio(), 0.5);
    EXPECT_DOUBLE_EQ(result.mispredictPercent(), 50.0);
}

TEST(Driver, RecordsNames)
{
    StaticPredictor predictor(true);
    const SimResult result = simulate(predictor, simpleTrace());
    EXPECT_EQ(result.predictorName, "always-taken");
    EXPECT_EQ(result.traceName, "drv");
    EXPECT_EQ(result.storageBits, 0u);
}

TEST(Driver, BimodalConvergesOnBiasedTrace)
{
    BimodalPredictor predictor(8);
    const SimResult result = simulate(predictor, simpleTrace());
    // Only cold-start mispredictions: both branches are perfectly
    // biased.
    EXPECT_LE(result.mispredicts, 4u);
}

SimResult
runWithWarmup(Predictor &predictor, const Trace &trace, u64 warmup)
{
    SimOptions options;
    options.warmupBranches = warmup;
    return simulateWithOptions(predictor, trace, options);
}

TEST(Driver, WarmupExcludesEarlyBranches)
{
    BimodalPredictor predictor(8);
    const SimResult result =
        runWithWarmup(predictor, simpleTrace(), 10);
    EXPECT_EQ(result.conditionals, 190u);
    EXPECT_EQ(result.mispredicts, 0u);
}

TEST(Driver, WarmupLargerThanTraceScoresNothing)
{
    BimodalPredictor predictor(8);
    const SimResult result =
        runWithWarmup(predictor, simpleTrace(), 100000);
    EXPECT_EQ(result.conditionals, 0u);
    EXPECT_DOUBLE_EQ(result.mispredictRatio(), 0.0);
}

TEST(Driver, FlushResetsStatePeriodically)
{
    // A perfectly biased branch: without flushes only the cold
    // start mispredicts; with flushes every 50 branches the cold
    // start recurs once per interval (counters reset to
    // strongly-not-taken, the branch is always taken: 2 misses to
    // re-saturate past the threshold).
    Trace trace("flush");
    for (int i = 0; i < 1000; ++i) {
        trace.appendConditional(0x100, true);
    }
    BimodalPredictor cold(8);
    const SimResult no_flush = simulate(cold, trace);
    EXPECT_EQ(no_flush.mispredicts, 2u);

    BimodalPredictor flushed(8);
    SimOptions options;
    options.flushInterval = 50;
    const SimResult with_flush =
        simulateWithOptions(flushed, trace, options);
    EXPECT_EQ(with_flush.conditionals, 1000u);
    EXPECT_EQ(with_flush.mispredicts, 2u * (1000 / 50));
}

TEST(Driver, ZeroFlushIntervalDisablesFlushing)
{
    const Trace trace = simpleTrace();

    BimodalPredictor plain(8);
    const SimResult no_options = simulate(plain, trace);

    BimodalPredictor zeroed(8);
    SimOptions options;
    options.flushInterval = 0;
    const SimResult zero_interval =
        simulateWithOptions(zeroed, trace, options);
    EXPECT_EQ(no_options.conditionals, zero_interval.conditionals);
    EXPECT_EQ(no_options.mispredicts, zero_interval.mispredicts);
}

TEST(Driver, EmptyTrace)
{
    BimodalPredictor predictor(8);
    const SimResult result = simulate(predictor, Trace("empty"));
    EXPECT_EQ(result.conditionals, 0u);
    EXPECT_DOUBLE_EQ(result.mispredictRatio(), 0.0);
}

TEST(Driver, WindowedSeriesSumsToTotals)
{
    BimodalPredictor predictor(8);
    SimOptions options;
    options.windowSize = 64;
    const SimResult result =
        simulateWithOptions(predictor, simpleTrace(), options);

    EXPECT_EQ(result.windowSize, 64u);
    // 200 conditionals at 64 per window: 3 full + 1 trailing
    // partial window of 8.
    ASSERT_EQ(result.windows.size(), 4u);
    u64 branches = 0;
    u64 mispredicts = 0;
    for (const WindowSample &window : result.windows) {
        branches += window.branches;
        mispredicts += window.mispredicts;
    }
    EXPECT_EQ(branches, result.conditionals);
    EXPECT_EQ(mispredicts, result.mispredicts);
    EXPECT_EQ(result.windows[0].branches, 64u);
    EXPECT_EQ(result.windows[3].branches, 8u);
}

TEST(Driver, WindowRatioDecaysAsPredictorWarms)
{
    // All cold-start mispredictions land in the first window.
    BimodalPredictor predictor(8);
    SimOptions options;
    options.windowSize = 50;
    const SimResult result =
        simulateWithOptions(predictor, simpleTrace(), options);
    ASSERT_GE(result.windows.size(), 2u);
    EXPECT_GT(result.windows[0].mispredicts, 0u);
    EXPECT_EQ(result.windows.back().mispredicts, 0u);
}

TEST(Driver, TopSitesAttributeMispredictions)
{
    // 0x104 is always-not-taken: under an always-taken static
    // predictor it is the only mispredicting site.
    StaticPredictor predictor(true);
    SimOptions options;
    options.topSites = 4;
    const SimResult result =
        simulateWithOptions(predictor, simpleTrace(), options);

    ASSERT_FALSE(result.topSites.empty());
    EXPECT_EQ(result.topSites[0].pc, 0x104u);
    EXPECT_EQ(result.topSites[0].mispredicts, result.mispredicts);
    EXPECT_EQ(result.topSites[0].overcount, 0u);
    // The always-correct site never enters the counter.
    EXPECT_EQ(result.topSites.size(), 1u);
}

TEST(Driver, DefaultOptionsRecordNoTelemetry)
{
    BimodalPredictor predictor(8);
    const SimResult result = simulate(predictor, simpleTrace());
    EXPECT_EQ(result.windowSize, 0u);
    EXPECT_TRUE(result.windows.empty());
    EXPECT_TRUE(result.topSites.empty());
}

TEST(Driver, ResultToJson)
{
    StaticPredictor predictor(true);
    SimOptions options;
    options.windowSize = 100;
    options.topSites = 2;
    const SimResult result =
        simulateWithOptions(predictor, simpleTrace(), options);

    const JsonValue json = result.toJson();
    ASSERT_TRUE(json.isObject());
    EXPECT_EQ(json.find("predictor")->dump(), "\"always-taken\"");
    EXPECT_EQ(json.find("trace")->dump(), "\"drv\"");
    EXPECT_EQ(json.find("conditionals")->dump(), "200");
    EXPECT_EQ(json.find("mispredicts")->dump(), "100");
    EXPECT_EQ(json.find("mispredict_ratio")->dump(), "0.5");
    EXPECT_EQ(json.find("window_size")->dump(), "100");

    const JsonValue *windows = json.find("windows");
    ASSERT_NE(windows, nullptr);
    EXPECT_EQ(windows->size(), 2u);
    const JsonValue *first = windows->at(0);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->find("branches")->dump(), "100");
    EXPECT_EQ(first->find("mispredicts")->dump(), "50");

    const JsonValue *sites = json.find("top_sites");
    ASSERT_NE(sites, nullptr);
    ASSERT_EQ(sites->size(), 1u);
    EXPECT_EQ(sites->at(0)->find("pc")->dump(), "\"0x104\"");
    EXPECT_EQ(sites->at(0)->find("mispredicts")->dump(), "100");
}

TEST(Driver, ResultToJsonOmitsUnrequestedTelemetry)
{
    BimodalPredictor predictor(8);
    const JsonValue json =
        simulate(predictor, simpleTrace()).toJson();
    EXPECT_EQ(json.find("windows"), nullptr);
    EXPECT_EQ(json.find("top_sites"), nullptr);
    EXPECT_EQ(json.find("window_size"), nullptr);
}

TEST(Driver, StateCarriesAcrossCallsWithoutReset)
{
    // Documented contract: simulate() does not reset the predictor.
    BimodalPredictor predictor(8);
    simulate(predictor, simpleTrace());
    const SimResult second = simulate(predictor, simpleTrace());
    EXPECT_EQ(second.mispredicts, 0u); // fully warm
}

} // namespace
} // namespace bpred
