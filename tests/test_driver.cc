/**
 * @file
 * Unit tests for the simulation driver.
 */

#include <gtest/gtest.h>

#include "predictors/bimodal.hh"
#include "support/logging.hh"
#include "predictors/static_pred.hh"
#include "sim/driver.hh"

namespace bpred
{
namespace
{

Trace
simpleTrace()
{
    Trace trace("drv");
    for (int i = 0; i < 100; ++i) {
        trace.appendConditional(0x100, true);
        trace.appendConditional(0x104, false);
        trace.appendUnconditional(0x108);
    }
    return trace;
}

TEST(Driver, CountsConditionalsOnly)
{
    StaticPredictor predictor(true);
    const SimResult result = simulate(predictor, simpleTrace());
    EXPECT_EQ(result.conditionals, 200u);
    EXPECT_EQ(result.mispredicts, 100u); // the not-taken branch
    EXPECT_DOUBLE_EQ(result.mispredictRatio(), 0.5);
    EXPECT_DOUBLE_EQ(result.mispredictPercent(), 50.0);
}

TEST(Driver, RecordsNames)
{
    StaticPredictor predictor(true);
    const SimResult result = simulate(predictor, simpleTrace());
    EXPECT_EQ(result.predictorName, "always-taken");
    EXPECT_EQ(result.traceName, "drv");
    EXPECT_EQ(result.storageBits, 0u);
}

TEST(Driver, BimodalConvergesOnBiasedTrace)
{
    BimodalPredictor predictor(8);
    const SimResult result = simulate(predictor, simpleTrace());
    // Only cold-start mispredictions: both branches are perfectly
    // biased.
    EXPECT_LE(result.mispredicts, 4u);
}

TEST(Driver, WarmupExcludesEarlyBranches)
{
    BimodalPredictor predictor(8);
    const SimResult result =
        simulateWithWarmup(predictor, simpleTrace(), 10);
    EXPECT_EQ(result.conditionals, 190u);
    EXPECT_EQ(result.mispredicts, 0u);
}

TEST(Driver, WarmupLargerThanTraceScoresNothing)
{
    BimodalPredictor predictor(8);
    const SimResult result =
        simulateWithWarmup(predictor, simpleTrace(), 100000);
    EXPECT_EQ(result.conditionals, 0u);
    EXPECT_DOUBLE_EQ(result.mispredictRatio(), 0.0);
}

TEST(Driver, FlushResetsStatePeriodically)
{
    // A perfectly biased branch: without flushes only the cold
    // start mispredicts; with flushes every 50 branches the cold
    // start recurs once per interval (counters reset to
    // strongly-not-taken, the branch is always taken: 2 misses to
    // re-saturate past the threshold).
    Trace trace("flush");
    for (int i = 0; i < 1000; ++i) {
        trace.appendConditional(0x100, true);
    }
    BimodalPredictor cold(8);
    const SimResult no_flush = simulate(cold, trace);
    EXPECT_EQ(no_flush.mispredicts, 2u);

    BimodalPredictor flushed(8);
    const SimResult with_flush =
        simulateWithFlush(flushed, trace, 50);
    EXPECT_EQ(with_flush.conditionals, 1000u);
    EXPECT_EQ(with_flush.mispredicts, 2u * (1000 / 50));
}

TEST(Driver, FlushRejectsZeroInterval)
{
    BimodalPredictor predictor(8);
    EXPECT_THROW(simulateWithFlush(predictor, Trace("x"), 0),
                 FatalError);
}

TEST(Driver, EmptyTrace)
{
    BimodalPredictor predictor(8);
    const SimResult result = simulate(predictor, Trace("empty"));
    EXPECT_EQ(result.conditionals, 0u);
    EXPECT_DOUBLE_EQ(result.mispredictRatio(), 0.0);
}

TEST(Driver, StateCarriesAcrossCallsWithoutReset)
{
    // Documented contract: simulate() does not reset the predictor.
    BimodalPredictor predictor(8);
    simulate(predictor, simpleTrace());
    const SimResult second = simulate(predictor, simpleTrace());
    EXPECT_EQ(second.mispredicts, 0u); // fully warm
}

} // namespace
} // namespace bpred
