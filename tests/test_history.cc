/**
 * @file
 * Unit tests for the global-history register.
 */

#include <gtest/gtest.h>

#include "predictors/history.hh"

namespace bpred
{
namespace
{

TEST(GlobalHistory, StartsEmpty)
{
    GlobalHistory history;
    EXPECT_EQ(history.raw(), 0u);
    EXPECT_EQ(history.value(12), 0u);
}

TEST(GlobalHistory, YoungestInBitZero)
{
    GlobalHistory history;
    history.shiftIn(true);
    EXPECT_EQ(history.value(4), 0b0001u);
    history.shiftIn(false);
    EXPECT_EQ(history.value(4), 0b0010u);
    history.shiftIn(true);
    EXPECT_EQ(history.value(4), 0b0101u);
}

TEST(GlobalHistory, ValueMasksWidth)
{
    GlobalHistory history;
    for (int i = 0; i < 10; ++i) {
        history.shiftIn(true);
    }
    EXPECT_EQ(history.value(4), 0b1111u);
    EXPECT_EQ(history.value(10), 0b11'1111'1111u);
    EXPECT_EQ(history.value(0), 0u);
}

TEST(GlobalHistory, SetAndReset)
{
    GlobalHistory history;
    history.set(0xdeadbeef);
    EXPECT_EQ(history.raw(), 0xdeadbeefu);
    history.reset();
    EXPECT_EQ(history.raw(), 0u);
}

TEST(GlobalHistory, ShiftsOutOldOutcomes)
{
    GlobalHistory history;
    history.shiftIn(true);
    for (int i = 0; i < 64; ++i) {
        history.shiftIn(false);
    }
    EXPECT_EQ(history.raw(), 0u);
}

} // namespace
} // namespace bpred
