/**
 * @file
 * Unit tests for the McFarling combining predictor.
 */

#include <gtest/gtest.h>

#include <memory>

#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"
#include "predictors/hybrid.hh"
#include "predictors/static_pred.hh"

namespace bpred
{
namespace
{

std::unique_ptr<HybridPredictor>
makeStandardHybrid()
{
    return std::make_unique<HybridPredictor>(
        std::make_unique<GSharePredictor>(10, 6),
        std::make_unique<BimodalPredictor>(10), 10);
}

TEST(Hybrid, ChoosesBetterComponentPerBranch)
{
    // Branch A alternates (gshare wins); branch B is strongly
    // biased and the alternating noise of A pollutes nothing for
    // bimodal. After training, the hybrid should predict both well.
    auto hybrid = makeStandardHybrid();
    const Addr a = 0x100;
    const Addr b = 0x200;

    bool a_outcome = false;
    int wrong = 0;
    for (int i = 0; i < 2000; ++i) {
        a_outcome = !a_outcome;
        const bool score = i >= 1000;

        wrong += score && hybrid->predict(a) != a_outcome;
        hybrid->update(a, a_outcome);

        wrong += score && hybrid->predict(b) != true;
        hybrid->update(b, true);
    }
    // 2000 scored predictions in total; near-perfect is expected.
    EXPECT_LT(wrong, 20);
}

TEST(Hybrid, BeatsWorseComponentAlone)
{
    // Static not-taken paired with bimodal on an always-taken
    // branch: the chooser must learn to trust bimodal.
    HybridPredictor hybrid(std::make_unique<StaticPredictor>(false),
                           std::make_unique<BimodalPredictor>(8), 8);
    const Addr pc = 0x40;
    for (int i = 0; i < 50; ++i) {
        hybrid.predict(pc);
        hybrid.update(pc, true);
    }
    EXPECT_TRUE(hybrid.predict(pc));
}

TEST(Hybrid, StorageSumsComponentsAndChooser)
{
    auto hybrid = makeStandardHybrid();
    const u64 expected = (u64(1) << 10) * 2 // gshare
        + (u64(1) << 10) * 2                // bimodal
        + (u64(1) << 10) * 2;               // chooser
    EXPECT_EQ(hybrid->storageBits(), expected);
}

TEST(Hybrid, NameListsComponents)
{
    auto hybrid = makeStandardHybrid();
    EXPECT_EQ(hybrid->name(), "hybrid(gshare-1K-h6,bimodal-1K)");
}

TEST(Hybrid, UpdateWithoutPredictIsTolerated)
{
    auto hybrid = makeStandardHybrid();
    EXPECT_NO_THROW(hybrid->update(0x100, true));
}

TEST(Hybrid, ResetRestoresColdBehaviour)
{
    auto hybrid = makeStandardHybrid();
    for (int i = 0; i < 100; ++i) {
        hybrid->update(0x10, true);
    }
    EXPECT_TRUE(hybrid->predict(0x10));
    hybrid->reset();
    EXPECT_FALSE(hybrid->predict(0x10));
}

TEST(Hybrid, ForwardsUnconditionalNotifications)
{
    // gshare inside the hybrid shifts history on unconditional
    // branches; this must not crash and must keep determinism.
    auto hybrid = makeStandardHybrid();
    for (int i = 0; i < 10; ++i) {
        hybrid->notifyUnconditional(0x500);
        hybrid->update(0x100, true);
    }
    EXPECT_NO_THROW(hybrid->predict(0x100));
}

} // namespace
} // namespace bpred
