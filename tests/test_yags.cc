/**
 * @file
 * Unit tests for the YAGS predictor.
 */

#include <gtest/gtest.h>

#include "predictors/gshare.hh"
#include "predictors/yags.hh"
#include "sim/driver.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

TEST(Yags, LearnsBiasedBranches)
{
    YagsPredictor predictor(8, 4, 8);
    const Addr taken_pc = 0x100;
    const Addr not_taken_pc = 0x104;
    for (int i = 0; i < 20; ++i) {
        predictor.update(taken_pc, true);
        predictor.update(not_taken_pc, false);
    }
    EXPECT_TRUE(predictor.predict(taken_pc));
    EXPECT_FALSE(predictor.predict(not_taken_pc));
}

TEST(Yags, ExceptionCacheCatchesBiasViolations)
{
    // A branch biased taken with a periodic not-taken exception in
    // a recognizable history context: the exception cache learns
    // the context, the choice table keeps the bias.
    // With an 8-bit history the period-8 pattern gives every
    // position a unique context, so the single not-taken exception
    // is fully learnable by the exception cache while the choice
    // table holds the taken bias.
    YagsPredictor predictor(8, 8, 8);
    const Addr pc = 0x200;
    int wrong = 0;
    for (int i = 0; i < 800; ++i) {
        const bool outcome = i % 8 != 7; // TTTTTTTN pattern
        if (i >= 400) {
            wrong += predictor.predict(pc) != outcome;
        }
        predictor.update(pc, outcome);
    }
    EXPECT_EQ(wrong, 0);
}

TEST(Yags, OnlyExceptionsAllocate)
{
    // A perfectly biased branch never allocates a cache entry, so
    // an always-taken branch prediction flows from the choice
    // table alone (cold caches).
    YagsPredictor predictor(6, 4, 6);
    const Addr pc = 0x300;
    for (int i = 0; i < 50; ++i) {
        predictor.update(pc, true);
    }
    EXPECT_TRUE(predictor.predict(pc));
}

TEST(Yags, TagsIsolateUnrelatedBranches)
{
    // Two branches whose (pc, history) hash to the same cache set
    // but have different tags: the second cannot silently use the
    // first's exception counter.
    YagsPredictor yags(1, 0, 8); // 2-entry caches: forced sets
    GSharePredictor gshare(1, 0);
    const Addr a = 0x100;
    const Addr b = a + 8;

    int yags_wrong = 0;
    int gshare_wrong = 0;
    for (int i = 0; i < 300; ++i) {
        const bool score = i >= 100;
        yags_wrong += score && yags.predict(a) != true;
        yags.update(a, true);
        gshare_wrong += score && gshare.predict(a) != true;
        gshare.update(a, true);

        yags_wrong += score && yags.predict(b) != false;
        yags.update(b, false);
        gshare_wrong += score && gshare.predict(b) != false;
        gshare.update(b, false);
    }
    EXPECT_EQ(yags_wrong, 0);
    EXPECT_GE(gshare_wrong, 180);
}

TEST(Yags, NameAndStorage)
{
    YagsPredictor predictor(10, 8, 11, 6);
    EXPECT_EQ(predictor.name(), "yags-2x1K+2K-h8");
    // 2 caches x 1024 x (2+6+1) + choice 2048 x 2.
    EXPECT_EQ(predictor.storageBits(), 2u * 1024 * 9 + 2048u * 2);
}

TEST(Yags, ResetRestoresColdState)
{
    YagsPredictor predictor(8, 4, 8);
    for (int i = 0; i < 30; ++i) {
        predictor.update(0x40, false);
    }
    EXPECT_FALSE(predictor.predict(0x40));
    predictor.reset();
    EXPECT_TRUE(predictor.predict(0x40)); // weakly-taken choice
}

TEST(Yags, CompetitiveUnderAliasing)
{
    Rng rng(33);
    Trace trace("aliasing");
    for (int i = 0; i < 40000; ++i) {
        const Addr pc = 0x1000 + 4 * rng.uniformInt(1024);
        const bool dominant = (pc >> 2) % 2 == 0;
        trace.appendConditional(pc,
                                rng.chance(dominant ? 0.95 : 0.05));
    }
    // Comparable storage: yags 2x256x9 + 1K choice ~ 6.6Kbit vs
    // gshare 4K entries = 8Kbit.
    YagsPredictor yags(8, 6, 10);
    GSharePredictor gshare(12, 6);
    const double yags_rate =
        simulate(yags, trace).mispredictRatio();
    const double gshare_rate =
        simulate(gshare, trace).mispredictRatio();
    EXPECT_LT(yags_rate, gshare_rate + 0.02);
}

} // namespace
} // namespace bpred
