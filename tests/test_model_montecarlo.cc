/**
 * @file
 * Monte-Carlo validation of the analytical model: simulate the
 * §5.2 probabilistic process directly (random aliasing events,
 * random substream biases, majority vote) and check the closed
 * forms against the empirical frequencies.
 */

#include <gtest/gtest.h>

#include "model/formulas.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

/**
 * One trial of the paper's §5.2 process for an M-bank predictor:
 * the unaliased prediction is taken with probability b; each bank
 * is aliased with probability p, in which case it votes with an
 * independent substream's prediction (taken w.p. b); un-aliased
 * banks vote the unaliased prediction. Returns whether the
 * majority differs from the unaliased prediction.
 */
bool
trialDiffers(Rng &rng, unsigned banks, double p, double b)
{
    const bool unaliased_taken = rng.chance(b);
    unsigned votes_taken = 0;
    for (unsigned bank = 0; bank < banks; ++bank) {
        bool vote = unaliased_taken;
        if (rng.chance(p)) {
            vote = rng.chance(b);
        }
        votes_taken += vote ? 1 : 0;
    }
    const bool majority_taken = votes_taken * 2 > banks;
    return majority_taken != unaliased_taken;
}

class ModelMonteCarlo
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(ModelMonteCarlo, ThreeBankFormulaMatches)
{
    const auto [p, b] = GetParam();
    Rng rng(static_cast<u64>(p * 1000) * 131 +
            static_cast<u64>(b * 1000));
    const int trials = 200000;
    int differs = 0;
    for (int i = 0; i < trials; ++i) {
        differs += trialDiffers(rng, 3, p, b);
    }
    const double empirical =
        static_cast<double>(differs) / trials;
    EXPECT_NEAR(empirical, destructiveProbabilitySkewed3(p, b),
                0.004)
        << "p=" << p << " b=" << b;
}

TEST_P(ModelMonteCarlo, OneBankFormulaMatches)
{
    const auto [p, b] = GetParam();
    Rng rng(static_cast<u64>(p * 1000) * 257 +
            static_cast<u64>(b * 1000));
    const int trials = 200000;
    int differs = 0;
    for (int i = 0; i < trials; ++i) {
        differs += trialDiffers(rng, 1, p, b);
    }
    const double empirical =
        static_cast<double>(differs) / trials;
    EXPECT_NEAR(empirical, destructiveProbabilityDirectMapped(p, b),
                0.004);
}

TEST_P(ModelMonteCarlo, FiveBankGeneralizationMatches)
{
    const auto [p, b] = GetParam();
    Rng rng(static_cast<u64>(p * 1000) * 509 +
            static_cast<u64>(b * 1000));
    const int trials = 200000;
    int differs = 0;
    for (int i = 0; i < trials; ++i) {
        differs += trialDiffers(rng, 5, p, b);
    }
    const double empirical =
        static_cast<double>(differs) / trials;
    EXPECT_NEAR(empirical, destructiveProbabilitySkewed(5, p, b),
                0.004);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelMonteCarlo,
    ::testing::Values(std::pair{0.05, 0.5}, std::pair{0.2, 0.5},
                      std::pair{0.5, 0.5}, std::pair{0.8, 0.5},
                      std::pair{0.3, 0.2}, std::pair{0.3, 0.7},
                      std::pair{0.9, 0.35}, std::pair{0.1, 0.9}));

/**
 * Formula (1) against a direct balls-into-bins simulation: probe a
 * table entry after D distinct intervening references.
 */
TEST(ModelMonteCarlo, AliasingProbabilityMatchesBallsInBins)
{
    Rng rng(404);
    const u64 entries = 64;
    for (const u64 distance : {u64(1), u64(8), u64(64), u64(256)}) {
        const int trials = 50000;
        int aliased = 0;
        for (int i = 0; i < trials; ++i) {
            // Our key sits in entry 0 (wlog, hash is uniform);
            // D distinct other keys land uniformly.
            bool hit_entry = false;
            for (u64 d = 0; d < distance; ++d) {
                hit_entry |= rng.uniformInt(entries) == 0;
            }
            aliased += hit_entry;
        }
        const double empirical =
            static_cast<double>(aliased) / trials;
        EXPECT_NEAR(empirical, aliasingProbability(entries, distance),
                    0.01)
            << "D=" << distance;
    }
}

} // namespace
} // namespace bpred
