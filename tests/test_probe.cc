/**
 * @file
 * Unit tests for the telemetry probe layer: sink attachment, the
 * zero-overhead no-sink contract (identical predictions with and
 * without a sink), CountingProbe aggregation, and the driver's
 * probe attach/restore behaviour.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/skewed_predictor.hh"
#include "predictors/bimodal.hh"
#include "sim/driver.hh"
#include "sim/factory.hh"
#include "support/probe.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

Trace
mixedTrace(std::size_t branches = 4000)
{
    Trace trace("probe");
    Rng rng(7);
    for (std::size_t i = 0; i < branches; ++i) {
        const Addr pc = 0x4000 + 4 * rng.uniformInt(256);
        if (rng.chance(0.2)) {
            trace.appendUnconditional(pc);
        } else {
            // Direction loosely correlated with the PC so every
            // predictor has something to learn and something to
            // miss.
            const bool bias = (pc >> 2) % 3 != 0;
            trace.appendConditional(pc,
                                    rng.chance(bias ? 0.85 : 0.3));
        }
    }
    return trace;
}

TEST(Probe, AttachReturnsPrevious)
{
    BimodalPredictor predictor(8);
    CountingProbe first;
    CountingProbe second;
    EXPECT_EQ(predictor.probe(), nullptr);
    EXPECT_EQ(predictor.attachProbe(&first), nullptr);
    EXPECT_EQ(predictor.probe(), &first);
    EXPECT_EQ(predictor.attachProbe(&second), &first);
    EXPECT_EQ(predictor.attachProbe(nullptr), &second);
    EXPECT_EQ(predictor.probe(), nullptr);
}

TEST(Probe, SinkDoesNotChangePredictions)
{
    // The zero-overhead contract's correctness half: attaching a
    // sink must not perturb any instrumented predictor's behaviour.
    const Trace trace = mixedTrace();
    const std::vector<std::string> specs = {
        "bimodal:8",       "gshare:8:6",   "agree:8:6:8",
        "hybrid:8:6",      "gskewed:3:7:6", "egskew:7:6",
    };
    for (const std::string &spec : specs) {
        auto plain = makePredictor(spec);
        const SimResult bare = simulate(*plain, trace);

        auto probed = makePredictor(spec);
        CountingProbe probe;
        probed->attachProbe(&probe);
        const SimResult instrumented = simulate(*probed, trace);

        EXPECT_EQ(instrumented.mispredicts, bare.mispredicts)
            << spec;
        EXPECT_EQ(instrumented.conditionals, bare.conditionals)
            << spec;
    }
}

TEST(Probe, ResolvedCountsMatchSimResult)
{
    const Trace trace = mixedTrace();
    auto predictor = makePredictor("egskew:7:6");
    CountingProbe probe;
    predictor->attachProbe(&probe);
    const SimResult result = simulate(*predictor, trace);

    const RatioStat &resolved =
        probe.registry().ratio("resolved.mispredict");
    EXPECT_EQ(resolved.total(), result.conditionals);
    EXPECT_EQ(resolved.events(), result.mispredicts);
}

TEST(Probe, BankVotesCoverEveryBank)
{
    const Trace trace = mixedTrace();
    SkewedPredictor predictor(3, 7, 6, UpdatePolicy::Partial);
    CountingProbe probe;
    predictor.attachProbe(&probe);
    const SimResult result = simulate(predictor, trace);

    StatRegistry &stats = probe.registry();
    for (unsigned bank = 0; bank < predictor.numBanks(); ++bank) {
        const std::string prefix = "bank" + std::to_string(bank);
        // Every bank votes on every resolved branch.
        EXPECT_EQ(stats.ratio(prefix + ".disagree").total(),
                  result.conditionals);
        EXPECT_EQ(stats.ratio(prefix + ".correct").total(),
                  result.conditionals);
        // On a correlated trace each bank is right more often
        // than not.
        EXPECT_GT(stats.ratio(prefix + ".correct").ratio(), 0.5);
    }
}

TEST(Probe, PartialPolicySkipsProtectedBanks)
{
    const Trace trace = mixedTrace();

    SkewedPredictor partial(3, 7, 6, UpdatePolicy::Partial);
    CountingProbe partial_probe;
    partial.attachProbe(&partial_probe);
    simulate(partial, trace);

    u64 partial_skips = 0;
    u64 lazy_skips = 0;
    for (unsigned bank = 0; bank < partial.numBanks(); ++bank) {
        const std::string prefix = "bank" + std::to_string(bank);
        partial_skips +=
            partial_probe.registry().counter(prefix + ".skips.partial");
        lazy_skips +=
            partial_probe.registry().counter(prefix + ".skips.lazy");
    }
    EXPECT_GT(partial_skips, 0u);
    EXPECT_EQ(lazy_skips, 0u); // lazy skips only under PartialLazy

    SkewedPredictor total(3, 7, 6, UpdatePolicy::Total);
    CountingProbe total_probe;
    total.attachProbe(&total_probe);
    simulate(total, trace);
    for (unsigned bank = 0; bank < total.numBanks(); ++bank) {
        const std::string prefix = "bank" + std::to_string(bank);
        EXPECT_EQ(
            total_probe.registry().counter(prefix + ".skips.partial"),
            0u);
    }
}

TEST(Probe, LazyPolicyReportsSaturationSkips)
{
    const Trace trace = mixedTrace();
    SkewedPredictor lazy(3, 7, 6, UpdatePolicy::PartialLazy);
    CountingProbe probe;
    lazy.attachProbe(&probe);
    simulate(lazy, trace);

    u64 lazy_skips = 0;
    for (unsigned bank = 0; bank < lazy.numBanks(); ++bank) {
        lazy_skips += probe.registry().counter(
            "bank" + std::to_string(bank) + ".skips.lazy");
    }
    EXPECT_GT(lazy_skips, 0u);
}

TEST(Probe, CounterWritesMatchTransitionHistogram)
{
    const Trace trace = mixedTrace();
    SkewedPredictor predictor(3, 7, 6, UpdatePolicy::Partial);
    CountingProbe probe;
    predictor.attachProbe(&probe);
    simulate(predictor, trace);

    StatRegistry &stats = probe.registry();
    for (unsigned bank = 0; bank < predictor.numBanks(); ++bank) {
        const std::string prefix = "bank" + std::to_string(bank);
        const u64 writes = stats.counter(prefix + ".writes");
        const Histogram &transitions =
            stats.histogram(prefix + ".transitions");
        EXPECT_GT(writes, 0u);
        // Every value-changing write records exactly one
        // transition, and before != after for all of them.
        EXPECT_EQ(transitions.total(), writes);
        for (const auto &[key, count] : transitions.sorted()) {
            const u64 before = key / 256;
            const u64 after = key % 256;
            EXPECT_NE(before, after);
            EXPECT_GT(count, 0u);
        }
    }
}

TEST(Probe, HybridChooserEvents)
{
    const Trace trace = mixedTrace();
    auto predictor = makePredictor("hybrid:8:6");
    CountingProbe probe;
    predictor->attachProbe(&probe);
    const SimResult result = simulate(*predictor, trace);

    StatRegistry &stats = probe.registry();
    EXPECT_EQ(stats.ratio("chooser.first").total(),
              result.conditionals);
    EXPECT_EQ(stats.ratio("chooser.disagree").total(),
              result.conditionals);
    // When the chooser picks a component, its correctness matches
    // the overall result.
    EXPECT_EQ(stats.ratio("chooser.correct").total(),
              result.conditionals);
    EXPECT_EQ(stats.ratio("chooser.correct").events(),
              result.conditionals - result.mispredicts);
}

TEST(Probe, DriverAttachesAndRestores)
{
    const Trace trace = mixedTrace(500);
    BimodalPredictor predictor(8);
    CountingProbe outer;
    predictor.attachProbe(&outer);

    CountingProbe inner;
    SimOptions options;
    options.probe = &inner;
    const SimResult result =
        simulateWithOptions(predictor, trace, options);

    // During the run events went to the option's probe...
    EXPECT_EQ(inner.registry().ratio("resolved.mispredict").total(),
              result.conditionals);
    // ...the pre-attached sink saw nothing...
    EXPECT_TRUE(outer.registry().empty());
    // ...and it is restored afterwards.
    EXPECT_EQ(predictor.probe(), &outer);
}

TEST(Probe, RegistryResetKeepsCachedReferencesLive)
{
    // CountingProbe caches stat references; reset() must clear
    // values without invalidating them.
    const Trace trace = mixedTrace(500);
    BimodalPredictor predictor(8);
    CountingProbe probe;
    predictor.attachProbe(&probe);
    simulate(predictor, trace);
    const u64 first_total =
        probe.registry().ratio("resolved.mispredict").total();
    EXPECT_GT(first_total, 0u);

    probe.registry().reset();
    predictor.reset();
    simulate(predictor, trace);
    EXPECT_EQ(probe.registry().ratio("resolved.mispredict").total(),
              first_total);
}

} // namespace
} // namespace bpred
