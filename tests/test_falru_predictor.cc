/**
 * @file
 * Unit tests for the fully-associative LRU predictor (Figure 8's
 * yardstick).
 */

#include <gtest/gtest.h>

#include "aliasing/falru_predictor.hh"

namespace bpred
{
namespace
{

TEST(FaLruPredictor, MissPredictsTaken)
{
    FaLruPredictor predictor(16, 4);
    EXPECT_TRUE(predictor.predict(0x100));
}

TEST(FaLruPredictor, LearnsResidentSubstream)
{
    FaLruPredictor predictor(16, 0);
    const Addr pc = 0x40;
    predictor.predict(pc);
    predictor.update(pc, false);
    // Entry now resident, trained strongly not-taken.
    EXPECT_FALSE(predictor.predict(pc));
}

TEST(FaLruPredictor, CapacityEvictionRestoresStaticPrediction)
{
    FaLruPredictor predictor(2, 0);
    predictor.update(0x10, false);
    predictor.update(0x20, false);
    predictor.update(0x30, false); // evicts 0x10's pair
    EXPECT_TRUE(predictor.predict(0x10));  // back to always-taken
    EXPECT_FALSE(predictor.predict(0x30));
}

TEST(FaLruPredictor, HistoryDistinguishesSubstreams)
{
    FaLruPredictor predictor(64, 2);
    const Addr pc = 0x80;
    // Alternating outcome keyed by previous outcome: two
    // substreams with opposite directions.
    bool outcome = false;
    int wrong = 0;
    for (int i = 0; i < 200; ++i) {
        outcome = !outcome;
        if (i >= 100) {
            wrong += predictor.predict(pc) != outcome;
        }
        predictor.update(pc, outcome);
    }
    EXPECT_EQ(wrong, 0);
}

TEST(FaLruPredictor, StorageIncludesTags)
{
    FaLruPredictor predictor(1024, 12, 2);
    // Tag-full structures are expensive: far more than 2 bits/entry.
    EXPECT_GT(predictor.storageBits(), 1024u * 2 * 10);
}

TEST(FaLruPredictor, NameEncodesConfig)
{
    FaLruPredictor predictor(4096, 4);
    EXPECT_EQ(predictor.name(), "fa-lru-4096-h4");
}

TEST(FaLruPredictor, MissRatioExposed)
{
    FaLruPredictor predictor(2, 0);
    predictor.update(0x10, true);
    predictor.update(0x10, true);
    EXPECT_NEAR(predictor.missRatio(), 0.5, 1e-12);
}

TEST(FaLruPredictor, ResetForgets)
{
    FaLruPredictor predictor(8, 0);
    predictor.update(0x10, false);
    EXPECT_FALSE(predictor.predict(0x10));
    predictor.reset();
    EXPECT_TRUE(predictor.predict(0x10));
}

TEST(FaLruPredictor, UnconditionalShiftsHistory)
{
    FaLruPredictor with_uncond(64, 4);
    FaLruPredictor without(64, 4);
    const Addr pc = 0x100;
    // Train under one history context.
    with_uncond.update(pc, false);
    without.update(pc, false);
    // Shifting history moves the pair out of context for the
    // predictor that saw the unconditional branch.
    with_uncond.notifyUnconditional(0x200);
    EXPECT_TRUE(with_uncond.predict(pc));   // different key -> miss
    EXPECT_FALSE(without.predict(pc));      // same key -> learned
}

} // namespace
} // namespace bpred
