/**
 * @file
 * Unit tests for the predictor spec factory.
 */

#include <gtest/gtest.h>

#include "sim/factory.hh"
#include "support/logging.hh"

namespace bpred
{
namespace
{

TEST(Factory, BuildsEveryScheme)
{
    EXPECT_EQ(makePredictor("static:taken")->name(), "always-taken");
    EXPECT_EQ(makePredictor("static:nottaken")->name(),
              "always-not-taken");
    EXPECT_EQ(makePredictor("bimodal:10")->name(), "bimodal-1K");
    EXPECT_EQ(makePredictor("gshare:14:12")->name(),
              "gshare-16K-h12");
    EXPECT_EQ(makePredictor("gselect:12:6")->name(),
              "gselect-4K-h6");
    EXPECT_EQ(makePredictor("pag:10:8")->name(), "pag-1Kx8");
    EXPECT_EQ(makePredictor("gskewed:3:12:8")->name(),
              "gskewed-3x4K-h8-partial");
    EXPECT_EQ(makePredictor("gskewed:3:12:8:total")->name(),
              "gskewed-3x4K-h8-total");
    EXPECT_EQ(makePredictor("egskew:12:11")->name(),
              "e-gskew-3x4K-h11-partial");
    EXPECT_EQ(makePredictor("falru:4096:4")->name(),
              "fa-lru-4096-h4");
    EXPECT_EQ(makePredictor("unaliased:12:1")->name(),
              "unaliased-h12-1bit");
    EXPECT_NE(makePredictor("hybrid:10:6"), nullptr);
    EXPECT_EQ(makePredictor("agree:14:10:12")->name(),
              "agree-16K-h10");
    EXPECT_EQ(makePredictor("bimode:13:10:12")->name(),
              "bimode-2x8K+4K-h10");
    EXPECT_EQ(makePredictor("yags:10:8:11")->name(),
              "yags-2x1K+2K-h8");
    EXPECT_EQ(makePredictor("gskewedsh:3:12:8")->name(),
              "gskewed-sh-3x4K-h8-partial");
    EXPECT_EQ(makePredictor("egskewsh:12:8")->name(),
              "e-gskew-sh-3x4K-h8-partial");
    EXPECT_EQ(makePredictor("pskew:10:8:3:12")->name(),
              "pskew-1Kx8-3x4K");
    EXPECT_EQ(makePredictor("gskewed:3:12:8:partial-lazy")->name(),
              "gskewed-3x4K-h8-partial-lazy");
}

TEST(Factory, CounterBitsOptional)
{
    auto one_bit = makePredictor("gshare:10:4:1");
    auto two_bit = makePredictor("gshare:10:4");
    EXPECT_EQ(one_bit->storageBits(), 1024u);
    EXPECT_EQ(two_bit->storageBits(), 2048u);
}

TEST(Factory, BuiltPredictorsFunction)
{
    for (const char *spec :
         {"bimodal:8", "gshare:8:4", "gselect:8:4", "pag:8:6",
          "hybrid:8:4", "gskewed:3:6:4", "egskew:6:4", "falru:64:4",
          "unaliased:4", "static:taken"}) {
        auto predictor = makePredictor(spec);
        ASSERT_NE(predictor, nullptr) << spec;
        for (int i = 0; i < 50; ++i) {
            predictor->predict(0x100 + 4 * (i % 8));
            predictor->update(0x100 + 4 * (i % 8), i % 3 != 0);
            predictor->notifyUnconditional(0x400);
        }
        EXPECT_NO_THROW(predictor->reset()) << spec;
    }
}

TEST(Factory, RejectsUnknownScheme)
{
    EXPECT_THROW(makePredictor("perceptron:10"), FatalError);
    EXPECT_THROW(makePredictor(""), FatalError);
}

TEST(Factory, RejectsWrongFieldCount)
{
    EXPECT_THROW(makePredictor("gshare:10"), FatalError);
    EXPECT_THROW(makePredictor("gshare:10:4:2:9"), FatalError);
    EXPECT_THROW(makePredictor("static"), FatalError);
}

TEST(Factory, RejectsBadNumbers)
{
    EXPECT_THROW(makePredictor("gshare:abc:4"), FatalError);
    EXPECT_THROW(makePredictor("bimodal:99999999999"), FatalError);
    EXPECT_THROW(makePredictor("falru:0:4"), FatalError);
}

TEST(Factory, RejectsBadPolicy)
{
    EXPECT_THROW(makePredictor("gskewed:3:10:4:sometimes"),
                 FatalError);
}

TEST(Factory, RejectsBadStaticDirection)
{
    EXPECT_THROW(makePredictor("static:maybe"), FatalError);
}

TEST(Factory, HelpMentionsEveryScheme)
{
    const std::string help = predictorSpecHelp();
    for (const char *scheme :
         {"static", "bimodal", "gshare", "gselect", "pag", "hybrid",
          "agree", "bimode", "yags", "gskewed", "egskew", "gskewedsh",
          "egskewsh", "pskew", "falru", "unaliased"}) {
        EXPECT_NE(help.find(scheme), std::string::npos) << scheme;
    }
}

} // namespace
} // namespace bpred
