/**
 * @file
 * Unit tests for the predictor spec factory.
 */

#include <gtest/gtest.h>

#include "sim/factory.hh"
#include "support/logging.hh"

namespace bpred
{
namespace
{

TEST(Factory, BuildsEveryScheme)
{
    EXPECT_EQ(makePredictor("static:taken")->name(), "always-taken");
    EXPECT_EQ(makePredictor("static:nottaken")->name(),
              "always-not-taken");
    EXPECT_EQ(makePredictor("bimodal:10")->name(), "bimodal-1K");
    EXPECT_EQ(makePredictor("gshare:14:12")->name(),
              "gshare-16K-h12");
    EXPECT_EQ(makePredictor("gselect:12:6")->name(),
              "gselect-4K-h6");
    EXPECT_EQ(makePredictor("pag:10:8")->name(), "pag-1Kx8");
    EXPECT_EQ(makePredictor("gskewed:3:12:8")->name(),
              "gskewed-3x4K-h8-partial");
    EXPECT_EQ(makePredictor("gskewed:3:12:8:total")->name(),
              "gskewed-3x4K-h8-total");
    EXPECT_EQ(makePredictor("egskew:12:11")->name(),
              "e-gskew-3x4K-h11-partial");
    EXPECT_EQ(makePredictor("falru:4096:4")->name(),
              "fa-lru-4096-h4");
    EXPECT_EQ(makePredictor("unaliased:12:1")->name(),
              "unaliased-h12-1bit");
    EXPECT_NE(makePredictor("hybrid:10:6"), nullptr);
    EXPECT_EQ(makePredictor("agree:14:10:12")->name(),
              "agree-16K-h10");
    EXPECT_EQ(makePredictor("bimode:13:10:12")->name(),
              "bimode-2x8K+4K-h10");
    EXPECT_EQ(makePredictor("yags:10:8:11")->name(),
              "yags-2x1K+2K-h8");
    EXPECT_EQ(makePredictor("gskewedsh:3:12:8")->name(),
              "gskewed-sh-3x4K-h8-partial");
    EXPECT_EQ(makePredictor("egskewsh:12:8")->name(),
              "e-gskew-sh-3x4K-h8-partial");
    EXPECT_EQ(makePredictor("pskew:10:8:3:12")->name(),
              "pskew-1Kx8-3x4K");
    EXPECT_EQ(makePredictor("gskewed:3:12:8:partial-lazy")->name(),
              "gskewed-3x4K-h8-partial-lazy");
}

TEST(Factory, CounterBitsOptional)
{
    auto one_bit = makePredictor("gshare:10:4:1");
    auto two_bit = makePredictor("gshare:10:4");
    EXPECT_EQ(one_bit->storageBits(), 1024u);
    EXPECT_EQ(two_bit->storageBits(), 2048u);
}

TEST(Factory, BuiltPredictorsFunction)
{
    for (const char *spec :
         {"bimodal:8", "gshare:8:4", "gselect:8:4", "pag:8:6",
          "hybrid:8:4", "gskewed:3:6:4", "egskew:6:4", "falru:64:4",
          "unaliased:4", "static:taken"}) {
        auto predictor = makePredictor(spec);
        ASSERT_NE(predictor, nullptr) << spec;
        for (int i = 0; i < 50; ++i) {
            predictor->predict(0x100 + 4 * (i % 8));
            predictor->update(0x100 + 4 * (i % 8), i % 3 != 0);
            predictor->notifyUnconditional(0x400);
        }
        EXPECT_NO_THROW(predictor->reset()) << spec;
    }
}

TEST(Factory, RejectsUnknownScheme)
{
    EXPECT_THROW(makePredictor("perceptron:10"), FatalError);
    EXPECT_THROW(makePredictor(""), FatalError);
}

TEST(Factory, RejectsWrongFieldCount)
{
    EXPECT_THROW(makePredictor("gshare:10"), FatalError);
    EXPECT_THROW(makePredictor("gshare:10:4:2:9"), FatalError);
    EXPECT_THROW(makePredictor("static"), FatalError);
}

TEST(Factory, RejectsBadNumbers)
{
    EXPECT_THROW(makePredictor("gshare:abc:4"), FatalError);
    EXPECT_THROW(makePredictor("bimodal:99999999999"), FatalError);
    EXPECT_THROW(makePredictor("falru:0:4"), FatalError);
}

TEST(Factory, RejectsBadPolicy)
{
    EXPECT_THROW(makePredictor("gskewed:3:10:4:sometimes"),
                 FatalError);
}

TEST(Factory, RejectsBadStaticDirection)
{
    EXPECT_THROW(makePredictor("static:maybe"), FatalError);
}

TEST(Factory, HelpMentionsEveryScheme)
{
    const std::string help = predictorSpecHelp();
    for (const char *scheme :
         {"static", "bimodal", "gshare", "gselect", "pag", "hybrid",
          "agree", "bimode", "yags", "gskewed", "egskew", "gskewedsh",
          "egskewsh", "pskew", "falru", "unaliased"}) {
        EXPECT_NE(help.find(scheme), std::string::npos) << scheme;
    }
}

TEST(Factory, ParseSpecRoundTripIsIdempotent)
{
    for (const char *text :
         {"static:taken", "bimodal:10", "bimodal:10:3", "gshare:14:12",
          "gselect:12:6:1", "pag:10:8", "agree:14:10:12",
          "bimode:13:10:12", "yags:10:8:11:8", "hybrid:10:6",
          "gskewed:3:12:8:total", "egskew:12:11",
          "gskewedsh:3:12:8", "egskewsh:12:8:partial-lazy",
          "pskew:10:8:3:12", "falru:64:4", "unaliased:12:1"}) {
        const PredictorSpec parsed = parseSpec(text);
        EXPECT_EQ(parsed.toString(), text) << text;
        const PredictorSpec reparsed = parseSpec(parsed.toString());
        EXPECT_EQ(reparsed.scheme, parsed.scheme) << text;
        EXPECT_EQ(reparsed.fields, parsed.fields) << text;
    }
}

TEST(Factory, ParseSpecCanonicalizesNumbers)
{
    // Leading zeros normalize away, so toString() is a stable key
    // for result files and sweep configs.
    EXPECT_EQ(parseSpec("gshare:014:012").toString(), "gshare:14:12");
}

TEST(Factory, ParseSpecRejectsTrailingGarbage)
{
    EXPECT_THROW(parseSpec("gshare:14x:12"), FatalError);
}

TEST(Factory, StructuredSpecBuildsSamePredictor)
{
    const PredictorSpec spec = parseSpec("gshare:10:6");
    auto from_spec = makePredictor(spec);
    auto from_text = makePredictor("gshare:10:6");
    EXPECT_EQ(from_spec->name(), from_text->name());
    EXPECT_EQ(from_spec->storageBits(), from_text->storageBits());
}

TEST(Factory, WithSuffixMatchesParsingTheFullString)
{
    // Deriving a variant from a parsed spec must land on exactly
    // the spec that parsing the concatenated string would produce.
    const PredictorSpec base = parseSpec("gshare:14:12");
    const PredictorSpec extended = base.withSuffix("1");
    const PredictorSpec reference = parseSpec("gshare:14:12:1");
    EXPECT_EQ(extended.scheme, reference.scheme);
    EXPECT_EQ(extended.fields, reference.fields);
    EXPECT_EQ(extended.toString(), "gshare:14:12:1");

    // The base spec is untouched.
    EXPECT_EQ(base.toString(), "gshare:14:12");

    // Multi-field suffixes and keyword fields work the same way.
    const PredictorSpec agreed =
        parseSpec("agree:14:10:12").withSuffix("3");
    EXPECT_EQ(agreed.toString(), "agree:14:10:12:3");
    const PredictorSpec skewed =
        parseSpec("gskewed:3:12:8").withSuffix("total");
    EXPECT_EQ(skewed.toString(), "gskewed:3:12:8:total");
}

TEST(Factory, WithSuffixCanonicalizesAndRoundTrips)
{
    const PredictorSpec extended =
        parseSpec("bimodal:10").withSuffix("03");
    EXPECT_EQ(extended.toString(), "bimodal:10:3");
    const PredictorSpec reparsed = parseSpec(extended.toString());
    EXPECT_EQ(reparsed.fields, extended.fields);
    EXPECT_EQ(makePredictor(extended)->name(),
              makePredictor(reparsed)->name());
}

TEST(Factory, WithSuffixRejectsBadInput)
{
    const PredictorSpec base = parseSpec("gshare:14:12");
    // Empty suffix, overflowing the field count, and malformed
    // values all fail the same way parseSpec() would.
    EXPECT_THROW(base.withSuffix(""), FatalError);
    EXPECT_THROW(base.withSuffix("2:9"), FatalError);
    EXPECT_THROW(base.withSuffix("x"), FatalError);
    EXPECT_THROW(parseSpec("gskewed:3:12:8").withSuffix("sideways"),
                 FatalError);
}

TEST(Factory, ListSchemesExamplesAllBuild)
{
    for (const SchemeInfo &scheme : listSchemes()) {
        EXPECT_FALSE(scheme.summary.empty()) << scheme.name;
        EXPECT_FALSE(scheme.fields.empty()) << scheme.name;
        const PredictorSpec parsed = parseSpec(scheme.example);
        EXPECT_EQ(parsed.scheme, scheme.name);
        EXPECT_NE(makePredictor(parsed), nullptr) << scheme.example;
    }
}

TEST(Factory, ListSchemesOptionalFieldsTrailRequired)
{
    // parseSpec() matches fields positionally, which is only sound
    // when no required field follows an optional one.
    for (const SchemeInfo &scheme : listSchemes()) {
        bool seen_optional = false;
        for (const SpecFieldInfo &field : scheme.fields) {
            if (field.optional) {
                seen_optional = true;
            } else {
                EXPECT_FALSE(seen_optional) << scheme.name;
            }
        }
    }
}

TEST(Factory, FindSchemeLooksUpByName)
{
    const SchemeInfo *gshare = findScheme("gshare");
    ASSERT_NE(gshare, nullptr);
    EXPECT_EQ(gshare->name, "gshare");
    EXPECT_EQ(gshare->requiredFields(), 2u);
    EXPECT_EQ(findScheme("perceptron"), nullptr);
}

TEST(Factory, SchemesToJsonDescribesEveryScheme)
{
    const JsonValue json = schemesToJson();
    EXPECT_EQ(json.size(), listSchemes().size());
    const JsonValue *first = json.at(0);
    ASSERT_NE(first, nullptr);
    EXPECT_NE(first->find("name"), nullptr);
    EXPECT_NE(first->find("summary"), nullptr);
    EXPECT_NE(first->find("fields"), nullptr);
    EXPECT_NE(first->find("example"), nullptr);
}

} // namespace
} // namespace bpred
