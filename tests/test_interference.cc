/**
 * @file
 * Unit tests for destructive/harmless/constructive interference
 * classification.
 */

#include <gtest/gtest.h>

#include "aliasing/interference.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

TEST(Interference, NoAliasingMeansNoInterference)
{
    Trace trace("clean");
    for (int i = 0; i < 200; ++i) {
        trace.appendConditional(0x100, true);
    }
    IndexFunction function{IndexKind::Address, 4, 0};
    const InterferenceResult result =
        classifyInterference(trace, function);
    EXPECT_EQ(result.dynamicBranches, 200u);
    EXPECT_EQ(result.destructive, 0u);
    EXPECT_EQ(result.constructive, 0u);
    // All lookups after the compulsory first hit the same stored
    // identity.
    EXPECT_EQ(result.harmless, 0u);
    EXPECT_EQ(result.compulsory, 1u);
    EXPECT_EQ(result.unaliasedLookups, 199u);
}

TEST(Interference, OppositeBiasConflictIsDestructive)
{
    // Two branches with opposite strong biases sharing one entry:
    // classic destructive interference.
    Trace trace("fight");
    const Addr a = 0x1000;
    const Addr b = a + 8; // same entry in a 1-bit address index
    for (int i = 0; i < 200; ++i) {
        trace.appendConditional(a, true);
        trace.appendConditional(b, false);
    }
    IndexFunction function{IndexKind::Address, 1, 0};
    const InterferenceResult result =
        classifyInterference(trace, function);
    EXPECT_GT(result.destructive, 100u);
    EXPECT_GT(result.mispredictRatio, 0.4);
}

TEST(Interference, SameDirectionConflictIsHarmlessOrConstructive)
{
    // Two always-taken branches sharing an entry: the sharing can
    // never hurt.
    Trace trace("friends");
    const Addr a = 0x1000;
    const Addr b = a + 8;
    for (int i = 0; i < 200; ++i) {
        trace.appendConditional(a, true);
        trace.appendConditional(b, true);
    }
    IndexFunction function{IndexKind::Address, 1, 0};
    const InterferenceResult result =
        classifyInterference(trace, function);
    EXPECT_EQ(result.destructive, 0u);
    EXPECT_GT(result.harmless + result.constructive +
                  result.unaliasedLookups,
              390u);
    EXPECT_LT(result.mispredictRatio, 0.05);
}

TEST(Interference, RatiosNormalizeByDynamicCount)
{
    Trace trace("r");
    const Addr a = 0x1000;
    const Addr b = a + 8;
    for (int i = 0; i < 50; ++i) {
        trace.appendConditional(a, true);
        trace.appendConditional(b, false);
    }
    IndexFunction function{IndexKind::Address, 1, 0};
    const InterferenceResult result =
        classifyInterference(trace, function);
    EXPECT_NEAR(result.destructiveRatio(),
                static_cast<double>(result.destructive) / 100.0,
                1e-12);
    EXPECT_NEAR(result.constructiveRatio(),
                static_cast<double>(result.constructive) / 100.0,
                1e-12);
}

TEST(Interference, DestructiveDominatesConstructive)
{
    // Young et al.'s observation, which the paper leans on: on a
    // mixed random workload, destructive aliasing far outweighs
    // constructive.
    Trace trace("mixed");
    Rng rng(2024);
    for (int i = 0; i < 20000; ++i) {
        const Addr pc = 0x1000 + 4 * rng.uniformInt(512);
        // Per-site stable bias derived from the address.
        const bool biased_taken = (pc >> 2) % 3 != 0;
        const bool outcome =
            rng.chance(biased_taken ? 0.92 : 0.08);
        trace.appendConditional(pc, outcome);
    }
    IndexFunction function{IndexKind::Address, 6, 0}; // 64 entries
    const InterferenceResult result =
        classifyInterference(trace, function);
    EXPECT_GT(result.destructive, 2 * result.constructive);
}

TEST(Interference, CountsPartitionDynamicBranches)
{
    Trace trace("partition");
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        trace.appendConditional(0x1000 + 4 * rng.uniformInt(64),
                                rng.chance(0.7));
    }
    IndexFunction function{IndexKind::Address, 4, 0};
    const InterferenceResult result =
        classifyInterference(trace, function);
    EXPECT_EQ(result.compulsory + result.unaliasedLookups +
                  result.harmless + result.destructive +
                  result.constructive,
              result.dynamicBranches);
}

} // namespace
} // namespace bpred
