/**
 * @file
 * Unit tests for the three-Cs aliasing decomposition.
 */

#include <gtest/gtest.h>

#include "aliasing/three_c.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

/** A trace of `sites` branches visited round-robin, `rounds` times. */
Trace
roundRobinTrace(u64 sites, u64 rounds)
{
    Trace trace("round-robin");
    Rng rng(5);
    for (u64 r = 0; r < rounds; ++r) {
        for (u64 s = 0; s < sites; ++s) {
            trace.appendConditional(0x1000 + 4 * s, rng.chance(0.5));
        }
    }
    return trace;
}

TEST(ThreeCs, SingleBranchZeroHistoryHasOnlyCompulsory)
{
    Trace trace("one");
    for (int i = 0; i < 100; ++i) {
        trace.appendConditional(0x100, true);
    }
    IndexFunction function{IndexKind::Address, 4, 0};
    const ThreeCsResult result = measureThreeCs(trace, function);
    EXPECT_EQ(result.dynamicBranches, 100u);
    EXPECT_DOUBLE_EQ(result.compulsory, 0.01);
    EXPECT_DOUBLE_EQ(result.totalAliasing, 0.01);
    EXPECT_DOUBLE_EQ(result.faMissRatio, 0.01);
    EXPECT_DOUBLE_EQ(result.capacity(), 0.0);
    EXPECT_DOUBLE_EQ(result.conflict(), 0.0);
}

TEST(ThreeCs, PureConflictScenario)
{
    // Two addresses that collide in a tiny address-indexed table
    // but fit easily in the FA table: all aliasing is conflict.
    Trace trace("conflict");
    const Addr a = 0x1000;
    const Addr b = a + (4 << 1); // same low index bits for 1-bit index
    for (int i = 0; i < 100; ++i) {
        trace.appendConditional(a, true);
        trace.appendConditional(b, true);
    }
    IndexFunction function{IndexKind::Address, 1, 0};
    const ThreeCsResult result = measureThreeCs(trace, function);
    // DM table: every access aliases (ping-pong).
    EXPECT_GT(result.totalAliasing, 0.9);
    // FA table with 2 entries holds both: only compulsory misses.
    EXPECT_DOUBLE_EQ(result.faMissRatio, result.compulsory);
    EXPECT_GT(result.conflict(), 0.9);
}

TEST(ThreeCs, PureCapacityScenario)
{
    // Working set much larger than the table, visited round-robin:
    // both DM and FA alias on essentially every access.
    const Trace trace = roundRobinTrace(256, 20);
    IndexFunction function{IndexKind::Address, 4, 0}; // 16 entries
    const ThreeCsResult result = measureThreeCs(trace, function);
    EXPECT_GT(result.faMissRatio, 0.95);
    EXPECT_GT(result.capacity(), 0.9);
    // Conflict component is small: FA does no better than DM here.
    EXPECT_LT(result.conflict(), 0.05);
}

TEST(ThreeCs, LargeTableRemovesCapacity)
{
    const Trace trace = roundRobinTrace(256, 20);
    IndexFunction function{IndexKind::Address, 10, 0}; // 1024 entries
    const ThreeCsResult result = measureThreeCs(trace, function);
    // Table holds the whole working set.
    EXPECT_DOUBLE_EQ(result.faMissRatio, result.compulsory);
    EXPECT_NEAR(result.capacity(), 0.0, 1e-12);
    EXPECT_NEAR(result.totalAliasing, result.compulsory, 1e-12);
}

TEST(ThreeCs, MultiSharesOnePassResults)
{
    const Trace trace = roundRobinTrace(64, 10);
    std::vector<IndexFunction> functions = {
        {IndexKind::GShare, 8, 4},
        {IndexKind::GSelect, 8, 4},
    };
    const auto results = measureThreeCsMulti(trace, functions);
    ASSERT_EQ(results.size(), 2u);
    // Shared measurements agree across entries.
    EXPECT_DOUBLE_EQ(results[0].faMissRatio, results[1].faMissRatio);
    EXPECT_DOUBLE_EQ(results[0].compulsory, results[1].compulsory);
    EXPECT_EQ(results[0].dynamicBranches,
              results[1].dynamicBranches);
}

TEST(ThreeCs, MismatchedHistoryBitsRejected)
{
    const Trace trace = roundRobinTrace(4, 2);
    std::vector<IndexFunction> functions = {
        {IndexKind::GShare, 8, 4},
        {IndexKind::GShare, 8, 6},
    };
    EXPECT_THROW(measureThreeCsMulti(trace, functions), FatalError);
}

TEST(ThreeCs, EmptyFunctionListRejected)
{
    const Trace trace = roundRobinTrace(4, 2);
    EXPECT_THROW(measureThreeCsMulti(trace, {}), FatalError);
}

TEST(ThreeCs, UnconditionalBranchesEnterHistoryOnly)
{
    // Unconditional branches must not appear in the aliasing
    // denominators but must perturb the history (changing keys).
    Trace with_uncond("u");
    Trace without("w");
    for (int i = 0; i < 50; ++i) {
        with_uncond.appendConditional(0x100, true);
        with_uncond.appendUnconditional(0x200);
        without.appendConditional(0x100, true);
    }
    IndexFunction function{IndexKind::GShare, 6, 4};
    const auto a = measureThreeCs(with_uncond, function);
    const auto b = measureThreeCs(without, function);
    EXPECT_EQ(a.dynamicBranches, b.dynamicBranches);
    // With unconditional branches interleaved, the history at the
    // conditional site differs (1010... vs 1111...), but both
    // streams settle into one repeating (addr, hist) pair; the
    // measurement itself must simply not count the unconditional
    // records.
    EXPECT_EQ(a.dynamicBranches, 50u);
}

TEST(ThreeCs, SkewIndexFunctionsMeasurable)
{
    // The skew-bank index kinds must work as measurement functions
    // too (used by the mapping-conflict analyses): per-bank
    // aliasing ratios are similar across the three banks, and the
    // shared FA measurement is identical.
    const Trace trace = roundRobinTrace(128, 10);
    const std::vector<IndexFunction> functions = {
        {IndexKind::Skew0, 6, 4},
        {IndexKind::Skew1, 6, 4},
        {IndexKind::Skew2, 6, 4},
    };
    const auto results = measureThreeCsMulti(trace, functions);
    ASSERT_EQ(results.size(), 3u);
    for (const auto &result : results) {
        EXPECT_GT(result.totalAliasing, 0.0);
        EXPECT_DOUBLE_EQ(result.faMissRatio,
                         results[0].faMissRatio);
    }
    // Balanced hashes: per-bank aliasing within 25% of each other.
    const double base = results[0].totalAliasing;
    EXPECT_NEAR(results[1].totalAliasing, base, base * 0.25);
    EXPECT_NEAR(results[2].totalAliasing, base, base * 0.25);
}

TEST(IndexFunctionNames, Readable)
{
    EXPECT_EQ((IndexFunction{IndexKind::GShare, 10, 4}).name(),
              "gshare/10/h4");
    EXPECT_EQ((IndexFunction{IndexKind::GSelect, 12, 12}).name(),
              "gselect/12/h12");
    EXPECT_EQ((IndexFunction{IndexKind::Address, 8, 0}).name(),
              "address/8/h0");
    EXPECT_EQ((IndexFunction{IndexKind::Skew1, 9, 6}).name(),
              "skew-f1/9/h6");
}

TEST(IndexFunctionCall, MatchesUnderlyingFunctions)
{
    IndexFunction gshare{IndexKind::GShare, 10, 6};
    IndexFunction address{IndexKind::Address, 10, 0};
    Rng rng(17);
    for (int i = 0; i < 200; ++i) {
        const Addr pc = rng.next();
        const History h = rng.next();
        EXPECT_LT(gshare(pc, h), 1u << 10);
        EXPECT_LT(address(pc, h), 1u << 10);
    }
}

} // namespace
} // namespace bpred
