/**
 * @file
 * Unit tests for the skewed update policies, including the
 * PartialLazy write-reduction policy (§7 extension).
 */

#include <gtest/gtest.h>

#include "core/skewed_predictor.hh"
#include "sim/driver.hh"
#include "workloads/presets.hh"

namespace bpred
{
namespace
{

SkewedPredictor::Config
policyConfig(UpdatePolicy policy)
{
    SkewedPredictor::Config config;
    config.numBanks = 3;
    config.bankIndexBits = 8;
    config.historyBits = 6;
    config.updatePolicy = policy;
    return config;
}

/** Deterministic pseudo-random branch stream for policy tests. */
template <typename Fn>
void
driveStream(Fn &&step, int count = 20000)
{
    u64 lcg = 42;
    for (int i = 0; i < count; ++i) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        const Addr pc = 4 * ((lcg >> 33) % 600);
        const bool outcome = ((lcg >> 13) & 7) != 0; // ~87% taken
        step(pc, outcome);
    }
}

TEST(UpdatePolicies, LazyPredictsExactlyLikePartial)
{
    // Skipping a saturated-counter write never changes the value
    // written, so the two policies must be behaviourally identical.
    SkewedPredictor partial(policyConfig(UpdatePolicy::Partial));
    SkewedPredictor lazy(policyConfig(UpdatePolicy::PartialLazy));
    driveStream([&](Addr pc, bool outcome) {
        ASSERT_EQ(partial.predict(pc), lazy.predict(pc));
        partial.update(pc, outcome);
        lazy.update(pc, outcome);
    });
}

TEST(UpdatePolicies, LazyWritesStrictlyFewer)
{
    SkewedPredictor partial(policyConfig(UpdatePolicy::Partial));
    SkewedPredictor lazy(policyConfig(UpdatePolicy::PartialLazy));
    driveStream([&](Addr pc, bool outcome) {
        partial.update(pc, outcome);
        lazy.update(pc, outcome);
    });
    EXPECT_LT(lazy.bankWrites(), partial.bankWrites());
    // On a strongly biased stream most updates strengthen an
    // already-saturated counter: expect a large reduction.
    EXPECT_LT(lazy.bankWrites() * 2, partial.bankWrites());
}

TEST(UpdatePolicies, TotalWritesEveryBankEveryUpdate)
{
    SkewedPredictor total(policyConfig(UpdatePolicy::Total));
    const int branches = 5000;
    driveStream(
        [&](Addr pc, bool outcome) { total.update(pc, outcome); },
        branches);
    EXPECT_EQ(total.bankWrites(), u64(branches) * 3);
}

TEST(UpdatePolicies, PartialWritesAtMostTotal)
{
    SkewedPredictor partial(policyConfig(UpdatePolicy::Partial));
    const int branches = 5000;
    driveStream(
        [&](Addr pc, bool outcome) { partial.update(pc, outcome); },
        branches);
    EXPECT_LE(partial.bankWrites(), u64(branches) * 3);
    EXPECT_GT(partial.bankWrites(), 0u);
}

TEST(UpdatePolicies, ResetClearsWriteCounter)
{
    SkewedPredictor predictor(policyConfig(UpdatePolicy::Partial));
    predictor.update(0x100, true);
    EXPECT_GT(predictor.bankWrites(), 0u);
    predictor.reset();
    EXPECT_EQ(predictor.bankWrites(), 0u);
}

TEST(UpdatePolicies, NamesDistinguishPolicies)
{
    EXPECT_EQ(
        SkewedPredictor(policyConfig(UpdatePolicy::Total)).name(),
        "gskewed-3x256-h6-total");
    EXPECT_EQ(
        SkewedPredictor(policyConfig(UpdatePolicy::Partial)).name(),
        "gskewed-3x256-h6-partial");
    EXPECT_EQ(SkewedPredictor(policyConfig(UpdatePolicy::PartialLazy))
                  .name(),
              "gskewed-3x256-h6-partial-lazy");
}

TEST(UpdatePolicies, LazyMatchesPartialOnRealWorkload)
{
    const Trace trace = makeIbsTrace("groff", 0.01);
    SkewedPredictor partial(policyConfig(UpdatePolicy::Partial));
    SkewedPredictor lazy(policyConfig(UpdatePolicy::PartialLazy));
    const SimResult a = simulate(partial, trace);
    const SimResult b = simulate(lazy, trace);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_LT(lazy.bankWrites(), partial.bankWrites());
}

} // namespace
} // namespace bpred
