/**
 * @file
 * Unit tests for text-table formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/table.hh"

namespace bpred
{
namespace
{

TEST(FormatDouble, Precision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(3.14159, 4), "3.1416");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(FormatCount, GroupsThousands)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(14288742), "14,288,742");
}

TEST(FormatEntries, PowerOfTwoLabels)
{
    EXPECT_EQ(formatEntries(512), "512");
    EXPECT_EQ(formatEntries(1024), "1K");
    EXPECT_EQ(formatEntries(16384), "16K");
    EXPECT_EQ(formatEntries(262144), "256K");
    EXPECT_EQ(formatEntries(1000), "1000");
}

TEST(TextTable, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.row().cell(std::string("a")).cell(u64(1));
    table.row().cell(std::string("longer")).cell(u64(123456));
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("longer"), std::string::npos);
    EXPECT_NE(text.find("123456"), std::string::npos);
    EXPECT_NE(text.find("name"), std::string::npos);
    // All data lines share the same width.
    std::istringstream lines(text);
    std::string line;
    std::size_t width = 0;
    while (std::getline(lines, line)) {
        if (width == 0) {
            width = line.size();
        }
        EXPECT_EQ(line.size(), width);
    }
}

TEST(TextTable, PercentCell)
{
    TextTable table({"x"});
    table.row().percentCell(12.3456);
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("12.35 %"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable table({"a", "b"});
    table.row().cell(u64(1)).cell(u64(2));
    table.row().cell(u64(3)).cell(u64(4));
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, NumRows)
{
    TextTable table({"a"});
    EXPECT_EQ(table.numRows(), 0u);
    table.row().cell(u64(1));
    table.row().cell(u64(2));
    EXPECT_EQ(table.numRows(), 2u);
}

TEST(TextTable, DoubleCellPrecision)
{
    TextTable table({"v"});
    table.row().cell(1.23456, 3);
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "v\n1.235\n");
}

TEST(PrintHeading, Format)
{
    std::ostringstream os;
    printHeading(os, "Table 1");
    EXPECT_EQ(os.str(), "\n== Table 1 ==\n\n");
}

TEST(TextTable, ShortRowRendersBlank)
{
    TextTable table({"a", "b"});
    table.row().cell(u64(1)); // second column missing
    std::ostringstream os;
    table.print(os);
    // Should not crash, and still produce a full-width row.
    EXPECT_NE(os.str().find("1"), std::string::npos);
}

TEST(TextTable, ToJsonGolden)
{
    TextTable table({"name", "entries", "mispredict"});
    table.row().cell("gshare").cell(u64(4096)).percentCell(4.25);
    table.row().cell("e-gskew").cell(u64(12288)).percentCell(3.5);
    EXPECT_EQ(table.toJson().dump(),
              "{\"columns\":[\"name\",\"entries\",\"mispredict\"],"
              "\"rows\":["
              "{\"name\":\"gshare\",\"entries\":4096,"
              "\"mispredict\":4.25},"
              "{\"name\":\"e-gskew\",\"entries\":12288,"
              "\"mispredict\":3.5}]}");
}

TEST(TextTable, ToJsonKeepsCellTypes)
{
    TextTable table({"s", "u", "i", "d"});
    table.row().cell("x").cell(u64(7)).cell(i64(-3)).cell(1.5, 3);
    const JsonValue json = table.toJson();
    const JsonValue *row = json.find("rows")->at(0);
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->find("s")->dump(), "\"x\"");
    EXPECT_EQ(row->find("u")->dump(), "7");
    EXPECT_EQ(row->find("i")->dump(), "-3");
    EXPECT_EQ(row->find("d")->dump(), "1.5");
}

TEST(TextTable, ToJsonShortAndLongRows)
{
    TextTable table({"a", "b"});
    table.row().cell(u64(1)); // short: "b" omitted
    const JsonValue json = table.toJson();
    const JsonValue *row = json.find("rows")->at(0);
    ASSERT_NE(row, nullptr);
    EXPECT_NE(row->find("a"), nullptr);
    EXPECT_EQ(row->find("b"), nullptr);
}

} // namespace
} // namespace bpred
