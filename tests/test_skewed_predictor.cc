/**
 * @file
 * Unit tests for the gskewed / e-gskew predictor.
 */

#include <gtest/gtest.h>

#include "core/skewed_predictor.hh"
#include "support/logging.hh"

namespace bpred
{
namespace
{

SkewedPredictor::Config
smallConfig()
{
    SkewedPredictor::Config config;
    config.numBanks = 3;
    config.bankIndexBits = 6;
    config.historyBits = 4;
    config.counterBits = 2;
    config.updatePolicy = UpdatePolicy::Partial;
    return config;
}

TEST(SkewedPredictor, RejectsEvenBankCount)
{
    SkewedPredictor::Config config = smallConfig();
    config.numBanks = 2;
    EXPECT_THROW(SkewedPredictor{config}, FatalError);
    config.numBanks = 0;
    EXPECT_THROW(SkewedPredictor{config}, FatalError);
    config.numBanks = 7; // beyond the skewing family
    EXPECT_THROW(SkewedPredictor{config}, FatalError);
}

TEST(SkewedPredictor, GeometryAccessors)
{
    SkewedPredictor predictor(smallConfig());
    EXPECT_EQ(predictor.numBanks(), 3u);
    EXPECT_EQ(predictor.entriesPerBank(), 64u);
    EXPECT_EQ(predictor.totalEntries(), 192u);
    EXPECT_EQ(predictor.storageBits(), 192u * 2);
}

TEST(SkewedPredictor, NameEncodesConfig)
{
    SkewedPredictor predictor(3, 12, 8, UpdatePolicy::Partial);
    EXPECT_EQ(predictor.name(), "gskewed-3x4K-h8-partial");

    SkewedPredictor total(3, 12, 8, UpdatePolicy::Total);
    EXPECT_EQ(total.name(), "gskewed-3x4K-h8-total");

    SkewedPredictor enhanced(makeEnhancedConfig(12, 11));
    EXPECT_EQ(enhanced.name(), "e-gskew-3x4K-h11-partial");
}

TEST(SkewedPredictor, ColdPredictsNotTaken)
{
    SkewedPredictor predictor(smallConfig());
    EXPECT_FALSE(predictor.predict(0x100));
}

TEST(SkewedPredictor, LearnsBiasedBranch)
{
    SkewedPredictor predictor(smallConfig());
    const Addr pc = 0x200;
    // Each update shifts the 4-bit history, so the trained
    // (address, history) context changes until the history
    // saturates at all-taken; train long enough to revisit the
    // saturated context repeatedly.
    for (int i = 0; i < 12; ++i) {
        predictor.predict(pc);
        predictor.update(pc, true);
    }
    EXPECT_TRUE(predictor.predict(pc));
}

TEST(SkewedPredictor, LearnsHistoryCorrelatedBranch)
{
    SkewedPredictor predictor(smallConfig());
    const Addr pc = 0x400;
    bool outcome = false;
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        if (i >= 200) {
            wrong += predictor.predict(pc) != outcome;
        } else {
            predictor.predict(pc);
        }
        predictor.update(pc, outcome);
    }
    EXPECT_EQ(wrong, 0);
}

TEST(SkewedPredictor, BankIndicesAreDistinctFunctions)
{
    SkewedPredictor predictor(smallConfig());
    // Across many addresses the three banks should frequently
    // disagree on the index — identical functions would always
    // agree.
    int all_same = 0;
    for (Addr pc = 0; pc < 4096; pc += 4) {
        const auto indices = predictor.bankIndices(pc);
        ASSERT_EQ(indices.size(), 3u);
        if (indices[0] == indices[1] && indices[1] == indices[2]) {
            ++all_same;
        }
    }
    EXPECT_LT(all_same, 20);
}

TEST(SkewedPredictor, IdenticalIndexingAblationAgrees)
{
    SkewedPredictor::Config config = smallConfig();
    config.indexing = BankIndexing::IdenticalGshare;
    SkewedPredictor predictor(config);
    for (Addr pc = 0; pc < 1024; pc += 4) {
        const auto indices = predictor.bankIndices(pc);
        EXPECT_EQ(indices[0], indices[1]);
        EXPECT_EQ(indices[1], indices[2]);
    }
    EXPECT_NE(predictor.name().find("identical"), std::string::npos);
}

TEST(SkewedPredictor, EnhancedBankZeroIgnoresHistory)
{
    SkewedPredictor enhanced(makeEnhancedConfig(6, 4));
    const Addr pc = 0x300;
    const auto before = enhanced.bankIndices(pc);
    // Shift history by resolving another branch.
    enhanced.predict(0x500);
    enhanced.update(0x500, true);
    const auto after = enhanced.bankIndices(pc);
    EXPECT_EQ(before[0], after[0]); // address-only bank
    // Banks 1/2 see the new history; at least one index moves
    // (probabilistically certain for this concrete setup).
    EXPECT_TRUE(before[1] != after[1] || before[2] != after[2]);
}

TEST(SkewedPredictor, PartialUpdateLeavesDissentingBankAlone)
{
    // Force a state where one bank dissents while the vote is
    // correct, and verify the dissenting counter is untouched.
    SkewedPredictor::Config config = smallConfig();
    config.updatePolicy = UpdatePolicy::Partial;
    SkewedPredictor partial(config);
    config.updatePolicy = UpdatePolicy::Total;
    SkewedPredictor total(config);

    // Train both identically on a stream where a second branch
    // aliases one bank of the first. With a 64-entry bank and a
    // crafted pc pair this is fiddly to construct exactly, so we
    // instead assert the two policies eventually diverge in
    // behaviour on a mixed stream — if partial never skipped an
    // update they would stay identical forever.
    bool diverged = false;
    u64 lcg = 12345;
    for (int i = 0; i < 4000 && !diverged; ++i) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        const Addr pc = 4 * ((lcg >> 33) % 512);
        const bool outcome = ((lcg >> 17) & 3) != 0; // 75% taken
        const bool p1 = partial.predict(pc);
        const bool p2 = total.predict(pc);
        diverged = p1 != p2;
        partial.update(pc, outcome);
        total.update(pc, outcome);
    }
    EXPECT_TRUE(diverged);
}

TEST(SkewedPredictor, UnconditionalShiftsHistory)
{
    SkewedPredictor predictor(smallConfig());
    const Addr pc = 0x700;
    const auto before = predictor.bankIndices(pc);
    predictor.notifyUnconditional(0x100);
    const auto after = predictor.bankIndices(pc);
    // History changed, so skewed indices should change for at
    // least one bank.
    EXPECT_TRUE(before != after);
}

TEST(SkewedPredictor, ResetRestoresColdState)
{
    SkewedPredictor predictor(smallConfig());
    for (int i = 0; i < 8; ++i) {
        predictor.update(0x100, true);
    }
    predictor.reset();
    EXPECT_FALSE(predictor.predict(0x100));
}

TEST(SkewedPredictor, FiveBankConfigWorks)
{
    SkewedPredictor::Config config = smallConfig();
    config.numBanks = 5;
    SkewedPredictor predictor(config);
    const Addr pc = 0x900;
    for (int i = 0; i < 12; ++i) {
        predictor.update(pc, true);
    }
    EXPECT_TRUE(predictor.predict(pc));
    EXPECT_EQ(predictor.bankIndices(pc).size(), 5u);
}

TEST(SkewedPredictor, SingleBankDegeneratesToOneTable)
{
    SkewedPredictor::Config config = smallConfig();
    config.numBanks = 1;
    SkewedPredictor predictor(config);
    const Addr pc = 0x100;
    for (int i = 0; i < 12; ++i) {
        predictor.update(pc, true);
    }
    EXPECT_TRUE(predictor.predict(pc));
    EXPECT_EQ(predictor.totalEntries(), 64u);
}

} // namespace
} // namespace bpred
