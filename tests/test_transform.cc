/**
 * @file
 * Unit tests for trace transformations.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "trace/transform.hh"

namespace bpred
{
namespace
{

Trace
numberedTrace(const std::string &name, Addr base, int count)
{
    Trace trace(name);
    for (int i = 0; i < count; ++i) {
        trace.appendConditional(base + 4 * static_cast<Addr>(i),
                                i % 2 == 0);
    }
    return trace;
}

TEST(SliceTrace, MiddleSlice)
{
    const Trace trace = numberedTrace("t", 0x100, 10);
    const Trace slice = sliceTrace(trace, 3, 4);
    ASSERT_EQ(slice.size(), 4u);
    EXPECT_EQ(slice[0].pc, 0x100u + 12);
    EXPECT_EQ(slice[3].pc, 0x100u + 24);
}

TEST(SliceTrace, ClampsAtEnd)
{
    const Trace trace = numberedTrace("t", 0x100, 10);
    EXPECT_EQ(sliceTrace(trace, 8, 100).size(), 2u);
    EXPECT_EQ(sliceTrace(trace, 10, 5).size(), 0u);
    EXPECT_EQ(sliceTrace(trace, 100, 5).size(), 0u);
}

TEST(SliceTrace, NameMarked)
{
    const Trace trace = numberedTrace("orig", 0x100, 4);
    EXPECT_EQ(sliceTrace(trace, 0, 2).name(), "orig[slice]");
}

TEST(ConcatTraces, PreservesOrder)
{
    const Trace a = numberedTrace("a", 0x100, 3);
    const Trace b = numberedTrace("b", 0x200, 2);
    const Trace joined = concatTraces({&a, &b});
    ASSERT_EQ(joined.size(), 5u);
    EXPECT_EQ(joined[0].pc, 0x100u);
    EXPECT_EQ(joined[2].pc, 0x108u);
    EXPECT_EQ(joined[3].pc, 0x200u);
    EXPECT_EQ(joined[4].pc, 0x204u);
}

TEST(ConcatTraces, RejectsEmptyList)
{
    EXPECT_THROW(concatTraces({}), FatalError);
}

TEST(InterleaveTraces, RoundRobinQuanta)
{
    const Trace a = numberedTrace("a", 0x100, 4);
    const Trace b = numberedTrace("b", 0x200, 4);
    const Trace mix = interleaveTraces({&a, &b}, 2);
    ASSERT_EQ(mix.size(), 8u);
    EXPECT_EQ(mix[0].pc, 0x100u);
    EXPECT_EQ(mix[1].pc, 0x104u);
    EXPECT_EQ(mix[2].pc, 0x200u);
    EXPECT_EQ(mix[3].pc, 0x204u);
    EXPECT_EQ(mix[4].pc, 0x108u);
}

TEST(InterleaveTraces, UnequalLengthsDrainFully)
{
    const Trace a = numberedTrace("a", 0x100, 5);
    const Trace b = numberedTrace("b", 0x200, 1);
    const Trace mix = interleaveTraces({&a, &b}, 2);
    EXPECT_EQ(mix.size(), 6u);
    // All records preserved.
    u64 from_a = 0;
    for (const BranchRecord &record : mix) {
        from_a += record.pc < 0x200;
    }
    EXPECT_EQ(from_a, 5u);
}

TEST(InterleaveTraces, RejectsBadArgs)
{
    const Trace a = numberedTrace("a", 0x100, 2);
    EXPECT_THROW(interleaveTraces({}, 2), FatalError);
    EXPECT_THROW(interleaveTraces({&a}, 0), FatalError);
}

TEST(FilterAddressRange, KeepsHalfOpenRange)
{
    const Trace trace = numberedTrace("t", 0x100, 10);
    const Trace kept =
        filterAddressRange(trace, 0x108, 0x110);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_EQ(kept[0].pc, 0x108u);
    EXPECT_EQ(kept[1].pc, 0x10cu);
}

TEST(FilterAddressRange, EmptyWhenDisjoint)
{
    const Trace trace = numberedTrace("t", 0x100, 4);
    EXPECT_TRUE(filterAddressRange(trace, 0x9000, 0xa000).empty());
}

TEST(Transforms, SliceOfConcatEqualsOriginal)
{
    const Trace a = numberedTrace("a", 0x100, 6);
    const Trace b = numberedTrace("b", 0x200, 6);
    const Trace joined = concatTraces({&a, &b});
    const Trace back = sliceTrace(joined, 6, 6);
    ASSERT_EQ(back.size(), b.size());
    for (std::size_t i = 0; i < b.size(); ++i) {
        EXPECT_EQ(back[i], b[i]);
    }
}

} // namespace
} // namespace bpred
