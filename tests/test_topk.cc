/**
 * @file
 * Unit tests for the bounded top-K (space-saving) counter.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/topk.hh"

namespace bpred
{
namespace
{

TEST(TopKCounter, RejectsZeroCapacity)
{
    EXPECT_THROW(TopKCounter(0), FatalError);
}

TEST(TopKCounter, ExactUnderCapacity)
{
    TopKCounter topk(4);
    topk.add(10);
    topk.add(20);
    topk.add(10);
    topk.add(10, 2);

    EXPECT_EQ(topk.size(), 2u);
    EXPECT_EQ(topk.totalAdded(), 5u);

    const auto items = topk.items();
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(items[0].key, 10u);
    EXPECT_EQ(items[0].count, 4u);
    EXPECT_EQ(items[0].overcount, 0u);
    EXPECT_EQ(items[1].key, 20u);
    EXPECT_EQ(items[1].count, 1u);
    EXPECT_EQ(items[1].overcount, 0u);
}

TEST(TopKCounter, EvictionInheritsMinCount)
{
    TopKCounter topk(2);
    topk.add(1, 5);
    topk.add(2, 1);
    // Capacity full; key 3 evicts the min slot (key 2, count 1) and
    // inherits its count as overcount.
    topk.add(3, 1);

    EXPECT_EQ(topk.size(), 2u);
    const auto items = topk.items();
    EXPECT_EQ(items[0].key, 1u);
    EXPECT_EQ(items[0].count, 5u);
    EXPECT_EQ(items[1].key, 3u);
    EXPECT_EQ(items[1].count, 2u); // min(1) + weight(1)
    EXPECT_EQ(items[1].overcount, 1u);
}

TEST(TopKCounter, EstimateNeverUnderestimates)
{
    // The space-saving invariant: estimate >= true count, and
    // estimate - overcount <= true count.
    TopKCounter topk(3);
    u64 true_count_of_7 = 0;
    const u64 keys[] = {1, 2, 3, 4, 5, 7, 7, 6, 7, 8, 7, 7};
    for (u64 key : keys) {
        topk.add(key);
        if (key == 7) {
            ++true_count_of_7;
        }
    }
    for (const auto &item : topk.items()) {
        if (item.key == 7) {
            EXPECT_GE(item.count, true_count_of_7);
            EXPECT_LE(item.count - item.overcount, true_count_of_7);
            return;
        }
    }
    FAIL() << "heavy key 7 not tracked";
}

TEST(TopKCounter, HeavyHitterGuarantee)
{
    // Any key with true count > total / capacity must be present.
    TopKCounter topk(4);
    for (int round = 0; round < 100; ++round) {
        topk.add(999);                       // the heavy hitter
        topk.add(u64(1000 + round % 37));    // churn
    }
    bool found = false;
    for (const auto &item : topk.items()) {
        found = found || item.key == 999;
    }
    EXPECT_TRUE(found);
    EXPECT_EQ(topk.totalAdded(), 200u);
}

TEST(TopKCounter, ItemsSortedByCountThenKey)
{
    TopKCounter topk(4);
    topk.add(5, 2);
    topk.add(3, 2);
    topk.add(9, 7);
    const auto items = topk.items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].key, 9u);
    EXPECT_EQ(items[1].key, 3u); // tie on count: ascending key
    EXPECT_EQ(items[2].key, 5u);
}

TEST(TopKCounter, Reset)
{
    TopKCounter topk(2);
    topk.add(1);
    topk.add(2);
    topk.reset();
    EXPECT_EQ(topk.size(), 0u);
    EXPECT_EQ(topk.totalAdded(), 0u);
    EXPECT_TRUE(topk.items().empty());
    EXPECT_EQ(topk.capacity(), 2u);
}

} // namespace
} // namespace bpred
