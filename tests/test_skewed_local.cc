/**
 * @file
 * Unit tests for the skewed per-address (pskew) predictor.
 */

#include <gtest/gtest.h>

#include "core/skewed_local.hh"
#include "predictors/local_two_level.hh"
#include "sim/driver.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/presets.hh"

namespace bpred
{
namespace
{

TEST(SkewedLocal, LearnsShortLocalPattern)
{
    SkewedLocalPredictor predictor(8, 8, 3, 8);
    const Addr pc = 0x40;
    const bool pattern[3] = {true, true, false};
    int wrong = 0;
    for (int i = 0; i < 600; ++i) {
        const bool outcome = pattern[i % 3];
        if (i >= 300) {
            wrong += predictor.predict(pc) != outcome;
        }
        predictor.update(pc, outcome);
    }
    EXPECT_EQ(wrong, 0);
}

TEST(SkewedLocal, RejectsBadGeometry)
{
    EXPECT_THROW(SkewedLocalPredictor(8, 8, 2, 8), FatalError);
    EXPECT_THROW(SkewedLocalPredictor(8, 0, 3, 8), FatalError);
    EXPECT_THROW(SkewedLocalPredictor(8, 17, 3, 8), FatalError);
}

TEST(SkewedLocal, StorageAccountsBhtAndBanks)
{
    SkewedLocalPredictor predictor(10, 8, 3, 9, UpdatePolicy::Partial,
                                   2);
    EXPECT_EQ(predictor.storageBits(),
              1024u * 8 + 3u * 512 * 2);
}

TEST(SkewedLocal, Name)
{
    SkewedLocalPredictor predictor(10, 8, 3, 12);
    EXPECT_EQ(predictor.name(), "pskew-1Kx8-3x4K");
}

TEST(SkewedLocal, ResetForgets)
{
    SkewedLocalPredictor predictor(6, 4, 3, 6);
    for (int i = 0; i < 30; ++i) {
        predictor.update(0x10, true);
    }
    EXPECT_TRUE(predictor.predict(0x10));
    predictor.reset();
    EXPECT_FALSE(predictor.predict(0x10));
}

/**
 * Drive one alternating branch (next = !last) and one
 * double-alternating branch (T,T,N,N,...). With a 2-bit local
 * history they realize *different* history->outcome functions that
 * collide on history values 01 and 10 with opposite answers:
 * PAg's shared pattern entries ping-pong; pskew mixes the address
 * into the bank indices and separates them.
 */
template <typename P>
int
runConflictPair(P &predictor)
{
    const Addr a = 0x100;
    const Addr b = 0x104;
    int wrong = 0;
    for (int i = 0; i < 800; ++i) {
        const bool score = i >= 400;
        const bool a_outcome = i % 2 == 0;          // T N T N
        const bool b_outcome = (i % 4) < 2;         // T T N N
        wrong += score && predictor.predict(a) != a_outcome;
        predictor.update(a, a_outcome);
        wrong += score && predictor.predict(b) != b_outcome;
        predictor.update(b, b_outcome);
    }
    return wrong;
}

TEST(SkewedLocal, SeparatesDestructivePatternConflicts)
{
    LocalTwoLevelPredictor pag(8, 2);
    SkewedLocalPredictor pskew(8, 2, 3, 6);
    const int pag_wrong = runConflictPair(pag);
    const int pskew_wrong = runConflictPair(pskew);
    EXPECT_EQ(pskew_wrong, 0);
    EXPECT_GT(pag_wrong, 100);
}

TEST(SkewedLocal, WinsOnConflictHeavyWorkload)
{
    // Scale the conflict pair up: many branch pairs with clashing
    // history->outcome functions, randomly interleaved. This is
    // the regime the skewing technique targets (destructive
    // pattern-table interference).
    // 2-bit local history: the alternating sites live on history
    // values {01, 10} and the double-alternating sites visit all
    // four values — the classes overlap on 01/10 with opposite
    // outcomes, so PAg's four shared pattern entries thrash.
    LocalTwoLevelPredictor pag(10, 2);
    SkewedLocalPredictor pskew(10, 2, 3, 9);
    Rng rng(77);
    std::vector<u32> phase(256, 0);

    int pag_wrong = 0;
    int pskew_wrong = 0;
    for (int i = 0; i < 60000; ++i) {
        const u32 site = static_cast<u32>(rng.uniformInt(256));
        const Addr pc = 0x1000 + 4 * site;
        // Half the sites alternate, half double-alternate.
        const u32 p = phase[site]++;
        const bool outcome =
            site % 2 == 0 ? p % 2 == 0 : (p % 4) < 2;
        const bool score = i >= 20000;
        pag_wrong += score && pag.predict(pc) != outcome;
        pag.update(pc, outcome);
        pskew_wrong += score && pskew.predict(pc) != outcome;
        pskew.update(pc, outcome);
    }
    EXPECT_LT(pskew_wrong, pag_wrong);
}

TEST(SkewedLocal, PagSharingWinsWhenAliasingIsConstructive)
{
    // The honest flip side (recorded in EXPERIMENTS.md): on our
    // IBS-like workloads most same-history branches agree, so
    // PAg's shared pattern table generalizes across branches and
    // the address-mixing of pskew costs more capacity than its
    // conflict removal recovers. Pin down that finding so it is
    // not silently lost.
    const Trace trace = makeIbsTrace("nroff", 0.02);
    LocalTwoLevelPredictor pag(10, 10);
    SkewedLocalPredictor pskew(10, 10, 3, 10);
    const double pag_rate = simulate(pag, trace).mispredictRatio();
    const double pskew_rate =
        simulate(pskew, trace).mispredictRatio();
    EXPECT_LT(pag_rate, pskew_rate);
    // ...but pskew stays in a sane range (not catastrophically off).
    EXPECT_LT(pskew_rate, pag_rate * 2.5);
}

} // namespace
} // namespace bpred
