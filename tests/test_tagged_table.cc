/**
 * @file
 * Unit tests for the direct-mapped tagged shadow table.
 */

#include <gtest/gtest.h>

#include "aliasing/tagged_table.hh"

namespace bpred
{
namespace
{

TEST(TaggedDmTable, ColdAccessIsMiss)
{
    TaggedDirectMappedTable table(4);
    EXPECT_TRUE(table.access(0, 111));
    EXPECT_EQ(table.aliasing().events(), 1u);
    EXPECT_EQ(table.aliasing().total(), 1u);
}

TEST(TaggedDmTable, RepeatAccessIsHit)
{
    TaggedDirectMappedTable table(4);
    table.access(3, 42);
    EXPECT_FALSE(table.access(3, 42));
    EXPECT_DOUBLE_EQ(table.aliasing().ratio(), 0.5);
}

TEST(TaggedDmTable, DifferentKeySameIndexAliases)
{
    TaggedDirectMappedTable table(4);
    table.access(5, 1);
    EXPECT_TRUE(table.access(5, 2)); // conflict
    EXPECT_TRUE(table.access(5, 1)); // evicted, aliases again
}

TEST(TaggedDmTable, IndependentEntries)
{
    TaggedDirectMappedTable table(3);
    table.access(0, 10);
    table.access(1, 11);
    EXPECT_FALSE(table.access(0, 10));
    EXPECT_FALSE(table.access(1, 11));
}

TEST(TaggedDmTable, Size)
{
    TaggedDirectMappedTable table(10);
    EXPECT_EQ(table.size(), 1024u);
}

TEST(TaggedDmTable, ResetClears)
{
    TaggedDirectMappedTable table(4);
    table.access(0, 7);
    table.access(0, 7);
    table.reset();
    EXPECT_EQ(table.aliasing().total(), 0u);
    EXPECT_TRUE(table.access(0, 7)); // cold again
}

TEST(TaggedDmTable, PingPongConflictPattern)
{
    // Two substreams sharing one entry alias on every access — the
    // canonical conflict-aliasing picture.
    TaggedDirectMappedTable table(2);
    int misses = 0;
    for (int i = 0; i < 100; ++i) {
        misses += table.access(1, i % 2 == 0 ? 100 : 200);
    }
    EXPECT_EQ(misses, 100);
}

} // namespace
} // namespace bpred
