/**
 * @file
 * Unit tests for the shared-hysteresis skewed predictor encoding.
 */

#include <gtest/gtest.h>

#include "core/shared_hysteresis.hh"
#include "sim/driver.hh"
#include "support/logging.hh"
#include "workloads/presets.hh"

namespace bpred
{
namespace
{

SkewedPredictor::Config
shConfig(unsigned bank_bits = 6, unsigned history = 4)
{
    SkewedPredictor::Config config;
    config.numBanks = 3;
    config.bankIndexBits = bank_bits;
    config.historyBits = history;
    config.counterBits = 2;
    config.updatePolicy = UpdatePolicy::Partial;
    return config;
}

TEST(SharedHysteresis, StorageIsOnePointFiveBitsPerEntry)
{
    SharedHysteresisSkewedPredictor predictor(shConfig(10));
    // 3 banks x (1024 prediction bits + 512 hysteresis bits).
    EXPECT_EQ(predictor.storageBits(), 3u * (1024 + 512));
    // 25% cheaper than the full 2-bit encoding.
    SkewedPredictor full(shConfig(10));
    EXPECT_EQ(predictor.storageBits() * 4, full.storageBits() * 3);
}

TEST(SharedHysteresis, RejectsNonTwoBitCounters)
{
    SkewedPredictor::Config config = shConfig();
    config.counterBits = 1;
    EXPECT_THROW(SharedHysteresisSkewedPredictor{config},
                 FatalError);
}

TEST(SharedHysteresis, RejectsEvenBanks)
{
    SkewedPredictor::Config config = shConfig();
    config.numBanks = 4;
    EXPECT_THROW(SharedHysteresisSkewedPredictor{config},
                 FatalError);
}

TEST(SharedHysteresis, LearnsBiasedBranch)
{
    SharedHysteresisSkewedPredictor predictor(shConfig());
    const Addr pc = 0x200;
    for (int i = 0; i < 12; ++i) {
        predictor.predict(pc);
        predictor.update(pc, true);
    }
    EXPECT_TRUE(predictor.predict(pc));
}

TEST(SharedHysteresis, LearnsAlternatingBranch)
{
    SharedHysteresisSkewedPredictor predictor(shConfig());
    const Addr pc = 0x400;
    bool outcome = false;
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        if (i >= 200) {
            wrong += predictor.predict(pc) != outcome;
        }
        predictor.update(pc, outcome);
    }
    EXPECT_EQ(wrong, 0);
}

TEST(SharedHysteresis, NeighbourSharingOnlyTouchesHysteresis)
{
    // Two (addr, hist) streams that land on neighbouring entries
    // share a hysteresis bit but never a prediction bit; a
    // direction learned strongly by one cannot be *flipped* by a
    // single opposing update from the neighbour.
    SharedHysteresisSkewedPredictor predictor(shConfig(6, 0));
    const Addr pc = 0x100;
    for (int i = 0; i < 8; ++i) {
        predictor.update(pc, true);
    }
    EXPECT_TRUE(predictor.predict(pc));
}

TEST(SharedHysteresis, CloseToFullEncodingAccuracy)
{
    // On a real workload the 1.5-bit encoding should track the
    // 2-bit encoding within a modest margin at equal geometry.
    const Trace trace = makeIbsTrace("verilog", 0.02);
    SharedHysteresisSkewedPredictor sh(shConfig(10, 8));
    SkewedPredictor full(shConfig(10, 8));
    const double sh_rate = simulate(sh, trace).mispredictRatio();
    const double full_rate =
        simulate(full, trace).mispredictRatio();
    EXPECT_LT(sh_rate, full_rate * 1.15 + 0.01);
    EXPECT_GT(sh_rate, full_rate * 0.9 - 0.01);
}

TEST(SharedHysteresis, EnhancedVariantWorks)
{
    SkewedPredictor::Config config = makeEnhancedConfig(6, 4);
    SharedHysteresisSkewedPredictor predictor(config);
    EXPECT_EQ(predictor.name(), "e-gskew-sh-3x64-h4-partial");
    for (int i = 0; i < 12; ++i) {
        predictor.update(0x40, true);
    }
    EXPECT_TRUE(predictor.predict(0x40));
}

TEST(SharedHysteresis, NameAndReset)
{
    SharedHysteresisSkewedPredictor predictor(shConfig(12, 8));
    EXPECT_EQ(predictor.name(), "gskewed-sh-3x4K-h8-partial");
    for (int i = 0; i < 12; ++i) {
        predictor.update(0x40, true);
    }
    predictor.reset();
    EXPECT_FALSE(predictor.predict(0x40));
}

} // namespace
} // namespace bpred
