/**
 * @file
 * Unit tests for windowed misprediction timelines.
 */

#include <gtest/gtest.h>

#include "predictors/bimodal.hh"
#include "predictors/static_pred.hh"
#include "sim/timeline.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

Trace
phasedTrace()
{
    // Phase 1: branch taken; phase 2: same branch not-taken.
    Trace trace("phased");
    for (int i = 0; i < 1000; ++i) {
        trace.appendConditional(0x100, true);
    }
    for (int i = 0; i < 1000; ++i) {
        trace.appendConditional(0x100, false);
    }
    return trace;
}

TEST(Timeline, WindowCountAndSizes)
{
    StaticPredictor predictor(true);
    const TimelineResult result =
        runTimeline(predictor, phasedTrace(), 100);
    EXPECT_EQ(result.windowSize, 100u);
    EXPECT_EQ(result.windows.size(), 20u);
}

TEST(Timeline, CapturesPhaseChange)
{
    StaticPredictor predictor(true);
    const TimelineResult result =
        runTimeline(predictor, phasedTrace(), 100);
    // First half perfect, second half all wrong.
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(result.windows[i], 0.0) << i;
    }
    for (std::size_t i = 10; i < 20; ++i) {
        EXPECT_DOUBLE_EQ(result.windows[i], 1.0) << i;
    }
    EXPECT_DOUBLE_EQ(result.mean(), 0.5);
    EXPECT_DOUBLE_EQ(result.worst(), 1.0);
}

TEST(Timeline, AdaptivePredictorRecoversAfterPhaseChange)
{
    BimodalPredictor predictor(4);
    const TimelineResult result =
        runTimeline(predictor, phasedTrace(), 100);
    // The window containing the flip is bad; later windows recover.
    EXPECT_GT(result.windows[10], 0.0);
    EXPECT_DOUBLE_EQ(result.windows[19], 0.0);
}

TEST(Timeline, WarmupEstimate)
{
    // A predictor that mispredicts heavily at first then settles.
    BimodalPredictor predictor(8);
    Trace trace("warmup");
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        const Addr pc = 0x1000 + 4 * rng.uniformInt(200);
        trace.appendConditional(pc, (pc >> 2) % 2 == 0);
    }
    const TimelineResult result =
        runTimeline(predictor, trace, 500);
    // Cold window 0 must be worse than steady state; warm-up ends
    // within the first few windows.
    EXPECT_GT(result.windows.front(),
              result.windows.back() + 0.01);
    EXPECT_LE(result.warmupWindows(0.02), 4u);
}

TEST(Timeline, PartialFinalWindowIncludedWhenBigEnough)
{
    StaticPredictor predictor(true);
    Trace trace("partial");
    for (int i = 0; i < 250; ++i) {
        trace.appendConditional(0x10, true);
    }
    const TimelineResult result = runTimeline(predictor, trace, 100);
    // 2 full windows + a half window (>= 10% of window size).
    EXPECT_EQ(result.windows.size(), 3u);
}

TEST(Timeline, TinyTrailIgnored)
{
    StaticPredictor predictor(true);
    Trace trace("tiny-trail");
    for (int i = 0; i < 205; ++i) {
        trace.appendConditional(0x10, true);
    }
    const TimelineResult result = runTimeline(predictor, trace, 100);
    EXPECT_EQ(result.windows.size(), 2u);
}

TEST(Timeline, UnconditionalsDoNotFillWindows)
{
    StaticPredictor predictor(true);
    Trace trace("uncond");
    for (int i = 0; i < 100; ++i) {
        trace.appendConditional(0x10, true);
        trace.appendUnconditional(0x20);
        trace.appendUnconditional(0x24);
    }
    const TimelineResult result = runTimeline(predictor, trace, 50);
    EXPECT_EQ(result.windows.size(), 2u);
}

TEST(Timeline, RejectsZeroWindow)
{
    StaticPredictor predictor(true);
    EXPECT_THROW(runTimeline(predictor, Trace("x"), 0), FatalError);
}

TEST(Timeline, EmptyTrace)
{
    StaticPredictor predictor(true);
    const TimelineResult result =
        runTimeline(predictor, Trace("empty"), 100);
    EXPECT_TRUE(result.windows.empty());
    EXPECT_DOUBLE_EQ(result.mean(), 0.0);
    EXPECT_DOUBLE_EQ(result.worst(), 0.0);
    EXPECT_EQ(result.warmupWindows(), 0u);
}

} // namespace
} // namespace bpred
