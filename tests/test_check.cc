/**
 * @file
 * Unit tests for the checked-build invariant layer
 * (support/check.hh).
 *
 * This translation unit force-enables BPRED_CHECKED before any
 * include, so the BP_CHECK macros and strong-type validation are
 * live here regardless of how the tree was configured; violations
 * are observed as death (panic() aborts).
 */

#define BPRED_CHECKED 1

#include <gtest/gtest.h>

#include "predictors/history.hh"
#include "predictors/info_vector.hh"
#include "support/check.hh"
#include "support/sat_counter.hh"

namespace bpred
{
namespace
{

TEST(BpCheck, PassingConditionIsSilent)
{
    BP_CHECK(1 + 1 == 2, "arithmetic still works");
    BP_CHECK(true, "trivially true");
}

TEST(BpCheckDeathTest, FailingConditionPanics)
{
    EXPECT_DEATH(BP_CHECK(false, "intentional failure"),
                 "BP_CHECK failed");
}

TEST(BpCheckDeathTest, MessageAndConditionAreReported)
{
    const int answer = 43;
    EXPECT_DEATH(BP_CHECK(answer == 42, "wrong answer"),
                 "answer == 42.*wrong answer");
}

TEST(BankIndexTest, InRangeValuePassesThrough)
{
    const BankIndex index(7, 8);
    EXPECT_EQ(index.get(), 7u);
    const u64 raw = index; // implicit conversion
    EXPECT_EQ(raw, 7u);
}

TEST(BankIndexDeathTest, OutOfRangeValuePanics)
{
    EXPECT_DEATH(BankIndex(8, 8), "table index out of range");
    EXPECT_DEATH(BankIndex(1, 0), "table index out of range");
}

TEST(HistWidthTest, ValidWidthPassesThrough)
{
    const HistWidth width(12);
    EXPECT_EQ(width.get(), 12u);
    const unsigned raw = width;
    EXPECT_EQ(raw, 12u);
    EXPECT_EQ(HistWidth(64).get(), 64u); // boundary
}

TEST(HistWidthDeathTest, OversizedWidthPanics)
{
    EXPECT_DEATH(HistWidth(65), "history width exceeds 64 bits");
}

TEST(CheckedHistory, ValueValidatesWidthImplicitly)
{
    GlobalHistory history;
    history.shiftIn(true);
    history.shiftIn(false);
    history.shiftIn(true);
    EXPECT_EQ(history.value(2), 0b01u);
    EXPECT_EQ(history.value(64), history.raw());
    EXPECT_DEATH(history.value(70), "history width exceeds 64 bits");
}

TEST(CheckedSatCounterArray, BoundsViolationsPanic)
{
    SatCounterArray table(16, 2);
    table.update(15, true);
    EXPECT_TRUE(table.value(15) == 1);
    EXPECT_DEATH(table.set(16, 0), "counter write out of range");
    EXPECT_DEATH(table.set(0, 4), "counter value exceeds its width");
#ifndef NDEBUG
    // The per-prediction accessors use BP_DCHECK, which NDEBUG
    // compiles out even in checked builds.
    EXPECT_DEATH(table.update(16, true), "counter write out of range");
    EXPECT_DEATH(table.value(16), "counter read out of range");
#endif
}

TEST(CheckedIndexFunctions, OutputsStayInRange)
{
    // Every index function returns a BankIndex already validated
    // against its table size; in this TU a violation would panic,
    // so plain calls double as in-range assertions.
    for (Addr pc = 0; pc < 4096; pc += 4) {
        const u64 gshare = gshareIndex(pc, pc * 31, 12, 10);
        EXPECT_LT(gshare, 1u << 10);
        const u64 gselect = gselectIndex(pc, pc * 31, 6, 10);
        EXPECT_LT(gselect, 1u << 10);
        const u64 addr = addressIndex(pc, 8);
        EXPECT_LT(addr, 1u << 8);
    }
}

} // namespace
} // namespace bpred
