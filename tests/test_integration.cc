/**
 * @file
 * Cross-module integration tests: the paper's qualitative claims
 * on small synthetic workloads.
 */

#include <gtest/gtest.h>

#include "aliasing/falru_predictor.hh"
#include "aliasing/three_c.hh"
#include "core/skewed_predictor.hh"
#include "predictors/gselect.hh"
#include "predictors/gshare.hh"
#include "sim/driver.hh"
#include "workloads/presets.hh"

namespace bpred
{
namespace
{

/** Shared small trace: one benchmark at 1/20 scale (100k branches). */
const Trace &
sharedTrace()
{
    static const Trace trace = makeIbsTrace("groff", 0.05);
    return trace;
}

TEST(Integration, GSelectAliasesMoreThanGShare)
{
    // The paper's §3.2 claim, in its precise form: gselect has a
    // higher *aliasing rate* than gshare, pronounced with 12
    // history bits (few or no address bits survive in gselect's
    // index). The misprediction-rate consequence depends on how
    // destructive the aliasing is, so the structural claim is the
    // robust one to pin down.
    for (unsigned index_bits : {10u, 12u, 14u}) {
        const auto results = measureThreeCsMulti(
            sharedTrace(),
            {{IndexKind::GShare, index_bits, 12},
             {IndexKind::GSelect, index_bits, 12}});
        EXPECT_LT(results[0].totalAliasing,
                  results[1].totalAliasing)
            << "index bits " << index_bits;
    }
}

TEST(Integration, GskewedBeatsEqualStorageGShare)
{
    // 3x1K gskewed (3072 entries) vs 4K gshare: less total storage,
    // better (or equal) accuracy in the conflict-dominated regime.
    SkewedPredictor gskewed(3, 10, 8, UpdatePolicy::Partial);
    GSharePredictor gshare(12, 8);
    const SimResult skew = simulate(gskewed, sharedTrace());
    const SimResult share = simulate(gshare, sharedTrace());
    EXPECT_LT(skew.mispredictRatio(),
              share.mispredictRatio() * 1.05);
    EXPECT_LT(skew.storageBits, share.storageBits);
}

TEST(Integration, PartialUpdateNotWorseThanTotal)
{
    SkewedPredictor partial(3, 10, 8, UpdatePolicy::Partial);
    SkewedPredictor total(3, 10, 8, UpdatePolicy::Total);
    const SimResult a = simulate(partial, sharedTrace());
    const SimResult b = simulate(total, sharedTrace());
    EXPECT_LE(a.mispredicts, b.mispredicts * 102 / 100);
}

TEST(Integration, SkewingBeatsIdenticalIndexing)
{
    SkewedPredictor::Config config;
    config.numBanks = 3;
    config.bankIndexBits = 10;
    config.historyBits = 8;
    config.updatePolicy = UpdatePolicy::Partial;

    SkewedPredictor skewed(config);
    config.indexing = BankIndexing::IdenticalGshare;
    SkewedPredictor identical(config);

    const SimResult a = simulate(skewed, sharedTrace());
    const SimResult b = simulate(identical, sharedTrace());
    // Replicating one index across banks wastes the redundancy.
    EXPECT_LT(a.mispredictRatio(), b.mispredictRatio());
}

TEST(Integration, BiggerGShareTablesMonotonicallyBetter)
{
    double previous = 1.0;
    for (unsigned bits : {8u, 10u, 12u, 14u}) {
        GSharePredictor predictor(bits, 8);
        const double ratio =
            simulate(predictor, sharedTrace()).mispredictRatio();
        EXPECT_LE(ratio, previous * 1.02) << bits;
        previous = ratio;
    }
}

TEST(Integration, ConflictDominatesInLargeTables)
{
    // Figure 1's conclusion on a small scale: with a big enough
    // table, the FA miss ratio (compulsory+capacity) collapses
    // while direct-mapped aliasing persists.
    IndexFunction function{IndexKind::GShare, 12, 4};
    const ThreeCsResult result =
        measureThreeCs(sharedTrace(), function);
    EXPECT_GT(result.conflict(), result.capacity());
}

TEST(Integration, GskewedApproachesFaLruYardstick)
{
    // Figure 8's comparison: 3N gskewed partial vs N-entry FA-LRU.
    SkewedPredictor gskewed(3, 10, 4, UpdatePolicy::Partial);
    FaLruPredictor fa_lru(1024, 4);
    const SimResult skew = simulate(gskewed, sharedTrace());
    const SimResult fa = simulate(fa_lru, sharedTrace());
    // Within 1.5x of the (unbuildable) associative yardstick.
    EXPECT_LT(skew.mispredictRatio(),
              fa.mispredictRatio() * 1.5 + 0.01);
}

TEST(Integration, SuiteTraceStatsSane)
{
    const TraceStats stats = computeTraceStats(sharedTrace());
    EXPECT_EQ(stats.dynamicConditional, 100000u);
    // Static branch population in the expected range for the
    // preset (user + kernel sites that actually executed).
    EXPECT_GT(stats.staticConditional, 1000u);
    EXPECT_LT(stats.staticConditional, 8000u);
    // Taken ratio in a plausible band.
    EXPECT_GT(stats.takenRatio(), 0.35);
    EXPECT_LT(stats.takenRatio(), 0.85);
}

} // namespace
} // namespace bpred
