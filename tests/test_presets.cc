/**
 * @file
 * Unit tests for the IBS-like benchmark presets.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "support/logging.hh"
#include "workloads/presets.hh"

namespace bpred
{
namespace
{

TEST(Presets, SixBenchmarksInPaperOrder)
{
    const auto &names = ibsBenchmarkNames();
    ASSERT_EQ(names.size(), 6u);
    EXPECT_EQ(names[0], "groff");
    EXPECT_EQ(names[1], "gs");
    EXPECT_EQ(names[2], "mpeg_play");
    EXPECT_EQ(names[3], "nroff");
    EXPECT_EQ(names[4], "real_gcc");
    EXPECT_EQ(names[5], "verilog");
}

TEST(Presets, StaticTargetsMatchTable1)
{
    EXPECT_EQ(ibsPreset("groff").user.staticBranchTarget, 5634u);
    EXPECT_EQ(ibsPreset("gs").user.staticBranchTarget, 10935u);
    EXPECT_EQ(ibsPreset("mpeg_play").user.staticBranchTarget, 4752u);
    EXPECT_EQ(ibsPreset("nroff").user.staticBranchTarget, 4480u);
    EXPECT_EQ(ibsPreset("real_gcc").user.staticBranchTarget, 16716u);
    EXPECT_EQ(ibsPreset("verilog").user.staticBranchTarget, 3918u);
}

TEST(Presets, UnknownNameRejected)
{
    EXPECT_THROW(ibsPreset("doom"), FatalError);
}

TEST(Presets, ScaleMultipliesDynamicTarget)
{
    const u64 base = ibsPreset("groff", 1.0).dynamicConditionalTarget;
    EXPECT_EQ(ibsPreset("groff", 0.5).dynamicConditionalTarget,
              base / 2);
    EXPECT_EQ(ibsPreset("groff", 2.0).dynamicConditionalTarget,
              base * 2);
}

TEST(Presets, InvalidScaleRejected)
{
    EXPECT_THROW(ibsPreset("groff", 0.0), FatalError);
    EXPECT_THROW(ibsPreset("groff", -1.0), FatalError);
}

TEST(Presets, TraceGenerationSmallScale)
{
    const Trace trace = makeIbsTrace("verilog", 0.01); // 20k branches
    const TraceStats stats = computeTraceStats(trace);
    EXPECT_EQ(trace.name(), "verilog");
    EXPECT_EQ(stats.dynamicConditional, 20000u);
    EXPECT_GT(stats.staticConditional, 500u);
    EXPECT_GT(stats.dynamicUnconditional, 0u);
}

TEST(Presets, DistinctBenchmarksDistinctStreams)
{
    const Trace groff = makeIbsTrace("groff", 0.005);
    const Trace nroff = makeIbsTrace("nroff", 0.005);
    bool differs = groff.size() != nroff.size();
    for (std::size_t i = 0; !differs && i < groff.size(); ++i) {
        differs = !(groff[i] == nroff[i]);
    }
    EXPECT_TRUE(differs);
}

TEST(Presets, EffectiveScaleUsesEnvOverride)
{
    ::setenv("BPRED_TRACE_SCALE", "0.25", 1);
    EXPECT_DOUBLE_EQ(effectiveTraceScale(1.0), 0.25);
    ::setenv("BPRED_TRACE_SCALE", "garbage", 1);
    setQuiet(true);
    EXPECT_DOUBLE_EQ(effectiveTraceScale(1.0), 1.0);
    setQuiet(false);
    ::unsetenv("BPRED_TRACE_SCALE");
    EXPECT_DOUBLE_EQ(effectiveTraceScale(0.5), 0.5);
}

TEST(Presets, BonusBenchmarksAvailable)
{
    const auto &all = ibsAllBenchmarkNames();
    ASSERT_EQ(all.size(), 8u);
    EXPECT_EQ(all[6], "sdet");
    EXPECT_EQ(all[7], "video_play");
    // The paper's six come first, unchanged.
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(all[i], ibsBenchmarkNames()[i]);
    }
    // Both presets build and generate.
    EXPECT_EQ(ibsPreset("sdet").kernelShare, 0.35);
    const Trace trace = makeIbsTrace("video_play", 0.005);
    EXPECT_EQ(computeTraceStats(trace).dynamicConditional, 10000u);
}

TEST(Presets, LargestStaticSetIsRealGcc)
{
    // The Table 1 ordering property the experiments rely on.
    const auto gcc = ibsPreset("real_gcc").user.staticBranchTarget;
    for (const std::string &name : ibsBenchmarkNames()) {
        EXPECT_LE(ibsPreset(name).user.staticBranchTarget, gcc);
    }
}

} // namespace
} // namespace bpred
