/**
 * @file
 * Unit tests for the bi-mode predictor.
 */

#include <gtest/gtest.h>

#include "predictors/bimode.hh"
#include "predictors/gshare.hh"
#include "sim/driver.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

TEST(BiMode, LearnsBiasedBranches)
{
    BiModePredictor predictor(8, 4, 8);
    const Addr taken_pc = 0x100;
    const Addr not_taken_pc = 0x104;
    for (int i = 0; i < 20; ++i) {
        predictor.update(taken_pc, true);
        predictor.update(not_taken_pc, false);
    }
    EXPECT_TRUE(predictor.predict(taken_pc));
    EXPECT_FALSE(predictor.predict(not_taken_pc));
}

TEST(BiMode, LearnsAlternatingBranch)
{
    BiModePredictor predictor(8, 4, 8);
    const Addr pc = 0x200;
    bool outcome = false;
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        if (i >= 200) {
            wrong += predictor.predict(pc) != outcome;
        }
        predictor.update(pc, outcome);
    }
    EXPECT_EQ(wrong, 0);
}

TEST(BiMode, SegregationAbsorbsOppositeBiasConflict)
{
    // Two branches with opposite biases whose (pc, history) pairs
    // collide in the direction tables: bi-mode sends them to
    // different direction tables via the choice table, so the
    // collision never materializes. gshare at the same direction
    // geometry ping-pongs.
    BiModePredictor bimode(1, 0, 8); // 2-entry direction tables
    GSharePredictor gshare(1, 0);
    const Addr a = 0x100;
    const Addr b = a + 8; // same direction-table entry

    int bimode_wrong = 0;
    int gshare_wrong = 0;
    for (int i = 0; i < 300; ++i) {
        const bool score = i >= 100;
        bimode_wrong += score && bimode.predict(a) != true;
        bimode.update(a, true);
        gshare_wrong += score && gshare.predict(a) != true;
        gshare.update(a, true);

        bimode_wrong += score && bimode.predict(b) != false;
        bimode.update(b, false);
        gshare_wrong += score && gshare.predict(b) != false;
        gshare.update(b, false);
    }
    EXPECT_EQ(bimode_wrong, 0);
    EXPECT_GE(gshare_wrong, 180);
}

TEST(BiMode, NameAndStorage)
{
    BiModePredictor predictor(12, 10, 11);
    EXPECT_EQ(predictor.name(), "bimode-2x4K+2K-h10");
    EXPECT_EQ(predictor.storageBits(),
              2u * 4096 * 2 + 2048u * 2);
}

TEST(BiMode, ResetRestoresColdState)
{
    BiModePredictor predictor(8, 4, 8);
    for (int i = 0; i < 20; ++i) {
        predictor.update(0x40, false);
    }
    EXPECT_FALSE(predictor.predict(0x40));
    predictor.reset();
    // Cold choice is weakly-taken and the taken table leans taken.
    EXPECT_TRUE(predictor.predict(0x40));
}

TEST(BiMode, CompetitiveWithGShareOnBiasedAliasingStream)
{
    Rng rng(21);
    Trace trace("mixed");
    for (int i = 0; i < 40000; ++i) {
        const Addr pc = 0x1000 + 4 * rng.uniformInt(1024);
        const bool dominant = (pc >> 2) % 2 == 0;
        trace.appendConditional(pc,
                                rng.chance(dominant ? 0.97 : 0.03));
    }
    // Equal total storage: bimode 2x256+512 counters = 1.5Kbit +
    // choice vs gshare 1K entries = 2Kbit.
    BiModePredictor bimode(8, 6, 9);
    GSharePredictor gshare(10, 6);
    const double bimode_rate =
        simulate(bimode, trace).mispredictRatio();
    const double gshare_rate =
        simulate(gshare, trace).mispredictRatio();
    EXPECT_LT(bimode_rate, gshare_rate + 0.01);
}

} // namespace
} // namespace bpred
