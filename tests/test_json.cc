/**
 * @file
 * Unit tests for the JSON document builder: golden-string output,
 * escaping, and number formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/json.hh"

namespace bpred
{
namespace
{

TEST(JsonValue, Scalars)
{
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(false).dump(), "false");
    EXPECT_EQ(JsonValue(42).dump(), "42");
    EXPECT_EQ(JsonValue(i64(-7)).dump(), "-7");
    EXPECT_EQ(JsonValue(u64(18446744073709551615ull)).dump(),
              "18446744073709551615");
    EXPECT_EQ(JsonValue("text").dump(), "\"text\"");
}

TEST(JsonValue, EmptyContainers)
{
    EXPECT_EQ(JsonValue::object().dump(), "{}");
    EXPECT_EQ(JsonValue::array().dump(), "[]");
    EXPECT_EQ(JsonValue::object().dump(2), "{}");
    EXPECT_EQ(JsonValue::array().dump(2), "[]");
}

TEST(JsonValue, CompactGolden)
{
    JsonValue root = JsonValue::object();
    root["name"] = "gshare";
    root["bits"] = u64(32768);
    root["ratio"] = 0.5;
    JsonValue series = JsonValue::array();
    series.push(1);
    series.push(2);
    root["series"] = std::move(series);
    EXPECT_EQ(root.dump(),
              "{\"name\":\"gshare\",\"bits\":32768,"
              "\"ratio\":0.5,\"series\":[1,2]}");
}

TEST(JsonValue, PrettyGolden)
{
    JsonValue root = JsonValue::object();
    root["a"] = 1;
    JsonValue inner = JsonValue::array();
    inner.push("x");
    root["b"] = std::move(inner);
    EXPECT_EQ(root.dump(2),
              "{\n"
              "  \"a\": 1,\n"
              "  \"b\": [\n"
              "    \"x\"\n"
              "  ]\n"
              "}");
}

TEST(JsonValue, ObjectPreservesInsertionOrder)
{
    JsonValue root = JsonValue::object();
    root["zebra"] = 1;
    root["apple"] = 2;
    EXPECT_EQ(root.dump(), "{\"zebra\":1,\"apple\":2}");
}

TEST(JsonValue, MemberAccessUpdatesInPlace)
{
    JsonValue root = JsonValue::object();
    root["key"] = 1;
    root["key"] = 2;
    EXPECT_EQ(root.size(), 1u);
    EXPECT_EQ(root.dump(), "{\"key\":2}");
}

TEST(JsonValue, NullPromotesToContainers)
{
    JsonValue root;
    root["auto"] = 1; // null -> object
    EXPECT_TRUE(root.isObject());

    JsonValue list;
    list.push(1); // null -> array
    EXPECT_TRUE(list.isArray());
    EXPECT_EQ(list.size(), 1u);
}

TEST(JsonValue, Find)
{
    JsonValue root = JsonValue::object();
    root["present"] = 5;
    ASSERT_NE(root.find("present"), nullptr);
    EXPECT_EQ(root.find("present")->dump(), "5");
    EXPECT_EQ(root.find("absent"), nullptr);
    EXPECT_EQ(JsonValue(3).find("x"), nullptr);
}

TEST(JsonEscape, SpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(jsonEscape(std::string("nul\x01") + "x"),
              "nul\\u0001x");
}

TEST(JsonFormatDouble, ShortestRoundTrip)
{
    EXPECT_EQ(jsonFormatDouble(0.0), "0");
    EXPECT_EQ(jsonFormatDouble(0.5), "0.5");
    EXPECT_EQ(jsonFormatDouble(0.1), "0.1");
    EXPECT_EQ(jsonFormatDouble(-2.25), "-2.25");
    EXPECT_EQ(jsonFormatDouble(1e100), "1e+100");
}

TEST(JsonFormatDouble, NonFiniteBecomesNull)
{
    EXPECT_EQ(jsonFormatDouble(std::nan("")), "null");
    EXPECT_EQ(jsonFormatDouble(HUGE_VAL), "null");
    EXPECT_EQ(jsonFormatDouble(-HUGE_VAL), "null");
}

TEST(JsonValue, WriteToStream)
{
    std::ostringstream os;
    JsonValue root = JsonValue::object();
    root["k"] = "v";
    root.write(os);
    EXPECT_EQ(os.str(), "{\"k\":\"v\"}");
}

} // namespace
} // namespace bpred
