/**
 * @file
 * Unit tests for information-vector packing and standard index
 * functions.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "predictors/info_vector.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

TEST(PackInfoVector, LayoutMatchesPaper)
{
    // V = (a_N..a_2, h_k..h_1): address bits above history bits.
    const u64 v = packInfoVector(0x1000, 0b1010, 4);
    EXPECT_EQ(v, ((0x1000u >> 2) << 4) | 0b1010u);
}

TEST(PackInfoVector, DropsAddressAlignmentBits)
{
    // Bits 1..0 of the pc are alignment and carry no information.
    EXPECT_EQ(packInfoVector(0x1000, 0, 4),
              packInfoVector(0x1003, 0, 4));
    EXPECT_NE(packInfoVector(0x1000, 0, 4),
              packInfoVector(0x1004, 0, 4));
}

TEST(PackInfoVector, HistoryMasked)
{
    EXPECT_EQ(packInfoVector(0, 0xffff, 4), 0xfu);
}

TEST(PackInfoVector, InjectiveOnDistinctPairs)
{
    std::unordered_set<u64> seen;
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const Addr pc = 4 * rng.uniformInt(1 << 20);
        const History h = rng.uniformInt(1 << 12);
        seen.insert(packInfoVector(pc, h, 12));
    }
    // Distinct (pc, h) pairs may repeat in the RNG draw, but the
    // pack must never merge two different pairs; verify by explicit
    // collision check on a dense grid.
    seen.clear();
    for (Addr pc = 0; pc < 64 * 4; pc += 4) {
        for (History h = 0; h < 16; ++h) {
            const bool inserted =
                seen.insert(packInfoVector(pc, h, 4)).second;
            EXPECT_TRUE(inserted);
        }
    }
}

TEST(GShareIndex, HistoryAlignedHighWhenShorter)
{
    // 4 history bits into an 8-bit index: history lands in bits 7..4.
    const Addr pc = 0;
    const u64 index = gshareIndex(pc, 0b1111, 4, 8);
    EXPECT_EQ(index, 0b1111'0000u);
}

TEST(GShareIndex, XorWithAddress)
{
    const Addr pc = 0xff << 2; // low 8 address bits = 0xff
    const u64 index = gshareIndex(pc, 0b1111, 4, 8);
    EXPECT_EQ(index, 0xffu ^ 0b1111'0000u);
}

TEST(GShareIndex, EqualWidthDirectXor)
{
    const Addr pc = 0xa5 << 2;
    const u64 index = gshareIndex(pc, 0x3c, 8, 8);
    EXPECT_EQ(index, 0xa5u ^ 0x3cu);
}

TEST(GShareIndex, LongHistoryFolded)
{
    // 16 history bits into an 8-bit index: XOR-fold of the two
    // history bytes.
    const u64 index = gshareIndex(0, 0xab'cd, 16, 8);
    EXPECT_EQ(index, 0xabu ^ 0xcdu);
}

TEST(GShareIndex, StaysInRange)
{
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const u64 index =
            gshareIndex(rng.next(), rng.next(), 12, 10);
        EXPECT_LT(index, 1u << 10);
    }
}

TEST(GSelectIndex, ConcatenatesHistoryAboveAddress)
{
    // 4 history bits + 4 address bits in an 8-bit index.
    const Addr pc = 0x5 << 2;
    const u64 index = gselectIndex(pc, 0b1010, 4, 8);
    EXPECT_EQ(index, (0b1010u << 4) | 0x5u);
}

TEST(GSelectIndex, DegeneratesToHistoryOnly)
{
    // History >= index width: no address bits survive — the
    // degenerate case the paper calls out for 12-bit history.
    const u64 a = gselectIndex(0x1000, 0xabc, 12, 10);
    const u64 b = gselectIndex(0x2000, 0xabc, 12, 10);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, 0xabcu & mask(10));
}

TEST(GSelectIndex, StaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const u64 index =
            gselectIndex(rng.next(), rng.next(), 6, 10);
        EXPECT_LT(index, 1u << 10);
    }
}

TEST(AddressIndex, Truncates)
{
    EXPECT_EQ(addressIndex(0x12345678, 8),
              (0x12345678u >> 2) & 0xffu);
}

TEST(AddressIndex, IgnoresHighBits)
{
    EXPECT_EQ(addressIndex(0x0000'1000, 8),
              addressIndex(0xffff'1000, 8));
}

/**
 * Property: gshare and gselect map the same (pc, history) pair to
 * different entries often enough to behave as distinct hash
 * functions (Figure 3's observation).
 */
TEST(IndexFunctions, GShareAndGSelectDisagree)
{
    Rng rng(11);
    int disagreements = 0;
    const int trials = 1000;
    for (int i = 0; i < trials; ++i) {
        const Addr pc = 4 * rng.uniformInt(1 << 16);
        const History h = rng.uniformInt(1 << 8);
        if (gshareIndex(pc, h, 8, 10) != gselectIndex(pc, h, 8, 10)) {
            ++disagreements;
        }
    }
    EXPECT_GT(disagreements, trials / 2);
}

} // namespace
} // namespace bpred
