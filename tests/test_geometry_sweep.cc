/**
 * @file
 * Parameterized geometry sweeps: every predictor family must be
 * well-behaved across the full range of table sizes and history
 * lengths the experiments sweep, including the degenerate corners
 * (history 0, history >> index, 2-entry tables).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/skewed_predictor.hh"
#include "predictors/bimodal.hh"
#include "predictors/hybrid.hh"
#include "predictors/gselect.hh"
#include "predictors/gshare.hh"
#include "sim/driver.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

Trace
sweepTrace()
{
    static const Trace trace = [] {
        Trace t("sweep");
        Rng rng(100);
        for (int i = 0; i < 20000; ++i) {
            const Addr pc = 0x1000 + 4 * rng.uniformInt(256);
            const bool dominant = (pc >> 2) % 2 == 0;
            t.appendConditional(pc,
                                rng.chance(dominant ? 0.9 : 0.1));
            if (rng.chance(0.2)) {
                t.appendUnconditional(0x9000 + 4 * rng.uniformInt(32));
            }
        }
        return t;
    }();
    return trace;
}

using Geometry = std::pair<unsigned, unsigned>; // (index, history)

class GlobalGeometry : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(GlobalGeometry, GShareWellBehaved)
{
    const auto [index_bits, history_bits] = GetParam();
    GSharePredictor predictor(index_bits, history_bits);
    const SimResult result = simulate(predictor, sweepTrace());
    EXPECT_GT(result.conditionals, 0u);
    // A sane predictor never anti-learns: even at the degenerate
    // corners (a handful of entries shared by hundreds of
    // opposing-bias sites, where ~50% is the true asymptote) it
    // must not exceed chance by more than noise.
    EXPECT_LT(result.mispredictRatio(), 0.55)
        << "i=" << index_bits << " h=" << history_bits;
}

TEST_P(GlobalGeometry, GSelectWellBehaved)
{
    const auto [index_bits, history_bits] = GetParam();
    GSelectPredictor predictor(index_bits, history_bits);
    const SimResult result = simulate(predictor, sweepTrace());
    EXPECT_LT(result.mispredictRatio(), 0.55);
}

TEST_P(GlobalGeometry, SkewedWellBehaved)
{
    const auto [index_bits, history_bits] = GetParam();
    SkewedPredictor predictor(3, index_bits, history_bits,
                              UpdatePolicy::Partial);
    const SimResult result = simulate(predictor, sweepTrace());
    EXPECT_LT(result.mispredictRatio(), 0.55);
}

TEST_P(GlobalGeometry, EnhancedSkewedWellBehaved)
{
    const auto [index_bits, history_bits] = GetParam();
    SkewedPredictor predictor(
        makeEnhancedConfig(index_bits, history_bits));
    const SimResult result = simulate(predictor, sweepTrace());
    EXPECT_LT(result.mispredictRatio(), 0.55);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, GlobalGeometry,
    ::testing::Values(Geometry{1, 0},   // 2 entries, no history
                      Geometry{2, 8},   // history >> index
                      Geometry{6, 0},   // address-only
                      Geometry{6, 6},   // balanced
                      Geometry{10, 4},  // paper's short history
                      Geometry{10, 16}, // history > index
                      Geometry{14, 12}, // paper's big table
                      Geometry{16, 1}), // long index, 1-bit history
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "i" + std::to_string(info.param.first) + "_h" +
            std::to_string(info.param.second);
    });

TEST(Composition, HybridOfSkewedAndBimodalWorks)
{
    // The combining predictor composes with any Predictor —
    // including the paper's, giving an Evers-style
    // context-switch-tolerant hybrid.
    HybridPredictor hybrid(
        std::make_unique<SkewedPredictor>(3, 10, 8,
                                          UpdatePolicy::Partial),
        std::make_unique<BimodalPredictor>(10), 10);
    const SimResult result = simulate(hybrid, sweepTrace());
    EXPECT_LT(result.mispredictRatio(), 0.25);
    EXPECT_NE(hybrid.name().find("gskewed"), std::string::npos);
}

} // namespace
} // namespace bpred
