/**
 * @file
 * Unit tests for error reporting.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace bpred
{
namespace
{

TEST(Fatal, ThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Fatal, MessagePreserved)
{
    try {
        fatal("the message");
        FAIL() << "fatal() returned";
    } catch (const FatalError &error) {
        EXPECT_STREQ(error.what(), "the message");
    }
}

TEST(FatalError, IsRuntimeError)
{
    // Embedders may catch std::runtime_error generically.
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(WarnInform, DoNotThrow)
{
    setQuiet(true);
    EXPECT_NO_THROW(warn("w"));
    EXPECT_NO_THROW(inform("i"));
    setQuiet(false);
}

} // namespace
} // namespace bpred
