/**
 * @file
 * Unit tests for error reporting.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace bpred
{
namespace
{

TEST(Fatal, ThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Fatal, MessagePreserved)
{
    try {
        fatal("the message");
        FAIL() << "fatal() returned";
    } catch (const FatalError &error) {
        EXPECT_STREQ(error.what(), "the message");
    }
}

TEST(FatalError, IsRuntimeError)
{
    // Embedders may catch std::runtime_error generically.
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(WarnInform, DoNotThrow)
{
    QuietScope quiet;
    EXPECT_NO_THROW(warn("w"));
    EXPECT_NO_THROW(inform("i"));
}

TEST(SetQuiet, ReturnsPreviousState)
{
    const bool original = setQuiet(true);
    EXPECT_TRUE(setQuiet(false));
    EXPECT_FALSE(setQuiet(true));
    setQuiet(original);
}

TEST(QuietScope, RestoresOnExit)
{
    const bool original = setQuiet(false);
    {
        QuietScope quiet;
        // Probe the current state without disturbing it for long.
        EXPECT_TRUE(setQuiet(true));
    }
    EXPECT_FALSE(setQuiet(false));
    setQuiet(original);
}

TEST(QuietScope, Nests)
{
    const bool original = setQuiet(false);
    {
        QuietScope outer(true);
        {
            QuietScope inner(false);
            EXPECT_FALSE(setQuiet(false));
        }
        EXPECT_TRUE(setQuiet(true));
    }
    EXPECT_FALSE(setQuiet(false));
    setQuiet(original);
}

} // namespace
} // namespace bpred
