/**
 * @file
 * Unit tests for last-use-distance profiling.
 */

#include <gtest/gtest.h>

#include "model/distance_profile.hh"
#include "model/extrapolation.hh"
#include "model/formulas.hh"

namespace bpred
{
namespace
{

Trace
cyclicTrace(u64 sites, u64 rounds)
{
    Trace trace("cyclic");
    for (u64 r = 0; r < rounds; ++r) {
        for (u64 s = 0; s < sites; ++s) {
            trace.appendConditional(0x1000 + 4 * s, true);
        }
    }
    return trace;
}

TEST(DistanceProfile, CyclicStreamDistances)
{
    // 8 sites round-robin, history 0: every re-reference has
    // distance 7; the first 8 are compulsory.
    const DistanceProfile profile =
        profileDistances(cyclicTrace(8, 10), 0);
    EXPECT_EQ(profile.dynamicBranches, 80u);
    EXPECT_EQ(profile.compulsory, 8u);
    EXPECT_EQ(profile.distances.count(7), 72u);
    EXPECT_EQ(profile.distances.total(), 72u);
}

TEST(DistanceProfile, FractionWithin)
{
    const DistanceProfile profile =
        profileDistances(cyclicTrace(8, 10), 0);
    EXPECT_DOUBLE_EQ(profile.fractionWithin(6), 0.0);
    EXPECT_NEAR(profile.fractionWithin(7), 72.0 / 80.0, 1e-12);
    EXPECT_NEAR(profile.fractionWithin(1000), 72.0 / 80.0, 1e-12);
}

TEST(DistanceProfile, ExpectedAliasingMatchesFormula)
{
    const DistanceProfile profile =
        profileDistances(cyclicTrace(8, 10), 0);
    // All finite distances are 7; compulsory contributes 1.
    for (const u64 entries : {u64(16), u64(64), u64(1024)}) {
        const double expected =
            (8.0 * 1.0 +
             72.0 * aliasingProbability(entries, 7)) /
            80.0;
        EXPECT_NEAR(profile.expectedAliasingProbability(entries),
                    expected, 1e-12)
            << entries;
    }
}

TEST(DistanceProfile, BiggerTablesAliasLess)
{
    const DistanceProfile profile =
        profileDistances(cyclicTrace(64, 20), 0);
    double previous = 1.1;
    for (unsigned bits = 4; bits <= 16; bits += 2) {
        const double p =
            profile.expectedAliasingProbability(u64(1) << bits);
        EXPECT_LT(p, previous);
        previous = p;
    }
}

TEST(DistanceProfile, HistoryLengthInflatesDistances)
{
    // With history bits, one address spawns several keys, growing
    // both the compulsory count and typical distances.
    Trace trace("hist");
    u64 lcg = 7;
    for (int i = 0; i < 5000; ++i) {
        lcg = lcg * 6364136223846793005ULL + 1;
        trace.appendConditional(0x1000 + 4 * ((lcg >> 40) % 32),
                                ((lcg >> 20) & 1) != 0);
    }
    const DistanceProfile h0 = profileDistances(trace, 0);
    const DistanceProfile h8 = profileDistances(trace, 8);
    EXPECT_GT(h8.compulsory, h0.compulsory);
    EXPECT_GT(h8.distances.mean(), h0.distances.mean());
}

TEST(DistanceProfile, AgreesWithExtrapolationEngine)
{
    // Cross-module invariant: the extrapolation engine's mean
    // per-bank aliasing probability must equal the profile's
    // expectation for the same geometry (both integrate formula
    // (1) over the same distance distribution).
    Trace trace("cross");
    u64 lcg = 15;
    for (int i = 0; i < 8000; ++i) {
        lcg = lcg * 6364136223846793005ULL + 1;
        trace.appendConditional(0x1000 + 4 * ((lcg >> 40) % 96),
                                ((lcg >> 17) & 1) != 0);
    }
    const unsigned history_bits = 4;
    const u64 bank_entries = 256;

    const DistanceProfile profile =
        profileDistances(trace, history_bits);
    TraceModelInputs inputs; // values irrelevant to mean-p
    const ExtrapolationResult extrapolated =
        extrapolateMispredictions(trace, history_bits, bank_entries,
                                  1024, inputs);
    EXPECT_NEAR(extrapolated.meanBankAliasingProbability,
                profile.expectedAliasingProbability(bank_entries),
                1e-9);
}

TEST(DistanceProfile, EmptyTrace)
{
    const DistanceProfile profile =
        profileDistances(Trace("empty"), 4);
    EXPECT_EQ(profile.dynamicBranches, 0u);
    EXPECT_DOUBLE_EQ(profile.fractionWithin(100), 0.0);
    EXPECT_DOUBLE_EQ(profile.expectedAliasingProbability(1024), 0.0);
}

} // namespace
} // namespace bpred
