/**
 * @file
 * Tests for streaming simulation sessions: feed()-in-chunks must be
 * indistinguishable from the batch loop for every scheme and every
 * telemetry knob, trace sources must agree with their in-memory
 * counterparts, and predictor snapshots must round-trip exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "predictors/gshare.hh"
#include "sim/driver.hh"
#include "sim/factory.hh"
#include "sim/gang.hh"
#include "sim/session.hh"
#include "support/logging.hh"
#include "support/probe.hh"
#include "support/rng.hh"
#include "trace/stream.hh"
#include "trace/trace_io.hh"
#include "workloads/process_mix.hh"
#include "workloads/stream_source.hh"

namespace bpred
{
namespace
{

Trace
sessionTrace(u64 seed, int records = 20000)
{
    Trace trace("session");
    Rng rng(seed);
    for (int i = 0; i < records; ++i) {
        const Addr pc = 0x2000 + 4 * rng.uniformInt(400);
        if (rng.chance(0.2)) {
            trace.appendUnconditional(pc + 0x20000);
        } else {
            const bool outcome = (pc >> 2) % 3 == 0
                ? rng.chance(0.85)
                : (i & 2) != 0;
            trace.appendConditional(pc, outcome);
        }
    }
    return trace;
}

SimOptions
everyKnob()
{
    SimOptions options;
    options.warmupBranches = 1000;
    options.flushInterval = 3000;
    options.windowSize = 512;
    options.topSites = 4;
    return options;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.predictorName, b.predictorName);
    EXPECT_EQ(a.traceName, b.traceName);
    EXPECT_EQ(a.conditionals, b.conditionals);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.storageBits, b.storageBits);
    EXPECT_EQ(a.windowSize, b.windowSize);
    // toJson() covers windows and topSites element by element.
    EXPECT_EQ(a.toJson().dump(2), b.toJson().dump(2));
}

std::vector<std::string>
exampleSpecs()
{
    std::vector<std::string> specs;
    for (const SchemeInfo &scheme : listSchemes()) {
        specs.push_back(scheme.example);
    }
    return specs;
}

class SessionEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SessionEquivalence, PlainStreamingMatchesBatch)
{
    const Trace trace = sessionTrace(1);
    auto batch_pred = makePredictor(GetParam());
    auto stream_pred = makePredictor(GetParam());

    const SimResult batch = simulate(*batch_pred, trace);
    MemoryTraceSource source(trace);
    const SimResult streamed =
        simulateSource(*stream_pred, source, SimOptions(), 777);
    expectSameResult(batch, streamed);
}

TEST_P(SessionEquivalence, AllKnobsStreamingMatchesBatch)
{
    const Trace trace = sessionTrace(2);
    auto batch_pred = makePredictor(GetParam());
    auto stream_pred = makePredictor(GetParam());

    CountingProbe batch_probe;
    SimOptions batch_options = everyKnob();
    batch_options.probe = &batch_probe;
    const SimResult batch =
        simulateWithOptions(*batch_pred, trace, batch_options);

    CountingProbe stream_probe;
    SimOptions stream_options = everyKnob();
    stream_options.probe = &stream_probe;
    MemoryTraceSource source(trace);
    const SimResult streamed =
        simulateSource(*stream_pred, source, stream_options, 1009);

    expectSameResult(batch, streamed);
    EXPECT_EQ(batch_probe.registry().toJson().dump(2),
              stream_probe.registry().toJson().dump(2));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SessionEquivalence,
    ::testing::ValuesIn(exampleSpecs()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == ':' || c == '-') {
                c = '_';
            }
        }
        return name;
    });

TEST(SimSession, ChunkBoundariesAreInvisible)
{
    const Trace trace = sessionTrace(3);
    const SimOptions options = everyKnob();

    auto reference_pred = makePredictor("gshare:10:8");
    const SimResult reference =
        simulateWithOptions(*reference_pred, trace, options);

    // One record per feed() — every boundary there is.
    auto drip_pred = makePredictor("gshare:10:8");
    SimSession drip(*drip_pred, options, trace.name());
    for (const BranchRecord &record : trace) {
        drip.feed(&record, 1);
    }
    expectSameResult(reference, drip.finish());

    // Randomized chunk sizes, including empty feeds.
    auto random_pred = makePredictor("gshare:10:8");
    SimSession random(*random_pred, options, trace.name());
    Rng rng(99);
    std::size_t at = 0;
    while (at < trace.size()) {
        const std::size_t n = std::min<std::size_t>(
            rng.uniformInt(300), trace.size() - at);
        random.feed(trace.records().data() + at, n);
        at += n;
    }
    expectSameResult(reference, random.finish());
}

TEST(SimSession, FeedAfterFinishFatals)
{
    auto predictor = makePredictor("bimodal:8");
    SimSession session(*predictor);
    session.finish();
    BranchRecord record{0x100, true, true};
    EXPECT_THROW(session.feed(&record, 1), FatalError);
}

TEST(SimSession, DoubleFinishFatals)
{
    auto predictor = makePredictor("bimodal:8");
    SimSession session(*predictor);
    session.finish();
    EXPECT_THROW(session.finish(), FatalError);
}

TEST(SimSession, AbandonedSessionRestoresProbe)
{
    GSharePredictor predictor(8, 6);
    CountingProbe outer;
    predictor.attachProbe(&outer);
    {
        CountingProbe inner;
        SimOptions options;
        options.probe = &inner;
        SimSession session(predictor, options);
        // Destroyed without finish(): the destructor must put the
        // outer probe back.
    }
    const Trace trace = sessionTrace(4, 100);
    simulate(predictor, trace);
    EXPECT_FALSE(outer.registry().toJson().dump().empty());
}

TEST(SimSession, ConditionalsSeenCountsWarmup)
{
    Trace trace("warm");
    for (int i = 0; i < 100; ++i) {
        trace.appendConditional(0x100, true);
    }
    auto predictor = makePredictor("bimodal:8");
    SimOptions options;
    options.warmupBranches = 60;
    SimSession session(*predictor, options, trace.name());
    session.feed(trace);
    EXPECT_EQ(session.conditionalsSeen(), 100u);
    const SimResult result = session.finish();
    EXPECT_EQ(result.conditionals, 40u);
}

TEST(TraceSources, BinaryStreamMatchesMemory)
{
    const Trace trace = sessionTrace(5);
    std::stringstream encoded;
    writeBinaryTrace(encoded, trace);

    BinaryTraceSource source(encoded);
    EXPECT_EQ(source.name(), trace.name());
    EXPECT_EQ(source.remaining(), trace.size());

    auto stream_pred = makePredictor("egskew:8:6");
    const SimResult streamed =
        simulateSource(*stream_pred, source, everyKnob(), 511);
    EXPECT_EQ(source.remaining(), 0u);

    auto batch_pred = makePredictor("egskew:8:6");
    const SimResult batch =
        simulateWithOptions(*batch_pred, trace, everyKnob());
    expectSameResult(batch, streamed);
}

TEST(TraceSources, DrainRebuildsTheTrace)
{
    const Trace trace = sessionTrace(6, 5000);
    MemoryTraceSource source(trace);
    const Trace drained = drainSource(source, 97);
    ASSERT_EQ(drained.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(drained[i], trace[i]) << "record " << i;
    }
}

TEST(TraceSources, ScratchRefillBoundariesAreInvisible)
{
    // The binary source decodes from one reused scratch buffer.
    // Shrinking it to barely more than one wire record forces a
    // refill (and a partial-record compaction) every few records;
    // the decoded stream must not change. Guards the chunk-boundary
    // handling in BinaryTraceSource::pull()/refill().
    const Trace trace = sessionTrace(7, 8000);
    std::stringstream encoded;
    writeBinaryTrace(encoded, trace);

    for (const std::size_t scratch :
         {std::size_t(1), std::size_t(13), std::size_t(64),
          std::size_t(4096)}) {
        encoded.clear();
        encoded.seekg(0);
        BinaryTraceSource source(encoded);
        source.setScratchBytes(scratch);
        const Trace drained = drainSource(source, 239);
        ASSERT_EQ(drained.size(), trace.size())
            << "scratch " << scratch;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            ASSERT_EQ(drained[i], trace[i])
                << "scratch " << scratch << " record " << i;
        }
    }
}

TEST(TraceSources, SizeHintOnlyWhenLengthValidated)
{
    // drainSource() pre-reserves from sizeHint(), which must report
    // a validated count for seekable binary streams and the exact
    // remainder for memory sources.
    const Trace trace = sessionTrace(8, 300);
    MemoryTraceSource memory(trace);
    EXPECT_EQ(memory.sizeHint(), trace.size());

    std::stringstream encoded;
    writeBinaryTrace(encoded, trace);
    BinaryTraceSource binary(encoded);
    // A stringstream is seekable, so the header's record count is
    // validated against the stream length.
    EXPECT_EQ(binary.sizeHint(), trace.size());
}

TEST(TraceSources, WorkloadStreamMatchesGenerateWorkload)
{
    WorkloadParams params;
    params.name = "stream-check";
    params.seed = 42;
    params.dynamicConditionalTarget = 30'000;
    params.userQuantumMean = 2'000;

    const Trace batch = generateWorkload(params);

    // Tiny pull size forces many refill boundaries mid-quantum.
    WorkloadStream stream(params);
    const Trace streamed = drainSource(stream, 113);
    EXPECT_EQ(stream.conditionalsEmitted(),
              params.dynamicConditionalTarget);

    EXPECT_EQ(streamed.name(), batch.name());
    ASSERT_EQ(streamed.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(streamed[i], batch[i]) << "record " << i;
    }
}

class SnapshotRoundTrip
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SnapshotRoundTrip, ResumeIsBitIdentical)
{
    auto original = makePredictor(GetParam());
    if (!original->supportsSnapshot()) {
        GTEST_SKIP() << GetParam() << " does not snapshot";
    }

    const Trace trace = sessionTrace(7);
    const std::size_t half = trace.size() / 2;

    // Train to the midpoint, checkpoint, resume in a fresh
    // predictor; both must then predict the second half identically
    // and from identical state.
    SimSession first_half(*original);
    first_half.feed(trace.records().data(), half);
    first_half.finish();

    std::stringstream checkpoint;
    savePredictorState(*original, checkpoint);

    auto resumed = makePredictor(GetParam());
    loadPredictorState(*resumed, checkpoint);

    std::stringstream original_state;
    std::stringstream resumed_state;
    savePredictorState(*original, original_state);
    savePredictorState(*resumed, resumed_state);
    EXPECT_EQ(original_state.str(), resumed_state.str());

    SimSession original_rest(*original);
    original_rest.feed(trace.records().data() + half,
                       trace.size() - half);
    const SimResult a = original_rest.finish();

    SimSession resumed_rest(*resumed);
    resumed_rest.feed(trace.records().data() + half,
                      trace.size() - half);
    const SimResult b = resumed_rest.finish();

    EXPECT_EQ(a.conditionals, b.conditionals);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SnapshotRoundTrip,
    ::testing::ValuesIn(exampleSpecs()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == ':' || c == '-') {
                c = '_';
            }
        }
        return name;
    });

TEST(Snapshot, EverySchemeSupportsIt)
{
    // The serving layer checkpoints tenants on eviction, so every
    // registered scheme must be snapshot-capable.
    for (const std::string &spec : exampleSpecs()) {
        EXPECT_TRUE(makePredictor(spec)->supportsSnapshot()) << spec;
    }
}

TEST(Snapshot, RejectsConfigurationMismatch)
{
    auto small = makePredictor("gshare:8:6");
    auto large = makePredictor("gshare:10:6");
    std::stringstream state;
    savePredictorState(*small, state);
    EXPECT_THROW(loadPredictorState(*large, state), FatalError);
}

TEST(Snapshot, RejectsBadMagic)
{
    auto predictor = makePredictor("gshare:8:6");
    std::stringstream garbage("this is not a snapshot");
    EXPECT_THROW(loadPredictorState(*predictor, garbage), FatalError);
}

TEST(Snapshot, RejectsTruncatedState)
{
    auto predictor = makePredictor("gshare:8:6");
    std::stringstream state;
    savePredictorState(*predictor, state);
    std::string bytes = state.str();
    bytes.resize(bytes.size() / 2);
    auto fresh = makePredictor("gshare:8:6");
    std::stringstream truncated(bytes);
    EXPECT_THROW(loadPredictorState(*fresh, truncated), FatalError);
}

namespace
{

/** A predictor that keeps the base-class "no snapshots" default. */
class SnapshotlessPredictor : public Predictor
{
  public:
    bool predict(Addr) override { return true; }
    void update(Addr, bool) override {}
    std::string name() const override { return "snapshotless"; }
    u64 storageBits() const override { return 0; }
    void reset() override {}
};

} // namespace

TEST(Snapshot, UnsupportedSchemeFatalsCleanly)
{
    SnapshotlessPredictor predictor;
    ASSERT_FALSE(predictor.supportsSnapshot());
    std::stringstream state;
    EXPECT_THROW(savePredictorState(predictor, state), FatalError);
}

TEST(GangSession, MatchesIndependentSessionsBitForBit)
{
    // A gang over one trace must produce exactly the SimResults of
    // N independent per-predictor sessions — including bookkeeping
    // knobs that split blocks mid-way.
    const Trace trace = sessionTrace(41);
    const std::vector<std::string> specs = {
        "bimodal:8", "gshare:8:6", "gskewed:3:8:6", "egskew:8:6"};
    const SimOptions options = everyKnob();

    std::vector<std::unique_ptr<Predictor>> solo;
    std::vector<SimResult> want;
    for (const std::string &spec : specs) {
        solo.push_back(makePredictor(spec));
        want.push_back(
            simulateWithOptions(*solo.back(), trace, options));
    }

    std::vector<std::unique_ptr<Predictor>> ganged;
    GangSession gang;
    for (const std::string &spec : specs) {
        ganged.push_back(makePredictor(spec));
        gang.add(*ganged.back(), options, trace.name());
    }
    gang.feed(trace);
    const std::vector<SimResult> got = gang.finish();

    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].predictorName, got[i].predictorName);
        EXPECT_EQ(want[i].traceName, got[i].traceName);
        EXPECT_EQ(want[i].conditionals, got[i].conditionals);
        EXPECT_EQ(want[i].mispredicts, got[i].mispredicts);
        ASSERT_EQ(want[i].windows.size(), got[i].windows.size());
        for (std::size_t w = 0; w < want[i].windows.size(); ++w) {
            EXPECT_EQ(want[i].windows[w].branches,
                      got[i].windows[w].branches);
            EXPECT_EQ(want[i].windows[w].mispredicts,
                      got[i].windows[w].mispredicts);
        }
        ASSERT_EQ(want[i].topSites.size(), got[i].topSites.size());
        for (std::size_t s = 0; s < want[i].topSites.size(); ++s) {
            EXPECT_EQ(want[i].topSites[s].pc, got[i].topSites[s].pc);
            EXPECT_EQ(want[i].topSites[s].mispredicts,
                      got[i].topSites[s].mispredicts);
        }
    }
}

TEST(GangSession, ChunkedFeedsAndBlockSizesAreInvisible)
{
    // Feeding a gang in ragged chunks, at any block granularity,
    // must not change any member's result.
    const Trace trace = sessionTrace(42);
    auto a1 = makePredictor("gshare:8:6");
    auto a2 = makePredictor("gskewed:3:8:6");
    GangSession reference;
    reference.add(*a1);
    reference.add(*a2);
    reference.feed(trace);
    const std::vector<SimResult> want = reference.finish();

    for (const std::size_t block : {std::size_t(64),
                                    std::size_t(1000)}) {
        auto b1 = makePredictor("gshare:8:6");
        auto b2 = makePredictor("gskewed:3:8:6");
        GangSession gang(block);
        gang.add(*b1);
        gang.add(*b2);
        const BranchRecord *records = trace.records().data();
        std::size_t at = 0;
        std::size_t chunk = 17;
        while (at < trace.size()) {
            const std::size_t n =
                std::min(chunk, trace.size() - at);
            gang.feed(records + at, n);
            at += n;
            chunk = chunk * 3 + 1;
        }
        const std::vector<SimResult> got = gang.finish();
        ASSERT_EQ(want.size(), got.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(want[i].mispredicts, got[i].mispredicts)
                << "block " << block << " member " << i;
            EXPECT_EQ(want[i].conditionals, got[i].conditionals);
        }
    }
}

TEST(GangSession, SimulateGangMatchesSimulate)
{
    const Trace trace = sessionTrace(43);
    auto solo1 = makePredictor("bimodal:8");
    auto solo2 = makePredictor("hybrid:8:6");
    const SimResult want1 = simulate(*solo1, trace);
    const SimResult want2 = simulate(*solo2, trace);

    auto g1 = makePredictor("bimodal:8");
    auto g2 = makePredictor("hybrid:8:6");
    const std::vector<SimResult> got =
        simulateGang({g1.get(), g2.get()}, trace);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(want1.mispredicts, got[0].mispredicts);
    EXPECT_EQ(want2.mispredicts, got[1].mispredicts);
    EXPECT_EQ(want1.conditionals, got[0].conditionals);
    EXPECT_EQ(want2.conditionals, got[1].conditionals);
}

TEST(GangSession, LifecycleMisuseFatals)
{
    const Trace trace = sessionTrace(44, 2000);
    auto predictor = makePredictor("gshare:8:6");
    GangSession gang;
    const std::size_t index = gang.add(*predictor);
    gang.feed(trace);
    auto late = makePredictor("bimodal:8");
    EXPECT_THROW(gang.add(*late), FatalError);
    gang.finish();
    EXPECT_EQ(gang.memberError(index), nullptr);
    EXPECT_THROW(gang.feed(trace), FatalError);
    EXPECT_THROW(simulateGang({nullptr}, trace), FatalError);
}

} // namespace
} // namespace bpred
