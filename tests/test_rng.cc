/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hh"

namespace bpred
{
namespace
{

TEST(SplitMix, DeterministicForSeed)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(SplitMix, DifferentSeedsDiffer)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next(), b.next());
    }
}

TEST(Rng, UniformIntInBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.uniformInt(17), 17u);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(9);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i) {
        ++seen[rng.uniformInt(8)];
    }
    for (int count : seen) {
        // Each of 8 buckets expects ~1000; allow wide slack.
        EXPECT_GT(count, 700);
        EXPECT_LT(count, 1300);
    }
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const u64 value = rng.uniformRange(3, 6);
        EXPECT_GE(value, 3u);
        EXPECT_LE(value, 6u);
        saw_lo = saw_lo || value == 3;
        saw_hi = saw_hi || value == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double value = rng.uniformReal();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
        sum += value;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
        if (rng.chance(0.3)) {
            ++hits;
        }
    }
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng rng(23);
    // Mean of Geometric(p) (failures before success) is (1-p)/p.
    const double p = 0.25;
    double sum = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        sum += static_cast<double>(rng.geometric(p));
    }
    EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.1);
}

TEST(Rng, GeometricPOneIsZero)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rng.geometric(1.0), 0u);
    }
}

TEST(Rng, ZipfInRange)
{
    Rng rng(31);
    for (int i = 0; i < 5000; ++i) {
        EXPECT_LT(rng.zipf(100, 1.0), 100u);
    }
}

TEST(Rng, ZipfSkewsTowardSmallRanks)
{
    Rng rng(37);
    u64 low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.zipf(1000, 1.0) < 10) {
            ++low;
        }
    }
    // Under Zipf(s=1), the top-10 of 1000 items carry ~39% of mass;
    // uniform would carry 1%.
    EXPECT_GT(low, n / 5);
}

TEST(Rng, ZipfZeroExponentIsUniform)
{
    Rng rng(41);
    std::vector<int> seen(4, 0);
    for (int i = 0; i < 8000; ++i) {
        ++seen[rng.zipf(4, 0.0)];
    }
    for (int count : seen) {
        EXPECT_GT(count, 1600);
        EXPECT_LT(count, 2400);
    }
}

TEST(Rng, ZipfSingleton)
{
    Rng rng(43);
    EXPECT_EQ(rng.zipf(1, 1.5), 0u);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(47);
    std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = items;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, items);
}

TEST(Rng, ShuffleEmptyAndSingle)
{
    Rng rng(53);
    std::vector<int> empty;
    rng.shuffle(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<int> one = {9};
    rng.shuffle(one);
    EXPECT_EQ(one[0], 9);
}

TEST(Rng, ForkIsIndependent)
{
    Rng parent(59);
    Rng child = parent.fork();
    // Forked stream should differ from the parent's continuation.
    bool any_different = false;
    for (int i = 0; i < 10; ++i) {
        if (parent.next() != child.next()) {
            any_different = true;
        }
    }
    EXPECT_TRUE(any_different);
}

} // namespace
} // namespace bpred
