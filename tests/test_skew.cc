/**
 * @file
 * Unit and property tests for the skewing function family.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/skew.hh"
#include "support/bitops.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

TEST(SkewH, MatchesDefinitionSmall)
{
    // n = 4: H(y4 y3 y2 y1) = (y4^y1, y4, y3, y2).
    // y = 0b1011 -> y4=1, y3=0, y2=1, y1=1 -> (1^1, 1, 0, 1) = 0b0101.
    EXPECT_EQ(skewH(0b1011, 4), 0b0101u);
    // y = 0b1000 -> (1^0, 1, 0, 0) = 0b1100.
    EXPECT_EQ(skewH(0b1000, 4), 0b1100u);
    // y = 0b0001 -> (0^1, 0, 0, 0) = 0b1000.
    EXPECT_EQ(skewH(0b0001, 4), 0b1000u);
}

TEST(SkewH, WidthOneIsIdentity)
{
    EXPECT_EQ(skewH(0, 1), 0u);
    EXPECT_EQ(skewH(1, 1), 1u);
    EXPECT_EQ(skewHInverse(0, 1), 0u);
    EXPECT_EQ(skewHInverse(1, 1), 1u);
}

/** Property: H is a bijection on every width (it's a permutation). */
class SkewWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SkewWidth, HIsBijective)
{
    const unsigned n = GetParam();
    std::set<u64> images;
    for (u64 y = 0; y <= mask(n); ++y) {
        images.insert(skewH(y, n));
    }
    EXPECT_EQ(images.size(), mask(n) + 1);
}

TEST_P(SkewWidth, HInverseInvertsH)
{
    const unsigned n = GetParam();
    for (u64 y = 0; y <= mask(n); ++y) {
        EXPECT_EQ(skewHInverse(skewH(y, n), n), y);
        EXPECT_EQ(skewH(skewHInverse(y, n), n), y);
    }
}

TEST_P(SkewWidth, ResultsStayInRange)
{
    const unsigned n = GetParam();
    Rng rng(n);
    for (int i = 0; i < 200; ++i) {
        const u64 y = rng.next();
        EXPECT_LE(skewH(y, n), mask(n));
        EXPECT_LE(skewHInverse(y, n), mask(n));
        for (unsigned bank = 0; bank < maxSkewBanks; ++bank) {
            EXPECT_LE(skewIndex(bank, y, n), mask(n));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SkewWidth,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u, 10u));

TEST(SkewIndex, MatchesPaperFormulas)
{
    const unsigned n = 6;
    Rng rng(77);
    for (int i = 0; i < 500; ++i) {
        const u64 v = rng.next();
        const u64 v1 = v & mask(n);
        const u64 v2 = (v >> n) & mask(n);
        EXPECT_EQ(skewIndex(0, v, n),
                  skewH(v1, n) ^ skewHInverse(v2, n) ^ v2);
        EXPECT_EQ(skewIndex(1, v, n),
                  skewH(v1, n) ^ skewHInverse(v2, n) ^ v1);
        EXPECT_EQ(skewIndex(2, v, n),
                  skewHInverse(v1, n) ^ skewH(v2, n) ^ v2);
    }
}

/**
 * The inter-bank dispersion property, correctly scoped: the
 * functions are GF(2)-linear, so collision structure depends only
 * on the pair's difference (A, B) = (V1 xor W1, V2 xor W2). When
 * A != B, a pair colliding in one bank NEVER collides in another;
 * the only multi-bank collisions live on the degenerate A == B
 * subspace (where f0 and f1 coincide by construction), and those
 * pairs then collide in all three banks at once. Exhaustive check
 * at n = 5.
 */
TEST(SkewIndex, DispersionProperty)
{
    const unsigned n = 5;
    const u64 space = u64(1) << (2 * n);
    u64 pairs_colliding_somewhere = 0;
    u64 pairs_colliding_multiply = 0;

    for (u64 v = 0; v < space; ++v) {
        for (u64 w = v + 1; w < space; ++w) {
            unsigned collisions = 0;
            for (unsigned bank = 0; bank < 3; ++bank) {
                if (skewIndex(bank, v, n) == skewIndex(bank, w, n)) {
                    ++collisions;
                }
            }
            if (collisions >= 1) {
                ++pairs_colliding_somewhere;
            }
            if (collisions >= 2) {
                ++pairs_colliding_multiply;
                const u64 a = (v ^ w) & mask(n);
                const u64 b = ((v ^ w) >> n) & mask(n);
                // Multi-bank collisions only on the A == B line...
                ASSERT_EQ(a, b) << "v=" << v << " w=" << w;
                // ...and there they collide in ALL banks.
                ASSERT_EQ(collisions, 3u) << "v=" << v << " w=" << w;
            }
        }
    }

    // The degenerate subspace is a vanishing fraction: at n = 5,
    // 1536 of 523776 pairs (0.3%), vs 44544 colliding in >= 1 bank.
    EXPECT_GT(pairs_colliding_somewhere, space);
    EXPECT_LT(pairs_colliding_multiply * 20,
              pairs_colliding_somewhere);
}

/**
 * Vectors equal on (V2, V1) but different in V3 collide in every
 * bank — the documented limitation of the function family.
 */
TEST(SkewIndex, HighBitsIgnored)
{
    const unsigned n = 6;
    const u64 v = 0x2a5;
    const u64 w = v | (u64(1) << (2 * n + 3));
    for (unsigned bank = 0; bank < 3; ++bank) {
        EXPECT_EQ(skewIndex(bank, v, n), skewIndex(bank, w, n));
    }
}

/** Each bank's index function is itself a balanced hash. */
TEST(SkewIndex, BanksDistributeUniformly)
{
    const unsigned n = 6;
    for (unsigned bank = 0; bank < maxSkewBanks; ++bank) {
        std::map<u64, int> load;
        for (u64 v = 0; v < (u64(1) << (2 * n)); ++v) {
            ++load[skewIndex(bank, v, n)];
        }
        // Perfectly balanced: each of 2^n indices hit 2^n times.
        ASSERT_EQ(load.size(), u64(1) << n);
        for (const auto &[index, count] : load) {
            ASSERT_EQ(count, 1 << n) << "bank " << bank;
        }
    }
}

TEST(SkewIndex, ExtendedBanksDifferFromPaperBanks)
{
    const unsigned n = 8;
    Rng rng(123);
    int same03 = 0;
    int same14 = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        const u64 v = rng.next();
        same03 += skewIndex(0, v, n) == skewIndex(3, v, n);
        same14 += skewIndex(1, v, n) == skewIndex(4, v, n);
    }
    // Independent hashes agree with probability ~2^-8.
    EXPECT_LT(same03, trials / 50);
    EXPECT_LT(same14, trials / 50);
}

} // namespace
} // namespace bpred
