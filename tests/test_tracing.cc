/**
 * @file
 * The observability layer: tracing recorder + exporter, perf
 * counter fallback, engine metrics, and the defining regression —
 * gang sweep results are byte-identical with tracing enabled.
 *
 * The recorder is process-global (lanes are never unregistered), so
 * every test starts by disabling recording and clearing buffered
 * events; lane/thread counts are asserted as deltas, never as
 * absolutes.
 */

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/factory.hh"
#include "sim/parallel.hh"
#include "sim/session.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/memmeter.hh"
#include "support/perfcount.hh"
#include "support/rng.hh"
#include "support/stat_registry.hh"
#include "support/tracing.hh"
#include "trace/trace.hh"

namespace
{

using namespace bpred;

/** Fresh recorder state: recording off, buffers empty. */
void
quiesce()
{
    trace::setEnabled(false);
    trace::reset();
    trace::setCapacityPerThread(std::size_t(1) << 20);
}

Trace
smallTrace(unsigned seed, std::size_t records = 4096)
{
    Trace trace("traced");
    Rng rng(seed);
    for (std::size_t i = 0; i < records; ++i) {
        const Addr pc = 0x4000 + 4 * rng.uniformInt(512);
        if (rng.chance(0.2)) {
            trace.appendUnconditional(pc);
        } else {
            trace.appendConditional(pc, rng.chance(0.6));
        }
    }
    return trace;
}

TEST(Tracing, DisabledModeBuffersAndAllocatesNothing)
{
    quiesce();
    const u64 allocBefore = AllocGauge::current();
    const std::size_t eventsBefore = trace::eventCount();
    for (int i = 0; i < 10000; ++i) {
        TRACE_SCOPE("test", "disabled", u64(i), 10000);
        TRACE_INSTANT("test", "marker");
        TRACE_COUNTER("test", "value", double(i));
    }
    EXPECT_EQ(trace::eventCount(), eventsBefore);
    EXPECT_EQ(AllocGauge::current(), allocBefore);
    EXPECT_EQ(trace::droppedCount(), 0u);
}

TEST(Tracing, SpansInstantsAndCountersAreRecorded)
{
    quiesce();
    trace::setEnabled(true);
    {
        TRACE_SCOPE("test", "span", 3, 7);
        TRACE_INSTANT("test", "marker");
    }
    TRACE_COUNTER("test", "gauge", 2.5);
    trace::setEnabled(false);

    EXPECT_EQ(trace::eventCount(), 3u);
    const std::vector<trace::ThreadSnapshot> lanes =
        trace::snapshot();
    const trace::ThreadSnapshot *mine = nullptr;
    for (const trace::ThreadSnapshot &lane : lanes) {
        if (!lane.events.empty()) {
            mine = &lane;
        }
    }
    ASSERT_NE(mine, nullptr);
    ASSERT_EQ(mine->events.size(), 3u);

    // The instant lands before the enclosing span (spans are
    // emitted at scope exit), and the counter last.
    EXPECT_EQ(mine->events[0].kind, trace::TraceEvent::Kind::instant);
    EXPECT_EQ(std::string(mine->events[0].name), "marker");
    EXPECT_EQ(mine->events[1].kind, trace::TraceEvent::Kind::span);
    EXPECT_EQ(std::string(mine->events[1].category), "test");
    EXPECT_TRUE(mine->events[1].hasArgs);
    EXPECT_EQ(mine->events[1].argIndex, 3u);
    EXPECT_EQ(mine->events[1].argCount, 7u);
    EXPECT_LE(mine->events[1].startNs, mine->events[0].startNs);
    EXPECT_EQ(mine->events[2].kind, trace::TraceEvent::Kind::counter);
    EXPECT_DOUBLE_EQ(mine->events[2].value, 2.5);
}

TEST(Tracing, ExporterEscapesQuotesBackslashesAndNonAscii)
{
    quiesce();
    trace::setEnabled(true);
    trace::setThreadName("lane \"zero\"\\one");
    TRACE_INSTANT("cat\"egory", "na\\me-\xC3\xA9");
    trace::setEnabled(false);

    std::ostringstream out;
    ASSERT_TRUE(trace::writeChromeTrace(out));
    const std::string json = out.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Quote and backslash are escaped; the UTF-8 name survives in
    // some JSON-legal form (raw bytes or \u escape), never as a
    // bare quote-breaking sequence.
    EXPECT_NE(json.find("cat\\\"egory"), std::string::npos);
    EXPECT_NE(json.find("na\\\\me-"), std::string::npos);
    EXPECT_NE(json.find("lane \\\"zero\\\"\\\\one"),
              std::string::npos);
}

TEST(Tracing, PerThreadLanesKeepOrderAndNames)
{
    quiesce();
    trace::setEnabled(true);
    constexpr int perThread = 64;
    auto record = [](const char *name) {
        trace::setThreadName(name);
        for (int i = 0; i < perThread; ++i) {
            TRACE_INSTANT("lanes", "tick");
        }
    };
    std::thread a(record, "lane-a");
    std::thread b(record, "lane-b");
    a.join();
    b.join();
    trace::setEnabled(false);

    int named = 0;
    for (const trace::ThreadSnapshot &lane : trace::snapshot()) {
        if (lane.name != "lane-a" && lane.name != "lane-b") {
            continue;
        }
        ++named;
        ASSERT_EQ(lane.events.size(),
                  std::size_t(perThread));
        for (std::size_t i = 1; i < lane.events.size(); ++i) {
            EXPECT_LE(lane.events[i - 1].startNs,
                      lane.events[i].startNs);
        }
    }
    EXPECT_EQ(named, 2);

    // Both lanes export with their thread_name metadata.
    std::ostringstream out;
    ASSERT_TRUE(trace::writeChromeTrace(out));
    EXPECT_NE(out.str().find("lane-a"), std::string::npos);
    EXPECT_NE(out.str().find("lane-b"), std::string::npos);
}

TEST(Tracing, FullBuffersCountDropsInsteadOfGrowing)
{
    quiesce();
    trace::setCapacityPerThread(5);
    trace::setEnabled(true);
    const std::size_t before = trace::eventCount();
    for (int i = 0; i < 12; ++i) {
        TRACE_INSTANT("cap", "tick");
    }
    trace::setEnabled(false);
    EXPECT_EQ(trace::eventCount() - before, 5u);
    EXPECT_EQ(trace::droppedCount(), 7u);
    quiesce(); // restore the default capacity for later tests
}

TEST(Tracing, PerfCounterGroupDegradesGracefully)
{
    PerfCounterGroup group;
    group.start();
    volatile double sink = 0.0;
    for (int i = 0; i < 200000; ++i) {
        sink = sink + double(i) * 1.5;
    }
    const PerfSample sample = group.stop();
    EXPECT_EQ(sample.valid, group.available());
    if (sample.valid) {
        EXPECT_GT(sample.cycles, 0u);
        EXPECT_GT(sample.instructions, 0u);
        EXPECT_GT(sample.ipc(), 0.0);
    } else {
        // The fallback contract: no-ops, zeroed sample, 0 metrics.
        EXPECT_EQ(sample.cycles, 0u);
        EXPECT_EQ(sample.instructions, 0u);
        EXPECT_DOUBLE_EQ(sample.ipc(), 0.0);
    }
    EXPECT_DOUBLE_EQ(PerfSample::perKilo(30, 1000.0), 30.0);
    EXPECT_DOUBLE_EQ(PerfSample::perKilo(5, 0.0), 0.0);
}

TEST(Tracing, SessionMetricsLandInTheRegistry)
{
    const Trace trace = smallTrace(7);
    StatRegistry metrics;
    SimOptions options;
    options.metrics = &metrics;
    auto predictor = makePredictor("gshare:8:6");
    SimSession session(*predictor, options, trace.name());
    session.feed(trace);
    const SimResult result = session.finish();

    EXPECT_EQ(metrics.counter("session.feeds"), 1u);
    EXPECT_EQ(metrics.counter("session.records"), trace.size());
    EXPECT_EQ(metrics.counter("session.conditionals"),
              result.conditionals);
    EXPECT_EQ(metrics.running("session.feed_seconds").count(), 1u);
}

TEST(Tracing, SweepRunnerRecordsPoolMetrics)
{
    const Trace trace = smallTrace(11);
    SweepRunner runner(2);
    for (int bits = 6; bits < 12; ++bits) {
        runner.enqueue("gshare:" + std::to_string(bits) + ":4",
                       trace);
    }
    const std::vector<SimResult> results = runner.run();
    ASSERT_EQ(results.size(), 6u);

    const StatRegistry &metrics = runner.metrics();
    // metrics() is const; read through toJson() instead of the
    // mutating accessors.
    const JsonValue root = metrics.toJson();
    std::ostringstream out;
    root.write(out, 0);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"runs\""), std::string::npos);
    EXPECT_NE(json.find("\"cells\""), std::string::npos);
    EXPECT_NE(json.find("\"gang_occupancy\""), std::string::npos);
    EXPECT_NE(json.find("\"worker_busy_seconds\""),
              std::string::npos);
}

TEST(Tracing, SweepErrorsNameCellLabelAndWorker)
{
    const Trace trace = smallTrace(13);
    SweepRunner runner(2);
    runner.enqueue("gshare:8:6", trace);
    runner.enqueue("no-such-scheme:9", trace);
    try {
        runner.run();
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("sweep cell #1"), std::string::npos)
            << message;
        EXPECT_NE(message.find("no-such-scheme:9"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("on worker"), std::string::npos)
            << message;
        EXPECT_NE(message.find(trace.name()), std::string::npos)
            << message;
    }
}

TEST(Tracing, GangSweepIsByteIdenticalWithTracingEnabled)
{
    quiesce();
    const Trace trace = smallTrace(17, 8192);
    const std::vector<std::string> specs = {
        "gshare:8:6",  "gshare:9:6",  "gshare:10:6",
        "bimodal:8",   "gskewed:3:8:6", "egskew:8:6",
    };

    auto sweep = [&] {
        SweepRunner runner(2);
        for (const std::string &spec : specs) {
            runner.enqueue(spec, trace);
        }
        return runner.run();
    };

    const std::vector<SimResult> plain = sweep();
    trace::setEnabled(true);
    const std::vector<SimResult> traced = sweep();
    trace::setEnabled(false);

    ASSERT_EQ(plain.size(), traced.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].predictorName, traced[i].predictorName);
        EXPECT_EQ(plain[i].conditionals, traced[i].conditionals);
        EXPECT_EQ(plain[i].mispredicts, traced[i].mispredicts);
    }

    // The traced pass produced spans from the engine layers the
    // acceptance criteria name.
    std::set<std::string> categories;
    for (const trace::ThreadSnapshot &lane : trace::snapshot()) {
        for (const trace::TraceEvent &event : lane.events) {
            categories.insert(event.category);
        }
    }
    EXPECT_TRUE(categories.count("sweep"));
    EXPECT_TRUE(categories.count("gang"));
    EXPECT_TRUE(categories.count("session"));
    quiesce();
}

} // namespace
