/**
 * @file
 * Zero-copy ingest pipeline tests: the bulk BPT1 decoder against
 * the reference per-byte decoder, mmap sources against stream
 * sources (per-scheme byte identity), corruption rejection, shared
 * mappings across threads, the real-trace adapters, and corpus
 * runner determinism across thread counts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "sim/corpus.hh"
#include "sim/factory.hh"
#include "sim/session.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "trace/adapters.hh"
#include "trace/bpt_format.hh"
#include "trace/mmap_source.hh"
#include "trace/trace_io.hh"
#include "workloads/presets.hh"

namespace bpred
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                ("bpred_ingest_" + tag + "_" +
                 std::to_string(::getpid())))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }

    ~ScratchDir() { fs::remove_all(path_); }

    std::string
    file(const std::string &name) const
    {
        return (path_ / name).string();
    }

    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os.is_open()) << path;
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

/** Serialize @p trace to BPT1 bytes in memory. */
std::string
bptBytes(const Trace &trace)
{
    std::ostringstream os;
    writeBinaryTrace(os, trace);
    return os.str();
}

/** A trace whose deltas cover every varint length, 1 to 10 bytes. */
Trace
makeEdgeTrace()
{
    Trace trace("edges");
    // Small forward steps (1-byte varints).
    Addr pc = 0x40'0000;
    for (int i = 0; i < 40; ++i) {
        pc += 2;
        trace.appendConditional(pc, i % 3 == 0);
    }
    // Two-byte and longer deltas, both signs.
    u64 magnitude = 0x40;
    for (int i = 0; i < 60; ++i) {
        pc += (i % 2 == 0) ? magnitude : (0 - magnitude);
        trace.appendConditional(pc, i % 2 == 0);
        magnitude = (magnitude << 1) | 1;
    }
    // Extremes: top of the address space, i64-overflowing swings,
    // and the all-ones PC (10-byte zig-zag varints).
    trace.appendUnconditional(0);
    trace.appendConditional(~u64(0), true);
    trace.appendConditional(u64(1) << 63, false);
    trace.appendConditional(1, true);
    trace.appendUnconditional(u64(0x7fffffffffffffffull));
    trace.appendConditional(0x40'0000, false);
    return trace;
}

/** A medium random trace (pc locality like the io tests). */
Trace
makeSampleTrace(std::size_t records, u64 seed)
{
    Trace trace("sample");
    Rng rng(seed);
    Addr pc = 0x40'0000;
    for (std::size_t i = 0; i < records; ++i) {
        pc += 4 * (1 + rng.uniformInt(100));
        if (rng.chance(0.2)) {
            trace.appendUnconditional(pc);
        } else {
            trace.appendConditional(pc, rng.chance(0.6));
        }
        if (rng.chance(0.2)) {
            pc -= 4 * rng.uniformInt(200);
        }
    }
    return trace;
}

/** Decode the payload of @p bytes with the bulk decoder. */
std::vector<BranchRecord>
bulkDecode(const std::string &bytes, std::size_t chunk)
{
    const u8 *data = reinterpret_cast<const u8 *>(bytes.data());
    std::size_t header_bytes = 0;
    const bpt::Header header =
        bpt::readHeader(data, bytes.size(), header_bytes);

    std::vector<BranchRecord> out(
        static_cast<std::size_t>(header.count));
    std::size_t done = 0;
    std::size_t at = header_bytes;
    Addr last_pc = 0;
    while (done < out.size()) {
        std::size_t consumed = 0;
        const std::size_t want =
            std::min(chunk, out.size() - done);
        const std::size_t got = bpt::decodeRecords(
            data + at, bytes.size() - at, out.data() + done, want,
            last_pc, consumed);
        if (got == 0) {
            break;
        }
        at += consumed;
        done += got;
    }
    EXPECT_EQ(done, out.size());
    return out;
}

TEST(BulkDecode, MatchesReferenceOnEdgeDeltas)
{
    const Trace trace = makeEdgeTrace();
    const std::string bytes = bptBytes(trace);

    // The istream reference decoder is ground truth.
    std::istringstream is(bytes);
    const bpt::Header header = bpt::readHeader(is);
    ASSERT_EQ(header.count, trace.size());
    Addr ref_pc = 0;
    std::vector<BranchRecord> reference;
    for (u64 i = 0; i < header.count; ++i) {
        reference.push_back(bpt::readRecord(is, ref_pc));
    }

    // Chunk sizes straddle the quad width and the sub-batch/tail
    // boundary logic.
    for (const std::size_t chunk : {std::size_t(1), std::size_t(2),
                                    std::size_t(3), std::size_t(5),
                                    std::size_t(64),
                                    trace.size()}) {
        const std::vector<BranchRecord> bulk =
            bulkDecode(bytes, chunk);
        ASSERT_EQ(bulk.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
            ASSERT_EQ(bulk[i], reference[i])
                << "chunk " << chunk << " record " << i;
        }
    }
}

TEST(BulkDecode, MatchesReferenceOnRandomTrace)
{
    const std::string bytes = bptBytes(makeSampleTrace(5000, 7));
    std::istringstream is(bytes);
    const bpt::Header header = bpt::readHeader(is);
    Addr ref_pc = 0;
    const std::vector<BranchRecord> bulk = bulkDecode(bytes, 256);
    ASSERT_EQ(bulk.size(), header.count);
    for (u64 i = 0; i < header.count; ++i) {
        ASSERT_EQ(bulk[i], bpt::readRecord(is, ref_pc))
            << "record " << i;
    }
}

/** Tallies + snapshot bytes for one spec over one source. */
struct Fingerprint
{
    u64 conditionals = 0;
    u64 mispredicts = 0;
    std::string snapshot;
};

Fingerprint
fingerprint(const std::string &spec, TraceSource &source)
{
    const std::unique_ptr<Predictor> predictor = makePredictor(spec);
    const SimResult result = simulateSource(*predictor, source);
    Fingerprint print;
    print.conditionals = result.conditionals;
    print.mispredicts = result.mispredicts;
    if (predictor->supportsSnapshot()) {
        std::ostringstream os;
        predictor->saveState(os);
        print.snapshot = os.str();
    }
    return print;
}

TEST(MmapSource, ByteIdenticalToStreamForEveryScheme)
{
    if (!mmapSupported()) {
        GTEST_SKIP() << "no mmap on this platform";
    }
    ScratchDir dir("schemes");
    const std::string path = dir.file("trace.bpt");
    saveBinaryTrace(path, makeIbsTrace("real_gcc", 0.01));

    for (const SchemeInfo &scheme : listSchemes()) {
        BinaryTraceSource stream(path);
        const Fingerprint via_stream =
            fingerprint(scheme.example, stream);

        MmapTraceSource fast(path);
        const Fingerprint via_fast =
            fingerprint(scheme.example, fast);

        MmapTraceSource slow(path);
        slow.setFastDecode(false);
        const Fingerprint via_slow =
            fingerprint(scheme.example, slow);

        EXPECT_GT(via_stream.conditionals, 0u) << scheme.example;
        for (const Fingerprint *other : {&via_fast, &via_slow}) {
            EXPECT_EQ(via_stream.conditionals, other->conditionals)
                << scheme.example;
            EXPECT_EQ(via_stream.mispredicts, other->mispredicts)
                << scheme.example;
            EXPECT_EQ(via_stream.snapshot, other->snapshot)
                << scheme.example;
        }
    }
}

TEST(MmapSource, SharedMappingAcrossThreads)
{
    if (!mmapSupported()) {
        GTEST_SKIP() << "no mmap on this platform";
    }
    ScratchDir dir("shared");
    const std::string path = dir.file("trace.bpt");
    const Trace trace = makeSampleTrace(20'000, 11);
    saveBinaryTrace(path, trace);

    const std::shared_ptr<const MappedTrace> mapped =
        MappedTrace::tryOpen(path);
    ASSERT_NE(mapped, nullptr);
    EXPECT_EQ(mapped->count(), trace.size());

    // Four workers drain four independent sources over ONE mapping;
    // each must see exactly the whole trace.
    std::vector<u64> sums(4, 0);
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&, w]() {
            MmapTraceSource source(mapped);
            std::vector<BranchRecord> block(1024);
            u64 sum = 0;
            while (const std::size_t n =
                       source.pull(block.data(), block.size())) {
                for (std::size_t i = 0; i < n; ++i) {
                    sum += block[i].pc + (block[i].taken ? 1 : 0);
                }
            }
            sums[static_cast<std::size_t>(w)] = sum;
        });
    }
    for (std::thread &worker : workers) {
        worker.join();
    }

    u64 expected = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        expected += trace[i].pc + (trace[i].taken ? 1 : 0);
    }
    for (const u64 sum : sums) {
        EXPECT_EQ(sum, expected);
    }
}

TEST(MmapSource, RejectsCorruptHeaders)
{
    if (!mmapSupported()) {
        GTEST_SKIP() << "no mmap on this platform";
    }
    ScratchDir dir("corrupt");

    // Bad magic.
    const std::string bad_magic = dir.file("magic.bpt");
    writeFile(bad_magic, "NOPE____definitely not a trace");
    EXPECT_THROW(MappedTrace::tryOpen(bad_magic), FatalError);

    // Unreasonable name length.
    {
        std::ostringstream os;
        os.write("BPT1", 4);
        bpt::writeVarint(os, u64(1) << 40);
        const std::string path = dir.file("name.bpt");
        writeFile(path, os.str());
        EXPECT_THROW(MappedTrace::tryOpen(path), FatalError);
    }

    // Header declares far more records than the payload can hold:
    // the shared validator rejects it before any decode starts.
    {
        std::ostringstream os;
        bpt::writeHeader(os, "lies", 1'000'000);
        os.put('\0');
        os.put('\0');
        const std::string path = dir.file("count.bpt");
        writeFile(path, os.str());
        EXPECT_THROW(MappedTrace::tryOpen(path), FatalError);
    }

    // A missing file is a fallback (nullptr), not a throw.
    EXPECT_EQ(MappedTrace::tryOpen(dir.file("absent.bpt")), nullptr);
}

/** Map @p payload under a valid header and drain it. */
void
drainPayload(ScratchDir &dir, const std::string &tag, u64 count,
             const std::string &payload)
{
    std::ostringstream os;
    bpt::writeHeader(os, "t", count);
    os << payload;
    const std::string path = dir.file(tag + ".bpt");
    writeFile(path, os.str());
    MmapTraceSource source(path);
    std::vector<BranchRecord> block(256);
    while (source.pull(block.data(), block.size()) != 0) {
    }
}

TEST(MmapSource, RejectsCorruptRecords)
{
    if (!mmapSupported()) {
        GTEST_SKIP() << "no mmap on this platform";
    }
    ScratchDir dir("records");

    // Regular records to pad the corrupt one into the bulk decode
    // fast region (>= maxRecordBytes per pending record).
    std::ostringstream good;
    Addr pc = 0;
    for (int i = 0; i < 40; ++i) {
        bpt::writeRecord(good, {u64(0x1000 + 4 * i), true, true}, pc);
    }

    // Bad flag bits, leading and mid-stream.
    {
        std::string payload = good.str();
        payload[0] = '\x04';
        EXPECT_THROW(drainPayload(dir, "flags0", 40, payload),
                     FatalError);
    }

    // Varint overflow: continuation bit set through byte 10. Fatal
    // in the fast region (mid-stream) and in the checked tail.
    std::string overlong(1, '\0');
    overlong.append(10, '\x80');
    overlong.push_back('\x00');
    {
        std::string payload = overlong + good.str();
        EXPECT_THROW(drainPayload(dir, "over_fast", 41, payload),
                     FatalError);
    }
    {
        std::string payload = good.str() + overlong;
        EXPECT_THROW(drainPayload(dir, "over_tail", 41, payload),
                     FatalError);
    }

    // Truncated mid-record: drop the final byte.
    {
        std::string payload = good.str();
        payload.pop_back();
        EXPECT_THROW(drainPayload(dir, "trunc", 40, payload),
                     FatalError);
    }
}

TEST(Adapters, CbpTextParses)
{
    std::istringstream is("# comment\n"
                          "0x4000 T\n"
                          "0x4004 n\n"
                          "16392 1\n"
                          "16400 0\n");
    const Trace trace = readCbpTextTrace(is, "cbp");
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[0].pc, 0x4000u);
    EXPECT_TRUE(trace[0].taken);
    EXPECT_TRUE(trace[0].conditional);
    EXPECT_FALSE(trace[1].taken);
    EXPECT_EQ(trace[2].pc, 16392u);
    EXPECT_TRUE(trace[2].taken);
    EXPECT_FALSE(trace[3].taken);

    std::istringstream junk("0x4000 T\nnot a line\n");
    EXPECT_THROW(readCbpTextTrace(junk, "junk"), FatalError);
}

TEST(Adapters, GzRoundTrip)
{
    if (!gzSupported()) {
        GTEST_SKIP() << "built without zlib";
    }
    ScratchDir dir("gz");
    const Trace original = makeSampleTrace(3000, 5);

    // .bpt.gz: inflate + shared header validation + bulk decode.
    const std::string gz_bpt = dir.file("trace.bpt.gz");
    ASSERT_TRUE(writeGzFile(gz_bpt, bptBytes(original)));
    const Trace inflated = loadRealTrace(gz_bpt);
    ASSERT_EQ(inflated.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        ASSERT_EQ(inflated[i], original[i]) << "record " << i;
    }

    // .txt.gz in CBP dialect: conditionals only survive the format.
    std::ostringstream text;
    for (std::size_t i = 0; i < original.size(); ++i) {
        if (!original[i].conditional) {
            continue;
        }
        text << "0x" << std::hex << original[i].pc << std::dec
             << (original[i].taken ? " 1" : " 0") << "\n";
    }
    const std::string gz_txt = dir.file("trace.txt.gz");
    ASSERT_TRUE(writeGzFile(gz_txt, text.str()));
    const Trace parsed = loadRealTrace(gz_txt);
    std::size_t at = 0;
    for (std::size_t i = 0; i < original.size(); ++i) {
        if (!original[i].conditional) {
            continue;
        }
        ASSERT_LT(at, parsed.size());
        EXPECT_EQ(parsed[at].pc, original[i].pc);
        EXPECT_EQ(parsed[at].taken, original[i].taken);
        ++at;
    }
    EXPECT_EQ(at, parsed.size());

    // Corrupt gz payload must be a clean fatal, not a misparse.
    const std::string broken = dir.file("broken.bpt.gz");
    writeFile(broken, "\x1f\x8b\x08 definitely not deflate");
    EXPECT_THROW(loadRealTrace(broken), FatalError);
}

TEST(Corpus, ReportIsIdenticalAcrossThreadCounts)
{
    ScratchDir dir("corpus");
    saveBinaryTrace(dir.file("a.bpt"), makeSampleTrace(8000, 21));
    saveBinaryTrace(dir.file("b.bpt"), makeSampleTrace(6000, 22));
    {
        std::ofstream os(dir.file("c.txt"));
        const Trace text_trace = makeSampleTrace(2000, 23);
        writeTextTrace(os, text_trace);
    }

    CorpusOptions options;
    options.specs = {"gshare:10:8", "bimodal:10"};
    options.topSites = 4;

    options.threads = 1;
    const CorpusReport serial = runCorpus(dir.str(), options);
    options.threads = 4;
    const CorpusReport parallel = runCorpus(dir.str(), options);

    ASSERT_EQ(serial.files.size(), 3u);
    EXPECT_EQ(serial.toJson().dump(), parallel.toJson().dump());

    // Sorted-name order and per-file sanity.
    EXPECT_EQ(serial.files[0].file, "a.bpt");
    EXPECT_EQ(serial.files[1].file, "b.bpt");
    EXPECT_EQ(serial.files[2].file, "c.txt");
    for (const CorpusFileResult &file : serial.files) {
        EXPECT_TRUE(file.error.empty()) << file.error;
        EXPECT_GT(file.records, 0u);
        ASSERT_EQ(file.results.size(), 2u);
        EXPECT_EQ(file.results[0].conditionals,
                  file.results[1].conditionals);
    }
    EXPECT_EQ(serial.files[0].ingest,
              mmapSupported() ? "mmap" : "stream");
}

TEST(Corpus, CorruptFileIsIsolated)
{
    ScratchDir dir("isolate");
    saveBinaryTrace(dir.file("good.bpt"), makeSampleTrace(4000, 31));
    writeFile(dir.file("bad.bpt"), "BPT1 this is not really a trace");

    CorpusOptions options;
    options.specs = {"gshare:10:8"};
    const CorpusReport report = runCorpus(dir.str(), options);

    ASSERT_EQ(report.files.size(), 2u);
    EXPECT_FALSE(report.files[0].error.empty());
    EXPECT_EQ(report.files[0].file, "bad.bpt");
    EXPECT_TRUE(report.files[1].error.empty());
    EXPECT_GT(report.files[1].records, 0u);
}

} // namespace
} // namespace bpred
