/**
 * @file
 * Cross-predictor contract suite: every scheme the factory can
 * build must honour the Predictor interface contract. Runs the
 * same property battery over each spec (parameterized gtest).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/driver.hh"
#include "sim/factory.hh"
#include "support/probe.hh"
#include "support/rng.hh"
#include "trace/trace.hh"

namespace bpred
{
namespace
{

/** Every scheme at a small geometry. */
const std::vector<const char *> allSpecs = {
    "static:taken",
    "static:nottaken",
    "bimodal:8",
    "bimodal:8:1",
    "gshare:8:6",
    "gshare:8:6:1",
    "gselect:8:4",
    "pag:8:6",
    "agree:8:6:8",
    "bimode:8:6:8",
    "yags:8:6:8",
    "hybrid:8:6",
    "gskewed:1:8:6",
    "gskewed:3:8:6",
    "gskewed:3:8:6:total",
    "gskewed:3:8:6:partial-lazy",
    "gskewed:5:8:6",
    "egskew:8:6",
    "gskewedsh:3:8:6",
    "egskewsh:8:6",
    "pskew:8:6:3:8",
    "falru:4096:6",
    "unaliased:6",
};

Trace
contractTrace(u64 seed)
{
    Trace trace("contract");
    Rng rng(seed);
    for (int i = 0; i < 20000; ++i) {
        const Addr pc = 0x1000 + 4 * rng.uniformInt(300);
        if (rng.chance(0.2)) {
            trace.appendUnconditional(pc + 0x10000);
        } else {
            // Mix of biased and history-correlated outcomes.
            const bool outcome = (pc >> 2) % 3 == 0
                ? rng.chance(0.9)
                : (i & 2) != 0;
            trace.appendConditional(pc, outcome);
        }
    }
    return trace;
}

class PredictorContract
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PredictorContract, BuildsWithNonEmptyName)
{
    auto predictor = makePredictor(GetParam());
    ASSERT_NE(predictor, nullptr);
    EXPECT_FALSE(predictor->name().empty());
}

TEST_P(PredictorContract, SurvivesRandomStream)
{
    auto predictor = makePredictor(GetParam());
    const Trace trace = contractTrace(1);
    const SimResult result = simulate(*predictor, trace);
    EXPECT_GT(result.conditionals, 0u);
    EXPECT_LE(result.mispredicts, result.conditionals);
}

TEST_P(PredictorContract, DeterministicAcrossInstances)
{
    auto a = makePredictor(GetParam());
    auto b = makePredictor(GetParam());
    const Trace trace = contractTrace(2);
    const SimResult ra = simulate(*a, trace);
    const SimResult rb = simulate(*b, trace);
    EXPECT_EQ(ra.mispredicts, rb.mispredicts);
}

TEST_P(PredictorContract, ResetRestoresInitialBehaviour)
{
    auto predictor = makePredictor(GetParam());
    const Trace trace = contractTrace(3);
    const SimResult first = simulate(*predictor, trace);
    predictor->reset();
    const SimResult second = simulate(*predictor, trace);
    EXPECT_EQ(first.mispredicts, second.mispredicts)
        << "reset() did not restore the cold state";
}

TEST_P(PredictorContract, PredictIsSideEffectFreeOnTables)
{
    // Calling predict() twice in a row must return the same value
    // (prediction is a pure read of predictor state).
    auto predictor = makePredictor(GetParam());
    const Trace trace = contractTrace(4);
    u64 step = 0;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            predictor->notifyUnconditional(record.pc);
            continue;
        }
        const bool once = predictor->predict(record.pc);
        const bool twice = predictor->predict(record.pc);
        ASSERT_EQ(once, twice) << "at step " << step;
        predictor->update(record.pc, record.taken);
        if (++step > 2000) {
            break;
        }
    }
}

TEST_P(PredictorContract, BetterThanCoinFlipOnLearnableStream)
{
    // Every real predictor (not the static ones) must beat 50% on
    // a stream of strongly biased branches.
    const std::string spec = GetParam();
    if (spec.rfind("static", 0) == 0) {
        GTEST_SKIP() << "static predictors are direction-fixed";
    }
    auto predictor = makePredictor(spec);
    Trace trace("biased");
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const Addr pc = 0x1000 + 4 * rng.uniformInt(64);
        const bool dominant = (pc >> 2) % 2 == 0;
        trace.appendConditional(pc, rng.chance(dominant ? 0.95
                                                        : 0.05));
    }
    const SimResult result = simulate(*predictor, trace);
    EXPECT_LT(result.mispredictRatio(), 0.30) << predictor->name();
}

TEST_P(PredictorContract, StorageBitsStable)
{
    auto predictor = makePredictor(GetParam());
    const u64 before = predictor->storageBits();
    const Trace trace = contractTrace(6);
    simulate(*predictor, trace);
    // Only the unaliased predictor is allowed to grow.
    if (std::string(GetParam()).rfind("unaliased", 0) != 0) {
        EXPECT_EQ(predictor->storageBits(), before);
    }
}

TEST_P(PredictorContract, FusedPredictAndUpdateMatchesSplit)
{
    // predictAndUpdate() must be observably identical to
    // predict() followed by update(): same prediction at every
    // step, which also pins the trained state to the same
    // trajectory.
    auto split = makePredictor(GetParam());
    auto fused = makePredictor(GetParam());
    const Trace trace = contractTrace(8);
    u64 step = 0;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            split->notifyUnconditional(record.pc);
            fused->notifyUnconditional(record.pc);
            continue;
        }
        const bool expected = split->predict(record.pc);
        split->update(record.pc, record.taken);
        const bool got =
            fused->predictAndUpdate(record.pc, record.taken)
                .prediction;
        ASSERT_EQ(expected, got) << "at step " << step;
        ++step;
    }
}

TEST_P(PredictorContract, FusedMatchesSplitWithProbeAttached)
{
    // With a telemetry sink attached, the fused path must emit
    // exactly the same event stream as the split path, not just
    // the same predictions.
    auto split = makePredictor(GetParam());
    auto fused = makePredictor(GetParam());
    CountingProbe splitProbe;
    CountingProbe fusedProbe;
    split->attachProbe(&splitProbe);
    fused->attachProbe(&fusedProbe);
    const Trace trace = contractTrace(9);
    u64 step = 0;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            split->notifyUnconditional(record.pc);
            fused->notifyUnconditional(record.pc);
            continue;
        }
        const bool expected = split->predict(record.pc);
        split->update(record.pc, record.taken);
        const bool got =
            fused->predictAndUpdate(record.pc, record.taken)
                .prediction;
        ASSERT_EQ(expected, got) << "at step " << step;
        if (++step > 4000) {
            break;
        }
    }
    EXPECT_EQ(splitProbe.registry().toJson().dump(2),
              fusedProbe.registry().toJson().dump(2));
}

TEST_P(PredictorContract, WarmupNeverHurtsDeterminism)
{
    auto predictor = makePredictor(GetParam());
    const Trace trace = contractTrace(7);
    SimOptions options;
    options.warmupBranches = 5000;
    const SimResult warm =
        simulateWithOptions(*predictor, trace, options);
    EXPECT_LE(warm.conditionals,
              computeTraceStats(trace).dynamicConditional);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, PredictorContract, ::testing::ValuesIn(allSpecs),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == ':' || c == '-') {
                c = '_';
            }
        }
        return name;
    });

} // namespace
} // namespace bpred
