/**
 * @file
 * Cross-predictor contract suite: every scheme the factory can
 * build must honour the Predictor interface contract. Runs the
 * same property battery over each spec (parameterized gtest).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "predictors/predictor.hh"
#include "predictors/replay_scratch.hh"
#include "sim/driver.hh"
#include "sim/factory.hh"
#include "support/probe.hh"
#include "support/rng.hh"
#include "support/simd.hh"
#include "trace/trace.hh"

namespace bpred
{
namespace
{

/** Every scheme at a small geometry. */
const std::vector<const char *> allSpecs = {
    "static:taken",
    "static:nottaken",
    "bimodal:8",
    "bimodal:8:1",
    "gshare:8:6",
    "gshare:8:6:1",
    "gselect:8:4",
    "pag:8:6",
    "agree:8:6:8",
    "bimode:8:6:8",
    "yags:8:6:8",
    "hybrid:8:6",
    "gskewed:1:8:6",
    "gskewed:3:8:6",
    "gskewed:3:8:6:total",
    "gskewed:3:8:6:partial-lazy",
    "gskewed:5:8:6",
    "egskew:8:6",
    "gskewedsh:3:8:6",
    "egskewsh:8:6",
    "pskew:8:6:3:8",
    "falru:4096:6",
    "unaliased:6",
};

Trace
contractTrace(u64 seed)
{
    Trace trace("contract");
    Rng rng(seed);
    for (int i = 0; i < 20000; ++i) {
        const Addr pc = 0x1000 + 4 * rng.uniformInt(300);
        if (rng.chance(0.2)) {
            trace.appendUnconditional(pc + 0x10000);
        } else {
            // Mix of biased and history-correlated outcomes.
            const bool outcome = (pc >> 2) % 3 == 0
                ? rng.chance(0.9)
                : (i & 2) != 0;
            trace.appendConditional(pc, outcome);
        }
    }
    return trace;
}

class PredictorContract
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PredictorContract, BuildsWithNonEmptyName)
{
    auto predictor = makePredictor(GetParam());
    ASSERT_NE(predictor, nullptr);
    EXPECT_FALSE(predictor->name().empty());
}

TEST_P(PredictorContract, SurvivesRandomStream)
{
    auto predictor = makePredictor(GetParam());
    const Trace trace = contractTrace(1);
    const SimResult result = simulate(*predictor, trace);
    EXPECT_GT(result.conditionals, 0u);
    EXPECT_LE(result.mispredicts, result.conditionals);
}

TEST_P(PredictorContract, DeterministicAcrossInstances)
{
    auto a = makePredictor(GetParam());
    auto b = makePredictor(GetParam());
    const Trace trace = contractTrace(2);
    const SimResult ra = simulate(*a, trace);
    const SimResult rb = simulate(*b, trace);
    EXPECT_EQ(ra.mispredicts, rb.mispredicts);
}

TEST_P(PredictorContract, ResetRestoresInitialBehaviour)
{
    auto predictor = makePredictor(GetParam());
    const Trace trace = contractTrace(3);
    const SimResult first = simulate(*predictor, trace);
    predictor->reset();
    const SimResult second = simulate(*predictor, trace);
    EXPECT_EQ(first.mispredicts, second.mispredicts)
        << "reset() did not restore the cold state";
}

TEST_P(PredictorContract, PredictIsSideEffectFreeOnTables)
{
    // Calling predict() twice in a row must return the same value
    // (prediction is a pure read of predictor state).
    auto predictor = makePredictor(GetParam());
    const Trace trace = contractTrace(4);
    u64 step = 0;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            predictor->notifyUnconditional(record.pc);
            continue;
        }
        const bool once = predictor->predict(record.pc);
        const bool twice = predictor->predict(record.pc);
        ASSERT_EQ(once, twice) << "at step " << step;
        predictor->update(record.pc, record.taken);
        if (++step > 2000) {
            break;
        }
    }
}

TEST_P(PredictorContract, BetterThanCoinFlipOnLearnableStream)
{
    // Every real predictor (not the static ones) must beat 50% on
    // a stream of strongly biased branches.
    const std::string spec = GetParam();
    if (spec.rfind("static", 0) == 0) {
        GTEST_SKIP() << "static predictors are direction-fixed";
    }
    auto predictor = makePredictor(spec);
    Trace trace("biased");
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const Addr pc = 0x1000 + 4 * rng.uniformInt(64);
        const bool dominant = (pc >> 2) % 2 == 0;
        trace.appendConditional(pc, rng.chance(dominant ? 0.95
                                                        : 0.05));
    }
    const SimResult result = simulate(*predictor, trace);
    EXPECT_LT(result.mispredictRatio(), 0.30) << predictor->name();
}

TEST_P(PredictorContract, StorageBitsStable)
{
    auto predictor = makePredictor(GetParam());
    const u64 before = predictor->storageBits();
    const Trace trace = contractTrace(6);
    simulate(*predictor, trace);
    // Only the unaliased predictor is allowed to grow.
    if (std::string(GetParam()).rfind("unaliased", 0) != 0) {
        EXPECT_EQ(predictor->storageBits(), before);
    }
}

TEST_P(PredictorContract, FusedPredictAndUpdateMatchesSplit)
{
    // predictAndUpdate() must be observably identical to
    // predict() followed by update(): same prediction at every
    // step, which also pins the trained state to the same
    // trajectory.
    auto split = makePredictor(GetParam());
    auto fused = makePredictor(GetParam());
    const Trace trace = contractTrace(8);
    u64 step = 0;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            split->notifyUnconditional(record.pc);
            fused->notifyUnconditional(record.pc);
            continue;
        }
        const bool expected = split->predict(record.pc);
        split->update(record.pc, record.taken);
        const bool got =
            fused->predictAndUpdate(record.pc, record.taken)
                .prediction;
        ASSERT_EQ(expected, got) << "at step " << step;
        ++step;
    }
}

TEST_P(PredictorContract, FusedMatchesSplitWithProbeAttached)
{
    // With a telemetry sink attached, the fused path must emit
    // exactly the same event stream as the split path, not just
    // the same predictions.
    auto split = makePredictor(GetParam());
    auto fused = makePredictor(GetParam());
    CountingProbe splitProbe;
    CountingProbe fusedProbe;
    split->attachProbe(&splitProbe);
    fused->attachProbe(&fusedProbe);
    const Trace trace = contractTrace(9);
    u64 step = 0;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            split->notifyUnconditional(record.pc);
            fused->notifyUnconditional(record.pc);
            continue;
        }
        const bool expected = split->predict(record.pc);
        split->update(record.pc, record.taken);
        const bool got =
            fused->predictAndUpdate(record.pc, record.taken)
                .prediction;
        ASSERT_EQ(expected, got) << "at step " << step;
        if (++step > 4000) {
            break;
        }
    }
    EXPECT_EQ(splitProbe.registry().toJson().dump(2),
              fusedProbe.registry().toJson().dump(2));
}

TEST_P(PredictorContract, WarmupNeverHurtsDeterminism)
{
    auto predictor = makePredictor(GetParam());
    const Trace trace = contractTrace(7);
    SimOptions options;
    options.warmupBranches = 5000;
    const SimResult warm =
        simulateWithOptions(*predictor, trace, options);
    EXPECT_LE(warm.conditionals,
              computeTraceStats(trace).dynamicConditional);
}

/**
 * Replay @p trace through @p predictor's scalar fused loop — the
 * reference semantics replayBlock() must reproduce.
 */
ReplayCounters
replayScalar(Predictor &predictor, const Trace &trace)
{
    ReplayCounters counters;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            predictor.notifyUnconditional(record.pc);
            continue;
        }
        const bool prediction =
            predictor.predictAndUpdate(record.pc, record.taken)
                .prediction;
        ++counters.conditionals;
        counters.mispredicts += u64(prediction != record.taken);
    }
    return counters;
}

/**
 * Replay @p trace through replayBlock() in deliberately uneven
 * chunks (1, 3, 7, 15, ... records) so block boundaries land at
 * arbitrary offsets, including mid-"natural" block.
 */
ReplayCounters
replayBlocks(Predictor &predictor, const Trace &trace)
{
    ReplayCounters counters;
    const BranchRecord *records = trace.records().data();
    std::size_t at = 0;
    std::size_t chunk = 1;
    while (at < trace.size()) {
        const std::size_t n = std::min(chunk, trace.size() - at);
        predictor.replayBlock(records + at, n, counters);
        at += n;
        chunk = chunk * 2 + 1;
    }
    return counters;
}

TEST(ReplayBlockContract, BlockMatchesScalarForEveryScheme)
{
    // Every scheme the factory knows: same tallies from the block
    // kernel as from the scalar fused loop, and — checked by a
    // second fused pass over fresh records — the same trained
    // state afterwards.
    const Trace trace = contractTrace(10);
    const Trace check = contractTrace(11);
    for (const SchemeInfo &scheme : listSchemes()) {
        SCOPED_TRACE(scheme.example);
        auto scalar = makePredictor(scheme.example);
        auto block = makePredictor(scheme.example);
        const ReplayCounters want = replayScalar(*scalar, trace);
        const ReplayCounters got = replayBlocks(*block, trace);
        EXPECT_EQ(want.conditionals, got.conditionals);
        EXPECT_EQ(want.mispredicts, got.mispredicts);

        u64 step = 0;
        for (const BranchRecord &record : check) {
            if (!record.conditional) {
                scalar->notifyUnconditional(record.pc);
                block->notifyUnconditional(record.pc);
                continue;
            }
            const bool expected =
                scalar->predictAndUpdate(record.pc, record.taken)
                    .prediction;
            const bool actual =
                block->predictAndUpdate(record.pc, record.taken)
                    .prediction;
            ASSERT_EQ(expected, actual)
                << "trained state diverged by step " << step;
            if (++step > 4000) {
                break;
            }
        }
    }
}

TEST(ReplayBlockContract, ProbedBlockMatchesScalarEventStream)
{
    // With a telemetry sink attached, replayBlock() must delegate
    // to the scalar loop: identical tallies AND an identical event
    // stream, for every scheme.
    const Trace trace = contractTrace(12);
    for (const SchemeInfo &scheme : listSchemes()) {
        SCOPED_TRACE(scheme.example);
        auto scalar = makePredictor(scheme.example);
        auto block = makePredictor(scheme.example);
        CountingProbe scalarProbe;
        CountingProbe blockProbe;
        scalar->attachProbe(&scalarProbe);
        block->attachProbe(&blockProbe);
        const ReplayCounters want = replayScalar(*scalar, trace);
        const ReplayCounters got = replayBlocks(*block, trace);
        EXPECT_EQ(want.conditionals, got.conditionals);
        EXPECT_EQ(want.mispredicts, got.mispredicts);
        EXPECT_EQ(scalarProbe.registry().toJson().dump(2),
                  blockProbe.registry().toJson().dump(2));
    }
}

TEST(ReplayBlockContract, SessionBlockPathMatchesScalarAtBoundaries)
{
    // The session-level block path must split correctly at warmup,
    // flush and window boundaries that land mid-block: identical
    // SimResult to the scalar engine (options.scalarReplay) with
    // bookkeeping intervals chosen to straddle block boundaries.
    const Trace trace = contractTrace(13);
    SimOptions blockOptions;
    blockOptions.warmupBranches = 1234;
    blockOptions.flushInterval = 3456;
    blockOptions.windowSize = 789;
    SimOptions scalarOptions = blockOptions;
    scalarOptions.scalarReplay = true;
    for (const SchemeInfo &scheme : listSchemes()) {
        SCOPED_TRACE(scheme.example);
        auto blockSide = makePredictor(scheme.example);
        auto scalarSide = makePredictor(scheme.example);
        const SimResult a =
            simulateWithOptions(*blockSide, trace, blockOptions);
        const SimResult b =
            simulateWithOptions(*scalarSide, trace, scalarOptions);
        EXPECT_EQ(a.predictorName, b.predictorName);
        EXPECT_EQ(a.conditionals, b.conditionals);
        EXPECT_EQ(a.mispredicts, b.mispredicts);
        ASSERT_EQ(a.windows.size(), b.windows.size());
        for (std::size_t i = 0; i < a.windows.size(); ++i) {
            EXPECT_EQ(a.windows[i].branches, b.windows[i].branches);
            EXPECT_EQ(a.windows[i].mispredicts,
                      b.windows[i].mispredicts);
        }
    }
}

/**
 * Replay @p trace through replayBlock() in fixed @p block_records
 * chunks, passing @p scratch down (null = fused reference kernel).
 */
ReplayCounters
replayBlocksFixed(Predictor &predictor, const Trace &trace,
                  std::size_t block_records, ReplayScratch *scratch)
{
    ReplayCounters counters;
    const BranchRecord *records = trace.records().data();
    for (std::size_t at = 0; at < trace.size(); at += block_records) {
        const std::size_t n =
            std::min(block_records, trace.size() - at);
        predictor.replayBlock(records + at, n, counters, scratch);
    }
    return counters;
}

/** saveState() bytes, or "" for schemes without snapshot support. */
std::string
snapshotBytes(const Predictor &predictor)
{
    if (!predictor.supportsSnapshot()) {
        return {};
    }
    std::ostringstream os;
    predictor.saveState(os);
    return os.str();
}

TEST(ReplayBlockContract, SimdMatchesScalarAcrossBlockSizesAndModes)
{
    // The phase-split path must be byte-identical to the fused
    // reference for every scheme, at every block size (including
    // size 1, where the vector fill degenerates to its scalar tail)
    // and under both dispatch modes — Scalar exercises the
    // bit-identical fallback kernels, Avx2 the vector fills where
    // the build and host support them. Tallies AND trained state
    // (snapshot bytes) must match.
    const Trace trace = contractTrace(14);
    const std::size_t blockSizes[] = {1, 7, 64, 8192};
    const SimdMode modes[] = {SimdMode::Scalar, SimdMode::Avx2};
    for (const SchemeInfo &scheme : listSchemes()) {
        for (const std::size_t block : blockSizes) {
            for (const SimdMode mode : modes) {
                SCOPED_TRACE(std::string(scheme.example) + " block=" +
                             std::to_string(block) + " mode=" +
                             std::string(simdModeName(mode)));
                auto reference = makePredictor(scheme.example);
                auto simd = makePredictor(scheme.example);
                ReplayScratch scratch;
                scratch.mode = mode;
                const ReplayCounters want = replayBlocksFixed(
                    *reference, trace, block, nullptr);
                const ReplayCounters got =
                    replayBlocksFixed(*simd, trace, block, &scratch);
                EXPECT_EQ(want.conditionals, got.conditionals);
                EXPECT_EQ(want.mispredicts, got.mispredicts);
                EXPECT_EQ(snapshotBytes(*reference),
                          snapshotBytes(*simd));
            }
        }
    }
}

TEST(ReplayBlockContract, SessionSimdPathMatchesScalarAtBoundaries)
{
    // Session-level dispatch: SimOptions::simd = Avx2 against the
    // forced-scalar engine, with warmup / flush / window intervals
    // chosen to straddle block boundaries so the phase-split kernel
    // sees partial blocks at every bookkeeping edge.
    const Trace trace = contractTrace(15);
    SimOptions simdOptions;
    simdOptions.warmupBranches = 1234;
    simdOptions.flushInterval = 3456;
    simdOptions.windowSize = 789;
    simdOptions.simd = SimdMode::Avx2;
    SimOptions scalarOptions = simdOptions;
    scalarOptions.simd = SimdMode::Scalar;
    for (const SchemeInfo &scheme : listSchemes()) {
        SCOPED_TRACE(scheme.example);
        auto simdSide = makePredictor(scheme.example);
        auto scalarSide = makePredictor(scheme.example);
        const SimResult a =
            simulateWithOptions(*simdSide, trace, simdOptions);
        const SimResult b =
            simulateWithOptions(*scalarSide, trace, scalarOptions);
        EXPECT_EQ(a.conditionals, b.conditionals);
        EXPECT_EQ(a.mispredicts, b.mispredicts);
        ASSERT_EQ(a.windows.size(), b.windows.size());
        for (std::size_t i = 0; i < a.windows.size(); ++i) {
            EXPECT_EQ(a.windows[i].branches, b.windows[i].branches);
            EXPECT_EQ(a.windows[i].mispredicts,
                      b.windows[i].mispredicts);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, PredictorContract, ::testing::ValuesIn(allSpecs),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == ':' || c == '-') {
                c = '_';
            }
        }
        return name;
    });

} // namespace
} // namespace bpred
