// The sweep deliberately omits the third scheme.
static const char *allSpecs[] = {
    "good:14",
    "waived:8",
};

int
specCount()
{
    return static_cast<int>(sizeof(allSpecs) / sizeof(allSpecs[0]));
}
