// Miniature factory: "good" is fully wired, "waived" runs the
// scalar path by declaration, and "bad" is the half-registered
// scheme the rule exists to catch (no saveState, no kernel, no
// waiver, absent from the contract sweep).

#include "predictors/bad.hh"
#include "predictors/good.hh"
#include "predictors/waived.hh"

namespace bpred
{

// bp_lint: scalar-only(waived) — tag/LRU bound; scalar replay wins.
const std::vector<SchemeInfo> &
listSchemes()
{
    static const std::vector<SchemeInfo> schemes = {
        {"good", "fully wired scheme"},
        {"waived", "scalar by declaration"},
        {"bad", "half-registered scheme"},
    };
    return schemes;
}

std::unique_ptr<Predictor>
makePredictor(const std::string &scheme)
{
    if (scheme == "good") {
        return std::make_unique<GoodPredictor>();
    }
    if (scheme == "waived") {
        return std::make_unique<WaivedPredictor>();
    }
    if (scheme == "bad") {
        return std::make_unique<BadPredictor>();
    }
    return nullptr;
}

} // namespace bpred
