#pragma once

namespace bpred
{

class GoodPredictor : public Predictor
{
  public:
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;
    void replayBlock(const BranchRecord *records, std::size_t n,
                     ReplayCounters &counters,
                     ReplayScratch *scratch) override;
};

} // namespace bpred
