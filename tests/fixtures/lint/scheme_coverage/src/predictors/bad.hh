#pragma once

namespace bpred
{

// Half-registered on purpose: loadState without saveState, no
// block kernel, no scalar-only waiver, not in the contract sweep.
class BadPredictor : public Predictor
{
  public:
    void loadState(std::istream &is) override;
};

} // namespace bpred
