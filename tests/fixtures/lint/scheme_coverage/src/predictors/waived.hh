#pragma once

namespace bpred
{

class WaivedPredictor : public Predictor
{
  public:
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;
};

} // namespace bpred
