// This file's own include is a legal same-module edge, but the
// header it pulls in reaches into sim — the transitive closure
// check flags the chain here too.
#include "support/util.hh"

int
userOfUtil()
{
    return supportHelper();
}
