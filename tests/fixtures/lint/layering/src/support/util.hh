#pragma once

// Backward edge: support is the bottom layer and must not reach up
// into sim. The layering rule flags this directive directly.
#include "sim/engine.hh"

inline int
supportHelper()
{
    return simEngineId();
}
