#pragma once

inline int
simEngineId()
{
    return 7;
}
