// A registered test: cmake-registration finds its name in the
// sibling CMakeLists.txt and stays quiet.
int
main()
{
    return 0;
}
