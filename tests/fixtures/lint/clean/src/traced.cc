// Clean-tree exemplar of the trace-literal contract: every
// category/name is a string literal, including wrapped argument
// lists and numeric args.
void
traced(int index, int count)
{
    TRACE_SCOPE("engine", "run");
    TRACE_SCOPE("engine", "cell",
                static_cast<unsigned long>(index),
                static_cast<unsigned long>(count));
    TRACE_INSTANT("engine", "boundary");
    TRACE_COUNTER("engine", "occupancy", 0.5);
}
