/**
 * Raw-string regression: the bodies below contain comment openers,
 * stray quotes and banned-looking identifiers. A stripper without
 * raw-literal support desynchronizes here and leaks them into the
 * code view, which would make this clean tree fail the
 * banned-identifier rule.
 */

#include <string>

const std::string kQuery = R"sql(
    SELECT rand() FROM atoi -- strcpy( "unbalanced
)sql";

const std::string kJson = R"({"new": "Widget", "strtol": 1})";

const std::string kPrefixed = u8R"x(sprintf( // ")x";

int
rawStrings()
{
    return static_cast<int>(kQuery.size() + kJson.size() +
                            kPrefixed.size());
}
