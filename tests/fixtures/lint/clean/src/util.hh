#pragma once

namespace fixture
{

int answer();

} // namespace fixture
