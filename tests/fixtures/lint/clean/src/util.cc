#include "util.hh"

namespace fixture
{

int
answer()
{
    // Digit separators must survive the lexer: 1'000 is not a char
    // literal, and everything after it is still scanned.
    return 42'000 / 1'000;
}

} // namespace fixture
