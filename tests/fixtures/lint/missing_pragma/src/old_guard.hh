#ifndef BPRED_FIXTURE_OLD_GUARD_HH
#define BPRED_FIXTURE_OLD_GUARD_HH

// Old-style guard: flagged once for the guard line and once for
// the missing #pragma once.
int guarded();

#endif // BPRED_FIXTURE_OLD_GUARD_HH
