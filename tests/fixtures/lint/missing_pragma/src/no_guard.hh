// No include guard of any kind.
int unguarded();
