#pragma once

int fine();
