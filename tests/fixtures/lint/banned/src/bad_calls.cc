#include <cstdlib>

#include "dice.hh"

int
flagged(const char *text, Dice &dice)
{
    // Three real violations on the lines below.
    const int a = std::atoi(text);
    const int b = rand();
    int *leak = new int(a + b);

    // None of these are: member call, foreign qualifier, the word
    // in a comment (rand), the word in a string.
    const int c = dice.rand() + other::rand();
    const char *prose = "call rand() here";
    return a + b + c + *leak + (prose ? 1 : 0);
}

int
suppressed()
{
    // Justified exception. bp_lint: allow(banned-identifier)
    return rand();
}
