// Factories are the one place raw new is allowed.
int *
makeWidget()
{
    return new int(7);
}
