// Fixture: trace-literal violations (and the shapes that must not
// fire). This tree is linted, never compiled, so the macros are
// assumed to exist.
#include <string>

static const char *kCat = "engine";

void
spans(const std::string &label)
{
    TRACE_SCOPE("engine", "good");
    TRACE_SCOPE("engine", "wrapped",
                0, 1);
    TRACE_SCOPE(label.c_str(), "bad-category");
    TRACE_SCOPE("engine", label.c_str());
    TRACE_INSTANT("engine", dynamic_name);
    // bp_lint: allow(trace-literal) audited legacy call site
    TRACE_COUNTER(kCat, "value", 1.0);
    // A mention of TRACE_SCOPE in a comment must not fire, nor may
    // the string "TRACE_INSTANT(x, y)" below.
    const char *doc = "TRACE_INSTANT(x, y)";
    (void)doc;
    MY_TRACE_SCOPE(label, label);
}
