// Never named in the sibling CMakeLists.txt: builds on nobody's
// machine, runs in nobody's CI.
int
main()
{
    return 0;
}
