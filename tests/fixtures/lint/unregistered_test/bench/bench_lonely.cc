// A bench source in a directory with no CMakeLists.txt at all.
int
main()
{
    return 0;
}
