#include <cstdint>
#include <vector>

std::vector<std::uint64_t>
decode(std::uint64_t declared_count)
{
    std::vector<std::uint64_t> records;
    // Sizing from a decoded count with no justification: flagged.
    records.reserve(declared_count);
    return records;
}

std::vector<std::uint64_t>
decodeBounded(std::uint64_t declared_count)
{
    std::vector<std::uint64_t> records;
    // The count was validated against the stream length upstream.
    // bp_lint: allow(reserve-untrusted)
    records.reserve(declared_count);
    return records;
}
