#include <cstdint>
#include <vector>

std::vector<std::uint64_t>
collect(std::uint64_t decoded_sites)
{
    std::vector<std::uint64_t> sites;
    // resize() from a decoded count with no justification: flagged.
    sites.resize(decoded_sites);
    return sites;
}

std::vector<std::uint64_t>
collectTopK(std::vector<std::uint64_t> sites, std::size_t top_k)
{
    // bp_lint: allow(reserve-untrusted): shrinking to the caller's
    // top-K request, never growing to a decoded count.
    sites.resize(std::min(sites.size(), top_k));
    return sites;
}
