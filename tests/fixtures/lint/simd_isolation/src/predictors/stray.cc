/** Intrinsics in a plain translation unit: two violations. */

#include <immintrin.h>

int
strayLane()
{
    // _mm256_extract_epi32 in a comment is not a violation.
    const __m128i lanes = _mm_set1_epi32(7);
    return _mm_cvtsi128_si32(lanes);
}
