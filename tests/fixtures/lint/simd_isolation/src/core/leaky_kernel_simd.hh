/** A *_simd file whose intrinsics escape the BPRED_HAVE_AVX2 gate. */

#pragma once

#include <immintrin.h>

inline __m256i
leakyAdd(__m256i a, __m256i b)
{
    return _mm256_add_epi64(a, b);
}

#if BPRED_HAVE_AVX2
/** Properly guarded: not a violation. */
inline __m256i
guardedAdd(__m256i a, __m256i b)
{
    return _mm256_add_epi64(a, b);
}
#endif
