#include "factory.hh"

const std::vector<SchemeInfo> &
listSchemes()
{
    static const std::vector<SchemeInfo> schemes = {
        {"widget", "matched by the widget-4k literal",
         {{"size", FieldKind::Number, false, ""}},
         "widget:12"},
        // bp_lint: fingerprint(alias)=widget legacy spelling kept
        // for old spec files.
        {"alias", "matched through the override above", {},
         "alias"},
        {"gizmo", "no predictor prints this one: flagged", {},
         "gizmo:8"},
    };
    return schemes;
}
