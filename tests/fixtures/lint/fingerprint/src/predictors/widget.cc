#include "widget.hh"

std::string
Widget::name() const
{
    // 4'096 exercises digit separators inside a name() body.
    return "widget-" + std::to_string(4'096 / 1'024) + "k";
}
