#include <atomic>

namespace bpred
{

std::atomic<bool> tracingEnabled{false};

void
enable()
{
    // Violation: implicit seq_cst.
    tracingEnabled.store(true);
}

bool
enabled()
{
    return tracingEnabled.load(std::memory_order_relaxed);
}

void
toggle()
{
    // Violation: operator= cannot take an order argument.
    tracingEnabled = true;
}

void
enableWithFence()
{
    // Startup path; the seq_cst fence is intended here.
    // bp_lint: allow(atomic-order)
    tracingEnabled.store(true);
}

} // namespace bpred
