#include "serve/pool.hh"

namespace bpred
{

void
MiniPool::push(int v)
{
    std::lock_guard<std::mutex> lock(inboxMutex);
    inbox.push_back(v);
}

int
MiniPool::peekUnsafe() const
{
    // Violation: no lock on inboxMutex anywhere above this scope.
    return inbox.empty() ? 0 : inbox.front();
}

int
MiniPool::sizeLockFree() const
{
    // Racy size probe for monitoring only; the contract documents
    // that the value may be stale, never torn (deque size read).
    // bp_lint: allow(lock-discipline)
    return static_cast<int>(inbox.size());
}

} // namespace bpred
