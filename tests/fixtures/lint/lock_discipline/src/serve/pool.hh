#pragma once

#include <deque>
#include <mutex>

namespace bpred
{

class MiniPool
{
  public:
    void push(int v);
    int peekUnsafe() const;
    int sizeLockFree() const;

  private:
    mutable std::mutex inboxMutex;
    // bp_lint: guarded_by(inboxMutex)
    std::deque<int> inbox;
};

} // namespace bpred
