#pragma once

namespace fixture
{

[[deprecated("use runWithOptions() instead")]]
int runLegacy(int n);

int runWithOptions(int n);

} // namespace fixture
