#include "api.hh"

namespace fixture
{

// The shim's own definition lives in the declaring header's
// sibling .cc and is exempt.
int
runLegacy(int n)
{
    return runWithOptions(n);
}

int
runWithOptions(int n)
{
    return n * 2;
}

} // namespace fixture
