#include "api.hh"

// Production code still on the deprecated shim: flagged.
int
stillLegacy()
{
    return fixture::runLegacy(3);
}
