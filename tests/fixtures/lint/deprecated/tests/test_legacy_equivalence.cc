#include "api.hh"

// Tests may pin the deprecated surface against its replacement.
int
main()
{
    return fixture::runLegacy(3) == fixture::runWithOptions(3)
        ? 0 : 1;
}
