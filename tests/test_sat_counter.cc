/**
 * @file
 * Unit tests for saturating counters.
 */

#include <gtest/gtest.h>

#include "support/sat_counter.hh"

namespace bpred
{
namespace
{

TEST(SatCounter, OneBitActsAsLastOutcome)
{
    SatCounter counter(1);
    EXPECT_FALSE(counter.predictTaken());
    counter.update(true);
    EXPECT_TRUE(counter.predictTaken());
    counter.update(false);
    EXPECT_FALSE(counter.predictTaken());
}

TEST(SatCounter, TwoBitHysteresis)
{
    SatCounter counter(2);
    counter.setStrong(true); // 3
    EXPECT_TRUE(counter.predictTaken());
    counter.update(false); // 2: still predicts taken
    EXPECT_TRUE(counter.predictTaken());
    counter.update(false); // 1: now not taken
    EXPECT_FALSE(counter.predictTaken());
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter counter(2);
    for (int i = 0; i < 10; ++i) {
        counter.update(true);
    }
    EXPECT_EQ(counter.value(), 3);
    EXPECT_TRUE(counter.isStrong());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter counter(2, 3);
    for (int i = 0; i < 10; ++i) {
        counter.update(false);
    }
    EXPECT_EQ(counter.value(), 0);
    EXPECT_TRUE(counter.isStrong());
}

TEST(SatCounter, ThresholdMidpoint)
{
    SatCounter two(2);
    EXPECT_EQ(two.threshold(), 2);
    SatCounter three(3);
    EXPECT_EQ(three.threshold(), 4);
    EXPECT_EQ(three.maxValue(), 7);
}

TEST(SatCounter, SetWeak)
{
    SatCounter counter(2);
    counter.setWeak(true);
    EXPECT_TRUE(counter.predictTaken());
    EXPECT_FALSE(counter.isStrong());
    counter.setWeak(false);
    EXPECT_FALSE(counter.predictTaken());
    EXPECT_FALSE(counter.isStrong());
}

TEST(SatCounter, SetStrong)
{
    SatCounter counter(2);
    counter.setStrong(true);
    EXPECT_EQ(counter.value(), 3);
    counter.setStrong(false);
    EXPECT_EQ(counter.value(), 0);
}

/**
 * Property: for every width, a counter saturated toward a
 * direction survives exactly maxValue/2 opposing updates before
 * flipping its prediction.
 */
class SatCounterWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidth, HysteresisDepth)
{
    const unsigned width = GetParam();
    SatCounter counter(width);
    counter.setStrong(true);
    unsigned flips_needed = 0;
    while (counter.predictTaken()) {
        counter.update(false);
        ++flips_needed;
    }
    // From max (2^w - 1) down to threshold-1 (2^(w-1) - 1):
    // exactly 2^(w-1) updates.
    EXPECT_EQ(flips_needed, 1u << (width - 1));
}

TEST_P(SatCounterWidth, NeverLeavesRange)
{
    const unsigned width = GetParam();
    SatCounter counter(width);
    u64 pattern = 0xa5a5'5a5a'dead'beefULL;
    for (int i = 0; i < 64; ++i) {
        counter.update((pattern >> i) & 1);
        EXPECT_LE(counter.value(), counter.maxValue());
    }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, SatCounterWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u));

TEST(SatCounterArray, InitialState)
{
    SatCounterArray table(16, 2);
    EXPECT_EQ(table.size(), 16u);
    EXPECT_EQ(table.width(), 2u);
    EXPECT_EQ(table.storageBits(), 32u);
    for (u64 i = 0; i < table.size(); ++i) {
        EXPECT_FALSE(table.predictTaken(i));
        EXPECT_EQ(table.value(i), 0);
    }
}

TEST(SatCounterArray, IndependentEntries)
{
    SatCounterArray table(8, 2);
    table.update(3, true);
    table.update(3, true);
    EXPECT_TRUE(table.predictTaken(3));
    for (u64 i = 0; i < 8; ++i) {
        if (i != 3) {
            EXPECT_FALSE(table.predictTaken(i));
        }
    }
}

TEST(SatCounterArray, MatchesScalarCounter)
{
    SatCounterArray table(1, 2);
    SatCounter scalar(2);
    u64 pattern = 0x1234'5678'9abc'def0ULL;
    for (int i = 0; i < 64; ++i) {
        const bool taken = (pattern >> i) & 1;
        table.update(0, taken);
        scalar.update(taken);
        ASSERT_EQ(table.value(0), scalar.value());
        ASSERT_EQ(table.predictTaken(0), scalar.predictTaken());
    }
}

TEST(SatCounterArray, Reset)
{
    SatCounterArray table(4, 2);
    table.update(0, true);
    table.update(1, true);
    table.reset(3);
    for (u64 i = 0; i < 4; ++i) {
        EXPECT_EQ(table.value(i), 3);
    }
    table.reset();
    for (u64 i = 0; i < 4; ++i) {
        EXPECT_EQ(table.value(i), 0);
    }
}

TEST(SatCounterArray, InitialValueHonoured)
{
    SatCounterArray table(4, 2, 2);
    for (u64 i = 0; i < 4; ++i) {
        EXPECT_TRUE(table.predictTaken(i));
    }
}

} // namespace
} // namespace bpred
