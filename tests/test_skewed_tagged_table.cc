/**
 * @file
 * Unit tests for the skewed-associative tagged table.
 */

#include <gtest/gtest.h>

#include "aliasing/fa_lru_table.hh"
#include "aliasing/skewed_tagged_table.hh"
#include "aliasing/tagged_table.hh"
#include "core/skew.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

TEST(SkewedTagged, ColdMissThenHit)
{
    SkewedTaggedTable table(3, 4);
    EXPECT_TRUE(table.access(42));
    EXPECT_FALSE(table.access(42));
    EXPECT_DOUBLE_EQ(table.missStat().ratio(), 0.5);
}

TEST(SkewedTagged, Geometry)
{
    SkewedTaggedTable table(3, 6);
    EXPECT_EQ(table.totalEntries(), 3u * 64);
}

TEST(SkewedTagged, RejectsBadGeometry)
{
    EXPECT_THROW(SkewedTaggedTable(0, 4), FatalError);
    EXPECT_THROW(SkewedTaggedTable(6, 4), FatalError);
    EXPECT_THROW(SkewedTaggedTable(3, 0), FatalError);
}

TEST(SkewedTagged, SurvivesDirectMappedConflict)
{
    // Find two keys that collide in way 0 but (by the dispersion
    // property) not elsewhere; both must then stay resident.
    const unsigned n = 4;
    const u64 a = 3;
    u64 b = 0;
    for (u64 candidate = a + 1;; ++candidate) {
        const u64 diff = a ^ candidate;
        if (skewIndex(0, candidate, n) == skewIndex(0, a, n) &&
            ((diff & mask(n)) != ((diff >> n) & mask(n)))) {
            b = candidate;
            break;
        }
    }

    SkewedTaggedTable table(3, n);
    table.access(a);
    table.access(b);
    // Both resident now: no further misses while alternating.
    for (int i = 0; i < 20; ++i) {
        EXPECT_FALSE(table.access(a));
        EXPECT_FALSE(table.access(b));
    }
}

TEST(SkewedTagged, SingleWayDegeneratesToDirectMapped)
{
    // One way indexed by f0 behaves like a direct-mapped table
    // under f0: a colliding pair ping-pongs.
    const unsigned n = 4;
    const u64 a = 1;
    u64 b = 0;
    for (u64 candidate = a + 1;; ++candidate) {
        if (skewIndex(0, candidate, n) == skewIndex(0, a, n)) {
            b = candidate;
            break;
        }
    }
    SkewedTaggedTable table(1, n);
    table.access(a);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(table.access(b));
        EXPECT_TRUE(table.access(a));
    }
}

TEST(SkewedTagged, Reset)
{
    SkewedTaggedTable table(3, 4);
    table.access(7);
    table.reset();
    EXPECT_EQ(table.missStat().total(), 0u);
    EXPECT_TRUE(table.access(7));
}

/**
 * The bracketing property over random streams: for equal total
 * entries, miss(FA-LRU) <= miss(3-way skewed) <= miss(DM) + slack.
 */
TEST(SkewedTagged, SitsBetweenDirectMappedAndFullyAssociative)
{
    Rng rng(1234);
    const unsigned way_bits = 6;           // 3 x 64 = 192 entries
    SkewedTaggedTable skewed(3, way_bits);
    FullyAssociativeLruTable fa(3 << way_bits);  // 192 entries
    TaggedDirectMappedTable dm(7);               // 128 entries

    for (int i = 0; i < 50000; ++i) {
        // A working set with locality: hot zipf keys.
        const u64 key = rng.zipf(1000, 1.1);
        skewed.access(key);
        fa.access(key);
        dm.access(key & 0x7f, key);
    }
    // Equal capacity: full associativity is the floor.
    EXPECT_LE(fa.missStat().ratio(),
              skewed.missStat().ratio() + 1e-9);
    // The skewed table clearly beats a direct-mapped table of the
    // same order of capacity: conflicts dispersed across ways.
    EXPECT_LT(skewed.missStat().ratio(), dm.aliasing().ratio());
}

} // namespace
} // namespace bpred
