/**
 * @file
 * Unit tests for support/bitops.hh.
 */

#include <gtest/gtest.h>

#include "support/bitops.hh"

namespace bpred
{
namespace
{

TEST(Mask, Zero)
{
    EXPECT_EQ(mask(0), 0u);
}

TEST(Mask, Small)
{
    EXPECT_EQ(mask(1), 0x1u);
    EXPECT_EQ(mask(4), 0xfu);
    EXPECT_EQ(mask(12), 0xfffu);
}

TEST(Mask, Full)
{
    EXPECT_EQ(mask(64), ~u64(0));
    EXPECT_EQ(mask(63), ~u64(0) >> 1);
}

TEST(Bits, ExtractsField)
{
    EXPECT_EQ(bits(0xabcd, 4, 8), 0xbcu);
    EXPECT_EQ(bits(0xabcd, 0, 4), 0xdu);
    EXPECT_EQ(bits(0xabcd, 12, 4), 0xau);
}

TEST(Bit, SingleBits)
{
    EXPECT_TRUE(bit(0b100, 2));
    EXPECT_FALSE(bit(0b100, 1));
    EXPECT_TRUE(bit(u64(1) << 63, 63));
}

TEST(IsPowerOfTwo, Basics)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(u64(1) << 40));
    EXPECT_FALSE(isPowerOfTwo((u64(1) << 40) + 1));
}

TEST(FloorLog2, Basics)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(~u64(0)), 63u);
}

TEST(CeilLog2, Basics)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
}

TEST(PopCount, Basics)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0b1011), 3u);
    EXPECT_EQ(popCount(~u64(0)), 64u);
}

TEST(XorFold, FoldsToWidth)
{
    // 0xab ^ 0xcd = 0x66
    EXPECT_EQ(xorFold(0xabcd, 8), 0x66u);
    // Value narrower than the width is unchanged.
    EXPECT_EQ(xorFold(0x3, 8), 0x3u);
    // Folding to 1 bit equals parity.
    EXPECT_EQ(xorFold(0b1011, 1), 1u);
    EXPECT_EQ(xorFold(0b1010, 1), 0u);
}

TEST(XorFold, ResultAlwaysInRange)
{
    for (u64 v = 0; v < 4096; v += 7) {
        EXPECT_LT(xorFold(v * 0x9e3779b9ULL, 5), 32u);
    }
}

TEST(ReverseBits, Involution)
{
    for (u64 v = 0; v < 256; ++v) {
        EXPECT_EQ(reverseBits(reverseBits(v, 8), 8), v);
    }
}

TEST(ReverseBits, KnownValues)
{
    EXPECT_EQ(reverseBits(0b0001, 4), 0b1000u);
    EXPECT_EQ(reverseBits(0b1101, 4), 0b1011u);
}

TEST(RotateLeft, Basics)
{
    EXPECT_EQ(rotateLeft(0b0001, 4, 1), 0b0010u);
    EXPECT_EQ(rotateLeft(0b1000, 4, 1), 0b0001u);
    EXPECT_EQ(rotateLeft(0b1011, 4, 0), 0b1011u);
    EXPECT_EQ(rotateLeft(0b1011, 4, 4), 0b1011u);
}

/** Property: rotating by n is the identity for any value. */
TEST(RotateLeft, FullRotationIdentity)
{
    for (unsigned n = 1; n <= 16; ++n) {
        for (u64 v = 0; v < 64; ++v) {
            EXPECT_EQ(rotateLeft(v & mask(n), n, n), v & mask(n));
        }
    }
}

} // namespace
} // namespace bpred
