/**
 * @file
 * Fuzz-style robustness tests for trace deserialization: malformed
 * input must raise FatalError (or parse), never crash or hang.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/logging.hh"
#include "support/rng.hh"
#include "trace/trace_io.hh"

namespace bpred
{
namespace
{

TEST(TraceFuzz, RandomBytesNeverCrashBinaryReader)
{
    Rng rng(0xf022);
    for (int trial = 0; trial < 300; ++trial) {
        const std::size_t length = rng.uniformInt(200);
        std::string bytes;
        bytes.reserve(length + 4);
        // Half the trials start with the valid magic to reach the
        // deeper parsing paths.
        if (rng.chance(0.5)) {
            bytes += "BPT1";
        }
        for (std::size_t i = 0; i < length; ++i) {
            bytes.push_back(static_cast<char>(rng.uniformInt(256)));
        }
        std::stringstream stream(bytes);
        try {
            const Trace trace = readBinaryTrace(stream);
            // Parsing succeeded: the result must be internally
            // consistent (no negative sizes etc. — just touch it).
            (void)computeTraceStats(trace);
        } catch (const FatalError &) {
            // Expected for malformed input.
        }
    }
}

TEST(TraceFuzz, BitFlippedValidTraceNeverCrashes)
{
    // Serialize a real trace, then flip one byte at a time.
    Trace original("flip");
    Rng rng(77);
    Addr pc = 0x1000;
    for (int i = 0; i < 64; ++i) {
        pc += 4 * (1 + rng.uniformInt(32));
        if (rng.chance(0.3)) {
            original.appendUnconditional(pc);
        } else {
            original.appendConditional(pc, rng.chance(0.5));
        }
    }
    std::stringstream buffer;
    writeBinaryTrace(buffer, original);
    const std::string bytes = buffer.str();

    for (std::size_t position = 0; position < bytes.size();
         ++position) {
        for (const u8 flip : {u8(0x01), u8(0x80), u8(0xff)}) {
            std::string mutated = bytes;
            mutated[position] =
                static_cast<char>(mutated[position] ^ flip);
            std::stringstream stream(mutated);
            try {
                const Trace trace = readBinaryTrace(stream);
                (void)trace.size();
            } catch (const FatalError &) {
                // fine
            }
        }
    }
}

TEST(TraceFuzz, RandomTextNeverCrashesTextReader)
{
    Rng rng(0xbeef);
    const char alphabet[] = "CUTN 0123456789abcdefx#\n\t";
    for (int trial = 0; trial < 300; ++trial) {
        std::string text;
        const std::size_t length = rng.uniformInt(400);
        for (std::size_t i = 0; i < length; ++i) {
            text.push_back(
                alphabet[rng.uniformInt(sizeof(alphabet) - 1)]);
        }
        std::stringstream stream(text);
        try {
            (void)readTextTrace(stream, "fuzz");
        } catch (const FatalError &) {
            // fine
        }
    }
}

TEST(TraceFuzz, HugeDeclaredCountRejectedQuickly)
{
    // A header declaring 2^60 records with no payload must fail
    // fast with FatalError, not allocate or spin.
    std::string bytes = "BPT1";
    bytes.push_back(4); // name length 4
    bytes += "huge";
    // Varint for a gigantic count.
    for (int i = 0; i < 8; ++i) {
        bytes.push_back(static_cast<char>(0xff));
    }
    bytes.push_back(0x0f);
    std::stringstream stream(bytes);
    EXPECT_THROW(readBinaryTrace(stream), FatalError);
}

} // namespace
} // namespace bpred
