/**
 * @file
 * Unit tests for the synthetic-program interpreter.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "support/logging.hh"
#include "workloads/interpreter.hh"
#include "workloads/program_builder.hh"

namespace bpred
{
namespace
{

/** A hand-built program: main { loop(site 0) { if (site 1) } }. */
Program
handProgram()
{
    Program program;
    program.sites.resize(2);
    program.sites[0].kind = SiteKind::Loop;
    program.sites[0].addr = 0x100;
    program.sites[0].meanTrips = 4.0;
    program.sites[0].fixedTrips = true;
    program.sites[1].kind = SiteKind::Biased;
    program.sites[1].addr = 0x104;
    program.sites[1].takenProbability = 1.0;

    Statement inner;
    inner.kind = StatementKind::If;
    inner.site = 1;

    Statement loop;
    loop.kind = StatementKind::Loop;
    loop.site = 0;
    loop.body.push_back(inner);

    Procedure main;
    main.entryAddr = 0x100;
    main.body.push_back(loop);
    program.procedures.push_back(main);
    return program;
}

TEST(Interpreter, EmitsExactQuantum)
{
    const Program program = handProgram();
    Trace trace("t");
    StreamContext context(trace);
    Interpreter interpreter(program, 1);
    const u64 emitted = interpreter.run(context, 100);
    EXPECT_EQ(emitted, 100u);
    EXPECT_EQ(context.conditionals(), 100u);
}

TEST(Interpreter, FixedLoopEmitsBottomTestPattern)
{
    // With 4 fixed trips, the loop branch pattern is T T T N per
    // activation, and the if inside fires once per iteration.
    const Program program = handProgram();
    Trace trace("t");
    StreamContext context(trace);
    Interpreter interpreter(program, 1);
    interpreter.run(context, 8); // one full activation = 8 branches

    // Expected: (if, loopT) x3, (if, loopN) -> addresses alternate.
    ASSERT_EQ(trace.size(), 8u);
    for (int i = 0; i < 8; i += 2) {
        EXPECT_EQ(trace[i].pc, 0x104u) << "if site at " << i;
        EXPECT_TRUE(trace[i].taken);
        EXPECT_EQ(trace[i + 1].pc, 0x100u) << "loop site";
    }
    EXPECT_TRUE(trace[1].taken);
    EXPECT_TRUE(trace[3].taken);
    EXPECT_TRUE(trace[5].taken);
    EXPECT_FALSE(trace[7].taken); // loop exit
}

TEST(Interpreter, ResumableAcrossQuanta)
{
    // Running 50 then 50 must equal running 100 in one go.
    const Program program = handProgram();

    Trace split_trace("a");
    StreamContext split_context(split_trace);
    Interpreter split(program, 9);
    split.run(split_context, 50);
    split.run(split_context, 50);

    Trace whole_trace("b");
    StreamContext whole_context(whole_trace);
    Interpreter whole(program, 9);
    whole.run(whole_context, 100);

    ASSERT_EQ(split_trace.size(), whole_trace.size());
    for (std::size_t i = 0; i < whole_trace.size(); ++i) {
        ASSERT_EQ(split_trace[i], whole_trace[i]) << "record " << i;
    }
}

TEST(Interpreter, RestartsMainWhenItReturns)
{
    const Program program = handProgram();
    Trace trace("t");
    StreamContext context(trace);
    Interpreter interpreter(program, 1);
    // 8 branches per main activation; ask for several activations.
    interpreter.run(context, 80);
    EXPECT_EQ(context.conditionals(), 80u);
}

TEST(Interpreter, GeneratedProgramEmitsCallsAndJumps)
{
    ProgramParams params;
    params.seed = 3;
    params.staticBranchTarget = 400;
    const Program program = buildProgram(params);

    Trace trace("gen");
    StreamContext context(trace);
    Interpreter interpreter(program, 4);
    interpreter.run(context, 20000);

    const TraceStats stats = computeTraceStats(trace);
    EXPECT_EQ(stats.dynamicConditional, 20000u);
    EXPECT_GT(stats.dynamicUnconditional, 500u)
        << "calls/returns/jumps present in the stream";
}

TEST(Interpreter, CoversMostStaticSites)
{
    ProgramParams params;
    params.seed = 5;
    params.staticBranchTarget = 300;
    const Program program = buildProgram(params);

    Trace trace("cov");
    StreamContext context(trace);
    Interpreter interpreter(program, 6);
    interpreter.run(context, 120000);

    std::unordered_set<Addr> executed;
    for (const BranchRecord &record : trace) {
        if (record.conditional) {
            executed.insert(record.pc);
        }
    }
    // Most generated sites should actually execute.
    EXPECT_GT(executed.size(), program.numSites() * 6 / 10);
}

TEST(Interpreter, DeterministicForSeed)
{
    ProgramParams params;
    params.seed = 8;
    params.staticBranchTarget = 200;
    const Program program = buildProgram(params);

    Trace a("a");
    Trace b("b");
    {
        StreamContext context(a);
        Interpreter interpreter(program, 42);
        interpreter.run(context, 5000);
    }
    {
        StreamContext context(b);
        Interpreter interpreter(program, 42);
        interpreter.run(context, 5000);
    }
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]);
    }
}

TEST(Interpreter, CorrelatedSitesFollowSharedHistory)
{
    // A program with a single noiseless correlated site driven by
    // bit 0 of the history: outcome at step i equals previous
    // outcome's complement... i.e., deterministic given history.
    Program program;
    program.sites.resize(1);
    program.sites[0].kind = SiteKind::Correlated;
    program.sites[0].addr = 0x200;
    program.sites[0].historyMask = 0b1;
    program.sites[0].invert = true; // taken iff last outcome was N
    program.sites[0].noise = 0.0;

    Statement stmt;
    stmt.kind = StatementKind::If;
    stmt.site = 0;
    Procedure main;
    main.body.push_back(stmt);
    program.procedures.push_back(main);

    Trace trace("corr");
    StreamContext context(trace);
    Interpreter interpreter(program, 1);
    interpreter.run(context, 64);

    // Outcomes must alternate T N T N ... after the first.
    for (std::size_t i = 1; i < trace.size(); ++i) {
        EXPECT_NE(trace[i].taken, trace[i - 1].taken);
    }
}

TEST(Interpreter, RejectsEmptyProgram)
{
    Program empty;
    EXPECT_THROW(Interpreter(empty, 1), FatalError);
}

} // namespace
} // namespace bpred
