/**
 * @file
 * Tests for the multi-tenant serving layer (src/serve).
 *
 * The load-bearing invariant: a tenant served through a
 * PredictorPool — batched, sharded, LRU-evicted and restored from
 * BPS1 checkpoints along the way — must end bit-identical to the
 * same record stream fed to a dedicated SimSession, for every
 * registered scheme. Plus TenantCache edge cases: capacity-1
 * thrash, evict-during-restore residency, corrupt checkpoint
 * rejection, cross-scheme fingerprint mismatches, and disk spill.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "serve/predictor_pool.hh"
#include "serve/serve_stats.hh"
#include "serve/tenant_cache.hh"
#include "sim/factory.hh"
#include "sim/session.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "trace/trace.hh"

namespace bpred
{
namespace
{

/** A deterministic per-tenant branch stream. */
Trace
tenantTrace(u64 tenant, int records)
{
    Trace trace("tenant-" + std::to_string(tenant));
    Rng rng(0x5eed + tenant * 977);
    for (int i = 0; i < records; ++i) {
        const Addr pc = 0x4000 + 4 * rng.uniformInt(300);
        if (rng.chance(0.15)) {
            trace.appendUnconditional(pc + 0x40000);
        } else {
            const bool outcome = (pc >> 2) % 3 == 0
                ? rng.chance(0.8)
                : (i & 1) != 0;
            trace.appendConditional(pc, outcome);
        }
    }
    return trace;
}

/**
 * A deliberately small configuration per scheme, so 5 tenants x 16
 * schemes x several pool shapes stay fast while still exercising
 * real table state. Fails loudly when a new scheme is registered
 * without a small spec here.
 */
std::string
smallSpec(const std::string &scheme)
{
    static const std::map<std::string, std::string> specs = {
        {"static", "static:taken"},
        {"bimodal", "bimodal:8"},
        {"gshare", "gshare:8:6"},
        {"gselect", "gselect:8:4"},
        {"pag", "pag:6:6"},
        {"agree", "agree:8:6:8"},
        {"bimode", "bimode:8:6:8"},
        {"yags", "yags:7:6:8"},
        {"hybrid", "hybrid:8:6"},
        {"gskewed", "gskewed:3:7:6"},
        {"egskew", "egskew:7:6"},
        {"gskewedsh", "gskewedsh:3:7:6"},
        {"egskewsh", "egskewsh:7:6"},
        {"pskew", "pskew:6:6:3:7"},
        {"falru", "falru:64:4"},
        {"unaliased", "unaliased:6"},
    };
    const auto it = specs.find(scheme);
    if (it == specs.end()) {
        ADD_FAILURE() << "no small spec for scheme " << scheme;
        return "bimodal:8";
    }
    return it->second;
}

/** Dedicated-predictor reference: result + final snapshot bytes. */
struct Reference
{
    SimResult result;
    std::string snapshot;
};

Reference
dedicatedReference(const std::string &spec, const Trace &trace)
{
    auto predictor = makePredictor(spec);
    SimSession session(*predictor, SimOptions(), trace.name());
    session.feed(trace);
    Reference reference;
    reference.result = session.finish();
    std::ostringstream os;
    savePredictorState(*predictor, os);
    reference.snapshot = std::move(os).str();
    return reference;
}

TEST(PredictorPool, PooledTenantsMatchDedicatedSessions)
{
    constexpr u64 numTenants = 5;

    for (const SchemeInfo &scheme : listSchemes()) {
        const std::string spec = smallSpec(scheme.name);
        for (const unsigned shards : {1u, 4u}) {
            for (const std::size_t batch :
                 {std::size_t(1), std::size_t(7),
                  std::size_t(8192)}) {
                SCOPED_TRACE(spec + " shards=" +
                             std::to_string(shards) + " batch=" +
                             std::to_string(batch));

                // Enough records that every batch size needs
                // several requests; multi-block requests are
                // exercised by a block size under the batch.
                const int records = batch == 1 ? 400
                    : batch == 7               ? 1400
                                               : 12000;
                std::vector<Trace> traces;
                for (u64 tenant = 0; tenant < numTenants; ++tenant) {
                    traces.push_back(tenantTrace(tenant, records));
                }

                PredictorPool::Options options;
                options.shards = shards;
                options.tenantCapacity = 2; // < tenants: thrash
                options.blockRecords = 1000;
                PredictorPool pool(parseSpec(spec), options);

                // Interleave the tenants' streams request by
                // request, as concurrent clients would.
                // Midpoint rounded to a request boundary, but at
                // least one request so the forced evict below
                // always has live tenants to checkpoint.
                const std::size_t half = std::max(
                    batch, traces[0].size() / batch / 2 * batch);
                const auto feedRange = [&](std::size_t from,
                                           std::size_t to) {
                    for (std::size_t offset = from; offset < to;
                         offset += batch) {
                        for (u64 tenant = 0; tenant < numTenants;
                             ++tenant) {
                            const Trace &trace = traces[tenant];
                            if (offset >= trace.size()) {
                                continue;
                            }
                            PredictRequest request;
                            request.tenant = tenant;
                            request.records =
                                trace.records().data() + offset;
                            request.count = std::min(
                                batch, trace.size() - offset);
                            pool.submit(request);
                        }
                    }
                };

                feedRange(0, half);
                pool.drain();
                // Force at least one checkpoint cycle per tenant.
                for (u64 tenant = 0; tenant < numTenants; ++tenant) {
                    pool.evictTenant(tenant);
                }
                feedRange(half, traces[0].size());
                pool.drain();

                const PoolCounters counters = pool.counters();
                EXPECT_GE(counters.cache.evictions, numTenants);
                EXPECT_GE(counters.cache.restores, numTenants);
                EXPECT_LE(counters.residentTenants,
                          std::size_t(2) * shards);

                for (u64 tenant = 0; tenant < numTenants; ++tenant) {
                    SCOPED_TRACE("tenant " + std::to_string(tenant));
                    const Reference want =
                        dedicatedReference(spec, traces[tenant]);
                    const TenantSummary got =
                        pool.tenantSummary(tenant);
                    EXPECT_EQ(got.conditionals,
                              want.result.conditionals);
                    EXPECT_EQ(got.mispredicts,
                              want.result.mispredicts);
                    EXPECT_EQ(pool.exportTenant(tenant),
                              want.snapshot);
                }
            }
        }
    }
}

TEST(PredictorPool, ImportedStateContinuesExactly)
{
    // Export a tenant mid-stream, import it as a different tenant,
    // and serve the second half to both: they must stay identical.
    const Trace trace = tenantTrace(3, 4000);
    const std::size_t half = trace.size() / 2;

    PredictorPool::Options options;
    options.shards = 2;
    PredictorPool pool(parseSpec("gshare:8:6"), options);

    pool.submit({3, trace.records().data(), half});
    pool.drain();
    const std::string snapshot = pool.exportTenant(3);
    pool.importTenant(17, snapshot);

    pool.submit({3, trace.records().data() + half,
                 trace.size() - half});
    pool.submit({17, trace.records().data() + half,
                 trace.size() - half});
    pool.drain();

    EXPECT_EQ(pool.exportTenant(3), pool.exportTenant(17));
}

TEST(PredictorPool, RejectsMalformedRequests)
{
    PredictorPool pool(parseSpec("bimodal:8"),
                       PredictorPool::Options{});
    EXPECT_THROW(pool.submit({0, nullptr, 4}), FatalError);
    const Trace trace = tenantTrace(0, 8);
    EXPECT_THROW(pool.submit({0, trace.records().data(), 0}),
                 FatalError);
}

TEST(ServeStats, ExportsPoolAndTenantRows)
{
    const Trace trace = tenantTrace(1, 2000);
    PredictorPool::Options options;
    options.tenantCapacity = 1;
    PredictorPool pool(parseSpec("gshare:8:6"), options);
    pool.submit({1, trace.records().data(), trace.size()});
    pool.submit({2, trace.records().data(), trace.size()});
    pool.drain();

    StatRegistry registry;
    exportServeStats(pool, registry, 8);
    EXPECT_EQ(registry.counter("serve.pool.requests"), 2u);
    EXPECT_EQ(registry.counter("serve.pool.records"),
              2 * trace.size());
    EXPECT_EQ(registry.counter("serve.pool.tenants"), 2u);
    EXPECT_TRUE(registry.contains("serve.cache.evictions"));
    EXPECT_TRUE(
        registry.contains("serve.latency.request_us"));
    EXPECT_TRUE(registry.contains("serve.tenant.1.requests"));
    EXPECT_TRUE(registry.contains("serve.tenant.2.mispredict"));

    // The JSON form nests the same data under "serve".
    const std::string json = serveStatsToJson(pool, 0).dump(2);
    EXPECT_NE(json.find("\"serve\""), std::string::npos);
    EXPECT_NE(json.find("\"pool\""), std::string::npos);
}

TEST(TenantCache, CapacityOneThrashStaysExact)
{
    // Two tenants ping-pong through a single residency slot: every
    // switch is an evict + restore, and both must still match
    // dedicated predictors fed the same interleaved streams.
    TenantCache::Options options;
    options.capacity = 1;
    TenantCache cache(parseSpec("gshare:8:6"), options);

    auto dedicated_a = makePredictor("gshare:8:6");
    auto dedicated_b = makePredictor("gshare:8:6");

    Rng rng(99);
    for (int round = 0; round < 200; ++round) {
        const u64 tenant = round % 2;
        Predictor &pooled = cache.acquire(tenant);
        Predictor &reference =
            tenant == 0 ? *dedicated_a : *dedicated_b;
        for (int i = 0; i < 5; ++i) {
            const Addr pc = 0x100 + 4 * rng.uniformInt(50);
            const bool taken = rng.chance(0.7);
            pooled.predictAndUpdate(pc, taken);
            reference.predictAndUpdate(pc, taken);
        }
    }

    EXPECT_GE(cache.counters().evictions, 199u);
    EXPECT_GE(cache.counters().restores, 198u);
    EXPECT_EQ(cache.resident(), 1u);

    std::ostringstream want_a;
    savePredictorState(*dedicated_a, want_a);
    EXPECT_EQ(cache.exportTenant(0), want_a.str());
    std::ostringstream want_b;
    savePredictorState(*dedicated_b, want_b);
    EXPECT_EQ(cache.exportTenant(1), want_b.str());
}

TEST(TenantCache, RestoreEvictsTheLruResidentFirst)
{
    TenantCache::Options options;
    options.capacity = 2;
    TenantCache cache(parseSpec("bimodal:8"), options);

    cache.acquire(1);
    cache.acquire(2);
    cache.acquire(3); // evicts 1 (LRU)
    EXPECT_FALSE(cache.isResident(1));
    EXPECT_TRUE(cache.isResident(2));
    EXPECT_TRUE(cache.isResident(3));

    // Restoring 1 must push out the current LRU (2) and never hold
    // three live predictors.
    cache.acquire(1);
    EXPECT_TRUE(cache.isResident(1));
    EXPECT_FALSE(cache.isResident(2));
    EXPECT_TRUE(cache.isResident(3));
    EXPECT_EQ(cache.resident(), 2u);
    EXPECT_LE(cache.resident(), cache.capacity());
    EXPECT_EQ(cache.knownTenants(), 3u);
}

TEST(TenantCache, RejectsCorruptAndTruncatedCheckpoints)
{
    TenantCache cache(parseSpec("gshare:8:6"),
                      TenantCache::Options{});
    Predictor &predictor = cache.acquire(5);
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        predictor.predictAndUpdate(0x200 + 4 * rng.uniformInt(40),
                                   rng.chance(0.6));
    }
    const std::string good = cache.exportTenant(5);

    // Truncated payload.
    EXPECT_THROW(
        cache.importTenant(5, good.substr(0, good.size() / 2)),
        FatalError);
    // Not a snapshot at all.
    EXPECT_THROW(cache.importTenant(5, "this is not a snapshot"),
                 FatalError);
    // Failed imports leave the tenant's state untouched.
    EXPECT_EQ(cache.exportTenant(5), good);

    // A valid buffer round-trips.
    cache.importTenant(5, good);
    EXPECT_EQ(cache.exportTenant(5), good);
}

TEST(TenantCache, RejectsSnapshotsFromAnotherScheme)
{
    TenantCache gshare_cache(parseSpec("gshare:8:6"),
                             TenantCache::Options{});
    TenantCache egskew_cache(parseSpec("egskew:7:6"),
                             TenantCache::Options{});
    gshare_cache.acquire(1);
    const std::string bytes = gshare_cache.exportTenant(1);
    // The BPS1 name fingerprint catches the scheme mismatch before
    // any table bytes are interpreted.
    EXPECT_THROW(egskew_cache.importTenant(1, bytes), FatalError);
}

TEST(TenantCache, RejectsZeroCapacity)
{
    TenantCache::Options options;
    options.capacity = 0;
    EXPECT_THROW(TenantCache(parseSpec("bimodal:8"), options),
                 FatalError);
}

TEST(TenantCache, SpillsCheckpointsToDisk)
{
    TenantCache::Options options;
    options.capacity = 1;
    options.spillDir =
        ::testing::TempDir() + "bpred_serve_spill_test";
    TenantCache cache(parseSpec("gshare:8:6"), options);

    auto dedicated = makePredictor("gshare:8:6");
    Predictor &pooled = cache.acquire(42);
    Rng rng(13);
    for (int i = 0; i < 300; ++i) {
        const Addr pc = 0x300 + 4 * rng.uniformInt(60);
        const bool taken = rng.chance(0.55);
        pooled.predictAndUpdate(pc, taken);
        dedicated->predictAndUpdate(pc, taken);
    }

    cache.acquire(43); // evicts 42 to disk
    EXPECT_EQ(cache.counters().spills, 1u);
    EXPECT_EQ(cache.checkpointBytes(), 0u); // nothing held in memory

    // Restore from the spill file and keep matching the dedicated
    // predictor.
    std::ostringstream want;
    savePredictorState(*dedicated, want);
    EXPECT_EQ(cache.exportTenant(42), want.str());
    Predictor &restored = cache.acquire(42);
    std::ostringstream got;
    savePredictorState(restored, got);
    EXPECT_EQ(got.str(), want.str());
}

} // namespace
} // namespace bpred
