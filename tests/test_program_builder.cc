/**
 * @file
 * Unit tests for synthetic program generation.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/program_builder.hh"

namespace bpred
{
namespace
{

ProgramParams
smallParams(u64 seed = 1)
{
    ProgramParams params;
    params.seed = seed;
    params.staticBranchTarget = 300;
    params.sitesPerProcedure = 30;
    return params;
}

TEST(ProgramBuilder, Deterministic)
{
    const Program a = buildProgram(smallParams(5));
    const Program b = buildProgram(smallParams(5));
    ASSERT_EQ(a.sites.size(), b.sites.size());
    ASSERT_EQ(a.procedures.size(), b.procedures.size());
    for (std::size_t i = 0; i < a.sites.size(); ++i) {
        EXPECT_EQ(a.sites[i].addr, b.sites[i].addr);
        EXPECT_EQ(a.sites[i].kind, b.sites[i].kind);
    }
}

TEST(ProgramBuilder, DifferentSeedsDiffer)
{
    const Program a = buildProgram(smallParams(1));
    const Program b = buildProgram(smallParams(2));
    bool differs = a.sites.size() != b.sites.size();
    if (!differs) {
        for (std::size_t i = 0; i < a.sites.size(); ++i) {
            if (a.sites[i].addr != b.sites[i].addr ||
                a.sites[i].kind != b.sites[i].kind) {
                differs = true;
                break;
            }
        }
    }
    EXPECT_TRUE(differs);
}

TEST(ProgramBuilder, SiteCountNearTarget)
{
    const Program program = buildProgram(smallParams());
    EXPECT_GE(program.numSites(), 300u * 8 / 10);
    EXPECT_LE(program.numSites(), 300u * 13 / 10);
}

TEST(ProgramBuilder, AddressesWordAlignedAndUnique)
{
    const Program program = buildProgram(smallParams());
    std::set<Addr> addresses;
    for (const BranchSite &site : program.sites) {
        EXPECT_EQ(site.addr % 4, 0u);
        EXPECT_TRUE(addresses.insert(site.addr).second)
            << "duplicate site address";
    }
}

TEST(ProgramBuilder, AddressesStartAtBase)
{
    ProgramParams params = smallParams();
    params.addressBase = 0x7000'0000;
    const Program program = buildProgram(params);
    for (const BranchSite &site : program.sites) {
        EXPECT_GE(site.addr, 0x7000'0000u);
    }
}

TEST(ProgramBuilder, MixesSiteKinds)
{
    const Program program = buildProgram(smallParams());
    std::set<SiteKind> kinds;
    for (const BranchSite &site : program.sites) {
        kinds.insert(site.kind);
    }
    EXPECT_EQ(kinds.size(), 4u) << "all four behaviours present";
}

TEST(ProgramBuilder, CallGraphAcyclic)
{
    const Program program = buildProgram(smallParams());

    // Walk every statement; a Call from procedure i must target
    // j > i.
    struct Walker
    {
        const Program &program;
        u32 current = 0;
        bool ok = true;

        void
        walk(const StmtBlock &block)
        {
            for (const Statement &stmt : block) {
                if (stmt.kind == StatementKind::Call) {
                    ok = ok && stmt.callee > current &&
                        stmt.callee < program.procedures.size();
                } else if (stmt.kind == StatementKind::If) {
                    walk(stmt.thenBlock);
                    walk(stmt.elseBlock);
                } else if (stmt.kind == StatementKind::Loop) {
                    walk(stmt.body);
                }
            }
        }
    };

    Walker walker{program};
    for (u32 proc = 0; proc < program.procedures.size(); ++proc) {
        walker.current = proc;
        walker.walk(program.procedures[proc].body);
    }
    EXPECT_TRUE(walker.ok);
}

TEST(ProgramBuilder, MainDispatchesToEveryProcedure)
{
    const Program program = buildProgram(smallParams());
    std::set<u32> called;
    // Main's dispatcher is If-guarded burst loops around calls.
    for (const Statement &stmt : program.procedures[0].body) {
        if (stmt.kind != StatementKind::If ||
            stmt.thenBlock.empty()) {
            continue;
        }
        const Statement &burst = stmt.thenBlock[0];
        if (burst.kind == StatementKind::Loop &&
            !burst.body.empty() &&
            burst.body[0].kind == StatementKind::Call) {
            called.insert(burst.body[0].callee);
        }
    }
    EXPECT_EQ(called.size(), program.procedures.size() - 1);
}

TEST(ProgramBuilder, ShapeAnalysisConsistent)
{
    const Program program = buildProgram(smallParams());
    const ProgramShape shape = analyzeProgram(program);
    EXPECT_EQ(shape.ifCount + shape.loopCount, program.numSites());
    EXPECT_GT(shape.loopCount, 0u);
    EXPECT_GT(shape.callCount, 0u);
    EXPECT_GE(shape.maxDepth, 2u);
}

TEST(ProgramBuilder, SiteParametersWithinContracts)
{
    const Program program = buildProgram(smallParams());
    for (const BranchSite &site : program.sites) {
        switch (site.kind) {
          case SiteKind::Biased:
            EXPECT_GE(site.takenProbability, 0.0);
            EXPECT_LE(site.takenProbability, 1.0);
            break;
          case SiteKind::Loop:
            EXPECT_GE(site.meanTrips, 2.0);
            EXPECT_LE(site.meanTrips, 128.0);
            break;
          case SiteKind::Correlated:
            EXPECT_NE(site.historyMask, 0u);
            EXPECT_GE(site.noise, 0.0);
            EXPECT_LT(site.noise, 0.5);
            break;
          case SiteKind::Pattern:
            EXPECT_GE(site.patternLength, 2);
            EXPECT_LE(site.patternLength, 16);
            break;
        }
    }
}

TEST(ProgramBuilder, TinyBudgetStillValid)
{
    ProgramParams params;
    params.staticBranchTarget = 1;
    params.sitesPerProcedure = 4;
    const Program program = buildProgram(params);
    EXPECT_GE(program.numSites(), 1u);
    EXPECT_GE(program.procedures.size(), 2u);
}

} // namespace
} // namespace bpred
