/**
 * @file
 * Unit tests for the PAg local two-level predictor.
 */

#include <gtest/gtest.h>

#include "predictors/local_two_level.hh"

namespace bpred
{
namespace
{

TEST(LocalTwoLevel, LearnsShortLocalPattern)
{
    // Period-3 pattern T T N: local history disambiguates perfectly.
    LocalTwoLevelPredictor predictor(8, 8);
    const Addr pc = 0x40;
    const bool pattern[3] = {true, true, false};

    int wrong = 0;
    for (int i = 0; i < 600; ++i) {
        const bool outcome = pattern[i % 3];
        if (i >= 300) {
            wrong += predictor.predict(pc) != outcome;
        } else {
            predictor.predict(pc);
        }
        predictor.update(pc, outcome);
    }
    EXPECT_EQ(wrong, 0);
}

TEST(LocalTwoLevel, IndependentOfOtherBranches)
{
    LocalTwoLevelPredictor predictor(8, 6);
    const Addr a = 0x100;
    const Addr noise = 0x104;

    // Train `a` strongly taken while peppering the stream with a
    // different branch; PAg's first level keeps their local
    // histories separate (distinct BHT entries).
    for (int i = 0; i < 50; ++i) {
        predictor.update(a, true);
        predictor.update(noise, i % 2 == 0);
    }
    EXPECT_TRUE(predictor.predict(a));
}

TEST(LocalTwoLevel, StorageBitsAccountsBothLevels)
{
    LocalTwoLevelPredictor predictor(10, 8, 2);
    // BHT: 2^10 entries x 8 bits; PHT: 2^8 entries x 2 bits.
    EXPECT_EQ(predictor.storageBits(), 1024u * 8 + 256u * 2);
}

TEST(LocalTwoLevel, Name)
{
    LocalTwoLevelPredictor predictor(10, 8);
    EXPECT_EQ(predictor.name(), "pag-1Kx8");
}

TEST(LocalTwoLevel, ResetForgets)
{
    LocalTwoLevelPredictor predictor(6, 4);
    for (int i = 0; i < 20; ++i) {
        predictor.update(0x10, true);
    }
    EXPECT_TRUE(predictor.predict(0x10));
    predictor.reset();
    EXPECT_FALSE(predictor.predict(0x10));
}

TEST(LocalTwoLevel, BhtAliasingSharesHistory)
{
    LocalTwoLevelPredictor predictor(4, 8); // 16-entry BHT
    const Addr a = 0x100;
    const Addr b = a + (16 << 2); // same BHT entry
    for (int i = 0; i < 30; ++i) {
        predictor.update(a, true);
    }
    // b inherits a's saturated local history and thus its pattern
    // table entry.
    EXPECT_EQ(predictor.predict(b), predictor.predict(a));
}

} // namespace
} // namespace bpred
