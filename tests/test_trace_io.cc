/**
 * @file
 * Unit tests for trace serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>

#include "support/logging.hh"
#include "support/rng.hh"
#include "trace/bpt_format.hh"
#include "trace/trace_io.hh"

namespace bpred
{
namespace
{

Trace
makeSampleTrace()
{
    Trace trace("sample");
    Rng rng(99);
    Addr pc = 0x40'0000;
    for (int i = 0; i < 500; ++i) {
        pc += 4 * (1 + rng.uniformInt(100));
        if (rng.chance(0.25)) {
            trace.appendUnconditional(pc);
        } else {
            trace.appendConditional(pc, rng.chance(0.6));
        }
        // Occasional backward jumps exercise negative deltas.
        if (rng.chance(0.2)) {
            pc -= 4 * rng.uniformInt(200);
        }
    }
    return trace;
}

TEST(BinaryTraceIO, RoundTrip)
{
    const Trace original = makeSampleTrace();
    std::stringstream buffer;
    writeBinaryTrace(buffer, original);
    const Trace loaded = readBinaryTrace(buffer);

    EXPECT_EQ(loaded.name(), original.name());
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        ASSERT_EQ(loaded[i], original[i]) << "record " << i;
    }
}

// Extreme PC jumps force deltas that overflow an i64: pcs in the
// top half of the address space, and swings between the two ends.
// The delta codec must round-trip them through u64 wrap-around
// arithmetic — computing these deltas in i64 is signed-overflow UB
// (the bug this test regression-guards, caught by UBSan).
TEST(BinaryTraceIO, ExtremePcDeltasRoundTrip)
{
    Trace original("extremes");
    original.appendConditional(0, true);
    original.appendConditional(~Addr(0) & ~Addr(3), false);
    original.appendConditional(4, true);
    original.appendConditional(Addr(1) << 63, false);
    original.appendUnconditional((Addr(1) << 63) - 4);
    original.appendConditional(0x7fff'ffff'ffff'fffc, true);

    std::stringstream buffer;
    writeBinaryTrace(buffer, original);
    const Trace loaded = readBinaryTrace(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        ASSERT_EQ(loaded[i], original[i]) << "record " << i;
    }
}

// The same property at the codec level, against fixed wire bytes:
// a delta of exactly -2^63 (zig-zag 0xFFFF...FF) applied to pc 0
// must wrap to 2^63, not trap.
TEST(BinaryTraceIO, ZigZagExtremesDecode)
{
    EXPECT_EQ(bpt::zigZagEncode(std::numeric_limits<i64>::min()),
              ~u64(0));
    EXPECT_EQ(bpt::zigZagDecode(~u64(0)),
              std::numeric_limits<i64>::min());
    EXPECT_EQ(bpt::zigZagEncode(std::numeric_limits<i64>::max()),
              ~u64(0) - 1);
    EXPECT_EQ(bpt::zigZagDecode(~u64(0) - 1),
              std::numeric_limits<i64>::max());

    std::stringstream buffer;
    Addr write_pc = 0;
    bpt::writeRecord(buffer, {Addr(1) << 63, true, true}, write_pc);
    Addr read_pc = 0;
    const BranchRecord decoded = bpt::readRecord(buffer, read_pc);
    EXPECT_EQ(decoded.pc, Addr(1) << 63);
    EXPECT_EQ(read_pc, Addr(1) << 63);
}

TEST(BinaryTraceIO, EmptyTraceRoundTrip)
{
    Trace empty("nothing");
    std::stringstream buffer;
    writeBinaryTrace(buffer, empty);
    const Trace loaded = readBinaryTrace(buffer);
    EXPECT_EQ(loaded.name(), "nothing");
    EXPECT_TRUE(loaded.empty());
}

TEST(BinaryTraceIO, RejectsBadMagic)
{
    std::stringstream buffer("NOPE....");
    EXPECT_THROW(readBinaryTrace(buffer), FatalError);
}

TEST(BinaryTraceIO, RejectsTruncated)
{
    const Trace original = makeSampleTrace();
    std::stringstream buffer;
    writeBinaryTrace(buffer, original);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream truncated(bytes);
    EXPECT_THROW(readBinaryTrace(truncated), FatalError);
}

TEST(BinaryTraceIO, RejectsOverdeclaredRecordCount)
{
    // Regression: a corrupt header declaring far more records than
    // the stream holds must be rejected up front — before the
    // declared count sizes an allocation — not after a giant
    // reserve() followed by a truncation error mid-read.
    std::stringstream buffer;
    bpt::writeHeader(buffer, "bomb", u64(1) << 40);
    buffer << "xx"; // two bytes of actual payload
    EXPECT_THROW(readBinaryTrace(buffer), FatalError);
}

TEST(BinaryTraceIO, RejectsCountJustOverPayload)
{
    // Tight bound: each record needs at least two bytes, so a
    // header declaring count > remaining/2 can never be satisfied.
    std::stringstream buffer;
    bpt::writeHeader(buffer, "tight", 3);
    buffer << "xxxx"; // room for at most two records
    EXPECT_THROW(readBinaryTrace(buffer), FatalError);
}

TEST(BinaryTraceIO, AcceptsExactlyFittingCount)
{
    Trace trace("fits");
    trace.appendConditional(0x1000, true);
    trace.appendConditional(0x1004, false);
    std::stringstream buffer;
    writeBinaryTrace(buffer, trace);
    const Trace loaded = readBinaryTrace(buffer);
    EXPECT_EQ(loaded.size(), 2u);
}

TEST(BinaryTraceIO, FileRoundTrip)
{
    const Trace original = makeSampleTrace();
    const std::string path =
        (std::filesystem::temp_directory_path() / "bpred_test.bpt")
            .string();
    saveBinaryTrace(path, original);
    const Trace loaded = loadBinaryTrace(path);
    EXPECT_EQ(loaded.size(), original.size());
    std::remove(path.c_str());
}

TEST(BinaryTraceIO, MissingFileThrows)
{
    EXPECT_THROW(loadBinaryTrace("/nonexistent/dir/trace.bpt"),
                 FatalError);
}

TEST(TextTraceIO, RoundTrip)
{
    const Trace original = makeSampleTrace();
    std::stringstream buffer;
    writeTextTrace(buffer, original);
    const Trace loaded = readTextTrace(buffer, original.name());
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        ASSERT_EQ(loaded[i], original[i]) << "record " << i;
    }
}

TEST(TextTraceIO, ParsesHandwritten)
{
    std::stringstream input(
        "# a comment line\n"
        "C 1000 T\n"
        "\n"
        "C 1004 N # trailing comment\n"
        "U 1008 T\n");
    const Trace trace = readTextTrace(input, "hand");
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0].pc, 0x1000u);
    EXPECT_TRUE(trace[0].taken);
    EXPECT_FALSE(trace[1].taken);
    EXPECT_FALSE(trace[2].conditional);
}

TEST(TextTraceIO, RejectsBadKind)
{
    std::stringstream input("X 1000 T\n");
    EXPECT_THROW(readTextTrace(input), FatalError);
}

TEST(TextTraceIO, RejectsBadDirection)
{
    std::stringstream input("C 1000 Q\n");
    EXPECT_THROW(readTextTrace(input), FatalError);
}

TEST(TextTraceIO, RejectsNotTakenUnconditional)
{
    std::stringstream input("U 1000 N\n");
    EXPECT_THROW(readTextTrace(input), FatalError);
}

TEST(TextTraceIO, RejectsMalformedLine)
{
    std::stringstream input("C 1000\n");
    EXPECT_THROW(readTextTrace(input), FatalError);
}

TEST(TextTraceIO, RejectsBadPc)
{
    std::stringstream input("C zz T\n");
    EXPECT_THROW(readTextTrace(input), FatalError);
}

} // namespace
} // namespace bpred
