/**
 * @file
 * Unit tests for the first-order pipeline cost model.
 */

#include <gtest/gtest.h>

#include "sim/pipeline_model.hh"
#include "support/logging.hh"

namespace bpred
{
namespace
{

TEST(PipelineModel, PerfectPredictionIsBaseCpi)
{
    const PipelineEstimate estimate = estimatePipeline(0.0);
    EXPECT_DOUBLE_EQ(estimate.cpi, PipelineParams{}.baseCpi);
    EXPECT_DOUBLE_EQ(estimate.stallFraction, 0.0);
}

TEST(PipelineModel, KnownValues)
{
    PipelineParams params;
    params.baseCpi = 1.0;
    params.branchDensity = 0.2;
    params.mispredictPenalty = 10.0;
    // m = 5%: stall CPI = 0.2 * 0.05 * 10 = 0.1.
    const PipelineEstimate estimate = estimatePipeline(0.05, params);
    EXPECT_NEAR(estimate.cpi, 1.1, 1e-12);
    EXPECT_NEAR(estimate.stallFraction, 0.1 / 1.1, 1e-12);
}

TEST(PipelineModel, MonotoneInMisprediction)
{
    double previous = -1.0;
    for (double m = 0.0; m <= 1.0; m += 0.1) {
        const PipelineEstimate estimate = estimatePipeline(m);
        EXPECT_GT(estimate.cpi, previous);
        previous = estimate.cpi;
    }
}

TEST(PipelineModel, SpeedupSymmetry)
{
    const PipelineEstimate fast = estimatePipeline(0.02);
    const PipelineEstimate slow = estimatePipeline(0.10);
    EXPECT_GT(fast.speedupOver(slow), 1.0);
    EXPECT_LT(slow.speedupOver(fast), 1.0);
    EXPECT_NEAR(fast.speedupOver(slow) * slow.speedupOver(fast),
                1.0, 1e-12);
}

TEST(PipelineModel, SimResultOverload)
{
    SimResult result;
    result.conditionals = 1000;
    result.mispredicts = 50;
    const PipelineEstimate via_result = estimatePipeline(result);
    const PipelineEstimate via_ratio = estimatePipeline(0.05);
    EXPECT_DOUBLE_EQ(via_result.cpi, via_ratio.cpi);
}

TEST(PipelineModel, DeeperPipelinesAmplifyGains)
{
    PipelineParams shallow;
    shallow.mispredictPenalty = 5.0;
    PipelineParams deep;
    deep.mispredictPenalty = 20.0;

    const double speedup_shallow =
        estimatePipeline(0.04, shallow)
            .speedupOver(estimatePipeline(0.08, shallow));
    const double speedup_deep =
        estimatePipeline(0.04, deep).speedupOver(
            estimatePipeline(0.08, deep));
    // Halving misprediction is worth more on the deeper machine —
    // the paper's motivating observation.
    EXPECT_GT(speedup_deep, speedup_shallow);
}

TEST(PipelineModel, HalfStallMarker)
{
    PipelineParams params;
    params.baseCpi = 0.6;
    params.branchDensity = 0.15;
    params.mispredictPenalty = 20.0;
    const double marker = halfStallMispredictRatio(params);
    EXPECT_NEAR(marker, 0.6 / 3.0, 1e-12);
    const PipelineEstimate at_marker =
        estimatePipeline(marker, params);
    EXPECT_NEAR(at_marker.stallFraction, 0.5, 1e-12);
}

TEST(PipelineModel, HalfStallClampsAtOne)
{
    PipelineParams params;
    params.baseCpi = 10.0;
    params.branchDensity = 0.1;
    params.mispredictPenalty = 5.0;
    EXPECT_DOUBLE_EQ(halfStallMispredictRatio(params), 1.0);
}

TEST(PipelineModel, RejectsBadInputs)
{
    EXPECT_THROW(estimatePipeline(-0.1), FatalError);
    EXPECT_THROW(estimatePipeline(1.1), FatalError);
    PipelineParams bad;
    bad.baseCpi = 0.0;
    EXPECT_THROW(estimatePipeline(0.1, bad), FatalError);
    PipelineParams degenerate;
    degenerate.branchDensity = 0.0;
    EXPECT_THROW(halfStallMispredictRatio(degenerate), FatalError);
}

} // namespace
} // namespace bpred
