/**
 * @file
 * Unit tests for the agree predictor.
 */

#include <gtest/gtest.h>

#include "predictors/agree.hh"
#include "predictors/gshare.hh"
#include "sim/driver.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

TEST(Agree, ColdPredictsTaken)
{
    AgreePredictor predictor(8, 4, 8);
    // Unset bias defaults taken; agree counter initialized to
    // weakly-agree.
    EXPECT_TRUE(predictor.predict(0x100));
}

TEST(Agree, BiasSetOnFirstEncounter)
{
    AgreePredictor predictor(8, 4, 8);
    predictor.update(0x100, false); // bias becomes not-taken
    // Weakly-agree + not-taken bias -> predicts not-taken.
    EXPECT_FALSE(predictor.predict(0x100));
}

TEST(Agree, FollowsBiasOnStronglyBiasedBranch)
{
    AgreePredictor predictor(8, 4, 8);
    const Addr pc = 0x200;
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        const bool outcome = i % 20 != 19; // 95% taken
        if (i >= 100) {
            wrong += predictor.predict(pc) != outcome;
        }
        predictor.update(pc, outcome);
    }
    // Near the bias floor: ~5% misprediction on 300 scored.
    EXPECT_LT(wrong, 40);
}

TEST(Agree, OppositeBiasBranchesShareCounterHarmlessly)
{
    // The design goal: an always-taken and an always-not-taken
    // branch forced onto the SAME agree counter both want "agree",
    // so neither disturbs the other. A plain gshare counter would
    // ping-pong.
    AgreePredictor agree(1, 0, 8);   // a 2-entry agree table
    GSharePredictor gshare(1, 0);    // a 2-entry direction table
    const Addr a = 0x100;
    const Addr b = a + 8; // same entry as `a` in a 1-bit index

    int agree_wrong = 0;
    int gshare_wrong = 0;
    for (int i = 0; i < 200; ++i) {
        const bool score = i >= 50;
        agree_wrong += score && agree.predict(a) != true;
        agree.update(a, true);
        gshare_wrong += score && gshare.predict(a) != true;
        gshare.update(a, true);

        agree_wrong += score && agree.predict(b) != false;
        agree.update(b, false);
        gshare_wrong += score && gshare.predict(b) != false;
        gshare.update(b, false);
    }
    EXPECT_EQ(agree_wrong, 0);
    // The oscillating shared counter settles into a state that is
    // always wrong for one of the two branches: 150 of 300 scored.
    EXPECT_GE(gshare_wrong, 140);
}

TEST(Agree, NameStorageReset)
{
    AgreePredictor predictor(12, 10, 10);
    EXPECT_EQ(predictor.name(), "agree-4K-h10");
    EXPECT_EQ(predictor.storageBits(), 4096u * 2 + 1024u);
    predictor.update(0x100, false);
    EXPECT_FALSE(predictor.predict(0x100));
    predictor.reset();
    EXPECT_TRUE(predictor.predict(0x100));
}

TEST(Agree, BiasTableAliasingDegradesGracefully)
{
    // Two branches sharing a bias entry (tiny bias table): the
    // second to arrive inherits the first's bias; the agree
    // counters must then learn "disagree" for it.
    AgreePredictor predictor(10, 4, 1);
    const Addr a = 0x100;
    const Addr b = a + (2 << 2); // same bias entry (1-bit table)
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        const bool score = i >= 200;
        wrong += score && predictor.predict(a) != true;
        predictor.update(a, true);
        wrong += score && predictor.predict(b) != false;
        predictor.update(b, false);
    }
    // Learnable despite the shared bias bit.
    EXPECT_LT(wrong, 40);
}

TEST(Agree, BeatsGShareUnderAliasingWithGoodBiases)
{
    // The agree predictor's premise assumes reasonably correct
    // bias bits (profile- or first-encounter-set). Visit every
    // site once in its dominant direction first (a warm/profiled
    // start), then run an aliasing-heavy stream: opposing-bias
    // sites crammed onto a small counter table. gshare's counters
    // fight; agree's counters all pull toward "agree".
    Rng rng(9);
    Trace trace("mixed");
    for (u64 site = 0; site < 512; ++site) {
        const Addr pc = 0x1000 + 4 * site;
        trace.appendConditional(pc, (pc >> 2) % 2 == 0);
    }
    for (int i = 0; i < 30000; ++i) {
        const Addr pc = 0x1000 + 4 * rng.uniformInt(512);
        const bool dominant = (pc >> 2) % 2 == 0;
        trace.appendConditional(pc,
                                rng.chance(dominant ? 0.97 : 0.03));
    }
    AgreePredictor agree(8, 6, 10);
    GSharePredictor gshare(8, 6);
    const double agree_rate =
        simulate(agree, trace).mispredictRatio();
    const double gshare_rate =
        simulate(gshare, trace).mispredictRatio();
    EXPECT_LT(agree_rate, gshare_rate);
}

} // namespace
} // namespace bpred
