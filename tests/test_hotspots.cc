/**
 * @file
 * Unit tests for conflict hotspot analysis.
 */

#include <gtest/gtest.h>

#include "aliasing/hotspots.hh"
#include "predictors/info_vector.hh"

namespace bpred
{
namespace
{

TEST(Hotspots, EmptyOnConflictFreeTrace)
{
    Trace trace("clean");
    for (int i = 0; i < 100; ++i) {
        trace.appendConditional(0x100, true);
        trace.appendConditional(0x104, true);
    }
    IndexFunction function{IndexKind::Address, 8, 0};
    EXPECT_TRUE(findConflictHotspots(trace, function, 10).empty());
}

TEST(Hotspots, FindsPingPongPair)
{
    // Two addresses sharing one entry of a 2-entry table.
    Trace trace("fight");
    const Addr a = 0x1000;
    const Addr b = a + 8;
    for (int i = 0; i < 60; ++i) {
        trace.appendConditional(a, true);
        trace.appendConditional(b, false);
    }
    // Give `a` a few extra visits so it is the clear top user.
    for (int i = 0; i < 10; ++i) {
        trace.appendConditional(a, true);
    }

    IndexFunction function{IndexKind::Address, 1, 0};
    const auto hotspots = findConflictHotspots(trace, function, 10);
    ASSERT_EQ(hotspots.size(), 1u);
    const ConflictHotspot &hotspot = hotspots.front();
    EXPECT_EQ(hotspot.index, function(a, 0));
    EXPECT_EQ(hotspot.distinctUsers, 2u);
    // Ping-pong: nearly every access conflicts.
    EXPECT_GE(hotspot.conflicts, 118u);
    EXPECT_EQ(hotspot.topUser, packInfoVector(a, 0, 0));
    EXPECT_EQ(hotspot.topUserCount, 70u);
    EXPECT_EQ(hotspot.secondUser, packInfoVector(b, 0, 0));
    EXPECT_EQ(hotspot.secondUserCount, 60u);
}

TEST(Hotspots, SortedByConflictCount)
{
    // Entry 0: heavy ping-pong; entry 1: light ping-pong.
    Trace trace("two");
    for (int i = 0; i < 50; ++i) {
        trace.appendConditional(0x1000, true);  // entry 0
        trace.appendConditional(0x1008, false); // entry 0
    }
    for (int i = 0; i < 5; ++i) {
        trace.appendConditional(0x1004, true);  // entry 1
        trace.appendConditional(0x100c, false); // entry 1
    }
    IndexFunction function{IndexKind::Address, 1, 0};
    const auto hotspots = findConflictHotspots(trace, function, 10);
    ASSERT_EQ(hotspots.size(), 2u);
    EXPECT_GT(hotspots[0].conflicts, hotspots[1].conflicts);
}

TEST(Hotspots, TopKLimitsOutput)
{
    // Many lightly-conflicting entries.
    Trace trace("many");
    for (int round = 0; round < 4; ++round) {
        for (Addr site = 0; site < 32; ++site) {
            trace.appendConditional(0x1000 + 4 * site, true);
            trace.appendConditional(0x1000 + 4 * (site + 32),
                                    false);
        }
    }
    IndexFunction function{IndexKind::Address, 5, 0};
    const auto hotspots = findConflictHotspots(trace, function, 7);
    EXPECT_EQ(hotspots.size(), 7u);
}

TEST(Hotspots, HistoryBitsSeparateUsers)
{
    // One address under alternating history: with h=1 the two
    // contexts are distinct users of (possibly) different entries.
    Trace trace("hist");
    bool outcome = false;
    for (int i = 0; i < 100; ++i) {
        outcome = !outcome;
        trace.appendConditional(0x100, outcome);
    }
    IndexFunction function{IndexKind::GShare, 1, 1};
    const auto hotspots = findConflictHotspots(trace, function, 4);
    // The two (addr, hist) identities hash to 2 distinct entries
    // out of 2, or collide in one; either way the analysis runs
    // and reports consistent counts.
    u64 total_users = 0;
    for (const auto &hotspot : hotspots) {
        total_users += hotspot.distinctUsers;
    }
    EXPECT_LE(total_users, 2u);
}

} // namespace
} // namespace bpred
