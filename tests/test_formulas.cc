/**
 * @file
 * Unit and property tests for the analytical model formulas.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "aliasing/stack_distance.hh"
#include "model/formulas.hh"
#include "support/logging.hh"

namespace bpred
{
namespace
{

constexpr u64 inf = StackDistanceTracker::infiniteDistance;

TEST(AliasingProbability, ZeroDistanceIsZero)
{
    EXPECT_DOUBLE_EQ(aliasingProbability(1024, 0), 0.0);
}

TEST(AliasingProbability, InfiniteDistanceIsOne)
{
    EXPECT_DOUBLE_EQ(aliasingProbability(1024, inf), 1.0);
}

TEST(AliasingProbability, Formula1Exact)
{
    // p = 1 - (1 - 1/N)^D
    const double expected = 1.0 - std::pow(1.0 - 1.0 / 64.0, 10.0);
    EXPECT_NEAR(aliasingProbability(64, 10), expected, 1e-14);
}

TEST(AliasingProbability, MonotonicInDistance)
{
    double previous = -1.0;
    for (u64 d = 0; d < 1000; d += 37) {
        const double p = aliasingProbability(256, d);
        EXPECT_GT(p, previous);
        previous = p;
    }
}

TEST(AliasingProbability, MonotonicInTableSizeReversed)
{
    // Bigger tables alias less at a given distance.
    for (unsigned log_n = 4; log_n < 16; ++log_n) {
        EXPECT_GT(aliasingProbability(u64(1) << log_n, 100),
                  aliasingProbability(u64(1) << (log_n + 1), 100));
    }
}

TEST(AliasingProbability, SingleEntryTable)
{
    EXPECT_DOUBLE_EQ(aliasingProbability(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(aliasingProbability(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(aliasingProbability(1, 100), 1.0);
}

TEST(AliasingProbabilityApprox, CloseToExactForLargeN)
{
    for (u64 d : {u64(10), u64(100), u64(1000), u64(10000)}) {
        const double exact = aliasingProbability(16384, d);
        const double approx = aliasingProbabilityApprox(16384, d);
        EXPECT_NEAR(approx, exact, 1e-4) << "distance " << d;
    }
    EXPECT_DOUBLE_EQ(aliasingProbabilityApprox(1024, inf), 1.0);
}

TEST(DestructiveDm, Formula4)
{
    // Pdm = 2 b (1-b) p
    EXPECT_DOUBLE_EQ(destructiveProbabilityDirectMapped(0.4, 0.5),
                     0.5 * 0.4);
    EXPECT_DOUBLE_EQ(destructiveProbabilityDirectMapped(1.0, 0.3),
                     2 * 0.3 * 0.7);
    EXPECT_DOUBLE_EQ(destructiveProbabilityDirectMapped(0.0, 0.5),
                     0.0);
}

TEST(DestructiveSkewed3, WorstCaseBiasHalf)
{
    // Paper: for b = 1/2, Psk = (3/4) p^2 (1-p) + (1/2) p^3.
    for (double p : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
        const double expected =
            0.75 * p * p * (1.0 - p) + 0.5 * p * p * p;
        EXPECT_NEAR(destructiveProbabilitySkewed3(p, 0.5), expected,
                    1e-14)
            << "p = " << p;
    }
}

TEST(DestructiveSkewed3, ZeroAtExtremeBias)
{
    // With b = 0 or 1, every substream predicts the same direction
    // and aliasing cannot change a prediction.
    for (double p : {0.1, 0.5, 0.9}) {
        EXPECT_NEAR(destructiveProbabilitySkewed3(p, 0.0), 0.0,
                    1e-14);
        EXPECT_NEAR(destructiveProbabilitySkewed3(p, 1.0), 0.0,
                    1e-14);
    }
}

TEST(DestructiveSkewed3, CubicGrowthBeatsLinearAtSmallP)
{
    // The paper's core claim: polynomial vs linear growth.
    for (double p : {0.01, 0.05, 0.1, 0.2}) {
        EXPECT_LT(destructiveProbabilitySkewed3(p, 0.5),
                  destructiveProbabilityDirectMapped(p, 0.5))
            << "p = " << p;
    }
    // Near p = 1 the skewed structure is WORSE (redundancy costs).
    EXPECT_GT(destructiveProbabilitySkewed3(1.0, 0.5),
              destructiveProbabilityDirectMapped(1.0, 0.5) - 1e-12);
}

TEST(DestructiveSkewedGeneral, MatchesClosedForms)
{
    for (double p : {0.0, 0.05, 0.3, 0.6, 1.0}) {
        for (double b : {0.2, 0.5, 0.8}) {
            EXPECT_NEAR(destructiveProbabilitySkewed(3, p, b),
                        destructiveProbabilitySkewed3(p, b), 1e-12);
            EXPECT_NEAR(destructiveProbabilitySkewed(1, p, b),
                        destructiveProbabilityDirectMapped(p, b),
                        1e-12);
        }
    }
}

TEST(DestructiveSkewedGeneral, FiveBanksFlatterAtSmallP)
{
    // More banks -> higher-degree polynomial -> smaller overhead at
    // small p.
    for (double p : {0.01, 0.05, 0.1}) {
        EXPECT_LT(destructiveProbabilitySkewed(5, p, 0.5),
                  destructiveProbabilitySkewed(3, p, 0.5));
    }
}

TEST(DestructiveSkewedGeneral, RejectsEvenBanks)
{
    EXPECT_THROW(destructiveProbabilitySkewed(2, 0.1, 0.5),
                 FatalError);
    EXPECT_THROW(destructiveProbabilitySkewed(0, 0.1, 0.5),
                 FatalError);
}

TEST(DestructiveSkewedGeneral, ProbabilityBounds)
{
    for (unsigned banks : {1u, 3u, 5u}) {
        for (double p = 0.0; p <= 1.0; p += 0.1) {
            for (double b = 0.0; b <= 1.0; b += 0.25) {
                const double value =
                    destructiveProbabilitySkewed(banks, p, b);
                EXPECT_GE(value, -1e-12);
                EXPECT_LE(value, 1.0 + 1e-12);
            }
        }
    }
}

TEST(CrossoverDistance, NearTenthOfTableSize)
{
    // §5.2: Psk < Pdm while D < ~N/10 for a 3x(N/3) vs N-entry
    // comparison.
    for (u64 n : {u64(3) << 10, u64(3) << 12, u64(3) << 14}) {
        const u64 crossover = skewedCrossoverDistance(n);
        EXPECT_GT(crossover, n / 30);
        EXPECT_LT(crossover, n / 3);
    }
}

TEST(CrossoverDistance, BelowCrossoverSkewWins)
{
    const u64 n = 3 << 12;
    const u64 crossover = skewedCrossoverDistance(n);
    const u64 bank = n / 3;

    const u64 d_low = crossover / 2;
    EXPECT_LT(destructiveProbabilitySkewed3(
                  aliasingProbability(bank, d_low), 0.5),
              destructiveProbabilityDirectMapped(
                  aliasingProbability(n, d_low), 0.5));

    const u64 d_high = crossover * 2;
    EXPECT_GT(destructiveProbabilitySkewed3(
                  aliasingProbability(bank, d_high), 0.5),
              destructiveProbabilityDirectMapped(
                  aliasingProbability(n, d_high), 0.5));
}

} // namespace
} // namespace bpred
