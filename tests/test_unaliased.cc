/**
 * @file
 * Unit tests for the infinite unaliased predictor (Table 2
 * machinery).
 */

#include <gtest/gtest.h>

#include "predictors/unaliased.hh"

namespace bpred
{
namespace
{

TEST(Unaliased, FirstEncounterNotCharged)
{
    UnaliasedPredictor predictor(4, 2);
    predictor.predict(0x100);
    predictor.update(0x100, false); // cold: always-taken guess wrong
    // Compulsory reference recorded, but no misprediction charged.
    EXPECT_EQ(predictor.dynamicBranches(), 1u);
    EXPECT_DOUBLE_EQ(predictor.mispredictionRatio(), 0.0);
    EXPECT_DOUBLE_EQ(predictor.compulsoryAliasingRatio(), 1.0);
}

TEST(Unaliased, LearnsPerSubstream)
{
    UnaliasedPredictor predictor(2, 2);
    const Addr pc = 0x100;
    // Build two distinct history contexts for pc by preceding it
    // with different outcomes of a setup branch.
    const Addr setup = 0x200;

    // Pattern: setup T -> pc T ; setup N -> pc N, repeatedly.
    for (int i = 0; i < 50; ++i) {
        const bool phase = i % 2 == 0;
        predictor.predict(setup);
        predictor.update(setup, phase);
        predictor.predict(pc);
        predictor.update(pc, phase);
    }
    // After warm-up no mispredictions should accumulate further.
    const u64 before = predictor.dynamicBranches();
    const double ratio_before = predictor.mispredictionRatio();
    for (int i = 0; i < 50; ++i) {
        const bool phase = i % 2 == 0;
        predictor.predict(setup);
        predictor.update(setup, phase);
        predictor.predict(pc);
        predictor.update(pc, phase);
    }
    EXPECT_EQ(predictor.dynamicBranches(), before + 100);
    EXPECT_LE(predictor.mispredictionRatio(), ratio_before + 1e-12);
}

TEST(Unaliased, SubstreamRatioCountsHistories)
{
    UnaliasedPredictor predictor(2, 2);
    const Addr pc = 0x100;
    // Drive pc under all four 2-bit histories.
    predictor.update(pc, true);  // hist 00 -> new pair
    predictor.update(pc, true);  // hist 01 -> new pair
    predictor.update(pc, true);  // hist 11 -> new pair
    predictor.update(pc, false); // hist 11 (again) -> existing
    predictor.update(pc, true);  // hist 10 -> new pair
    EXPECT_EQ(predictor.numStaticBranches(), 1u);
    EXPECT_EQ(predictor.numSubstreams(), 4u);
    EXPECT_DOUBLE_EQ(predictor.substreamRatio(), 4.0);
}

TEST(Unaliased, ZeroHistoryDegeneratesToPerAddress)
{
    UnaliasedPredictor predictor(0, 2);
    predictor.update(0x100, true);
    predictor.update(0x100, false);
    predictor.update(0x104, true);
    EXPECT_EQ(predictor.numSubstreams(), 2u);
    EXPECT_DOUBLE_EQ(predictor.substreamRatio(), 1.0);
}

TEST(Unaliased, OneBitWorseThanTwoBitOnLoops)
{
    // 9-of-10 loop pattern under a history register: because the
    // history distinguishes iterations, both predictors do well,
    // so use zero history to expose the counter difference.
    UnaliasedPredictor one_bit(0, 1);
    UnaliasedPredictor two_bit(0, 2);
    const Addr pc = 0x40;
    for (int i = 0; i < 1000; ++i) {
        const bool outcome = i % 10 != 9;
        one_bit.predict(pc);
        one_bit.update(pc, outcome);
        two_bit.predict(pc);
        two_bit.update(pc, outcome);
    }
    EXPECT_GT(one_bit.mispredictionRatio(),
              two_bit.mispredictionRatio());
}

TEST(Unaliased, CompulsoryRatioFallsOverTime)
{
    UnaliasedPredictor predictor(4, 2);
    const Addr pc = 0x80;
    for (int i = 0; i < 1000; ++i) {
        predictor.predict(pc);
        predictor.update(pc, true);
    }
    // One address, all-taken history: at most a handful of distinct
    // pairs; compulsory ratio tends to ~pairs/1000.
    EXPECT_LT(predictor.compulsoryAliasingRatio(), 0.02);
}

TEST(Unaliased, StorageGrowsWithPairs)
{
    UnaliasedPredictor predictor(4, 2);
    EXPECT_EQ(predictor.storageBits(), 0u);
    predictor.update(0x100, true);
    predictor.update(0x104, true);
    EXPECT_EQ(predictor.storageBits(),
              predictor.numSubstreams() * 2);
}

TEST(Unaliased, ResetClearsEverything)
{
    UnaliasedPredictor predictor(4, 2);
    predictor.update(0x100, true);
    predictor.reset();
    EXPECT_EQ(predictor.dynamicBranches(), 0u);
    EXPECT_EQ(predictor.numSubstreams(), 0u);
    EXPECT_EQ(predictor.numStaticBranches(), 0u);
    EXPECT_DOUBLE_EQ(predictor.mispredictionRatio(), 0.0);
}

TEST(Unaliased, NameEncodesConfig)
{
    UnaliasedPredictor predictor(12, 1);
    EXPECT_EQ(predictor.name(), "unaliased-h12-1bit");
}

} // namespace
} // namespace bpred
