/**
 * @file
 * Unit tests for multi-process workload composition.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "support/logging.hh"
#include "workloads/process_mix.hh"
#include "workloads/program_builder.hh"

namespace bpred
{
namespace
{

WorkloadParams
smallWorkload(u64 seed = 1)
{
    WorkloadParams params;
    params.name = "mix-test";
    params.seed = seed;
    params.dynamicConditionalTarget = 30000;
    params.user.staticBranchTarget = 400;
    params.kernel.staticBranchTarget = 120;
    params.kernelShare = 0.25;
    params.userQuantumMean = 2000;
    return params;
}

TEST(ProcessMix, HitsDynamicTarget)
{
    const Trace trace = generateWorkload(smallWorkload());
    const TraceStats stats = computeTraceStats(trace);
    EXPECT_EQ(stats.dynamicConditional, 30000u);
    EXPECT_EQ(trace.name(), "mix-test");
}

TEST(ProcessMix, Deterministic)
{
    const Trace a = generateWorkload(smallWorkload(7));
    const Trace b = generateWorkload(smallWorkload(7));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "record " << i;
    }
}

TEST(ProcessMix, SeedChangesStream)
{
    const Trace a = generateWorkload(smallWorkload(1));
    const Trace b = generateWorkload(smallWorkload(2));
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i) {
        differs = !(a[i] == b[i]);
    }
    EXPECT_TRUE(differs);
}

TEST(ProcessMix, KernelAddressesPresent)
{
    WorkloadParams params = smallWorkload();
    params.user.addressBase = 0x0040'0000;
    params.kernel.addressBase = 0x8000'0000;
    const Trace trace = generateWorkload(params);

    u64 user_branches = 0;
    u64 kernel_branches = 0;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            continue;
        }
        if (record.pc >= 0x8000'0000) {
            ++kernel_branches;
        } else {
            ++user_branches;
        }
    }
    EXPECT_GT(kernel_branches, 0u);
    EXPECT_GT(user_branches, 0u);
    // Kernel share ~25%, very loose bounds.
    const double share = static_cast<double>(kernel_branches) /
        static_cast<double>(kernel_branches + user_branches);
    EXPECT_GT(share, 0.10);
    EXPECT_LT(share, 0.45);
}

TEST(ProcessMix, ZeroKernelShareIsPureUser)
{
    WorkloadParams params = smallWorkload();
    params.kernelShare = 0.0;
    params.kernel.addressBase = 0x8000'0000;
    const Trace trace = generateWorkload(params);
    for (const BranchRecord &record : trace) {
        EXPECT_LT(record.pc, 0x8000'0000u);
    }
}

TEST(ProcessMix, InterleavingActuallySwitches)
{
    // Look for address-space switches within the stream.
    WorkloadParams params = smallWorkload();
    params.user.addressBase = 0x0040'0000;
    params.kernel.addressBase = 0x8000'0000;
    params.userQuantumMean = 500;
    const Trace trace = generateWorkload(params);

    u64 switches = 0;
    bool in_kernel = false;
    for (const BranchRecord &record : trace) {
        const bool kernel = record.pc >= 0x8000'0000;
        if (kernel != in_kernel) {
            ++switches;
            in_kernel = kernel;
        }
    }
    EXPECT_GT(switches, 20u);
}

TEST(ProcessMix, RejectsZeroTarget)
{
    WorkloadParams params = smallWorkload();
    params.dynamicConditionalTarget = 0;
    EXPECT_THROW(generateWorkload(params), FatalError);
}

TEST(RunProgramToTrace, BasicOperation)
{
    ProgramParams params;
    params.seed = 2;
    params.staticBranchTarget = 100;
    const Program program = buildProgram(params);
    const Trace trace = runProgramToTrace(program, 3, 5000, "solo");
    EXPECT_EQ(trace.name(), "solo");
    EXPECT_EQ(computeTraceStats(trace).dynamicConditional, 5000u);
}

} // namespace
} // namespace bpred
