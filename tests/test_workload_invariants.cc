/**
 * @file
 * Property tests over the workload generator's outputs: the
 * invariants the experiments rely on, checked per benchmark
 * (parameterized over all eight presets).
 */

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "trace/transform.hh"
#include "workloads/presets.hh"

namespace bpred
{
namespace
{

class WorkloadInvariants
    : public ::testing::TestWithParam<std::string>
{
  protected:
    static constexpr double testScale = 0.02; // 40k branches

    const Trace &
    trace() const
    {
        // One generation per (benchmark) parameter, cached.
        static std::map<std::string, Trace> cache;
        auto it = cache.find(GetParam());
        if (it == cache.end()) {
            it = cache
                     .emplace(GetParam(),
                              makeIbsTrace(GetParam(), testScale))
                     .first;
        }
        return it->second;
    }
};

TEST_P(WorkloadInvariants, HitsExactDynamicTarget)
{
    const TraceStats stats = computeTraceStats(trace());
    EXPECT_EQ(stats.dynamicConditional, 40000u);
}

TEST_P(WorkloadInvariants, ContainsUnconditionalBranches)
{
    const TraceStats stats = computeTraceStats(trace());
    // Calls/returns/jumps should be a sizeable minority of the
    // stream (the paper's traces include them in the history).
    const double share = static_cast<double>(
                             stats.dynamicUnconditional) /
        static_cast<double>(trace().size());
    EXPECT_GT(share, 0.05);
    EXPECT_LT(share, 0.50);
}

TEST_P(WorkloadInvariants, TakenRatioPlausible)
{
    const TraceStats stats = computeTraceStats(trace());
    EXPECT_GT(stats.takenRatio(), 0.30);
    EXPECT_LT(stats.takenRatio(), 0.80);
}

TEST_P(WorkloadInvariants, AddressesWordAligned)
{
    for (const BranchRecord &record : trace()) {
        ASSERT_EQ(record.pc % 4, 0u);
    }
}

TEST_P(WorkloadInvariants, UnconditionalAlwaysTaken)
{
    for (const BranchRecord &record : trace()) {
        if (!record.conditional) {
            ASSERT_TRUE(record.taken);
        }
    }
}

TEST_P(WorkloadInvariants, UserAndKernelAddressSpacesDisjoint)
{
    const WorkloadParams params = ibsPreset(GetParam(), testScale);
    const Trace kernel_half = filterAddressRange(
        trace(), params.kernel.addressBase, ~Addr(0));
    const Trace user_half = filterAddressRange(
        trace(), 0, params.kernel.addressBase);
    EXPECT_EQ(kernel_half.size() + user_half.size(),
              trace().size());
    if (params.kernelShare > 0.0) {
        EXPECT_GT(kernel_half.size(), 0u);
    }
    EXPECT_GT(user_half.size(), 0u);
}

TEST_P(WorkloadInvariants, ConditionalSitesReused)
{
    // Sites must repeat (dynamic/static well above 1) or no
    // predictor could learn anything.
    const TraceStats stats = computeTraceStats(trace());
    EXPECT_GT(stats.dynamicPerStatic(), 5.0);
}

TEST_P(WorkloadInvariants, RegenerationIsBitIdentical)
{
    const Trace again = makeIbsTrace(GetParam(), testScale);
    ASSERT_EQ(again.size(), trace().size());
    for (std::size_t i = 0; i < again.size(); i += 97) {
        ASSERT_EQ(again[i], trace()[i]) << "record " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadInvariants,
    ::testing::ValuesIn(ibsAllBenchmarkNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace bpred
