/**
 * @file
 * Unit and property tests for the LRU stack-distance tracker.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "aliasing/stack_distance.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

constexpr u64 inf = StackDistanceTracker::infiniteDistance;

TEST(StackDistance, FirstReferenceIsInfinite)
{
    StackDistanceTracker tracker;
    EXPECT_EQ(tracker.reference(42), inf);
    EXPECT_EQ(tracker.distinctKeys(), 1u);
}

TEST(StackDistance, ImmediateRereferenceIsZero)
{
    StackDistanceTracker tracker;
    tracker.reference(1);
    EXPECT_EQ(tracker.reference(1), 0u);
}

TEST(StackDistance, CountsDistinctIntervening)
{
    StackDistanceTracker tracker;
    tracker.reference(1);
    tracker.reference(2);
    tracker.reference(3);
    tracker.reference(2); // repeats don't add distinct keys
    EXPECT_EQ(tracker.reference(1), 2u); // {2, 3}
}

TEST(StackDistance, RepeatsDoNotInflateDistance)
{
    StackDistanceTracker tracker;
    tracker.reference(1);
    for (int i = 0; i < 10; ++i) {
        tracker.reference(2);
    }
    EXPECT_EQ(tracker.reference(1), 1u);
}

TEST(StackDistance, SequentialScanDistances)
{
    StackDistanceTracker tracker;
    for (u64 key = 0; key < 100; ++key) {
        EXPECT_EQ(tracker.reference(key), inf);
    }
    // Re-scan in the same order: every key has distance 99.
    for (u64 key = 0; key < 100; ++key) {
        EXPECT_EQ(tracker.reference(key), 99u);
    }
    EXPECT_EQ(tracker.distinctKeys(), 100u);
    EXPECT_EQ(tracker.references(), 200u);
}

TEST(StackDistance, ReverseRescanDistances)
{
    StackDistanceTracker tracker;
    for (u64 key = 0; key < 10; ++key) {
        tracker.reference(key);
    }
    // Reverse order: key 9 was just used (0), then 8 has 1
    // intervening (9), etc.
    for (u64 key = 10; key-- > 0;) {
        EXPECT_EQ(tracker.reference(key), 9 - key);
    }
}

TEST(StackDistance, Reset)
{
    StackDistanceTracker tracker;
    tracker.reference(1);
    tracker.reference(1);
    tracker.reset();
    EXPECT_EQ(tracker.references(), 0u);
    EXPECT_EQ(tracker.distinctKeys(), 0u);
    EXPECT_EQ(tracker.reference(1), inf);
}

/**
 * Property: against a brute-force reference model over random
 * streams (exercises the Fenwick growth path too).
 */
TEST(StackDistance, MatchesBruteForceModel)
{
    StackDistanceTracker tracker;
    std::vector<u64> stream;
    std::unordered_map<u64, std::size_t> last_position;
    Rng rng(31337);

    for (int i = 0; i < 6000; ++i) {
        const u64 key = rng.uniformInt(64);
        u64 expected = inf;
        const auto it = last_position.find(key);
        if (it != last_position.end()) {
            // Brute force: count distinct keys after the last use.
            std::vector<bool> seen(64, false);
            u64 distinct = 0;
            for (std::size_t j = it->second + 1; j < stream.size();
                 ++j) {
                if (!seen[stream[j]]) {
                    seen[stream[j]] = true;
                    ++distinct;
                }
            }
            expected = distinct;
        }
        ASSERT_EQ(tracker.reference(key), expected) << "step " << i;
        last_position[key] = stream.size();
        stream.push_back(key);
    }
}

/**
 * The tie to the fully-associative table: a reference hits an
 * N-entry LRU table iff its stack distance is < N.
 */
TEST(StackDistance, PredictsFaLruResidency)
{
    // Stream: A B C D A -> A's distance is 3, so A hits in
    // capacity-4 and misses in capacity-3.
    StackDistanceTracker tracker;
    tracker.reference('A');
    tracker.reference('B');
    tracker.reference('C');
    tracker.reference('D');
    EXPECT_EQ(tracker.reference('A'), 3u);
}

TEST(StackDistance, GrowthBeyondInitialTreeSize)
{
    // More references than the initial Fenwick capacity (1024),
    // exercising the tree-rebuild path.
    StackDistanceTracker tracker;
    for (u64 i = 0; i < 5000; ++i) {
        tracker.reference(i % 7);
    }
    // The loop ends after i = 4999 (key 1); key 0 was last touched
    // at i = 4998, so exactly one distinct key intervened.
    EXPECT_EQ(tracker.reference(0), 1u);
    // A full round-robin pass re-establishes distance 6 for all.
    for (u64 key = 1; key < 7; ++key) {
        tracker.reference(key);
    }
    EXPECT_EQ(tracker.reference(0), 6u);
    EXPECT_EQ(tracker.reference(1), 6u);
}

} // namespace
} // namespace bpred
