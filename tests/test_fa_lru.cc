/**
 * @file
 * Unit tests for the fully-associative LRU table.
 */

#include <gtest/gtest.h>

#include "aliasing/fa_lru_table.hh"

namespace bpred
{
namespace
{

TEST(FaLru, ColdMiss)
{
    FullyAssociativeLruTable table(4);
    EXPECT_EQ(table.access(1), nullptr);
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(table.missStat().events(), 1u);
}

TEST(FaLru, HitReturnsPayload)
{
    FullyAssociativeLruTable table(4);
    table.access(1, 9);
    u8 *payload = table.access(1);
    ASSERT_NE(payload, nullptr);
    EXPECT_EQ(*payload, 9);
}

TEST(FaLru, PayloadMutableThroughPointer)
{
    FullyAssociativeLruTable table(4);
    table.access(1, 0);
    u8 *payload = table.access(1);
    ASSERT_NE(payload, nullptr);
    *payload = 7;
    EXPECT_EQ(*table.peek(1), 7);
}

TEST(FaLru, EvictsLeastRecentlyUsed)
{
    FullyAssociativeLruTable table(3);
    table.access(1);
    table.access(2);
    table.access(3);
    table.access(1);     // 1 becomes MRU; LRU is now 2
    table.access(4);     // evicts 2
    EXPECT_NE(table.peek(1), nullptr);
    EXPECT_EQ(table.peek(2), nullptr);
    EXPECT_NE(table.peek(3), nullptr);
    EXPECT_NE(table.peek(4), nullptr);
    EXPECT_EQ(table.size(), 3u);
}

TEST(FaLru, PeekDoesNotTouch)
{
    FullyAssociativeLruTable table(2);
    table.access(1);
    table.access(2);
    table.peek(1);       // must NOT refresh 1
    table.access(3);     // evicts 1 (the true LRU)
    EXPECT_EQ(table.peek(1), nullptr);
    EXPECT_NE(table.peek(2), nullptr);
}

TEST(FaLru, SetPayload)
{
    FullyAssociativeLruTable table(2);
    table.access(5, 1);
    table.setPayload(5, 3);
    EXPECT_EQ(*table.peek(5), 3);
}

TEST(FaLru, CapacityOne)
{
    FullyAssociativeLruTable table(1);
    table.access(1);
    table.access(2);
    EXPECT_EQ(table.peek(1), nullptr);
    EXPECT_NE(table.peek(2), nullptr);
}

TEST(FaLru, MissStatTracksRatio)
{
    FullyAssociativeLruTable table(2);
    table.access(1); // miss
    table.access(1); // hit
    table.access(2); // miss
    table.access(1); // hit
    EXPECT_DOUBLE_EQ(table.missStat().ratio(), 0.5);
}

TEST(FaLru, Reset)
{
    FullyAssociativeLruTable table(2);
    table.access(1);
    table.reset();
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.missStat().total(), 0u);
    EXPECT_EQ(table.peek(1), nullptr);
}

TEST(FaLru, StackDistanceSemantics)
{
    // A key is retained iff fewer than `capacity` distinct keys
    // intervene — the property that makes this table measure
    // capacity aliasing.
    FullyAssociativeLruTable table(3);
    table.access(100);
    table.access(1);
    table.access(2);
    EXPECT_NE(table.peek(100), nullptr); // distance 2 < 3: resident
    table.access(3);
    EXPECT_EQ(table.peek(100), nullptr); // distance 3 >= 3: evicted
}

TEST(FaLru, LongSequenceConsistency)
{
    // Cross-check size bound and hit behaviour over a pseudo-random
    // stream.
    FullyAssociativeLruTable table(16);
    u64 lcg = 9;
    for (int i = 0; i < 10000; ++i) {
        lcg = lcg * 6364136223846793005ULL + 1;
        table.access((lcg >> 40) % 64);
        ASSERT_LE(table.size(), 16u);
    }
    EXPECT_GT(table.missStat().events(), 0u);
    EXPECT_LT(table.missStat().ratio(), 1.0);
}

} // namespace
} // namespace bpred
