/**
 * @file
 * Unit tests for the trace container and statistics.
 */

#include <gtest/gtest.h>

#include "trace/trace.hh"

namespace bpred
{
namespace
{

TEST(Trace, EmptyState)
{
    Trace trace("empty");
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.name(), "empty");
}

TEST(Trace, AppendAndIterate)
{
    Trace trace("t");
    trace.appendConditional(0x1000, true);
    trace.appendConditional(0x1004, false);
    trace.appendUnconditional(0x1008);
    ASSERT_EQ(trace.size(), 3u);

    EXPECT_EQ(trace[0].pc, 0x1000u);
    EXPECT_TRUE(trace[0].taken);
    EXPECT_TRUE(trace[0].conditional);

    EXPECT_FALSE(trace[1].taken);
    EXPECT_TRUE(trace[1].conditional);

    EXPECT_TRUE(trace[2].taken);
    EXPECT_FALSE(trace[2].conditional);

    u64 count = 0;
    for (const BranchRecord &record : trace) {
        (void)record;
        ++count;
    }
    EXPECT_EQ(count, 3u);
}

TEST(Trace, SetNameAndClear)
{
    Trace trace;
    trace.setName("renamed");
    trace.appendConditional(4, true);
    trace.clear();
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.name(), "renamed");
}

TEST(BranchRecord, Equality)
{
    const BranchRecord a{0x10, true, true};
    const BranchRecord b{0x10, true, true};
    const BranchRecord c{0x10, false, true};
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
}

TEST(TraceStats, CountsPopulations)
{
    Trace trace("s");
    trace.appendConditional(0x100, true);
    trace.appendConditional(0x100, false);
    trace.appendConditional(0x104, true);
    trace.appendUnconditional(0x200);
    trace.appendUnconditional(0x200);

    const TraceStats stats = computeTraceStats(trace);
    EXPECT_EQ(stats.dynamicConditional, 3u);
    EXPECT_EQ(stats.staticConditional, 2u);
    EXPECT_EQ(stats.dynamicUnconditional, 2u);
    EXPECT_EQ(stats.staticUnconditional, 1u);
    EXPECT_EQ(stats.takenConditional, 2u);
    EXPECT_NEAR(stats.takenRatio(), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(stats.dynamicPerStatic(), 1.5, 1e-12);
}

TEST(TraceStats, EmptyTrace)
{
    const TraceStats stats = computeTraceStats(Trace("e"));
    EXPECT_EQ(stats.dynamicConditional, 0u);
    EXPECT_DOUBLE_EQ(stats.takenRatio(), 0.0);
    EXPECT_DOUBLE_EQ(stats.dynamicPerStatic(), 0.0);
}

} // namespace
} // namespace bpred
