/**
 * @file
 * Unit tests for the stat registry: name validation, kind and
 * leaf-vs-group collisions, reference stability, and JSON shape.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/stat_registry.hh"

namespace bpred
{
namespace
{

TEST(StatRegistry, CounterCreatedAtZero)
{
    StatRegistry stats;
    EXPECT_EQ(stats.counter("hits"), 0u);
    stats.counter("hits") += 3;
    EXPECT_EQ(stats.counter("hits"), 3u);
    EXPECT_EQ(stats.size(), 1u);
}

TEST(StatRegistry, EachKindRegisters)
{
    StatRegistry stats;
    stats.counter("a");
    stats.ratio("b").sample(true);
    stats.running("c").sample(1.0);
    stats.histogram("d").sample(7);
    EXPECT_EQ(stats.size(), 4u);
    EXPECT_TRUE(stats.contains("a"));
    EXPECT_TRUE(stats.contains("d"));
    EXPECT_FALSE(stats.contains("e"));
}

TEST(StatRegistry, KindMismatchIsFatal)
{
    StatRegistry stats;
    stats.counter("name");
    EXPECT_THROW(stats.ratio("name"), FatalError);
    EXPECT_THROW(stats.running("name"), FatalError);
    EXPECT_THROW(stats.histogram("name"), FatalError);
    // Same kind is fine.
    EXPECT_NO_THROW(stats.counter("name"));
}

TEST(StatRegistry, LeafCannotBecomeGroup)
{
    StatRegistry stats;
    stats.counter("bank0");
    EXPECT_THROW(stats.counter("bank0.disagree"), FatalError);
}

TEST(StatRegistry, GroupCannotBecomeLeaf)
{
    StatRegistry stats;
    stats.counter("bank0.disagree");
    EXPECT_THROW(stats.counter("bank0"), FatalError);
}

TEST(StatRegistry, SiblingPrefixIsNotAGroupCollision)
{
    // "bank0" the leaf and "bank01.x" share a textual prefix but no
    // group relationship.
    StatRegistry stats;
    stats.counter("bank0");
    EXPECT_NO_THROW(stats.counter("bank01.x"));
}

TEST(StatRegistry, MalformedNamesAreFatal)
{
    StatRegistry stats;
    EXPECT_THROW(stats.counter(""), FatalError);
    EXPECT_THROW(stats.counter(".x"), FatalError);
    EXPECT_THROW(stats.counter("x."), FatalError);
    EXPECT_THROW(stats.counter("a..b"), FatalError);
}

TEST(StatRegistry, ReferencesStayValidAcrossInserts)
{
    StatRegistry stats;
    u64 &first = stats.counter("first");
    // Force rebalancing-ish churn; node-based storage must keep the
    // reference valid.
    for (int i = 0; i < 100; ++i) {
        stats.counter("extra" + std::to_string(i)) = u64(i);
    }
    first = 42;
    EXPECT_EQ(stats.counter("first"), 42u);
}

TEST(StatRegistry, ResetClearsValuesKeepsNames)
{
    StatRegistry stats;
    stats.counter("c") = 9;
    stats.ratio("r").sample(true);
    stats.running("s").sample(2.0);
    stats.histogram("h").sample(1);
    stats.reset();
    EXPECT_EQ(stats.size(), 4u);
    EXPECT_EQ(stats.counter("c"), 0u);
    EXPECT_EQ(stats.ratio("r").total(), 0u);
    EXPECT_EQ(stats.running("s").count(), 0u);
    EXPECT_EQ(stats.histogram("h").total(), 0u);
}

TEST(StatRegistry, ToJsonNestsDottedNames)
{
    StatRegistry stats;
    stats.counter("bank0.writes") = 5;
    stats.counter("bank1.writes") = 7;
    stats.counter("top") = 1;

    const JsonValue json = stats.toJson();
    ASSERT_TRUE(json.isObject());
    const JsonValue *bank0 = json.find("bank0");
    ASSERT_NE(bank0, nullptr);
    const JsonValue *writes = bank0->find("writes");
    ASSERT_NE(writes, nullptr);
    EXPECT_EQ(writes->dump(), "5");
    ASSERT_NE(json.find("top"), nullptr);
    EXPECT_EQ(json.find("top")->dump(), "1");
}

TEST(StatRegistry, ToJsonLeafShapes)
{
    StatRegistry stats;
    stats.counter("count") = 2;
    RatioStat &r = stats.ratio("ratio");
    r.sample(true);
    r.sample(false);
    stats.running("run").sample(3.0);
    stats.histogram("hist").sampleN(4, 2);

    const JsonValue json = stats.toJson();
    EXPECT_EQ(json.find("count")->dump(), "2");

    const JsonValue *ratio = json.find("ratio");
    ASSERT_NE(ratio, nullptr);
    EXPECT_EQ(ratio->find("events")->dump(), "1");
    EXPECT_EQ(ratio->find("total")->dump(), "2");
    EXPECT_EQ(ratio->find("ratio")->dump(), "0.5");

    const JsonValue *run = json.find("run");
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->find("count")->dump(), "1");
    EXPECT_EQ(run->find("mean")->dump(), "3");

    const JsonValue *hist = json.find("hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->find("total")->dump(), "2");
    ASSERT_NE(hist->find("counts"), nullptr);
    EXPECT_EQ(hist->find("counts")->dump(), "[[4,2]]");
}

TEST(StatRegistry, EmptyRegistryJson)
{
    StatRegistry stats;
    EXPECT_TRUE(stats.empty());
    EXPECT_EQ(stats.toJson().dump(), "{}");
}

} // namespace
} // namespace bpred
