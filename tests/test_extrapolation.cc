/**
 * @file
 * Unit tests for the trace-driven model extrapolation (Figure 11
 * machinery).
 */

#include <gtest/gtest.h>

#include "model/extrapolation.hh"
#include "support/rng.hh"

namespace bpred
{
namespace
{

Trace
biasedRandomTrace(u64 sites, u64 length, u64 seed)
{
    Trace trace("model-input");
    Rng rng(seed);
    for (u64 i = 0; i < length; ++i) {
        const u64 site = rng.uniformInt(sites);
        const Addr pc = 0x1000 + 4 * site;
        const bool biased_taken = site % 4 != 0; // 75% of sites
        trace.appendConditional(pc,
                                rng.chance(biased_taken ? 0.95
                                                        : 0.05));
    }
    return trace;
}

TEST(ModelInputs, BiasDensityMeasured)
{
    const Trace trace = biasedRandomTrace(64, 20000, 3);
    const TraceModelInputs inputs = measureModelInputs(trace, 0);
    // 75% of sites are taken-biased; with h=0 substreams are sites.
    EXPECT_NEAR(inputs.biasTaken, 0.75, 0.1);
    EXPECT_EQ(inputs.numSubstreams, 64u);
    EXPECT_EQ(inputs.dynamicBranches, 20000u);
}

TEST(ModelInputs, UnaliasedRateMatchesNoise)
{
    // Sites flip with probability 0.05 against their bias; an
    // unaliased 1-bit predictor mispredicts roughly at twice the
    // flip rate (each flip also spoils the next prediction).
    const Trace trace = biasedRandomTrace(64, 40000, 5);
    const TraceModelInputs inputs = measureModelInputs(trace, 0);
    EXPECT_GT(inputs.unaliasedMispredict, 0.05);
    EXPECT_LT(inputs.unaliasedMispredict, 0.15);
}

TEST(ModelInputs, MoreHistoryMoreSubstreams)
{
    const Trace trace = biasedRandomTrace(64, 20000, 7);
    const TraceModelInputs h0 = measureModelInputs(trace, 0);
    const TraceModelInputs h8 = measureModelInputs(trace, 8);
    EXPECT_GT(h8.numSubstreams, h0.numSubstreams);
}

TEST(Extrapolation, LargeTablesOnlyCompulsoryOverhead)
{
    const Trace trace = biasedRandomTrace(32, 10000, 11);
    const TraceModelInputs inputs = measureModelInputs(trace, 0);
    // Tables far larger than the working set: aliasing probability
    // ~0 except compulsory (p = 1) references.
    const ExtrapolationResult result = extrapolateMispredictions(
        trace, 0, u64(1) << 20, u64(1) << 20, inputs);
    EXPECT_NEAR(result.skewedExtrapolated,
                inputs.unaliasedMispredict, 0.01);
    EXPECT_NEAR(result.directMappedExtrapolated,
                inputs.unaliasedMispredict, 0.01);
}

TEST(Extrapolation, TinyTablesAddLargeOverhead)
{
    const Trace trace = biasedRandomTrace(256, 20000, 13);
    const TraceModelInputs inputs = measureModelInputs(trace, 0);
    const ExtrapolationResult small = extrapolateMispredictions(
        trace, 0, 16, 16, inputs);
    const ExtrapolationResult large = extrapolateMispredictions(
        trace, 0, 4096, 4096, inputs);
    EXPECT_GT(small.skewedExtrapolated, large.skewedExtrapolated);
    EXPECT_GT(small.directMappedExtrapolated,
              large.directMappedExtrapolated);
    EXPECT_GT(small.meanBankAliasingProbability,
              large.meanBankAliasingProbability);
}

TEST(Extrapolation, SkewedBeatsDmAtEqualStorageShortDistances)
{
    // A working set that fits: re-reference distances are short, so
    // the model must favour 3x(N/3) skewed over N direct-mapped.
    const Trace trace = biasedRandomTrace(48, 20000, 17);
    const TraceModelInputs inputs = measureModelInputs(trace, 0);
    const ExtrapolationResult result = extrapolateMispredictions(
        trace, 0, 512 / 3, 512, inputs);
    EXPECT_LT(result.skewedExtrapolated,
              result.directMappedExtrapolated + 1e-9);
}

TEST(Extrapolation, MeanProbabilityWithinBounds)
{
    const Trace trace = biasedRandomTrace(64, 5000, 19);
    const TraceModelInputs inputs = measureModelInputs(trace, 4);
    const ExtrapolationResult result = extrapolateMispredictions(
        trace, 4, 256, 1024, inputs);
    EXPECT_GE(result.meanBankAliasingProbability, 0.0);
    EXPECT_LE(result.meanBankAliasingProbability, 1.0);
}

TEST(Extrapolation, EmptyTraceIsZero)
{
    Trace trace("empty");
    TraceModelInputs inputs;
    const ExtrapolationResult result =
        extrapolateMispredictions(trace, 4, 256, 1024, inputs);
    EXPECT_DOUBLE_EQ(result.skewedExtrapolated, 0.0);
    EXPECT_DOUBLE_EQ(result.directMappedExtrapolated, 0.0);
}

} // namespace
} // namespace bpred
