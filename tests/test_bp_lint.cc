/**
 * @file
 * bp_lint against golden fixture trees.
 *
 * Each fixture under tests/fixtures/lint/ is a miniature repository
 * that either passes every rule (clean/) or violates exactly one.
 * The tests pin both directions: the clean tree stays clean, and
 * every rule still fires on the violation written for it. The
 * fixture directory is compiled in as BPLINT_FIXTURE_DIR; the
 * production lint walk skips any directory named "fixtures", so
 * these intentional violations never fail the real-tree run.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bp_lint/lint.hh"

namespace
{

using bplint::Finding;
using bplint::RepoTree;

RepoTree
fixture(const std::string &name)
{
    return bplint::loadTree(std::string(BPLINT_FIXTURE_DIR) + "/" +
                            name);
}

std::vector<Finding>
lintWith(const std::string &tree, const std::string &rule)
{
    return bplint::runLint(fixture(tree), {rule});
}

bool
mentions(const Finding &finding, const std::string &text)
{
    return finding.message.find(text) != std::string::npos;
}

TEST(BpLint, CleanTreePassesEveryRule)
{
    const auto findings = bplint::runLint(fixture("clean"));
    EXPECT_TRUE(findings.empty())
        << findings.size() << " unexpected finding(s), first: "
        << (findings.empty() ? std::string()
                             : findings.front().file + ": " +
                                   findings.front().message);
}

TEST(BpLint, UnregisteredSourcesAreFlagged)
{
    const auto findings =
        lintWith("unregistered_test", "cmake-registration");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].file, "bench/bench_lonely.cc");
    EXPECT_TRUE(mentions(findings[0], "no CMakeLists.txt"));
    EXPECT_EQ(findings[1].file, "tests/test_orphan.cc");
    EXPECT_TRUE(mentions(findings[1], "not registered"));
}

TEST(BpLint, HeadersWithoutPragmaOnceAreFlagged)
{
    const auto findings =
        lintWith("missing_pragma", "pragma-once");
    ASSERT_EQ(findings.size(), 3u);
    EXPECT_EQ(findings[0].file, "src/no_guard.hh");
    EXPECT_TRUE(mentions(findings[0], "lacks #pragma once"));
    EXPECT_EQ(findings[1].file, "src/old_guard.hh");
    EXPECT_EQ(findings[1].line, 1u);
    EXPECT_TRUE(mentions(findings[1], "BPRED_"));
    EXPECT_EQ(findings[2].file, "src/old_guard.hh");
    EXPECT_TRUE(mentions(findings[2], "lacks #pragma once"));
}

TEST(BpLint, BannedIdentifiersAreFlagged)
{
    const auto findings = lintWith("banned", "banned-identifier");
    ASSERT_EQ(findings.size(), 4u);

    EXPECT_EQ(findings[0].file, "src/bad_calls.cc");
    EXPECT_EQ(findings[0].line, 9u);
    EXPECT_TRUE(mentions(findings[0], "atoi"));
    EXPECT_EQ(findings[1].line, 10u);
    EXPECT_TRUE(mentions(findings[1], "rand"));
    EXPECT_EQ(findings[2].line, 11u);
    EXPECT_TRUE(mentions(findings[2], "raw new"));

    // Member calls, foreign qualifiers, comments, strings, and the
    // annotated rand() produced nothing for bad_calls.cc beyond
    // the three above; the factory file's raw new is exempt; only
    // the unannotated trace-layer reserve() remains.
    EXPECT_EQ(findings[3].file, "src/trace/decode.cc");
    EXPECT_EQ(findings[3].line, 9u);
    EXPECT_TRUE(mentions(findings[3], "reserve"));
}

TEST(BpLint, DeprecatedCallOutsideTestsIsFlagged)
{
    const auto findings = lintWith("deprecated", "deprecated-call");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/caller.cc");
    EXPECT_EQ(findings[0].line, 7u);
    EXPECT_TRUE(mentions(findings[0], "runLegacy"));
}

TEST(BpLint, FingerprintMismatchIsFlagged)
{
    const auto findings =
        lintWith("fingerprint", "factory-fingerprint");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/sim/factory.cc");
    EXPECT_EQ(findings[0].line, 14u);
    EXPECT_TRUE(mentions(findings[0], "gizmo"));
}

TEST(BpLint, NonLiteralTraceArgumentsAreFlagged)
{
    const auto findings =
        lintWith("trace_literal", "trace-literal");
    ASSERT_EQ(findings.size(), 3u);

    // Non-literal category, non-literal name, non-literal instant
    // name — in line order. The literal and wrapped-literal calls,
    // the allow()ed counter, the commented/string mentions, and the
    // MY_TRACE_SCOPE lookalike all stay silent.
    EXPECT_EQ(findings[0].file, "src/spans.cc");
    EXPECT_EQ(findings[0].line, 14u);
    EXPECT_TRUE(mentions(findings[0], "TRACE_SCOPE"));
    EXPECT_EQ(findings[1].line, 15u);
    EXPECT_TRUE(mentions(findings[1], "TRACE_SCOPE"));
    EXPECT_EQ(findings[2].line, 16u);
    EXPECT_TRUE(mentions(findings[2], "TRACE_INSTANT"));
}

TEST(BpLint, SimdIsolationViolationsAreFlagged)
{
    const auto findings =
        lintWith("simd_isolation", "simd-isolation");
    ASSERT_EQ(findings.size(), 7u);

    // The *_simd header: an unguarded include, two unguarded
    // __m256i mentions, one unguarded intrinsic call — while the
    // #if BPRED_HAVE_AVX2 copy of the same code stays silent.
    EXPECT_EQ(findings[0].file, "src/core/leaky_kernel_simd.hh");
    EXPECT_EQ(findings[0].line, 5u);
    EXPECT_TRUE(mentions(findings[0], "BPRED_HAVE_AVX2"));
    EXPECT_EQ(findings[3].line, 10u);
    EXPECT_TRUE(mentions(findings[3], "intrinsic"));

    // The plain translation unit: intrinsics are banned outright,
    // guarded or not; comment mentions stay silent.
    EXPECT_EQ(findings[4].file, "src/predictors/stray.cc");
    EXPECT_EQ(findings[4].line, 3u);
    EXPECT_TRUE(mentions(findings[4], "outside a *_simd file"));
    EXPECT_EQ(findings[5].line, 9u);
    EXPECT_EQ(findings[6].line, 10u);
}

TEST(BpLint, StripKeepsPositionsAndDigitSeparators)
{
    const std::string stripped = bplint::stripCommentsAndStrings(
        "int x = 1'000; // rand()\n"
        "const char *s = \"atoi(\";\n"
        "/* strcpy */ int y = x;\n");
    EXPECT_NE(stripped.find("1'000"), std::string::npos);
    EXPECT_EQ(stripped.find("rand"), std::string::npos);
    EXPECT_EQ(stripped.find("atoi"), std::string::npos);
    EXPECT_EQ(stripped.find("strcpy"), std::string::npos);
    // Positions survive: 'y' stays at its original column within
    // its own line.
    const std::size_t y = stripped.find("int y");
    ASSERT_NE(y, std::string::npos);
    EXPECT_EQ(y - (stripped.rfind('\n', y) + 1),
              std::string("/* strcpy */ ").size());
    // Line structure survives.
    EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
              3);
}

TEST(BpLint, CanonicalFingerprintDropsPunctuation)
{
    EXPECT_EQ(bplint::canonicalFingerprint("e-gskew"), "egskew");
    EXPECT_EQ(bplint::canonicalFingerprint("FA-LRU-2w"), "falru2w");
    EXPECT_EQ(bplint::canonicalFingerprint("gskewed-sh 14"),
              "gskewedsh14");
}

} // namespace
