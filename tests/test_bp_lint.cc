/**
 * @file
 * bp_lint against golden fixture trees.
 *
 * Each fixture under tests/fixtures/lint/ is a miniature repository
 * that either passes every rule (clean/) or violates exactly one.
 * The tests pin both directions: the clean tree stays clean, and
 * every rule still fires on the violation written for it. The
 * fixture directory is compiled in as BPLINT_FIXTURE_DIR; the
 * production lint walk skips any directory named "fixtures", so
 * these intentional violations never fail the real-tree run.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bp_lint/cache.hh"
#include "bp_lint/lint.hh"
#include "bp_lint/sarif.hh"

namespace
{

using bplint::Finding;
using bplint::RepoTree;

RepoTree
fixture(const std::string &name)
{
    return bplint::loadTree(std::string(BPLINT_FIXTURE_DIR) + "/" +
                            name);
}

std::vector<Finding>
lintWith(const std::string &tree, const std::string &rule)
{
    return bplint::runLint(fixture(tree), {rule});
}

bool
mentions(const Finding &finding, const std::string &text)
{
    return finding.message.find(text) != std::string::npos;
}

TEST(BpLint, CleanTreePassesEveryRule)
{
    const auto findings = bplint::runLint(fixture("clean"));
    EXPECT_TRUE(findings.empty())
        << findings.size() << " unexpected finding(s), first: "
        << (findings.empty() ? std::string()
                             : findings.front().file + ": " +
                                   findings.front().message);
}

TEST(BpLint, UnregisteredSourcesAreFlagged)
{
    const auto findings =
        lintWith("unregistered_test", "cmake-registration");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].file, "bench/bench_lonely.cc");
    EXPECT_TRUE(mentions(findings[0], "no CMakeLists.txt"));
    EXPECT_EQ(findings[1].file, "tests/test_orphan.cc");
    EXPECT_TRUE(mentions(findings[1], "not registered"));
}

TEST(BpLint, HeadersWithoutPragmaOnceAreFlagged)
{
    const auto findings =
        lintWith("missing_pragma", "pragma-once");
    ASSERT_EQ(findings.size(), 3u);
    EXPECT_EQ(findings[0].file, "src/no_guard.hh");
    EXPECT_TRUE(mentions(findings[0], "lacks #pragma once"));
    EXPECT_EQ(findings[1].file, "src/old_guard.hh");
    EXPECT_EQ(findings[1].line, 1u);
    EXPECT_TRUE(mentions(findings[1], "BPRED_"));
    EXPECT_EQ(findings[2].file, "src/old_guard.hh");
    EXPECT_TRUE(mentions(findings[2], "lacks #pragma once"));
}

TEST(BpLint, BannedIdentifiersAreFlagged)
{
    const auto findings = lintWith("banned", "banned-identifier");
    ASSERT_EQ(findings.size(), 3u);

    EXPECT_EQ(findings[0].file, "src/bad_calls.cc");
    EXPECT_EQ(findings[0].line, 9u);
    EXPECT_TRUE(mentions(findings[0], "atoi"));
    EXPECT_EQ(findings[1].line, 10u);
    EXPECT_TRUE(mentions(findings[1], "rand"));
    EXPECT_EQ(findings[2].line, 11u);
    EXPECT_TRUE(mentions(findings[2], "raw new"));

    // Member calls, foreign qualifiers, comments, strings, and the
    // annotated rand() produced nothing for bad_calls.cc beyond
    // the three above; the factory file's raw new is exempt.
}

TEST(BpLint, AllocUntrustedIsFlagged)
{
    const auto findings =
        lintWith("alloc_untrusted", "alloc-untrusted");
    ASSERT_EQ(findings.size(), 2u);

    // The annotated reserve()/resize() in both files stay silent;
    // only the unjustified ones in the trace layer and the corpus
    // runner are flagged.
    EXPECT_EQ(findings[0].file, "src/sim/corpus.cc");
    EXPECT_EQ(findings[0].line, 9u);
    EXPECT_TRUE(mentions(findings[0], "resize"));
    EXPECT_EQ(findings[1].file, "src/trace/decode.cc");
    EXPECT_EQ(findings[1].line, 9u);
    EXPECT_TRUE(mentions(findings[1], "reserve"));
}

TEST(BpLint, DeprecatedCallOutsideTestsIsFlagged)
{
    const auto findings = lintWith("deprecated", "deprecated-call");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/caller.cc");
    EXPECT_EQ(findings[0].line, 7u);
    EXPECT_TRUE(mentions(findings[0], "runLegacy"));
}

TEST(BpLint, FingerprintMismatchIsFlagged)
{
    const auto findings =
        lintWith("fingerprint", "factory-fingerprint");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/sim/factory.cc");
    EXPECT_EQ(findings[0].line, 14u);
    EXPECT_TRUE(mentions(findings[0], "gizmo"));
}

TEST(BpLint, NonLiteralTraceArgumentsAreFlagged)
{
    const auto findings =
        lintWith("trace_literal", "trace-literal");
    ASSERT_EQ(findings.size(), 3u);

    // Non-literal category, non-literal name, non-literal instant
    // name — in line order. The literal and wrapped-literal calls,
    // the allow()ed counter, the commented/string mentions, and the
    // MY_TRACE_SCOPE lookalike all stay silent.
    EXPECT_EQ(findings[0].file, "src/spans.cc");
    EXPECT_EQ(findings[0].line, 14u);
    EXPECT_TRUE(mentions(findings[0], "TRACE_SCOPE"));
    EXPECT_EQ(findings[1].line, 15u);
    EXPECT_TRUE(mentions(findings[1], "TRACE_SCOPE"));
    EXPECT_EQ(findings[2].line, 16u);
    EXPECT_TRUE(mentions(findings[2], "TRACE_INSTANT"));
}

TEST(BpLint, SimdIsolationViolationsAreFlagged)
{
    const auto findings =
        lintWith("simd_isolation", "simd-isolation");
    ASSERT_EQ(findings.size(), 7u);

    // The *_simd header: an unguarded include, two unguarded
    // __m256i mentions, one unguarded intrinsic call — while the
    // #if BPRED_HAVE_AVX2 copy of the same code stays silent.
    EXPECT_EQ(findings[0].file, "src/core/leaky_kernel_simd.hh");
    EXPECT_EQ(findings[0].line, 5u);
    EXPECT_TRUE(mentions(findings[0], "BPRED_HAVE_AVX2"));
    EXPECT_EQ(findings[3].line, 10u);
    EXPECT_TRUE(mentions(findings[3], "intrinsic"));

    // The plain translation unit: intrinsics are banned outright,
    // guarded or not; comment mentions stay silent.
    EXPECT_EQ(findings[4].file, "src/predictors/stray.cc");
    EXPECT_EQ(findings[4].line, 3u);
    EXPECT_TRUE(mentions(findings[4], "outside a *_simd file"));
    EXPECT_EQ(findings[5].line, 9u);
    EXPECT_EQ(findings[6].line, 10u);
}

TEST(BpLint, StripKeepsPositionsAndDigitSeparators)
{
    const std::string stripped = bplint::stripCommentsAndStrings(
        "int x = 1'000; // rand()\n"
        "const char *s = \"atoi(\";\n"
        "/* strcpy */ int y = x;\n");
    EXPECT_NE(stripped.find("1'000"), std::string::npos);
    EXPECT_EQ(stripped.find("rand"), std::string::npos);
    EXPECT_EQ(stripped.find("atoi"), std::string::npos);
    EXPECT_EQ(stripped.find("strcpy"), std::string::npos);
    // Positions survive: 'y' stays at its original column within
    // its own line.
    const std::size_t y = stripped.find("int y");
    ASSERT_NE(y, std::string::npos);
    EXPECT_EQ(y - (stripped.rfind('\n', y) + 1),
              std::string("/* strcpy */ ").size());
    // Line structure survives.
    EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
              3);
}

TEST(BpLint, CanonicalFingerprintDropsPunctuation)
{
    EXPECT_EQ(bplint::canonicalFingerprint("e-gskew"), "egskew");
    EXPECT_EQ(bplint::canonicalFingerprint("FA-LRU-2w"), "falru2w");
    EXPECT_EQ(bplint::canonicalFingerprint("gskewed-sh 14"),
              "gskewedsh14");
}

TEST(BpLint, StripBlanksRawStringBodies)
{
    // Raw literal bodies full of stripper poison: quotes, comment
    // openers, banned-looking calls, unbalanced parens. A stripper
    // without raw-string support desynchronizes on the first body
    // and leaks the rest of the file into the code view.
    const std::string stripped = bplint::stripCommentsAndStrings(
        "auto q = R\"sql(rand() \" /* atoi( )\" )sql\";\n"
        "auto j = u8R\"x(strcpy( // \")x\"; int z = 1;\n"
        "auto m = R\"(first\n"
        "rand()\n"
        ")\"; int w = 2;\n");
    EXPECT_EQ(stripped.find("rand"), std::string::npos);
    EXPECT_EQ(stripped.find("atoi"), std::string::npos);
    EXPECT_EQ(stripped.find("strcpy"), std::string::npos);
    // Code after each literal survives, including after the
    // prefixed u8R form and the multi-line body.
    EXPECT_NE(stripped.find("int z = 1;"), std::string::npos);
    EXPECT_NE(stripped.find("int w = 2;"), std::string::npos);
    // Newlines inside raw bodies are preserved, so line numbers of
    // everything downstream stay correct.
    EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
              5);
    // FOOR"..." is an identifier followed by a string, not a raw
    // literal: the string body is blanked the ordinary way and the
    // code keeps flowing.
    const std::string notRaw = bplint::stripCommentsAndStrings(
        "auto s = FOOR\"(rand)\"; int k = 3;\n");
    EXPECT_EQ(notRaw.find("rand"), std::string::npos);
    EXPECT_NE(notRaw.find("FOOR"), std::string::npos);
    EXPECT_NE(notRaw.find("int k = 3;"), std::string::npos);
}

TEST(BpLint, LayeringViolationsAreFlagged)
{
    const auto findings = lintWith("layering", "layering");
    ASSERT_EQ(findings.size(), 2u);

    // user.cc includes only support/util.hh — legal as a direct
    // edge, but util.hh reaches sim/, and the chain is reported at
    // the include that dragged it in.
    EXPECT_EQ(findings[0].file, "src/support/user.cc");
    EXPECT_EQ(findings[0].line, 4u);
    EXPECT_TRUE(
        mentions(findings[0], "transitively reaches module 'sim'"));
    EXPECT_TRUE(
        mentions(findings[0], "support/util.hh -> sim/engine.hh"));

    // util.hh's own include of sim/engine.hh is the direct
    // violation.
    EXPECT_EQ(findings[1].file, "src/support/util.hh");
    EXPECT_EQ(findings[1].line, 5u);
    EXPECT_TRUE(
        mentions(findings[1], "must not include 'sim/engine.hh'"));
}

TEST(BpLint, SchemeCoverageGapsAreFlagged)
{
    const auto findings =
        lintWith("scheme_coverage", "scheme-coverage");
    ASSERT_EQ(findings.size(), 3u);

    // 'good' (snapshots + kernel + contract entry) and 'waived'
    // (snapshots + scalar-only waiver + contract entry) stay
    // silent; all three gaps of 'bad' anchor at its table line.
    for (const auto &finding : findings) {
        EXPECT_EQ(finding.file, "src/sim/factory.cc");
        EXPECT_EQ(finding.line, 20u);
        EXPECT_TRUE(mentions(finding, "'bad'"));
    }
    EXPECT_TRUE(mentions(findings[0], "saveState"));
    EXPECT_TRUE(mentions(findings[1], "replayBlock"));
    EXPECT_TRUE(mentions(findings[2], "sweep"));
}

TEST(BpLint, UnguardedAnnotatedAccessIsFlagged)
{
    const auto findings =
        lintWith("lock_discipline", "lock-discipline");

    // push() takes the lock and sizeLockFree() carries a justified
    // allow(lock-discipline) escape — only the raw read in
    // peekUnsafe() fires.
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/serve/pool.cc");
    EXPECT_EQ(findings[0].line, 17u);
    EXPECT_TRUE(mentions(findings[0], "guarded_by(inboxMutex)"));
    EXPECT_TRUE(mentions(findings[0], "src/serve/pool.hh"));
}

TEST(BpLint, ImplicitAtomicOrderingIsFlagged)
{
    const auto findings = lintWith("atomic_order", "atomic-order");

    // Bare .store() and operator= fire; the explicitly relaxed
    // load and the allow()ed startup store stay silent.
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].file, "src/support/flag.cc");
    EXPECT_EQ(findings[0].line, 12u);
    EXPECT_TRUE(mentions(findings[0], "memory_order"));
    EXPECT_EQ(findings[1].file, "src/support/flag.cc");
    EXPECT_EQ(findings[1].line, 25u);
    EXPECT_TRUE(mentions(findings[1], "operator"));
}

TEST(BpLint, SarifSerializesFindingsAndRules)
{
    std::vector<Finding> findings;
    findings.push_back({"banned-identifier", "src/a.cc", 12,
                        "call to banned \"rand\""});
    findings.push_back({"cmake-registration", "tests/t.cc", 0,
                        "no CMakeLists.txt alongside"});
    const std::string sarif = bplint::toSarif(findings);

    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"bp_lint\""),
              std::string::npos);
    // Every registered rule appears as a reportingDescriptor.
    for (const auto &rule : bplint::allRules()) {
        EXPECT_NE(sarif.find("\"id\": \"" +
                             std::string(rule.name) + "\""),
                  std::string::npos)
            << rule.name;
    }
    // The line-carrying finding gets a region; the file-scoped one
    // must not (SARIF requires startLine >= 1).
    EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
    EXPECT_EQ(sarif.find("\"startLine\": 0"), std::string::npos);
    EXPECT_NE(sarif.find("\"uri\": \"src/a.cc\""),
              std::string::npos);
    // Message content is JSON-escaped.
    EXPECT_NE(sarif.find("banned \\\"rand\\\""), std::string::npos);
}

TEST(BpLint, CacheRoundTripsFindings)
{
    const auto dir = std::filesystem::temp_directory_path() /
        "bp_lint_cache_test";
    std::filesystem::remove_all(dir);

    std::vector<Finding> findings;
    findings.push_back({"layering", "src/a b.cc", 4,
                        "line one\nline two\ttabbed \\slash"});
    findings.push_back({"atomic-order", "src/c.cc", 0, "plain"});

    bplint::cacheStore(dir, "k1", findings);
    const auto loaded = bplint::cacheLoad(dir, "k1");
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->size(), 2u);
    EXPECT_EQ((*loaded)[0].rule, "layering");
    EXPECT_EQ((*loaded)[0].file, "src/a b.cc");
    EXPECT_EQ((*loaded)[0].line, 4u);
    EXPECT_EQ((*loaded)[0].message,
              "line one\nline two\ttabbed \\slash");
    EXPECT_EQ((*loaded)[1].line, 0u);
    EXPECT_EQ((*loaded)[1].message, "plain");

    // An unknown key is a miss; storing a new key prunes the old
    // entry, and a clean run round-trips as an empty finding list
    // (distinct from a miss).
    EXPECT_FALSE(bplint::cacheLoad(dir, "k2").has_value());
    bplint::cacheStore(dir, "k2", {});
    EXPECT_FALSE(bplint::cacheLoad(dir, "k1").has_value());
    const auto clean = bplint::cacheLoad(dir, "k2");
    ASSERT_TRUE(clean.has_value());
    EXPECT_TRUE(clean->empty());

    std::filesystem::remove_all(dir);
}

TEST(BpLint, CacheKeyDependsOnRuleSelection)
{
    const std::filesystem::path root =
        std::string(BPLINT_FIXTURE_DIR) + "/clean";
    const std::string all = bplint::cacheKey(root, {});
    EXPECT_EQ(all, bplint::cacheKey(root, {}));
    // Selecting a rule subset must not hit the all-rules entry.
    EXPECT_NE(all, bplint::cacheKey(root, {"layering"}));
}

TEST(BpLint, EveryRuleHasAViolatingFixture)
{
    // RULES.map pins rule -> fixture; a rule added without a
    // violating fixture fails here (and CI cross-checks the file
    // against --list-rules).
    std::ifstream map(std::string(BPLINT_FIXTURE_DIR) +
                      "/RULES.map");
    ASSERT_TRUE(map.is_open());
    std::map<std::string, std::string> fixtureFor;
    std::string line;
    while (std::getline(map, line)) {
        if (line.empty() || line[0] == '#') {
            continue;
        }
        std::istringstream fields(line);
        std::string rule;
        std::string dir;
        fields >> rule >> dir;
        ASSERT_FALSE(dir.empty()) << "malformed RULES.map line: "
                                  << line;
        fixtureFor[rule] = dir;
    }

    for (const auto &rule : bplint::allRules()) {
        const auto it = fixtureFor.find(rule.name);
        ASSERT_NE(it, fixtureFor.end())
            << "rule '" << rule.name
            << "' has no violating fixture in RULES.map";
        const auto findings = lintWith(it->second, rule.name);
        EXPECT_FALSE(findings.empty())
            << "fixture '" << it->second
            << "' produces no findings for rule '" << rule.name
            << "'";
        for (const auto &finding : findings) {
            EXPECT_EQ(finding.rule, rule.name);
        }
        fixtureFor.erase(it);
    }
    EXPECT_TRUE(fixtureFor.empty())
        << "RULES.map names a rule that is not registered: "
        << (fixtureFor.empty() ? std::string()
                               : fixtureFor.begin()->first);
}

} // namespace
