/**
 * @file
 * Unit tests for static, bimodal, gshare and gselect predictors.
 */

#include <gtest/gtest.h>

#include "predictors/bimodal.hh"
#include "predictors/gselect.hh"
#include "predictors/gshare.hh"
#include "predictors/static_pred.hh"

namespace bpred
{
namespace
{

TEST(StaticPredictor, FixedDirections)
{
    StaticPredictor taken(true);
    StaticPredictor not_taken(false);
    for (Addr pc = 0; pc < 64; pc += 4) {
        EXPECT_TRUE(taken.predict(pc));
        EXPECT_FALSE(not_taken.predict(pc));
    }
    EXPECT_EQ(taken.storageBits(), 0u);
    EXPECT_EQ(taken.name(), "always-taken");
    EXPECT_EQ(not_taken.name(), "always-not-taken");
}

TEST(Bimodal, LearnsPerAddress)
{
    BimodalPredictor predictor(6);
    const Addr loop = 0x100;
    const Addr exit = 0x104; // distinct table entry from `loop`
    for (int i = 0; i < 4; ++i) {
        predictor.predict(loop);
        predictor.update(loop, true);
        predictor.predict(exit);
        predictor.update(exit, false);
    }
    EXPECT_TRUE(predictor.predict(loop));
    EXPECT_FALSE(predictor.predict(exit));
}

TEST(Bimodal, AliasesOnLowBits)
{
    BimodalPredictor predictor(4); // 16 entries
    const Addr a = 0x100;
    const Addr b = a + (16 << 2); // same low index bits
    for (int i = 0; i < 4; ++i) {
        predictor.update(a, true);
    }
    // b shares a's counter, so it inherits a's bias.
    EXPECT_TRUE(predictor.predict(b));
}

TEST(Bimodal, StorageBits)
{
    BimodalPredictor predictor(10, 2);
    EXPECT_EQ(predictor.storageBits(), 1024u * 2);
    BimodalPredictor one_bit(10, 1);
    EXPECT_EQ(one_bit.storageBits(), 1024u);
}

TEST(Bimodal, ResetForgets)
{
    BimodalPredictor predictor(6);
    for (int i = 0; i < 4; ++i) {
        predictor.update(0x40, true);
    }
    EXPECT_TRUE(predictor.predict(0x40));
    predictor.reset();
    EXPECT_FALSE(predictor.predict(0x40));
}

TEST(GShare, LearnsHistoryCorrelatedBranch)
{
    // A branch whose direction equals its previous outcome pattern:
    // alternating T/N. With history, gshare separates the two
    // contexts; bimodal cannot.
    GSharePredictor gshare(10, 4);
    BimodalPredictor bimodal(10);
    const Addr pc = 0x400;

    int gshare_wrong = 0;
    int bimodal_wrong = 0;
    bool outcome = false;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        if (i >= 100) { // after warm-up
            gshare_wrong += gshare.predict(pc) != outcome;
            bimodal_wrong += bimodal.predict(pc) != outcome;
        } else {
            gshare.predict(pc);
            bimodal.predict(pc);
        }
        gshare.update(pc, outcome);
        bimodal.update(pc, outcome);
    }
    EXPECT_EQ(gshare_wrong, 0);
    EXPECT_GT(bimodal_wrong, 100);
}

TEST(GShare, UnconditionalShiftsHistory)
{
    GSharePredictor a(10, 4);
    GSharePredictor b(10, 4);
    const Addr pc = 0x800;
    // Train `a` after an unconditional branch polluted its history;
    // `b` sees the same conditional stream without it. The indexes
    // they train differ, which we observe via predictions.
    a.notifyUnconditional(0x100);
    for (int i = 0; i < 3; ++i) {
        a.update(pc, true);
        b.update(pc, true);
    }
    // Reset histories to a common state and compare table contents
    // indirectly: with equal history, predictions may differ since
    // training went to different entries.
    // (Just assert both still function.)
    EXPECT_NO_THROW(a.predict(pc));
    EXPECT_NO_THROW(b.predict(pc));
}

TEST(GShare, NameAndStorage)
{
    GSharePredictor predictor(14, 12);
    EXPECT_EQ(predictor.name(), "gshare-16K-h12");
    EXPECT_EQ(predictor.storageBits(), (u64(1) << 14) * 2);
    EXPECT_EQ(predictor.historyBits(), 12u);
}

TEST(GShare, ResetClearsHistoryAndTable)
{
    GSharePredictor predictor(8, 4);
    for (int i = 0; i < 10; ++i) {
        predictor.update(0x10, true);
    }
    predictor.reset();
    EXPECT_FALSE(predictor.predict(0x10));
}

TEST(GSelect, LearnsHistoryCorrelatedBranch)
{
    GSelectPredictor predictor(10, 4);
    const Addr pc = 0x400;
    bool outcome = false;
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        if (i >= 100) {
            wrong += predictor.predict(pc) != outcome;
        } else {
            predictor.predict(pc);
        }
        predictor.update(pc, outcome);
    }
    EXPECT_EQ(wrong, 0);
}

TEST(GSelect, NameAndStorage)
{
    GSelectPredictor predictor(12, 6);
    EXPECT_EQ(predictor.name(), "gselect-4K-h6");
    EXPECT_EQ(predictor.storageBits(), (u64(1) << 12) * 2);
}

TEST(GShareVsGSelect, DifferentIndexing)
{
    // Same training stream; different table organizations should,
    // in general, leave different table states. Train two branches
    // that collide in gselect's truncated address bits but not in
    // gshare's XOR.
    GSharePredictor gshare(6, 4);
    GSelectPredictor gselect(6, 4);
    const Addr a = 0x10 << 2;
    const Addr b = (0x10 + (1 << 4)) << 2; // differs above gselect's
                                           // 2 surviving address bits
    for (int i = 0; i < 4; ++i) {
        gshare.update(a, true);
        gselect.update(a, true);
    }
    // Both work; detailed aliasing behaviour is exercised in the
    // three-C tests.
    EXPECT_NO_THROW(gshare.predict(b));
    EXPECT_NO_THROW(gselect.predict(b));
}

TEST(OneBitVsTwoBit, LoopBranchAnomaly)
{
    // Classic result: on a loop taken 9 of 10 times, a 1-bit
    // counter mispredicts twice per loop (both the exit and the
    // re-entry), a 2-bit counter once.
    BimodalPredictor one_bit(8, 1);
    BimodalPredictor two_bit(8, 2);
    const Addr pc = 0x40;

    auto run = [&](BimodalPredictor &p) {
        int wrong = 0;
        // warm-up
        for (int i = 0; i < 10; ++i) {
            p.update(pc, i % 10 != 9);
        }
        for (int i = 0; i < 200; ++i) {
            const bool outcome = i % 10 != 9;
            wrong += p.predict(pc) != outcome;
            p.update(pc, outcome);
        }
        return wrong;
    };

    const int wrong1 = run(one_bit);
    const int wrong2 = run(two_bit);
    EXPECT_EQ(wrong2, 20); // one mispredict per iteration of 10
    EXPECT_EQ(wrong1, 40); // two mispredicts per iteration
}

} // namespace
} // namespace bpred
