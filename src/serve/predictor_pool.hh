/**
 * @file
 * A sharded multi-tenant predictor-serving pool.
 *
 * The serving API: N shards, each owning a worker thread, a bounded
 * inbox of batched PredictRequests, and a TenantCache of live
 * predictors. A tenant maps to exactly one shard (tenant % shards),
 * so one worker resolves each tenant's requests in submission
 * order — per-tenant FIFO without any cross-shard coordination.
 *
 * The hot path is the same devirtualized replayBlock() kernel the
 * gang replay engine uses (sim/gang.hh): a request's records are
 * resolved in cache-resident blocks through one virtual dispatch
 * per block, with a shard-local ReplayScratch lending the SoA
 * staging arrays. With default simulation semantics (no warmup,
 * flush or windowing — serving scores every branch) this is
 * bit-identical to feeding the same records to a dedicated
 * SimSession, which is the pooled-vs-dedicated invariant test_serve
 * enforces for every scheme. The pool deliberately does not hold
 * SimSessions per tenant: a session binds its predictor reference
 * for life, while pooled tenants are destroyed and rebuilt on every
 * evict/restore cycle; raw replayBlock() plus per-tenant
 * ReplayCounters tallies survive those cycles trivially.
 *
 * Threading: submit() touches only a shard's inbox lock; the worker
 * holds a separate state lock while replaying, so producers never
 * block behind predictor table work and stats readers see a
 * consistent shard snapshot.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "predictors/replay_scratch.hh"
#include "serve/tenant_cache.hh"
#include "sim/gang.hh"
#include "support/stats.hh"

namespace bpred
{

/**
 * One batch of branch records for one tenant. The records are NOT
 * copied: the caller must keep them alive until the request has
 * been processed (drain() is the barrier).
 */
struct PredictRequest
{
    u64 tenant = 0;
    const BranchRecord *records = nullptr;
    std::size_t count = 0;
};

/** Per-tenant serving tallies. */
struct TenantSummary
{
    u64 tenant = 0;

    /** Requests processed. */
    u64 requests = 0;

    /** Conditional branches resolved. */
    u64 conditionals = 0;

    /** Mispredicted conditionals among them. */
    u64 mispredicts = 0;

    /** Correct-prediction fraction (0 when nothing resolved). */
    double
    accuracy() const
    {
        return conditionals == 0
            ? 0.0
            : 1.0 -
                static_cast<double>(mispredicts) /
                static_cast<double>(conditionals);
    }
};

/** Pool-wide tallies aggregated over all shards. */
struct PoolCounters
{
    u64 requests = 0;
    u64 records = 0;
    u64 conditionals = 0;
    u64 mispredicts = 0;

    /** TenantCache traffic summed over shards. */
    TenantCacheCounters cache;

    /** Live predictors right now, over all shards. */
    std::size_t residentTenants = 0;

    /** Sum of shard residency capacities. */
    std::size_t residentCapacity = 0;

    /** Distinct tenants with any state. */
    std::size_t knownTenants = 0;

    /** In-memory checkpoint bytes held. */
    u64 checkpointBytes = 0;
};

/**
 * The serving pool. Construct, submit() batches, drain() to
 * quiesce, read stats / export tenants while quiesced.
 */
class PredictorPool
{
  public:
    struct Options
    {
        /** Worker shards (> 0). */
        unsigned shards = 1;

        /** Resident-predictor bound per shard (> 0). */
        std::size_t tenantCapacity = 64;

        /** Records per replayBlock() call; 0 picks the default. */
        std::size_t blockRecords = 0;

        /** Inbox bound per shard; submit() blocks when full (> 0). */
        std::size_t maxQueuedRequests = 1024;

        /** When non-empty, tenant checkpoints spill to this dir. */
        std::string spillDir;
    };

    /**
     * @param spec Parsed spec every tenant predictor is built from.
     * @throws FatalError on zero shards/capacity/queue bound.
     */
    PredictorPool(PredictorSpec spec, Options options);

    PredictorPool(const PredictorPool &) = delete;
    PredictorPool &operator=(const PredictorPool &) = delete;

    /** Stops the workers after the queued backlog has drained. */
    ~PredictorPool();

    /**
     * Enqueue @p request on its tenant's shard. Blocks while the
     * shard inbox is full (backpressure). Thread-safe.
     *
     * @throws FatalError on an empty request or a null record
     *         pointer with a non-zero count.
     */
    void submit(const PredictRequest &request);

    /**
     * Block until every submitted request has been processed, then
     * rethrow the first parked worker error, if any (clearing it).
     */
    void drain();

    /** Worker shard count. */
    unsigned shards() const;

    /** The shard serving @p tenant. */
    unsigned shardOf(u64 tenant) const;

    /**
     * Serving tallies for @p tenant (zeroes when never seen).
     * Call while quiesced for exact totals.
     */
    TenantSummary tenantSummary(u64 tenant) const;

    /** Tallies for every tenant seen, sorted by tenant id. */
    std::vector<TenantSummary> tenantSummaries() const;

    /**
     * The framed BPS1 snapshot bytes of @p tenant's current state.
     * drain() first: in-flight requests for the tenant would race
     * the export.
     *
     * @throws FatalError for an unknown tenant.
     */
    std::string exportTenant(u64 tenant) const;

    /**
     * Adopt @p bytes as @p tenant's state (see
     * TenantCache::importTenant). drain() first.
     */
    void importTenant(u64 tenant, const std::string &bytes);

    /**
     * Force a checkpoint of @p tenant (it restores on next use).
     * @return True when the tenant was resident.
     */
    bool evictTenant(u64 tenant);

    /** Aggregated pool tallies (consistent per shard). */
    PoolCounters counters() const;

    /**
     * Submit-to-completion request latency in microseconds, merged
     * over shards.
     */
    Histogram requestLatencyUs() const;

    /** Checkpoint-save latency in microseconds, merged over shards. */
    Histogram checkpointSaveLatencyUs() const;

    /** Checkpoint-restore latency in microseconds, merged. */
    Histogram checkpointRestoreLatencyUs() const;

    /** The spec tenants are built from. */
    const PredictorSpec &spec() const { return spec_; }

  private:
    struct InboxEntry
    {
        PredictRequest request;
        std::chrono::steady_clock::time_point enqueued;
    };

    struct TenantTally
    {
        u64 requests = 0;
        ReplayCounters counters;
    };

    /**
     * One worker shard. inboxMutex guards the inbox and inflight
     * flag (producers + worker); stateMutex guards the tenant
     * cache, tallies and histograms (worker during replay, readers
     * any time). The worker never holds both at once. The
     * `bp_lint: guarded_by` annotations are machine-checked by the
     * lock-discipline rule: touching an annotated field outside a
     * scope that constructed a lock on the named mutex is a lint
     * error.
     */
    struct Shard
    {
        std::mutex inboxMutex;
        std::condition_variable notEmpty;
        std::condition_variable notFull;
        std::condition_variable idle;
        // bp_lint: guarded_by(inboxMutex)
        std::deque<InboxEntry> inbox;
        // bp_lint: guarded_by(inboxMutex)
        bool inflight = false;
        // bp_lint: guarded_by(inboxMutex)
        bool stopping = false;

        mutable std::mutex stateMutex;
        // bp_lint: guarded_by(stateMutex)
        std::unique_ptr<TenantCache> tenantCache;
        // bp_lint: guarded_by(stateMutex)
        std::unordered_map<u64, TenantTally> tallies;
        // bp_lint: guarded_by(stateMutex)
        Histogram requestLatency;
        // bp_lint: guarded_by(stateMutex)
        u64 servedRequests = 0;
        // bp_lint: guarded_by(stateMutex)
        u64 servedRecords = 0;
        // bp_lint: guarded_by(stateMutex)
        std::exception_ptr parkedError;

        std::thread worker;
    };

    /** Worker loop: pop, replay, tally, repeat until stopped. */
    void runShard(Shard &shard);

    /** Resolve one request inside the shard's state lock. */
    void processEntry(Shard &shard, const InboxEntry &entry,
                      ReplayScratch &scratch);

    PredictorSpec spec_;
    std::size_t blockRecords_;
    std::size_t maxQueued;
    std::vector<std::unique_ptr<Shard>> shardList;
};

} // namespace bpred
