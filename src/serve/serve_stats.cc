#include "serve/serve_stats.hh"

namespace bpred
{

namespace
{

void
fillHistogram(Histogram &into, const Histogram &from)
{
    for (const auto &[key, count] : from.sorted()) {
        into.sampleN(key, count);
    }
}

} // namespace

void
exportServeStats(const PredictorPool &pool, StatRegistry &registry,
                 std::size_t tenant_limit)
{
    const PoolCounters totals = pool.counters();

    registry.counter("serve.pool.shards") = pool.shards();
    registry.counter("serve.pool.tenants") = totals.knownTenants;
    registry.counter("serve.pool.requests") = totals.requests;
    registry.counter("serve.pool.records") = totals.records;
    registry.ratio("serve.pool.mispredict")
        .restore(totals.mispredicts, totals.conditionals);

    registry.counter("serve.cache.resident") = totals.residentTenants;
    registry.counter("serve.cache.capacity") =
        totals.residentCapacity;
    // Occupancy as a ratio stat: resident over capacity.
    registry.ratio("serve.cache.occupancy")
        .restore(totals.residentTenants, totals.residentCapacity);
    registry.counter("serve.cache.hits") = totals.cache.hits;
    registry.counter("serve.cache.constructions") =
        totals.cache.constructions;
    registry.counter("serve.cache.evictions") =
        totals.cache.evictions;
    registry.counter("serve.cache.restores") = totals.cache.restores;
    registry.counter("serve.cache.spills") = totals.cache.spills;
    registry.counter("serve.cache.checkpoint_bytes") =
        totals.checkpointBytes;

    fillHistogram(registry.histogram("serve.latency.request_us"),
                  pool.requestLatencyUs());
    fillHistogram(
        registry.histogram("serve.latency.checkpoint_save_us"),
        pool.checkpointSaveLatencyUs());
    fillHistogram(
        registry.histogram("serve.latency.checkpoint_restore_us"),
        pool.checkpointRestoreLatencyUs());

    if (tenant_limit == 0) {
        return;
    }
    std::size_t exported = 0;
    for (const TenantSummary &tenant : pool.tenantSummaries()) {
        if (exported == tenant_limit) {
            break;
        }
        const std::string prefix =
            "serve.tenant." + std::to_string(tenant.tenant);
        registry.counter(prefix + ".requests") = tenant.requests;
        registry.ratio(prefix + ".mispredict")
            .restore(tenant.mispredicts, tenant.conditionals);
        ++exported;
    }
}

JsonValue
serveStatsToJson(const PredictorPool &pool, std::size_t tenant_limit)
{
    StatRegistry registry;
    exportServeStats(pool, registry, tenant_limit);
    return registry.toJson();
}

} // namespace bpred
