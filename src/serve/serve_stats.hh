/**
 * @file
 * Stats export for the serving pool.
 *
 * Publishes a PredictorPool's tallies through the dot-named
 * StatRegistry (support/stat_registry.hh) so serving runs plug into
 * the same --stats-out JSON plumbing the benches and probes use:
 *
 *   serve.pool.*      shard count, tenants, requests, records,
 *                     mispredict ratio
 *   serve.cache.*     residency/occupancy, constructions, hits,
 *                     evictions, restores, spills, checkpoint bytes
 *   serve.latency.*   request / checkpoint-save / checkpoint-restore
 *                     latency histograms (microseconds)
 *   serve.tenant.<id>.*  per-tenant requests and mispredict ratio,
 *                     for the first @p tenant_limit tenants by id
 *
 * Per-tenant entries are capped because a registry row per tenant
 * does not scale to loadgen-sized pools (tens of thousands);
 * bench_serve_loadgen emits the full per-tenant accuracy array in
 * its own report instead.
 */

#pragma once

#include <cstddef>

#include "serve/predictor_pool.hh"
#include "support/stat_registry.hh"

namespace bpred
{

/**
 * Snapshot @p pool's tallies into @p registry under the "serve."
 * prefix. @p tenant_limit bounds the per-tenant rows (0 = none).
 * Call on a quiesced pool (after drain()) for exact totals.
 */
void exportServeStats(const PredictorPool &pool,
                      StatRegistry &registry,
                      std::size_t tenant_limit = 0);

/**
 * The "serve." registry subtree as a standalone JSON document —
 * exportServeStats() into a fresh registry, rendered with
 * StatRegistry::toJson().
 */
JsonValue serveStatsToJson(const PredictorPool &pool,
                           std::size_t tenant_limit = 0);

} // namespace bpred
