#include "serve/predictor_pool.hh"

#include <algorithm>
#include <utility>

#include "support/logging.hh"

namespace bpred
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

void
mergeHistogram(Histogram &into, const Histogram &from)
{
    for (const auto &[key, count] : from.sorted()) {
        into.sampleN(key, count);
    }
}

} // namespace

PredictorPool::PredictorPool(PredictorSpec spec, Options options)
    : spec_(std::move(spec)),
      blockRecords_(options.blockRecords == 0
                        ? defaultReplayBlockRecords
                        : options.blockRecords),
      maxQueued(options.maxQueuedRequests)
{
    if (options.shards == 0) {
        fatal("predictor pool: zero shards");
    }
    if (maxQueued == 0) {
        fatal("predictor pool: zero inbox bound");
    }

    shardList.reserve(options.shards);
    for (unsigned i = 0; i < options.shards; ++i) {
        auto shard = std::make_unique<Shard>();
        TenantCache::Options cache_options;
        cache_options.capacity = options.tenantCapacity;
        if (!options.spillDir.empty()) {
            // Per-shard subdirectories keep spill files disjoint
            // without coordinating file names across workers.
            cache_options.spillDir =
                options.spillDir + "/shard-" + std::to_string(i);
        }
        // Single-threaded construction: workers have not started,
        // so no lock is needed to seed the cache.
        // bp_lint: allow(lock-discipline)
        shard->tenantCache =
            std::make_unique<TenantCache>(spec_, cache_options);
        shardList.push_back(std::move(shard));
    }
    for (auto &shard : shardList) {
        Shard *raw = shard.get();
        shard->worker =
            std::thread([this, raw] { runShard(*raw); });
    }
}

PredictorPool::~PredictorPool()
{
    for (auto &shard : shardList) {
        {
            std::lock_guard<std::mutex> lock(shard->inboxMutex);
            shard->stopping = true;
        }
        shard->notEmpty.notify_all();
    }
    for (auto &shard : shardList) {
        if (shard->worker.joinable()) {
            shard->worker.join();
        }
    }
}

void
PredictorPool::submit(const PredictRequest &request)
{
    if (request.count == 0) {
        fatal("predictor pool: empty request");
    }
    if (request.records == nullptr) {
        fatal("predictor pool: null records");
    }

    Shard &shard = *shardList[shardOf(request.tenant)];
    InboxEntry entry;
    entry.request = request;
    entry.enqueued = SteadyClock::now();
    {
        std::unique_lock<std::mutex> lock(shard.inboxMutex);
        shard.notFull.wait(lock, [&] {
            return shard.inbox.size() < maxQueued;
        });
        shard.inbox.push_back(entry);
    }
    shard.notEmpty.notify_one();
}

void
PredictorPool::drain()
{
    for (auto &shard : shardList) {
        std::unique_lock<std::mutex> lock(shard->inboxMutex);
        shard->idle.wait(lock, [&] {
            return shard->inbox.empty() && !shard->inflight;
        });
    }
    for (auto &shard : shardList) {
        std::exception_ptr error;
        {
            std::lock_guard<std::mutex> lock(shard->stateMutex);
            error = std::exchange(shard->parkedError, nullptr);
        }
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

unsigned
PredictorPool::shards() const
{
    return static_cast<unsigned>(shardList.size());
}

unsigned
PredictorPool::shardOf(u64 tenant) const
{
    return static_cast<unsigned>(tenant % shardList.size());
}

TenantSummary
PredictorPool::tenantSummary(u64 tenant) const
{
    const Shard &shard = *shardList[shardOf(tenant)];
    std::lock_guard<std::mutex> lock(shard.stateMutex);
    TenantSummary summary;
    summary.tenant = tenant;
    const auto it = shard.tallies.find(tenant);
    if (it != shard.tallies.end()) {
        summary.requests = it->second.requests;
        summary.conditionals = it->second.counters.conditionals;
        summary.mispredicts = it->second.counters.mispredicts;
    }
    return summary;
}

std::vector<TenantSummary>
PredictorPool::tenantSummaries() const
{
    std::vector<TenantSummary> summaries;
    for (const auto &shard : shardList) {
        std::lock_guard<std::mutex> lock(shard->stateMutex);
        for (const auto &[tenant, tally] : shard->tallies) {
            TenantSummary summary;
            summary.tenant = tenant;
            summary.requests = tally.requests;
            summary.conditionals = tally.counters.conditionals;
            summary.mispredicts = tally.counters.mispredicts;
            summaries.push_back(summary);
        }
    }
    std::sort(summaries.begin(), summaries.end(),
              [](const TenantSummary &a, const TenantSummary &b) {
                  return a.tenant < b.tenant;
              });
    return summaries;
}

std::string
PredictorPool::exportTenant(u64 tenant) const
{
    const Shard &shard = *shardList[shardOf(tenant)];
    std::lock_guard<std::mutex> lock(shard.stateMutex);
    return shard.tenantCache->exportTenant(tenant);
}

void
PredictorPool::importTenant(u64 tenant, const std::string &bytes)
{
    Shard &shard = *shardList[shardOf(tenant)];
    std::lock_guard<std::mutex> lock(shard.stateMutex);
    shard.tenantCache->importTenant(tenant, bytes);
}

bool
PredictorPool::evictTenant(u64 tenant)
{
    Shard &shard = *shardList[shardOf(tenant)];
    std::lock_guard<std::mutex> lock(shard.stateMutex);
    return shard.tenantCache->evict(tenant);
}

PoolCounters
PredictorPool::counters() const
{
    PoolCounters total;
    for (const auto &shard : shardList) {
        std::lock_guard<std::mutex> lock(shard->stateMutex);
        total.requests += shard->servedRequests;
        total.records += shard->servedRecords;
        for (const auto &[tenant, tally] : shard->tallies) {
            total.conditionals += tally.counters.conditionals;
            total.mispredicts += tally.counters.mispredicts;
        }
        const TenantCacheCounters &cache = shard->tenantCache->counters();
        total.cache.hits += cache.hits;
        total.cache.constructions += cache.constructions;
        total.cache.evictions += cache.evictions;
        total.cache.restores += cache.restores;
        total.cache.spills += cache.spills;
        total.residentTenants += shard->tenantCache->resident();
        total.residentCapacity += shard->tenantCache->capacity();
        total.knownTenants += shard->tenantCache->knownTenants();
        total.checkpointBytes += shard->tenantCache->checkpointBytes();
    }
    return total;
}

Histogram
PredictorPool::requestLatencyUs() const
{
    Histogram merged;
    for (const auto &shard : shardList) {
        std::lock_guard<std::mutex> lock(shard->stateMutex);
        mergeHistogram(merged, shard->requestLatency);
    }
    return merged;
}

Histogram
PredictorPool::checkpointSaveLatencyUs() const
{
    Histogram merged;
    for (const auto &shard : shardList) {
        std::lock_guard<std::mutex> lock(shard->stateMutex);
        mergeHistogram(merged, shard->tenantCache->saveLatencyUs());
    }
    return merged;
}

Histogram
PredictorPool::checkpointRestoreLatencyUs() const
{
    Histogram merged;
    for (const auto &shard : shardList) {
        std::lock_guard<std::mutex> lock(shard->stateMutex);
        mergeHistogram(merged, shard->tenantCache->restoreLatencyUs());
    }
    return merged;
}

void
PredictorPool::runShard(Shard &shard)
{
    // Shard-local staging arrays: requests replay back to back on
    // this worker, so the scratch stays hot across tenants exactly
    // like a gang's shared scratch (sim/gang.hh).
    ReplayScratch scratch;

    for (;;) {
        InboxEntry entry;
        {
            std::unique_lock<std::mutex> lock(shard.inboxMutex);
            shard.notEmpty.wait(lock, [&] {
                return shard.stopping || !shard.inbox.empty();
            });
            if (shard.inbox.empty()) {
                // stopping, backlog drained
                break;
            }
            entry = shard.inbox.front();
            shard.inbox.pop_front();
            shard.inflight = true;
        }
        shard.notFull.notify_one();

        processEntry(shard, entry, scratch);

        {
            std::lock_guard<std::mutex> lock(shard.inboxMutex);
            shard.inflight = false;
            if (shard.inbox.empty()) {
                shard.idle.notify_all();
            }
        }
    }
}

void
PredictorPool::processEntry(Shard &shard, const InboxEntry &entry,
                            ReplayScratch &scratch)
{
    std::lock_guard<std::mutex> lock(shard.stateMutex);
    try {
        Predictor &predictor =
            shard.tenantCache->acquire(entry.request.tenant);
        TenantTally &tally = shard.tallies[entry.request.tenant];

        const BranchRecord *records = entry.request.records;
        std::size_t remaining = entry.request.count;
        while (remaining > 0) {
            const std::size_t block =
                std::min(remaining, blockRecords_);
            predictor.replayBlock(records, block, tally.counters,
                                  &scratch);
            records += block;
            remaining -= block;
        }

        ++tally.requests;
        ++shard.servedRequests;
        shard.servedRecords += entry.request.count;
        shard.requestLatency.sample(static_cast<u64>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                SteadyClock::now() - entry.enqueued)
                .count()));
    } catch (...) {
        // Park the first failure for drain(); later requests keep
        // flowing so one bad tenant cannot wedge the shard.
        if (!shard.parkedError) {
            shard.parkedError = std::current_exception();
        }
    }
}

} // namespace bpred
