/**
 * @file
 * LRU cache of live per-tenant predictors with checkpoint spill.
 *
 * A serving shard owns many more tenants than it can afford to keep
 * as live predictor tables. The TenantCache keeps the hot set
 * resident and checkpoints the rest through the framed BPS1
 * snapshot path (predictors/predictor.hh): eviction serializes the
 * predictor with savePredictorState() into an in-memory buffer (or
 * a spill file when a spill directory is configured) and the next
 * acquire() restores it with loadPredictorState(). Because BPS1
 * round-trips are byte-exact, a tenant that has been evicted and
 * restored any number of times is bit-identical to one that stayed
 * resident the whole time — the serving isolation invariant that
 * test_serve checks at pool scale.
 *
 * Not thread-safe: a cache belongs to exactly one pool shard, which
 * serializes access (see serve/predictor_pool.hh).
 */

#pragma once

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "predictors/predictor.hh"
#include "sim/factory.hh"
#include "support/stats.hh"

namespace bpred
{

/** Tallies of cache traffic since construction. */
struct TenantCacheCounters
{
    /** acquire() calls answered by a resident predictor. */
    u64 hits = 0;

    /** Fresh predictors built for first-seen tenants. */
    u64 constructions = 0;

    /** Residents checkpointed to make room (or by force). */
    u64 evictions = 0;

    /** Checkpoints restored back into residency. */
    u64 restores = 0;

    /** Evictions whose checkpoint went to a spill file. */
    u64 spills = 0;
};

/**
 * LRU-of-predictors keyed by tenant id, bounded by a residency
 * capacity; overflow tenants live as BPS1 checkpoint buffers.
 */
class TenantCache
{
  public:
    struct Options
    {
        /** Maximum resident predictors (> 0). */
        std::size_t capacity = 64;

        /**
         * When non-empty, eviction checkpoints are written to
         * "<spillDir>/tenant-<id>.bps1" instead of being held in
         * memory. The directory is created on first spill.
         */
        std::string spillDir;
    };

    /**
     * @param spec Parsed predictor spec every tenant is built from
     *        (one pool serves one configuration).
     * @throws FatalError when capacity is zero.
     */
    TenantCache(PredictorSpec spec, Options options);

    TenantCache(const TenantCache &) = delete;
    TenantCache &operator=(const TenantCache &) = delete;

    /**
     * The resident predictor for @p tenant, constructing a fresh
     * one on first sight or restoring the checkpoint left by a
     * prior eviction. May evict the least-recently-used resident
     * tenant first; residency never exceeds capacity, even
     * transiently during a restore.
     *
     * The reference stays valid until the next acquire()/evict()
     * call touching this cache.
     *
     * @throws FatalError when a checkpoint fails validation (the
     *         cache state is left unchanged).
     */
    Predictor &acquire(u64 tenant);

    /**
     * Checkpoint @p tenant out of residency now.
     *
     * @return True when the tenant was resident (and is now a
     *         checkpoint); false when it was already cold or has
     *         never been seen.
     */
    bool evict(u64 tenant);

    /** Checkpoint every resident tenant. */
    void evictAll();

    /**
     * The framed BPS1 snapshot bytes of @p tenant in its current
     * state, regardless of residency (residency is unchanged).
     *
     * @throws FatalError for a tenant this cache has never seen.
     */
    std::string exportTenant(u64 tenant) const;

    /**
     * Validate @p bytes as a BPS1 snapshot for this cache's spec
     * and adopt it as @p tenant's state, replacing any existing
     * state. The tenant becomes resident (evicting to make room).
     *
     * @throws FatalError on a corrupt or truncated buffer, or a
     *         configuration-fingerprint mismatch; the cache state
     *         is left unchanged.
     */
    void importTenant(u64 tenant, const std::string &bytes);

    /** Currently resident predictors. */
    std::size_t resident() const { return residents.size(); }

    /** Residency bound. */
    std::size_t capacity() const { return capacity_; }

    /** Distinct tenants this cache has state for. */
    std::size_t knownTenants() const;

    /** True when @p tenant currently has a live predictor. */
    bool isResident(u64 tenant) const;

    /** Bytes held in in-memory checkpoints (spilled ones excluded). */
    u64 checkpointBytes() const { return checkpointBytes_; }

    /** Traffic tallies since construction. */
    const TenantCacheCounters &counters() const { return counters_; }

    /** Checkpoint-save wall time per eviction, in microseconds. */
    const Histogram &saveLatencyUs() const { return saveLatency; }

    /** Checkpoint-restore wall time per revival, in microseconds. */
    const Histogram &restoreLatencyUs() const { return restoreLatency; }

    /** The spec tenants are built from. */
    const PredictorSpec &spec() const { return spec_; }

  private:
    struct Resident
    {
        std::unique_ptr<Predictor> predictor;
        std::list<u64>::iterator lruIt;
    };

    /** Evict LRU residents until one slot is free. */
    void makeRoom();

    /** Checkpoint one resident entry (must exist). */
    void evictResident(u64 tenant);

    /** Path of @p tenant's spill file. */
    std::string spillPath(u64 tenant) const;

    /** The checkpoint bytes of an evicted tenant (memory or disk). */
    std::string loadCheckpoint(u64 tenant) const;

    /** Insert an already-validated predictor as resident MRU. */
    Predictor &install(u64 tenant,
                       std::unique_ptr<Predictor> predictor);

    PredictorSpec spec_;
    std::size_t capacity_;
    std::string spillDir;

    std::unordered_map<u64, Resident> residents;
    /** Front = most recently used. */
    std::list<u64> lru;

    /** Evicted tenants held in memory (when not spilling). */
    std::unordered_map<u64, std::string> checkpoints;

    /** Evicted tenants whose checkpoint lives in a spill file. */
    std::unordered_set<u64> spilledTenants;

    TenantCacheCounters counters_;
    Histogram saveLatency;
    Histogram restoreLatency;
    u64 checkpointBytes_ = 0;
    bool spillDirReady = false;
};

} // namespace bpred
