#include "serve/tenant_cache.hh"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/logging.hh"

namespace bpred
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

u64
elapsedUs(SteadyClock::time_point since)
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            SteadyClock::now() - since)
            .count());
}

} // namespace

TenantCache::TenantCache(PredictorSpec spec, Options options)
    : spec_(std::move(spec)),
      capacity_(options.capacity),
      spillDir(std::move(options.spillDir))
{
    if (capacity_ == 0) {
        fatal("tenant cache: zero capacity");
    }
}

Predictor &
TenantCache::acquire(u64 tenant)
{
    const auto it = residents.find(tenant);
    if (it != residents.end()) {
        // Touch to MRU.
        lru.splice(lru.begin(), lru, it->second.lruIt);
        ++counters_.hits;
        return *it->second.predictor;
    }

    const bool has_checkpoint = checkpoints.count(tenant) != 0 ||
        spilledTenants.count(tenant) != 0;
    if (!has_checkpoint) {
        makeRoom();
        ++counters_.constructions;
        return install(tenant, makePredictor(spec_));
    }

    // Restore: validate the checkpoint into a fresh predictor
    // before touching any cache state, so a corrupt buffer leaves
    // the cache exactly as it was.
    const auto started = SteadyClock::now();
    const std::string bytes = loadCheckpoint(tenant);
    std::unique_ptr<Predictor> predictor = makePredictor(spec_);
    std::istringstream stream(bytes);
    loadPredictorState(*predictor, stream);

    makeRoom();
    const auto memory_it = checkpoints.find(tenant);
    if (memory_it != checkpoints.end()) {
        checkpointBytes_ -= memory_it->second.size();
        checkpoints.erase(memory_it);
    } else {
        spilledTenants.erase(tenant);
        std::remove(spillPath(tenant).c_str());
    }
    ++counters_.restores;
    restoreLatency.sample(elapsedUs(started));
    return install(tenant, std::move(predictor));
}

bool
TenantCache::evict(u64 tenant)
{
    if (residents.count(tenant) == 0) {
        return false;
    }
    evictResident(tenant);
    return true;
}

void
TenantCache::evictAll()
{
    while (!lru.empty()) {
        evictResident(lru.back());
    }
}

std::string
TenantCache::exportTenant(u64 tenant) const
{
    const auto it = residents.find(tenant);
    if (it != residents.end()) {
        std::ostringstream os;
        savePredictorState(*it->second.predictor, os);
        return std::move(os).str();
    }
    if (checkpoints.count(tenant) != 0 ||
        spilledTenants.count(tenant) != 0) {
        return loadCheckpoint(tenant);
    }
    fatal("tenant cache: export of unknown tenant " +
          std::to_string(tenant));
}

void
TenantCache::importTenant(u64 tenant, const std::string &bytes)
{
    // Validate first; only adopt state the current spec accepts.
    std::unique_ptr<Predictor> predictor = makePredictor(spec_);
    std::istringstream stream(bytes);
    loadPredictorState(*predictor, stream);

    // Drop whatever state the tenant had before.
    const auto it = residents.find(tenant);
    if (it != residents.end()) {
        lru.erase(it->second.lruIt);
        residents.erase(it);
    }
    const auto memory_it = checkpoints.find(tenant);
    if (memory_it != checkpoints.end()) {
        checkpointBytes_ -= memory_it->second.size();
        checkpoints.erase(memory_it);
    }
    if (spilledTenants.erase(tenant) != 0) {
        std::remove(spillPath(tenant).c_str());
    }

    makeRoom();
    install(tenant, std::move(predictor));
}

std::size_t
TenantCache::knownTenants() const
{
    return residents.size() + checkpoints.size() +
        spilledTenants.size();
}

bool
TenantCache::isResident(u64 tenant) const
{
    return residents.count(tenant) != 0;
}

void
TenantCache::makeRoom()
{
    while (residents.size() >= capacity_) {
        evictResident(lru.back());
    }
}

void
TenantCache::evictResident(u64 tenant)
{
    const auto it = residents.find(tenant);
    assert(it != residents.end());

    const auto started = SteadyClock::now();
    std::ostringstream os;
    savePredictorState(*it->second.predictor, os);
    std::string bytes = std::move(os).str();

    if (!spillDir.empty()) {
        if (!spillDirReady) {
            std::error_code error;
            std::filesystem::create_directories(spillDir, error);
            if (error) {
                fatal("tenant cache: cannot create spill dir '" +
                      spillDir + "': " + error.message());
            }
            spillDirReady = true;
        }
        const std::string path = spillPath(tenant);
        std::ofstream file(path, std::ios::binary);
        file.write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size()));
        if (!file) {
            fatal("tenant cache: cannot write spill file '" + path +
                  "'");
        }
        spilledTenants.insert(tenant);
        ++counters_.spills;
    } else {
        checkpointBytes_ += bytes.size();
        checkpoints.emplace(tenant, std::move(bytes));
    }

    lru.erase(it->second.lruIt);
    residents.erase(it);
    ++counters_.evictions;
    saveLatency.sample(elapsedUs(started));
}

std::string
TenantCache::spillPath(u64 tenant) const
{
    return spillDir + "/tenant-" + std::to_string(tenant) + ".bps1";
}

std::string
TenantCache::loadCheckpoint(u64 tenant) const
{
    const auto it = checkpoints.find(tenant);
    if (it != checkpoints.end()) {
        return it->second;
    }
    const std::string path = spillPath(tenant);
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        fatal("tenant cache: cannot open spill file '" + path + "'");
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    if (!file.good() && !file.eof()) {
        fatal("tenant cache: cannot read spill file '" + path + "'");
    }
    return std::move(contents).str();
}

Predictor &
TenantCache::install(u64 tenant,
                     std::unique_ptr<Predictor> predictor)
{
    lru.push_front(tenant);
    Resident entry;
    entry.predictor = std::move(predictor);
    entry.lruIt = lru.begin();
    Predictor &result = *entry.predictor;
    residents.emplace(tenant, std::move(entry));
    return result;
}

} // namespace bpred
