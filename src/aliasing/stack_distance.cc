#include "aliasing/stack_distance.hh"

#include <cassert>

namespace bpred
{

StackDistanceTracker::StackDistanceTracker()
{
    tree.resize(1024, 0);
}

void
StackDistanceTracker::growTo(u64 position)
{
    if (position < tree.size()) {
        return;
    }
    u64 new_size = tree.size();
    while (position >= new_size) {
        new_size *= 2;
    }
    // Every resident mark is the most-recent timestamp of some key
    // in lastUse, so the tree can be rebuilt directly from the map.
    tree.assign(new_size, 0);
    for (const auto &[key, time] : lastUse) {
        (void)key;
        fenwickAdd(time, +1);
    }
}

void
StackDistanceTracker::fenwickAdd(u64 position, i64 delta)
{
    assert(position >= 1);
    for (u64 i = position; i < tree.size(); i += i & (~i + 1)) {
        tree[i] += delta;
    }
}

i64
StackDistanceTracker::fenwickPrefixSum(u64 position) const
{
    i64 sum = 0;
    for (u64 i = position; i >= 1; i -= i & (~i + 1)) {
        sum += tree[i];
    }
    return sum;
}

u64
StackDistanceTracker::reference(u64 key)
{
    ++clock;
    growTo(clock);

    const auto it = lastUse.find(key);
    u64 distance = infiniteDistance;
    if (it != lastUse.end()) {
        const u64 previous = it->second;
        // Distinct keys referenced strictly after `previous`: one
        // mark per resident key, minus those at or before it.
        const i64 resident = static_cast<i64>(lastUse.size());
        const i64 at_or_before = fenwickPrefixSum(previous);
        distance = static_cast<u64>(resident - at_or_before);
        fenwickAdd(previous, -1);
        it->second = clock;
    } else {
        lastUse.emplace(key, clock);
    }
    fenwickAdd(clock, +1);
    return distance;
}

void
StackDistanceTracker::reset()
{
    tree.assign(1024, 0);
    lastUse.clear();
    clock = 0;
}

} // namespace bpred
