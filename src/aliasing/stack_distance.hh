/**
 * @file
 * LRU stack-distance (last-use distance) measurement.
 *
 * The analytical model (§5.2) is driven by D, "the number of
 * distinct (address, history) pairs that have been encountered
 * since the last occurrence of V". That is exactly the LRU stack
 * distance of V in the reference stream, computed here in
 * O(log T) per reference with a Fenwick tree over timestamps.
 */

#pragma once

#include <unordered_map>
#include <vector>

#include "support/types.hh"

namespace bpred
{

/**
 * Online LRU stack-distance tracker over 64-bit keys.
 *
 * Classic Bennett-Kruskal algorithm: keep, for every key, the
 * timestamp of its most recent reference, and a Fenwick tree with a
 * 1 at each timestamp that is currently some key's most recent
 * reference. The stack distance of a re-reference is the number of
 * 1s strictly after the key's previous timestamp.
 */
class StackDistanceTracker
{
  public:
    /** Distance reported for a first-time (compulsory) reference. */
    static constexpr u64 infiniteDistance = ~u64(0);

    StackDistanceTracker();

    /**
     * Record a reference to @p key.
     *
     * @return The key's LRU stack distance: 0 for an immediate
     *         re-reference, or infiniteDistance for a first
     *         reference.
     */
    u64 reference(u64 key);

    /** Number of distinct keys seen so far. */
    u64 distinctKeys() const { return lastUse.size(); }

    /** Total references so far. */
    u64 references() const { return clock; }

    /** Clear all state. */
    void reset();

  private:
    void fenwickAdd(u64 position, i64 delta);
    i64 fenwickPrefixSum(u64 position) const;
    void growTo(u64 position);

    /** Fenwick tree, 1-indexed. */
    std::vector<i64> tree;
    std::unordered_map<u64, u64> lastUse;
    u64 clock = 0;
};

} // namespace bpred

