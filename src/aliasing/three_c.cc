#include "aliasing/three_c.hh"

#include <unordered_set>

#include "aliasing/fa_lru_table.hh"
#include "aliasing/tagged_table.hh"
#include "predictors/history.hh"
#include "predictors/info_vector.hh"
#include "support/logging.hh"

namespace bpred
{

ThreeCsResult
measureThreeCs(const Trace &trace, const IndexFunction &function)
{
    return measureThreeCsMulti(trace, {function}).front();
}

std::vector<ThreeCsResult>
measureThreeCsMulti(const Trace &trace,
                    const std::vector<IndexFunction> &functions,
                    u64 fa_entries)
{
    if (functions.empty()) {
        fatal("measureThreeCsMulti: no index functions given");
    }
    const unsigned history_bits = functions.front().historyBits;
    for (const IndexFunction &function : functions) {
        if (function.historyBits != history_bits) {
            fatal("measureThreeCsMulti: functions must share "
                  "historyBits");
        }
    }
    if (fa_entries == 0) {
        fa_entries = u64(1) << functions.front().indexBits;
    }

    std::vector<TaggedDirectMappedTable> dm_tables;
    dm_tables.reserve(functions.size());
    for (const IndexFunction &function : functions) {
        dm_tables.emplace_back(function.indexBits);
    }

    FullyAssociativeLruTable fa_table(fa_entries);
    std::unordered_set<u64> seen;
    GlobalHistory history;
    u64 dynamic_branches = 0;
    u64 compulsory = 0;

    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            history.shiftIn(true);
            continue;
        }
        ++dynamic_branches;
        const u64 key =
            packInfoVector(record.pc, history.raw(), history_bits);

        for (std::size_t i = 0; i < functions.size(); ++i) {
            const u64 index = functions[i](record.pc, history.raw());
            dm_tables[i].access(index, key);
        }
        fa_table.access(key);
        if (seen.insert(key).second) {
            ++compulsory;
        }
        history.shiftIn(record.taken);
    }

    std::vector<ThreeCsResult> results;
    results.reserve(functions.size());
    const double compulsory_ratio = dynamic_branches == 0
        ? 0.0
        : static_cast<double>(compulsory) /
            static_cast<double>(dynamic_branches);
    for (std::size_t i = 0; i < functions.size(); ++i) {
        ThreeCsResult result;
        result.function = functions[i];
        result.dynamicBranches = dynamic_branches;
        result.totalAliasing = dm_tables[i].aliasing().ratio();
        result.faMissRatio = fa_table.missStat().ratio();
        result.compulsory = compulsory_ratio;
        results.push_back(result);
    }
    return results;
}

} // namespace bpred
