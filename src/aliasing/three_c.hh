/**
 * @file
 * The three-Cs aliasing decomposition (§2-§3 of the paper).
 */

#pragma once

#include <string>
#include <vector>

#include "aliasing/index_function.hh"
#include "trace/trace.hh"

namespace bpred
{

/**
 * Aliasing measured for one index function over one trace, broken
 * into the paper's three components. All figures are ratios of
 * dynamic conditional branches.
 */
struct ThreeCsResult
{
    /** The index function measured. */
    IndexFunction function;

    /** Dynamic conditional branches observed. */
    u64 dynamicBranches = 0;

    /** Total aliasing ratio of the direct-mapped tagged table. */
    double totalAliasing = 0.0;

    /**
     * Miss ratio of the equal-capacity fully-associative LRU table
     * = compulsory + capacity aliasing.
     */
    double faMissRatio = 0.0;

    /** First-time-reference ratio (compulsory aliasing). */
    double compulsory = 0.0;

    /** faMissRatio - compulsory. */
    double capacity() const { return faMissRatio - compulsory; }

    /**
     * totalAliasing - faMissRatio: the component removable by
     * associativity. Can be marginally negative when LRU makes an
     * unlucky replacement the direct-mapped table avoided.
     */
    double conflict() const { return totalAliasing - faMissRatio; }
};

/**
 * Measure the three-Cs decomposition of @p function over @p trace.
 *
 * Walks the trace once, maintaining the global history (shifting in
 * unconditional branches as taken), and probes both a direct-mapped
 * tagged table indexed by @p function and a fully-associative LRU
 * tagged table of the same entry count with the full
 * (address, history) identity.
 */
ThreeCsResult measureThreeCs(const Trace &trace,
                             const IndexFunction &function);

/**
 * Measure several index functions in one pass over @p trace (the
 * Figure 1 / Figure 2 inner loop). All functions must share the
 * same historyBits; the FA table is sized to 2^indexBits of the
 * first function unless @p fa_entries overrides it.
 */
std::vector<ThreeCsResult>
measureThreeCsMulti(const Trace &trace,
                    const std::vector<IndexFunction> &functions,
                    u64 fa_entries = 0);

} // namespace bpred

