#include "aliasing/tagged_table.hh"

#include <cassert>

namespace bpred
{

TaggedDirectMappedTable::TaggedDirectMappedTable(unsigned index_bits)
    : tags(u64(1) << index_bits, 0),
      valid(u64(1) << index_bits, false),
      indexBits(index_bits)
{
    assert(index_bits >= 1 && index_bits <= 28);
}

bool
TaggedDirectMappedTable::access(u64 index, u64 key)
{
    return probe(index, key) != Outcome::Hit;
}

TaggedDirectMappedTable::Outcome
TaggedDirectMappedTable::probe(u64 index, u64 key)
{
    assert(index < tags.size());
    Outcome outcome = Outcome::Hit;
    if (!valid[index]) {
        outcome = Outcome::Cold;
    } else if (tags[index] != key) {
        outcome = Outcome::Conflict;
    }
    tags[index] = key;
    valid[index] = true;
    aliasStat.sample(outcome != Outcome::Hit);
    return outcome;
}

void
TaggedDirectMappedTable::reset()
{
    std::fill(tags.begin(), tags.end(), 0);
    std::fill(valid.begin(), valid.end(), false);
    aliasStat.reset();
}

} // namespace bpred
