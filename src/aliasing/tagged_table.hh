/**
 * @file
 * Tagged shadow tables for measuring aliasing.
 *
 * Following §2 of the paper: "instead of storing 1-bit or 2-bit
 * predictors in the structure, we store the identity of the last
 * (address, history) pair that accessed the entry. Aliasing occurs
 * when the indexing pair is different from the stored pair."
 */

#pragma once

#include <vector>

#include "support/stats.hh"
#include "support/types.hh"

namespace bpred
{

/**
 * A direct-mapped tagged table: each entry remembers the identity
 * (the full information vector) of the last reference that indexed
 * it. Probing with a different identity is an aliasing occurrence —
 * the analogue of a cache miss with a one-datum line.
 */
class TaggedDirectMappedTable
{
  public:
    /** What a tagged-table reference found. */
    enum class Outcome : u8
    {
        Hit,      ///< Entry held the same identity.
        Cold,     ///< Entry was empty (compulsory).
        Conflict, ///< Entry held a different identity.
    };

    /** @param index_bits log2 of the number of entries. */
    explicit TaggedDirectMappedTable(unsigned index_bits);

    /**
     * Reference entry @p index with identity @p key; the entry then
     * holds @p key.
     *
     * @return true when this reference aliased (miss): the entry was
     *         empty or held a different identity.
     */
    bool access(u64 index, u64 key);

    /**
     * As access(), but distinguishing a cold (first-touch) entry
     * from a genuine identity conflict.
     */
    Outcome probe(u64 index, u64 key);

    /** Number of entries. */
    u64 size() const { return u64(1) << indexBits; }

    /** Aliasing occurrences / references so far. */
    const RatioStat &aliasing() const { return aliasStat; }

    /** Clear all entries and statistics. */
    void reset();

  private:
    std::vector<u64> tags;
    std::vector<bool> valid;
    RatioStat aliasStat;
    unsigned indexBits;
};

} // namespace bpred

