#include "aliasing/skewed_tagged_table.hh"

#include "core/skew.hh"
#include "support/logging.hh"

namespace bpred
{

SkewedTaggedTable::SkewedTaggedTable(unsigned num_ways,
                                     unsigned way_index_bits)
    : wayIndexBits(way_index_bits)
{
    if (num_ways == 0 || num_ways > maxSkewBanks) {
        fatal("SkewedTaggedTable: way count outside the skewing "
              "family");
    }
    if (way_index_bits < 1 || way_index_bits > 28) {
        fatal("SkewedTaggedTable: unreasonable way index width");
    }
    ways.assign(num_ways,
                std::vector<Entry>(u64(1) << way_index_bits));
}

u64
SkewedTaggedTable::totalEntries() const
{
    return ways.size() * (u64(1) << wayIndexBits);
}

bool
SkewedTaggedTable::access(u64 key)
{
    ++clock;

    Entry *victim = nullptr;
    for (unsigned way = 0; way < ways.size(); ++way) {
        Entry &entry =
            ways[way][skewIndex(way, key, wayIndexBits)];
        if (entry.valid && entry.key == key) {
            entry.stamp = clock;
            misses.sample(false);
            return false;
        }
        // Prefer an invalid slot; among valid ones, the oldest.
        const bool better = victim == nullptr ||
            (!entry.valid && victim->valid) ||
            (entry.valid && victim->valid &&
             entry.stamp < victim->stamp);
        if (better) {
            victim = &entry;
        }
    }

    victim->key = key;
    victim->stamp = clock;
    victim->valid = true;
    misses.sample(true);
    return true;
}

void
SkewedTaggedTable::reset()
{
    for (auto &way : ways) {
        std::fill(way.begin(), way.end(), Entry{});
    }
    misses.reset();
    clock = 0;
}

} // namespace bpred
