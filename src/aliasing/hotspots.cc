#include "aliasing/hotspots.hh"

#include <algorithm>
#include <unordered_map>

#include "predictors/history.hh"
#include "predictors/info_vector.hh"

namespace bpred
{

std::vector<ConflictHotspot>
findConflictHotspots(const Trace &trace, const IndexFunction &function,
                     std::size_t top_k)
{
    struct EntryState
    {
        u64 lastKey = 0;
        bool valid = false;
        u64 conflicts = 0;
        std::unordered_map<u64, u64> users;
    };

    std::unordered_map<u64, EntryState> entries;
    GlobalHistory history;

    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            history.shiftIn(true);
            continue;
        }
        const u64 key = packInfoVector(record.pc, history.raw(),
                                       function.historyBits);
        const u64 index = function(record.pc, history.raw());
        EntryState &entry = entries[index];
        if (entry.valid && entry.lastKey != key) {
            ++entry.conflicts;
        }
        entry.lastKey = key;
        entry.valid = true;
        ++entry.users[key];
        history.shiftIn(record.taken);
    }

    std::vector<ConflictHotspot> hotspots;
    hotspots.reserve(entries.size());
    for (const auto &[index, entry] : entries) {
        if (entry.conflicts == 0) {
            continue;
        }
        ConflictHotspot hotspot;
        hotspot.index = index;
        hotspot.conflicts = entry.conflicts;
        hotspot.distinctUsers = entry.users.size();
        for (const auto &[user, count] : entry.users) {
            if (count > hotspot.topUserCount) {
                hotspot.secondUser = hotspot.topUser;
                hotspot.secondUserCount = hotspot.topUserCount;
                hotspot.topUser = user;
                hotspot.topUserCount = count;
            } else if (count > hotspot.secondUserCount) {
                hotspot.secondUser = user;
                hotspot.secondUserCount = count;
            }
        }
        hotspots.push_back(hotspot);
    }

    std::sort(hotspots.begin(), hotspots.end(),
              [](const ConflictHotspot &a, const ConflictHotspot &b) {
                  if (a.conflicts != b.conflicts) {
                      return a.conflicts > b.conflicts;
                  }
                  return a.index < b.index;
              });
    if (hotspots.size() > top_k) {
        hotspots.resize(top_k);
    }
    return hotspots;
}

} // namespace bpred
