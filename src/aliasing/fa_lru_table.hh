/**
 * @file
 * A fully-associative table with LRU replacement.
 *
 * Probing it with (address, history) identities measures
 * compulsory + capacity aliasing (§3.2): a fully-associative table
 * has no conflicts by construction, and LRU is the reference
 * hardware-realizable replacement policy the paper uses.
 */

#pragma once

#include <cassert>
#include <iosfwd>
#include <list>
#include <unordered_map>

#include "support/stats.hh"
#include "support/types.hh"

namespace bpred
{

/**
 * Fully-associative LRU table mapping 64-bit identities to a small
 * payload (a saturating-counter value when used as a predictor, or
 * nothing meaningful when used purely as an aliasing meter).
 */
class FullyAssociativeLruTable
{
  public:
    /** @param capacity Maximum number of resident entries (> 0). */
    explicit FullyAssociativeLruTable(u64 capacity);

    /**
     * Look up @p key without changing table state.
     *
     * @return Pointer to the payload, or nullptr on miss.
     */
    const u8 *peek(u64 key) const;

    /**
     * Reference @p key: on a hit, move it to MRU position and return
     * a pointer to its payload. On a miss, insert it (evicting the
     * LRU entry if the table is full) with payload @p initial and
     * return nullptr. The miss/hit is recorded in missStat().
     */
    u8 *access(u64 key, u8 initial = 0);

    /** Update the payload of a resident key (asserts residency). */
    void setPayload(u64 key, u8 payload);

    /** Maximum entries. */
    u64 capacity() const { return capacity_; }

    /** Current resident entries. */
    u64 size() const { return entries.size(); }

    /** Miss ratio statistics over all access() calls. */
    const RatioStat &missStat() const { return misses; }

    /** Drop all entries and statistics. */
    void reset();

    /**
     * Serialize capacity, the resident entries in MRU-to-LRU order,
     * and the miss statistics. The recency order is part of the
     * observable state (it decides future victims), so the byte
     * stream is canonical: two tables that saw the same reference
     * sequence serialize identically.
     */
    void saveState(std::ostream &os) const;

    /**
     * Restore a saveState() stream into this table.
     *
     * @throws FatalError on a capacity mismatch, an entry count
     *         over capacity, a duplicate key, inconsistent miss
     *         tallies, or truncation.
     */
    void loadState(std::istream &is);

  private:
    struct Entry
    {
        u64 key;
        u8 payload;
    };

    /** MRU at front, LRU at back. */
    std::list<Entry> lruList;
    std::unordered_map<u64, std::list<Entry>::iterator> entries;
    RatioStat misses;
    u64 capacity_;
};

} // namespace bpred

