/**
 * @file
 * Conflict hotspot analysis: which predictor-table entries are
 * fought over, and by whom.
 *
 * A production diagnosis tool layered on the tagged-table
 * machinery: for a given index function, find the entries with the
 * most conflict aliasing and the pair of branch substreams doing
 * most of the fighting at each — the concrete picture behind the
 * aggregate conflict percentages of Figures 1-2.
 */

#pragma once

#include <vector>

#include "aliasing/index_function.hh"
#include "trace/trace.hh"

namespace bpred
{

/** One contended predictor-table entry. */
struct ConflictHotspot
{
    /** Table index of the entry. */
    u64 index = 0;

    /** Conflict occurrences at this entry. */
    u64 conflicts = 0;

    /** Distinct (address, history) identities that used it. */
    u64 distinctUsers = 0;

    /** The two most frequent identities (packed info vectors). */
    u64 topUser = 0;
    u64 secondUser = 0;

    /** References by the top two users. */
    u64 topUserCount = 0;
    u64 secondUserCount = 0;
};

/**
 * Analyze @p trace under @p function and return the @p top_k
 * entries with the most conflict aliasing, most-contended first.
 *
 * Memory note: keeps per-entry user maps only for entries that
 * conflict at least once; traces at the library's default scale
 * fit comfortably.
 */
std::vector<ConflictHotspot>
findConflictHotspots(const Trace &trace, const IndexFunction &function,
                     std::size_t top_k);

} // namespace bpred

