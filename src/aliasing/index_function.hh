/**
 * @file
 * A first-class description of a predictor-table index function.
 *
 * The aliasing experiments (Figures 1 and 2) measure miss ratios of
 * *tagged shadow tables* driven by the same index functions the
 * predictors use; this type lets those experiments name an index
 * function as data.
 */

#pragma once

#include <string>

#include "support/types.hh"

namespace bpred
{

/** Which hashing family an IndexFunction applies. */
enum class IndexKind
{
    GShare,   ///< XOR of address and history (high-aligned).
    GSelect,  ///< Concatenation of history above address bits.
    Address,  ///< Bit truncation of the address alone.
    Skew0,    ///< Skewing function f0.
    Skew1,    ///< Skewing function f1.
    Skew2,    ///< Skewing function f2.
};

/**
 * A concrete index function: a hashing family plus the index width
 * and history length it is instantiated with.
 */
struct IndexFunction
{
    IndexKind kind = IndexKind::GShare;

    /** log2 of the table size being indexed. */
    unsigned indexBits = 10;

    /** Global-history length fed to the function. */
    unsigned historyBits = 4;

    /** Compute the table index for (@p pc, @p history). */
    u64 operator()(Addr pc, History history) const;

    /** Human-readable name, e.g. "gshare/10/h4". */
    std::string name() const;
};

} // namespace bpred

