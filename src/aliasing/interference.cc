#include "aliasing/interference.hh"

#include <unordered_map>

#include "aliasing/tagged_table.hh"
#include "predictors/history.hh"
#include "predictors/info_vector.hh"

namespace bpred
{

double
InterferenceResult::destructiveRatio() const
{
    return dynamicBranches == 0
        ? 0.0
        : static_cast<double>(destructive) /
            static_cast<double>(dynamicBranches);
}

double
InterferenceResult::constructiveRatio() const
{
    return dynamicBranches == 0
        ? 0.0
        : static_cast<double>(constructive) /
            static_cast<double>(dynamicBranches);
}

InterferenceResult
classifyInterference(const Trace &trace, const IndexFunction &function,
                     unsigned counter_bits)
{
    SatCounterArray table(u64(1) << function.indexBits, counter_bits);
    TaggedDirectMappedTable shadow(function.indexBits);
    std::unordered_map<u64, SatCounter> twins;
    GlobalHistory history;
    RatioStat mispredicts;
    InterferenceResult result;

    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            history.shiftIn(true);
            continue;
        }
        ++result.dynamicBranches;

        const u64 key =
            packInfoVector(record.pc, history.raw(), function.historyBits);
        const u64 index = function(record.pc, history.raw());

        const bool real_prediction = table.predictTaken(index);
        auto [twin_it, is_new] =
            twins.try_emplace(key, SatCounter(counter_bits));
        if (is_new) {
            // First encounter: the twin is seeded with the outcome
            // (the unaliased-predictor convention); the reference
            // itself is compulsory, not interference.
            twin_it->second.setStrong(record.taken);
        }
        const bool twin_prediction = twin_it->second.predictTaken();

        const auto outcome = shadow.probe(index, key);
        if (is_new) {
            ++result.compulsory;
        } else if (outcome == TaggedDirectMappedTable::Outcome::Hit) {
            ++result.unaliasedLookups;
        } else if (real_prediction == twin_prediction) {
            ++result.harmless;
        } else if (real_prediction == record.taken) {
            ++result.constructive;
        } else if (twin_prediction == record.taken) {
            ++result.destructive;
        } else {
            // Both wrong: the aliasing changed the prediction but
            // not the outcome quality; count as harmless.
            ++result.harmless;
        }

        mispredicts.sample(real_prediction != record.taken);
        table.update(index, record.taken);
        if (!is_new) {
            twin_it->second.update(record.taken);
        }
        history.shiftIn(record.taken);
    }

    result.mispredictRatio = mispredicts.ratio();
    return result;
}

} // namespace bpred
