/**
 * @file
 * The fully-associative LRU *predictor* of Figure 8.
 */

#pragma once

#include "aliasing/fa_lru_table.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"
#include "support/sat_counter.hh"

namespace bpred
{

/**
 * An N-entry fully-associative LRU table of saturating counters
 * keyed by the full (address, history) identity. Misses fall back
 * to a static always-taken prediction, exactly as in Figure 8 of
 * the paper ("for pairs missing in the fully-associative table, a
 * static prediction always taken was assumed").
 *
 * This structure is not buildable hardware at useful sizes — the
 * paper uses it as the yardstick for how much conflict aliasing a
 * hardware scheme could hope to remove, and gskewed is judged
 * against it.
 */
class FaLruPredictor : public Predictor
{
  public:
    /**
     * @param capacity Entry count N (need not be a power of two).
     * @param history_bits Global-history length k.
     * @param counter_bits Counter width (1 or 2).
     */
    FaLruPredictor(u64 capacity, unsigned history_bits,
                   unsigned counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void notifyUnconditional(Addr pc) override;
    std::string name() const override;

    /**
     * Counter bits plus full-identity tag bits per entry — an
     * honest account of why this design is not cost-effective
     * hardware (§3.3).
     */
    u64 storageBits() const override;

    void reset() override;

    bool supportsSnapshot() const override { return true; }
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

    /** Miss ratio in the underlying table (capacity + compulsory). */
    double missRatio() const { return table.missStat().ratio(); }

  private:
    u64 keyOf(Addr pc) const;

    FullyAssociativeLruTable table;
    GlobalHistory history;
    SatCounter prototype;
    unsigned historyBits;
    unsigned counterBits;
};

} // namespace bpred

