#include "aliasing/fa_lru_table.hh"

#include "support/logging.hh"
#include "support/serialize.hh"

namespace bpred
{

FullyAssociativeLruTable::FullyAssociativeLruTable(u64 capacity)
    : capacity_(capacity)
{
    assert(capacity > 0);
    entries.reserve(capacity);
}

const u8 *
FullyAssociativeLruTable::peek(u64 key) const
{
    const auto it = entries.find(key);
    return it == entries.end() ? nullptr : &it->second->payload;
}

u8 *
FullyAssociativeLruTable::access(u64 key, u8 initial)
{
    const auto it = entries.find(key);
    if (it != entries.end()) {
        misses.sample(false);
        // Move to MRU.
        lruList.splice(lruList.begin(), lruList, it->second);
        return &it->second->payload;
    }

    misses.sample(true);
    if (entries.size() >= capacity_) {
        entries.erase(lruList.back().key);
        lruList.pop_back();
    }
    lruList.push_front({key, initial});
    entries.emplace(key, lruList.begin());
    return nullptr;
}

void
FullyAssociativeLruTable::setPayload(u64 key, u8 payload)
{
    const auto it = entries.find(key);
    assert(it != entries.end());
    it->second->payload = payload;
}

void
FullyAssociativeLruTable::reset()
{
    lruList.clear();
    entries.clear();
    misses.reset();
}

void
FullyAssociativeLruTable::saveState(std::ostream &os) const
{
    putU64(os, capacity_);
    putU64(os, lruList.size());
    for (const Entry &entry : lruList) {
        putU64(os, entry.key);
        putU8(os, entry.payload);
    }
    putU64(os, misses.events());
    putU64(os, misses.total());
}

void
FullyAssociativeLruTable::loadState(std::istream &is)
{
    const u64 stored_capacity = getU64(is);
    if (stored_capacity != capacity_) {
        fatal("fa-lru snapshot: capacity mismatch (stored " +
              std::to_string(stored_capacity) + ", table has " +
              std::to_string(capacity_) + ")");
    }
    const u64 count = getU64(is);
    if (count > capacity_) {
        fatal("fa-lru snapshot: entry count exceeds capacity");
    }
    std::list<Entry> restored;
    std::unordered_map<u64, std::list<Entry>::iterator> index;
    index.reserve(static_cast<std::size_t>(count));
    for (u64 i = 0; i < count; ++i) {
        const u64 key = getU64(is);
        const u8 payload = getU8(is);
        restored.push_back({key, payload});
        if (!index.emplace(key, std::prev(restored.end())).second) {
            fatal("fa-lru snapshot: duplicate key");
        }
    }
    const u64 miss_events = getU64(is);
    const u64 miss_total = getU64(is);
    if (miss_events > miss_total) {
        fatal("fa-lru snapshot: inconsistent miss tallies");
    }
    lruList = std::move(restored);
    entries = std::move(index);
    misses.restore(miss_events, miss_total);
}

} // namespace bpred
