#include "aliasing/fa_lru_table.hh"

namespace bpred
{

FullyAssociativeLruTable::FullyAssociativeLruTable(u64 capacity)
    : capacity_(capacity)
{
    assert(capacity > 0);
    entries.reserve(capacity);
}

const u8 *
FullyAssociativeLruTable::peek(u64 key) const
{
    const auto it = entries.find(key);
    return it == entries.end() ? nullptr : &it->second->payload;
}

u8 *
FullyAssociativeLruTable::access(u64 key, u8 initial)
{
    const auto it = entries.find(key);
    if (it != entries.end()) {
        misses.sample(false);
        // Move to MRU.
        lruList.splice(lruList.begin(), lruList, it->second);
        return &it->second->payload;
    }

    misses.sample(true);
    if (entries.size() >= capacity_) {
        entries.erase(lruList.back().key);
        lruList.pop_back();
    }
    lruList.push_front({key, initial});
    entries.emplace(key, lruList.begin());
    return nullptr;
}

void
FullyAssociativeLruTable::setPayload(u64 key, u8 payload)
{
    const auto it = entries.find(key);
    assert(it != entries.end());
    it->second->payload = payload;
}

void
FullyAssociativeLruTable::reset()
{
    lruList.clear();
    entries.clear();
    misses.reset();
}

} // namespace bpred
