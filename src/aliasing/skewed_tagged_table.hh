/**
 * @file
 * A skewed-associative tagged table — the cache-side ancestor
 * (Seznec & Bodin) of the skewed branch predictor, as a *yardstick*.
 *
 * Figures 1-2 bracket a direct-mapped table's aliasing between
 * itself and a fully-associative LRU table. A skewed-associative
 * tagged table sits between the two: W ways, each indexed by a
 * different skewing function, a hit in any way counts, and misses
 * fill one way. Measuring it shows how much of the
 * conflict-aliasing gap skewed *associativity* alone closes — the
 * property the tag-less majority-vote predictor inherits.
 */

#pragma once

#include <vector>

#include "support/stats.hh"
#include "support/types.hh"

namespace bpred
{

/**
 * W-way skewed-associative tagged table over packed
 * (address, history) identity keys. Way w of size 2^n is indexed
 * by skewIndex(w, key, n); replacement selects the way whose
 * resident entry was least-recently *written* among the candidate
 * slots (a cheap LRU approximation used by skewed caches).
 */
class SkewedTaggedTable
{
  public:
    /**
     * @param ways Number of ways/banks (1..maxSkewBanks).
     * @param way_index_bits log2 of each way's entry count.
     */
    SkewedTaggedTable(unsigned ways, unsigned way_index_bits);

    /**
     * Reference identity @p key: hit if any way holds it (refreshes
     * its timestamp); on a miss, install into the candidate slot
     * with the oldest timestamp.
     *
     * @return true on a miss (aliasing occurrence).
     */
    bool access(u64 key);

    /** Total entries across ways. */
    u64 totalEntries() const;

    /** Miss statistics over all accesses. */
    const RatioStat &missStat() const { return misses; }

    /** Clear entries and statistics. */
    void reset();

  private:
    struct Entry
    {
        u64 key = 0;
        u64 stamp = 0;
        bool valid = false;
    };

    std::vector<std::vector<Entry>> ways;
    RatioStat misses;
    unsigned wayIndexBits;
    u64 clock = 0;
};

} // namespace bpred

