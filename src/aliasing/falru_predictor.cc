#include "aliasing/falru_predictor.hh"

#include "predictors/info_vector.hh"
#include "support/serialize.hh"

namespace bpred
{

FaLruPredictor::FaLruPredictor(u64 capacity, unsigned history_bits,
                               unsigned counter_bits)
    : table(capacity),
      prototype(counter_bits),
      historyBits(history_bits),
      counterBits(counter_bits)
{
}

u64
FaLruPredictor::keyOf(Addr pc) const
{
    return packInfoVector(pc, history.raw(), historyBits);
}

bool
FaLruPredictor::predict(Addr pc)
{
    const u8 *payload = table.peek(keyOf(pc));
    if (payload == nullptr) {
        return true; // static always-taken fallback
    }
    SatCounter counter(counterBits, *payload);
    return counter.predictTaken();
}

void
FaLruPredictor::update(Addr pc, bool taken)
{
    const u64 key = keyOf(pc);
    u8 *payload = table.access(key);
    if (payload == nullptr) {
        // Fresh entry: initialize strongly toward the outcome.
        SatCounter counter(counterBits);
        counter.setStrong(taken);
        table.setPayload(key, counter.value());
    } else {
        SatCounter counter(counterBits, *payload);
        counter.update(taken);
        *payload = counter.value();
    }
    history.shiftIn(taken);
}

void
FaLruPredictor::notifyUnconditional(Addr)
{
    history.shiftIn(true);
}

std::string
FaLruPredictor::name() const
{
    return "fa-lru-" + std::to_string(table.capacity()) + "-h" +
        std::to_string(historyBits);
}

u64
FaLruPredictor::storageBits() const
{
    // Identity tag: address bits (conservatively 30) + history bits.
    const u64 tag_bits = 30 + historyBits;
    return table.capacity() * (counterBits + tag_bits);
}

void
FaLruPredictor::reset()
{
    table.reset();
    history.reset();
}

void
FaLruPredictor::saveState(std::ostream &os) const
{
    table.saveState(os);
    putU64(os, history.raw());
}

void
FaLruPredictor::loadState(std::istream &is)
{
    table.loadState(is);
    history.set(getU64(is));
}

} // namespace bpred
