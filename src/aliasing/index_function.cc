#include "aliasing/index_function.hh"

#include "core/skew.hh"
#include "predictors/info_vector.hh"
#include "support/logging.hh"

namespace bpred
{

u64
IndexFunction::operator()(Addr pc, History history) const
{
    switch (kind) {
      case IndexKind::GShare:
        return gshareIndex(pc, history, historyBits, indexBits);
      case IndexKind::GSelect:
        return gselectIndex(pc, history, historyBits, indexBits);
      case IndexKind::Address:
        return addressIndex(pc, indexBits);
      case IndexKind::Skew0:
      case IndexKind::Skew1:
      case IndexKind::Skew2: {
        const unsigned bank =
            static_cast<unsigned>(kind) -
            static_cast<unsigned>(IndexKind::Skew0);
        const u64 v = packInfoVector(pc, history, historyBits);
        return skewIndex(bank, v, indexBits);
      }
      default:
        panic("IndexFunction: bad kind");
    }
}

std::string
IndexFunction::name() const
{
    std::string base;
    switch (kind) {
      case IndexKind::GShare:
        base = "gshare";
        break;
      case IndexKind::GSelect:
        base = "gselect";
        break;
      case IndexKind::Address:
        base = "address";
        break;
      case IndexKind::Skew0:
        base = "skew-f0";
        break;
      case IndexKind::Skew1:
        base = "skew-f1";
        break;
      case IndexKind::Skew2:
        base = "skew-f2";
        break;
    }
    return base + "/" + std::to_string(indexBits) + "/h" +
        std::to_string(historyBits);
}

} // namespace bpred
