/**
 * @file
 * Destructive / harmless / constructive aliasing classification
 * (Young, Gloy & Smith's taxonomy, cited in §1 of the paper).
 */

#pragma once

#include "aliasing/index_function.hh"
#include "support/sat_counter.hh"
#include "support/stats.hh"
#include "trace/trace.hh"

namespace bpred
{

/**
 * Per-lookup interference classification for a single-bank,
 * tag-less predictor table.
 */
struct InterferenceResult
{
    /** Dynamic conditional branches observed. */
    u64 dynamicBranches = 0;

    /**
     * First encounters of an (address, history) pair. Not
     * classified as interference — the unaliased twin has no
     * meaningful prediction yet (matching Table 2's convention of
     * not charging compulsory references).
     */
    u64 compulsory = 0;

    /** Lookups whose entry last served the same (addr, hist) pair. */
    u64 unaliasedLookups = 0;

    /** Aliased lookups that predicted as the unaliased twin would. */
    u64 harmless = 0;

    /**
     * Aliased lookups that differed from the unaliased twin and
     * were wrong (the twin would have been right).
     */
    u64 destructive = 0;

    /**
     * Aliased lookups that differed from the unaliased twin and
     * were right (the twin would have been wrong).
     */
    u64 constructive = 0;

    /** Overall misprediction ratio of the aliased table. */
    double mispredictRatio = 0.0;

    /** destructive / dynamicBranches. */
    double destructiveRatio() const;

    /** constructive / dynamicBranches. */
    double constructiveRatio() const;
};

/**
 * Run a tag-less counter table indexed by @p function over
 * @p trace side-by-side with an ideal unaliased predictor, and
 * classify every aliased lookup.
 *
 * "Aliased" means the tagged shadow of the entry last served a
 * different (address, history) pair. The unaliased twin is a
 * private counter per pair trained on the same stream.
 *
 * @param counter_bits Width of both the real and twin counters.
 */
InterferenceResult classifyInterference(const Trace &trace,
                                        const IndexFunction &function,
                                        unsigned counter_bits = 2);

} // namespace bpred

