/**
 * @file
 * A first-order pipeline cost model: what a misprediction ratio
 * means for CPI.
 *
 * The paper's motivation (§1) is that deep, wide pipelines make
 * misprediction the ILP bottleneck. This analytic model converts
 * the library's misprediction ratios into cycles per instruction
 * so experiments can be read in end-performance terms:
 *
 *   CPI = CPI_base + f_branch * m * penalty
 *
 * with f_branch the conditional-branch density, m the
 * misprediction ratio and penalty the refill depth in cycles.
 */

#pragma once

#include "sim/driver.hh"

namespace bpred
{

/** Machine parameters of the first-order model. */
struct PipelineParams
{
    /** CPI with perfect branch prediction. */
    double baseCpi = 0.5; // a 2-wide machine's ideal

    /** Conditional branches per instruction. */
    double branchDensity = 0.15;

    /** Cycles lost per misprediction (front-end refill depth). */
    double mispredictPenalty = 12.0;
};

/** Derived performance figures. */
struct PipelineEstimate
{
    /** Cycles per instruction including misprediction stalls. */
    double cpi = 0.0;

    /** Fraction of all cycles spent in misprediction repair. */
    double stallFraction = 0.0;

    /** Speedup over a reference CPI (1.0 = equal). */
    double speedupOver(const PipelineEstimate &reference) const;
};

/** Apply the model to a misprediction ratio in [0, 1]. */
PipelineEstimate estimatePipeline(double mispredict_ratio,
                                  const PipelineParams &params = {});

/** Convenience overload for a simulation result. */
PipelineEstimate estimatePipeline(const SimResult &result,
                                  const PipelineParams &params = {});

/**
 * The misprediction ratio at which half of all cycles are stalls —
 * a readable scale marker for a given machine.
 */
double halfStallMispredictRatio(const PipelineParams &params = {});

} // namespace bpred

