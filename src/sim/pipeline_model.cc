#include "sim/pipeline_model.hh"

#include <cassert>

#include "support/logging.hh"

namespace bpred
{

double
PipelineEstimate::speedupOver(const PipelineEstimate &reference) const
{
    assert(cpi > 0.0);
    return reference.cpi / cpi;
}

PipelineEstimate
estimatePipeline(double mispredict_ratio, const PipelineParams &params)
{
    if (mispredict_ratio < 0.0 || mispredict_ratio > 1.0) {
        fatal("estimatePipeline: misprediction ratio out of range");
    }
    if (params.baseCpi <= 0.0 || params.branchDensity < 0.0 ||
        params.mispredictPenalty < 0.0) {
        fatal("estimatePipeline: invalid machine parameters");
    }
    PipelineEstimate estimate;
    const double stall_cpi = params.branchDensity *
        mispredict_ratio * params.mispredictPenalty;
    estimate.cpi = params.baseCpi + stall_cpi;
    estimate.stallFraction = stall_cpi / estimate.cpi;
    return estimate;
}

PipelineEstimate
estimatePipeline(const SimResult &result, const PipelineParams &params)
{
    return estimatePipeline(result.mispredictRatio(), params);
}

double
halfStallMispredictRatio(const PipelineParams &params)
{
    if (params.branchDensity <= 0.0 ||
        params.mispredictPenalty <= 0.0) {
        fatal("halfStallMispredictRatio: degenerate machine");
    }
    // stall == base  <=>  m = base / (density * penalty)
    const double ratio = params.baseCpi /
        (params.branchDensity * params.mispredictPenalty);
    return ratio > 1.0 ? 1.0 : ratio;
}

} // namespace bpred
