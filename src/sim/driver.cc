#include "sim/driver.hh"

#include <cstdio>

#include "sim/session.hh"

namespace bpred
{

namespace
{

std::string
formatPc(Addr pc)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "0x%llx",
                  static_cast<unsigned long long>(pc));
    return buffer;
}

} // namespace

JsonValue
SimResult::toJson() const
{
    JsonValue result = JsonValue::object();
    result["predictor"] = predictorName;
    result["trace"] = traceName;
    result["conditionals"] = conditionals;
    result["mispredicts"] = mispredicts;
    result["mispredict_ratio"] = mispredictRatio();
    result["storage_bits"] = storageBits;
    if (windowSize > 0) {
        result["window_size"] = windowSize;
        JsonValue series = JsonValue::array();
        for (const WindowSample &window : windows) {
            JsonValue sample = JsonValue::object();
            sample["branches"] = window.branches;
            sample["mispredicts"] = window.mispredicts;
            sample["ratio"] = window.ratio();
            series.push(std::move(sample));
        }
        result["windows"] = std::move(series);
    }
    if (!topSites.empty()) {
        JsonValue sites = JsonValue::array();
        for (const SiteCount &site : topSites) {
            JsonValue entry = JsonValue::object();
            entry["pc"] = formatPc(site.pc);
            entry["mispredicts"] = site.mispredicts;
            entry["overcount"] = site.overcount;
            sites.push(std::move(entry));
        }
        result["top_sites"] = std::move(sites);
    }
    return result;
}

SimResult
simulateWithOptions(Predictor &predictor, const Trace &trace,
                    const SimOptions &options)
{
    // The batch loop is a one-chunk streaming session: the hot loop
    // itself lives in SimSession::feed() (sim/session.cc), so batch
    // and streaming runs cannot diverge.
    SimSession session(predictor, options, trace.name());
    session.feed(trace);
    return session.finish();
}

SimResult
simulate(Predictor &predictor, const Trace &trace)
{
    return simulateWithOptions(predictor, trace, SimOptions());
}

} // namespace bpred
