#include "sim/driver.hh"

#include <cstdio>

#include "support/logging.hh"
#include "support/probe.hh"
#include "support/topk.hh"

namespace bpred
{

namespace
{

std::string
formatPc(Addr pc)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "0x%llx",
                  static_cast<unsigned long long>(pc));
    return buffer;
}

} // namespace

JsonValue
SimResult::toJson() const
{
    JsonValue result = JsonValue::object();
    result["predictor"] = predictorName;
    result["trace"] = traceName;
    result["conditionals"] = conditionals;
    result["mispredicts"] = mispredicts;
    result["mispredict_ratio"] = mispredictRatio();
    result["storage_bits"] = storageBits;
    if (windowSize > 0) {
        result["window_size"] = windowSize;
        JsonValue series = JsonValue::array();
        for (const WindowSample &window : windows) {
            JsonValue sample = JsonValue::object();
            sample["branches"] = window.branches;
            sample["mispredicts"] = window.mispredicts;
            sample["ratio"] = window.ratio();
            series.push(std::move(sample));
        }
        result["windows"] = std::move(series);
    }
    if (!topSites.empty()) {
        JsonValue sites = JsonValue::array();
        for (const SiteCount &site : topSites) {
            JsonValue entry = JsonValue::object();
            entry["pc"] = formatPc(site.pc);
            entry["mispredicts"] = site.mispredicts;
            entry["overcount"] = site.overcount;
            sites.push(std::move(entry));
        }
        result["top_sites"] = std::move(sites);
    }
    return result;
}

SimResult
simulateWithOptions(Predictor &predictor, const Trace &trace,
                    const SimOptions &options)
{
    SimResult result;
    result.predictorName = predictor.name();
    result.traceName = trace.name();
    result.storageBits = predictor.storageBits();
    result.windowSize = options.windowSize;

    ProbeSink *previous_probe = nullptr;
    if (options.probe) {
        previous_probe = predictor.attachProbe(options.probe);
    }

    TopKCounter sites(options.topSites > 0 ? options.topSites : 1);
    WindowSample window;
    u64 seen = 0;
    u64 since_flush = 0;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            predictor.notifyUnconditional(record.pc);
            continue;
        }
        // Fused fast path: one virtual dispatch and one index
        // computation per branch (contract-equivalent to
        // predict() + update(); test_predictor_contract guards it).
        const bool prediction =
            predictor.predictAndUpdate(record.pc, record.taken)
                .prediction;
        ++seen;
        if (options.flushInterval &&
            ++since_flush == options.flushInterval) {
            predictor.reset();
            since_flush = 0;
        }
        if (seen <= options.warmupBranches) {
            continue;
        }
        ++result.conditionals;
        const bool wrong = prediction != record.taken;
        if (wrong) {
            ++result.mispredicts;
            if (options.topSites > 0) {
                sites.add(record.pc);
            }
        }
        if (options.windowSize > 0) {
            ++window.branches;
            if (wrong) {
                ++window.mispredicts;
            }
            if (window.branches == options.windowSize) {
                result.windows.push_back(window);
                window = WindowSample();
            }
        }
    }
    if (options.windowSize > 0 && window.branches > 0) {
        result.windows.push_back(window);
    }
    if (options.topSites > 0) {
        for (const TopKCounter::Item &item : sites.items()) {
            result.topSites.push_back(
                {item.key, item.count, item.overcount});
        }
    }
    if (options.probe) {
        predictor.attachProbe(previous_probe);
    }
    return result;
}

SimResult
simulate(Predictor &predictor, const Trace &trace)
{
    return simulateWithOptions(predictor, trace, SimOptions());
}

SimResult
simulateWithWarmup(Predictor &predictor, const Trace &trace,
                   u64 warmup_branches)
{
    SimOptions options;
    options.warmupBranches = warmup_branches;
    return simulateWithOptions(predictor, trace, options);
}

SimResult
simulateWithFlush(Predictor &predictor, const Trace &trace,
                  u64 flush_interval)
{
    if (flush_interval == 0) {
        fatal("simulateWithFlush: zero flush interval");
    }
    SimOptions options;
    options.flushInterval = flush_interval;
    return simulateWithOptions(predictor, trace, options);
}

} // namespace bpred
