#include "sim/driver.hh"

#include "support/logging.hh"

namespace bpred
{

SimResult
simulate(Predictor &predictor, const Trace &trace)
{
    return simulateWithWarmup(predictor, trace, 0);
}

SimResult
simulateWithFlush(Predictor &predictor, const Trace &trace,
                  u64 flush_interval)
{
    if (flush_interval == 0) {
        fatal("simulateWithFlush: zero flush interval");
    }
    SimResult result;
    result.predictorName = predictor.name();
    result.traceName = trace.name();
    result.storageBits = predictor.storageBits();

    u64 since_flush = 0;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            predictor.notifyUnconditional(record.pc);
            continue;
        }
        const bool prediction = predictor.predict(record.pc);
        predictor.update(record.pc, record.taken);
        ++result.conditionals;
        if (prediction != record.taken) {
            ++result.mispredicts;
        }
        if (++since_flush == flush_interval) {
            predictor.reset();
            since_flush = 0;
        }
    }
    return result;
}

SimResult
simulateWithWarmup(Predictor &predictor, const Trace &trace,
                   u64 warmup_branches)
{
    SimResult result;
    result.predictorName = predictor.name();
    result.traceName = trace.name();
    result.storageBits = predictor.storageBits();

    u64 seen = 0;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            predictor.notifyUnconditional(record.pc);
            continue;
        }
        const bool prediction = predictor.predict(record.pc);
        predictor.update(record.pc, record.taken);
        ++seen;
        if (seen <= warmup_branches) {
            continue;
        }
        ++result.conditionals;
        if (prediction != record.taken) {
            ++result.mispredicts;
        }
    }
    return result;
}

} // namespace bpred
