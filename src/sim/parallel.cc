#include "sim/parallel.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "sim/factory.hh"
#include "sim/gang.hh"
#include "support/logging.hh"
#include "support/tracing.hh"

namespace bpred
{

namespace
{

/**
 * Cells per gang: BPRED_GANG_WIDTH when set (1 restores the
 * per-cell path), else jobs/threads so every worker still owns at
 * least one scheduling unit — ganging must never cost parallelism.
 */
std::size_t
resolveGangWidth(std::size_t total_jobs, unsigned threads)
{
    // Read before workers start; test_parallel's setenv happens in
    // single-threaded test setup, never concurrently with a sweep.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *env = std::getenv("BPRED_GANG_WIDTH");
        env != nullptr && *env != '\0') {
        try {
            const unsigned long parsed = std::stoul(env);
            if (parsed >= 1 && parsed <= 4096) {
                return static_cast<std::size_t>(parsed);
            }
        } catch (const std::exception &) {
            // fall through to the warning
        }
        warn("ignoring invalid BPRED_GANG_WIDTH value");
    }
    const std::size_t workers = threads == 0 ? 1 : threads;
    return std::max<std::size_t>(1, total_jobs / workers);
}

u64
steadyNowNs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Rebuild a parked cell exception with the failing cell's identity
 * (index, label, trace) and the worker that ran it prepended to the
 * message. FatalError stays a FatalError and anything else derived
 * from std::exception surfaces as std::runtime_error (FatalError
 * IS-A runtime_error, so catch sites keyed on either type keep
 * working); foreign exceptions pass through untouched.
 */
std::exception_ptr
annotateCellError(std::exception_ptr error, std::size_t cell,
                  const std::string &label, const std::string &trace)
{
    std::string where = "sweep cell #" + std::to_string(cell) + " [" +
        (label.empty() ? "factory" : label) + " @ " + trace +
        "] on worker " +
        std::to_string(detail::currentWorkerIndex()) + ": ";
    try {
        std::rethrow_exception(error);
    } catch (const FatalError &e) {
        return std::make_exception_ptr(FatalError(where + e.what()));
    } catch (const std::exception &e) {
        return std::make_exception_ptr(
            std::runtime_error(where + e.what()));
    } catch (...) {
        return error;
    }
}

} // namespace

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0) {
        return requested;
    }
    // Read before workers start; test_parallel's setenv happens in
    // single-threaded test setup, never concurrently with a sweep.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *env = std::getenv("BPRED_THREADS");
        env != nullptr && *env != '\0') {
        try {
            const unsigned long parsed = std::stoul(env);
            if (parsed >= 1 && parsed <= 4096) {
                return static_cast<unsigned>(parsed);
            }
        } catch (const std::exception &) {
            // fall through to the warning
        }
        warn("ignoring invalid BPRED_THREADS value");
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

namespace detail
{

namespace
{

thread_local unsigned tlsWorkerIndex = 0;

} // namespace

unsigned
currentWorkerIndex()
{
    return tlsWorkerIndex;
}

void
parallelForIndexed(std::size_t count,
                   const std::function<void(std::size_t)> &body,
                   unsigned threads, PoolStats *stats)
{
    if (stats) {
        *stats = PoolStats();
    }
    if (count == 0) {
        return;
    }
    const std::size_t workers =
        std::min<std::size_t>(threads == 0 ? 1 : threads, count);
    const u64 poolStart = stats ? steadyNowNs() : 0;
    if (workers <= 1) {
        // Degenerate pool: run inline, in order, on this thread.
        if (stats) {
            stats->workers = 1;
            stats->busyNs.assign(1, 0);
            stats->claimed.assign(1, 0);
        }
        for (std::size_t index = 0; index < count; ++index) {
            const u64 jobStart = stats ? steadyNowNs() : 0;
            body(index);
            if (stats) {
                stats->busyNs[0] += steadyNowNs() - jobStart;
                ++stats->claimed[0];
            }
        }
        if (stats) {
            stats->wallNs = steadyNowNs() - poolStart;
        }
        return;
    }

    if (stats) {
        stats->workers = static_cast<unsigned>(workers);
        stats->busyNs.assign(workers, 0);
        stats->claimed.assign(workers, 0);
    }

    // Self-scheduling work distribution: workers claim the next
    // unclaimed index until the queue is drained, so a skewed cell
    // cost never strands work behind a slow static partition.
    std::atomic<std::size_t> cursor{0};
    std::vector<std::exception_ptr> errors(count);
    auto worker = [&](std::size_t slot) {
        tlsWorkerIndex = static_cast<unsigned>(slot);
        if (trace::enabled()) {
            trace::setThreadName("sweep-worker-" +
                                 std::to_string(slot));
        }
        u64 busy = 0;
        u64 claimed = 0;
        while (true) {
            const std::size_t index =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (index >= count) {
                break;
            }
            const u64 jobStart = stats ? steadyNowNs() : 0;
            try {
                body(index);
            } catch (...) {
                // Park the exception in the job's slot; keep the
                // worker alive so one bad cell cannot wedge the
                // pool or starve the remaining jobs.
                errors[index] = std::current_exception();
            }
            if (stats) {
                busy += steadyNowNs() - jobStart;
                ++claimed;
            }
        }
        if (stats) {
            stats->busyNs[slot] = busy;
            stats->claimed[slot] = claimed;
        }
        tlsWorkerIndex = 0;
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        pool.emplace_back(worker, i);
    }
    for (std::thread &thread : pool) {
        thread.join();
    }
    if (stats) {
        stats->wallNs = steadyNowNs() - poolStart;
    }
    for (const std::exception_ptr &error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

} // namespace detail

SweepRunner::SweepRunner(unsigned threads, std::size_t block_records)
    : threadCount(resolveThreadCount(threads)),
      blockRecords_(block_records ? block_records
                                  : defaultReplayBlockRecords)
{
}

std::size_t
SweepRunner::enqueue(PredictorFactory factory, const Trace &trace,
                     SimOptions options, std::string label)
{
    if (!factory) {
        fatal("SweepRunner: empty predictor factory");
    }
    jobs.push_back(
        {std::move(factory), &trace, options, std::move(label)});
    return jobs.size() - 1;
}

std::size_t
SweepRunner::enqueue(const std::string &spec, const Trace &trace,
                     SimOptions options)
{
    return enqueue([spec] { return makePredictor(spec); }, trace,
                   options, spec);
}

std::vector<SimResult>
SweepRunner::run()
{
    std::vector<Job> batch;
    batch.swap(jobs);
    TRACE_SCOPE("sweep", "run", 0, batch.size());
    std::vector<SimResult> results(batch.size());
    std::vector<std::exception_ptr> errors(batch.size());

    // Group submission-order runs of same-trace jobs into gangs of
    // at most `width` cells. Each gang is one scheduling unit that
    // streams its trace exactly once, every member replaying each
    // cache-resident block in turn (sim/gang.hh).
    const std::size_t width =
        resolveGangWidth(batch.size(), threadCount);
    std::vector<std::vector<std::size_t>> gangs;
    std::unordered_map<const Trace *, std::size_t> open;
    for (std::size_t index = 0; index < batch.size(); ++index) {
        const Trace *trace = batch[index].trace;
        const auto it = open.find(trace);
        if (it == open.end() || gangs[it->second].size() >= width) {
            open[trace] = gangs.size();
            gangs.push_back({index});
        } else {
            gangs[it->second].push_back(index);
        }
    }

    detail::PoolStats pool;
    detail::parallelForIndexed(
        gangs.size(),
        [&](std::size_t gang) {
            runGang(batch, gangs[gang], results, errors);
        },
        threadCount, &pool);

    recordRunMetrics(batch, gangs, errors, pool);

    // runGang parks every failure under its job's index, so the
    // lowest-index exception wins regardless of gang shape —
    // exactly the pre-gang per-cell contract.
    for (const std::exception_ptr &error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
    return results;
}

void
SweepRunner::recordRunMetrics(
    const std::vector<Job> &batch,
    const std::vector<std::vector<std::size_t>> &gangs,
    const std::vector<std::exception_ptr> &errors,
    const detail::PoolStats &pool)
{
    u64 failed = 0;
    for (const std::exception_ptr &error : errors) {
        failed += error ? 1 : 0;
    }

    // Fold this run's deltas into the runner-local registry and
    // mirror them into the process-wide engineStats() registry;
    // StatRegistry is not thread-safe, so the global copy happens
    // under its companion mutex (run() itself executes on the one
    // coordinating thread — the pool has already joined).
    auto record = [&](StatRegistry &stats) {
        ++stats.counter("sweep.runs");
        stats.counter("sweep.cells") += batch.size();
        stats.counter("sweep.gangs") += gangs.size();
        stats.counter("sweep.errors") += failed;
        Histogram &occupancy = stats.histogram("sweep.gang_occupancy");
        for (const std::vector<std::size_t> &gang : gangs) {
            occupancy.sample(gang.size());
        }
        stats.running("sweep.wall_seconds")
            .sample(double(pool.wallNs) / 1e9);
        RunningStat &busy = stats.running("sweep.worker_busy_seconds");
        RunningStat &idle = stats.running("sweep.worker_idle_seconds");
        RunningStat &share = stats.running("sweep.worker_busy_fraction");
        RunningStat &claims = stats.running("sweep.gangs_claimed");
        for (unsigned slot = 0; slot < pool.workers; ++slot) {
            const u64 busyNs = pool.busyNs[slot];
            const u64 idleNs =
                pool.wallNs > busyNs ? pool.wallNs - busyNs : 0;
            busy.sample(double(busyNs) / 1e9);
            idle.sample(double(idleNs) / 1e9);
            if (pool.wallNs > 0) {
                share.sample(double(busyNs) / double(pool.wallNs));
            }
            claims.sample(double(pool.claimed[slot]));
        }
    };
    record(metrics_);
    {
        std::lock_guard<std::mutex> hold(engineStatsMutex());
        record(engineStats());
    }
}

void
SweepRunner::runGang(const std::vector<Job> &batch,
                     const std::vector<std::size_t> &members,
                     std::vector<SimResult> &results,
                     std::vector<std::exception_ptr> &errors) const
{
    TRACE_SCOPE("sweep", "gang", members.front(), members.size());
    if (members.size() == 1) {
        // Singleton gangs (width 1, or a trace with one cell) keep
        // the plain per-cell path.
        const std::size_t index = members.front();
        const Job &job = batch[index];
        try {
            std::unique_ptr<Predictor> predictor = job.factory();
            if (!predictor) {
                fatal("SweepRunner: factory returned a null "
                      "predictor");
            }
            results[index] = simulateWithOptions(
                *predictor, *job.trace, job.options);
        } catch (...) {
            TRACE_INSTANT("sweep", "cell-error");
            errors[index] = annotateCellError(
                std::current_exception(), index, job.label,
                job.trace->name());
        }
        return;
    }

    // Factories run here on the worker thread, like the per-cell
    // path; a failed factory parks its error and drops that member,
    // the rest of the gang replays on.
    GangSession gang(blockRecords_);
    std::vector<std::unique_ptr<Predictor>> predictors;
    std::vector<std::size_t> enrolled;
    predictors.reserve(members.size());
    enrolled.reserve(members.size());
    for (const std::size_t index : members) {
        const Job &job = batch[index];
        try {
            std::unique_ptr<Predictor> predictor = job.factory();
            if (!predictor) {
                fatal("SweepRunner: factory returned a null "
                      "predictor");
            }
            gang.add(*predictor, job.options, job.trace->name());
            predictors.push_back(std::move(predictor));
            enrolled.push_back(index);
        } catch (...) {
            TRACE_INSTANT("sweep", "cell-error");
            errors[index] = annotateCellError(
                std::current_exception(), index, job.label,
                job.trace->name());
        }
    }
    if (enrolled.empty()) {
        return;
    }

    gang.feed(*batch[members.front()].trace);
    std::vector<SimResult> gangResults = gang.finish();
    for (std::size_t slot = 0; slot < enrolled.size(); ++slot) {
        const std::size_t index = enrolled[slot];
        if (std::exception_ptr error = gang.memberError(slot)) {
            TRACE_INSTANT("sweep", "cell-error");
            errors[index] = annotateCellError(
                error, index, batch[index].label,
                batch[index].trace->name());
        } else {
            results[index] = std::move(gangResults[slot]);
        }
    }
}

} // namespace bpred
