#include "sim/parallel.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "sim/factory.hh"
#include "sim/gang.hh"
#include "support/logging.hh"

namespace bpred
{

namespace
{

/**
 * Cells per gang: BPRED_GANG_WIDTH when set (1 restores the
 * per-cell path), else jobs/threads so every worker still owns at
 * least one scheduling unit — ganging must never cost parallelism.
 */
std::size_t
resolveGangWidth(std::size_t total_jobs, unsigned threads)
{
    if (const char *env = std::getenv("BPRED_GANG_WIDTH");
        env != nullptr && *env != '\0') {
        try {
            const unsigned long parsed = std::stoul(env);
            if (parsed >= 1 && parsed <= 4096) {
                return static_cast<std::size_t>(parsed);
            }
        } catch (const std::exception &) {
            // fall through to the warning
        }
        warn("ignoring invalid BPRED_GANG_WIDTH value");
    }
    const std::size_t workers = threads == 0 ? 1 : threads;
    return std::max<std::size_t>(1, total_jobs / workers);
}

} // namespace

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0) {
        return requested;
    }
    if (const char *env = std::getenv("BPRED_THREADS");
        env != nullptr && *env != '\0') {
        try {
            const unsigned long parsed = std::stoul(env);
            if (parsed >= 1 && parsed <= 4096) {
                return static_cast<unsigned>(parsed);
            }
        } catch (const std::exception &) {
            // fall through to the warning
        }
        warn("ignoring invalid BPRED_THREADS value");
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

namespace detail
{

void
parallelForIndexed(std::size_t count,
                   const std::function<void(std::size_t)> &body,
                   unsigned threads)
{
    if (count == 0) {
        return;
    }
    const std::size_t workers =
        std::min<std::size_t>(threads == 0 ? 1 : threads, count);
    if (workers <= 1) {
        // Degenerate pool: run inline, in order, on this thread.
        for (std::size_t index = 0; index < count; ++index) {
            body(index);
        }
        return;
    }

    // Self-scheduling work distribution: workers claim the next
    // unclaimed index until the queue is drained, so a skewed cell
    // cost never strands work behind a slow static partition.
    std::atomic<std::size_t> cursor{0};
    std::vector<std::exception_ptr> errors(count);
    auto worker = [&] {
        while (true) {
            const std::size_t index =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (index >= count) {
                return;
            }
            try {
                body(index);
            } catch (...) {
                // Park the exception in the job's slot; keep the
                // worker alive so one bad cell cannot wedge the
                // pool or starve the remaining jobs.
                errors[index] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        pool.emplace_back(worker);
    }
    for (std::thread &thread : pool) {
        thread.join();
    }
    for (const std::exception_ptr &error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

} // namespace detail

SweepRunner::SweepRunner(unsigned threads, std::size_t block_records)
    : threadCount(resolveThreadCount(threads)),
      blockRecords_(block_records ? block_records
                                  : defaultReplayBlockRecords)
{
}

std::size_t
SweepRunner::enqueue(PredictorFactory factory, const Trace &trace,
                     SimOptions options)
{
    if (!factory) {
        fatal("SweepRunner: empty predictor factory");
    }
    jobs.push_back({std::move(factory), &trace, options});
    return jobs.size() - 1;
}

std::size_t
SweepRunner::enqueue(const std::string &spec, const Trace &trace,
                     SimOptions options)
{
    return enqueue([spec] { return makePredictor(spec); }, trace,
                   options);
}

std::vector<SimResult>
SweepRunner::run()
{
    std::vector<Job> batch;
    batch.swap(jobs);
    std::vector<SimResult> results(batch.size());
    std::vector<std::exception_ptr> errors(batch.size());

    // Group submission-order runs of same-trace jobs into gangs of
    // at most `width` cells. Each gang is one scheduling unit that
    // streams its trace exactly once, every member replaying each
    // cache-resident block in turn (sim/gang.hh).
    const std::size_t width =
        resolveGangWidth(batch.size(), threadCount);
    std::vector<std::vector<std::size_t>> gangs;
    std::unordered_map<const Trace *, std::size_t> open;
    for (std::size_t index = 0; index < batch.size(); ++index) {
        const Trace *trace = batch[index].trace;
        const auto it = open.find(trace);
        if (it == open.end() || gangs[it->second].size() >= width) {
            open[trace] = gangs.size();
            gangs.push_back({index});
        } else {
            gangs[it->second].push_back(index);
        }
    }

    detail::parallelForIndexed(
        gangs.size(),
        [&](std::size_t gang) {
            runGang(batch, gangs[gang], results, errors);
        },
        threadCount);

    // runGang parks every failure under its job's index, so the
    // lowest-index exception wins regardless of gang shape —
    // exactly the pre-gang per-cell contract.
    for (const std::exception_ptr &error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
    return results;
}

void
SweepRunner::runGang(const std::vector<Job> &batch,
                     const std::vector<std::size_t> &members,
                     std::vector<SimResult> &results,
                     std::vector<std::exception_ptr> &errors) const
{
    if (members.size() == 1) {
        // Singleton gangs (width 1, or a trace with one cell) keep
        // the plain per-cell path.
        const std::size_t index = members.front();
        const Job &job = batch[index];
        try {
            std::unique_ptr<Predictor> predictor = job.factory();
            if (!predictor) {
                fatal("SweepRunner: factory returned a null "
                      "predictor");
            }
            results[index] = simulateWithOptions(
                *predictor, *job.trace, job.options);
        } catch (...) {
            errors[index] = std::current_exception();
        }
        return;
    }

    // Factories run here on the worker thread, like the per-cell
    // path; a failed factory parks its error and drops that member,
    // the rest of the gang replays on.
    GangSession gang(blockRecords_);
    std::vector<std::unique_ptr<Predictor>> predictors;
    std::vector<std::size_t> enrolled;
    predictors.reserve(members.size());
    enrolled.reserve(members.size());
    for (const std::size_t index : members) {
        const Job &job = batch[index];
        try {
            std::unique_ptr<Predictor> predictor = job.factory();
            if (!predictor) {
                fatal("SweepRunner: factory returned a null "
                      "predictor");
            }
            gang.add(*predictor, job.options, job.trace->name());
            predictors.push_back(std::move(predictor));
            enrolled.push_back(index);
        } catch (...) {
            errors[index] = std::current_exception();
        }
    }
    if (enrolled.empty()) {
        return;
    }

    gang.feed(*batch[members.front()].trace);
    std::vector<SimResult> gangResults = gang.finish();
    for (std::size_t slot = 0; slot < enrolled.size(); ++slot) {
        const std::size_t index = enrolled[slot];
        if (std::exception_ptr error = gang.memberError(slot)) {
            errors[index] = error;
        } else {
            results[index] = std::move(gangResults[slot]);
        }
    }
}

} // namespace bpred
