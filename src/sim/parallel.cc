#include "sim/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <thread>

#include "sim/factory.hh"
#include "support/logging.hh"

namespace bpred
{

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0) {
        return requested;
    }
    if (const char *env = std::getenv("BPRED_THREADS");
        env != nullptr && *env != '\0') {
        try {
            const unsigned long parsed = std::stoul(env);
            if (parsed >= 1 && parsed <= 4096) {
                return static_cast<unsigned>(parsed);
            }
        } catch (const std::exception &) {
            // fall through to the warning
        }
        warn("ignoring invalid BPRED_THREADS value");
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

namespace detail
{

void
parallelForIndexed(std::size_t count,
                   const std::function<void(std::size_t)> &body,
                   unsigned threads)
{
    if (count == 0) {
        return;
    }
    const std::size_t workers =
        std::min<std::size_t>(threads == 0 ? 1 : threads, count);
    if (workers <= 1) {
        // Degenerate pool: run inline, in order, on this thread.
        for (std::size_t index = 0; index < count; ++index) {
            body(index);
        }
        return;
    }

    // Self-scheduling work distribution: workers claim the next
    // unclaimed index until the queue is drained, so a skewed cell
    // cost never strands work behind a slow static partition.
    std::atomic<std::size_t> cursor{0};
    std::vector<std::exception_ptr> errors(count);
    auto worker = [&] {
        while (true) {
            const std::size_t index =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (index >= count) {
                return;
            }
            try {
                body(index);
            } catch (...) {
                // Park the exception in the job's slot; keep the
                // worker alive so one bad cell cannot wedge the
                // pool or starve the remaining jobs.
                errors[index] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        pool.emplace_back(worker);
    }
    for (std::thread &thread : pool) {
        thread.join();
    }
    for (const std::exception_ptr &error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

} // namespace detail

SweepRunner::SweepRunner(unsigned threads)
    : threadCount(resolveThreadCount(threads))
{
}

std::size_t
SweepRunner::enqueue(PredictorFactory factory, const Trace &trace,
                     SimOptions options)
{
    if (!factory) {
        fatal("SweepRunner: empty predictor factory");
    }
    jobs.push_back({std::move(factory), &trace, options});
    return jobs.size() - 1;
}

std::size_t
SweepRunner::enqueue(const std::string &spec, const Trace &trace,
                     SimOptions options)
{
    return enqueue([spec] { return makePredictor(spec); }, trace,
                   options);
}

std::vector<SimResult>
SweepRunner::run()
{
    std::vector<Job> batch;
    batch.swap(jobs);
    std::vector<SimResult> results(batch.size());
    detail::parallelForIndexed(
        batch.size(),
        [&](std::size_t index) {
            const Job &job = batch[index];
            std::unique_ptr<Predictor> predictor = job.factory();
            if (!predictor) {
                fatal("SweepRunner: factory returned a null "
                      "predictor");
            }
            results[index] = simulateWithOptions(
                *predictor, *job.trace, job.options);
        },
        threadCount);
    return results;
}

} // namespace bpred
