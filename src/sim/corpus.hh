/**
 * @file
 * Corpus sweeps: fan a directory of trace files across the worker
 * pool, gang-replaying every requested predictor spec per trace.
 *
 * The "Workload Characterization for Branch Predictability" line of
 * work (PAPERS.md) is blunt that single-trace conclusions do not
 * generalize; this runner is how the repo evaluates a predictor
 * grid over a whole corpus in one deterministic pass. Each file is
 * one pool job: its trace is ingested zero-copy when possible (one
 * shared mmap per .bpt file, see trace/mmap_source.hh; text and gz
 * corpora enter through trace/adapters.hh), streamed once, and
 * replayed through every spec by a GangSession — so adding specs
 * costs replay work, never another decode pass.
 *
 * Determinism contract: the report (stdout tables and JSON) is
 * byte-identical for any thread count. Files are processed in
 * sorted-name order, results keep submission order (parallelMap),
 * replay is the gang contract, and the classification probe counts
 * exactly. Timings therefore never appear in the report.
 */

#pragma once

#include <string>
#include <vector>

#include "sim/parallel.hh"
#include "trace/trace.hh"

namespace bpred
{

/** Knobs for runCorpus(). */
struct CorpusOptions
{
    /**
     * Predictor specs replayed over every trace (factory syntax,
     * see sim/factory.hh). The first spec is the *reference*: its
     * member carries the classification probe and top-K site
     * attribution.
     */
    std::vector<std::string> specs;

    /** Baseline per-member simulation options (warmup, windows...). */
    SimOptions sim;

    /** Worker threads; 0 resolves via resolveThreadCount(). */
    unsigned threads = 0;

    /** Records per gang replay block; 0 picks the default. */
    std::size_t blockRecords = 0;

    /**
     * Hardest-site list length in the report, and the reference
     * member's top-K capacity. 0 disables classification.
     */
    std::size_t topSites = 16;

    /**
     * Sites with fewer dynamic executions than this classify as
     * "cold" rather than by ratio — a 1-in-2 miss rate over 4
     * executions says nothing about predictability.
     */
    u64 classifyMinBranches = 16;

    /** Per-site mispredict ratio at or below this is "easy". */
    double easyThreshold = 0.05;

    /** Per-site mispredict ratio above this is "hard". */
    double hardThreshold = 0.20;
};

/** Per-branch-site predictability class (reference predictor). */
enum class Predictability
{
    Easy,
    Medium,
    Hard,
    Cold,
};

/** Stable lowercase name ("easy", "medium", "hard", "cold"). */
const char *predictabilityName(Predictability klass);

/** One classified static branch site. */
struct SitePredictability
{
    Addr pc = 0;

    /** Dynamic conditional executions at this site. */
    u64 branches = 0;

    /** Reference-predictor mispredictions at this site. */
    u64 mispredicts = 0;

    Predictability klass = Predictability::Cold;
};

/** Whole-trace predictability summary under the reference spec. */
struct CorpusClassification
{
    u64 easySites = 0;
    u64 mediumSites = 0;
    u64 hardSites = 0;
    u64 coldSites = 0;

    /** Mispredictions attributed to hard sites. */
    u64 hardMispredicts = 0;

    /** All scored mispredictions (denominator for the share). */
    u64 totalMispredicts = 0;

    /** Hardest sites, by mispredicts desc then pc asc. */
    std::vector<SitePredictability> hardest;

    /** Fraction of mispredictions concentrated in hard sites. */
    double hardShare() const;
};

/** Outcome for one trace file of the corpus. */
struct CorpusFileResult
{
    /** File name within the corpus directory (no path). */
    std::string file;

    /** Benchmark name from the trace itself. */
    std::string traceName;

    /** Ingestion path taken: "mmap", "stream" or "memory". */
    std::string ingest;

    /** Total records replayed (conditional + unconditional). */
    u64 records = 0;

    TraceStats stats;

    /** One result per spec, in CorpusOptions::specs order. */
    std::vector<SimResult> results;

    CorpusClassification classes;

    /**
     * Non-empty when this file failed (unreadable, corrupt,
     * member error); the other fields are then unpopulated. One
     * bad file never aborts the corpus.
     */
    std::string error;

    JsonValue toJson() const;
};

/** The merged corpus report. */
struct CorpusReport
{
    std::string directory;
    std::vector<std::string> specs;

    /** Per-file outcomes, in sorted file-name order. */
    std::vector<CorpusFileResult> files;

    /**
     * The whole report as one JSON document: per-file results plus
     * a per-spec aggregate over the successful files. Contains no
     * timing values, so reports byte-diff across thread counts.
     */
    JsonValue toJson() const;
};

/**
 * Trace files under @p directory (non-recursive), sorted by name:
 * every extension the adapters recognize (.bpt, .bpt.gz, .txt,
 * .txt.gz, .trace, .trace.gz).
 *
 * @throws FatalError when @p directory is not a directory.
 */
std::vector<std::string> listTraceFiles(const std::string &directory);

/**
 * Replay every spec over every trace file in @p directory.
 *
 * @throws FatalError on an empty spec list, a malformed spec, or a
 *         directory with no trace files. Per-file failures are
 *         parked in CorpusFileResult::error instead.
 */
CorpusReport runCorpus(const std::string &directory,
                       const CorpusOptions &options);

} // namespace bpred
