/**
 * @file
 * Incremental (streaming) simulation sessions.
 *
 * A SimSession carries the full mid-run state of simulateWithOptions
 * — warmup progress, flush phase, the open window, the top-site
 * counter — so a trace can be fed in arbitrary chunks and still
 * produce a SimResult byte-identical to the batch loop. The batch
 * entry points in sim/driver.hh are implemented on top of it.
 */

#pragma once

#include <string>

#include "predictors/predictor.hh"
#include "predictors/replay_scratch.hh"
#include "sim/driver.hh"
#include "support/topk.hh"
#include "trace/stream.hh"
#include "trace/trace.hh"

namespace bpred
{

/**
 * One in-flight simulation of one predictor: construct, feed()
 * record chunks in trace order, then finish() exactly once to
 * collect the SimResult.
 *
 * Construction attaches options.probe (when set); finish() — or the
 * destructor, on an abandoned session — restores the previous sink.
 * The predictor must outlive the session and must not be driven by
 * anything else while the session is open; it is NOT reset first,
 * matching simulateWithOptions().
 *
 * Sessions can be suspended indefinitely between feed() calls,
 * which is what makes multi-tenant serving (several sessions
 * time-sliced over snapshotted predictors) possible — see
 * examples/prediction_server.cpp.
 */
class SimSession
{
  public:
    /**
     * @param predictor Predictor under test (not owned).
     * @param options Simulation knobs; copied, so the caller's
     *        object can die. options.probe is attached here.
     * @param trace_name Trace name to report in the SimResult
     *        (streams usually know it before any records arrive).
     */
    explicit SimSession(Predictor &predictor,
                        const SimOptions &options = SimOptions(),
                        std::string trace_name = "");

    SimSession(const SimSession &) = delete;
    SimSession &operator=(const SimSession &) = delete;

    ~SimSession();

    /**
     * Consume the next @p count records of the trace. Chunk
     * boundaries are invisible to the result: any partition of a
     * trace into feed() calls yields the same SimResult.
     *
     * Internally the chunk is resolved through the predictor's
     * replayBlock() batch kernel — split at warmup, flush and
     * window boundaries so per-segment tallies suffice — unless
     * per-branch attribution (top sites) forces the scalar loop.
     * The two paths are contract-equivalent (test_session /
     * test_predictor_contract).
     *
     * @throws FatalError when called after finish().
     */
    void feed(const BranchRecord *records, std::size_t count);

    /** Feed every record of @p trace. */
    void
    feed(const Trace &trace)
    {
        feed(trace.records().data(), trace.size());
    }

    /**
     * Close the session: flush the trailing partial window, collect
     * the top sites, detach the probe, and return the result.
     *
     * @throws FatalError on a second call.
     */
    SimResult finish();

    /** True once finish() has been called. */
    bool finished() const { return finished_; }

    /** Conditional branches consumed so far (including warmup). */
    u64 conditionalsSeen() const { return seen; }

    /** Scored conditionals so far (excludes warmup). */
    u64 scoredConditionals() const { return result.conditionals; }

    /** Mispredictions among the scored conditionals so far. */
    u64 mispredictsSoFar() const { return result.mispredicts; }

    /** Late-bind the reported trace name (before finish()). */
    void setTraceName(std::string trace_name);

    /**
     * Borrow a caller-owned ReplayScratch instead of this session's
     * own — a GangSession shares one scratch across all members so
     * the gang carries one set of phase-split staging arrays, not
     * one per member. Null restores the private scratch. The scratch
     * must outlive the session (or its replacement call); its mode
     * is re-stamped from this session's options on every feed, so
     * members with different SimOptions::simd can share safely.
     */
    void useSharedScratch(ReplayScratch *shared);

  private:
    /** The per-branch loop: needed for top-site attribution. */
    void feedScalar(const BranchRecord *records, std::size_t count);

    /** The replayBlock() path, segmented at bookkeeping boundaries. */
    void feedBlocks(const BranchRecord *records, std::size_t count);

    Predictor &predictor;
    SimOptions options;

    /** Phase-split staging arrays for replayBlock() (reused across
     * feeds; see predictors/replay_scratch.hh). */
    ReplayScratch ownScratch;

    /** The scratch feedBlocks() passes down: ownScratch unless a
     * gang installed a shared one via useSharedScratch(). */
    ReplayScratch *scratch = &ownScratch;

    SimResult result;
    TopKCounter sites;
    WindowSample window;
    u64 seen = 0;
    u64 sinceFlush = 0;
    ProbeSink *previousProbe = nullptr;
    bool finished_ = false;
};

/**
 * Drive @p predictor over everything @p source produces, pulling
 * @p chunk_records at a time — the streaming counterpart of
 * simulateWithOptions(), with identical results.
 */
SimResult simulateSource(Predictor &predictor, TraceSource &source,
                         const SimOptions &options = SimOptions(),
                         std::size_t chunk_records = 65536);

} // namespace bpred

