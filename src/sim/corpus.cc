#include "sim/corpus.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "sim/factory.hh"
#include "sim/gang.hh"
#include "support/aligned.hh"
#include "support/logging.hh"
#include "support/probe.hh"
#include "support/tracing.hh"
#include "trace/adapters.hh"
#include "trace/mmap_source.hh"

namespace bpred
{

namespace
{

std::string
formatPc(Addr pc)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "0x%llx",
                  static_cast<unsigned long long>(pc));
    return buffer;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/**
 * Exact per-site outcome counts from the reference member — the
 * probe half of the "reuse top-K/probe machinery" contract (the
 * top-K half is the reference member's SimResult::topSites).
 */
class SiteProbe : public ProbeSink
{
  public:
    struct Cell
    {
        u64 branches = 0;
        u64 mispredicts = 0;
    };

    void
    onResolved(const ResolvedEvent &event) override
    {
        Cell &cell = sites[event.pc];
        ++cell.branches;
        if (event.predicted != event.taken) {
            ++cell.mispredicts;
        }
    }

    std::unordered_map<Addr, Cell> sites;
};

Predictability
classifySite(const SiteProbe::Cell &cell, const CorpusOptions &opt)
{
    if (cell.branches < opt.classifyMinBranches) {
        return Predictability::Cold;
    }
    const double ratio = static_cast<double>(cell.mispredicts) /
        static_cast<double>(cell.branches);
    if (ratio <= opt.easyThreshold) {
        return Predictability::Easy;
    }
    if (ratio > opt.hardThreshold) {
        return Predictability::Hard;
    }
    return Predictability::Medium;
}

CorpusClassification
classify(const SiteProbe &probe, const CorpusOptions &opt)
{
    CorpusClassification classes;
    std::vector<SitePredictability> all;
    // bp_lint: allow(reserve-untrusted): sized by the probe's own
    // in-memory site map, not by any decoded field.
    all.reserve(probe.sites.size());
    for (const auto &[pc, cell] : probe.sites) {
        SitePredictability site;
        site.pc = pc;
        site.branches = cell.branches;
        site.mispredicts = cell.mispredicts;
        site.klass = classifySite(cell, opt);
        classes.totalMispredicts += cell.mispredicts;
        switch (site.klass) {
          case Predictability::Easy:
            ++classes.easySites;
            break;
          case Predictability::Medium:
            ++classes.mediumSites;
            break;
          case Predictability::Hard:
            ++classes.hardSites;
            classes.hardMispredicts += cell.mispredicts;
            break;
          case Predictability::Cold:
            ++classes.coldSites;
            break;
        }
        all.push_back(site);
    }
    std::sort(all.begin(), all.end(),
              [](const SitePredictability &a,
                 const SitePredictability &b) {
                  if (a.mispredicts != b.mispredicts) {
                      return a.mispredicts > b.mispredicts;
                  }
                  return a.pc < b.pc;
              });
    if (all.size() > opt.topSites) {
        // bp_lint: allow(reserve-untrusted): shrinking to the
        // caller's top-K request, never to a decoded count.
        all.resize(opt.topSites);
    }
    classes.hardest = std::move(all);
    return classes;
}

/** Open one corpus file, reporting which ingest path it took. */
std::unique_ptr<TraceSource>
openFile(const std::string &path, std::string &kind)
{
    if (endsWith(path, ".bpt")) {
        if (auto mapped = MappedTrace::tryOpen(path)) {
            kind = "mmap";
            return std::make_unique<MmapTraceSource>(
                std::move(mapped));
        }
        kind = "stream";
        return std::make_unique<BinaryTraceSource>(path);
    }
    kind = "memory";
    return std::make_unique<OwnedTraceSource>(loadRealTrace(path));
}

CorpusFileResult
runFile(const std::string &path, const std::string &file_name,
        const CorpusOptions &opt)
{
    TRACE_SCOPE("corpus", "file-replay");
    CorpusFileResult result;
    result.file = file_name;
    try {
        std::unique_ptr<TraceSource> source =
            openFile(path, result.ingest);
        result.traceName = source->name();

        std::vector<std::unique_ptr<Predictor>> predictors;
        for (const std::string &spec : opt.specs) {
            predictors.push_back(makePredictor(spec));
        }

        GangSession gang(opt.blockRecords);
        SiteProbe probe;
        for (std::size_t i = 0; i < predictors.size(); ++i) {
            SimOptions member = opt.sim;
            // A shared registry would race across pool jobs.
            member.metrics = nullptr;
            if (i == 0 && opt.topSites > 0) {
                member.probe = &probe;
                member.topSites = opt.topSites;
            }
            gang.add(*predictors[i], member, result.traceName);
        }

        std::unordered_set<Addr> conditional_sites;
        std::unordered_set<Addr> unconditional_sites;
        AlignedVector<BranchRecord> buffer(gang.blockRecords());
        while (const std::size_t n =
                   source->pull(buffer.data(), buffer.size())) {
            for (std::size_t i = 0; i < n; ++i) {
                const BranchRecord &record = buffer[i];
                if (record.conditional) {
                    ++result.stats.dynamicConditional;
                    result.stats.takenConditional +=
                        record.taken ? 1 : 0;
                    conditional_sites.insert(record.pc);
                } else {
                    ++result.stats.dynamicUnconditional;
                    unconditional_sites.insert(record.pc);
                }
            }
            result.records += n;
            gang.feed(buffer.data(), n);
        }
        result.stats.staticConditional = conditional_sites.size();
        result.stats.staticUnconditional =
            unconditional_sites.size();

        result.results = gang.finish();
        for (std::size_t i = 0; i < opt.specs.size(); ++i) {
            if (const std::exception_ptr error = gang.memberError(i)) {
                try {
                    std::rethrow_exception(error);
                } catch (const std::exception &e) {
                    throw std::runtime_error(opt.specs[i] + ": " +
                                             e.what());
                }
            }
        }

        if (opt.topSites > 0) {
            result.classes = classify(probe, opt);
        }
    } catch (const std::exception &e) {
        result = CorpusFileResult();
        result.file = file_name;
        result.error = e.what();
    }
    return result;
}

} // namespace

const char *
predictabilityName(Predictability klass)
{
    switch (klass) {
      case Predictability::Easy:
        return "easy";
      case Predictability::Medium:
        return "medium";
      case Predictability::Hard:
        return "hard";
      case Predictability::Cold:
        return "cold";
    }
    return "unknown";
}

double
CorpusClassification::hardShare() const
{
    return totalMispredicts == 0
        ? 0.0
        : static_cast<double>(hardMispredicts) /
            static_cast<double>(totalMispredicts);
}

JsonValue
CorpusFileResult::toJson() const
{
    JsonValue value = JsonValue::object();
    value["file"] = file;
    if (!error.empty()) {
        value["error"] = error;
        return value;
    }
    value["trace"] = traceName;
    value["ingest"] = ingest;
    value["records"] = records;

    JsonValue stat = JsonValue::object();
    stat["dynamic_conditional"] = stats.dynamicConditional;
    stat["static_conditional"] = stats.staticConditional;
    stat["dynamic_unconditional"] = stats.dynamicUnconditional;
    stat["static_unconditional"] = stats.staticUnconditional;
    stat["taken_conditional"] = stats.takenConditional;
    stat["taken_ratio"] = stats.takenRatio();
    value["stats"] = std::move(stat);

    JsonValue runs = JsonValue::array();
    for (const SimResult &result : results) {
        runs.push(result.toJson());
    }
    value["results"] = std::move(runs);

    JsonValue pred = JsonValue::object();
    pred["easy_sites"] = classes.easySites;
    pred["medium_sites"] = classes.mediumSites;
    pred["hard_sites"] = classes.hardSites;
    pred["cold_sites"] = classes.coldSites;
    pred["hard_mispredict_share"] = classes.hardShare();
    JsonValue hardest = JsonValue::array();
    for (const SitePredictability &site : classes.hardest) {
        JsonValue entry = JsonValue::object();
        entry["pc"] = formatPc(site.pc);
        entry["branches"] = site.branches;
        entry["mispredicts"] = site.mispredicts;
        entry["class"] = predictabilityName(site.klass);
        hardest.push(std::move(entry));
    }
    pred["hardest"] = std::move(hardest);
    value["predictability"] = std::move(pred);
    return value;
}

JsonValue
CorpusReport::toJson() const
{
    JsonValue value = JsonValue::object();
    value["directory"] = directory;
    JsonValue spec_list = JsonValue::array();
    for (const std::string &spec : specs) {
        spec_list.push(spec);
    }
    value["specs"] = std::move(spec_list);

    JsonValue file_list = JsonValue::array();
    for (const CorpusFileResult &file : files) {
        file_list.push(file.toJson());
    }
    value["files"] = std::move(file_list);

    JsonValue summary = JsonValue::array();
    for (std::size_t s = 0; s < specs.size(); ++s) {
        u64 conditionals = 0;
        u64 mispredicts = 0;
        u64 ok_files = 0;
        for (const CorpusFileResult &file : files) {
            if (!file.error.empty() || s >= file.results.size()) {
                continue;
            }
            ++ok_files;
            conditionals += file.results[s].conditionals;
            mispredicts += file.results[s].mispredicts;
        }
        JsonValue entry = JsonValue::object();
        entry["spec"] = specs[s];
        entry["files"] = ok_files;
        entry["conditionals"] = conditionals;
        entry["mispredicts"] = mispredicts;
        entry["mispredict_percent"] = conditionals == 0
            ? 0.0
            : 100.0 * static_cast<double>(mispredicts) /
                static_cast<double>(conditionals);
        summary.push(std::move(entry));
    }
    value["summary"] = std::move(summary);
    return value;
}

std::vector<std::string>
listTraceFiles(const std::string &directory)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(directory, ec)) {
        fatal("corpus: '" + directory + "' is not a directory");
    }
    std::vector<std::string> files;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(directory)) {
        if (!entry.is_regular_file()) {
            continue;
        }
        const std::string name = entry.path().filename().string();
        if (isTraceFileName(name)) {
            files.push_back(name);
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

CorpusReport
runCorpus(const std::string &directory, const CorpusOptions &options)
{
    if (options.specs.empty()) {
        fatal("corpus: no predictor specs given");
    }
    // Fail on a malformed spec before any trace is touched, with
    // the factory's own diagnostic.
    for (const std::string &spec : options.specs) {
        parseSpec(spec);
    }
    const std::vector<std::string> names = listTraceFiles(directory);
    if (names.empty()) {
        fatal("corpus: no trace files in '" + directory + "'");
    }

    std::vector<std::function<CorpusFileResult()>> jobs;
    for (const std::string &name : names) {
        const std::string path =
            (std::filesystem::path(directory) / name).string();
        jobs.push_back([path, name, &options]() {
            return runFile(path, name, options);
        });
    }

    CorpusReport report;
    report.directory = directory;
    report.specs = options.specs;
    {
        TRACE_SCOPE("corpus", "fan-out", 0, jobs.size());
        report.files = parallelMap<CorpusFileResult>(
            jobs, options.threads);
    }
    return report;
}

} // namespace bpred
