/**
 * @file
 * Gang replay: one trace pass feeding many predictors.
 *
 * Every figure-style sweep replays the *same* trace over a grid of
 * predictor configurations, and the trace is by far the largest
 * working set the simulator touches. A GangSession carries one
 * SimSession per gang member and advances the gang through the
 * trace in cache-resident blocks (defaultReplayBlockRecords records
 * at a time): each block is decoded/streamed from memory once and
 * then replayed by every member while it is hot in L1/L2, instead
 * of each cell streaming the whole trace again from cold. Inside
 * each member the block is resolved through the predictor's
 * replayBlock() batch kernel (sim/session.hh), so the inner loop
 * costs one virtual dispatch per block, not one per branch.
 *
 * Results are bit-identical to running each member in its own
 * independent SimSession — SimSession::feed is chunk-invariant and
 * replayBlock() is contract-equivalent to the scalar step — which
 * is what lets SweepRunner (sim/parallel.hh) gang same-trace sweep
 * cells without changing a byte of bench output.
 */

#pragma once

#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "sim/session.hh"

namespace bpred
{

/**
 * Records per replay block: sized so a block (~8K records x 16 B)
 * plus a few predictor tables stays comfortably inside L2.
 */
constexpr std::size_t defaultReplayBlockRecords = 8192;

/**
 * One in-flight gang simulation: add() the members, feed() the
 * shared trace in arbitrary chunks, then finish() exactly once for
 * the per-member SimResults (in add() order).
 *
 * Members fail independently: an exception thrown while feeding or
 * finishing one member is parked (see memberError()) and the rest
 * of the gang replays on — mirroring SweepRunner's one-bad-cell
 * contract. Each member owns its options (probe, warmup, windows,
 * top sites may differ across the gang); only the trace is shared.
 */
class GangSession
{
  public:
    /** @param block_records Records per block; 0 picks the default. */
    explicit GangSession(
        std::size_t block_records = defaultReplayBlockRecords);

    GangSession(const GangSession &) = delete;
    GangSession &operator=(const GangSession &) = delete;

    /**
     * Enrol @p predictor (not owned; must outlive the session) with
     * its own simulation options. Returns the member's index into
     * finish()'s result vector.
     *
     * @throws FatalError once feeding has started — a late member
     *         would silently miss the records already replayed.
     */
    std::size_t add(Predictor &predictor,
                    const SimOptions &options = SimOptions(),
                    std::string trace_name = "");

    /** Members enrolled so far. */
    std::size_t size() const { return members.size(); }

    /** The block size records are replayed in. */
    std::size_t blockRecords() const { return blockRecords_; }

    /**
     * Replay the next @p count records of the shared trace through
     * every healthy member, one cache-resident block at a time.
     *
     * @throws FatalError when called after finish().
     */
    void feed(const BranchRecord *records, std::size_t count);

    /** Feed every record of @p trace. */
    void
    feed(const Trace &trace)
    {
        feed(trace.records().data(), trace.size());
    }

    /**
     * Close every member session and return their SimResults in
     * add() order. A failed member's slot holds a default-initialized
     * SimResult; consult memberError(). @throws FatalError on a
     * second call.
     */
    std::vector<SimResult> finish();

    /** True once finish() has been called. */
    bool finished() const { return finished_; }

    /**
     * The exception that disabled member @p index, or null while it
     * is healthy. Parked errors survive finish().
     */
    std::exception_ptr memberError(std::size_t index) const;

  private:
    struct Member
    {
        std::unique_ptr<SimSession> session;
        std::exception_ptr error;
    };

    std::vector<Member> members;

    /**
     * One phase-split staging scratch shared by every member
     * session (SimSession::useSharedScratch): the gang replays the
     * same block through each member back to back, so the staging
     * arrays stay hot and are allocated once per gang, not once per
     * cell.
     */
    ReplayScratch sharedScratch;

    std::size_t blockRecords_;
    bool fedAny = false;
    bool finished_ = false;
};

/**
 * Replay @p trace once through a gang of @p predictors (all under
 * the same @p options) and return their SimResults in input order —
 * bit-identical to calling simulateWithOptions() per predictor, in
 * one trace pass instead of predictors.size() passes.
 *
 * Rethrows the lowest-index member failure after the whole gang has
 * been driven, matching SweepRunner::run().
 */
std::vector<SimResult> simulateGang(
    const std::vector<Predictor *> &predictors, const Trace &trace,
    const SimOptions &options = SimOptions(),
    std::size_t block_records = defaultReplayBlockRecords);

} // namespace bpred
