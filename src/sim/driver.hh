/**
 * @file
 * The trace-driven simulation loop.
 */

#ifndef BPRED_SIM_DRIVER_HH
#define BPRED_SIM_DRIVER_HH

#include <string>

#include "predictors/predictor.hh"
#include "trace/trace.hh"

namespace bpred
{

/** Outcome of simulating one predictor over one trace. */
struct SimResult
{
    std::string predictorName;
    std::string traceName;

    /** Dynamic conditional branches predicted. */
    u64 conditionals = 0;

    /** Mispredicted conditional branches. */
    u64 mispredicts = 0;

    /** Predictor hardware budget in bits. */
    u64 storageBits = 0;

    /** Misprediction ratio in [0, 1]. */
    double
    mispredictRatio() const
    {
        return conditionals == 0
            ? 0.0
            : static_cast<double>(mispredicts) /
                static_cast<double>(conditionals);
    }

    /** Misprediction ratio as a percentage. */
    double mispredictPercent() const { return mispredictRatio() * 100.0; }
};

/**
 * Run @p predictor over @p trace from a cold start: predict and
 * update on every conditional branch, notify on every unconditional
 * branch, and count mispredictions.
 *
 * The predictor is NOT reset first; callers reusing a predictor
 * across traces should call reset() themselves (warm-start studies
 * rely on this).
 */
SimResult simulate(Predictor &predictor, const Trace &trace);

/**
 * As simulate(), but the first @p warmup_branches conditional
 * branches train the predictor without being scored.
 */
SimResult simulateWithWarmup(Predictor &predictor, const Trace &trace,
                             u64 warmup_branches);

/**
 * As simulate(), but the predictor is reset() after every
 * @p flush_interval conditional branches — a crude model of
 * predictor-state loss on heavyweight context switches (the
 * motivation of Evers et al., cited in §1). All branches are
 * scored, including the cold restarts.
 */
SimResult simulateWithFlush(Predictor &predictor, const Trace &trace,
                            u64 flush_interval);

} // namespace bpred

#endif // BPRED_SIM_DRIVER_HH
