/**
 * @file
 * The trace-driven simulation loop.
 */

#pragma once

#include <string>
#include <vector>

#include "predictors/predictor.hh"
#include "support/json.hh"
#include "support/simd.hh"
#include "trace/trace.hh"

namespace bpred
{

class ProbeSink;
class StatRegistry;

/** One fixed-size window of the misprediction time series. */
struct WindowSample
{
    /** Conditional branches scored in this window. */
    u64 branches = 0;

    /** Mispredictions among them. */
    u64 mispredicts = 0;

    /** Misprediction ratio of the window. */
    double
    ratio() const
    {
        return branches == 0
            ? 0.0
            : static_cast<double>(mispredicts) /
                static_cast<double>(branches);
    }
};

/** Misprediction attribution for one branch site (PC). */
struct SiteCount
{
    Addr pc = 0;

    /**
     * Estimated mispredictions at this site. Sites are tracked with
     * a bounded counter (support/topk.hh), so the estimate may
     * exceed the true count by at most overcount.
     */
    u64 mispredicts = 0;

    /** Upper bound on the estimate's excess. */
    u64 overcount = 0;
};

/** Knobs for simulateWithOptions(); defaults reproduce simulate(). */
struct SimOptions
{
    /** Train (but do not score) the first N conditional branches. */
    u64 warmupBranches = 0;

    /**
     * reset() the predictor after every N conditional branches — a
     * crude model of predictor-state loss on heavyweight context
     * switches. 0 disables.
     */
    u64 flushInterval = 0;

    /**
     * Record a misprediction time series with N scored conditional
     * branches per window (a trailing partial window is kept).
     * 0 disables.
     */
    u64 windowSize = 0;

    /**
     * Attribute mispredictions to branch sites, keeping the top N
     * sites in a bounded counter. 0 disables.
     */
    std::size_t topSites = 0;

    /**
     * Telemetry sink attached to the predictor for the duration of
     * the run (the previous sink is restored afterwards). Null
     * leaves the predictor untouched.
     */
    ProbeSink *probe = nullptr;

    /**
     * Force the per-branch scalar loop instead of the replayBlock()
     * batch kernel. Results are contract-identical either way; this
     * exists so equivalence tests and throughput baselines can pin
     * the legacy fused path explicitly.
     */
    bool scalarReplay = false;

    /**
     * Index/hash kernel dispatch for the block replay path (see
     * support/simd.hh): Auto defers to the BPRED_SIMD environment
     * variable and then the CPU probe; Avx2 requests the phase-split
     * vector kernels; Scalar pins the fused block kernel — the
     * reference the vector path is byte-identical to. Ignored by the
     * scalar per-branch loop (scalarReplay / topSites / probes).
     */
    SimdMode simd = SimdMode::Auto;

    /**
     * Session metrics sink: when set, the SimSession records its
     * feed-phase accounting (feed calls, records consumed,
     * per-feed seconds) under "session.*" in this registry. The
     * registry is caller-owned and NOT thread-safe — never share
     * one across concurrent sessions (give each sweep cell or
     * served tenant its own). Null (the default) records nothing
     * and costs one branch per feed() call.
     */
    StatRegistry *metrics = nullptr;
};

/** Outcome of simulating one predictor over one trace. */
struct SimResult
{
    std::string predictorName;
    std::string traceName;

    /** Dynamic conditional branches predicted. */
    u64 conditionals = 0;

    /** Mispredicted conditional branches. */
    u64 mispredicts = 0;

    /** Predictor hardware budget in bits. */
    u64 storageBits = 0;

    /** Window size used for the time series (0 = not recorded). */
    u64 windowSize = 0;

    /** Misprediction time series (empty unless requested). */
    std::vector<WindowSample> windows;

    /**
     * Worst branch sites by misprediction count, highest first
     * (empty unless requested).
     */
    std::vector<SiteCount> topSites;

    /** Misprediction ratio in [0, 1]. */
    double
    mispredictRatio() const
    {
        return conditionals == 0
            ? 0.0
            : static_cast<double>(mispredicts) /
                static_cast<double>(conditionals);
    }

    /** Misprediction ratio as a percentage. */
    double mispredictPercent() const { return mispredictRatio() * 100.0; }

    /**
     * The result as JSON: scalars, plus "windows" and "top_sites"
     * members when those were recorded.
     */
    JsonValue toJson() const;
};

/**
 * Run @p predictor over @p trace from a cold start: resolve every
 * conditional branch through the fused predictAndUpdate() fast
 * path (contract-equivalent to predict() + update()), notify on
 * every unconditional branch, and count mispredictions — honouring
 * every knob in @p options.
 *
 * The predictor is NOT reset first; callers reusing a predictor
 * across traces should call reset() themselves (warm-start studies
 * rely on this).
 */
SimResult simulateWithOptions(Predictor &predictor, const Trace &trace,
                              const SimOptions &options);

/** simulateWithOptions() with default options. */
SimResult simulate(Predictor &predictor, const Trace &trace);

} // namespace bpred

