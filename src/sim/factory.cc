#include "sim/factory.hh"

#include <sstream>

#include "aliasing/falru_predictor.hh"
#include "core/shared_hysteresis.hh"
#include "core/skewed_local.hh"
#include "core/skewed_predictor.hh"
#include "predictors/agree.hh"
#include "predictors/bimodal.hh"
#include "predictors/bimode.hh"
#include "predictors/gselect.hh"
#include "predictors/gshare.hh"
#include "predictors/hybrid.hh"
#include "predictors/local_two_level.hh"
#include "predictors/static_pred.hh"
#include "predictors/unaliased.hh"
#include "predictors/yags.hh"
#include "support/logging.hh"

namespace bpred
{

namespace
{

constexpr bool kOpt = true;

SpecFieldInfo
num(std::string name, bool optional = false,
    std::string default_value = "")
{
    return {std::move(name), SpecFieldKind::Number, optional,
            std::move(default_value)};
}

SpecFieldInfo
counterBits()
{
    return num("counter_bits", kOpt, "2");
}

SpecFieldInfo
policy()
{
    return {"policy", SpecFieldKind::Policy, kOpt, "partial"};
}

std::vector<std::string>
splitSpec(const std::string &spec)
{
    std::vector<std::string> fields;
    std::istringstream stream(spec);
    std::string field;
    while (std::getline(stream, field, ':')) {
        fields.push_back(field);
    }
    return fields;
}

unsigned
parseUnsigned(const std::string &text, const std::string &spec)
{
    try {
        std::size_t consumed = 0;
        const unsigned long value = std::stoul(text, &consumed);
        if (consumed != text.size()) {
            fatal("predictor spec '" + spec +
                  "': bad numeric field '" + text + "'");
        }
        if (value > 1'000'000'000UL) {
            fatal("predictor spec '" + spec + "': field too large");
        }
        return static_cast<unsigned>(value);
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("predictor spec '" + spec + "': bad numeric field '" +
              text + "'");
    }
}

UpdatePolicy
parsePolicy(const std::string &text, const std::string &spec)
{
    if (text == "partial") {
        return UpdatePolicy::Partial;
    }
    if (text == "total") {
        return UpdatePolicy::Total;
    }
    if (text == "partial-lazy") {
        return UpdatePolicy::PartialLazy;
    }
    fatal("predictor spec '" + spec +
          "': update policy must be 'partial', 'partial-lazy' or "
          "'total'");
}

/** Validate one field value against its descriptor and return the
 * canonical form ("014" -> "14"); @p spec is for error messages. */
std::string
canonicalizeField(const SpecFieldInfo &info, const std::string &value,
                  const std::string &spec)
{
    switch (info.kind) {
      case SpecFieldKind::Number:
        return std::to_string(parseUnsigned(value, spec));
      case SpecFieldKind::Policy:
        parsePolicy(value, spec);
        return value;
      case SpecFieldKind::Direction:
        if (value != "taken" && value != "nottaken") {
            fatal("predictor spec '" + spec +
                  "': expected 'taken' or 'nottaken'");
        }
        return value;
    }
    fatal("predictor spec '" + spec + "': unknown field kind");
}

} // namespace

std::size_t
SchemeInfo::requiredFields() const
{
    std::size_t required = 0;
    for (const SpecFieldInfo &field : fields) {
        if (!field.optional) {
            ++required;
        }
    }
    return required;
}

std::string
SchemeInfo::usage() const
{
    std::string text = name;
    for (const SpecFieldInfo &field : fields) {
        if (field.kind == SpecFieldKind::Policy) {
            text += field.optional ? "[:partial|partial-lazy|total]"
                                   : ":partial|partial-lazy|total";
        } else if (field.kind == SpecFieldKind::Direction) {
            text += field.optional ? "[:taken|nottaken]"
                                   : ":taken|nottaken";
        } else if (field.optional) {
            text += "[:<" + field.name + ">]";
        } else {
            text += ":<" + field.name + ">";
        }
    }
    return text;
}

/*
 * Schemes that intentionally run the scalar replay path. The SIMD
 * block kernels (predictors/block_kernel_simd.hh) cover the
 * table-indexed schemes where index arithmetic dominates; the
 * schemes below either have no table (static), are tag/LRU bound
 * (yags, falru), or replay through per-address history chains the
 * kernels cannot batch (pag, pskew). Revisit when profiling says
 * otherwise; dropping a waiver makes scheme-coverage demand a
 * kernel.
 *
 * bp_lint: scalar-only(static)
 * bp_lint: scalar-only(pag)
 * bp_lint: scalar-only(agree)
 * bp_lint: scalar-only(bimode)
 * bp_lint: scalar-only(yags)
 * bp_lint: scalar-only(gskewedsh)
 * bp_lint: scalar-only(egskewsh)
 * bp_lint: scalar-only(pskew)
 * bp_lint: scalar-only(falru)
 * bp_lint: scalar-only(unaliased)
 */
const std::vector<SchemeInfo> &
listSchemes()
{
    static const std::vector<SchemeInfo> schemes = {
        // bp_lint: fingerprint(static)=always — StaticPredictor
        // prints "always-taken"/"always-not-taken", not "static".
        {"static", "fixed direction, no state",
         {{"direction", SpecFieldKind::Direction, false, ""}},
         "static:taken"},
        {"bimodal", "PC-indexed counter table (paper section 2)",
         {num("index_bits"), counterBits()}, "bimodal:14"},
        {"gshare", "global history XOR PC index",
         {num("index_bits"), num("history_bits"), counterBits()},
         "gshare:14:12"},
        {"gselect", "global history concatenated with PC bits",
         {num("index_bits"), num("history_bits"), counterBits()},
         "gselect:12:6"},
        {"pag", "per-address history, global counter table",
         {num("bht_index_bits"), num("local_history_bits"),
          counterBits()},
         "pag:10:8"},
        {"agree", "gshare direction vs per-site bias bit",
         {num("index_bits"), num("history_bits"),
          num("bias_index_bits"), counterBits()},
         "agree:14:10:12"},
        {"bimode", "taken/not-taken banks + choice table",
         {num("dir_index_bits"), num("history_bits"),
          num("choice_index_bits"), counterBits()},
         "bimode:13:10:12"},
        {"yags", "tagged exception caches over a choice table",
         {num("cache_index_bits"), num("history_bits"),
          num("choice_index_bits"), num("tag_bits", kOpt, "6")},
         "yags:10:8:11"},
        {"hybrid", "gshare + bimodal with a chooser table",
         {num("index_bits"), num("history_bits")}, "hybrid:14:12"},
        {"gskewed", "skewed multi-bank with majority vote (section 4)",
         {num("banks"), num("bank_index_bits"), num("history_bits"),
          policy()},
         "gskewed:3:12:8"},
        {"egskew", "enhanced gskewed: bank 0 is PC-indexed (section 6)",
         {num("bank_index_bits"), num("history_bits"), policy()},
         "egskew:12:11"},
        {"gskewedsh", "gskewed with shared hysteresis bits",
         {num("banks"), num("bank_index_bits"), num("history_bits"),
          policy()},
         "gskewedsh:3:12:8"},
        {"egskewsh", "e-gskew with shared hysteresis bits",
         {num("bank_index_bits"), num("history_bits"), policy()},
         "egskewsh:12:8"},
        {"pskew", "per-address history into skewed banks",
         {num("bht_index_bits"), num("local_history_bits"),
          num("banks"), num("bank_index_bits"), policy()},
         "pskew:10:8:3:12"},
        {"falru", "fully-associative LRU tag store (conflict-free)",
         {num("entries"), num("history_bits"), counterBits()},
         "falru:4096:4"},
        {"unaliased", "one counter per (site, history) — no aliasing",
         {num("history_bits"), counterBits()}, "unaliased:12"},
    };
    return schemes;
}

const SchemeInfo *
findScheme(const std::string &name)
{
    for (const SchemeInfo &scheme : listSchemes()) {
        if (scheme.name == name) {
            return &scheme;
        }
    }
    return nullptr;
}

JsonValue
schemesToJson()
{
    JsonValue result = JsonValue::array();
    for (const SchemeInfo &scheme : listSchemes()) {
        JsonValue entry = JsonValue::object();
        entry["name"] = scheme.name;
        entry["summary"] = scheme.summary;
        entry["example"] = scheme.example;
        JsonValue fields = JsonValue::array();
        for (const SpecFieldInfo &field : scheme.fields) {
            JsonValue item = JsonValue::object();
            item["name"] = field.name;
            switch (field.kind) {
              case SpecFieldKind::Number:
                item["kind"] = std::string("number");
                break;
              case SpecFieldKind::Policy:
                item["kind"] = std::string("policy");
                break;
              case SpecFieldKind::Direction:
                item["kind"] = std::string("direction");
                break;
            }
            item["optional"] = field.optional;
            if (field.optional) {
                item["default"] = field.defaultValue;
            }
            fields.push(std::move(item));
        }
        entry["fields"] = std::move(fields);
        result.push(std::move(entry));
    }
    return result;
}

std::string
PredictorSpec::toString() const
{
    std::string text = scheme;
    for (const std::string &field : fields) {
        text += ':';
        text += field;
    }
    return text;
}

PredictorSpec
PredictorSpec::withSuffix(const std::string &suffix) const
{
    const SchemeInfo *info = findScheme(scheme);
    if (!info) {
        fatal("predictor spec '" + toString() +
              "': unknown scheme '" + scheme + "'");
    }
    const std::vector<std::string> extra = splitSpec(suffix);
    if (extra.empty()) {
        fatal("predictor spec '" + toString() + "': empty suffix");
    }
    if (fields.size() + extra.size() > info->fields.size()) {
        fatal("predictor spec '" + toString() + "': suffix '" +
              suffix + "' exceeds the scheme's " +
              std::to_string(info->fields.size()) + " fields");
    }

    PredictorSpec extended = *this;
    const std::string context = toString() + ":" + suffix;
    for (const std::string &value : extra) {
        const SpecFieldInfo &field_info =
            info->fields[extended.fields.size()];
        extended.fields.push_back(
            canonicalizeField(field_info, value, context));
    }
    return extended;
}

PredictorSpec
parseSpec(const std::string &spec)
{
    const std::vector<std::string> raw = splitSpec(spec);
    if (raw.empty()) {
        fatal("empty predictor spec");
    }

    const SchemeInfo *scheme = findScheme(raw[0]);
    if (!scheme) {
        fatal("predictor spec '" + spec + "': unknown scheme '" +
              raw[0] + "'");
    }

    const std::size_t given = raw.size() - 1;
    if (given < scheme->requiredFields() ||
        given > scheme->fields.size()) {
        fatal("predictor spec '" + spec +
              "': wrong number of fields (see predictorSpecHelp())");
    }

    PredictorSpec parsed;
    parsed.scheme = scheme->name;
    parsed.fields.reserve(given);
    for (std::size_t i = 0; i < given; ++i) {
        parsed.fields.push_back(
            canonicalizeField(scheme->fields[i], raw[i + 1], spec));
    }
    return parsed;
}

namespace
{

// Accessors over a validated PredictorSpec: parseSpec() already
// guaranteed field counts and formats, so these only convert.

unsigned
numberAt(const PredictorSpec &spec, std::size_t index)
{
    return parseUnsigned(spec.fields[index], spec.toString());
}

unsigned
numberAt(const PredictorSpec &spec, std::size_t index,
         unsigned fallback)
{
    return index < spec.fields.size() ? numberAt(spec, index)
                                      : fallback;
}

UpdatePolicy
policyAt(const PredictorSpec &spec, std::size_t index)
{
    return index < spec.fields.size()
        ? parsePolicy(spec.fields[index], spec.toString())
        : UpdatePolicy::Partial;
}

} // namespace

std::unique_ptr<Predictor>
makePredictor(const PredictorSpec &spec)
{
    const std::string &scheme = spec.scheme;

    if (scheme == "static") {
        return std::make_unique<StaticPredictor>(
            spec.fields[0] == "taken");
    }
    if (scheme == "bimodal") {
        return std::make_unique<BimodalPredictor>(
            numberAt(spec, 0), numberAt(spec, 1, 2));
    }
    if (scheme == "gshare") {
        return std::make_unique<GSharePredictor>(
            numberAt(spec, 0), numberAt(spec, 1),
            numberAt(spec, 2, 2));
    }
    if (scheme == "gselect") {
        return std::make_unique<GSelectPredictor>(
            numberAt(spec, 0), numberAt(spec, 1),
            numberAt(spec, 2, 2));
    }
    if (scheme == "agree") {
        return std::make_unique<AgreePredictor>(
            numberAt(spec, 0), numberAt(spec, 1), numberAt(spec, 2),
            numberAt(spec, 3, 2));
    }
    if (scheme == "bimode") {
        return std::make_unique<BiModePredictor>(
            numberAt(spec, 0), numberAt(spec, 1), numberAt(spec, 2),
            numberAt(spec, 3, 2));
    }
    if (scheme == "yags") {
        return std::make_unique<YagsPredictor>(
            numberAt(spec, 0), numberAt(spec, 1), numberAt(spec, 2),
            numberAt(spec, 3, 6));
    }
    if (scheme == "pag") {
        return std::make_unique<LocalTwoLevelPredictor>(
            numberAt(spec, 0), numberAt(spec, 1),
            numberAt(spec, 2, 2));
    }
    if (scheme == "hybrid") {
        const unsigned index_bits = numberAt(spec, 0);
        return std::make_unique<HybridPredictor>(
            std::make_unique<GSharePredictor>(index_bits,
                                              numberAt(spec, 1)),
            std::make_unique<BimodalPredictor>(index_bits),
            index_bits);
    }
    if (scheme == "gskewed" || scheme == "gskewedsh") {
        SkewedPredictor::Config config;
        config.numBanks = numberAt(spec, 0);
        config.bankIndexBits = numberAt(spec, 1);
        config.historyBits = numberAt(spec, 2);
        config.updatePolicy = policyAt(spec, 3);
        if (scheme == "gskewedsh") {
            return std::make_unique<SharedHysteresisSkewedPredictor>(
                config);
        }
        return std::make_unique<SkewedPredictor>(config);
    }
    if (scheme == "egskew" || scheme == "egskewsh") {
        SkewedPredictor::Config config = makeEnhancedConfig(
            numberAt(spec, 0), numberAt(spec, 1));
        config.updatePolicy = policyAt(spec, 2);
        if (scheme == "egskewsh") {
            return std::make_unique<SharedHysteresisSkewedPredictor>(
                config);
        }
        return std::make_unique<SkewedPredictor>(config);
    }
    if (scheme == "pskew") {
        return std::make_unique<SkewedLocalPredictor>(
            numberAt(spec, 0), numberAt(spec, 1), numberAt(spec, 2),
            numberAt(spec, 3), policyAt(spec, 4));
    }
    if (scheme == "falru") {
        const u64 entries = numberAt(spec, 0);
        if (entries == 0) {
            fatal("predictor spec '" + spec.toString() +
                  "': zero entries");
        }
        return std::make_unique<FaLruPredictor>(
            entries, numberAt(spec, 1), numberAt(spec, 2, 2));
    }
    if (scheme == "unaliased") {
        return std::make_unique<UnaliasedPredictor>(
            numberAt(spec, 0), numberAt(spec, 1, 2));
    }

    // parseSpec() accepts exactly the schemes handled above, so a
    // PredictorSpec built by hand is the only way to get here.
    fatal("predictor spec '" + spec.toString() +
          "': unknown scheme '" + scheme + "'");
}

std::unique_ptr<Predictor>
makePredictor(const std::string &spec)
{
    return makePredictor(parseSpec(spec));
}

std::string
predictorSpecHelp()
{
    std::string text = "predictor specs:";
    for (const SchemeInfo &scheme : listSchemes()) {
        text += "\n  " + scheme.usage();
    }
    return text;
}

} // namespace bpred
