#include "sim/factory.hh"

#include <sstream>
#include <vector>

#include "aliasing/falru_predictor.hh"
#include "core/shared_hysteresis.hh"
#include "core/skewed_local.hh"
#include "core/skewed_predictor.hh"
#include "predictors/agree.hh"
#include "predictors/bimodal.hh"
#include "predictors/bimode.hh"
#include "predictors/gselect.hh"
#include "predictors/gshare.hh"
#include "predictors/hybrid.hh"
#include "predictors/local_two_level.hh"
#include "predictors/static_pred.hh"
#include "predictors/unaliased.hh"
#include "predictors/yags.hh"
#include "support/logging.hh"

namespace bpred
{

namespace
{

std::vector<std::string>
splitSpec(const std::string &spec)
{
    std::vector<std::string> fields;
    std::istringstream stream(spec);
    std::string field;
    while (std::getline(stream, field, ':')) {
        fields.push_back(field);
    }
    return fields;
}

unsigned
parseUnsigned(const std::string &text, const std::string &spec)
{
    try {
        const unsigned long value = std::stoul(text);
        if (value > 1'000'000'000UL) {
            fatal("predictor spec '" + spec + "': field too large");
        }
        return static_cast<unsigned>(value);
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("predictor spec '" + spec + "': bad numeric field '" +
              text + "'");
    }
}

UpdatePolicy
parsePolicy(const std::string &text, const std::string &spec)
{
    if (text == "partial") {
        return UpdatePolicy::Partial;
    }
    if (text == "total") {
        return UpdatePolicy::Total;
    }
    if (text == "partial-lazy") {
        return UpdatePolicy::PartialLazy;
    }
    fatal("predictor spec '" + spec +
          "': update policy must be 'partial', 'partial-lazy' or "
          "'total'");
}

void
requireFields(const std::vector<std::string> &fields, std::size_t lo,
              std::size_t hi, const std::string &spec)
{
    if (fields.size() < lo || fields.size() > hi) {
        fatal("predictor spec '" + spec +
              "': wrong number of fields (see predictorSpecHelp())");
    }
}

} // namespace

std::unique_ptr<Predictor>
makePredictor(const std::string &spec)
{
    const std::vector<std::string> fields = splitSpec(spec);
    if (fields.empty()) {
        fatal("empty predictor spec");
    }
    const std::string &scheme = fields[0];

    if (scheme == "static") {
        requireFields(fields, 2, 2, spec);
        if (fields[1] == "taken") {
            return std::make_unique<StaticPredictor>(true);
        }
        if (fields[1] == "nottaken") {
            return std::make_unique<StaticPredictor>(false);
        }
        fatal("predictor spec '" + spec +
              "': expected 'taken' or 'nottaken'");
    }
    if (scheme == "bimodal") {
        requireFields(fields, 2, 3, spec);
        const unsigned index_bits = parseUnsigned(fields[1], spec);
        const unsigned counter_bits =
            fields.size() > 2 ? parseUnsigned(fields[2], spec) : 2;
        return std::make_unique<BimodalPredictor>(index_bits,
                                                  counter_bits);
    }
    if (scheme == "gshare" || scheme == "gselect") {
        requireFields(fields, 3, 4, spec);
        const unsigned index_bits = parseUnsigned(fields[1], spec);
        const unsigned history_bits = parseUnsigned(fields[2], spec);
        const unsigned counter_bits =
            fields.size() > 3 ? parseUnsigned(fields[3], spec) : 2;
        if (scheme == "gshare") {
            return std::make_unique<GSharePredictor>(
                index_bits, history_bits, counter_bits);
        }
        return std::make_unique<GSelectPredictor>(
            index_bits, history_bits, counter_bits);
    }
    if (scheme == "agree") {
        requireFields(fields, 4, 5, spec);
        const unsigned index_bits = parseUnsigned(fields[1], spec);
        const unsigned history_bits = parseUnsigned(fields[2], spec);
        const unsigned bias_bits = parseUnsigned(fields[3], spec);
        const unsigned counter_bits =
            fields.size() > 4 ? parseUnsigned(fields[4], spec) : 2;
        return std::make_unique<AgreePredictor>(
            index_bits, history_bits, bias_bits, counter_bits);
    }
    if (scheme == "bimode") {
        requireFields(fields, 4, 5, spec);
        const unsigned dir_bits = parseUnsigned(fields[1], spec);
        const unsigned history_bits = parseUnsigned(fields[2], spec);
        const unsigned choice_bits = parseUnsigned(fields[3], spec);
        const unsigned counter_bits =
            fields.size() > 4 ? parseUnsigned(fields[4], spec) : 2;
        return std::make_unique<BiModePredictor>(
            dir_bits, history_bits, choice_bits, counter_bits);
    }
    if (scheme == "yags") {
        requireFields(fields, 4, 6, spec);
        const unsigned cache_bits = parseUnsigned(fields[1], spec);
        const unsigned history_bits = parseUnsigned(fields[2], spec);
        const unsigned choice_bits = parseUnsigned(fields[3], spec);
        const unsigned tag_bits =
            fields.size() > 4 ? parseUnsigned(fields[4], spec) : 6;
        return std::make_unique<YagsPredictor>(
            cache_bits, history_bits, choice_bits, tag_bits);
    }
    if (scheme == "pag") {
        requireFields(fields, 3, 4, spec);
        const unsigned bht_bits = parseUnsigned(fields[1], spec);
        const unsigned local_bits = parseUnsigned(fields[2], spec);
        const unsigned counter_bits =
            fields.size() > 3 ? parseUnsigned(fields[3], spec) : 2;
        return std::make_unique<LocalTwoLevelPredictor>(
            bht_bits, local_bits, counter_bits);
    }
    if (scheme == "hybrid") {
        requireFields(fields, 3, 3, spec);
        const unsigned index_bits = parseUnsigned(fields[1], spec);
        const unsigned history_bits = parseUnsigned(fields[2], spec);
        return std::make_unique<HybridPredictor>(
            std::make_unique<GSharePredictor>(index_bits, history_bits),
            std::make_unique<BimodalPredictor>(index_bits),
            index_bits);
    }
    if (scheme == "gskewed") {
        requireFields(fields, 4, 5, spec);
        SkewedPredictor::Config config;
        config.numBanks = parseUnsigned(fields[1], spec);
        config.bankIndexBits = parseUnsigned(fields[2], spec);
        config.historyBits = parseUnsigned(fields[3], spec);
        config.updatePolicy = fields.size() > 4
            ? parsePolicy(fields[4], spec)
            : UpdatePolicy::Partial;
        return std::make_unique<SkewedPredictor>(config);
    }
    if (scheme == "egskew") {
        requireFields(fields, 3, 4, spec);
        SkewedPredictor::Config config = makeEnhancedConfig(
            parseUnsigned(fields[1], spec),
            parseUnsigned(fields[2], spec));
        if (fields.size() > 3) {
            config.updatePolicy = parsePolicy(fields[3], spec);
        }
        return std::make_unique<SkewedPredictor>(config);
    }
    if (scheme == "gskewedsh" || scheme == "egskewsh") {
        // Shared-hysteresis encodings of gskewed / e-gskew.
        SkewedPredictor::Config config;
        if (scheme == "gskewedsh") {
            requireFields(fields, 4, 5, spec);
            config.numBanks = parseUnsigned(fields[1], spec);
            config.bankIndexBits = parseUnsigned(fields[2], spec);
            config.historyBits = parseUnsigned(fields[3], spec);
            if (fields.size() > 4) {
                config.updatePolicy = parsePolicy(fields[4], spec);
            }
        } else {
            requireFields(fields, 3, 4, spec);
            config = makeEnhancedConfig(
                parseUnsigned(fields[1], spec),
                parseUnsigned(fields[2], spec));
            if (fields.size() > 3) {
                config.updatePolicy = parsePolicy(fields[3], spec);
            }
        }
        return std::make_unique<SharedHysteresisSkewedPredictor>(
            config);
    }
    if (scheme == "pskew") {
        requireFields(fields, 5, 6, spec);
        const unsigned bht_bits = parseUnsigned(fields[1], spec);
        const unsigned local_bits = parseUnsigned(fields[2], spec);
        const unsigned num_banks = parseUnsigned(fields[3], spec);
        const unsigned bank_bits = parseUnsigned(fields[4], spec);
        const UpdatePolicy policy = fields.size() > 5
            ? parsePolicy(fields[5], spec)
            : UpdatePolicy::Partial;
        return std::make_unique<SkewedLocalPredictor>(
            bht_bits, local_bits, num_banks, bank_bits, policy);
    }
    if (scheme == "falru") {
        requireFields(fields, 3, 4, spec);
        const u64 entries = parseUnsigned(fields[1], spec);
        const unsigned history_bits = parseUnsigned(fields[2], spec);
        const unsigned counter_bits =
            fields.size() > 3 ? parseUnsigned(fields[3], spec) : 2;
        if (entries == 0) {
            fatal("predictor spec '" + spec + "': zero entries");
        }
        return std::make_unique<FaLruPredictor>(entries, history_bits,
                                                counter_bits);
    }
    if (scheme == "unaliased") {
        requireFields(fields, 2, 3, spec);
        const unsigned history_bits = parseUnsigned(fields[1], spec);
        const unsigned counter_bits =
            fields.size() > 2 ? parseUnsigned(fields[2], spec) : 2;
        return std::make_unique<UnaliasedPredictor>(history_bits,
                                                    counter_bits);
    }

    fatal("predictor spec '" + spec + "': unknown scheme '" + scheme +
          "'");
}

std::string
predictorSpecHelp()
{
    return "predictor specs:\n"
           "  static:taken|nottaken\n"
           "  bimodal:<index_bits>[:<counter_bits>]\n"
           "  gshare:<index_bits>:<history_bits>[:<counter_bits>]\n"
           "  gselect:<index_bits>:<history_bits>[:<counter_bits>]\n"
           "  pag:<bht_bits>:<local_history_bits>[:<counter_bits>]\n"
           "  agree:<index_bits>:<history_bits>:<bias_index_bits>"
           "[:<counter_bits>]\n"
           "  bimode:<dir_index_bits>:<history_bits>"
           ":<choice_index_bits>[:<counter_bits>]\n"
           "  yags:<cache_index_bits>:<history_bits>"
           ":<choice_index_bits>[:<tag_bits>]\n"
           "  hybrid:<index_bits>:<history_bits>\n"
           "  gskewed:<banks>:<bank_index_bits>:<history_bits>"
           "[:partial|partial-lazy|total]\n"
           "  egskew:<bank_index_bits>:<history_bits>"
           "[:partial|partial-lazy|total]\n"
           "  gskewedsh:<banks>:<bank_index_bits>:<history_bits>"
           "[:policy]\n"
           "  egskewsh:<bank_index_bits>:<history_bits>[:policy]\n"
           "  pskew:<bht_bits>:<local_history_bits>:<banks>"
           ":<bank_index_bits>[:policy]\n"
           "  falru:<entries>:<history_bits>[:<counter_bits>]\n"
           "  unaliased:<history_bits>[:<counter_bits>]";
}

} // namespace bpred
