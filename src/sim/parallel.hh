/**
 * @file
 * Parallel sweep execution.
 *
 * Every figure in the paper is a sweep — predictor geometry x trace
 * x options — and each cell is an independent trace-driven run, so
 * the suite is embarrassingly parallel. SweepRunner executes queued
 * simulation jobs on a fixed pool of worker threads while keeping
 * the *results* in submission order, so a bench's tables (and its
 * --json report) are byte-identical to the serial run regardless of
 * the thread count.
 *
 * Determinism / safety model:
 *  - Each job constructs its own Predictor inside the worker (the
 *    factory runs on the worker thread); predictor state is never
 *    shared between jobs.
 *  - The Trace a job references is read-only for the duration of
 *    run(); traces may be shared freely across jobs.
 *  - Per-run state (StatRegistry, TopKCounter, windows, any Rng) is
 *    owned by the job. A ProbeSink passed via SimOptions must not
 *    be shared between jobs unless it is itself thread-safe.
 *  - Workers self-schedule from a shared atomic cursor (the
 *    work-stealing-style distribution degenerates gracefully when
 *    cell costs are skewed: fast workers simply claim more cells).
 *  - Queued cells that replay the SAME trace are grouped into gangs
 *    (sim/gang.hh): one scheduling unit streams the trace once and
 *    replays each cache-resident block through every member, instead
 *    of each cell streaming the whole trace again from cold. Results
 *    stay bit-identical to the per-cell path (GangSession contract),
 *    so tables and --json reports do not change by a byte.
 *
 * Thread count resolution (resolveThreadCount): an explicit request
 * wins, then the BPRED_THREADS environment variable, then
 * std::thread::hardware_concurrency(). Gang width resolution: the
 * BPRED_GANG_WIDTH environment variable when set (1 disables ganging
 * and restores the per-cell path), else jobs/threads so every worker
 * still owns at least one unit.
 */

#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/driver.hh"
#include "trace/trace.hh"

namespace bpred
{

/**
 * The worker-thread count to use: @p requested when positive, else
 * the BPRED_THREADS environment variable (when set to a positive
 * integer), else hardware_concurrency() (min 1).
 */
unsigned resolveThreadCount(unsigned requested = 0);

namespace detail
{

/**
 * Invoke @p body(index) for every index in [0, count) on a pool of
 * @p threads workers (capped at @p count; <= 1 runs inline on the
 * calling thread). Blocks until all indices have been processed.
 * When jobs throw, every remaining index is still executed and the
 * lowest-index exception is rethrown after the pool has joined —
 * one bad cell never wedges or poisons the pool.
 */
void parallelForIndexed(std::size_t count,
                        const std::function<void(std::size_t)> &body,
                        unsigned threads);

} // namespace detail

/**
 * Run arbitrary result-returning jobs on a worker pool; the result
 * vector is in submission order. @p threads is resolved through
 * resolveThreadCount(). T must be default-constructible. Used for
 * sweep cells that are not plain predictor simulations (e.g. the
 * Figure 1/2 tagged-table measurements).
 */
template <typename T>
std::vector<T>
parallelMap(const std::vector<std::function<T()>> &jobs,
            unsigned threads = 0)
{
    std::vector<T> results(jobs.size());
    detail::parallelForIndexed(
        jobs.size(),
        [&](std::size_t index) { results[index] = jobs[index](); },
        resolveThreadCount(threads));
    return results;
}

/**
 * A queue of independent simulation jobs executed by a fixed thread
 * pool. Usage:
 *
 *   SweepRunner runner(threads);          // 0 = env / hardware
 *   auto a = runner.enqueue("gshare:14:12", trace);
 *   auto b = runner.enqueue([] { return makeMyPredictor(); }, other);
 *   std::vector<SimResult> results = runner.run();
 *   // results[a], results[b]: identical to the serial simulate()
 *
 * run() clears the queue, so a runner can execute several batches.
 */
class SweepRunner
{
  public:
    /** Builds one predictor; runs on the worker thread. */
    using PredictorFactory = std::function<std::unique_ptr<Predictor>()>;

    /**
     * @param threads Worker count; 0 resolves via resolveThreadCount.
     * @param block_records Records per gang replay block; 0 picks
     *        defaultReplayBlockRecords (sim/gang.hh).
     */
    explicit SweepRunner(unsigned threads = 0,
                         std::size_t block_records = 0);

    /**
     * Queue one simulation of a factory-built predictor over
     * @p trace. The trace must stay alive and unmodified until
     * run() returns. Returns the job's index into run()'s result
     * vector.
     */
    std::size_t enqueue(PredictorFactory factory, const Trace &trace,
                        SimOptions options = {});

    /** As above with a factory spec string (sim/factory.hh). */
    std::size_t enqueue(const std::string &spec, const Trace &trace,
                        SimOptions options = {});

    /** Jobs queued and not yet run. */
    std::size_t pending() const { return jobs.size(); }

    /** The resolved worker-thread count. */
    unsigned threads() const { return threadCount; }

    /** Records per gang replay block. */
    std::size_t blockRecords() const { return blockRecords_; }

    /**
     * Execute every queued job and return their SimResults in
     * submission order (element-wise identical to calling
     * simulateWithOptions serially, whatever the thread count or
     * gang width — same-trace jobs are ganged, but GangSession is
     * bit-identical to independent sessions). The queue is cleared
     * even on failure; if jobs threw, the lowest-index exception is
     * rethrown after all workers joined.
     */
    std::vector<SimResult> run();

  private:
    struct Job
    {
        PredictorFactory factory;
        const Trace *trace;
        SimOptions options;
    };

    /** Run one gang of same-trace jobs on the calling worker. */
    void runGang(const std::vector<Job> &batch,
                 const std::vector<std::size_t> &members,
                 std::vector<SimResult> &results,
                 std::vector<std::exception_ptr> &errors) const;

    std::vector<Job> jobs;
    unsigned threadCount;
    std::size_t blockRecords_;
};

} // namespace bpred

