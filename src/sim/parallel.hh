/**
 * @file
 * Parallel sweep execution.
 *
 * Every figure in the paper is a sweep — predictor geometry x trace
 * x options — and each cell is an independent trace-driven run, so
 * the suite is embarrassingly parallel. SweepRunner executes queued
 * simulation jobs on a fixed pool of worker threads while keeping
 * the *results* in submission order, so a bench's tables (and its
 * --json report) are byte-identical to the serial run regardless of
 * the thread count.
 *
 * Determinism / safety model:
 *  - Each job constructs its own Predictor inside the worker (the
 *    factory runs on the worker thread); predictor state is never
 *    shared between jobs.
 *  - The Trace a job references is read-only for the duration of
 *    run(); traces may be shared freely across jobs.
 *  - Per-run state (StatRegistry, TopKCounter, windows, any Rng) is
 *    owned by the job. A ProbeSink passed via SimOptions must not
 *    be shared between jobs unless it is itself thread-safe.
 *  - Workers self-schedule from a shared atomic cursor (the
 *    work-stealing-style distribution degenerates gracefully when
 *    cell costs are skewed: fast workers simply claim more cells).
 *  - Queued cells that replay the SAME trace are grouped into gangs
 *    (sim/gang.hh): one scheduling unit streams the trace once and
 *    replays each cache-resident block through every member, instead
 *    of each cell streaming the whole trace again from cold. Results
 *    stay bit-identical to the per-cell path (GangSession contract),
 *    so tables and --json reports do not change by a byte.
 *
 * Thread count resolution (resolveThreadCount): an explicit request
 * wins, then the BPRED_THREADS environment variable, then
 * std::thread::hardware_concurrency(). Gang width resolution: the
 * BPRED_GANG_WIDTH environment variable when set (1 disables ganging
 * and restores the per-cell path), else jobs/threads so every worker
 * still owns at least one unit.
 */

#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/driver.hh"
#include "support/stat_registry.hh"
#include "trace/trace.hh"

namespace bpred
{

/**
 * The worker-thread count to use: @p requested when positive, else
 * the BPRED_THREADS environment variable (when set to a positive
 * integer), else hardware_concurrency() (min 1).
 */
unsigned resolveThreadCount(unsigned requested = 0);

namespace detail
{

/**
 * Per-worker accounting for one parallelForIndexed() execution,
 * filled when a PoolStats out-param is passed: wall-clock of the
 * whole pool, plus busy nanoseconds and indices claimed per worker
 * slot (idle = wall - busy). The overhead is two steady_clock
 * reads per claimed index — absorbed by any real job.
 */
struct PoolStats
{
    /** Worker slots the pool actually ran (1 for the inline path). */
    unsigned workers = 0;

    /** Wall-clock nanoseconds from first spawn to last join. */
    u64 wallNs = 0;

    /** Nanoseconds each worker spent executing job bodies. */
    std::vector<u64> busyNs;

    /** Indices each worker claimed from the shared cursor. */
    std::vector<u64> claimed;
};

/**
 * Invoke @p body(index) for every index in [0, count) on a pool of
 * @p threads workers (capped at @p count; <= 1 runs inline on the
 * calling thread). Blocks until all indices have been processed.
 * When jobs throw, every remaining index is still executed and the
 * lowest-index exception is rethrown after the pool has joined —
 * one bad cell never wedges or poisons the pool.
 *
 * When @p stats is non-null it is overwritten with this
 * execution's per-worker accounting. Worker threads label their
 * trace lanes "sweep-worker-N" when tracing is recording.
 */
void parallelForIndexed(std::size_t count,
                        const std::function<void(std::size_t)> &body,
                        unsigned threads,
                        PoolStats *stats = nullptr);

/**
 * The pool slot of the calling thread while inside a
 * parallelForIndexed() worker (0 on the inline path and outside
 * any pool). Used to attribute failures and trace lanes.
 */
unsigned currentWorkerIndex();

} // namespace detail

/**
 * Run arbitrary result-returning jobs on a worker pool; the result
 * vector is in submission order. @p threads is resolved through
 * resolveThreadCount(). T must be default-constructible. Used for
 * sweep cells that are not plain predictor simulations (e.g. the
 * Figure 1/2 tagged-table measurements).
 */
template <typename T>
std::vector<T>
parallelMap(const std::vector<std::function<T()>> &jobs,
            unsigned threads = 0)
{
    std::vector<T> results(jobs.size());
    detail::parallelForIndexed(
        jobs.size(),
        [&](std::size_t index) { results[index] = jobs[index](); },
        resolveThreadCount(threads));
    return results;
}

/**
 * A queue of independent simulation jobs executed by a fixed thread
 * pool. Usage:
 *
 *   SweepRunner runner(threads);          // 0 = env / hardware
 *   auto a = runner.enqueue("gshare:14:12", trace);
 *   auto b = runner.enqueue([] { return makeMyPredictor(); }, other);
 *   std::vector<SimResult> results = runner.run();
 *   // results[a], results[b]: identical to the serial simulate()
 *
 * run() clears the queue, so a runner can execute several batches.
 */
class SweepRunner
{
  public:
    /** Builds one predictor; runs on the worker thread. */
    using PredictorFactory = std::function<std::unique_ptr<Predictor>()>;

    /**
     * @param threads Worker count; 0 resolves via resolveThreadCount.
     * @param block_records Records per gang replay block; 0 picks
     *        defaultReplayBlockRecords (sim/gang.hh).
     */
    explicit SweepRunner(unsigned threads = 0,
                         std::size_t block_records = 0);

    /**
     * Queue one simulation of a factory-built predictor over
     * @p trace. The trace must stay alive and unmodified until
     * run() returns. Returns the job's index into run()'s result
     * vector. @p label names the cell in failure messages (a spec
     * string, a figure coordinate); empty falls back to "factory".
     */
    std::size_t enqueue(PredictorFactory factory, const Trace &trace,
                        SimOptions options = {},
                        std::string label = "");

    /**
     * As above with a factory spec string (sim/factory.hh); the
     * spec doubles as the cell label.
     */
    std::size_t enqueue(const std::string &spec, const Trace &trace,
                        SimOptions options = {});

    /** Jobs queued and not yet run. */
    std::size_t pending() const { return jobs.size(); }

    /** The resolved worker-thread count. */
    unsigned threads() const { return threadCount; }

    /** Records per gang replay block. */
    std::size_t blockRecords() const { return blockRecords_; }

    /**
     * Execute every queued job and return their SimResults in
     * submission order (element-wise identical to calling
     * simulateWithOptions serially, whatever the thread count or
     * gang width — same-trace jobs are ganged, but GangSession is
     * bit-identical to independent sessions). The queue is cleared
     * even on failure; if jobs threw, the lowest-index exception is
     * rethrown after all workers joined — annotated with the cell
     * index, its label, its trace, and the worker thread that ran
     * it, so a failed sweep cell is attributable from the log
     * alone.
     */
    std::vector<SimResult> run();

    /**
     * Accumulated engine metrics across every run() on this
     * runner: cells/gangs executed, gang occupancy histogram, and
     * per-worker busy/idle/claimed accounting ("sweep.*"). The
     * same deltas are merged into the process-wide engineStats()
     * registry, which `--stats-out` exports.
     */
    const StatRegistry &metrics() const { return metrics_; }

  private:
    struct Job
    {
        PredictorFactory factory;
        const Trace *trace;
        SimOptions options;
        std::string label;
    };

    /** Run one gang of same-trace jobs on the calling worker. */
    void runGang(const std::vector<Job> &batch,
                 const std::vector<std::size_t> &members,
                 std::vector<SimResult> &results,
                 std::vector<std::exception_ptr> &errors) const;

    /** Fold one run()'s accounting into metrics_ and engineStats(). */
    void recordRunMetrics(const std::vector<Job> &batch,
                          const std::vector<std::vector<std::size_t>> &gangs,
                          const std::vector<std::exception_ptr> &errors,
                          const detail::PoolStats &pool);

    std::vector<Job> jobs;
    unsigned threadCount;
    std::size_t blockRecords_;
    StatRegistry metrics_;
};

} // namespace bpred

