/**
 * @file
 * Building predictors from textual specifications.
 *
 * Spec grammar (fields separated by ':'):
 *
 *   static:taken | static:nottaken
 *   bimodal:<index_bits>[:<counter_bits>]
 *   gshare:<index_bits>:<history_bits>[:<counter_bits>]
 *   gselect:<index_bits>:<history_bits>[:<counter_bits>]
 *   pag:<bht_index_bits>:<local_history_bits>[:<counter_bits>]
 *   hybrid:<index_bits>:<history_bits>     (gshare + bimodal + chooser)
 *   gskewed:<banks>:<bank_index_bits>:<history_bits>[:partial|total]
 *   egskew:<bank_index_bits>:<history_bits>[:partial|total]
 *   falru:<entries>:<history_bits>[:<counter_bits>]
 *   unaliased:<history_bits>[:<counter_bits>]
 *
 * Examples: "gshare:14:12", "gskewed:3:12:8:partial", "egskew:12:11".
 */

#ifndef BPRED_SIM_FACTORY_HH
#define BPRED_SIM_FACTORY_HH

#include <memory>
#include <string>

#include "predictors/predictor.hh"

namespace bpred
{

/**
 * Construct a predictor from @p spec.
 *
 * @throws FatalError on an unknown scheme or malformed parameters.
 */
std::unique_ptr<Predictor> makePredictor(const std::string &spec);

/** One-line usage text listing the accepted spec forms. */
std::string predictorSpecHelp();

} // namespace bpred

#endif // BPRED_SIM_FACTORY_HH
