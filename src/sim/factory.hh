/**
 * @file
 * Building predictors from textual specifications.
 *
 * Spec grammar (fields separated by ':'):
 *
 *   <scheme>:<field>[:<field>...]
 *
 * The scheme table — names, fields, defaults, and an example per
 * scheme — lives in listSchemes(); predictorSpecHelp() renders it
 * for humans and schemesToJson() for tools. parseSpec() validates a
 * string against the table and yields a structured PredictorSpec
 * whose toString() is canonical (parse → print → parse is a fixed
 * point), which is what lets sweep configs and result files
 * round-trip specs without drift.
 *
 * Examples: "gshare:14:12", "gskewed:3:12:8:partial", "egskew:12:11".
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "predictors/predictor.hh"
#include "support/json.hh"

namespace bpred
{

/** Kind of one ':'-separated spec field. */
enum class SpecFieldKind : u8
{
    /** Unsigned integer (size, bit count, ...). */
    Number,

    /** Update policy: partial | partial-lazy | total. */
    Policy,

    /** Static direction: taken | nottaken. */
    Direction,
};

/** Descriptor of one field a scheme accepts. */
struct SpecFieldInfo
{
    /** Field name as shown in help ("index_bits", "policy"). */
    std::string name;

    SpecFieldKind kind = SpecFieldKind::Number;

    /** True when the field may be omitted. */
    bool optional = false;

    /** Value assumed when an optional field is omitted. */
    std::string defaultValue;
};

/** Descriptor of one predictor scheme the factory can build. */
struct SchemeInfo
{
    /** Scheme keyword ("gshare", "egskew", ...). */
    std::string name;

    /** One-line description. */
    std::string summary;

    /** Accepted fields, required first. */
    std::vector<SpecFieldInfo> fields;

    /** A representative buildable spec ("gshare:14:12"). */
    std::string example;

    /** Fields that must be present. */
    std::size_t requiredFields() const;

    /** Usage line: "gshare:<index_bits>:<history_bits>[:...]". */
    std::string usage() const;
};

/** Every scheme the factory knows, in help order. */
const std::vector<SchemeInfo> &listSchemes();

/** Descriptor for @p name, or null when unknown. */
const SchemeInfo *findScheme(const std::string &name);

/** The scheme table as JSON (for tooling). */
JsonValue schemesToJson();

/**
 * A parsed, validated predictor specification. Obtained from
 * parseSpec(); field values are normalized (numbers canonicalized,
 * keywords validated), so toString() output is stable under
 * re-parsing.
 */
struct PredictorSpec
{
    /** Scheme keyword. */
    std::string scheme;

    /** Normalized field values, excluding the scheme. */
    std::vector<std::string> fields;

    /** Canonical spec string ("gshare:14:12"). */
    std::string toString() const;

    /**
     * A copy of this spec with additional ':'-separated fields
     * appended, validated and canonicalized against the scheme
     * table exactly as parseSpec() would. Lets holders of a parsed
     * spec derive variants (a serving tenant adding an optional
     * policy or counter-width field) without going back through
     * the string form.
     *
     * @throws FatalError when @p suffix is empty, malformed, or
     *         would exceed the scheme's field count.
     */
    PredictorSpec withSuffix(const std::string &suffix) const;
};

/**
 * Parse and validate @p spec against the scheme table.
 *
 * @throws FatalError on an unknown scheme, wrong field count, or a
 *         malformed field.
 */
PredictorSpec parseSpec(const std::string &spec);

/**
 * Construct a predictor from a parsed spec.
 *
 * @throws FatalError on semantically invalid parameters (e.g. zero
 *         falru entries).
 */
std::unique_ptr<Predictor> makePredictor(const PredictorSpec &spec);

/**
 * Construct a predictor from @p spec (parseSpec() + build).
 *
 * @throws FatalError on an unknown scheme or malformed parameters.
 */
std::unique_ptr<Predictor> makePredictor(const std::string &spec);

/** Usage text listing every accepted spec form (from the table). */
std::string predictorSpecHelp();

} // namespace bpred

