#include "sim/timeline.hh"

#include <cassert>

#include "sim/driver.hh"
#include "support/logging.hh"

namespace bpred
{

double
TimelineResult::mean() const
{
    if (windows.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (const double ratio : windows) {
        sum += ratio;
    }
    return sum / static_cast<double>(windows.size());
}

double
TimelineResult::worst() const
{
    double worst_ratio = 0.0;
    for (const double ratio : windows) {
        worst_ratio = std::max(worst_ratio, ratio);
    }
    return worst_ratio;
}

std::size_t
TimelineResult::warmupWindows(double tolerance) const
{
    if (windows.size() < 4) {
        return 0;
    }
    // Steady-state estimate: mean of the final quarter.
    const std::size_t tail_start = windows.size() * 3 / 4;
    double tail_sum = 0.0;
    for (std::size_t i = tail_start; i < windows.size(); ++i) {
        tail_sum += windows[i];
    }
    const double steady =
        tail_sum / static_cast<double>(windows.size() - tail_start);

    for (std::size_t i = 0; i < windows.size(); ++i) {
        if (windows[i] <= steady + tolerance) {
            return i;
        }
    }
    return windows.size();
}

TimelineResult
runTimeline(Predictor &predictor, const Trace &trace,
            u64 window_size)
{
    if (window_size == 0) {
        fatal("runTimeline: window size must be positive");
    }
    TimelineResult result;
    result.windowSize = window_size;

    SimOptions options;
    options.windowSize = window_size;
    const SimResult sim = simulateWithOptions(predictor, trace, options);
    for (const WindowSample &window : sim.windows) {
        // Keep a trailing partial window only when it covers at
        // least a tenth of a full window.
        if (window.branches < window_size &&
            window.branches < window_size / 10) {
            continue;
        }
        result.windows.push_back(window.ratio());
    }
    return result;
}

} // namespace bpred
