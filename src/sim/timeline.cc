#include "sim/timeline.hh"

#include <cassert>

#include "support/logging.hh"

namespace bpred
{

double
TimelineResult::mean() const
{
    if (windows.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (const double ratio : windows) {
        sum += ratio;
    }
    return sum / static_cast<double>(windows.size());
}

double
TimelineResult::worst() const
{
    double worst_ratio = 0.0;
    for (const double ratio : windows) {
        worst_ratio = std::max(worst_ratio, ratio);
    }
    return worst_ratio;
}

std::size_t
TimelineResult::warmupWindows(double tolerance) const
{
    if (windows.size() < 4) {
        return 0;
    }
    // Steady-state estimate: mean of the final quarter.
    const std::size_t tail_start = windows.size() * 3 / 4;
    double tail_sum = 0.0;
    for (std::size_t i = tail_start; i < windows.size(); ++i) {
        tail_sum += windows[i];
    }
    const double steady =
        tail_sum / static_cast<double>(windows.size() - tail_start);

    for (std::size_t i = 0; i < windows.size(); ++i) {
        if (windows[i] <= steady + tolerance) {
            return i;
        }
    }
    return windows.size();
}

TimelineResult
runTimeline(Predictor &predictor, const Trace &trace,
            u64 window_size)
{
    if (window_size == 0) {
        fatal("runTimeline: window size must be positive");
    }
    TimelineResult result;
    result.windowSize = window_size;

    u64 in_window = 0;
    u64 wrong_in_window = 0;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            predictor.notifyUnconditional(record.pc);
            continue;
        }
        const bool prediction = predictor.predict(record.pc);
        predictor.update(record.pc, record.taken);
        ++in_window;
        if (prediction != record.taken) {
            ++wrong_in_window;
        }
        if (in_window == window_size) {
            result.windows.push_back(
                static_cast<double>(wrong_in_window) /
                static_cast<double>(window_size));
            in_window = 0;
            wrong_in_window = 0;
        }
    }
    if (in_window >= window_size / 10 && in_window > 0) {
        result.windows.push_back(
            static_cast<double>(wrong_in_window) /
            static_cast<double>(in_window));
    }
    return result;
}

} // namespace bpred
