#include "sim/gang.hh"

#include <algorithm>
#include <utility>

#include "support/logging.hh"
#include "support/tracing.hh"

namespace bpred
{

GangSession::GangSession(std::size_t block_records)
    : blockRecords_(block_records ? block_records
                                  : defaultReplayBlockRecords)
{
}

std::size_t
GangSession::add(Predictor &predictor, const SimOptions &options,
                 std::string trace_name)
{
    if (finished_) {
        fatal("GangSession: add after finish");
    }
    if (fedAny) {
        fatal("GangSession: add after feeding started");
    }
    Member member;
    member.session = std::make_unique<SimSession>(
        predictor, options, std::move(trace_name));
    member.session->useSharedScratch(&sharedScratch);
    members.push_back(std::move(member));
    return members.size() - 1;
}

void
GangSession::feed(const BranchRecord *records, std::size_t count)
{
    if (finished_) {
        fatal("GangSession: feed after finish");
    }
    fedAny = true;
    for (std::size_t at = 0; at < count; at += blockRecords_) {
        const std::size_t n = std::min(blockRecords_, count - at);
        TRACE_SCOPE("gang", "block", at / blockRecords_,
                    members.size());
        // Every member replays this block while it is cache-hot;
        // only then does the gang advance to the next block.
        for (std::size_t slot = 0; slot < members.size(); ++slot) {
            Member &member = members[slot];
            if (member.error) {
                continue;
            }
            try {
                TRACE_SCOPE("gang", "member-replay", slot, n);
                member.session->feed(records + at, n);
            } catch (...) {
                // Park the failure and keep the rest of the gang
                // running — one bad cell never wedges a sweep.
                TRACE_INSTANT("gang", "member-error");
                member.error = std::current_exception();
            }
        }
    }
}

std::vector<SimResult>
GangSession::finish()
{
    if (finished_) {
        fatal("GangSession: finish called twice");
    }
    TRACE_SCOPE("gang", "finish", 0, members.size());
    finished_ = true;
    std::vector<SimResult> results(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
        Member &member = members[i];
        if (member.error) {
            continue;
        }
        try {
            results[i] = member.session->finish();
        } catch (...) {
            member.error = std::current_exception();
        }
    }
    return results;
}

std::exception_ptr
GangSession::memberError(std::size_t index) const
{
    if (index >= members.size()) {
        fatal("GangSession: memberError index out of range");
    }
    return members[index].error;
}

std::vector<SimResult>
simulateGang(const std::vector<Predictor *> &predictors,
             const Trace &trace, const SimOptions &options,
             std::size_t block_records)
{
    GangSession gang(block_records);
    for (Predictor *predictor : predictors) {
        if (!predictor) {
            fatal("simulateGang: null predictor");
        }
        gang.add(*predictor, options, trace.name());
    }
    gang.feed(trace);
    std::vector<SimResult> results = gang.finish();
    for (std::size_t i = 0; i < predictors.size(); ++i) {
        if (std::exception_ptr error = gang.memberError(i)) {
            std::rethrow_exception(error);
        }
    }
    return results;
}

} // namespace bpred
