#include "sim/session.hh"

#include <algorithm>
#include <chrono>
#include <vector>

#include "support/aligned.hh"
#include "support/check.hh"
#include "support/logging.hh"
#include "support/probe.hh"
#include "support/stat_registry.hh"
#include "support/tracing.hh"

namespace bpred
{

SimSession::SimSession(Predictor &predictor, const SimOptions &options,
                       std::string trace_name)
    : predictor(predictor), options(options),
      sites(options.topSites > 0 ? options.topSites : 1)
{
    result.predictorName = predictor.name();
    result.traceName = std::move(trace_name);
    result.storageBits = predictor.storageBits();
    result.windowSize = options.windowSize;
    if (options.probe) {
        previousProbe = predictor.attachProbe(options.probe);
    }
}

SimSession::~SimSession()
{
    if (!finished_ && options.probe) {
        predictor.attachProbe(previousProbe);
    }
}

void
SimSession::setTraceName(std::string trace_name)
{
    if (finished_) {
        fatal("SimSession: setTraceName after finish");
    }
    result.traceName = std::move(trace_name);
}

void
SimSession::useSharedScratch(ReplayScratch *shared)
{
    scratch = shared ? shared : &ownScratch;
}

void
SimSession::feed(const BranchRecord *records, std::size_t count)
{
    if (finished_) {
        fatal("SimSession: feed after finish");
    }
    TRACE_SCOPE("session", "feed", seen, count);
    const u64 feedStart =
        options.metrics ? trace::nowNs() : 0;
    // Top-site attribution needs the PC of every misprediction, so
    // it keeps the per-branch loop (as does an explicit
    // scalarReplay request). Everything else — including probed
    // runs, whose overrides delegate to the scalar kernel
    // internally — replays through the per-block batch kernel.
    if (options.topSites > 0 || options.scalarReplay) {
        feedScalar(records, count);
    } else {
        feedBlocks(records, count);
    }
    if (options.metrics) {
        StatRegistry &metrics = *options.metrics;
        ++metrics.counter("session.feeds");
        metrics.counter("session.records") += count;
        metrics.running("session.feed_seconds")
            .sample(double(trace::nowNs() - feedStart) / 1e9);
    }
}

void
SimSession::feedBlocks(const BranchRecord *records, std::size_t count)
{
    constexpr u64 unbounded = ~u64(0);
    const u64 warmup = options.warmupBranches;
    const u64 flush_interval = options.flushInterval;
    const u64 window_size = options.windowSize;

    // Re-stamped every feed: a gang-shared scratch is passed through
    // members whose SimOptions::simd may differ.
    scratch->mode = options.simd;

    std::size_t at = 0;
    while (at < count) {
        // The next segment may consume at most `limit` conditional
        // branches: up to the next flush, the end of warmup, or the
        // close of the open window — whichever comes first. Each
        // bound is strictly positive (every boundary action below
        // re-arms its counter), so the loop always advances.
        const bool in_warmup = seen < warmup;
        u64 limit = unbounded;
        if (flush_interval) {
            limit = std::min(limit, flush_interval - sinceFlush);
        }
        if (in_warmup) {
            limit = std::min(limit, warmup - seen);
        } else if (window_size) {
            limit = std::min(limit, window_size - window.branches);
        }

        // Segment end: just past the limit-th conditional record,
        // or the chunk end. Trailing unconditionals fall into the
        // next segment, matching the scalar loop's ordering of
        // boundary actions before their notifyUnconditional().
        std::size_t end = count;
        if (limit != unbounded) {
            u64 conditionals = 0;
            for (end = at; end < count && conditionals < limit;
                 ++end) {
                conditionals += records[end].conditional ? 1 : 0;
            }
        }

        ReplayCounters tally;
        predictor.replayBlock(records + at, end - at, tally, scratch);
        at = end;

        seen += tally.conditionals;
        if (flush_interval) {
            sinceFlush += tally.conditionals;
            if (sinceFlush == flush_interval) {
                TRACE_INSTANT("session", "flush");
                predictor.reset();
                sinceFlush = 0;
            }
        }
        if (in_warmup) {
            if (seen >= warmup) {
                TRACE_INSTANT("session", "warmup-complete");
            }
            continue; // warmup segments train without scoring
        }
        result.conditionals += tally.conditionals;
        result.mispredicts += tally.mispredicts;
        if (window_size) {
            window.branches += tally.conditionals;
            window.mispredicts += tally.mispredicts;
            if (window.branches == window_size) {
                result.windows.push_back(window);
                window = WindowSample();
            }
        }
    }
}

void
SimSession::feedScalar(const BranchRecord *records, std::size_t count)
{
    // Hot counters live in locals for the duration of the chunk;
    // member writes happen once per feed(), not once per branch, so
    // the streaming path matches the batch loop's throughput.
    Predictor &pred = predictor;
    u64 seen_local = seen;
    u64 since_flush = sinceFlush;
    u64 conditionals = result.conditionals;
    u64 mispredicts = result.mispredicts;
    const u64 warmup = options.warmupBranches;
    const u64 flush_interval = options.flushInterval;
    const u64 window_size = options.windowSize;
    const bool track_sites = options.topSites > 0;

    for (std::size_t i = 0; i < count; ++i) {
        const BranchRecord &record = records[i];
        if (!record.conditional) {
            pred.notifyUnconditional(record.pc);
            continue;
        }
        // Fused fast path: one virtual dispatch and one index
        // computation per branch (contract-equivalent to
        // predict() + update(); test_predictor_contract guards it).
        const bool prediction =
            pred.predictAndUpdate(record.pc, record.taken).prediction;
        ++seen_local;
        if (flush_interval && ++since_flush == flush_interval) {
            TRACE_INSTANT("session", "flush");
            pred.reset();
            since_flush = 0;
        }
        if (seen_local <= warmup) {
            if (seen_local == warmup) {
                TRACE_INSTANT("session", "warmup-complete");
            }
            continue;
        }
        ++conditionals;
        const bool wrong = prediction != record.taken;
        if (wrong) {
            ++mispredicts;
            if (track_sites) {
                sites.add(record.pc);
            }
        }
        if (window_size > 0) {
            ++window.branches;
            if (wrong) {
                ++window.mispredicts;
            }
            if (window.branches == window_size) {
                result.windows.push_back(window);
                window = WindowSample();
            }
        }
    }

    seen = seen_local;
    sinceFlush = since_flush;
    result.conditionals = conditionals;
    result.mispredicts = mispredicts;
}

SimResult
SimSession::finish()
{
    if (finished_) {
        fatal("SimSession: finish called twice");
    }
    TRACE_SCOPE("session", "finish");
    finished_ = true;

    if (options.metrics) {
        options.metrics->counter("session.conditionals") = seen;
    }

    if (options.windowSize > 0 && window.branches > 0) {
        result.windows.push_back(window);
        window = WindowSample();
    }
    if (options.topSites > 0) {
        for (const TopKCounter::Item &item : sites.items()) {
            result.topSites.push_back(
                {item.key, item.count, item.overcount});
        }
    }
    if (options.probe) {
        predictor.attachProbe(previousProbe);
    }
    return std::move(result);
}

SimResult
simulateSource(Predictor &predictor, TraceSource &source,
               const SimOptions &options, std::size_t chunk_records)
{
    if (chunk_records == 0) {
        fatal("simulateSource: zero chunk size");
    }
    SimSession session(predictor, options, source.name());
    // Cache-line aligned so the block kernels' prefetch/vector
    // passes never straddle a line at the chunk head.
    AlignedVector<BranchRecord> chunk(chunk_records);
    BP_DCHECK(isCacheAligned(chunk.data()),
              "simulateSource: chunk buffer not cache aligned");
    while (true) {
        std::size_t n = 0;
        {
            TRACE_SCOPE("session", "refill", session.conditionalsSeen(),
                        chunk_records);
            n = source.pull(chunk.data(), chunk.size());
        }
        if (n == 0) {
            break;
        }
        session.feed(chunk.data(), n);
    }
    return session.finish();
}

} // namespace bpred
