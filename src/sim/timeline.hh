/**
 * @file
 * Windowed (time-sliced) misprediction measurement.
 *
 * The aggregate misprediction ratio hides transients: cold-start
 * warm-up, phase changes, and the bursts of aliasing that follow
 * context switches. A timeline splits the conditional-branch stream
 * into fixed-size windows and reports the ratio per window.
 */

#pragma once

#include <vector>

#include "predictors/predictor.hh"
#include "trace/trace.hh"

namespace bpred
{

/** Misprediction ratios per window of conditional branches. */
struct TimelineResult
{
    /** Conditional branches per window. */
    u64 windowSize = 0;

    /** Per-window misprediction ratios, in stream order. */
    std::vector<double> windows;

    /** Mean of the window ratios (0 when empty). */
    double mean() const;

    /** Highest window ratio (0 when empty). */
    double worst() const;

    /**
     * Index of the first window whose ratio is within
     * @p tolerance of the mean of the final quarter of windows —
     * a simple warm-up-length estimate.
     */
    std::size_t warmupWindows(double tolerance = 0.01) const;
};

/**
 * Run @p predictor over @p trace, recording the misprediction
 * ratio of every window of @p window_size conditional branches.
 * A final partial window is included when it covers at least a
 * tenth of a window.
 */
TimelineResult runTimeline(Predictor &predictor, const Trace &trace,
                           u64 window_size);

} // namespace bpred

