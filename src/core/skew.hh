/**
 * @file
 * The inter-bank skewing function family (Seznec & Bodin).
 *
 * These are the exact functions of section 4.2 of the paper. For an
 * n-bit bank index, decompose the information vector V into bit
 * substrings (V3, V2, V1) with V1 and V2 the two low-order n-bit
 * strings. With the bit-mixing permutation
 *
 *   H(y_n, ..., y_1) = (y_n XOR y_1, y_n, y_{n-1}, ..., y_3, y_2)
 *
 * the three bank-index functions are
 *
 *   f0(V) = H(V1)    XOR H^-1(V2) XOR V2
 *   f1(V) = H(V1)    XOR H^-1(V2) XOR V1
 *   f2(V) = H^-1(V1) XOR H(V2)    XOR V2
 *
 * Their key property: if two distinct vectors collide in one bank,
 * they collide in another bank only when their (V2, V1) substrings
 * are identical — so cross-bank conflicts require equality on 2n
 * bits rather than n.
 *
 * Banks 3 and 4 (for the 5-bank configurations the paper evaluates
 * but does not detail) extend the family with the same structure:
 *
 *   f3(V) = H^-1(V1) XOR H(V2)    XOR V1
 *   f4(V) = H(V1)    XOR H(V2)    XOR V2
 */

#pragma once

#include <cassert>

#include "support/bitops.hh"
#include "support/check.hh"
#include "support/logging.hh"
#include "support/types.hh"

namespace bpred
{

/** Largest bank count the skewing family supports. */
constexpr unsigned maxSkewBanks = 5;

/**
 * Out-of-line failure path for skewIndex(). Kept cold and
 * non-inlined so the panic machinery (string construction) does not
 * bloat skewIndex past the inliner's budget — a non-inlined
 * skewIndex costs a register-clobbering call per bank per branch in
 * the replay kernels.
 */
[[noreturn, gnu::cold, gnu::noinline]] inline void
skewIndexBankPanic()
{
    panic("skewIndex: bank out of range");
}

/**
 * The mixing permutation H on the low @p n bits of @p y.
 *
 * Defined inline (like the whole family below): the skewed
 * predictor evaluates these per bank per branch, so they must fold
 * into the replay loops rather than cost a call each.
 *
 * @param y Input value; bits above n are ignored.
 * @param n Width in bits (1 <= n <= 63).
 */
[[gnu::always_inline]] inline u64
skewH(u64 y, unsigned n)
{
    assert(n >= 1 && n < 64);
    y &= mask(n);
    if (n == 1) {
        return y;
    }
    const u64 top = bit(y, n - 1) ^ bit(y, 0);
    return (y >> 1) | (top << (n - 1));
}

/** The inverse permutation H^-1 (skewH(skewHInverse(y)) == y). */
[[gnu::always_inline]] inline u64
skewHInverse(u64 y, unsigned n)
{
    assert(n >= 1 && n < 64);
    y &= mask(n);
    if (n == 1) {
        return y;
    }
    // From x = H(y): bits x_{n-1..1} are y_{n..2} and
    // x_n = y_n XOR y_1, so y_1 = x_n XOR x_{n-1}.
    const u64 low = bit(y, n - 1) ^ bit(y, n - 2);
    return ((y << 1) & mask(n)) | low;
}

/**
 * Bank-index function f_bank applied to information vector @p v.
 *
 * The returned BankIndex is validated against the bank size 2^n in
 * checked builds — a permutation bug that leaks a bit past the bank
 * boundary panics instead of silently aliasing into a neighbour —
 * and converts implicitly to u64 elsewhere.
 *
 * @param bank Which function of the family (0 .. maxSkewBanks-1).
 * @param v The packed (address, history) information vector.
 * @param n Bank index width in bits; each bank has 2^n entries.
 */
[[gnu::always_inline]] inline BankIndex
skewIndex(unsigned bank, u64 v, unsigned n)
{
    assert(n >= 1 && n < 32);
    const u64 v1 = v & mask(n);
    const u64 v2 = (v >> n) & mask(n);
    const u64 bank_size = u64(1) << n;

    switch (bank) {
      case 0:
        return {skewH(v1, n) ^ skewHInverse(v2, n) ^ v2, bank_size};
      case 1:
        return {skewH(v1, n) ^ skewHInverse(v2, n) ^ v1, bank_size};
      case 2:
        return {skewHInverse(v1, n) ^ skewH(v2, n) ^ v2, bank_size};
      case 3:
        return {skewHInverse(v1, n) ^ skewH(v2, n) ^ v1, bank_size};
      case 4:
        return {skewH(v1, n) ^ skewH(v2, n) ^ v2, bank_size};
      default:
        skewIndexBankPanic();
    }
}

} // namespace bpred

