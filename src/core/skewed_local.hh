/**
 * @file
 * Skewing applied to a per-address two-level scheme (§7: "the same
 * technique could be applied to remove aliasing in other prediction
 * methods, including per-address history schemes").
 *
 * A PAg predictor's shared pattern table aliases exactly like a
 * global predictor table: different branches with the same local
 * history fight over one counter. Here the pattern table is
 * replaced by an odd number of skewed banks indexed by independent
 * hashes of the (address, local-history) vector, combined by
 * majority vote with partial update.
 */

#pragma once

#include <vector>

#include "core/skewed_predictor.hh"
#include "predictors/predictor.hh"
#include "support/sat_counter.hh"

namespace bpred
{

/**
 * Skewed per-address two-level predictor ("pskew"): a first-level
 * table of per-address local histories feeding skewed second-level
 * banks.
 */
class SkewedLocalPredictor : public Predictor
{
  public:
    /**
     * @param bht_index_bits log2 of the local-history-table size.
     * @param local_history_bits Local history length.
     * @param num_banks Odd bank count (1..maxSkewBanks).
     * @param bank_index_bits log2 of each pattern bank's size.
     * @param policy Partial or total update across banks.
     * @param counter_bits Pattern counter width.
     */
    SkewedLocalPredictor(unsigned bht_index_bits,
                         unsigned local_history_bits,
                         unsigned num_banks,
                         unsigned bank_index_bits,
                         UpdatePolicy policy = UpdatePolicy::Partial,
                         unsigned counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    std::string name() const override;
    u64 storageBits() const override;
    void reset() override;
    bool supportsSnapshot() const override { return true; }
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

  private:
    u64 bankIndexOf(unsigned bank, Addr pc, u16 local_history) const;

    std::vector<u16> historyTable;
    std::vector<SatCounterArray> banks;
    unsigned bhtIndexBits;
    unsigned localHistoryBits;
    unsigned bankIndexBits;
    UpdatePolicy updatePolicy;
};

} // namespace bpred

