#include "core/skew.hh"

#include <cassert>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace bpred
{

u64
skewH(u64 y, unsigned n)
{
    assert(n >= 1 && n < 64);
    y &= mask(n);
    if (n == 1) {
        return y;
    }
    const u64 top = bit(y, n - 1) ^ bit(y, 0);
    return (y >> 1) | (top << (n - 1));
}

u64
skewHInverse(u64 y, unsigned n)
{
    assert(n >= 1 && n < 64);
    y &= mask(n);
    if (n == 1) {
        return y;
    }
    // From x = H(y): bits x_{n-1..1} are y_{n..2} and
    // x_n = y_n XOR y_1, so y_1 = x_n XOR x_{n-1}.
    const u64 low = bit(y, n - 1) ^ bit(y, n - 2);
    return ((y << 1) & mask(n)) | low;
}

BankIndex
skewIndex(unsigned bank, u64 v, unsigned n)
{
    assert(n >= 1 && n < 32);
    const u64 v1 = v & mask(n);
    const u64 v2 = (v >> n) & mask(n);
    const u64 bank_size = u64(1) << n;

    switch (bank) {
      case 0:
        return {skewH(v1, n) ^ skewHInverse(v2, n) ^ v2, bank_size};
      case 1:
        return {skewH(v1, n) ^ skewHInverse(v2, n) ^ v1, bank_size};
      case 2:
        return {skewHInverse(v1, n) ^ skewH(v2, n) ^ v2, bank_size};
      case 3:
        return {skewHInverse(v1, n) ^ skewH(v2, n) ^ v1, bank_size};
      case 4:
        return {skewH(v1, n) ^ skewH(v2, n) ^ v2, bank_size};
      default:
        panic("skewIndex: bank out of range");
    }
}

} // namespace bpred
