#include "core/shared_hysteresis.hh"

#include "core/skew.hh"
#include "predictors/info_vector.hh"
#include "support/logging.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace bpred
{

SharedHysteresisSkewedPredictor::SharedHysteresisSkewedPredictor(
    const SkewedPredictor::Config &cfg)
    : config(cfg)
{
    if (config.numBanks % 2 == 0 || config.numBanks == 0 ||
        config.numBanks > maxSkewBanks) {
        fatal("gskewed-sh: bank count must be odd and within the "
              "skewing family");
    }
    if (config.bankIndexBits < 1 || config.bankIndexBits > 28) {
        fatal("gskewed-sh: unreasonable bank index width");
    }
    if (config.counterBits != 2) {
        fatal("gskewed-sh: the shared-hysteresis encoding splits "
              "2-bit counters; counterBits must be 2");
    }
    banks.resize(config.numBanks);
    const u64 entries = u64(1) << config.bankIndexBits;
    for (Bank &bank : banks) {
        bank.prediction.assign(entries, 0);
        bank.hysteresis.assign(std::max<u64>(1, entries / 2), 1);
    }
}

u64
SharedHysteresisSkewedPredictor::bankIndexOf(unsigned bank,
                                             Addr pc) const
{
    if (config.enhanced && bank == 0) {
        return addressIndex(pc, config.bankIndexBits);
    }
    const u64 v =
        packInfoVector(pc, history.raw(), config.historyBits);
    return skewIndex(bank, v, config.bankIndexBits);
}

bool
SharedHysteresisSkewedPredictor::bankPredicts(const Bank &bank,
                                              u64 index) const
{
    return bank.prediction[index] != 0;
}

void
SharedHysteresisSkewedPredictor::bankTrain(Bank &bank, u64 index,
                                           bool taken)
{
    // Reassemble the virtual 2-bit counter, step it, write back.
    const u64 hyst_index = index >> 1;
    u8 counter = static_cast<u8>((bank.prediction[index] << 1) |
                                 bank.hysteresis[hyst_index]);
    if (taken) {
        if (counter < 3) {
            ++counter;
        }
    } else {
        if (counter > 0) {
            --counter;
        }
    }
    bank.prediction[index] = static_cast<u8>(counter >> 1);
    bank.hysteresis[hyst_index] = static_cast<u8>(counter & 1);
}

bool
SharedHysteresisSkewedPredictor::predict(Addr pc)
{
    unsigned votes_taken = 0;
    for (unsigned bank = 0; bank < config.numBanks; ++bank) {
        if (bankPredicts(banks[bank], bankIndexOf(bank, pc))) {
            ++votes_taken;
        }
    }
    return votes_taken * 2 > config.numBanks;
}

void
SharedHysteresisSkewedPredictor::update(Addr pc, bool taken)
{
    unsigned votes_taken = 0;
    u64 indices[maxSkewBanks];
    bool bank_predictions[maxSkewBanks];
    for (unsigned bank = 0; bank < config.numBanks; ++bank) {
        indices[bank] = bankIndexOf(bank, pc);
        bank_predictions[bank] =
            bankPredicts(banks[bank], indices[bank]);
        if (bank_predictions[bank]) {
            ++votes_taken;
        }
    }
    const bool overall = votes_taken * 2 > config.numBanks;
    const bool overall_correct = overall == taken;
    const bool partial =
        config.updatePolicy != UpdatePolicy::Total;

    for (unsigned bank = 0; bank < config.numBanks; ++bank) {
        const bool bank_correct = bank_predictions[bank] == taken;
        if (partial && overall_correct && !bank_correct) {
            continue;
        }
        bankTrain(banks[bank], indices[bank], taken);
    }
    history.shiftIn(taken);
}

void
SharedHysteresisSkewedPredictor::notifyUnconditional(Addr)
{
    history.shiftIn(true);
}

std::string
SharedHysteresisSkewedPredictor::name() const
{
    std::string label =
        config.enhanced ? "e-gskew-sh" : "gskewed-sh";
    label += "-" + std::to_string(config.numBanks) + "x" +
        formatEntries(entriesPerBank());
    label += "-h" + std::to_string(config.historyBits);
    label += config.updatePolicy == UpdatePolicy::Total ? "-total"
                                                        : "-partial";
    return label;
}

u64
SharedHysteresisSkewedPredictor::storageBits() const
{
    u64 total = 0;
    for (const Bank &bank : banks) {
        total += bank.prediction.size() + bank.hysteresis.size();
    }
    return total;
}

void
SharedHysteresisSkewedPredictor::saveState(std::ostream &os) const
{
    for (const Bank &bank : banks) {
        putU64(os, bank.prediction.size());
        putBytes(os, bank.prediction.data(), bank.prediction.size());
        putU64(os, bank.hysteresis.size());
        putBytes(os, bank.hysteresis.data(), bank.hysteresis.size());
    }
    putU64(os, history.raw());
}

void
SharedHysteresisSkewedPredictor::loadState(std::istream &is)
{
    for (Bank &bank : banks) {
        if (getU64(is) != bank.prediction.size()) {
            fatal("gskewed-sh: snapshot geometry mismatch");
        }
        getBytes(is, bank.prediction.data(), bank.prediction.size());
        if (getU64(is) != bank.hysteresis.size()) {
            fatal("gskewed-sh: snapshot geometry mismatch");
        }
        getBytes(is, bank.hysteresis.data(), bank.hysteresis.size());
        for (const u8 bit : bank.prediction) {
            if (bit > 1) {
                fatal("gskewed-sh: snapshot bit out of range");
            }
        }
        for (const u8 bit : bank.hysteresis) {
            if (bit > 1) {
                fatal("gskewed-sh: snapshot bit out of range");
            }
        }
    }
    history.set(getU64(is));
}

void
SharedHysteresisSkewedPredictor::reset()
{
    for (Bank &bank : banks) {
        std::fill(bank.prediction.begin(), bank.prediction.end(), 0);
        std::fill(bank.hysteresis.begin(), bank.hysteresis.end(), 1);
    }
    history.reset();
}

} // namespace bpred
