#include "core/skewed_predictor.hh"

#include <cassert>

#include "core/skew.hh"
#include "core/skewed_kernel_simd.hh"
#include "predictors/block_kernel.hh"
#include "predictors/info_vector.hh"
#include "predictors/replay_scratch.hh"
#include "support/logging.hh"
#include "support/probe.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace bpred
{

namespace
{

/**
 * Skewed-predictor hot state (see block_kernel.hh): per-bank counter
 * views, a by-value Config, a by-value history register, and a local
 * write tally, so the vote/update loop runs entirely out of
 * registers and the (inlined) skewing hashes. The bank count is a
 * template parameter — replayBlock() dispatches over the odd counts
 * the skewing family admits — so the bank loops fully unroll and
 * the skewH/skewHInverse subexpressions the f0/f1/f2 functions
 * share are computed once per branch, not once per bank. step()
 * computes the same result as SkewedPredictor::updateUnprobed() —
 * the block-vs-scalar contract tests pin the two against each other
 * for every policy, indexing mode, and the enhanced variant.
 */
template <unsigned NumBanks>
struct SkewedBlockState
{
    static_assert(NumBanks >= 1 && NumBanks <= maxSkewBanks);

    SatCounterArray::View banks[NumBanks];
    SkewedPredictor::Config config;
    GlobalHistory history;
    u64 bankWrites = 0;
    GlobalHistory *historyOut = nullptr;
    u64 *bankWritesOut = nullptr;

    u64
    bankIndexOf(unsigned bank, Addr pc) const
    {
        if (config.indexing == BankIndexing::IdenticalGshare) {
            return gshareIndex(pc, history.raw(), config.historyBits,
                               config.bankIndexBits);
        }
        if (config.enhanced && bank == 0) {
            // e-gskew: bank 0 sees the address alone (bit truncation).
            return addressIndex(pc, config.bankIndexBits);
        }
        const u64 v =
            packInfoVector(pc, history.raw(), config.historyBits);
        return skewIndex(bank, v, config.bankIndexBits);
    }

    bool
    step(Addr pc, bool taken)
    {
        unsigned votes_taken = 0;
        u64 indices[NumBanks];
        u8 values[NumBanks];
        bool bank_predictions[NumBanks];
        for (unsigned bank = 0; bank < NumBanks; ++bank) {
            indices[bank] = bankIndexOf(bank, pc);
            values[bank] = banks[bank].value(indices[bank]);
            bank_predictions[bank] =
                values[bank] >= banks[bank].threshold;
            votes_taken += unsigned(bank_predictions[bank]);
        }
        const bool overall = votes_taken * 2 > NumBanks;
        const bool overall_correct = overall == taken;

        // The policy skips below are decided by data (the branch
        // outcome and per-bank agreement), so they are computed as
        // straight-line ALU arithmetic — bitwise bool combination,
        // write-enable folded into the store multiplicatively — so
        // the loop carries no data-dependent branch the host CPU
        // could mispredict. A policy-skipped bank stores its old
        // value back; bankWrites still counts exactly the updates
        // the scalar updateUnprobed() performs.
        const bool partial =
            config.updatePolicy == UpdatePolicy::Partial ||
            config.updatePolicy == UpdatePolicy::PartialLazy;
        const bool lazy =
            config.updatePolicy == UpdatePolicy::PartialLazy;
        const u8 max = banks[0].max;
        const u8 saturated = static_cast<u8>(max * int(taken));
        for (unsigned bank = 0; bank < NumBanks; ++bank) {
            const bool bank_correct = bank_predictions[bank] == taken;
            const u8 value = values[bank];
            const int skip_partial = int(partial) &
                int(overall_correct) & int(!bank_correct);
            const int skip_lazy = int(lazy) & int(bank_correct) &
                int(value == saturated);
            const int write = 1 & ~(skip_partial | skip_lazy);
            const int up = int(taken) & int(value < max);
            const int down = int(!taken) & int(value > 0);
            banks[bank].at(indices[bank]) =
                static_cast<u8>(value + write * (up - down));
            bankWrites += u64(write);
        }
        history.shiftIn(taken);
        return overall;
    }

    void unconditional(Addr) { history.shiftIn(true); }

    void
    commit()
    {
        *historyOut = history;
        *bankWritesOut += bankWrites;
    }
};

} // namespace

const SkewedPredictor::Config &
SkewedPredictor::validated(const Config &config)
{
    if (config.numBanks % 2 == 0 || config.numBanks == 0 ||
        config.numBanks > maxSkewBanks) {
        fatal("gskewed: bank count must be odd and within the "
              "skewing family (got " +
              std::to_string(config.numBanks) + ")");
    }
    if (config.bankIndexBits < 1 || config.bankIndexBits > 28) {
        fatal("gskewed: unreasonable bank index width");
    }
    if (config.counterBits < 1 || config.counterBits > 8) {
        fatal("gskewed: bad counter width");
    }
    return config;
}

SkewedPredictor::SkewedPredictor(const Config &cfg)
    : config(validated(cfg)),
      banks(config.numBanks, u64(1) << config.bankIndexBits,
            config.counterBits, BankLayout::Interleaved)
{
}

SkewedPredictor::SkewedPredictor(unsigned num_banks,
                                 unsigned bank_index_bits,
                                 unsigned history_bits,
                                 UpdatePolicy policy,
                                 unsigned counter_bits)
    : SkewedPredictor(Config{num_banks, bank_index_bits, history_bits,
                             counter_bits, policy,
                             BankIndexing::Skewed, false})
{
}

u64
SkewedPredictor::bankIndexOf(unsigned bank, Addr pc) const
{
    if (config.indexing == BankIndexing::IdenticalGshare) {
        return gshareIndex(pc, history.raw(), config.historyBits,
                           config.bankIndexBits);
    }
    if (config.enhanced && bank == 0) {
        // e-gskew: bank 0 sees the address alone (bit truncation).
        return addressIndex(pc, config.bankIndexBits);
    }
    const u64 v = packInfoVector(pc, history.raw(), config.historyBits);
    return skewIndex(bank, v, config.bankIndexBits);
}

std::vector<u64>
SkewedPredictor::bankIndices(Addr pc) const
{
    std::vector<u64> indices(config.numBanks);
    for (unsigned bank = 0; bank < config.numBanks; ++bank) {
        indices[bank] = bankIndexOf(bank, pc);
    }
    return indices;
}

bool
SkewedPredictor::predict(Addr pc)
{
    unsigned votes_taken = 0;
    for (unsigned bank = 0; bank < config.numBanks; ++bank) {
        if (banks.predictTaken(bank, bankIndexOf(bank, pc))) {
            ++votes_taken;
        }
    }
    return votes_taken * 2 > config.numBanks;
}

void
SkewedPredictor::update(Addr pc, bool taken)
{
    // Dispatch before any work: the instrumented variant repeats the
    // whole algorithm with event publishing, keeping the no-sink
    // pass free of probe checks.
    if (probeSink) [[unlikely]] {
        updateProbed(pc, taken);
        return;
    }
    updateUnprobed(pc, taken);
}

Outcome
SkewedPredictor::predictAndUpdate(Addr pc, bool taken)
{
    if (probeSink) [[unlikely]] {
        // Off the hot loop; reuse the split implementation so event
        // order stays identical to predict()+update().
        const bool prediction = predict(pc);
        updateProbed(pc, taken);
        return {prediction};
    }
    // One pass: updateUnprobed() already computes every bank index
    // and vote, so the fused path skips predict()'s duplicate index
    // computation and bank reads entirely.
    return {updateUnprobed(pc, taken)};
}

void
SkewedPredictor::replayBlock(const BranchRecord *records,
                             std::size_t count,
                             ReplayCounters &counters,
                             ReplayScratch *scratch)
{
    if (probeSink) [[unlikely]] {
        // Scalar delegation keeps the event stream bit-identical.
        Predictor::replayBlock(records, count, counters);
        return;
    }
    const bool phase_split = scratch &&
        simdSkewGeometryOk(config.bankIndexBits, config.historyBits) &&
        resolveSimdMode(scratch->mode) == SimdMode::Avx2;
    // Covers both gskewed and e-gskew (one kernel instantiation per
    // bank count): the inlined fused step mirrors updateUnprobed(),
    // so each bank index is computed once per branch and the loop
    // carries no virtual calls at all. The phase-split variant
    // (skewed_kernel_simd.hh) precomputes every bank's indices for
    // the block with the vectorized f0..f4 kernels first — exact,
    // because history advances on outcomes, never predictions — and
    // resolves fed by them with cross-bank prefetch.
    const auto run = [&]<unsigned NumBanks>() {
        if (phase_split) {
            const bool identical =
                config.indexing == BankIndexing::IdenticalGshare;
            const bool partial =
                config.updatePolicy == UpdatePolicy::Partial ||
                config.updatePolicy == UpdatePolicy::PartialLazy;
            const bool lazy =
                config.updatePolicy == UpdatePolicy::PartialLazy;
            // One u8 counter per entry per bank: the group's total
            // footprint decides whether the resolve pass prefetches.
            const bool prefetch = simdWantsCounterPrefetch(
                u64(NumBanks) << config.bankIndexBits);
            const u64 history_out = replayTiled(
                records, count, history.raw(), *scratch, NumBanks,
                [&](std::size_t conditionals) {
                    const u64 *pcs = scratch->pc.data();
                    const u64 *hists = scratch->history.data();
                    if (identical) {
                        // Pure replication: one shared index set.
                        fillGshareIndices(SimdMode::Avx2, pcs, hists,
                                          conditionals,
                                          config.historyBits,
                                          config.bankIndexBits,
                                          scratch->indices[0].data());
                    } else {
                        // One fused pass: the banks share the packed
                        // vector and the four H permutation values,
                        // and e-gskew's address-only bank 0 rides
                        // along on the loaded pc lanes.
                        u32 *outs[NumBanks];
                        for (unsigned bank = 0; bank < NumBanks;
                             ++bank) {
                            outs[bank] = (config.enhanced && bank == 0)
                                ? nullptr
                                : scratch->indices[bank].data();
                        }
                        fillSkewIndexGroup(
                            SimdMode::Avx2, pcs, hists, conditionals,
                            config.historyBits, config.bankIndexBits,
                            NumBanks, outs,
                            config.enhanced
                                ? scratch->indices[0].data()
                                : nullptr);
                    }
                    SatCounterArray::View views[NumBanks];
                    const u32 *idx[NumBanks];
                    for (unsigned bank = 0; bank < NumBanks; ++bank) {
                        views[bank] = banks.bankView(bank);
                        idx[bank] = identical
                            ? scratch->indices[0].data()
                            : scratch->indices[bank].data();
                    }
                    resolveSkewedBanks(
                        views, idx, scratch->taken.data(),
                        conditionals, partial, lazy, prefetch,
                        counters, bankWriteCount,
                        [&](unsigned bank, std::size_t j) -> u64 {
                            if (identical) {
                                return u64(gshareIndex(
                                    pcs[j], hists[j],
                                    config.historyBits,
                                    config.bankIndexBits));
                            }
                            if (config.enhanced && bank == 0) {
                                return u64(addressIndex(
                                    pcs[j], config.bankIndexBits));
                            }
                            return u64(skewIndex(
                                bank,
                                packInfoVector(pcs[j], hists[j],
                                               config.historyBits),
                                config.bankIndexBits));
                        });
                });
            history.set(history_out);
            return;
        }
        SkewedBlockState<NumBanks> state{};
        for (unsigned bank = 0; bank < NumBanks; ++bank) {
            state.banks[bank] = banks.bankView(bank);
        }
        state.config = config;
        state.history = history;
        state.historyOut = &history;
        state.bankWritesOut = &bankWriteCount;
        replayBlockWithState(state, records, count, counters);
    };
    // The constructor admits only the family's odd bank counts.
    switch (config.numBanks) {
      case 1:
        run.template operator()<1>();
        break;
      case 3:
        run.template operator()<3>();
        break;
      case 5:
        run.template operator()<5>();
        break;
      default:
        panic("gskewed: bank count outside the skewing family");
    }
}

bool
SkewedPredictor::updateUnprobed(Addr pc, bool taken)
{
    // Compute per-bank indices and predictions with the pre-branch
    // history (update() contract), then apply the update policy.
    unsigned votes_taken = 0;
    u64 indices[maxSkewBanks];
    bool bank_predictions[maxSkewBanks];
    for (unsigned bank = 0; bank < config.numBanks; ++bank) {
        indices[bank] = bankIndexOf(bank, pc);
        bank_predictions[bank] =
            banks.predictTaken(bank, indices[bank]);
        if (bank_predictions[bank]) {
            ++votes_taken;
        }
    }
    const bool overall = votes_taken * 2 > config.numBanks;
    const bool overall_correct = overall == taken;

    const bool partial =
        config.updatePolicy == UpdatePolicy::Partial ||
        config.updatePolicy == UpdatePolicy::PartialLazy;
    for (unsigned bank = 0; bank < config.numBanks; ++bank) {
        const bool bank_correct = bank_predictions[bank] == taken;
        if (partial && overall_correct && !bank_correct) {
            // The bank disagreed but the vote was right: its entry
            // likely serves another substream, so leave it alone.
            continue;
        }
        if (config.updatePolicy == UpdatePolicy::PartialLazy &&
            bank_correct) {
            // Skip the write when the counter is already saturated
            // toward the outcome; its value would not change.
            const u8 value = banks.value(bank, indices[bank]);
            const u8 saturated = taken
                ? static_cast<u8>(mask(config.counterBits))
                : u8(0);
            if (value == saturated) {
                continue;
            }
        }
        banks.update(bank, indices[bank], taken);
        ++bankWriteCount;
    }
    history.shiftIn(taken);
    return overall;
}

void
SkewedPredictor::updateProbed(Addr pc, bool taken)
{
    // Mirrors update() exactly, adding event publishing at each
    // decision point. test_probe's SinkDoesNotChangePredictions
    // guards the two paths against drifting apart.
    unsigned votes_taken = 0;
    u64 indices[maxSkewBanks];
    bool bank_predictions[maxSkewBanks];
    for (unsigned bank = 0; bank < config.numBanks; ++bank) {
        indices[bank] = bankIndexOf(bank, pc);
        bank_predictions[bank] =
            banks.predictTaken(bank, indices[bank]);
        if (bank_predictions[bank]) {
            ++votes_taken;
        }
    }
    const bool overall = votes_taken * 2 > config.numBanks;
    const bool overall_correct = overall == taken;

    probeSink->onResolved({pc, overall, taken});
    for (unsigned bank = 0; bank < config.numBanks; ++bank) {
        probeSink->onBankVote(
            {pc, bank, bank_predictions[bank], overall, taken});
    }

    const bool partial =
        config.updatePolicy == UpdatePolicy::Partial ||
        config.updatePolicy == UpdatePolicy::PartialLazy;
    for (unsigned bank = 0; bank < config.numBanks; ++bank) {
        const bool bank_correct = bank_predictions[bank] == taken;
        if (partial && overall_correct && !bank_correct) {
            probeSink->onUpdateSkip(
                {bank, UpdateSkipEvent::Reason::PartialProtect});
            continue;
        }
        if (config.updatePolicy == UpdatePolicy::PartialLazy &&
            bank_correct) {
            const u8 value = banks.value(bank, indices[bank]);
            const u8 saturated = taken
                ? static_cast<u8>(mask(config.counterBits))
                : u8(0);
            if (value == saturated) {
                probeSink->onUpdateSkip(
                    {bank, UpdateSkipEvent::Reason::LazySaturated});
                continue;
            }
        }
        const u8 before = banks.value(bank, indices[bank]);
        banks.update(bank, indices[bank], taken);
        const u8 after = banks.value(bank, indices[bank]);
        if (before != after) {
            probeSink->onCounterWrite({bank, before, after});
        }
        ++bankWriteCount;
    }
    history.shiftIn(taken);
}

void
SkewedPredictor::notifyUnconditional(Addr)
{
    history.shiftIn(true);
}

std::string
SkewedPredictor::name() const
{
    std::string label = config.enhanced ? "e-gskew" : "gskewed";
    label += "-" + std::to_string(config.numBanks) + "x" +
        formatEntries(entriesPerBank());
    label += "-h" + std::to_string(config.historyBits);
    switch (config.updatePolicy) {
      case UpdatePolicy::Total:
        label += "-total";
        break;
      case UpdatePolicy::Partial:
        label += "-partial";
        break;
      case UpdatePolicy::PartialLazy:
        label += "-partial-lazy";
        break;
    }
    if (config.indexing == BankIndexing::IdenticalGshare) {
        label += "-identical";
    }
    return label;
}

u64
SkewedPredictor::storageBits() const
{
    return banks.storageBits();
}

void
SkewedPredictor::reset()
{
    banks.reset();
    history.reset();
    bankWriteCount = 0;
}

void
SkewedPredictor::saveState(std::ostream &os) const
{
    // Bank-by-bank framing, byte-identical to the pre-bank-group
    // stream of standalone SatCounterArray snapshots.
    for (unsigned bank = 0; bank < config.numBanks; ++bank) {
        banks.saveBankState(bank, os);
    }
    putU64(os, history.raw());
    putU64(os, bankWriteCount);
}

void
SkewedPredictor::loadState(std::istream &is)
{
    for (unsigned bank = 0; bank < config.numBanks; ++bank) {
        banks.loadBankState(bank, is);
    }
    history.set(getU64(is));
    bankWriteCount = getU64(is);
}

SkewedPredictor::Config
makeEnhancedConfig(unsigned bank_index_bits, unsigned history_bits,
                   unsigned counter_bits)
{
    SkewedPredictor::Config config;
    config.numBanks = 3;
    config.bankIndexBits = bank_index_bits;
    config.historyBits = history_bits;
    config.counterBits = counter_bits;
    config.updatePolicy = UpdatePolicy::Partial;
    config.indexing = BankIndexing::Skewed;
    config.enhanced = true;
    return config;
}

} // namespace bpred
