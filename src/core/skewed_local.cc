#include "core/skewed_local.hh"

#include <cassert>

#include "core/skew.hh"
#include "predictors/info_vector.hh"
#include "support/logging.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace bpred
{

SkewedLocalPredictor::SkewedLocalPredictor(unsigned bht_index_bits,
                                           unsigned local_history_bits,
                                           unsigned num_banks,
                                           unsigned bank_index_bits,
                                           UpdatePolicy policy,
                                           unsigned counter_bits)
    : historyTable(u64(1) << bht_index_bits, 0),
      bhtIndexBits(bht_index_bits),
      localHistoryBits(local_history_bits),
      bankIndexBits(bank_index_bits),
      updatePolicy(policy)
{
    if (num_banks % 2 == 0 || num_banks == 0 ||
        num_banks > maxSkewBanks) {
        fatal("pskew: bank count must be odd and within the skewing "
              "family");
    }
    if (local_history_bits < 1 || local_history_bits > 16) {
        fatal("pskew: local history length out of range");
    }
    banks.reserve(num_banks);
    for (unsigned bank = 0; bank < num_banks; ++bank) {
        banks.emplace_back(u64(1) << bank_index_bits, counter_bits);
    }
}

u64
SkewedLocalPredictor::bankIndexOf(unsigned bank, Addr pc,
                                  u16 local_history) const
{
    // The information vector is (address, local history) — the
    // same packing as the global schemes, with the local history
    // in the low bits.
    const u64 v = packInfoVector(pc, local_history, localHistoryBits);
    return skewIndex(bank, v, bankIndexBits);
}

bool
SkewedLocalPredictor::predict(Addr pc)
{
    const u16 local_history =
        historyTable[addressIndex(pc, bhtIndexBits)];
    unsigned votes_taken = 0;
    for (unsigned bank = 0; bank < banks.size(); ++bank) {
        if (banks[bank].predictTaken(
                bankIndexOf(bank, pc, local_history))) {
            ++votes_taken;
        }
    }
    return votes_taken * 2 > banks.size();
}

void
SkewedLocalPredictor::update(Addr pc, bool taken)
{
    u16 &local_history = historyTable[addressIndex(pc, bhtIndexBits)];

    unsigned votes_taken = 0;
    u64 indices[maxSkewBanks];
    bool bank_predictions[maxSkewBanks];
    for (unsigned bank = 0; bank < banks.size(); ++bank) {
        indices[bank] = bankIndexOf(bank, pc, local_history);
        bank_predictions[bank] =
            banks[bank].predictTaken(indices[bank]);
        if (bank_predictions[bank]) {
            ++votes_taken;
        }
    }
    const bool overall = votes_taken * 2 > banks.size();
    const bool overall_correct = overall == taken;
    const bool partial = updatePolicy != UpdatePolicy::Total;

    for (unsigned bank = 0; bank < banks.size(); ++bank) {
        const bool bank_correct = bank_predictions[bank] == taken;
        if (partial && overall_correct && !bank_correct) {
            continue;
        }
        banks[bank].update(indices[bank], taken);
    }

    local_history = static_cast<u16>(
        ((local_history << 1) | (taken ? 1 : 0)) &
        mask(localHistoryBits));
}

std::string
SkewedLocalPredictor::name() const
{
    return "pskew-" + formatEntries(historyTable.size()) + "x" +
        std::to_string(localHistoryBits) + "-" +
        std::to_string(banks.size()) + "x" +
        formatEntries(u64(1) << bankIndexBits);
}

u64
SkewedLocalPredictor::storageBits() const
{
    u64 total = historyTable.size() * localHistoryBits;
    for (const auto &bank : banks) {
        total += bank.storageBits();
    }
    return total;
}

void
SkewedLocalPredictor::reset()
{
    std::fill(historyTable.begin(), historyTable.end(), 0);
    for (auto &bank : banks) {
        bank.reset();
    }
}

void
SkewedLocalPredictor::saveState(std::ostream &os) const
{
    putU64(os, historyTable.size());
    for (const u16 entry : historyTable) {
        putU16(os, entry);
    }
    for (const auto &bank : banks) {
        bank.saveState(os);
    }
}

void
SkewedLocalPredictor::loadState(std::istream &is)
{
    const u64 count = getU64(is);
    if (count != historyTable.size()) {
        fatal("pskew snapshot: history table size mismatch (stored " +
              std::to_string(count) + ", predictor has " +
              std::to_string(historyTable.size()) + ")");
    }
    std::vector<u16> restored(historyTable.size());
    for (u16 &entry : restored) {
        entry = getU16(is);
        if (entry > mask(localHistoryBits)) {
            fatal("pskew snapshot: local history exceeds " +
                  std::to_string(localHistoryBits) + " bits");
        }
    }
    for (auto &bank : banks) {
        bank.loadState(is);
    }
    historyTable = std::move(restored);
}

} // namespace bpred
