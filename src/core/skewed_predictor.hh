/**
 * @file
 * The skewed branch predictor (gskewed) and its enhanced variant
 * (e-gskew) — the paper's primary contribution.
 */

#pragma once

#include <vector>

#include "predictors/history.hh"
#include "predictors/predictor.hh"
#include "support/sat_counter.hh"

namespace bpred
{

/** How bank counters are trained after a resolved branch (§4.1). */
enum class UpdatePolicy
{
    /** Every bank trains toward the outcome, unconditionally. */
    Total,

    /**
     * A bank that mispredicted is left untouched when the overall
     * (majority) prediction was correct; its entry is presumed to
     * belong to a different substream. On an overall misprediction
     * all banks train. This is the policy the paper recommends.
     */
    Partial,

    /**
     * Partial, plus: an agreeing bank already saturated in the
     * right direction is not rewritten. Prediction behaviour is
     * identical to Partial (a saturated counter does not move);
     * what changes is write traffic — an answer to the paper's
     * §7 question about further update policies, in the direction
     * the Alpha EV8 design later took to cut predictor array
     * write ports. Compare bankWrites() across policies.
     */
    PartialLazy,
};

/** How each bank computes its index (the skewing ablation knob). */
enum class BankIndexing
{
    /** The f0/f1/f2... skewing family — the paper's design. */
    Skewed,

    /**
     * Every bank uses the same gshare index: pure replication.
     * Exists to isolate how much of gskewed's gain comes from
     * inter-bank hash independence (ablation A3).
     */
    IdenticalGshare,
};

/**
 * The skewed branch predictor: an odd number of tag-less
 * saturating-counter banks, each indexed by a different skewing
 * hash of the same (address, history) vector, combined by majority
 * vote.
 *
 * The enhanced variant (§6) indexes bank 0 with the branch address
 * alone (plain bit truncation): when a long history blows up the
 * substream working set and banks 1/2 thrash, bank 0's short
 * "history" (none) keeps its last-use distances small and its vote
 * trustworthy — recovering capacity without giving up history.
 */
class SkewedPredictor : public Predictor
{
  public:
    /** Aggregated configuration (named-parameter construction). */
    struct Config
    {
        /** Number of banks; must be odd, 1 <= banks <= maxSkewBanks. */
        unsigned numBanks = 3;

        /** log2 of each bank's entry count. */
        unsigned bankIndexBits = 12;

        /** Global-history length k. */
        unsigned historyBits = 12;

        /** Counter width (1 or 2). */
        unsigned counterBits = 2;

        UpdatePolicy updatePolicy = UpdatePolicy::Partial;

        BankIndexing indexing = BankIndexing::Skewed;

        /** True selects the enhanced (e-gskew) bank-0 indexing. */
        bool enhanced = false;
    };

    explicit SkewedPredictor(const Config &config);

    /** Convenience constructor for the common 3-bank setup. */
    SkewedPredictor(unsigned num_banks, unsigned bank_index_bits,
                    unsigned history_bits,
                    UpdatePolicy policy = UpdatePolicy::Partial,
                    unsigned counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    Outcome predictAndUpdate(Addr pc, bool taken) override;
    void replayBlock(const BranchRecord *records, std::size_t count,
                     ReplayCounters &counters,
                     ReplayScratch *scratch) override;
    void notifyUnconditional(Addr pc) override;
    std::string name() const override;
    u64 storageBits() const override;
    void reset() override;
    bool supportsSnapshot() const override { return true; }
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

    /** Number of banks. */
    unsigned numBanks() const { return config.numBanks; }

    /** Entries per bank. */
    u64 entriesPerBank() const { return u64(1) << config.bankIndexBits; }

    /** Total entries across banks. */
    u64 totalEntries() const { return numBanks() * entriesPerBank(); }

    /** The active configuration. */
    const Config &configuration() const { return config; }

    /**
     * The index each bank would use for (@p pc, current history) —
     * exposed for white-box tests and the Figure 3 demonstration.
     */
    std::vector<u64> bankIndices(Addr pc) const;

    /**
     * Counter-array writes performed so far (the predictor-port
     * pressure metric the PartialLazy policy reduces).
     */
    u64 bankWrites() const { return bankWriteCount; }

  private:
    /**
     * Validate @p config (fatal() on a bad bank count / geometry)
     * and pass it through — runs in the member-initializer list so
     * the checks precede the bank-group construction.
     */
    static const Config &validated(const Config &config);

    u64 bankIndexOf(unsigned bank, Addr pc) const;

    /**
     * The shared no-probe resolution pass: one index computation
     * and at most one counter touch per bank, applying the update
     * policy. Returns the pre-update majority prediction — so
     * update() and the fused predictAndUpdate() cannot drift apart.
     */
    bool updateUnprobed(Addr pc, bool taken);

    /** The whole update() when a probe is attached (kept out of the
     * hot path so the uninstrumented loop carries no probe checks). */
    void updateProbed(Addr pc, bool taken);

    Config config;

    /**
     * All banks in one interleaved allocation (entry-major): the
     * counters the majority vote reads for one branch sit near each
     * other, and the phase-split resolve prefetches whole lines that
     * serve every bank. Per-bank snapshot framing is preserved by
     * saveBankState()/loadBankState().
     */
    SatCounterBankGroup banks;
    GlobalHistory history;
    u64 bankWriteCount = 0;
};

/** Convenience alias constructor for the §6 enhanced predictor. */
SkewedPredictor::Config makeEnhancedConfig(unsigned bank_index_bits,
                                           unsigned history_bits,
                                           unsigned counter_bits = 2);

} // namespace bpred

