/**
 * @file
 * A distributed predictor encoding for skewed banks (§7, future
 * work: "do there exist alternative 'distributed' predictor
 * encodings that are more space efficient?").
 *
 * Each bank splits its 2-bit counters into a full-size array of
 * *prediction* bits and a half-size array of *hysteresis* bits
 * shared by pairs of adjacent entries — 1.5 bits per entry instead
 * of 2. The direction bit stays private, so the majority vote is
 * unchanged; only the strengthening state can be perturbed by the
 * neighbour entry. This is the direction the Alpha EV8 predictor
 * (derived from e-gskew) later took.
 */

#pragma once

#include <vector>

#include "core/skewed_predictor.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpred
{

/**
 * gskewed / e-gskew with the shared-hysteresis bank encoding.
 *
 * Geometry and indexing mirror SkewedPredictor (same skewing
 * functions, same enhanced bank-0 option, partial or total update);
 * only the bank storage differs: per entry, a private prediction
 * bit plus a hysteresis bit shared with the entry's neighbour
 * (index ^ 1), for 1.5 bits/entry.
 */
class SharedHysteresisSkewedPredictor : public Predictor
{
  public:
    explicit SharedHysteresisSkewedPredictor(
        const SkewedPredictor::Config &config);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void notifyUnconditional(Addr pc) override;
    std::string name() const override;

    /** 1.5 bits per entry: entries + entries/2 hysteresis bits. */
    u64 storageBits() const override;

    void reset() override;
    bool supportsSnapshot() const override { return true; }
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

    /** Entries per bank. */
    u64 entriesPerBank() const { return u64(1) << config.bankIndexBits; }

  private:
    struct Bank
    {
        /** One direction bit per entry. */
        std::vector<u8> prediction;

        /** One hysteresis bit per entry *pair* (indexed i >> 1). */
        std::vector<u8> hysteresis;
    };

    u64 bankIndexOf(unsigned bank, Addr pc) const;
    bool bankPredicts(const Bank &bank, u64 index) const;
    void bankTrain(Bank &bank, u64 index, bool taken);

    SkewedPredictor::Config config;
    std::vector<Bank> banks;
    GlobalHistory history;
};

} // namespace bpred

