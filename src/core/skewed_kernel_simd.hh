/**
 * @file
 * Phase-split kernels for the skewed predictor family: vectorized
 * f0..f4 bank-index fill and the multi-bank prefetch + resolve pass.
 *
 * Companion to predictors/block_kernel_simd.hh (which documents the
 * phase structure and the intrinsics policy); this header adds the
 * pieces specific to core/skew.hh — the H / H^-1 bit-mixing
 * permutations lifted to four 64-bit lanes, the packed information
 * vector, and the majority-vote resolve with the Total / Partial /
 * PartialLazy update policies in branchless form.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>

#include "core/skew.hh"
#include "predictors/block_kernel_simd.hh"

namespace bpred
{

/**
 * True when the skew fill kernels can vectorize this geometry: the
 * index must fit the u32 arrays, the H permutation needs at least
 * two bits to mix, and the packed information vector's history shift
 * must match scalar packInfoVector() (which checks <= 44).
 */
constexpr bool
simdSkewGeometryOk(unsigned index_bits, unsigned history_bits)
{
    return simdIndexWidthOk(index_bits) && index_bits >= 2 &&
        history_bits <= 44;
}

#if BPRED_HAVE_AVX2

/** skewH() on four lanes; @p y pre-masked to @p n bits, n >= 2. */
[[gnu::target("avx2")]] inline __m256i
skewHAvx2(__m256i y, unsigned n)
{
    const __m128i top_shift = _mm_cvtsi32_si128(int(n - 1));
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i top = _mm256_and_si256(
        _mm256_xor_si256(_mm256_srl_epi64(y, top_shift), y), one);
    return _mm256_or_si256(_mm256_srli_epi64(y, 1),
                           _mm256_sll_epi64(top, top_shift));
}

/** skewHInverse() on four lanes; @p y pre-masked, n >= 2. */
[[gnu::target("avx2")]] inline __m256i
skewHInverseAvx2(__m256i y, unsigned n)
{
    const __m128i high_shift = _mm_cvtsi32_si128(int(n - 1));
    const __m128i next_shift = _mm_cvtsi32_si128(int(n - 2));
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i low = _mm256_and_si256(
        _mm256_xor_si256(_mm256_srl_epi64(y, high_shift),
                         _mm256_srl_epi64(y, next_shift)),
        one);
    const __m256i shifted = _mm256_and_si256(
        _mm256_slli_epi64(y, 1),
        _mm256_set1_epi64x(i64(mask(n))));
    return _mm256_or_si256(shifted, low);
}

/**
 * skewIndex(bank, packInfoVector(pc, history, history_bits), n) over
 * four lanes at a time, @p n = index_bits >= 2.
 */
[[gnu::target("avx2")]] inline void
fillSkewIndicesAvx2(unsigned bank, const u64 *pc, const u64 *history,
                    std::size_t n_records, unsigned history_bits,
                    unsigned index_bits, u32 *out)
{
    const unsigned n = index_bits;
    const __m256i low_mask = _mm256_set1_epi64x(i64(mask(n)));
    const __m256i history_mask =
        _mm256_set1_epi64x(i64(mask(history_bits)));
    const __m128i pack_shift = _mm_cvtsi32_si128(int(history_bits));
    const __m128i v2_shift = _mm_cvtsi32_si128(int(n));
    std::size_t i = 0;
    for (; i + 4 <= n_records; i += 4) {
        const __m256i address = _mm256_srli_epi64(
            _mm256_load_si256(
                reinterpret_cast<const __m256i *>(pc + i)),
            2);
        const __m256i hist = _mm256_and_si256(
            _mm256_load_si256(
                reinterpret_cast<const __m256i *>(history + i)),
            history_mask);
        const __m256i vector = _mm256_or_si256(
            _mm256_sll_epi64(address, pack_shift), hist);
        const __m256i v1 = _mm256_and_si256(vector, low_mask);
        const __m256i v2 = _mm256_and_si256(
            _mm256_srl_epi64(vector, v2_shift), low_mask);
        __m256i index;
        switch (bank) {
          case 0:
            index = _mm256_xor_si256(
                _mm256_xor_si256(skewHAvx2(v1, n),
                                 skewHInverseAvx2(v2, n)),
                v2);
            break;
          case 1:
            index = _mm256_xor_si256(
                _mm256_xor_si256(skewHAvx2(v1, n),
                                 skewHInverseAvx2(v2, n)),
                v1);
            break;
          case 2:
            index = _mm256_xor_si256(
                _mm256_xor_si256(skewHInverseAvx2(v1, n),
                                 skewHAvx2(v2, n)),
                v2);
            break;
          case 3:
            index = _mm256_xor_si256(
                _mm256_xor_si256(skewHInverseAvx2(v1, n),
                                 skewHAvx2(v2, n)),
                v1);
            break;
          case 4:
            index = _mm256_xor_si256(
                _mm256_xor_si256(skewHAvx2(v1, n), skewHAvx2(v2, n)),
                v2);
            break;
          default:
            skewIndexBankPanic();
        }
        simdStoreIndices(out + i, index);
    }
    for (; i < n_records; ++i) {
        const u64 vector =
            packInfoVector(pc[i], history[i], history_bits);
        out[i] =
            static_cast<u32>(u64(skewIndex(bank, vector, index_bits)));
    }
}

#endif // BPRED_HAVE_AVX2

/**
 * Phase 1 for one skewed bank: @p mode selects the AVX2 kernel or
 * the bit-identical scalar fallback over skewIndex().
 */
inline void
fillSkewIndices(SimdMode mode, unsigned bank, const u64 *pc,
                const u64 *history, std::size_t n_records,
                unsigned history_bits, unsigned index_bits, u32 *out)
{
#if BPRED_HAVE_AVX2
    if (mode == SimdMode::Avx2) {
        fillSkewIndicesAvx2(bank, pc, history, n_records,
                            history_bits, index_bits, out);
        return;
    }
#endif
    static_cast<void>(mode);
    for (std::size_t i = 0; i < n_records; ++i) {
        const u64 vector =
            packInfoVector(pc[i], history[i], history_bits);
        out[i] =
            static_cast<u32>(u64(skewIndex(bank, vector, index_bits)));
    }
}

#if BPRED_HAVE_AVX2

/**
 * Fused phase 1 for a whole bank group: every skewIndex() bank is an
 * xor of members of {H(v1), H^-1(v1), H(v2), H^-1(v2), v1, v2}, so
 * one pass that loads pc/history, packs the information vector, and
 * applies the four permutations feeds all banks at once instead of
 * redoing that work per bank. @p outs[bank] may be null to skip a
 * bank; @p address_out, when set, additionally stores the plain
 * addressIndex() from the already-loaded pc — e-gskew's bank 0 —
 * which makes the separate address pass free.
 */
[[gnu::target("avx2")]] inline void
fillSkewIndexGroupAvx2(const u64 *pc, const u64 *history,
                       std::size_t n_records, unsigned history_bits,
                       unsigned index_bits, unsigned num_banks,
                       u32 *const *outs, u32 *address_out)
{
    const unsigned n = index_bits;
    const __m256i low_mask = _mm256_set1_epi64x(i64(mask(n)));
    const __m256i history_mask =
        _mm256_set1_epi64x(i64(mask(history_bits)));
    const __m128i pack_shift = _mm_cvtsi32_si128(int(history_bits));
    const __m128i v2_shift = _mm_cvtsi32_si128(int(n));
    std::size_t i = 0;
    for (; i + 4 <= n_records; i += 4) {
        const __m256i address = _mm256_srli_epi64(
            _mm256_load_si256(
                reinterpret_cast<const __m256i *>(pc + i)),
            2);
        const __m256i hist = _mm256_and_si256(
            _mm256_load_si256(
                reinterpret_cast<const __m256i *>(history + i)),
            history_mask);
        const __m256i vector = _mm256_or_si256(
            _mm256_sll_epi64(address, pack_shift), hist);
        const __m256i v1 = _mm256_and_si256(vector, low_mask);
        const __m256i v2 = _mm256_and_si256(
            _mm256_srl_epi64(vector, v2_shift), low_mask);
        const __m256i h1 = skewHAvx2(v1, n);
        const __m256i hi1 = skewHInverseAvx2(v1, n);
        const __m256i h2 = skewHAvx2(v2, n);
        const __m256i hi2 = skewHInverseAvx2(v2, n);
        for (unsigned bank = 0; bank < num_banks; ++bank) {
            if (!outs[bank]) {
                continue;
            }
            __m256i index;
            switch (bank) {
              case 0:
                index = _mm256_xor_si256(_mm256_xor_si256(h1, hi2),
                                         v2);
                break;
              case 1:
                index = _mm256_xor_si256(_mm256_xor_si256(h1, hi2),
                                         v1);
                break;
              case 2:
                index = _mm256_xor_si256(_mm256_xor_si256(hi1, h2),
                                         v2);
                break;
              case 3:
                index = _mm256_xor_si256(_mm256_xor_si256(hi1, h2),
                                         v1);
                break;
              case 4:
                index = _mm256_xor_si256(_mm256_xor_si256(h1, h2),
                                         v2);
                break;
              default:
                skewIndexBankPanic();
            }
            simdStoreIndices(outs[bank] + i, index);
        }
        if (address_out) {
            simdStoreIndices(address_out + i,
                             _mm256_and_si256(address, low_mask));
        }
    }
    for (; i < n_records; ++i) {
        const u64 vector =
            packInfoVector(pc[i], history[i], history_bits);
        for (unsigned bank = 0; bank < num_banks; ++bank) {
            if (outs[bank]) {
                outs[bank][i] = static_cast<u32>(
                    u64(skewIndex(bank, vector, index_bits)));
            }
        }
        if (address_out) {
            address_out[i] = static_cast<u32>(
                u64(addressIndex(pc[i], index_bits)));
        }
    }
}

#endif // BPRED_HAVE_AVX2

/**
 * Mode dispatch for fillSkewIndexGroupAvx2(); the scalar fallback is
 * the per-record skewIndex()/addressIndex() reference, bit-identical
 * to the per-bank fills.
 */
inline void
fillSkewIndexGroup(SimdMode mode, const u64 *pc, const u64 *history,
                   std::size_t n_records, unsigned history_bits,
                   unsigned index_bits, unsigned num_banks,
                   u32 *const *outs, u32 *address_out)
{
#if BPRED_HAVE_AVX2
    if (mode == SimdMode::Avx2) {
        fillSkewIndexGroupAvx2(pc, history, n_records, history_bits,
                               index_bits, num_banks, outs,
                               address_out);
        return;
    }
#endif
    static_cast<void>(mode);
    for (std::size_t i = 0; i < n_records; ++i) {
        const u64 vector =
            packInfoVector(pc[i], history[i], history_bits);
        for (unsigned bank = 0; bank < num_banks; ++bank) {
            if (outs[bank]) {
                outs[bank][i] = static_cast<u32>(
                    u64(skewIndex(bank, vector, index_bits)));
            }
        }
        if (address_out) {
            address_out[i] = static_cast<u32>(
                u64(addressIndex(pc[i], index_bits)));
        }
    }
}

namespace detail
{

/**
 * The release resolve span for the skewed family: per record, a
 * majority vote over @p NumBanks counter reads followed by the
 * branchless Total / Partial / PartialLazy policy writes. The bank
 * geometry is hoisted to raw base pointers and a shared
 * threshold/max (the group is uniform); @p StrideConst bakes the
 * view stride in at compile time when it is the interleaved
 * NumBanks or the contiguous 1 — the common layouts — so the
 * address math is a lea, not an imul (StrideConst 0 falls back to
 * the runtime stride). Two-record unroll with split accumulators:
 * the compiler does not unroll this loop at -O2 and the
 * per-iteration dependency chains are short enough that pairing
 * records measurably overlaps their counter accesses.
 */
template <unsigned NumBanks, unsigned StrideConst>
inline void
resolveSkewedSpan(u8 *const (&base)[NumBanks], unsigned stride,
                  const u32 *const (&idx)[NumBanks], const u8 *taken,
                  std::size_t begin, std::size_t end, u8 max,
                  u8 threshold, bool partial, bool lazy, u64 &mis0,
                  u64 &mis1, u64 &writes0, u64 &writes1)
{
    const auto one = [&](std::size_t j, u64 &mis, u64 &writes) {
        const u8 t = taken[j];
        u8 *ptr[NumBanks];
        u8 values[NumBanks];
        bool predictions[NumBanks];
        unsigned votes = 0;
        for (unsigned bank = 0; bank < NumBanks; ++bank) {
            const std::size_t offset = std::size_t(idx[bank][j]) *
                (StrideConst ? StrideConst : stride);
            ptr[bank] = base[bank] + offset;
            values[bank] = *ptr[bank];
            predictions[bank] = values[bank] >= threshold;
            votes += unsigned(predictions[bank]);
        }
        const bool outcome = t != 0;
        const bool overall = votes * 2 > NumBanks;
        const bool overall_correct = overall == outcome;
        const u8 saturated = u8(max * t);
        for (unsigned bank = 0; bank < NumBanks; ++bank) {
            const bool bank_correct = predictions[bank] == outcome;
            const u8 value = values[bank];
            const int skip_partial = int(partial) &
                int(overall_correct) & int(!bank_correct);
            const int skip_lazy = int(lazy) & int(bank_correct) &
                int(value == saturated);
            const int write = 1 & ~(skip_partial | skip_lazy);
            const int up = int(t) & int(value < max);
            const int down = int(t ^ 1) & int(value > 0);
            *ptr[bank] = u8(value + write * (up - down));
            writes += u64(write);
        }
        mis += u64(overall != outcome);
    };
    std::size_t j = begin;
    for (; j + 2 <= end; j += 2) {
        one(j, mis0, writes0);
        one(j + 1, mis1, writes1);
    }
    for (; j < end; ++j) {
        one(j, mis0, writes0);
    }
}

/**
 * The three-bank resolve span fully scalarized: the per-bank arrays
 * of the generic span keep GCC from promoting everything to
 * registers, and three banks is the paper's configuration (gskewed
 * and e-gskew both), so the common case gets straight-line v0/v1/v2
 * code and a bitwise majority — measured ~25% faster than the
 * generic span on e-gskew. The update policy is a template
 * parameter too: Total drops the whole skip computation and Partial
 * (the paper's enhanced default) drops the lazy saturation check,
 * instead of ANDing runtime flags per bank per record.
 */
template <unsigned StrideConst, bool Partial, bool Lazy>
inline void
resolveSkewed3Span(u8 *const (&base)[3], unsigned stride,
                   const u32 *const (&idx)[3], const u8 *taken,
                   std::size_t begin, std::size_t end, u8 max,
                   u8 threshold, u64 &mis0, u64 &mis1, u64 &writes0,
                   u64 &writes1)
{
    u8 *const b0 = base[0];
    u8 *const b1 = base[1];
    u8 *const b2 = base[2];
    const u32 *const i0 = idx[0];
    const u32 *const i1 = idx[1];
    const u32 *const i2 = idx[2];
    const auto one = [&](std::size_t j, u64 &mis, u64 &writes) {
        const u8 t = taken[j];
        const unsigned s = StrideConst ? StrideConst : stride;
        u8 *const p0 = b0 + std::size_t(i0[j]) * s;
        u8 *const p1 = b1 + std::size_t(i1[j]) * s;
        u8 *const p2 = b2 + std::size_t(i2[j]) * s;
        const u8 v0 = *p0;
        const u8 v1 = *p1;
        const u8 v2 = *p2;
        const bool q0 = v0 >= threshold;
        const bool q1 = v1 >= threshold;
        const bool q2 = v2 >= threshold;
        const bool overall =
            bool((unsigned(q0) & unsigned(q1)) |
                 (unsigned(q2) & (unsigned(q0) | unsigned(q1))));
        const bool outcome = t != 0;
        const bool overall_correct = overall == outcome;
        const u8 saturated = u8(max * t);
        const auto update = [&](u8 *ptr, u8 value, bool prediction,
                                u64 &w) {
            const bool bank_correct = prediction == outcome;
            const int skip_partial = Partial
                ? int(overall_correct) & int(!bank_correct)
                : 0;
            const int skip_lazy = Lazy
                ? int(bank_correct) & int(value == saturated)
                : 0;
            const int write = 1 & ~(skip_partial | skip_lazy);
            const int up = int(t) & int(value < max);
            const int down = int(t ^ 1) & int(value > 0);
            *ptr = u8(value + write * (up - down));
            w += u64(write);
        };
        update(p0, v0, q0, writes);
        update(p1, v1, q1, writes);
        update(p2, v2, q2, writes);
        mis += u64(overall != outcome);
    };
    std::size_t j = begin;
    for (; j + 2 <= end; j += 2) {
        one(j, mis0, writes0);
        one(j + 1, mis1, writes1);
    }
    for (; j < end; ++j) {
        one(j, mis0, writes0);
    }
}

} // namespace detail

/**
 * Phases 2+3 for the skewed family: resolve @p n precomputed
 * conditionals against the @p NumBanks bank views. When
 * @p prefetch_counters is set (bank group too big to sit in L1 —
 * simdWantsCounterPrefetch over the group's total footprint), the
 * pass runs in sub-batches, prefetching every bank's counter line
 * for the next sub-batch first; L1-resident groups run one flat
 * loop, since the prefetch instructions themselves would be the
 * overhead. The vote / policy arithmetic is the branchless form of
 * the fused SkewedBlockState::step(), consuming precomputed indices;
 * @p recompute(bank, j) is the scalar bank-index reference used by
 * checked builds to verify and repair (see block_kernel_simd.hh).
 * The banks must be one uniform group (shared counter width and
 * stride) — every caller's are.
 */
template <unsigned NumBanks, typename RecomputeIndex>
inline void
resolveSkewedBanks(SatCounterArray::View (&banks)[NumBanks],
                   const u32 *const (&idx)[NumBanks], const u8 *taken,
                   std::size_t n, bool partial, bool lazy,
                   bool prefetch_counters, ReplayCounters &counters,
                   u64 &bank_write_count,
                   [[maybe_unused]] RecomputeIndex &&recompute)
{
    const u8 max = banks[0].max;
    const u8 threshold = banks[0].threshold;
    const unsigned stride = banks[0].stride;
    for (unsigned bank = 1; bank < NumBanks; ++bank) {
        BP_DCHECK(banks[bank].max == max &&
                      banks[bank].threshold == threshold &&
                      banks[bank].stride == stride,
                  "resolveSkewedBanks: non-uniform bank group");
    }

#ifdef BPRED_CHECKED
    // Checked builds keep the straight-line loop: per-record index
    // verification dominates anyway, and the repair path stays
    // readable.
    u64 mispredicts = 0;
    u64 bank_writes = 0;
    for (std::size_t j = 0; j < n; ++j) {
        const bool outcome = taken[j] != 0;
        u64 indices[NumBanks];
        u8 values[NumBanks];
        bool bank_predictions[NumBanks];
        unsigned votes_taken = 0;
        for (unsigned bank = 0; bank < NumBanks; ++bank) {
            indices[bank] = idx[bank][j];
            const u64 expected = recompute(bank, j);
            if (indices[bank] != expected) [[unlikely]] {
                noteIndexRepair();
                indices[bank] = expected;
            }
            values[bank] = banks[bank].value(indices[bank]);
            bank_predictions[bank] =
                values[bank] >= banks[bank].threshold;
            votes_taken += unsigned(bank_predictions[bank]);
        }
        const bool overall = votes_taken * 2 > NumBanks;
        const bool overall_correct = overall == outcome;
        const u8 saturated = static_cast<u8>(max * int(outcome));
        for (unsigned bank = 0; bank < NumBanks; ++bank) {
            const bool bank_correct =
                bank_predictions[bank] == outcome;
            const u8 value = values[bank];
            const int skip_partial = int(partial) &
                int(overall_correct) & int(!bank_correct);
            const int skip_lazy = int(lazy) & int(bank_correct) &
                int(value == saturated);
            const int write = 1 & ~(skip_partial | skip_lazy);
            const int up = int(outcome) & int(value < max);
            const int down = int(!outcome) & int(value > 0);
            banks[bank].at(indices[bank]) =
                static_cast<u8>(value + write * (up - down));
            bank_writes += u64(write);
        }
        mispredicts += u64(overall != outcome);
    }
    counters.conditionals += n;
    counters.mispredicts += mispredicts;
    bank_write_count += bank_writes;
    return;
#else
    u8 *base[NumBanks];
    for (unsigned bank = 0; bank < NumBanks; ++bank) {
        base[bank] = banks[bank].values;
    }
    u64 mis0 = 0;
    u64 mis1 = 0;
    u64 writes0 = 0;
    u64 writes1 = 0;
    const auto span = [&](std::size_t begin, std::size_t end) {
        if constexpr (NumBanks == 3) {
            const auto run3 = [&](auto stride_const, auto is_partial,
                                  auto is_lazy) {
                detail::resolveSkewed3Span<stride_const(),
                                           is_partial(), is_lazy()>(
                    base, stride, idx, taken, begin, end, max,
                    threshold, mis0, mis1, writes0, writes1);
            };
            const auto policy = [&](auto stride_const) {
                const auto k3 = std::integral_constant<bool, true>();
                const auto k0 = std::integral_constant<bool, false>();
                if (lazy) {
                    run3(stride_const, k3, k3);
                } else if (partial) {
                    run3(stride_const, k3, k0);
                } else {
                    run3(stride_const, k0, k0);
                }
            };
            if (stride == 3) {
                policy(std::integral_constant<unsigned, 3>());
            } else if (stride == 1) {
                policy(std::integral_constant<unsigned, 1>());
            } else {
                policy(std::integral_constant<unsigned, 0>());
            }
        } else if (stride == NumBanks) {
            detail::resolveSkewedSpan<NumBanks, NumBanks>(
                base, stride, idx, taken, begin, end, max, threshold,
                partial, lazy, mis0, mis1, writes0, writes1);
        } else if (stride == 1) {
            detail::resolveSkewedSpan<NumBanks, 1>(
                base, stride, idx, taken, begin, end, max, threshold,
                partial, lazy, mis0, mis1, writes0, writes1);
        } else {
            detail::resolveSkewedSpan<NumBanks, 0>(
                base, stride, idx, taken, begin, end, max, threshold,
                partial, lazy, mis0, mis1, writes0, writes1);
        }
    };
    if (prefetch_counters) {
        for (std::size_t at = 0; at < n; at += simdSubBatch) {
            const std::size_t end = std::min(n, at + simdSubBatch);
            const std::size_t prefetch_end =
                std::min(n, end + simdSubBatch);
            for (std::size_t j = end; j < prefetch_end; ++j) {
                for (unsigned bank = 0; bank < NumBanks; ++bank) {
                    __builtin_prefetch(
                        base[bank] +
                            std::size_t(idx[bank][j]) * stride,
                        1);
                }
            }
            span(at, end);
        }
    } else {
        span(0, n);
    }
    counters.conditionals += n;
    counters.mispredicts += mis0 + mis1;
    bank_write_count += writes0 + writes1;
#endif
}

} // namespace bpred
