/**
 * @file
 * In-memory branch trace container and summary statistics.
 */

#pragma once

#include <string>
#include <vector>

#include "support/types.hh"
#include "trace/branch_record.hh"

namespace bpred
{

/**
 * An in-memory branch trace: a named, ordered sequence of
 * BranchRecords. The container is deliberately thin — a vector with
 * a name — so simulation loops iterate at memory speed.
 */
class Trace
{
  public:
    Trace() = default;

    /** Construct an empty trace with a benchmark name. */
    explicit Trace(std::string name) : name_(std::move(name)) {}

    /** Benchmark name ("groff", "real_gcc", ...). */
    const std::string &name() const { return name_; }

    /** Rename the trace. */
    void setName(std::string name) { name_ = std::move(name); }

    /** Append one record. */
    void
    append(const BranchRecord &record)
    {
        records_.push_back(record);
    }

    /** Append @p count records in one insertion (bulk drains). */
    void
    append(const BranchRecord *records, std::size_t count)
    {
        records_.insert(records_.end(), records, records + count);
    }

    /** Append a conditional branch. */
    void
    appendConditional(Addr pc, bool taken)
    {
        records_.push_back({pc, taken, true});
    }

    /** Append an unconditional branch (always taken). */
    void
    appendUnconditional(Addr pc)
    {
        records_.push_back({pc, true, false});
    }

    /**
     * Pre-allocate for @p n records. Callers sizing this from a
     * decoded header must validate first (readHeader() bounds the
     * declared count by the stream length).
     */
    // bp_lint: allow(reserve-untrusted): pass-through API; decode
    // paths validate before calling (see readBinaryTrace()).
    void reserve(std::size_t n) { records_.reserve(n); }

    /**
     * Release excess capacity after record-by-record generation
     * (generators over-reserve from the conditional-branch target;
     * long-lived suite traces should not carry the slack).
     */
    void shrinkToFit() { records_.shrink_to_fit(); }

    /** Total records, conditional and unconditional. */
    std::size_t size() const { return records_.size(); }

    /** True when no records are present. */
    bool empty() const { return records_.empty(); }

    /** Record at position @p index. */
    const BranchRecord &
    operator[](std::size_t index) const
    {
        return records_[index];
    }

    /** Underlying records. */
    const std::vector<BranchRecord> &records() const { return records_; }

    auto begin() const { return records_.begin(); }
    auto end() const { return records_.end(); }

    /** Drop all records (keeps the name). */
    void clear() { records_.clear(); }

  private:
    std::string name_;
    std::vector<BranchRecord> records_;
};

/**
 * Summary statistics over a trace — the quantities Table 1 and the
 * first columns of Table 2 report.
 */
struct TraceStats
{
    /** Dynamic conditional branch count. */
    u64 dynamicConditional = 0;

    /** Distinct conditional branch addresses. */
    u64 staticConditional = 0;

    /** Dynamic unconditional branch count. */
    u64 dynamicUnconditional = 0;

    /** Distinct unconditional branch addresses. */
    u64 staticUnconditional = 0;

    /** Taken conditional branches. */
    u64 takenConditional = 0;

    /** Fraction of conditional branches that were taken. */
    double takenRatio() const;

    /** Dynamic conditionals per static conditional site. */
    double dynamicPerStatic() const;
};

/** Compute summary statistics for @p trace. */
TraceStats computeTraceStats(const Trace &trace);

} // namespace bpred

