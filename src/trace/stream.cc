#include "trace/stream.hh"

#include <algorithm>
#include <vector>

#include "support/check.hh"
#include "support/logging.hh"
#include "trace/bpt_format.hh"

namespace bpred
{

std::size_t
MemoryTraceSource::pull(BranchRecord *out, std::size_t max)
{
    BP_DCHECK(next <= trace_.size(),
              "trace cursor ran past the end");
    const std::size_t available = trace_.size() - next;
    const std::size_t produced = std::min(max, available);
    const BranchRecord *begin = trace_.records().data() + next;
    std::copy(begin, begin + produced, out);
    next += produced;
    return produced;
}

BinaryTraceSource::BinaryTraceSource(std::istream &is)
    : stream(&is), scratch(defaultScratchBytes)
{
    BP_DCHECK(isCacheAligned(scratch.data()),
              "trace: decode scratch not cache aligned");
    const bpt::Header header = bpt::readHeader(*stream);
    name_ = header.name;
    remaining_ = header.count;
    lengthValidated = header.lengthValidated;
}

BinaryTraceSource::BinaryTraceSource(const std::string &path)
    : owned(std::make_unique<std::ifstream>(path, std::ios::binary)),
      stream(owned.get()), scratch(defaultScratchBytes)
{
    if (!*owned) {
        fatal("trace: cannot open '" + path + "' for reading");
    }
    BP_DCHECK(isCacheAligned(scratch.data()),
              "trace: decode scratch not cache aligned");
    const bpt::Header header = bpt::readHeader(*stream);
    name_ = header.name;
    remaining_ = header.count;
    lengthValidated = header.lengthValidated;
}

u64
BinaryTraceSource::sizeHint() const
{
    return lengthValidated ? remaining_ : 0;
}

void
BinaryTraceSource::setScratchBytes(std::size_t bytes)
{
    const std::size_t leftover = scratchEnd - scratchAt;
    const std::size_t capacity =
        std::max({bytes, leftover, bpt::maxRecordBytes});
    AlignedVector<char> next(capacity);
    std::copy(scratch.data() + scratchAt,
              scratch.data() + scratchEnd, next.data());
    scratch = std::move(next);
    scratchAt = 0;
    scratchEnd = leftover;
    BP_DCHECK(isCacheAligned(scratch.data()),
              "trace: decode scratch not cache aligned");
}

std::size_t
BinaryTraceSource::pull(BranchRecord *out, std::size_t max)
{
    const std::size_t produced = static_cast<std::size_t>(
        std::min<u64>(max, remaining_));
    // Decode from the long-lived scratch slab: the stream is read
    // in bulk slab-sized gulps, never byte-at-a-time, and no
    // per-pull allocation happens after construction.
    std::size_t done = 0;
    while (done < produced) {
        const std::size_t consumed = bpt::readRecord(
            scratch.data() + scratchAt, scratchEnd - scratchAt,
            out[done], lastPc);
        if (consumed == 0) {
            refill();
            continue;
        }
        scratchAt += consumed;
        ++done;
    }
    remaining_ -= produced;
    return produced;
}

void
BinaryTraceSource::refill()
{
    // Slide the partial record to the front and top up with one
    // bulk read. The scratch always holds at least maxRecordBytes,
    // so a record that still does not resolve after a successful
    // refill can only mean real truncation — detected below when
    // the stream has nothing left to give.
    const std::size_t leftover = scratchEnd - scratchAt;
    std::copy(scratch.data() + scratchAt,
              scratch.data() + scratchEnd, scratch.data());
    scratchAt = 0;
    scratchEnd = leftover;
    stream->read(scratch.data() + scratchEnd,
                 static_cast<std::streamsize>(scratch.size() -
                                              scratchEnd));
    const std::size_t got =
        static_cast<std::size_t>(stream->gcount());
    if (got == 0) {
        fatal("trace: truncated record");
    }
    scratchEnd += got;
}

Trace
drainSource(TraceSource &source, std::size_t chunk_records)
{
    if (chunk_records == 0) {
        fatal("drainSource: zero chunk size");
    }
    Trace trace(source.name());
    if (const u64 hint = source.sizeHint()) {
        // bp_lint: allow(reserve-untrusted): sizeHint() contractually
        // reports only validated counts (BinaryTraceSource returns 0
        // unless readHeader() bounded the declared count by the
        // stream length), so this cannot amplify a corrupt header.
        trace.reserve(static_cast<std::size_t>(hint));
    }
    AlignedVector<BranchRecord> buffer(chunk_records);
    while (const std::size_t n =
               source.pull(buffer.data(), buffer.size())) {
        BP_CHECK(n <= buffer.size(),
                 "TraceSource::pull produced more than requested");
        trace.append(buffer.data(), n);
    }
    return trace;
}

} // namespace bpred
