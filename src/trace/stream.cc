#include "trace/stream.hh"

#include <algorithm>
#include <vector>

#include "support/check.hh"
#include "support/logging.hh"
#include "trace/bpt_format.hh"

namespace bpred
{

std::size_t
MemoryTraceSource::pull(BranchRecord *out, std::size_t max)
{
    BP_DCHECK(next <= trace_.size(),
              "trace cursor ran past the end");
    const std::size_t available = trace_.size() - next;
    const std::size_t produced = std::min(max, available);
    const BranchRecord *begin = trace_.records().data() + next;
    std::copy(begin, begin + produced, out);
    next += produced;
    return produced;
}

BinaryTraceSource::BinaryTraceSource(std::istream &is) : stream(&is)
{
    const bpt::Header header = bpt::readHeader(*stream);
    name_ = header.name;
    remaining_ = header.count;
}

BinaryTraceSource::BinaryTraceSource(const std::string &path)
    : owned(std::make_unique<std::ifstream>(path, std::ios::binary)),
      stream(owned.get())
{
    if (!*owned) {
        fatal("trace: cannot open '" + path + "' for reading");
    }
    const bpt::Header header = bpt::readHeader(*stream);
    name_ = header.name;
    remaining_ = header.count;
}

std::size_t
BinaryTraceSource::pull(BranchRecord *out, std::size_t max)
{
    const std::size_t produced = static_cast<std::size_t>(
        std::min<u64>(max, remaining_));
    for (std::size_t i = 0; i < produced; ++i) {
        out[i] = bpt::readRecord(*stream, lastPc);
    }
    remaining_ -= produced;
    return produced;
}

Trace
drainSource(TraceSource &source, std::size_t chunk_records)
{
    if (chunk_records == 0) {
        fatal("drainSource: zero chunk size");
    }
    Trace trace(source.name());
    std::vector<BranchRecord> buffer(chunk_records);
    while (const std::size_t n =
               source.pull(buffer.data(), buffer.size())) {
        BP_CHECK(n <= buffer.size(),
                 "TraceSource::pull produced more than requested");
        for (std::size_t i = 0; i < n; ++i) {
            trace.append(buffer[i]);
        }
    }
    return trace;
}

} // namespace bpred
