#include "trace/adapters.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "support/aligned.hh"
#include "support/logging.hh"
#include "support/tracing.hh"
#include "trace/bpt_format.hh"
#include "trace/mmap_source.hh"
#include "trace/trace_io.hh"

#if BPRED_HAVE_ZLIB
#include <zlib.h>
#endif

namespace bpred
{

namespace
{

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** "dir/real_gcc.txt.gz" -> "real_gcc". */
std::string
traceNameFromPath(const std::string &path)
{
    const std::size_t slash = path.find_last_of("/\\");
    std::string stem =
        slash == std::string::npos ? path : path.substr(slash + 1);
    for (const char *suffix : {".gz", ".bpt", ".txt", ".trace"}) {
        if (endsWith(stem, suffix)) {
            stem.erase(stem.size() - std::string(suffix).size());
        }
    }
    return stem;
}

/**
 * Inflate a whole .gz file into memory. Growth is driven by the
 * actual inflated bytes, never by a length field, so a hostile
 * archive cannot claim its way into an absurd allocation.
 */
std::string
inflateFile(const std::string &path)
{
#if BPRED_HAVE_ZLIB
    TRACE_SCOPE("ingest", "gz-inflate");
    gzFile gz = gzopen(path.c_str(), "rb");
    if (gz == nullptr) {
        fatal("trace: cannot open '" + path + "' for reading");
    }
    std::string inflated;
    char chunk[256 * 1024];
    for (;;) {
        const int got = gzread(gz, chunk, sizeof(chunk));
        if (got < 0) {
            int err = 0;
            const char *msg = gzerror(gz, &err);
            const std::string detail(msg != nullptr ? msg : "");
            gzclose(gz);
            fatal("trace: gzip error in '" + path + "': " + detail);
        }
        if (got == 0) {
            break;
        }
        inflated.append(chunk, static_cast<std::size_t>(got));
    }
    gzclose(gz);
    return inflated;
#else
    fatal("trace: '" + path +
          "' is gzip-compressed but this build lacks zlib");
#endif
}

/**
 * Decode a whole BPT1 image already in memory (an inflated .gz):
 * the same shared header validator and bulk decoder the mmap path
 * uses, just with a materialized destination.
 */
Trace
decodeBptImage(const std::string &image, const std::string &path)
{
    const u8 *data = reinterpret_cast<const u8 *>(image.data());
    std::size_t header_bytes = 0;
    const bpt::Header header =
        bpt::readHeader(data, image.size(), header_bytes);

    Trace trace(header.name);
    // bp_lint: allow(reserve-untrusted): readHeader() above bounded
    // the count by the inflated image's real byte length.
    trace.reserve(static_cast<std::size_t>(header.count));

    const u8 *payload = data + header_bytes;
    std::size_t size = image.size() - header_bytes;
    AlignedVector<BranchRecord> buffer(64 * 1024);
    Addr last_pc = 0;
    u64 remaining = header.count;
    while (remaining > 0) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<u64>(buffer.size(), remaining));
        std::size_t consumed = 0;
        const std::size_t got = bpt::decodeRecords(
            payload, size, buffer.data(), want, last_pc, consumed);
        if (got < want) {
            fatal("trace: truncated record in '" + path + "'");
        }
        trace.append(buffer.data(), got);
        payload += consumed;
        size -= consumed;
        remaining -= got;
    }
    return trace;
}

/**
 * True when the text looks like our own "C|U <hexpc> T|N" dialect
 * rather than CBP's "<pc> <dir>": the first non-blank, non-comment
 * line starts with a kind letter.
 */
bool
looksLikeNativeText(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos) {
            continue;
        }
        const char c = line[first];
        return (c == 'C' || c == 'U') && first + 1 < line.size() &&
            (line[first + 1] == ' ' || line[first + 1] == '\t');
    }
    return false;
}

Trace
parseTextImage(const std::string &text, const std::string &name)
{
    std::istringstream is(text);
    return looksLikeNativeText(text) ? readTextTrace(is, name)
                                     : readCbpTextTrace(is, name);
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        fatal("trace: cannot open '" + path + "' for reading");
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

} // namespace

bool
gzSupported()
{
#if BPRED_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

bool
writeGzFile(const std::string &path, const std::string &bytes)
{
#if BPRED_HAVE_ZLIB
    gzFile gz = gzopen(path.c_str(), "wb");
    if (gz == nullptr) {
        fatal("trace: cannot open '" + path + "' for writing");
    }
    std::size_t at = 0;
    while (at < bytes.size()) {
        const unsigned chunk = static_cast<unsigned>(
            std::min<std::size_t>(bytes.size() - at, 1u << 20));
        if (gzwrite(gz, bytes.data() + at, chunk) !=
            static_cast<int>(chunk)) {
            gzclose(gz);
            fatal("trace: gzip write error in '" + path + "'");
        }
        at += chunk;
    }
    if (gzclose(gz) != Z_OK) {
        fatal("trace: gzip close error in '" + path + "'");
    }
    return true;
#else
    (void)path;
    (void)bytes;
    return false;
#endif
}

bool
isTraceFileName(const std::string &path)
{
    return endsWith(path, ".bpt") || endsWith(path, ".bpt.gz") ||
        endsWith(path, ".txt") || endsWith(path, ".txt.gz") ||
        endsWith(path, ".trace") || endsWith(path, ".trace.gz");
}

Trace
readCbpTextTrace(std::istream &is, const std::string &name)
{
    Trace trace(name);
    std::string line;
    u64 line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream fields(line);
        std::string pc_text;
        std::string dir_text;
        if (!(fields >> pc_text)) {
            continue; // blank line
        }
        if (!(fields >> dir_text)) {
            fatal("trace: malformed line " + std::to_string(line_no));
        }
        Addr pc = 0;
        try {
            std::size_t used = 0;
            const bool hex = pc_text.size() > 2 &&
                pc_text[0] == '0' &&
                (pc_text[1] == 'x' || pc_text[1] == 'X');
            pc = std::stoull(pc_text, &used, hex ? 16 : 10);
            if (used != pc_text.size()) {
                fatal("trace: bad pc on line " +
                      std::to_string(line_no));
            }
        } catch (const std::exception &) {
            fatal("trace: bad pc on line " + std::to_string(line_no));
        }
        bool taken = false;
        if (dir_text == "1" || dir_text == "T" || dir_text == "t") {
            taken = true;
        } else if (dir_text == "0" || dir_text == "N" ||
                   dir_text == "n") {
            taken = false;
        } else {
            fatal("trace: bad direction on line " +
                  std::to_string(line_no));
        }
        trace.appendConditional(pc, taken);
    }
    return trace;
}

Trace
loadRealTrace(const std::string &path)
{
    TRACE_SCOPE("ingest", "load-real-trace");
    if (!isTraceFileName(path)) {
        fatal("trace: unsupported trace file '" + path + "'");
    }
    const std::string name = traceNameFromPath(path);
    if (endsWith(path, ".bpt.gz")) {
        Trace trace = decodeBptImage(inflateFile(path), path);
        return trace;
    }
    if (endsWith(path, ".bpt")) {
        return loadBinaryTrace(path);
    }
    if (endsWith(path, ".gz")) {
        return parseTextImage(inflateFile(path), name);
    }
    return parseTextImage(readWholeFile(path), name);
}

std::size_t
OwnedTraceSource::pull(BranchRecord *out, std::size_t max)
{
    const std::size_t available = trace_.size() - next;
    const std::size_t produced = std::min(max, available);
    const BranchRecord *begin = trace_.records().data() + next;
    std::copy(begin, begin + produced, out);
    next += produced;
    return produced;
}

std::unique_ptr<TraceSource>
openCorpusSource(const std::string &path)
{
    if (endsWith(path, ".bpt")) {
        return openTraceSource(path);
    }
    return std::make_unique<OwnedTraceSource>(loadRealTrace(path));
}

} // namespace bpred
