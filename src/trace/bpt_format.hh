/**
 * @file
 * Internal BPT1 wire-format primitives, shared by the batch
 * serializer (trace_io) and the incremental decoder (stream).
 *
 * Layout: 4-byte magic "BPT1", varint name length, name bytes,
 * varint record count, then per record a flag byte (bit 0 = taken,
 * bit 1 = conditional) and a zigzag-varint PC delta from the
 * previous record's PC.
 *
 * This header is library-internal: tools exchange traces through
 * trace_io.hh / stream.hh, never by touching the encoding directly.
 */

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "support/types.hh"
#include "trace/branch_record.hh"

namespace bpred::bpt
{

inline constexpr char magic[4] = {'B', 'P', 'T', '1'};

/** Emit a LEB128 varint. */
void writeVarint(std::ostream &os, u64 value);

/** Decode a LEB128 varint. @throws FatalError on truncation. */
u64 readVarint(std::istream &is);

/**
 * Decode a LEB128 varint from an in-memory buffer, advancing @p at.
 *
 * @throws FatalError when the buffer ends mid-varint or an 11th
 *         continuation byte would overflow 64 bits.
 */
u64 readVarint(const u8 *data, std::size_t size, std::size_t &at);

/** ZigZag encoding maps signed deltas to small unsigned values. */
u64 zigZagEncode(i64 value);
i64 zigZagDecode(u64 value);

/** The decoded BPT1 stream header. */
struct Header
{
    std::string name;

    /** Declared record count. */
    u64 count = 0;

    /**
     * True when the stream was seekable and @p count was verified
     * to fit in the remaining byte length. When false (pipes,
     * non-seekable sources) callers must bound allocations
     * themselves and rely on per-record truncation checks.
     */
    bool lengthValidated = false;
};

/** Write magic, name and record count. */
void writeHeader(std::ostream &os, const std::string &name, u64 count);

/** Longest benchmark name any BPT1 reader accepts. */
inline constexpr u64 maxNameBytes = 4096;

/**
 * How many payload bytes follow a header, when the source knows.
 * Streams that cannot seek leave @p known false; mmap and in-memory
 * readers always know exactly.
 */
struct PayloadBounds
{
    u64 bytes = 0;
    bool known = false;
};

/**
 * Reject a declared name length before it sizes an allocation.
 *
 * @throws FatalError when @p name_len exceeds maxNameBytes.
 */
void checkNameLength(u64 name_len);

/**
 * The one bounds rule every header path shares (istream, mmap and
 * gz/adapter readers all funnel through here, so the limits cannot
 * drift apart): every record costs at least two bytes (flag byte
 * plus one varint byte), so a known payload length bounds the
 * declared count by half its bytes. Sets @p header.lengthValidated
 * when @p payload is known.
 *
 * @throws FatalError when the declared count exceeds the bound.
 */
void validateHeader(Header &header, const PayloadBounds &payload);

/**
 * Read and validate magic, name and record count. On seekable
 * streams the declared count is checked against the remaining byte
 * length (every record occupies at least two bytes), so a corrupt
 * or hostile header cannot induce an absurd allocation downstream.
 *
 * @throws FatalError on bad magic, an unreasonable name, or a
 *         record count exceeding the stream size.
 */
Header readHeader(std::istream &is);

/**
 * Read and validate a header from an in-memory buffer (an mmap'd
 * file or an inflated .gz). The payload length is always known
 * here, so the returned header is always lengthValidated.
 *
 * @param header_bytes Out: bytes the header occupied; the payload
 *        starts at data + header_bytes.
 *
 * @throws FatalError on bad magic, an unreasonable name, a
 *         truncated header, or an overdeclared record count.
 */
Header readHeader(const u8 *data, std::size_t size,
                  std::size_t &header_bytes);

/**
 * Append one record, delta-encoding the PC against @p last_pc
 * (updated in place).
 */
void writeRecord(std::ostream &os, const BranchRecord &record,
                 Addr &last_pc);

/**
 * Decode one record, resolving the PC delta against @p last_pc
 * (updated in place).
 *
 * @throws FatalError on truncation or bad flags.
 */
BranchRecord readRecord(std::istream &is, Addr &last_pc);

/**
 * Upper bound on one encoded record: a flag byte plus a 10-byte
 * varint (readVarint rejects an 11th continuation byte as
 * overflow). Any buffer holding at least this many bytes always
 * resolves the memory-decoding readRecord() below.
 */
inline constexpr std::size_t maxRecordBytes = 11;

/**
 * Decode one record from an in-memory buffer — the bulk-refill
 * counterpart of the istream overload, so streaming decoders can
 * read the file in block-sized slabs instead of byte-at-a-time
 * stream gets.
 *
 * @return Bytes consumed (record written to @p out, @p last_pc
 *         advanced), or 0 when the buffer ends mid-record with
 *         nothing modified — refill and retry.
 *
 * @throws FatalError on bad flags or varint overflow.
 */
std::size_t readRecord(const char *data, std::size_t size,
                       BranchRecord &out, Addr &last_pc);

/**
 * Bulk-decode up to @p max records from @p data — the hot path for
 * mmap'd traces. Instead of a per-byte bounds check, the buffer is
 * carved into sub-batches of records whose worst-case encoded size
 * (maxRecordBytes each) provably fits in the remaining span, and
 * the sub-batch body decodes with unchecked loads; the ragged tail
 * falls back to the checked readRecord() above. Wire semantics are
 * bit-identical to the incremental decoder: same flag validation,
 * same varint overflow rule, same u64 wrap-around delta arithmetic.
 *
 * @param consumed Out: bytes consumed from @p data.
 * @return Records decoded; less than @p max only when the buffer
 *         ends (possibly mid-record — the partial record is not
 *         consumed, mirroring readRecord()'s refill contract).
 *
 * @throws FatalError on bad flags or varint overflow.
 */
std::size_t decodeRecords(const u8 *data, std::size_t size,
                          BranchRecord *out, std::size_t max,
                          Addr &last_pc, std::size_t &consumed);

} // namespace bpred::bpt

