/**
 * @file
 * Internal BPT1 wire-format primitives, shared by the batch
 * serializer (trace_io) and the incremental decoder (stream).
 *
 * Layout: 4-byte magic "BPT1", varint name length, name bytes,
 * varint record count, then per record a flag byte (bit 0 = taken,
 * bit 1 = conditional) and a zigzag-varint PC delta from the
 * previous record's PC.
 *
 * This header is library-internal: tools exchange traces through
 * trace_io.hh / stream.hh, never by touching the encoding directly.
 */

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "support/types.hh"
#include "trace/branch_record.hh"

namespace bpred::bpt
{

inline constexpr char magic[4] = {'B', 'P', 'T', '1'};

/** Emit a LEB128 varint. */
void writeVarint(std::ostream &os, u64 value);

/** Decode a LEB128 varint. @throws FatalError on truncation. */
u64 readVarint(std::istream &is);

/** ZigZag encoding maps signed deltas to small unsigned values. */
u64 zigZagEncode(i64 value);
i64 zigZagDecode(u64 value);

/** The decoded BPT1 stream header. */
struct Header
{
    std::string name;

    /** Declared record count. */
    u64 count = 0;

    /**
     * True when the stream was seekable and @p count was verified
     * to fit in the remaining byte length. When false (pipes,
     * non-seekable sources) callers must bound allocations
     * themselves and rely on per-record truncation checks.
     */
    bool lengthValidated = false;
};

/** Write magic, name and record count. */
void writeHeader(std::ostream &os, const std::string &name, u64 count);

/**
 * Read and validate magic, name and record count. On seekable
 * streams the declared count is checked against the remaining byte
 * length (every record occupies at least two bytes), so a corrupt
 * or hostile header cannot induce an absurd allocation downstream.
 *
 * @throws FatalError on bad magic, an unreasonable name, or a
 *         record count exceeding the stream size.
 */
Header readHeader(std::istream &is);

/**
 * Append one record, delta-encoding the PC against @p last_pc
 * (updated in place).
 */
void writeRecord(std::ostream &os, const BranchRecord &record,
                 Addr &last_pc);

/**
 * Decode one record, resolving the PC delta against @p last_pc
 * (updated in place).
 *
 * @throws FatalError on truncation or bad flags.
 */
BranchRecord readRecord(std::istream &is, Addr &last_pc);

/**
 * Upper bound on one encoded record: a flag byte plus a 10-byte
 * varint (readVarint rejects an 11th continuation byte as
 * overflow). Any buffer holding at least this many bytes always
 * resolves the memory-decoding readRecord() below.
 */
inline constexpr std::size_t maxRecordBytes = 11;

/**
 * Decode one record from an in-memory buffer — the bulk-refill
 * counterpart of the istream overload, so streaming decoders can
 * read the file in block-sized slabs instead of byte-at-a-time
 * stream gets.
 *
 * @return Bytes consumed (record written to @p out, @p last_pc
 *         advanced), or 0 when the buffer ends mid-record with
 *         nothing modified — refill and retry.
 *
 * @throws FatalError on bad flags or varint overflow.
 */
std::size_t readRecord(const char *data, std::size_t size,
                       BranchRecord &out, Addr &last_pc);

} // namespace bpred::bpt

