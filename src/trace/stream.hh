/**
 * @file
 * Pull-based streaming trace sources.
 *
 * A TraceSource delivers a branch trace in bounded-memory chunks, so
 * a SimSession (sim/session.hh) can consume traces far larger than
 * memory — decoded incrementally from a BPT1 file, generated on the
 * fly (workloads/stream_source.hh), or served from an in-memory
 * Trace for the batch path. Sources are single-pass unless they
 * document otherwise.
 */

#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "support/aligned.hh"
#include "trace/trace.hh"

namespace bpred
{

/** A pull-based producer of branch records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Benchmark name of the streamed trace. */
    virtual const std::string &name() const = 0;

    /**
     * Copy up to @p max records into @p out, in trace order.
     *
     * @return Records produced; 0 means the stream is exhausted
     *         (and every later call also returns 0).
     */
    virtual std::size_t pull(BranchRecord *out, std::size_t max) = 0;

    /**
     * Records still to come, when the source knows it exactly from
     * a TRUSTED or validated quantity; 0 means unknown. Consumers
     * size allocations by this (drainSource pre-reserves), so an
     * implementation must never report an unvalidated wire-format
     * count — return 0 instead and let the consumer grow.
     */
    virtual u64 sizeHint() const { return 0; }
};

/**
 * A TraceSource view over an in-memory Trace (not owned; must
 * outlive the source). Supports rewind(), so one materialized trace
 * can feed many streaming runs.
 */
class MemoryTraceSource : public TraceSource
{
  public:
    explicit MemoryTraceSource(const Trace &trace) : trace_(trace) {}

    const std::string &name() const override { return trace_.name(); }
    std::size_t pull(BranchRecord *out, std::size_t max) override;
    u64 sizeHint() const override { return trace_.size() - next; }

    /** Restart the stream from the first record. */
    void rewind() { next = 0; }

  private:
    const Trace &trace_;
    std::size_t next = 0;
};

/**
 * Incremental BPT1 decoder: reads the header eagerly (validating
 * the declared record count against the stream length, see
 * trace/bpt_format.hh) and decodes records on demand, so a
 * multi-gigabyte trace file is simulated without ever being
 * materialized.
 */
class BinaryTraceSource : public TraceSource
{
  public:
    /**
     * Stream from @p is (not owned; must outlive the source and be
     * positioned at the BPT1 magic).
     *
     * @throws FatalError on a malformed header.
     */
    explicit BinaryTraceSource(std::istream &is);

    /**
     * Open @p path and stream from it (the file handle is owned).
     *
     * @throws FatalError when the file cannot be opened or the
     *         header is malformed.
     */
    explicit BinaryTraceSource(const std::string &path);

    const std::string &name() const override { return name_; }
    std::size_t pull(BranchRecord *out, std::size_t max) override;

    /**
     * The remaining record count, but only once readHeader() has
     * verified the declared count against the stream length — a
     * bare wire count must not size downstream allocations.
     */
    u64 sizeHint() const override;

    /** Records not yet pulled. */
    u64 remaining() const { return remaining_; }

    /**
     * Resize the decode scratch buffer (clamped to at least one
     * maximal record plus any bytes already buffered). Exposed so
     * tests can force refills to land mid-record; real consumers
     * keep the default slab.
     */
    void setScratchBytes(std::size_t bytes);

  private:
    /** Raw bytes buffered per bulk read (~64 KiB slab). */
    static constexpr std::size_t defaultScratchBytes = 64 * 1024;

    /** Compact the partial record and top the scratch up. */
    void refill();

    std::unique_ptr<std::ifstream> owned;
    std::istream *stream;
    std::string name_;
    u64 remaining_ = 0;
    Addr lastPc = 0;
    bool lengthValidated = false;

    /** Cache-line aligned so bulk decode reads start on a line. */
    AlignedVector<char> scratch;
    std::size_t scratchAt = 0;
    std::size_t scratchEnd = 0;
};

/**
 * Drain @p source to completion into an in-memory Trace, pulling
 * @p chunk_records at a time.
 */
Trace drainSource(TraceSource &source, std::size_t chunk_records = 65536);

} // namespace bpred

