#include "trace/trace.hh"

#include <unordered_set>

namespace bpred
{

double
TraceStats::takenRatio() const
{
    return dynamicConditional == 0
        ? 0.0
        : static_cast<double>(takenConditional) /
            static_cast<double>(dynamicConditional);
}

double
TraceStats::dynamicPerStatic() const
{
    return staticConditional == 0
        ? 0.0
        : static_cast<double>(dynamicConditional) /
            static_cast<double>(staticConditional);
}

TraceStats
computeTraceStats(const Trace &trace)
{
    TraceStats stats;
    std::unordered_set<Addr> cond_sites;
    std::unordered_set<Addr> uncond_sites;
    for (const BranchRecord &record : trace) {
        if (record.conditional) {
            ++stats.dynamicConditional;
            if (record.taken) {
                ++stats.takenConditional;
            }
            cond_sites.insert(record.pc);
        } else {
            ++stats.dynamicUnconditional;
            uncond_sites.insert(record.pc);
        }
    }
    stats.staticConditional = cond_sites.size();
    stats.staticUnconditional = uncond_sites.size();
    return stats;
}

} // namespace bpred
