#include "trace/bpt_format.hh"

#include <algorithm>
#include <istream>
#include <ostream>

#include "support/check.hh"
#include "support/logging.hh"

namespace bpred::bpt
{

void
writeVarint(std::ostream &os, u64 value)
{
    while (value >= 0x80) {
        os.put(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    os.put(static_cast<char>(value));
}

u64
readVarint(std::istream &is)
{
    u64 value = 0;
    unsigned shift = 0;
    for (;;) {
        const int byte = is.get();
        if (byte == std::char_traits<char>::eof()) {
            fatal("trace: truncated varint");
        }
        if (shift >= 64) {
            fatal("trace: varint overflow");
        }
        value |= (static_cast<u64>(byte) & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            return value;
        }
        shift += 7;
    }
}

u64
zigZagEncode(i64 value)
{
    return (static_cast<u64>(value) << 1) ^
        static_cast<u64>(value >> 63);
}

i64
zigZagDecode(u64 value)
{
    return static_cast<i64>(value >> 1) ^ -static_cast<i64>(value & 1);
}

void
writeHeader(std::ostream &os, const std::string &name, u64 count)
{
    os.write(magic, sizeof(magic));
    writeVarint(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    writeVarint(os, count);
}

Header
readHeader(std::istream &is)
{
    char stored_magic[4] = {};
    is.read(stored_magic, sizeof(stored_magic));
    if (!is || !std::equal(stored_magic, stored_magic + 4, magic)) {
        fatal("trace: bad magic (not a BPT1 trace)");
    }

    Header header;
    const u64 name_len = readVarint(is);
    if (name_len > 4096) {
        fatal("trace: unreasonable name length");
    }
    header.name.assign(static_cast<std::size_t>(name_len), '\0');
    is.read(header.name.data(),
            static_cast<std::streamsize>(name_len));
    if (!is) {
        fatal("trace: truncated name");
    }
    BP_CHECK(is.gcount() == static_cast<std::streamsize>(name_len),
             "header name read is not the declared length");

    header.count = readVarint(is);

    // Every record costs at least two bytes (flag byte + one varint
    // byte), so on a seekable stream the declared count is bounded
    // by half the remaining length. A corrupt header claiming more
    // is rejected here, before any caller sizes an allocation by it.
    const std::istream::pos_type pos = is.tellg();
    if (pos != std::istream::pos_type(-1)) {
        is.seekg(0, std::ios::end);
        const std::istream::pos_type end = is.tellg();
        is.seekg(pos);
        if (is && end != std::istream::pos_type(-1) && end >= pos) {
            const u64 remaining = static_cast<u64>(end - pos);
            if (header.count > remaining / 2) {
                fatal("trace: header declares " +
                      std::to_string(header.count) +
                      " records but only " +
                      std::to_string(remaining) +
                      " bytes follow");
            }
            header.lengthValidated = true;
        }
    }
    return header;
}

void
writeRecord(std::ostream &os, const BranchRecord &record,
            Addr &last_pc)
{
    // The PC delta is computed in u64 (defined wrap-around) and
    // only then reinterpreted as signed for the zig-zag encoder;
    // subtracting the raw pcs as i64 would be signed-overflow UB
    // for branches more than 2^63 apart, yet produce the same bit
    // pattern everywhere it is defined.
    const i64 delta = static_cast<i64>(record.pc - last_pc);
    const u8 flags = static_cast<u8>((record.taken ? 1 : 0) |
                                     (record.conditional ? 2 : 0));
    os.put(static_cast<char>(flags));
    writeVarint(os, zigZagEncode(delta));
    last_pc = record.pc;
}

BranchRecord
readRecord(std::istream &is, Addr &last_pc)
{
    const int flags = is.get();
    if (flags == std::char_traits<char>::eof()) {
        fatal("trace: truncated record");
    }
    if ((flags & ~0x3) != 0) {
        fatal("trace: bad record flags");
    }
    // Mirror of writeRecord(): apply the delta with u64 wrap-around
    // arithmetic. An i64 add here is UB exactly when the encoder's
    // i64 subtract would have been, and a hostile trace can pick
    // deltas that overflow regardless of what the encoder produces.
    const i64 delta = zigZagDecode(readVarint(is));
    last_pc += static_cast<Addr>(delta);
    return {last_pc, (flags & 1) != 0, (flags & 2) != 0};
}

std::size_t
readRecord(const char *data, std::size_t size, BranchRecord &out,
           Addr &last_pc)
{
    if (size == 0) {
        return 0;
    }
    const u8 flags = static_cast<u8>(data[0]);
    if ((flags & ~0x3) != 0) {
        fatal("trace: bad record flags");
    }
    u64 value = 0;
    unsigned shift = 0;
    std::size_t at = 1;
    for (;; ++at) {
        // Overflow is checked before the length, so a hostile
        // over-long varint is fatal even when the buffer ends on
        // its 11th byte — a refill could never resolve it.
        if (shift >= 64) {
            fatal("trace: varint overflow");
        }
        if (at >= size) {
            return 0;
        }
        const u8 byte = static_cast<u8>(data[at]);
        value |= (static_cast<u64>(byte) & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            break;
        }
        shift += 7;
    }
    last_pc += static_cast<Addr>(zigZagDecode(value));
    out = {last_pc, (flags & 1) != 0, (flags & 2) != 0};
    return at + 1;
}

} // namespace bpred::bpt
