#include "trace/bpt_format.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "support/check.hh"
#include "support/logging.hh"

namespace bpred::bpt
{

void
writeVarint(std::ostream &os, u64 value)
{
    while (value >= 0x80) {
        os.put(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    os.put(static_cast<char>(value));
}

u64
readVarint(std::istream &is)
{
    u64 value = 0;
    unsigned shift = 0;
    for (;;) {
        const int byte = is.get();
        if (byte == std::char_traits<char>::eof()) {
            fatal("trace: truncated varint");
        }
        if (shift >= 64) {
            fatal("trace: varint overflow");
        }
        value |= (static_cast<u64>(byte) & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            return value;
        }
        shift += 7;
    }
}

u64
readVarint(const u8 *data, std::size_t size, std::size_t &at)
{
    u64 value = 0;
    unsigned shift = 0;
    for (;;) {
        if (shift >= 64) {
            fatal("trace: varint overflow");
        }
        if (at >= size) {
            fatal("trace: truncated varint");
        }
        const u8 byte = data[at++];
        value |= (static_cast<u64>(byte) & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            return value;
        }
        shift += 7;
    }
}

u64
zigZagEncode(i64 value)
{
    return (static_cast<u64>(value) << 1) ^
        static_cast<u64>(value >> 63);
}

i64
zigZagDecode(u64 value)
{
    return static_cast<i64>(value >> 1) ^ -static_cast<i64>(value & 1);
}

void
writeHeader(std::ostream &os, const std::string &name, u64 count)
{
    os.write(magic, sizeof(magic));
    writeVarint(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    writeVarint(os, count);
}

void
checkNameLength(u64 name_len)
{
    if (name_len > maxNameBytes) {
        fatal("trace: unreasonable name length");
    }
}

void
validateHeader(Header &header, const PayloadBounds &payload)
{
    if (!payload.known) {
        return;
    }
    if (header.count > payload.bytes / 2) {
        fatal("trace: header declares " +
              std::to_string(header.count) + " records but only " +
              std::to_string(payload.bytes) + " bytes follow");
    }
    header.lengthValidated = true;
}

Header
readHeader(std::istream &is)
{
    char stored_magic[4] = {};
    is.read(stored_magic, sizeof(stored_magic));
    if (!is || !std::equal(stored_magic, stored_magic + 4, magic)) {
        fatal("trace: bad magic (not a BPT1 trace)");
    }

    Header header;
    const u64 name_len = readVarint(is);
    checkNameLength(name_len);
    header.name.assign(static_cast<std::size_t>(name_len), '\0');
    is.read(header.name.data(),
            static_cast<std::streamsize>(name_len));
    if (!is) {
        fatal("trace: truncated name");
    }
    BP_CHECK(is.gcount() == static_cast<std::streamsize>(name_len),
             "header name read is not the declared length");

    header.count = readVarint(is);

    // Seekable streams know the payload length, so the shared bound
    // applies; pipes stay unvalidated and rely on per-record checks.
    PayloadBounds payload;
    const std::istream::pos_type pos = is.tellg();
    if (pos != std::istream::pos_type(-1)) {
        is.seekg(0, std::ios::end);
        const std::istream::pos_type end = is.tellg();
        is.seekg(pos);
        if (is && end != std::istream::pos_type(-1) && end >= pos) {
            payload.bytes = static_cast<u64>(end - pos);
            payload.known = true;
        }
    }
    validateHeader(header, payload);
    return header;
}

Header
readHeader(const u8 *data, std::size_t size,
           std::size_t &header_bytes)
{
    std::size_t at = 0;
    if (size < sizeof(magic) ||
        !std::equal(magic, magic + sizeof(magic),
                    reinterpret_cast<const char *>(data))) {
        fatal("trace: bad magic (not a BPT1 trace)");
    }
    at = sizeof(magic);

    Header header;
    const u64 name_len = readVarint(data, size, at);
    checkNameLength(name_len);
    if (size - at < name_len) {
        fatal("trace: truncated name");
    }
    header.name.assign(reinterpret_cast<const char *>(data) + at,
                       static_cast<std::size_t>(name_len));
    at += static_cast<std::size_t>(name_len);

    header.count = readVarint(data, size, at);
    validateHeader(header, {size - at, true});
    header_bytes = at;
    return header;
}

void
writeRecord(std::ostream &os, const BranchRecord &record,
            Addr &last_pc)
{
    // The PC delta is computed in u64 (defined wrap-around) and
    // only then reinterpreted as signed for the zig-zag encoder;
    // subtracting the raw pcs as i64 would be signed-overflow UB
    // for branches more than 2^63 apart, yet produce the same bit
    // pattern everywhere it is defined.
    const i64 delta = static_cast<i64>(record.pc - last_pc);
    const u8 flags = static_cast<u8>((record.taken ? 1 : 0) |
                                     (record.conditional ? 2 : 0));
    os.put(static_cast<char>(flags));
    writeVarint(os, zigZagEncode(delta));
    last_pc = record.pc;
}

BranchRecord
readRecord(std::istream &is, Addr &last_pc)
{
    const int flags = is.get();
    if (flags == std::char_traits<char>::eof()) {
        fatal("trace: truncated record");
    }
    if ((flags & ~0x3) != 0) {
        fatal("trace: bad record flags");
    }
    // Mirror of writeRecord(): apply the delta with u64 wrap-around
    // arithmetic. An i64 add here is UB exactly when the encoder's
    // i64 subtract would have been, and a hostile trace can pick
    // deltas that overflow regardless of what the encoder produces.
    const i64 delta = zigZagDecode(readVarint(is));
    last_pc += static_cast<Addr>(delta);
    return {last_pc, (flags & 1) != 0, (flags & 2) != 0};
}

std::size_t
readRecord(const char *data, std::size_t size, BranchRecord &out,
           Addr &last_pc)
{
    if (size == 0) {
        return 0;
    }
    const u8 flags = static_cast<u8>(data[0]);
    if ((flags & ~0x3) != 0) {
        fatal("trace: bad record flags");
    }
    u64 value = 0;
    unsigned shift = 0;
    std::size_t at = 1;
    for (;; ++at) {
        // Overflow is checked before the length, so a hostile
        // over-long varint is fatal even when the buffer ends on
        // its 11th byte — a refill could never resolve it.
        if (shift >= 64) {
            fatal("trace: varint overflow");
        }
        if (at >= size) {
            return 0;
        }
        const u8 byte = static_cast<u8>(data[at]);
        value |= (static_cast<u64>(byte) & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            break;
        }
        shift += 7;
    }
    last_pc += static_cast<Addr>(zigZagDecode(value));
    out = {last_pc, (flags & 1) != 0, (flags & 2) != 0};
    return at + 1;
}

namespace
{

/**
 * Decode one record starting at @p p with no bounds checks: the
 * caller guarantees at least maxRecordBytes remain, and a record
 * never spans more than that (the overflow fatal below fires before
 * an 11th varint byte is touched, exactly like the checked decoder).
 *
 * Delta-encoded PCs make 1- and 2-byte varints the overwhelmingly
 * common case, so those lengths are peeled into explicit
 * straight-line code (one-byte loads, no loop-carried shift
 * counter, well-predicted branches); longer varints fall into the
 * generic loop with the reference overflow rule.
 */
inline const u8 *
decodeOneUnchecked(const u8 *p, BranchRecord &out, Addr &last_pc)
{
    const u8 flags = *p++;
    if ((flags & ~0x3u) != 0) {
        fatal("trace: bad record flags");
    }
    u64 value;
    const u8 b0 = p[0];
    if ((b0 & 0x80) == 0) {
        value = b0;
        p += 1;
    } else {
        const u8 b1 = p[1];
        if ((b1 & 0x80) == 0) {
            value = (static_cast<u64>(b0) & 0x7f) |
                (static_cast<u64>(b1) << 7);
            p += 2;
        } else {
            value = (static_cast<u64>(b0) & 0x7f) |
                ((static_cast<u64>(b1) & 0x7f) << 7);
            unsigned shift = 14;
            p += 2;
            for (;;) {
                if (shift >= 64) {
                    fatal("trace: varint overflow");
                }
                const u8 byte = *p++;
                value |= (static_cast<u64>(byte) & 0x7f) << shift;
                if ((byte & 0x80) == 0) {
                    break;
                }
                shift += 7;
            }
        }
    }
    // Same u64 wrap-around delta arithmetic as the istream decoder;
    // see readRecord() for why i64 addition would be UB here.
    last_pc += static_cast<Addr>(zigZagDecode(value));
    out = {last_pc, (flags & 1) != 0, (flags & 2) != 0};
    return p;
}

/**
 * Quad template over one 8-byte load: lanes 0/2/4/6 are flag bytes
 * (valid flags have bits 2-7 clear) and lanes 1/3/5/7 are
 * single-byte varints (continuation bit clear). A zero AND against
 * this mask proves four consecutive two-byte records at once.
 */
constexpr u64 quadTwoByteMask = 0x80fc80fc80fc80fcull;

/** Decode one lane pair of a proven quad word. */
inline void
decodeQuadLane(u64 word, unsigned lane, BranchRecord &out,
               Addr &last_pc)
{
    const u64 flags = (word >> (16 * lane)) & 0x3;
    const u64 value = (word >> (16 * lane + 8)) & 0x7f;
    last_pc += static_cast<Addr>(zigZagDecode(value));
    out = {last_pc, (flags & 1) != 0, (flags & 2) != 0};
}

} // namespace

std::size_t
decodeRecords(const u8 *data, std::size_t size, BranchRecord *out,
              std::size_t max, Addr &last_pc, std::size_t &consumed)
{
    const u8 *p = data;
    const u8 *const end = data + size;
    std::size_t done = 0;
    // Fast region: one division bounds a whole sub-batch. Typical
    // records are 2-4 bytes, so each pass clears ~span/11 records
    // and re-enters with most of the span still ahead of it.
    while (done < max) {
        const std::size_t safe =
            static_cast<std::size_t>(end - p) / maxRecordBytes;
        std::size_t batch = std::min(max - done, safe);
        if (batch == 0) {
            break;
        }
        done += batch;
        while (batch >= 4) {
            // Delta encoding keeps most records at two bytes, and
            // they cluster (loop bodies re-branch nearby), so one
            // masked load frequently proves four records at once —
            // and, unlike the scalar path, advances the stream
            // pointer by a constant, off the decode critical path.
            if constexpr (std::endian::native == std::endian::little) {
                u64 word;
                std::memcpy(&word, p, sizeof(word));
                if ((word & quadTwoByteMask) == 0) [[likely]] {
                    decodeQuadLane(word, 0, out[0], last_pc);
                    decodeQuadLane(word, 1, out[1], last_pc);
                    decodeQuadLane(word, 2, out[2], last_pc);
                    decodeQuadLane(word, 3, out[3], last_pc);
                    p += sizeof(word);
                    out += 4;
                    batch -= 4;
                    continue;
                }
            }
            p = decodeOneUnchecked(p, out[0], last_pc);
            ++out;
            --batch;
        }
        while (batch > 0) {
            p = decodeOneUnchecked(p, out[0], last_pc);
            ++out;
            --batch;
        }
    }
    // Ragged tail: fewer than maxRecordBytes remain, so fall back to
    // the per-byte checked decoder until the buffer ends mid-record.
    while (done < max) {
        const std::size_t step = readRecord(
            reinterpret_cast<const char *>(p),
            static_cast<std::size_t>(end - p), out[0], last_pc);
        if (step == 0) {
            break;
        }
        p += step;
        ++out;
        ++done;
    }
    consumed = static_cast<std::size_t>(p - data);
    return done;
}

} // namespace bpred::bpt
