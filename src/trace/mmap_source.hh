/**
 * @file
 * Zero-copy BPT1 trace ingestion via mmap.
 *
 * A MappedTrace maps a trace file read-only, validates the header
 * once against the true byte length, and exposes the payload span.
 * The mapping is immutable and shareable: a whole SweepRunner pool
 * or gang replays one file through shared_ptr views instead of N
 * private Trace copies. MmapTraceSource decodes straight out of the
 * mapping into the caller's block scratch — no intermediate slab,
 * no stream reads — using the sub-batch bulk decoder
 * (bpt::decodeRecords) by default.
 *
 * mmap is POSIX-only; openTraceSource() falls back to the portable
 * BinaryTraceSource when mapping is unavailable, so callers never
 * need to branch on the platform themselves.
 */

#pragma once

#include <memory>
#include <string>

#include "trace/stream.hh"

namespace bpred
{

/** True when this build can mmap trace files at all. */
bool mmapSupported();

/**
 * A read-only, header-validated mapping of one BPT1 trace file.
 *
 * Immutable after open, so any number of threads may decode from
 * the same mapping concurrently (each MmapTraceSource keeps its own
 * cursor). The underlying pages are advised for sequential access
 * and prefetched (madvise SEQUENTIAL + WILLNEED).
 */
class MappedTrace
{
  public:
    MappedTrace(const MappedTrace &) = delete;
    MappedTrace &operator=(const MappedTrace &) = delete;
    ~MappedTrace();

    /**
     * Map @p path. Returns nullptr when the mmap mechanism itself
     * is unavailable (non-POSIX build, or open/fstat/mmap failed) —
     * callers fall back to stream ingestion and surface any real
     * file error there.
     *
     * @throws FatalError when the file maps but its header is
     *         malformed: bad magic, unreasonable name, or a record
     *         count the byte length cannot hold. The byte length is
     *         captured once at map time and every later access is
     *         bounded by it, so a well-formed open can never fault
     *         past the mapping (SIGBUS) on a file that is not being
     *         truncated underneath us.
     */
    static std::shared_ptr<const MappedTrace>
    tryOpen(const std::string &path);

    /** Benchmark name from the validated header. */
    const std::string &name() const { return name_; }

    /** Validated record count. */
    u64 count() const { return count_; }

    /** First payload byte (record data, after the header). */
    const u8 *payload() const { return data_ + payloadOffset; }

    /** Payload length in bytes. */
    std::size_t payloadBytes() const { return bytes_ - payloadOffset; }

    /** Whole-file length in bytes. */
    std::size_t fileBytes() const { return bytes_; }

    /** The path the mapping came from. */
    const std::string &path() const { return path_; }

  private:
    MappedTrace() = default;

    const u8 *data_ = nullptr;
    std::size_t bytes_ = 0;
    std::size_t payloadOffset = 0;
    std::string name_;
    u64 count_ = 0;
    std::string path_;
};

/**
 * A TraceSource that decodes records directly from a shared
 * MappedTrace into the caller's pull() buffer. Cheap to construct
 * (no allocation beyond the name handle), so gang members and sweep
 * workers each take their own source over one shared mapping.
 */
class MmapTraceSource : public TraceSource
{
  public:
    /** Stream from an already-open mapping (shared, never copied). */
    explicit MmapTraceSource(std::shared_ptr<const MappedTrace> mapped);

    /**
     * Map @p path and stream from it.
     *
     * @throws FatalError when mmap is unavailable for @p path or
     *         the header is malformed.
     */
    explicit MmapTraceSource(const std::string &path);

    const std::string &name() const override;
    std::size_t pull(BranchRecord *out, std::size_t max) override;

    /** Always validated: the mapping checked count at open time. */
    u64 sizeHint() const override { return remaining_; }

    /** Records not yet pulled. */
    u64 remaining() const { return remaining_; }

    /**
     * Pin the per-record reference decoder instead of the sub-batch
     * bulk decoder. Benches and byte-identity tests use this to
     * compare the two paths; real consumers keep the default.
     */
    void setFastDecode(bool fast) { fastDecode = fast; }

    /** The shared mapping this source reads. */
    const std::shared_ptr<const MappedTrace> &mapping() const
    {
        return mapped_;
    }

  private:
    std::shared_ptr<const MappedTrace> mapped_;
    std::size_t at = 0;
    u64 remaining_ = 0;
    Addr lastPc = 0;
    bool fastDecode = true;
};

/**
 * Open @p path for streaming ingestion, preferring the zero-copy
 * mmap path and falling back to BinaryTraceSource when mapping is
 * unavailable. Malformed content is fatal either way.
 */
std::unique_ptr<TraceSource> openTraceSource(const std::string &path);

} // namespace bpred
