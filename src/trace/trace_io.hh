/**
 * @file
 * Branch-trace serialization.
 *
 * Two formats are supported:
 *
 *  - A compact binary format ("BPT1"): magic, name, record count,
 *    then delta-encoded records (varint PC delta, flag byte). This is
 *    what tools should use to exchange traces.
 *  - A human-readable text format: one record per line,
 *    "C|U <hex pc> T|N", with '#' comments. Handy for writing small
 *    traces by hand in tests and examples.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace bpred
{

/** Serialize @p trace in the binary "BPT1" format. */
void writeBinaryTrace(std::ostream &os, const Trace &trace);

/**
 * Deserialize a binary "BPT1" trace.
 *
 * @throws FatalError on malformed input.
 */
Trace readBinaryTrace(std::istream &is);

/** Write @p trace as binary to @p path. @throws FatalError on I/O error. */
void saveBinaryTrace(const std::string &path, const Trace &trace);

/** Read a binary trace from @p path. @throws FatalError on error. */
Trace loadBinaryTrace(const std::string &path);

/** Serialize @p trace in the text format. */
void writeTextTrace(std::ostream &os, const Trace &trace);

/**
 * Parse a text-format trace.
 *
 * @throws FatalError on malformed lines.
 */
Trace readTextTrace(std::istream &is, const std::string &name = "");

} // namespace bpred

