#include "trace/transform.hh"

#include <algorithm>

#include "support/logging.hh"

namespace bpred
{

Trace
sliceTrace(const Trace &trace, std::size_t begin, std::size_t count)
{
    Trace result(trace.name() + "[slice]");
    if (begin >= trace.size()) {
        return result;
    }
    const std::size_t end = std::min(trace.size(), begin + count);
    // bp_lint: allow(reserve-untrusted): count clamped to an
    // in-memory trace's size above.
    result.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
        result.append(trace[i]);
    }
    return result;
}

Trace
concatTraces(const std::vector<const Trace *> &traces)
{
    if (traces.empty()) {
        fatal("concatTraces: no traces given");
    }
    Trace result(traces.front()->name() + "[concat]");
    std::size_t total = 0;
    for (const Trace *trace : traces) {
        total += trace->size();
    }
    // bp_lint: allow(reserve-untrusted): sum of in-memory
    // trace sizes.
    result.reserve(total);
    for (const Trace *trace : traces) {
        for (const BranchRecord &record : *trace) {
            result.append(record);
        }
    }
    return result;
}

Trace
interleaveTraces(const std::vector<const Trace *> &traces,
                 std::size_t quantum)
{
    if (traces.empty()) {
        fatal("interleaveTraces: no traces given");
    }
    if (quantum == 0) {
        fatal("interleaveTraces: zero quantum");
    }
    Trace result(traces.front()->name() + "[mix]");
    std::size_t total = 0;
    for (const Trace *trace : traces) {
        total += trace->size();
    }
    // bp_lint: allow(reserve-untrusted): sum of in-memory
    // trace sizes.
    result.reserve(total);

    std::vector<std::size_t> cursors(traces.size(), 0);
    bool any_left = true;
    while (any_left) {
        any_left = false;
        for (std::size_t t = 0; t < traces.size(); ++t) {
            const Trace &trace = *traces[t];
            std::size_t &cursor = cursors[t];
            const std::size_t end =
                std::min(trace.size(), cursor + quantum);
            for (; cursor < end; ++cursor) {
                result.append(trace[cursor]);
            }
            any_left = any_left || cursor < trace.size();
        }
    }
    return result;
}

Trace
filterAddressRange(const Trace &trace, Addr lo, Addr hi)
{
    Trace result(trace.name() + "[filter]");
    for (const BranchRecord &record : trace) {
        if (record.pc >= lo && record.pc < hi) {
            result.append(record);
        }
    }
    return result;
}

} // namespace bpred
