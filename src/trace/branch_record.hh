/**
 * @file
 * The unit of a branch trace.
 */

#pragma once

#include "support/types.hh"

namespace bpred
{

/**
 * One dynamic branch instance.
 *
 * Mirrors what the paper's hardware-monitor traces provide: the
 * branch address, its resolved direction, and whether it is
 * conditional. Unconditional branches (jumps, calls, returns) are
 * kept in the stream because the paper includes them in the global
 * history ("we include unconditional branches as part of the
 * global-history bits"), but they are never predicted.
 */
struct BranchRecord
{
    /** Instruction address of the branch. */
    Addr pc = 0;

    /** Resolved direction; always true for unconditional branches. */
    bool taken = false;

    /** True for conditional branches (the predicted population). */
    bool conditional = true;

    bool
    operator==(const BranchRecord &other) const
    {
        return pc == other.pc && taken == other.taken &&
            conditional == other.conditional;
    }
};

} // namespace bpred

