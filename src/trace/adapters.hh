/**
 * @file
 * Real-trace ingestion adapters: public branch-trace corpora come
 * as CBP/CSE240A-style text ("<pc> <taken>" lines), often gzipped,
 * rather than our BPT1 binary. These adapters normalize any of the
 * supported on-disk forms into the TraceSource world so the corpus
 * runner treats a directory of mixed real and synthetic traces
 * uniformly:
 *
 *   .bpt      BPT1 binary (mmap'd when possible)
 *   .bpt.gz   gzipped BPT1 (inflated, then the same shared header
 *             validator + bulk decoder as the mmap path)
 *   .txt      text: either our "C|U <hexpc> T|N" format or the
 *             CBP-style "<pc> <dir>" format, auto-detected
 *   .txt.gz / .gz   gzipped text, same auto-detection
 *
 * gz support depends on zlib (BPRED_HAVE_ZLIB, probed by CMake);
 * without it the gz paths fail with a clear fatal() instead of a
 * silent misparse.
 */

#pragma once

#include <memory>
#include <string>

#include "trace/stream.hh"

namespace bpred
{

/** True when this build can inflate .gz traces (zlib present). */
bool gzSupported();

/**
 * Deflate @p bytes to @p path as a gzip file — how tests and the
 * CI corpus generator produce .gz fixtures without shelling out.
 *
 * @return false when the build lacks zlib (nothing written).
 * @throws FatalError on I/O errors.
 */
bool writeGzFile(const std::string &path, const std::string &bytes);

/** True when loadRealTrace() recognizes @p path's extension. */
bool isTraceFileName(const std::string &path);

/**
 * Parse CBP/CSE240A-style text: one branch per line, "<pc> <dir>"
 * where <pc> is decimal or 0x-prefixed hex and <dir> is 0/1 or
 * T/N (case-insensitive); '#' starts a comment. Every record is a
 * conditional branch — the format carries no kind bit.
 *
 * @throws FatalError on a malformed line.
 */
Trace readCbpTextTrace(std::istream &is, const std::string &name);

/**
 * Load any supported trace file into memory, dispatching on the
 * extension and auto-detecting the text dialect.
 *
 * @throws FatalError on unsupported extensions, malformed content,
 *         or a .gz file in a build without zlib.
 */
Trace loadRealTrace(const std::string &path);

/**
 * A TraceSource owning its materialized Trace — how text and gz
 * inputs (which cannot be decoded incrementally from disk) enter
 * the streaming pipeline.
 */
class OwnedTraceSource : public TraceSource
{
  public:
    explicit OwnedTraceSource(Trace trace) : trace_(std::move(trace)) {}

    const std::string &name() const override { return trace_.name(); }
    std::size_t pull(BranchRecord *out, std::size_t max) override;
    u64 sizeHint() const override { return trace_.size() - next; }

  private:
    Trace trace_;
    std::size_t next = 0;
};

/**
 * Open @p path for streaming: zero-copy mmap (with stream fallback)
 * for .bpt, materialized OwnedTraceSource for everything else.
 *
 * @throws FatalError on unsupported or malformed files.
 */
std::unique_ptr<TraceSource> openCorpusSource(const std::string &path);

} // namespace bpred
