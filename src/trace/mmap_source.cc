#include "trace/mmap_source.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/tracing.hh"
#include "trace/bpt_format.hh"

#if defined(__unix__) || defined(__APPLE__)
#define BPRED_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define BPRED_HAVE_MMAP 0
#endif

namespace bpred
{

bool
mmapSupported()
{
    return BPRED_HAVE_MMAP != 0;
}

#if BPRED_HAVE_MMAP

namespace
{

/** Map @p path read-only; nullptr + size 0 when any syscall fails. */
const u8 *
mapFile(const std::string &path, std::size_t &bytes)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        return nullptr;
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) ||
        st.st_size <= 0) {
        ::close(fd);
        return nullptr;
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    // Prefault at map time (Linux): the decode loop then never
    // stalls on soft page faults mid-batch.
    flags |= MAP_POPULATE;
#endif
    void *base = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
    // The mapping outlives the descriptor; POSIX keeps the pages
    // valid after close.
    ::close(fd);
    if (base == MAP_FAILED) {
        return nullptr;
    }
    // Advisory only: decode order is strictly sequential, and the
    // kernel may start readahead now. Failure changes nothing.
    ::madvise(base, size, MADV_SEQUENTIAL);
    ::madvise(base, size, MADV_WILLNEED);
    bytes = size;
    return static_cast<const u8 *>(base);
}

} // namespace

MappedTrace::~MappedTrace()
{
    if (data_ != nullptr) {
        ::munmap(const_cast<u8 *>(data_), bytes_);
    }
}

std::shared_ptr<const MappedTrace>
MappedTrace::tryOpen(const std::string &path)
{
    TRACE_SCOPE("ingest", "mmap-map");
    std::size_t bytes = 0;
    const u8 *data = mapFile(path, bytes);
    if (data == nullptr) {
        return nullptr;
    }
    // Own the pages before parsing, so a fatal header error still
    // unmaps on unwind. The constructor is private, which rules out
    // make_shared; ownership lands in the shared_ptr on this line.
    // bp_lint: allow(banned-identifier): private-ctor make_shared
    auto mapped = std::shared_ptr<MappedTrace>(new MappedTrace());
    mapped->data_ = data;
    mapped->bytes_ = bytes;
    mapped->path_ = path;

    std::size_t header_bytes = 0;
    const bpt::Header header =
        bpt::readHeader(data, bytes, header_bytes);
    mapped->payloadOffset = header_bytes;
    mapped->name_ = header.name;
    mapped->count_ = header.count;
    return mapped;
}

#else // !BPRED_HAVE_MMAP

MappedTrace::~MappedTrace() = default;

std::shared_ptr<const MappedTrace>
MappedTrace::tryOpen(const std::string &)
{
    return nullptr;
}

#endif

MmapTraceSource::MmapTraceSource(
    std::shared_ptr<const MappedTrace> mapped)
    : mapped_(std::move(mapped))
{
    if (!mapped_) {
        fatal("trace: MmapTraceSource given a null mapping");
    }
    remaining_ = mapped_->count();
}

MmapTraceSource::MmapTraceSource(const std::string &path)
    : MmapTraceSource(
          [&path]() {
              auto mapped = MappedTrace::tryOpen(path);
              if (!mapped) {
                  fatal("trace: cannot mmap '" + path + "'");
              }
              return mapped;
          }())
{
}

const std::string &
MmapTraceSource::name() const
{
    return mapped_->name();
}

std::size_t
MmapTraceSource::pull(BranchRecord *out, std::size_t max)
{
    const std::size_t produced = static_cast<std::size_t>(
        std::min<u64>(max, remaining_));
    if (produced == 0) {
        return 0;
    }
    TRACE_SCOPE("ingest", "decode-batch", produced, at);
    const u8 *data = mapped_->payload() + at;
    const std::size_t size = mapped_->payloadBytes() - at;
    std::size_t done = 0;
    std::size_t consumed = 0;
    if (fastDecode) {
        done = bpt::decodeRecords(data, size, out, produced, lastPc,
                                  consumed);
    } else {
        // Reference path: the same per-record decoder the stream
        // slab uses, kept for byte-identity comparisons.
        while (done < produced) {
            const std::size_t step = bpt::readRecord(
                reinterpret_cast<const char *>(data) + consumed,
                size - consumed, out[done], lastPc);
            if (step == 0) {
                break;
            }
            consumed += step;
            ++done;
        }
    }
    if (done < produced) {
        // The validated header promised more records than the
        // payload actually encodes.
        fatal("trace: truncated record");
    }
    at += consumed;
    remaining_ -= produced;
    return produced;
}

std::unique_ptr<TraceSource>
openTraceSource(const std::string &path)
{
    if (auto mapped = MappedTrace::tryOpen(path)) {
        return std::make_unique<MmapTraceSource>(std::move(mapped));
    }
    return std::make_unique<BinaryTraceSource>(path);
}

} // namespace bpred
