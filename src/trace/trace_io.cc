#include "trace/trace_io.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/logging.hh"
#include "trace/bpt_format.hh"

namespace bpred
{

void
writeBinaryTrace(std::ostream &os, const Trace &trace)
{
    bpt::writeHeader(os, trace.name(), trace.size());
    Addr last_pc = 0;
    for (const BranchRecord &record : trace) {
        bpt::writeRecord(os, record, last_pc);
    }
    if (!os) {
        fatal("trace: write failure");
    }
}

Trace
readBinaryTrace(std::istream &is)
{
    const bpt::Header header = bpt::readHeader(is);
    Trace trace(header.name);
    // readHeader() verified the count against the stream length on
    // seekable input, so reserving it is safe; on non-seekable
    // streams cap the up-front reservation and let the per-record
    // reads hit the truncation check naturally.
    const u64 reservation = header.lengthValidated
        ? header.count
        : std::min<u64>(header.count, u64(1) << 20);
    // bp_lint: allow(reserve-untrusted): capped above by the
    // validated stream length or the 1M fallback.
    trace.reserve(static_cast<std::size_t>(reservation));

    Addr last_pc = 0;
    for (u64 i = 0; i < header.count; ++i) {
        trace.append(bpt::readRecord(is, last_pc));
    }
    return trace;
}

void
saveBinaryTrace(const std::string &path, const Trace &trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        fatal("trace: cannot open '" + path + "' for writing");
    }
    writeBinaryTrace(os, trace);
    if (!os) {
        fatal("trace: error while writing '" + path + "'");
    }
}

Trace
loadBinaryTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        fatal("trace: cannot open '" + path + "' for reading");
    }
    return readBinaryTrace(is);
}

void
writeTextTrace(std::ostream &os, const Trace &trace)
{
    os << "# trace: " << trace.name() << "\n";
    os << "# format: C|U <hex pc> T|N\n";
    os << std::hex;
    for (const BranchRecord &record : trace) {
        os << (record.conditional ? 'C' : 'U') << ' '
           << record.pc << ' '
           << (record.taken ? 'T' : 'N') << '\n';
    }
    os << std::dec;
}

Trace
readTextTrace(std::istream &is, const std::string &name)
{
    Trace trace(name);
    std::string line;
    u64 line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        // Strip comments and blank lines.
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream fields(line);
        char kind = 0;
        std::string pc_text;
        char direction = 0;
        if (!(fields >> kind)) {
            continue; // blank line
        }
        if (!(fields >> pc_text >> direction)) {
            fatal("trace: malformed line " + std::to_string(line_no));
        }
        if (kind != 'C' && kind != 'U') {
            fatal("trace: bad branch kind on line " +
                  std::to_string(line_no));
        }
        if (direction != 'T' && direction != 'N') {
            fatal("trace: bad direction on line " +
                  std::to_string(line_no));
        }
        Addr pc = 0;
        try {
            pc = std::stoull(pc_text, nullptr, 16);
        } catch (const std::exception &) {
            fatal("trace: bad pc on line " + std::to_string(line_no));
        }
        const bool taken = direction == 'T';
        if (kind == 'U' && !taken) {
            fatal("trace: unconditional branch marked not-taken on line " +
                  std::to_string(line_no));
        }
        trace.append({pc, taken, kind == 'C'});
    }
    return trace;
}

} // namespace bpred
