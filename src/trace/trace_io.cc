#include "trace/trace_io.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/logging.hh"

namespace bpred
{

namespace
{

constexpr char binaryMagic[4] = {'B', 'P', 'T', '1'};

void
writeVarint(std::ostream &os, u64 value)
{
    while (value >= 0x80) {
        os.put(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    os.put(static_cast<char>(value));
}

u64
readVarint(std::istream &is)
{
    u64 value = 0;
    unsigned shift = 0;
    for (;;) {
        const int byte = is.get();
        if (byte == std::char_traits<char>::eof()) {
            fatal("trace: truncated varint");
        }
        if (shift >= 64) {
            fatal("trace: varint overflow");
        }
        value |= (static_cast<u64>(byte) & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            return value;
        }
        shift += 7;
    }
}

/** ZigZag encoding maps signed deltas to small unsigned values. */
u64
zigZagEncode(i64 value)
{
    return (static_cast<u64>(value) << 1) ^
        static_cast<u64>(value >> 63);
}

i64
zigZagDecode(u64 value)
{
    return static_cast<i64>(value >> 1) ^ -static_cast<i64>(value & 1);
}

} // namespace

void
writeBinaryTrace(std::ostream &os, const Trace &trace)
{
    os.write(binaryMagic, sizeof(binaryMagic));
    writeVarint(os, trace.name().size());
    os.write(trace.name().data(),
             static_cast<std::streamsize>(trace.name().size()));
    writeVarint(os, trace.size());

    Addr last_pc = 0;
    for (const BranchRecord &record : trace) {
        const i64 delta = static_cast<i64>(record.pc) -
            static_cast<i64>(last_pc);
        const u8 flags = static_cast<u8>((record.taken ? 1 : 0) |
                                         (record.conditional ? 2 : 0));
        os.put(static_cast<char>(flags));
        writeVarint(os, zigZagEncode(delta));
        last_pc = record.pc;
    }
    if (!os) {
        fatal("trace: write failure");
    }
}

Trace
readBinaryTrace(std::istream &is)
{
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    if (!is || !std::equal(magic, magic + 4, binaryMagic)) {
        fatal("trace: bad magic (not a BPT1 trace)");
    }

    const u64 name_len = readVarint(is);
    if (name_len > 4096) {
        fatal("trace: unreasonable name length");
    }
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!is) {
        fatal("trace: truncated name");
    }

    const u64 count = readVarint(is);
    Trace trace(name);
    // A hostile or corrupt header can declare an absurd count;
    // cap the up-front reservation and let the per-record reads
    // hit the truncation check naturally.
    trace.reserve(static_cast<std::size_t>(
        std::min<u64>(count, u64(1) << 20)));

    Addr last_pc = 0;
    for (u64 i = 0; i < count; ++i) {
        const int flags = is.get();
        if (flags == std::char_traits<char>::eof()) {
            fatal("trace: truncated record");
        }
        if ((flags & ~0x3) != 0) {
            fatal("trace: bad record flags");
        }
        const i64 delta = zigZagDecode(readVarint(is));
        last_pc = static_cast<Addr>(static_cast<i64>(last_pc) + delta);
        trace.append({last_pc, (flags & 1) != 0, (flags & 2) != 0});
    }
    return trace;
}

void
saveBinaryTrace(const std::string &path, const Trace &trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        fatal("trace: cannot open '" + path + "' for writing");
    }
    writeBinaryTrace(os, trace);
    if (!os) {
        fatal("trace: error while writing '" + path + "'");
    }
}

Trace
loadBinaryTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        fatal("trace: cannot open '" + path + "' for reading");
    }
    return readBinaryTrace(is);
}

void
writeTextTrace(std::ostream &os, const Trace &trace)
{
    os << "# trace: " << trace.name() << "\n";
    os << "# format: C|U <hex pc> T|N\n";
    os << std::hex;
    for (const BranchRecord &record : trace) {
        os << (record.conditional ? 'C' : 'U') << ' '
           << record.pc << ' '
           << (record.taken ? 'T' : 'N') << '\n';
    }
    os << std::dec;
}

Trace
readTextTrace(std::istream &is, const std::string &name)
{
    Trace trace(name);
    std::string line;
    u64 line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        // Strip comments and blank lines.
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream fields(line);
        char kind = 0;
        std::string pc_text;
        char direction = 0;
        if (!(fields >> kind)) {
            continue; // blank line
        }
        if (!(fields >> pc_text >> direction)) {
            fatal("trace: malformed line " + std::to_string(line_no));
        }
        if (kind != 'C' && kind != 'U') {
            fatal("trace: bad branch kind on line " +
                  std::to_string(line_no));
        }
        if (direction != 'T' && direction != 'N') {
            fatal("trace: bad direction on line " +
                  std::to_string(line_no));
        }
        Addr pc = 0;
        try {
            pc = std::stoull(pc_text, nullptr, 16);
        } catch (const std::exception &) {
            fatal("trace: bad pc on line " + std::to_string(line_no));
        }
        const bool taken = direction == 'T';
        if (kind == 'U' && !taken) {
            fatal("trace: unconditional branch marked not-taken on line " +
                  std::to_string(line_no));
        }
        trace.append({pc, taken, kind == 'C'});
    }
    return trace;
}

} // namespace bpred
