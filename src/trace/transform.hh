/**
 * @file
 * Trace transformation utilities.
 *
 * Experiment plumbing: slicing off warm-up, splicing workloads
 * into multiprogrammed mixes, and isolating address ranges (e.g.
 * kernel vs user) from a combined trace.
 */

#pragma once

#include <vector>

#include "trace/trace.hh"

namespace bpred
{

/**
 * A contiguous slice: records [@p begin, @p begin + @p count) of
 * @p trace (clamped to the trace length).
 */
Trace sliceTrace(const Trace &trace, std::size_t begin,
                 std::size_t count);

/** Concatenate @p traces in order (named after the first). */
Trace concatTraces(const std::vector<const Trace *> &traces);

/**
 * Deterministically interleave traces in round-robin quanta of
 * @p quantum records each, until every input is exhausted. Models
 * a simple multiprogrammed mix of independently-captured traces.
 */
Trace interleaveTraces(const std::vector<const Trace *> &traces,
                       std::size_t quantum);

/**
 * Keep only records with pc in [@p lo, @p hi) — e.g. the kernel
 * (or user) half of a combined trace.
 */
Trace filterAddressRange(const Trace &trace, Addr lo, Addr hi);

} // namespace bpred

