#include "support/probe.hh"

namespace bpred
{

CountingProbe::BankStats &
CountingProbe::bank(unsigned index)
{
    if (index >= banks.size()) {
        banks.resize(index + 1);
    }
    BankStats &cached = banks[index];
    if (!cached.disagree) {
        const std::string prefix = "bank" + std::to_string(index);
        cached.disagree = &stats.ratio(prefix + ".disagree");
        cached.correct = &stats.ratio(prefix + ".correct");
        cached.skipsPartial = &stats.counter(prefix + ".skips.partial");
        cached.skipsLazy = &stats.counter(prefix + ".skips.lazy");
        cached.writes = &stats.counter(prefix + ".writes");
        cached.transitions = &stats.histogram(prefix + ".transitions");
    }
    return cached;
}

void
CountingProbe::onResolved(const ResolvedEvent &event)
{
    stats.ratio("resolved.mispredict")
        .sample(event.predicted != event.taken);
}

void
CountingProbe::onBankVote(const BankVoteEvent &event)
{
    BankStats &cached = bank(event.bank);
    cached.disagree->sample(event.vote != event.majority);
    cached.correct->sample(event.vote == event.taken);
}

void
CountingProbe::onUpdateSkip(const UpdateSkipEvent &event)
{
    BankStats &cached = bank(event.bank);
    if (event.reason == UpdateSkipEvent::Reason::PartialProtect) {
        ++*cached.skipsPartial;
    } else {
        ++*cached.skipsLazy;
    }
}

void
CountingProbe::onCounterWrite(const CounterWriteEvent &event)
{
    BankStats &cached = bank(event.bank);
    ++*cached.writes;
    cached.transitions->sample(u64(event.before) * 256 + event.after);
}

void
CountingProbe::onChoice(const ChoiceEvent &event)
{
    stats.ratio("chooser.first").sample(event.choseFirst);
    stats.ratio("chooser.disagree").sample(event.componentsDisagreed);
    stats.ratio("chooser.correct").sample(event.choiceCorrect);
}

} // namespace bpred
