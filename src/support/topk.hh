/**
 * @file
 * Bounded heavy-hitter counting (the space-saving algorithm,
 * Metwally et al. 2005).
 *
 * The simulation driver attributes mispredictions to branch sites;
 * a trace can touch hundreds of thousands of distinct PCs, so an
 * exact per-site map would dwarf the predictor under study. A
 * TopKCounter keeps a fixed number of slots: a key already tracked
 * increments its slot; a new key evicts the smallest slot and
 * inherits its count as an overcount bound. Any key whose true
 * count exceeds total/capacity is guaranteed to be present.
 */

#pragma once

#include <unordered_map>
#include <vector>

#include "support/types.hh"

namespace bpred
{

/** Fixed-capacity approximate top-K counter over u64 keys. */
class TopKCounter
{
  public:
    /** @param capacity Number of tracked keys; must be positive. */
    explicit TopKCounter(std::size_t capacity);

    /** Record @p weight occurrences of @p key. */
    void add(u64 key, u64 weight = 1);

    /** One tracked key with its count estimate. */
    struct Item
    {
        u64 key;

        /** Estimated count; never underestimates the true count. */
        u64 count;

        /**
         * Upper bound on the estimate's excess: the true count is
         * at least count - overcount. Zero for keys tracked since
         * their first occurrence.
         */
        u64 overcount;
    };

    /** Tracked keys, highest estimated count first. */
    std::vector<Item> items() const;

    /** Number of tracked keys. */
    std::size_t size() const { return slots.size(); }

    /** Slot capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Total weight added so far. */
    u64 totalAdded() const { return total; }

    /** Clear to empty. */
    void reset();

  private:
    struct Slot
    {
        u64 count;
        u64 overcount;
    };

    std::size_t capacity_;
    u64 total = 0;
    std::unordered_map<u64, Slot> slots;
};

} // namespace bpred

