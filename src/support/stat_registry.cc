#include "support/stat_registry.hh"

#include "support/logging.hh"

namespace bpred
{

namespace
{

const char *
kindOf(const StatRegistry::Stat &stat)
{
    switch (stat.index()) {
      case 0:
        return "counter";
      case 1:
        return "ratio";
      case 2:
        return "running";
      default:
        return "histogram";
    }
}

JsonValue
statToJson(const StatRegistry::Stat &stat)
{
    if (const auto *count = std::get_if<u64>(&stat)) {
        return JsonValue(*count);
    }
    if (const auto *ratio = std::get_if<RatioStat>(&stat)) {
        JsonValue node = JsonValue::object();
        node["events"] = ratio->events();
        node["total"] = ratio->total();
        node["ratio"] = ratio->ratio();
        return node;
    }
    if (const auto *running = std::get_if<RunningStat>(&stat)) {
        JsonValue node = JsonValue::object();
        node["count"] = running->count();
        node["mean"] = running->mean();
        node["stddev"] = running->stddev();
        node["min"] = running->min();
        node["max"] = running->max();
        return node;
    }
    const auto &histogram = std::get<Histogram>(stat);
    JsonValue node = JsonValue::object();
    node["total"] = histogram.total();
    node["mean"] = histogram.mean();
    JsonValue keys = JsonValue::array();
    for (const auto &[key, count] : histogram.sorted()) {
        JsonValue pair = JsonValue::array();
        pair.push(key);
        pair.push(count);
        keys.push(std::move(pair));
    }
    node["counts"] = std::move(keys);
    return node;
}

} // namespace

void
StatRegistry::checkName(const std::string &name) const
{
    if (name.empty() || name.front() == '.' || name.back() == '.' ||
        name.find("..") != std::string::npos) {
        fatal("stat registry: malformed stat name '" + name + "'");
    }
    // A new leaf may not sit under an existing leaf ("a.b" after
    // "a")...
    for (std::size_t dot = name.find('.'); dot != std::string::npos;
         dot = name.find('.', dot + 1)) {
        const std::string prefix = name.substr(0, dot);
        if (stats.count(prefix)) {
            fatal("stat registry: '" + name + "' collides with " +
                  kindOf(stats.at(prefix)) + " '" + prefix + "'");
        }
    }
    // ...nor may it name an existing group ("a" after "a.b").
    const std::string as_group = name + ".";
    const auto child = stats.lower_bound(as_group);
    if (child != stats.end() &&
        child->first.compare(0, as_group.size(), as_group) == 0) {
        fatal("stat registry: '" + name +
              "' collides with group member '" + child->first + "'");
    }
}

template <typename T>
T &
StatRegistry::fetch(const std::string &name, const char *kind_name)
{
    auto it = stats.find(name);
    if (it == stats.end()) {
        checkName(name);
        it = stats.emplace(name, Stat(std::in_place_type<T>)).first;
    } else if (!std::holds_alternative<T>(it->second)) {
        fatal("stat registry: '" + name + "' already registered as " +
              kindOf(it->second) + ", requested as " + kind_name);
    }
    return std::get<T>(it->second);
}

u64 &
StatRegistry::counter(const std::string &name)
{
    return fetch<u64>(name, "counter");
}

RatioStat &
StatRegistry::ratio(const std::string &name)
{
    return fetch<RatioStat>(name, "ratio");
}

RunningStat &
StatRegistry::running(const std::string &name)
{
    return fetch<RunningStat>(name, "running");
}

Histogram &
StatRegistry::histogram(const std::string &name)
{
    return fetch<Histogram>(name, "histogram");
}

bool
StatRegistry::contains(const std::string &name) const
{
    return stats.count(name) != 0;
}

void
StatRegistry::reset()
{
    for (auto &[name, stat] : stats) {
        if (auto *count = std::get_if<u64>(&stat)) {
            *count = 0;
        } else if (auto *ratio = std::get_if<RatioStat>(&stat)) {
            ratio->reset();
        } else if (auto *running = std::get_if<RunningStat>(&stat)) {
            running->reset();
        } else {
            std::get<Histogram>(stat).reset();
        }
    }
}

JsonValue
StatRegistry::toJson() const
{
    JsonValue root = JsonValue::object();
    for (const auto &[name, stat] : stats) {
        JsonValue *node = &root;
        std::size_t start = 0;
        for (std::size_t dot = name.find('.'); dot != std::string::npos;
             dot = name.find('.', start)) {
            node = &(*node)[name.substr(start, dot - start)];
            start = dot + 1;
        }
        (*node)[name.substr(start)] = statToJson(stat);
    }
    return root;
}

StatRegistry &
engineStats()
{
    static StatRegistry instance;
    return instance;
}

std::mutex &
engineStatsMutex()
{
    static std::mutex instance;
    return instance;
}

} // namespace bpred
