/**
 * @file
 * Cache-line-aligned storage for vectorized replay buffers.
 *
 * The phase-split block kernels (predictors/block_kernel_simd.hh)
 * issue 256-bit loads over per-block scratch arrays, and the
 * streaming layer hands out BranchRecord blocks that those kernels
 * walk. Aligning every such buffer to the 64-byte cache line means
 * a vector load of consecutive elements never splits a line (a
 * 16-byte BranchRecord packs exactly four per line) and the
 * software-prefetch pass never pulls a line it will not use.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace bpred
{

/** The alignment every replay-path buffer is allocated at. */
constexpr std::size_t cacheLineBytes = 64;

/** True when @p pointer sits on a cache-line boundary. */
inline bool
isCacheAligned(const void *pointer)
{
    return reinterpret_cast<std::uintptr_t>(pointer) %
        cacheLineBytes == 0;
}

/**
 * A minimal std allocator handing out cache-line-aligned blocks via
 * the aligned operator new. Equality is universal (the allocator is
 * stateless), so containers can splice/swap freely.
 */
template <typename T>
struct CacheAlignedAllocator
{
    using value_type = T;

    CacheAlignedAllocator() = default;

    template <typename U>
    CacheAlignedAllocator(const CacheAlignedAllocator<U> &)
    {
    }

    T *
    allocate(std::size_t count)
    {
        return static_cast<T *>(::operator new(
            count * sizeof(T), std::align_val_t(cacheLineBytes)));
    }

    void
    deallocate(T *pointer, std::size_t)
    {
        ::operator delete(pointer, std::align_val_t(cacheLineBytes));
    }

    template <typename U>
    bool
    operator==(const CacheAlignedAllocator<U> &) const
    {
        return true;
    }
};

/**
 * A std::vector whose storage starts on a cache-line boundary. The
 * replay layers use it for every buffer a vector load or prefetch
 * walks: BPT1 decode scratch, drain/stream chunk buffers, and the
 * ReplayScratch index/history arrays.
 */
template <typename T>
using AlignedVector = std::vector<T, CacheAlignedAllocator<T>>;

} // namespace bpred
