#include "support/simd.hh"

#include <cstdlib>
#include <string>

#include "support/logging.hh"

namespace bpred
{

const char *
simdModeName(SimdMode mode)
{
    switch (mode) {
      case SimdMode::Auto:
        return "auto";
      case SimdMode::Avx2:
        return "avx2";
      case SimdMode::Scalar:
        return "scalar";
    }
    return "scalar";
}

bool
simdAvx2Available()
{
#if BPRED_HAVE_AVX2
    static const bool available = __builtin_cpu_supports("avx2");
    return available;
#else
    return false;
#endif
}

namespace
{

/** BPRED_SIMD from the environment, or Auto when unset/garbled. */
SimdMode
environmentMode()
{
    // The only setenv calls in the tree happen in single-threaded
    // test/bench setup, never concurrently with dispatch.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *raw = std::getenv("BPRED_SIMD");
    if (!raw) {
        return SimdMode::Auto;
    }
    const std::string value(raw);
    if (value == "avx2") {
        return SimdMode::Avx2;
    }
    if (value == "scalar") {
        return SimdMode::Scalar;
    }
    if (value != "auto" && !value.empty()) {
        warn("BPRED_SIMD='" + value +
             "' is not auto|avx2|scalar; treating as auto");
    }
    return SimdMode::Auto;
}

/** Warn once per process about an unsatisfiable avx2 request. */
void
warnAvx2Unavailable()
{
    static const bool once = [] {
        warn("BPRED_SIMD=avx2 requested but AVX2 is "
             "unavailable in this build/CPU; using the scalar "
             "kernels (results are identical)");
        return true;
    }();
    static_cast<void>(once);
}

} // namespace

SimdMode
resolveSimdMode(SimdMode requested)
{
    SimdMode mode = requested;
    if (mode == SimdMode::Auto) {
        mode = environmentMode();
    }
    if (mode == SimdMode::Auto) {
        return simdAvx2Available() ? SimdMode::Avx2
                                   : SimdMode::Scalar;
    }
    if (mode == SimdMode::Avx2 && !simdAvx2Available()) {
        warnAvx2Unavailable();
        return SimdMode::Scalar;
    }
    return mode;
}

} // namespace bpred
