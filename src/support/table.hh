/**
 * @file
 * Plain-text table formatting for experiment output.
 *
 * Every bench binary prints the paper's rows through this formatter
 * so the reproduced tables line up and can be diffed run-to-run.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "support/json.hh"
#include "support/types.hh"

namespace bpred
{

/**
 * A simple column-aligned text table.
 *
 * Cells are strings; numeric helpers format with fixed precision.
 * The first row added is the header.
 */
class TextTable
{
  public:
    /** Start a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new (empty) row. */
    TextTable &row();

    /** Append a string cell to the current row. */
    TextTable &cell(const std::string &text);

    /** Append an integer cell. */
    TextTable &cell(u64 value);

    /** Append a signed integer cell. */
    TextTable &cell(i64 value);

    /** Append a floating cell with @p precision decimals. */
    TextTable &cell(double value, int precision = 2);

    /** Append a percentage cell: "12.34 %". */
    TextTable &percentCell(double percent_value, int precision = 2);

    /** Number of data rows so far. */
    std::size_t numRows() const { return rows.size(); }

    /** Render with aligned columns to @p os. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values to @p os. */
    void printCsv(std::ostream &os) const;

    /**
     * The table as JSON: {"columns": [...], "rows": [{...}, ...]}
     * with each row an object keyed by column header. Cells keep
     * the type they were added with (numeric cells stay numbers;
     * percentCell() records the numeric percentage). Cells beyond
     * the header count are dropped.
     */
    JsonValue toJson() const;

  private:
    /** A cell: the rendered text plus its typed JSON value. */
    struct Cell
    {
        std::string text;
        JsonValue json;
    };

    std::vector<std::string> header;
    std::vector<std::vector<Cell>> rows;
};

/** Format @p value as a fixed-precision string. */
std::string formatDouble(double value, int precision = 2);

/** Format a count with thousands separators ("14,288,742"). */
std::string formatCount(u64 value);

/**
 * Format a power-of-two entry count the way the paper labels its
 * x-axes: "1K", "16K", "256K", or plain digits below 1024.
 */
std::string formatEntries(u64 entries);

/** Print a section heading ("== title ==") to @p os. */
void printHeading(std::ostream &os, const std::string &title);

} // namespace bpred

