/**
 * @file
 * Per-prediction telemetry probes.
 *
 * Instrumented predictors publish fine-grained events — bank votes,
 * majority-vs-bank disagreement, update-policy skips, counter-state
 * transitions — to an optional ProbeSink attached via
 * Predictor::attachProbe(). With no sink attached the publishing
 * sites reduce to a single null-pointer check, so the simulation
 * hot path is unaffected (verified by bench_perf_predictors).
 *
 * Event-to-publisher map:
 *  - ResolvedEvent: every instrumented predictor, once per update()
 *  - BankVoteEvent: voting predictors (gskewed / e-gskew), once per
 *    bank per update()
 *  - UpdateSkipEvent: gskewed partial / partial-lazy policies
 *  - CounterWriteEvent: any table write that changes a counter
 *  - ChoiceEvent: the McFarling hybrid's chooser
 */

#pragma once

#include <vector>

#include "support/stat_registry.hh"
#include "support/types.hh"

namespace bpred
{

/** One resolved conditional branch: final prediction vs outcome. */
struct ResolvedEvent
{
    Addr pc;
    bool predicted;
    bool taken;
};

/** One bank's vote within a majority-vote predictor, at resolution. */
struct BankVoteEvent
{
    Addr pc;
    unsigned bank;
    /** This bank's predicted direction. */
    bool vote;
    /** The majority (overall) prediction. */
    bool majority;
    /** The actual outcome. */
    bool taken;
};

/** A bank write suppressed by the update policy (§4.1 / §7). */
struct UpdateSkipEvent
{
    enum class Reason
    {
        /** Partial update: bank wrong, majority right — protected. */
        PartialProtect,

        /** Lazy update: counter already saturated the right way. */
        LazySaturated,
    };

    unsigned bank;
    Reason reason;
};

/** A counter write that changed the stored value. */
struct CounterWriteEvent
{
    /** Bank (voting predictors) or 0 (single-table predictors). */
    unsigned bank;
    u8 before;
    u8 after;
};

/** A hybrid-chooser decision. */
struct ChoiceEvent
{
    /** True when the chooser selected the first component. */
    bool choseFirst;

    /** True when the two components disagreed. */
    bool componentsDisagreed;

    /** True when the selected component was correct. */
    bool choiceCorrect;
};

/**
 * Receiver of per-prediction telemetry events. All handlers default
 * to no-ops so sinks override only what they consume.
 */
class ProbeSink
{
  public:
    virtual ~ProbeSink() = default;

    virtual void onResolved(const ResolvedEvent &) {}
    virtual void onBankVote(const BankVoteEvent &) {}
    virtual void onUpdateSkip(const UpdateSkipEvent &) {}
    virtual void onCounterWrite(const CounterWriteEvent &) {}
    virtual void onChoice(const ChoiceEvent &) {}
};

/**
 * A ProbeSink that aggregates events into a StatRegistry:
 *
 *   resolved.mispredict      ratio   (per resolved branch)
 *   bank<i>.disagree         ratio   (vote != majority)
 *   bank<i>.correct          ratio   (vote == outcome)
 *   bank<i>.skips.partial    counter
 *   bank<i>.skips.lazy       counter
 *   bank<i>.writes           counter (value-changing writes)
 *   bank<i>.transitions      histogram, key = before * 256 + after
 *   chooser.first            ratio   (chose first component)
 *   chooser.disagree         ratio   (components disagreed)
 *   chooser.correct          ratio   (selected component correct)
 *
 * Per-bank stat references are cached after first use, so the
 * per-event cost is a few pointer chases, not a map lookup.
 */
class CountingProbe : public ProbeSink
{
  public:
    CountingProbe() = default;

    StatRegistry &registry() { return stats; }
    const StatRegistry &registry() const { return stats; }

    void onResolved(const ResolvedEvent &event) override;
    void onBankVote(const BankVoteEvent &event) override;
    void onUpdateSkip(const UpdateSkipEvent &event) override;
    void onCounterWrite(const CounterWriteEvent &event) override;
    void onChoice(const ChoiceEvent &event) override;

  private:
    /** Cached stat references for one bank. */
    struct BankStats
    {
        RatioStat *disagree = nullptr;
        RatioStat *correct = nullptr;
        u64 *skipsPartial = nullptr;
        u64 *skipsLazy = nullptr;
        u64 *writes = nullptr;
        Histogram *transitions = nullptr;
    };

    BankStats &bank(unsigned index);

    StatRegistry stats;
    std::vector<BankStats> banks;
};

} // namespace bpred

