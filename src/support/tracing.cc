#include "support/tracing.hh"

#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/memmeter.hh"

namespace bpred::trace
{

namespace detail
{
std::atomic<bool> recording{false};
} // namespace detail

namespace
{

using Clock = std::chrono::steady_clock;

/** Buffered events per thread before drops (setCapacityPerThread). */
std::atomic<std::size_t> capacityPerThread{std::size_t(1) << 20};

/**
 * One thread's event lane. The owning thread appends without
 * synchronization; everyone else only reads under the registry
 * mutex and the quiescence contract (see tracing.hh).
 */
struct ThreadBuffer
{
    std::vector<TraceEvent, GaugedAllocator<TraceEvent>> events;
    std::string name;
    unsigned tid = 0;
    u64 dropped = 0;
};

struct Registry
{
    std::mutex registryMutex;

    /**
     * Owns every lane ever registered. Lanes are never removed:
     * worker threads die between SweepRunner batches, but their
     * events must survive into the export, and live threads hold
     * raw pointers into this vector via `tlsBuffer`. The lock-free
     * append fast path goes through that cached pointer, never
     * through this vector, so every `buffers` access takes the
     * registry lock (machine-checked by lock-discipline).
     */
    // bp_lint: guarded_by(registryMutex)
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

thread_local ThreadBuffer *tlsBuffer = nullptr;

/** The calling thread's lane, registered on first use. */
ThreadBuffer &
buffer()
{
    if (tlsBuffer == nullptr) {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.registryMutex);
        auto owned = std::make_unique<ThreadBuffer>();
        owned->tid = static_cast<unsigned>(reg.buffers.size());
        owned->events.reserve(1024);
        tlsBuffer = owned.get();
        reg.buffers.push_back(std::move(owned));
    }
    return *tlsBuffer;
}

void
append(const TraceEvent &event)
{
    ThreadBuffer &lane = buffer();
    if (lane.events.size() >=
        capacityPerThread.load(std::memory_order_relaxed)) {
        ++lane.dropped;
        return;
    }
    lane.events.push_back(event);
}

/** Append one Chrome trace-event object to @p os. */
void
writeEvent(std::ostream &os, unsigned tid, const TraceEvent &event)
{
    const double ts = double(event.startNs) / 1000.0;
    switch (event.kind) {
      case TraceEvent::Kind::span:
        os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid
           << ",\"cat\":\"" << jsonEscape(event.category)
           << "\",\"name\":\"" << jsonEscape(event.name)
           << "\",\"ts\":" << jsonFormatDouble(ts) << ",\"dur\":"
           << jsonFormatDouble(double(event.durationNs) / 1000.0);
        if (event.hasArgs) {
            os << ",\"args\":{\"i\":" << event.argIndex
               << ",\"n\":" << event.argCount << "}";
        }
        os << "}";
        break;
      case TraceEvent::Kind::instant:
        os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid
           << ",\"cat\":\"" << jsonEscape(event.category)
           << "\",\"name\":\"" << jsonEscape(event.name)
           << "\",\"ts\":" << jsonFormatDouble(ts) << "}";
        break;
      case TraceEvent::Kind::counter:
        os << "{\"ph\":\"C\",\"pid\":0,\"tid\":" << tid
           << ",\"cat\":\"" << jsonEscape(event.category)
           << "\",\"name\":\"" << jsonEscape(event.name)
           << "\",\"ts\":" << jsonFormatDouble(ts)
           << ",\"args\":{\"value\":"
           << jsonFormatDouble(event.value) << "}}";
        break;
    }
}

} // namespace

u64
nowNs()
{
    // The epoch is pinned on the first call (thread-safe static
    // init), so timestamps are small positive offsets and every
    // lane shares one timebase.
    static const Clock::time_point epoch = Clock::now();
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - epoch)
            .count());
}

void
setEnabled(bool on)
{
    if (on) {
        nowNs(); // pin the epoch before the first event
    }
    detail::recording.store(on, std::memory_order_relaxed);
}

void
Scope::begin(const char *category, const char *name, u64 arg_index,
             u64 arg_count, bool has_args)
{
    category_ = category;
    name_ = name;
    argIndex = arg_index;
    argCount = arg_count;
    hasArgs = has_args;
    start = nowNs();
    live = true;
}

void
Scope::end()
{
    // Emit even if recording was switched off mid-span: the buffer
    // already exists and a truncated trace full of open spans is
    // worse than one trailing event.
    TraceEvent event;
    event.kind = TraceEvent::Kind::span;
    event.category = category_;
    event.name = name_;
    event.startNs = start;
    event.durationNs = nowNs() - start;
    event.argIndex = argIndex;
    event.argCount = argCount;
    event.hasArgs = hasArgs;
    append(event);
}

namespace detail
{

void
instantAlways(const char *category, const char *name)
{
    TraceEvent event;
    event.kind = TraceEvent::Kind::instant;
    event.category = category;
    event.name = name;
    event.startNs = nowNs();
    append(event);
}

void
counterAlways(const char *category, const char *name, double value)
{
    TraceEvent event;
    event.kind = TraceEvent::Kind::counter;
    event.category = category;
    event.name = name;
    event.startNs = nowNs();
    event.value = value;
    append(event);
}

} // namespace detail

void
setThreadName(const std::string &name)
{
    if (!enabled()) {
        return;
    }
    buffer().name = name;
}

void
setCapacityPerThread(std::size_t max_events)
{
    capacityPerThread.store(max_events == 0 ? 1 : max_events,
                            std::memory_order_relaxed);
}

std::size_t
threadCount()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.registryMutex);
    return reg.buffers.size();
}

std::size_t
eventCount()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.registryMutex);
    std::size_t count = 0;
    for (const auto &lane : reg.buffers) {
        count += lane->events.size();
    }
    return count;
}

u64
droppedCount()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.registryMutex);
    u64 dropped = 0;
    for (const auto &lane : reg.buffers) {
        dropped += lane->dropped;
    }
    return dropped;
}

void
reset()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.registryMutex);
    for (const auto &lane : reg.buffers) {
        lane->events.clear();
        lane->dropped = 0;
    }
}

std::vector<ThreadSnapshot>
snapshot()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.registryMutex);
    std::vector<ThreadSnapshot> lanes;
    lanes.reserve(reg.buffers.size());
    for (const auto &lane : reg.buffers) {
        ThreadSnapshot snap;
        snap.tid = lane->tid;
        snap.name = lane->name;
        snap.events.assign(lane->events.begin(),
                           lane->events.end());
        snap.dropped = lane->dropped;
        lanes.push_back(std::move(snap));
    }
    return lanes;
}

bool
writeChromeTrace(std::ostream &os)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.registryMutex);

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    u64 dropped = 0;
    for (const auto &lane : reg.buffers) {
        dropped += lane->dropped;
        // Lane label first, so Perfetto names the track before any
        // of its events.
        os << (first ? "\n" : ",\n");
        first = false;
        const std::string label = lane->name.empty()
            ? "thread-" + std::to_string(lane->tid)
            : lane->name;
        os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << lane->tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(label) << "\"}}";
        for (const TraceEvent &event : lane->events) {
            os << ",\n";
            writeEvent(os, lane->tid, event);
        }
    }
    os << "\n],\"bpredDroppedEvents\":" << dropped << "}\n";
    return os.good();
}

bool
writeChromeTrace(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        warn("trace: cannot open '" + path + "' for writing");
        return false;
    }
    if (!writeChromeTrace(out)) {
        warn("trace: write to '" + path + "' failed");
        return false;
    }
    return true;
}

} // namespace bpred::trace
