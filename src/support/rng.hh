/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (synthetic workload
 * generation in particular) flows through these generators so that
 * every experiment is exactly reproducible from a seed.
 */

#pragma once

#include <cassert>
#include <vector>

#include "support/types.hh"

namespace bpred
{

/**
 * SplitMix64 generator.
 *
 * Tiny, fast, and statistically solid for simulation purposes; also
 * used to seed larger state from a single 64-bit seed.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(u64 seed) : state(seed) {}

    /** Next raw 64-bit value. */
    u64
    next()
    {
        u64 z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    u64 state;
};

/**
 * Xoshiro256** generator: the library's main RNG.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(u64 seed = 0x1997'0601'cafe'f00dULL);

    /** Next raw 64-bit value. */
    u64 next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    u64 uniformInt(u64 bound);

    /** Uniform integer in [lo, hi] inclusive. */
    u64 uniformRange(u64 lo, u64 hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /**
     * Geometric variate: number of failures before the first success
     * with success probability @p p (p in (0, 1]).
     */
    u64 geometric(double p);

    /**
     * Zipf-distributed variate in [0, n), exponent @p s.
     *
     * Used to model skewed branch-site popularity. Sampled by
     * inversion over a precomputed CDF is too large for big n, so we
     * use rejection-inversion (Hörmann).
     */
    u64 zipf(u64 n, double s);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        if (items.empty()) {
            return;
        }
        for (u64 i = items.size() - 1; i > 0; --i) {
            u64 j = uniformInt(i + 1);
            std::swap(items[i], items[j]);
        }
    }

    /** Fork a new independent generator (for sub-streams). */
    Rng fork();

  private:
    u64 state[4];
};

} // namespace bpred

