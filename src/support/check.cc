#include "support/check.hh"

#include <string>

#include "support/logging.hh"

namespace bpred
{

void
checkFailed(const char *file, int line, const char *condition,
            const char *message)
{
    panic(std::string("BP_CHECK failed at ") + file + ":" +
          std::to_string(line) + ": " + condition + " — " + message);
}

} // namespace bpred
