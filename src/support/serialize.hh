/**
 * @file
 * Tiny binary stream-serialization helpers.
 *
 * Shared by the predictor snapshot machinery (see
 * predictors/predictor.hh) and any other component that persists
 * state. All integers are fixed-width little-endian regardless of
 * host byte order; readers throw FatalError on truncation so a
 * corrupt checkpoint surfaces as a user error, never as silent
 * garbage state.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "support/types.hh"

namespace bpred
{

/** Write one byte. */
void putU8(std::ostream &os, u8 value);

/** Read one byte. @throws FatalError on truncation. */
u8 getU8(std::istream &is);

/** Write a u16 as 2 little-endian bytes. */
void putU16(std::ostream &os, u16 value);

/** Read a little-endian u16. @throws FatalError on truncation. */
u16 getU16(std::istream &is);

/** Write a u64 as 8 little-endian bytes. */
void putU64(std::ostream &os, u64 value);

/** Read a little-endian u64. @throws FatalError on truncation. */
u64 getU64(std::istream &is);

/** Write @p size raw bytes. */
void putBytes(std::ostream &os, const void *data, std::size_t size);

/** Read exactly @p size raw bytes. @throws FatalError on truncation. */
void getBytes(std::istream &is, void *data, std::size_t size);

/** Write a length-prefixed string (u64 length + bytes). */
void putString(std::ostream &os, const std::string &value);

/**
 * Read a length-prefixed string.
 *
 * @param max_length Sanity cap on the declared length.
 * @throws FatalError on truncation or an unreasonable length.
 */
std::string getString(std::istream &is, std::size_t max_length = 4096);

} // namespace bpred

