/**
 * @file
 * Saturating up/down counter automata used as branch predictors.
 */

#pragma once

#include <cassert>
#include <iosfwd>
#include <vector>

#include "support/aligned.hh"
#include "support/bitops.hh"
#include "support/check.hh"
#include "support/types.hh"

namespace bpred
{

/**
 * An n-bit saturating counter (1 <= n <= 8).
 *
 * Counts up on taken, down on not-taken, saturating at the ends.
 * The predicted direction is the counter's top bit: a value in the
 * upper half predicts taken. A 1-bit counter degenerates to the
 * classic last-outcome predictor; the 2-bit counter is the standard
 * Smith automaton used throughout the paper.
 */
class SatCounter
{
  public:
    /**
     * @param width Counter width in bits (1..8).
     * @param initial Initial counter value; defaults to weakly
     *        not-taken (just below the midpoint), the conventional
     *        cold state.
     */
    explicit SatCounter(unsigned width = 2, u8 initial = 0)
        : value_(initial), width_(static_cast<u8>(width))
    {
        assert(width >= 1 && width <= 8);
        assert(initial <= maxValue());
    }

    /** Largest representable value. */
    u8 maxValue() const { return static_cast<u8>(mask(width_)); }

    /** Counter midpoint: values >= this predict taken. */
    u8 threshold() const { return static_cast<u8>(u8(1) << (width_ - 1)); }

    /** Current raw value. */
    u8 value() const { return value_; }

    /** Counter width in bits. */
    unsigned width() const { return width_; }

    /** Predicted direction. */
    bool predictTaken() const { return value_ >= threshold(); }

    /**
     * True if the counter is in a saturated (strong) state for its
     * current direction.
     */
    bool
    isStrong() const
    {
        return value_ == 0 || value_ == maxValue();
    }

    /** Train toward @p taken. */
    void
    update(bool taken)
    {
        if (taken) {
            if (value_ < maxValue()) {
                ++value_;
            }
        } else {
            if (value_ > 0) {
                --value_;
            }
        }
    }

    /** Reset to an arbitrary value. */
    void
    set(u8 new_value)
    {
        assert(new_value <= maxValue());
        value_ = new_value;
    }

    /** Initialize to weakly @p taken (closest value to the midpoint). */
    void
    setWeak(bool taken)
    {
        value_ = taken ? threshold() : static_cast<u8>(threshold() - 1);
    }

    /** Initialize to strongly @p taken (saturated). */
    void
    setStrong(bool taken)
    {
        value_ = taken ? maxValue() : 0;
    }

  private:
    u8 value_;
    u8 width_;
};

/**
 * A flat, cache-friendly array of saturating counters sharing one
 * width. This is the storage structure for all table-based
 * predictors; it avoids per-entry object overhead.
 */
class SatCounterArray
{
  public:
    /**
     * @param num_entries Number of counters.
     * @param width Bits per counter (1..8).
     * @param initial Initial value for every counter.
     */
    SatCounterArray(u64 num_entries, unsigned width, u8 initial = 0);

    /**
     * A raw-pointer view for inlined replay kernels: the storage
     * pointer and saturation bounds lifted into plain locals, so a
     * block loop can keep them in registers instead of re-loading
     * vector internals after every (char-typed, alias-everything)
     * counter store. predictTaken()/update() mirror the array's
     * methods exactly — the block-vs-scalar contract tests hold the
     * two implementations together. The view borrows: it must not
     * outlive the array or span a resize/reset.
     *
     * The stride widens the view over banked layouts: counter
     * @p index lives at values[index * stride], so the same kernel
     * code walks a flat array (stride 1) or one bank of an
     * interleaved SatCounterBankGroup (stride = bank count) without
     * a layout branch.
     */
    struct View
    {
        u8 *values;
        u8 max;
        u8 threshold;
        u32 stride = 1;

        /** Storage slot of counter @p index under this stride. */
        u8 &at(u64 index) const { return values[index * stride]; }

        /** Predicted direction of counter @p index. */
        bool
        predictTaken(u64 index) const
        {
            return at(index) >= threshold;
        }

        /** Raw value of counter @p index. */
        u8 value(u64 index) const { return at(index); }

        /**
         * Train counter @p index toward @p taken. Same result as
         * the array's update(), computed branchlessly: @p taken is
         * data (not control) in replay loops, so a conditional
         * increment would mispredict on every hard-to-predict
         * branch — precisely the records a predictor study feeds.
         */
        void
        update(u64 index, bool taken)
        {
            u8 &v = at(index);
            // Bitwise (not short-circuit) combination: the whole
            // expression is straight-line ALU arithmetic.
            const int up = int(taken) & int(v < max);
            const int down = int(!taken) & int(v > 0);
            v = static_cast<u8>(v + up - down);
        }
    };

    /** Borrow a kernel view of this array (see View). */
    View
    view()
    {
        return {values.data(), maxCounterValue, thresholdValue, 1};
    }

    /** Number of counters. */
    u64 size() const { return values.size(); }

    /** Bits per counter. */
    unsigned width() const { return width_; }

    /** Total storage cost in bits (the hardware budget metric). */
    u64 storageBits() const { return size() * width_; }

    /** Predicted direction of counter @p index. */
    bool
    predictTaken(u64 index) const
    {
        BP_DCHECK(index < values.size(),
                  "counter read out of range");
        return values[index] >= thresholdValue;
    }

    /** Raw value of counter @p index. */
    u8
    value(u64 index) const
    {
        BP_DCHECK(index < values.size(),
                  "counter read out of range");
        return values[index];
    }

    /** Train counter @p index toward @p taken. */
    void
    update(u64 index, bool taken)
    {
        BP_DCHECK(index < values.size(),
                  "counter write out of range");
        u8 &v = values[index];
        if (taken) {
            if (v < maxCounterValue) {
                ++v;
            }
        } else {
            if (v > 0) {
                --v;
            }
        }
    }

    /** Set counter @p index to an explicit value. */
    void
    set(u64 index, u8 new_value)
    {
        BP_CHECK(index < values.size(),
                 "counter write out of range");
        BP_CHECK(new_value <= maxCounterValue,
                 "counter value exceeds its width");
        values[index] = new_value;
    }

    /** Reset every counter to @p initial. */
    void reset(u8 initial = 0);

    /**
     * Serialize geometry (entry count, width) and every counter
     * value (see support/serialize.hh for the encoding).
     */
    void saveState(std::ostream &os) const;

    /**
     * Restore counter values from a saveState() stream. The stored
     * geometry must match this array's; every restored value must
     * be representable at this width.
     *
     * @throws FatalError on a geometry mismatch, an out-of-range
     *         counter value, or truncation.
     */
    void loadState(std::istream &is);

  private:
    std::vector<u8> values;
    u8 width_;
    u8 maxCounterValue;
    u8 thresholdValue;
};

/** Memory order of a SatCounterBankGroup. */
enum class BankLayout : u8
{
    /** Bank-major: each bank's counters contiguous (classic). */
    Planar,

    /**
     * Entry-major: counter (bank, index) lives at
     * index * numBanks + bank, so the banks' counters for one entry
     * share a cache line — the layout multi-bank probes (e-gskew's
     * per-branch 3-bank read) want when bank indices correlate, and
     * the one the phase-split replay kernels prefetch against.
     */
    Interleaved,
};

/**
 * All banks of a multi-bank predictor in one contiguous,
 * cache-line-aligned allocation, in either Planar or Interleaved
 * order (see BankLayout). Every bank shares one counter width.
 *
 * The layout is invisible to behaviour: per-bank access mirrors a
 * vector of SatCounterArray exactly (the skewed-predictor contract
 * tests pin the two), bank views carry the layout in View::stride so
 * replay kernels are layout-blind, and saveBankState() writes the
 * same byte stream SatCounterArray::saveState() would — snapshots
 * taken before this class existed restore into it unchanged.
 */
class SatCounterBankGroup
{
  public:
    /**
     * @param num_banks Number of banks (>= 1).
     * @param entries_per_bank Counters per bank.
     * @param width Bits per counter (1..8), shared by all banks.
     * @param layout Memory order (see BankLayout).
     * @param initial Initial value for every counter.
     */
    SatCounterBankGroup(unsigned num_banks, u64 entries_per_bank,
                        unsigned width, BankLayout layout,
                        u8 initial = 0);

    /** Number of banks. */
    unsigned numBanks() const { return numBanks_; }

    /** Counters per bank. */
    u64 entriesPerBank() const { return entriesPerBank_; }

    /** Bits per counter. */
    unsigned width() const { return width_; }

    /** The memory order counters are stored in. */
    BankLayout layout() const { return layout_; }

    /** Total storage cost in bits across all banks. */
    u64
    storageBits() const
    {
        return u64(numBanks_) * entriesPerBank_ * width_;
    }

    /**
     * Borrow a kernel view of bank @p bank; the view's stride
     * encodes the layout (1 for Planar, numBanks for Interleaved).
     */
    SatCounterArray::View bankView(unsigned bank);

    /** Predicted direction of counter @p index in bank @p bank. */
    bool
    predictTaken(unsigned bank, u64 index) const
    {
        return values[offsetOf(bank, index)] >= thresholdValue;
    }

    /** Raw value of counter @p index in bank @p bank. */
    u8
    value(unsigned bank, u64 index) const
    {
        return values[offsetOf(bank, index)];
    }

    /** Train counter @p index of bank @p bank toward @p taken. */
    void
    update(unsigned bank, u64 index, bool taken)
    {
        u8 &v = values[offsetOf(bank, index)];
        if (taken) {
            if (v < maxCounterValue) {
                ++v;
            }
        } else {
            if (v > 0) {
                --v;
            }
        }
    }

    /** Set counter @p index of bank @p bank to an explicit value. */
    void set(unsigned bank, u64 index, u8 new_value);

    /** Reset every counter in every bank to @p initial. */
    void reset(u8 initial = 0);

    /**
     * Serialize bank @p bank exactly as a standalone
     * SatCounterArray of the same geometry would (entry count,
     * width, raw values) — the BPS1 snapshot format predates this
     * class and must not change.
     */
    void saveBankState(unsigned bank, std::ostream &os) const;

    /**
     * Restore bank @p bank from a SatCounterArray::saveState()
     * stream.
     *
     * @throws FatalError on a geometry mismatch, an out-of-range
     *         counter value, or truncation.
     */
    void loadBankState(unsigned bank, std::istream &is);

  private:
    /** Storage slot of (bank, index) under the active layout. */
    u64
    offsetOf(unsigned bank, u64 index) const
    {
        BP_DCHECK(bank < numBanks_ && index < entriesPerBank_,
                  "bank counter access out of range");
        return layout_ == BankLayout::Planar
            ? u64(bank) * entriesPerBank_ + index
            : index * numBanks_ + bank;
    }

    AlignedVector<u8> values;
    u64 entriesPerBank_;
    unsigned numBanks_;
    BankLayout layout_;
    u8 width_;
    u8 maxCounterValue;
    u8 thresholdValue;
};

} // namespace bpred

