/**
 * @file
 * Low-overhead structured tracing with Chrome/Perfetto export.
 *
 * The engine layers (SweepRunner, GangSession, SimSession, the
 * bench drivers) mark their phases with RAII spans and instant
 * events; the recorder collects them into per-thread buffers and
 * exports one Chrome trace-event JSON file that opens directly in
 * ui.perfetto.dev or chrome://tracing — one lane per thread, spans
 * for trace-generation / gang-block / member-replay / session
 * phases, instants for exceptions and warmup boundaries.
 *
 * Cost model (the defining constraint):
 *  - Disabled (the default), TRACE_SCOPE compiles to one relaxed
 *    atomic load and branch at scope entry and a dead-flag branch
 *    at exit. No allocation, no clock read, no buffer touch; the
 *    replay-kernel throughput bands must not move.
 *  - Enabled, each event is one steady_clock read (two for spans)
 *    plus one append to a buffer owned by the recording thread —
 *    no locks, no sharing on the hot path. The global registry
 *    mutex is taken only when a thread records its first event
 *    (buffer registration) and during export/reset.
 *
 * Concurrency contract: appends are safe from any number of
 * threads concurrently (each writes only its own buffer).
 * writeChromeTrace() and reset() require quiescence — call them
 * only while no instrumented code is running (benches export from
 * finish(), after every worker pool has joined).
 *
 * Span and event names must be string literals: they are stored as
 * `const char *` without copying, and the hot path must never
 * format strings. The macros below force this with `"" name`
 * concatenation (a non-literal fails to compile) and bp_lint's
 * trace-literal rule enforces it statically. Dynamic values go in
 * the optional numeric args (rendered in the Perfetto detail pane)
 * or in setThreadName(), which is registration-time only.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/types.hh"

namespace bpred::trace
{

namespace detail
{
/** Recording master switch; use enabled()/setEnabled(). */
extern std::atomic<bool> recording;
} // namespace detail

/** True while the recorder accepts events. */
inline bool
enabled()
{
    return detail::recording.load(std::memory_order_relaxed);
}

/**
 * Start or stop recording. Turning recording off does not discard
 * events already buffered; reset() does.
 */
void setEnabled(bool on);

/** One recorded event (span, instant, or counter sample). */
struct TraceEvent
{
    enum class Kind : unsigned char
    {
        span,
        instant,
        counter
    };

    /** Category literal, e.g. "gang" (never owned). */
    const char *category = nullptr;

    /** Name literal, e.g. "block" (never owned). */
    const char *name = nullptr;

    /** Start time, nanoseconds since the recorder epoch. */
    u64 startNs = 0;

    /** Span duration in nanoseconds (0 for instants/counters). */
    u64 durationNs = 0;

    /** Counter sample value (counters only). */
    double value = 0.0;

    /** Optional numeric args (index / count), spans only. */
    u64 argIndex = 0;
    u64 argCount = 0;

    Kind kind = Kind::span;
    bool hasArgs = false;
};

/**
 * RAII span: records [construction, destruction) as one complete
 * event on the current thread's lane. Use via TRACE_SCOPE so names
 * stay literals.
 */
class Scope
{
  public:
    Scope(const char *category, const char *name)
    {
        if (enabled()) {
            begin(category, name, 0, 0, false);
        }
    }

    /** Span with numeric args (e.g. block index, member count). */
    Scope(const char *category, const char *name, u64 arg_index,
          u64 arg_count)
    {
        if (enabled()) {
            begin(category, name, arg_index, arg_count, true);
        }
    }

    ~Scope()
    {
        if (live) {
            end();
        }
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    void begin(const char *category, const char *name,
               u64 arg_index, u64 arg_count, bool has_args);
    void end();

    const char *category_ = nullptr;
    const char *name_ = nullptr;
    u64 start = 0;
    u64 argIndex = 0;
    u64 argCount = 0;
    bool hasArgs = false;
    bool live = false;
};

namespace detail
{
void instantAlways(const char *category, const char *name);
void counterAlways(const char *category, const char *name,
                   double value);
} // namespace detail

/** Record a zero-duration marker (exceptions, phase boundaries). */
inline void
instant(const char *category, const char *name)
{
    if (enabled()) {
        detail::instantAlways(category, name);
    }
}

/** Record one sample of a named counter series. */
inline void
counter(const char *category, const char *name, double value)
{
    if (enabled()) {
        detail::counterAlways(category, name, value);
    }
}

/**
 * Label the calling thread's lane ("sweep-worker-3"). No-op while
 * recording is disabled; threads registered without a name export
 * as "thread-<tid>".
 */
void setThreadName(const std::string &name);

/** Nanoseconds since the recorder epoch (steady clock). */
u64 nowNs();

/**
 * Cap on buffered events per thread (default 1M). Events beyond
 * the cap are counted as dropped, never buffered — recording can
 * not grow without bound on a runaway loop.
 */
void setCapacityPerThread(std::size_t max_events);

/** Threads that have recorded at least one event (ever). */
std::size_t threadCount();

/** Events currently buffered across all threads. */
std::size_t eventCount();

/** Events dropped on full buffers since the last reset(). */
u64 droppedCount();

/** Discard all buffered events (quiescence required; lanes stay). */
void reset();

/** One thread's lane, copied out for inspection in tests. */
struct ThreadSnapshot
{
    unsigned tid = 0;
    std::string name;
    std::vector<TraceEvent> events;
    u64 dropped = 0;
};

/** Copy every lane in tid order (quiescence required). */
std::vector<ThreadSnapshot> snapshot();

/**
 * Export every buffered event as Chrome trace-event JSON
 * ({"traceEvents": [...]}, timestamps in microseconds) — the
 * format ui.perfetto.dev and chrome://tracing load natively.
 * Quiescence required. Returns false on a stream error.
 */
bool writeChromeTrace(std::ostream &os);

/** writeChromeTrace() into @p path; warns and returns false on I/O errors. */
bool writeChromeTrace(const std::string &path);

} // namespace bpred::trace

#define BPRED_TRACE_JOIN2(a, b) a##b
#define BPRED_TRACE_JOIN(a, b) BPRED_TRACE_JOIN2(a, b)

/**
 * Mark the enclosing scope as a span: TRACE_SCOPE("gang", "block")
 * or TRACE_SCOPE("gang", "block", index, count) with numeric args.
 * Category and name must be string literals (`"" x` rejects
 * anything else at compile time; bp_lint: trace-literal).
 */
#define TRACE_SCOPE(category, name, ...)                             \
    ::bpred::trace::Scope BPRED_TRACE_JOIN(bpredTraceScope_,         \
                                           __LINE__)(                \
        "" category, "" name __VA_OPT__(, ) __VA_ARGS__)

/** Record an instant marker; literal-args contract as TRACE_SCOPE. */
#define TRACE_INSTANT(category, name)                                \
    ::bpred::trace::instant("" category, "" name)

/** Record a counter sample; literal-args contract as TRACE_SCOPE. */
#define TRACE_COUNTER(category, name, value)                         \
    ::bpred::trace::counter("" category, "" name, (value))
