/**
 * @file
 * SIMD dispatch policy for the phase-split replay kernels.
 *
 * The vectorized index/hash kernels (predictors/block_kernel_simd.hh)
 * exist in two implementations: an AVX2 one and a scalar one that is
 * bit-identical by contract (the contract tests sweep every scheme
 * under both). Which one runs is decided once per session:
 *
 *  - Build time: the CMake cache variable BPRED_SIMD
 *    (auto | avx2 | scalar) decides whether the AVX2 kernels are
 *    compiled at all. `scalar` defines BPRED_SIMD_SCALAR_ONLY and
 *    the tree contains no vector code — that build is the reference.
 *  - Run time: the BPRED_SIMD environment variable (auto | avx2 |
 *    scalar) or the per-run SimOptions::simd knob picks among the
 *    compiled paths; `auto` probes the CPU with
 *    __builtin_cpu_supports("avx2"). An explicit `avx2` request on
 *    a machine (or build) without AVX2 warns once and falls back to
 *    scalar — results are identical either way, so a fallback is
 *    always safe.
 *
 * BPRED_HAVE_AVX2 is the compile-time gate every intrinsic in the
 * *_simd translation units must sit behind (enforced by the bp_lint
 * `simd-isolation` rule).
 */

#pragma once

#include "support/types.hh"

#if !defined(BPRED_SIMD_SCALAR_ONLY) && \
    (defined(__x86_64__) || defined(__i386__))
#define BPRED_HAVE_AVX2 1
#else
#define BPRED_HAVE_AVX2 0
#endif

namespace bpred
{

/** Which index/hash kernel implementation a replay pass uses. */
enum class SimdMode : u8
{
    /** Defer to BPRED_SIMD in the environment, then the CPU probe. */
    Auto,

    /** The AVX2 kernels (falls back to Scalar when unavailable). */
    Avx2,

    /** The scalar reference kernels. */
    Scalar,
};

/** "auto" / "avx2" / "scalar". */
const char *simdModeName(SimdMode mode);

/**
 * True when the AVX2 kernels are compiled into this build and the
 * host CPU supports them (the probe result is cached).
 */
bool simdAvx2Available();

/**
 * Resolve @p requested to the mode a kernel should actually run:
 * Auto consults the BPRED_SIMD environment variable and then
 * simdAvx2Available(); an explicit Avx2 request degrades to Scalar
 * (with a one-time warning) when AVX2 is unavailable. Never
 * returns Auto.
 */
SimdMode resolveSimdMode(SimdMode requested = SimdMode::Auto);

} // namespace bpred
