/**
 * @file
 * Bit-manipulation helpers shared by indexing functions and predictors.
 */

#pragma once

#include <bit>
#include <cassert>

#include "support/types.hh"

namespace bpred
{

/**
 * Return a mask with the low @p n bits set.
 *
 * @param n Number of low-order bits to set; must be <= 64.
 */
constexpr u64
mask(unsigned n)
{
    assert(n <= 64);
    return n >= 64 ? ~u64(0) : ((u64(1) << n) - 1);
}

/** Extract bits [lo, lo+len) of @p value, right-justified. */
constexpr u64
bits(u64 value, unsigned lo, unsigned len)
{
    assert(lo < 64);
    return (value >> lo) & mask(len);
}

/** Extract single bit @p pos of @p value. */
constexpr bool
bit(u64 value, unsigned pos)
{
    assert(pos < 64);
    return (value >> pos) & 1;
}

/** True iff @p value is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(u64 value)
{
    return value != 0 && std::has_single_bit(value);
}

/**
 * Floor of log2 for a non-zero value.
 */
constexpr unsigned
floorLog2(u64 value)
{
    assert(value != 0);
    return 63 - std::countl_zero(value);
}

/** Ceil of log2 for a non-zero value. */
constexpr unsigned
ceilLog2(u64 value)
{
    assert(value != 0);
    return value == 1 ? 0 : floorLog2(value - 1) + 1;
}

/** Number of set bits. */
constexpr unsigned
popCount(u64 value)
{
    return static_cast<unsigned>(std::popcount(value));
}

/** XOR-fold @p value down to @p width bits. */
constexpr u64
xorFold(u64 value, unsigned width)
{
    assert(width > 0 && width <= 64);
    u64 folded = 0;
    while (value != 0) {
        folded ^= value & mask(width);
        value >>= width;
    }
    return folded;
}

/** Reverse the low @p n bits of @p value (bit 0 <-> bit n-1). */
constexpr u64
reverseBits(u64 value, unsigned n)
{
    assert(n >= 1 && n <= 64);
    u64 reversed = 0;
    for (unsigned i = 0; i < n; ++i) {
        reversed |= bits(value, i, 1) << (n - 1 - i);
    }
    return reversed;
}

/** Rotate the low @p n bits of @p value left by @p amount. */
constexpr u64
rotateLeft(u64 value, unsigned n, unsigned amount)
{
    assert(n >= 1 && n <= 64);
    value &= mask(n);
    amount %= n;
    if (amount == 0) {
        return value;
    }
    return ((value << amount) | (value >> (n - amount))) & mask(n);
}

} // namespace bpred

