#include "support/parse.hh"

#include <exception>

#include "support/logging.hh"

namespace bpred
{

namespace
{

[[noreturn]] void
badNumber(const std::string &text, const std::string &what)
{
    fatal(what + ": '" + text + "' is not a valid number");
}

} // namespace

double
parseDouble(const std::string &text, const std::string &what)
{
    try {
        std::size_t consumed = 0;
        const double value = std::stod(text, &consumed);
        if (consumed != text.size()) {
            badNumber(text, what);
        }
        return value;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        badNumber(text, what);
    }
}

u64
parseU64(const std::string &text, const std::string &what)
{
    try {
        std::size_t consumed = 0;
        const unsigned long long value =
            std::stoull(text, &consumed);
        if (consumed != text.size() ||
            text.find('-') != std::string::npos) {
            badNumber(text, what);
        }
        return value;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        badNumber(text, what);
    }
}

} // namespace bpred
