/**
 * @file
 * Process memory gauges for the observability layer.
 *
 * Two complementary views:
 *
 *  - processMemUsage(): the kernel's resident-set numbers (VmRSS /
 *    VmHWM from /proc/self/status). Cheap enough to read at report
 *    time; the high-water mark is what BENCH_*.json artifacts
 *    record so a perf trajectory also tracks footprint.
 *
 *  - AllocGauge + GaugedAllocator: an explicit counting-allocator
 *    hook. Containers that opt in (the tracing layer's per-thread
 *    event buffers do) report their live bytes into one process-
 *    wide atomic gauge with a high-water mark, giving tests a way
 *    to assert "this path allocated nothing" without interposing
 *    on global operator new (which would tax every allocation in
 *    every binary linking the library).
 */

#pragma once

#include <atomic>
#include <cstddef>

#include "support/types.hh"

namespace bpred
{

/** Kernel-reported process memory numbers. */
struct MemUsage
{
    /** Current resident set size in bytes. */
    u64 rssBytes = 0;

    /** Peak resident set size (VmHWM) in bytes. */
    u64 rssPeakBytes = 0;

    /** False when the platform offers no /proc/self/status. */
    bool valid = false;
};

/**
 * Read VmRSS / VmHWM for this process. On platforms without
 * /proc/self/status the result has valid == false and zero sizes —
 * callers degrade to omitting the numbers, never to failing.
 */
MemUsage processMemUsage();

/**
 * Process-wide counter of bytes held by opted-in containers.
 * All operations are lock-free atomics; the peak is maintained
 * with a CAS loop on allocation only.
 */
class AllocGauge
{
  public:
    /** Record @p bytes allocated. */
    static void add(std::size_t bytes);

    /** Record @p bytes released. */
    static void sub(std::size_t bytes);

    /** Bytes currently held. */
    static u64 current();

    /** High-water mark of current() since start (or resetPeak). */
    static u64 peak();

    /** Reset the high-water mark to the current level. */
    static void resetPeak();

  private:
    static std::atomic<u64> current_;
    static std::atomic<u64> peak_;
};

/**
 * A std-compatible allocator that reports every allocation and
 * deallocation into AllocGauge. Drop-in for containers whose
 * footprint should be visible in --stats-out reports and
 * assertable in tests.
 */
template <typename T>
struct GaugedAllocator
{
    using value_type = T;

    GaugedAllocator() = default;

    template <typename U>
    GaugedAllocator(const GaugedAllocator<U> &)
    {}

    T *
    allocate(std::size_t n)
    {
        AllocGauge::add(n * sizeof(T));
        return static_cast<T *>(
            ::operator new(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        AllocGauge::sub(n * sizeof(T));
        ::operator delete(p);
    }

    template <typename U>
    bool
    operator==(const GaugedAllocator<U> &) const
    {
        return true;
    }
};

} // namespace bpred
