/**
 * @file
 * Hardware performance counters around simulation kernels.
 *
 * PerfCounterGroup opens one perf_event group (cycles,
 * instructions, cache-misses, branch-misses) scoped to the calling
 * thread, so a bench can answer "what does the *hardware* do under
 * replayBlock" — IPC, cache-MPKI and branch-MPKI of the simulator
 * itself — next to the wall-clock throughput numbers.
 *
 * Availability is best-effort by design: perf_event_open is
 * routinely unavailable (non-Linux builds, containers without
 * CAP_PERFMON, kernel.perf_event_paranoid >= 3, missing PMU in
 * VMs). Every failure degrades to available() == false with
 * start()/stop() as no-ops and invalid samples — callers print "-"
 * instead of numbers and nothing else changes. Partial groups
 * degrade per counter: a machine that exposes cycles/instructions
 * but not cache-misses still reports IPC.
 */

#pragma once

#include <cstddef>

#include "support/types.hh"

namespace bpred
{

/** One start()/stop() reading of the counter group. */
struct PerfSample
{
    u64 cycles = 0;
    u64 instructions = 0;
    u64 cacheMisses = 0;
    u64 branchMisses = 0;

    /**
     * True when cycles and instructions were measured (the leader
     * pair every derived metric needs). cacheMisses/branchMisses
     * may still be 0 on machines that do not expose them.
     */
    bool valid = false;

    /** Instructions per cycle, 0 when invalid or cycles == 0. */
    double
    ipc() const
    {
        return (valid && cycles > 0)
            ? double(instructions) / double(cycles)
            : 0.0;
    }

    /** Events per thousand units of work (e.g. misses per kilo-record). */
    static double
    perKilo(u64 events, double units)
    {
        return units > 0 ? double(events) * 1000.0 / units : 0.0;
    }
};

/**
 * A group of hardware counters for the calling thread. Open once,
 * then bracket each measured region with start()/stop():
 *
 *   PerfCounterGroup counters;
 *   counters.start();
 *   ... hot kernel ...
 *   PerfSample sample = counters.stop();
 *   if (sample.valid) { report(sample.ipc()); }
 *
 * The group is scheduled atomically (all counters count the same
 * intervals); if the PMU multiplexed the group, readings are
 * scaled by time_enabled/time_running like perf(1) does.
 */
class PerfCounterGroup
{
  public:
    PerfCounterGroup();
    ~PerfCounterGroup();

    PerfCounterGroup(const PerfCounterGroup &) = delete;
    PerfCounterGroup &operator=(const PerfCounterGroup &) = delete;

    /** True when at least cycles + instructions opened. */
    bool available() const { return available_; }

    /** Reset and enable the group (no-op when unavailable). */
    void start();

    /**
     * Disable the group and read it. The sample is invalid (all
     * zeros) when the group is unavailable or the read failed.
     */
    PerfSample stop();

  private:
    /** Slot order: cycles, instructions, cache-, branch-misses. */
    static constexpr std::size_t numSlots = 4;

    int fds[numSlots] = {-1, -1, -1, -1};
    bool available_ = false;

    void closeAll();
};

} // namespace bpred
