#include "support/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace bpred
{

void
RunningStat::sample(double value)
{
    ++count_;
    sum_ += value;
    if (count_ == 1) {
        mean_ = value;
        m2 = 0.0;
        min_ = value;
        max_ = value;
        return;
    }
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2 += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
RunningStat::variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2 / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2 = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    sum_ = 0.0;
}

u64
Histogram::count(u64 key) const
{
    auto it = counts.find(key);
    return it == counts.end() ? 0 : it->second;
}

double
Histogram::mean() const
{
    if (total_ == 0) {
        return 0.0;
    }
    double weighted = 0.0;
    for (const auto &[key, count] : counts) {
        weighted += static_cast<double>(key) * static_cast<double>(count);
    }
    return weighted / static_cast<double>(total_);
}

u64
Histogram::percentile(double fraction) const
{
    if (!(fraction > 0.0 && fraction <= 1.0)) {
        fatal("Histogram::percentile: fraction " +
              std::to_string(fraction) + " outside (0, 1]");
    }
    if (total_ == 0) {
        return 0;
    }
    const double target = fraction * static_cast<double>(total_);
    u64 running = 0;
    for (const auto &[key, count] : counts) {
        running += count;
        if (static_cast<double>(running) >= target) {
            return key;
        }
    }
    return counts.rbegin()->first;
}

double
Histogram::cumulativeFraction(u64 key) const
{
    if (total_ == 0) {
        return 0.0;
    }
    u64 running = 0;
    for (const auto &[k, count] : counts) {
        if (k > key) {
            break;
        }
        running += count;
    }
    return static_cast<double>(running) / static_cast<double>(total_);
}

std::vector<std::pair<u64, u64>>
Histogram::sorted() const
{
    return {counts.begin(), counts.end()};
}

std::vector<u64>
Histogram::log2Buckets() const
{
    std::vector<u64> buckets;
    for (const auto &[key, count] : counts) {
        const unsigned bucket = key < 2 ? 0 : floorLog2(key);
        if (buckets.size() <= bucket) {
            buckets.resize(bucket + 1, 0);
        }
        buckets[bucket] += count;
    }
    return buckets;
}

void
Histogram::reset()
{
    counts.clear();
    total_ = 0;
}

} // namespace bpred
