#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace bpred
{

namespace
{
bool quietMode = false;
} // namespace

void
fatal(const std::string &message)
{
    throw FatalError(message);
}

void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

void
warn(const std::string &message)
{
    if (!quietMode) {
        std::fprintf(stderr, "warn: %s\n", message.c_str());
    }
}

void
inform(const std::string &message)
{
    if (!quietMode) {
        std::fprintf(stderr, "info: %s\n", message.c_str());
    }
}

bool
setQuiet(bool quiet)
{
    const bool previous = quietMode;
    quietMode = quiet;
    return previous;
}

} // namespace bpred
