/**
 * @file
 * A registry of named, hierarchically grouped statistics.
 *
 * Simulation components register counters, ratios, running stats
 * and histograms under dot-separated names ("bank0.disagree",
 * "chooser.first"); the registry serializes the whole collection as
 * nested JSON. This is the aggregation point for probe-driven
 * telemetry (see support/probe.hh) and for any component that wants
 * its internal event counts in machine-readable results.
 *
 * Naming scheme: lowercase, '.'-separated segments; a segment
 * either names a leaf stat or a group, never both ("bank0" cannot
 * be a counter if "bank0.disagree" exists — enforced with fatal()).
 */

#pragma once

#include <map>
#include <mutex>
#include <string>
#include <variant>

#include "support/json.hh"
#include "support/stats.hh"

namespace bpred
{

/**
 * Named statistics, created on first access and serializable as
 * nested JSON.
 *
 * References returned by counter()/ratio()/running()/histogram()
 * stay valid for the registry's lifetime (node-based storage), so
 * hot paths can cache them and skip the name lookup.
 */
class StatRegistry
{
  public:
    /** One registered stat: a plain count or one of the stats.hh types. */
    using Stat = std::variant<u64, RatioStat, RunningStat, Histogram>;

    /**
     * The plain counter registered under @p name, created at zero
     * on first access. fatal() if @p name is registered as another
     * kind or collides with a group.
     */
    u64 &counter(const std::string &name);

    /** As counter(), for a RatioStat. */
    RatioStat &ratio(const std::string &name);

    /** As counter(), for a RunningStat. */
    RunningStat &running(const std::string &name);

    /** As counter(), for a Histogram. */
    Histogram &histogram(const std::string &name);

    /** True if a stat is registered under @p name. */
    bool contains(const std::string &name) const;

    /** Number of registered stats. */
    std::size_t size() const { return stats.size(); }

    /** True if nothing is registered. */
    bool empty() const { return stats.empty(); }

    /** Reset every stat to its empty state (names stay registered). */
    void reset();

    /** All stats in name order (for iteration in tests/reports). */
    const std::map<std::string, Stat> &entries() const { return stats; }

    /**
     * The registry as nested JSON: dot-separated names become
     * nested objects, counters become numbers, ratios/running
     * stats/histograms become summary objects.
     */
    JsonValue toJson() const;

  private:
    template <typename T>
    T &fetch(const std::string &name, const char *kind_name);

    void checkName(const std::string &name) const;

    std::map<std::string, Stat> stats;
};

/**
 * The process-wide engine-metrics registry: SweepRunner thread
 * accounting, gang occupancy, and any other engine-level telemetry
 * land here, and bench_common's `--stats-out` dumps it as JSON.
 *
 * StatRegistry itself is not thread-safe — hold engineStatsMutex()
 * for every access. The engines only write from the coordinating
 * thread (after worker pools have joined), so the lock is never
 * contended on a hot path. The annotation below makes the
 * lock-discipline rule flag any call site outside a scope holding
 * the mutex.
 */
// bp_lint: guarded_by(engineStatsMutex)
StatRegistry &engineStats();

/** The lock guarding engineStats(). */
std::mutex &engineStatsMutex();

} // namespace bpred

