#include "support/perfcount.hh"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define BPRED_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace bpred
{

#ifdef BPRED_HAVE_PERF_EVENT

namespace
{

/** The hardware event measured in each slot, in slot order. */
constexpr u32 slotConfig[] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

int
openCounter(u32 config, int group_fd)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    // The group leader starts disabled and is enabled explicitly
    // in start(); siblings follow the leader.
    attr.disabled = group_fd == -1 ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP |
        PERF_FORMAT_TOTAL_TIME_ENABLED |
        PERF_FORMAT_TOTAL_TIME_RUNNING;
    return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0,
                                    -1, group_fd, 0));
}

} // namespace

PerfCounterGroup::PerfCounterGroup()
{
    // The leader (cycles) and instructions are required; the two
    // miss counters are opened best-effort (VMs often lack them).
    fds[0] = openCounter(slotConfig[0], -1);
    if (fds[0] == -1) {
        return;
    }
    fds[1] = openCounter(slotConfig[1], fds[0]);
    if (fds[1] == -1) {
        closeAll();
        return;
    }
    for (std::size_t slot = 2; slot < numSlots; ++slot) {
        fds[slot] = openCounter(slotConfig[slot], fds[0]);
    }
    available_ = true;
}

PerfCounterGroup::~PerfCounterGroup()
{
    closeAll();
}

void
PerfCounterGroup::closeAll()
{
    for (std::size_t slot = 0; slot < numSlots; ++slot) {
        if (fds[slot] != -1) {
            close(fds[slot]);
            fds[slot] = -1;
        }
    }
    available_ = false;
}

void
PerfCounterGroup::start()
{
    if (!available_) {
        return;
    }
    ioctl(fds[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample
PerfCounterGroup::stop()
{
    PerfSample sample;
    if (!available_) {
        return sample;
    }
    ioctl(fds[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);

    // PERF_FORMAT_GROUP read layout: nr, time_enabled,
    // time_running, then one value per *opened* group member in
    // creation order.
    struct
    {
        u64 nr;
        u64 timeEnabled;
        u64 timeRunning;
        u64 values[numSlots];
    } data;
    const ssize_t bytes = read(fds[0], &data, sizeof(data));
    if (bytes < static_cast<ssize_t>(3 * sizeof(u64)) ||
        data.nr == 0) {
        return sample;
    }

    // Scale for multiplexing the way perf(1) does. With at most
    // four hardware counters the group normally runs unscaled.
    const double scale =
        (data.timeRunning > 0 && data.timeEnabled > data.timeRunning)
        ? double(data.timeEnabled) / double(data.timeRunning)
        : 1.0;
    auto scaled = [&](u64 raw) {
        return static_cast<u64>(double(raw) * scale);
    };

    // Map read values back to slots: members appear in creation
    // order, skipping slots whose open failed.
    u64 slotValues[numSlots] = {0, 0, 0, 0};
    std::size_t member = 0;
    for (std::size_t slot = 0;
         slot < numSlots && member < data.nr; ++slot) {
        if (fds[slot] != -1) {
            slotValues[slot] = scaled(data.values[member++]);
        }
    }

    sample.cycles = slotValues[0];
    sample.instructions = slotValues[1];
    sample.cacheMisses = slotValues[2];
    sample.branchMisses = slotValues[3];
    sample.valid = true;
    return sample;
}

#else // !BPRED_HAVE_PERF_EVENT

PerfCounterGroup::PerfCounterGroup() {}

PerfCounterGroup::~PerfCounterGroup() {}

void
PerfCounterGroup::closeAll()
{
}

void
PerfCounterGroup::start()
{
}

PerfSample
PerfCounterGroup::stop()
{
    return PerfSample();
}

#endif // BPRED_HAVE_PERF_EVENT

} // namespace bpred
