/**
 * @file
 * Validated command-line number parsing.
 *
 * The atoi/atof family silently returns 0 on garbage, which turns a
 * typo'd `--scale O.1` into a zero-length experiment that "runs
 * fine". These helpers parse strictly — the whole token must be
 * consumed — and report failures through fatal(), so every binary
 * front-end (examples, benches, tools) rejects malformed input the
 * same way. bp_lint bans the atoi family tree-wide.
 */

#pragma once

#include <string>

#include "support/types.hh"

namespace bpred
{

/**
 * Parse @p text as a double.
 *
 * @param what Context for the error message, e.g. "--scale".
 * @throws FatalError when @p text is not entirely a number.
 */
double parseDouble(const std::string &text, const std::string &what);

/**
 * Parse @p text as an unsigned 64-bit integer.
 *
 * @param what Context for the error message.
 * @throws FatalError when @p text is not entirely an unsigned
 *         decimal number.
 */
u64 parseU64(const std::string &text, const std::string &what);

} // namespace bpred
