#include "support/memmeter.hh"

#include <fstream>
#include <sstream>
#include <string>

namespace bpred
{

std::atomic<u64> AllocGauge::current_{0};
std::atomic<u64> AllocGauge::peak_{0};

void
AllocGauge::add(std::size_t bytes)
{
    const u64 now = current_.fetch_add(bytes,
                                       std::memory_order_relaxed) +
        bytes;
    u64 seen = peak_.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak_.compare_exchange_weak(seen, now,
                                        std::memory_order_relaxed)) {
        // seen reloaded by compare_exchange_weak; retry until the
        // stored peak is at least `now`.
    }
}

void
AllocGauge::sub(std::size_t bytes)
{
    current_.fetch_sub(bytes, std::memory_order_relaxed);
}

u64
AllocGauge::current()
{
    return current_.load(std::memory_order_relaxed);
}

u64
AllocGauge::peak()
{
    return peak_.load(std::memory_order_relaxed);
}

void
AllocGauge::resetPeak()
{
    peak_.store(current(), std::memory_order_relaxed);
}

MemUsage
processMemUsage()
{
    MemUsage usage;
    std::ifstream status("/proc/self/status");
    if (!status) {
        return usage; // not Linux (or procfs unmounted): degrade
    }
    std::string line;
    while (std::getline(status, line)) {
        const bool rss = line.rfind("VmRSS:", 0) == 0;
        const bool hwm = line.rfind("VmHWM:", 0) == 0;
        if (!rss && !hwm) {
            continue;
        }
        std::istringstream fields(line.substr(6));
        u64 kb = 0;
        fields >> kb;
        if (!fields) {
            continue;
        }
        if (rss) {
            usage.rssBytes = kb * 1024;
        } else {
            usage.rssPeakBytes = kb * 1024;
        }
        usage.valid = true;
    }
    return usage;
}

} // namespace bpred
