/**
 * @file
 * Lightweight statistics primitives for simulation results.
 */

#pragma once

#include <cassert>
#include <cstddef>
#include <map>
#include <vector>

#include "support/types.hh"

namespace bpred
{

/**
 * A ratio counter: events out of opportunities.
 *
 * The workhorse for misprediction and aliasing ratios.
 */
class RatioStat
{
  public:
    /** Record one opportunity; @p event says whether it counted. */
    void
    sample(bool event)
    {
        ++total_;
        if (event) {
            ++events_;
        }
    }

    /** Number of positive events. */
    u64 events() const { return events_; }

    /** Number of opportunities. */
    u64 total() const { return total_; }

    /** events / total, or 0 when empty. */
    double
    ratio() const
    {
        return total_ == 0
            ? 0.0
            : static_cast<double>(events_) / static_cast<double>(total_);
    }

    /** ratio() as a percentage. */
    double percent() const { return ratio() * 100.0; }

    /** Merge another ratio stat into this one. */
    void
    merge(const RatioStat &other)
    {
        events_ += other.events_;
        total_ += other.total_;
    }

    /**
     * Overwrite both tallies (snapshot restore). @p events must not
     * exceed @p total; violations indicate a corrupt checkpoint.
     */
    void
    restore(u64 events, u64 total)
    {
        assert(events <= total);
        events_ = events;
        total_ = total;
    }

    /** Clear to empty. */
    void
    reset()
    {
        events_ = 0;
        total_ = 0;
    }

  private:
    u64 events_ = 0;
    u64 total_ = 0;
};

/**
 * Running mean / variance / extrema over double samples
 * (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void sample(double value);

    /** Number of samples seen. */
    u64 count() const { return count_; }

    /** Mean of the samples, 0 when empty. */
    double mean() const { return count_ == 0 ? 0.0 : mean_; }

    /** Population variance, 0 with fewer than 2 samples. */
    double variance() const;

    /** Standard deviation. */
    double stddev() const;

    /** Smallest sample (0 when empty). */
    double min() const { return count_ == 0 ? 0.0 : min_; }

    /** Largest sample (0 when empty). */
    double max() const { return count_ == 0 ? 0.0 : max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Clear to empty. */
    void reset();

  private:
    u64 count_ = 0;
    double mean_ = 0.0;
    double m2 = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Histogram over integer keys with exact per-key counts.
 *
 * Used for last-use-distance distributions, trip-count
 * distributions, etc. Sparse (map-backed) because distance keys
 * span many orders of magnitude.
 */
class Histogram
{
  public:
    /** Record one occurrence of @p key. */
    void
    sample(u64 key)
    {
        ++counts[key];
        ++total_;
    }

    /** Record @p weight occurrences of @p key. */
    void
    sampleN(u64 key, u64 weight)
    {
        counts[key] += weight;
        total_ += weight;
    }

    /** Total number of samples. */
    u64 total() const { return total_; }

    /** Count recorded for @p key (0 if absent). */
    u64 count(u64 key) const;

    /** Number of distinct keys. */
    std::size_t numKeys() const { return counts.size(); }

    /** Mean key value weighted by count. */
    double mean() const;

    /**
     * Smallest key k such that at least @p fraction of the samples
     * have key <= k. fatal() unless @p fraction is in (0, 1].
     */
    u64 percentile(double fraction) const;

    /** Fraction of samples with key <= @p key. */
    double cumulativeFraction(u64 key) const;

    /** Sorted (key, count) pairs. */
    std::vector<std::pair<u64, u64>> sorted() const;

    /**
     * Collapse into power-of-two buckets: result[i] counts samples
     * with key in [2^i, 2^(i+1)), with result[0] counting key < 2.
     */
    std::vector<u64> log2Buckets() const;

    /** Clear to empty. */
    void reset();

  private:
    std::map<u64, u64> counts;
    u64 total_ = 0;
};

} // namespace bpred

