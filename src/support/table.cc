#include "support/table.hh"

#include <cassert>
#include <cstdio>
#include <iomanip>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace bpred
{

TextTable::TextTable(std::vector<std::string> headers)
    : header(std::move(headers))
{
    assert(!header.empty());
}

TextTable &
TextTable::row()
{
    rows.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(const std::string &text)
{
    if (rows.empty()) {
        panic("TextTable::cell called before row()");
    }
    rows.back().push_back(text);
    return *this;
}

TextTable &
TextTable::cell(u64 value)
{
    return cell(std::to_string(value));
}

TextTable &
TextTable::cell(i64 value)
{
    return cell(std::to_string(value));
}

TextTable &
TextTable::cell(double value, int precision)
{
    return cell(formatDouble(value, precision));
}

TextTable &
TextTable::percentCell(double percent_value, int precision)
{
    return cell(formatDouble(percent_value, precision) + " %");
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size(), 0);
    for (std::size_t c = 0; c < header.size(); ++c) {
        widths[c] = header[c].size();
    }
    for (const auto &r : rows) {
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
            widths[c] = std::max(widths[c], r[c].size());
        }
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        os << "| ";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            os << std::setw(static_cast<int>(widths[c])) << text;
            os << (c + 1 < widths.size() ? " | " : " |\n");
        }
    };

    auto print_rule = [&]() {
        os << "+";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << std::string(widths[c] + 2, '-') << "+";
        }
        os << "\n";
    };

    print_rule();
    print_row(header);
    print_rule();
    for (const auto &r : rows) {
        print_row(r);
    }
    print_rule();
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c] << (c + 1 < cells.size() ? "," : "");
        }
        os << "\n";
    };
    print_row(header);
    for (const auto &r : rows) {
        print_row(r);
    }
}

std::string
formatDouble(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

std::string
formatCount(u64 value)
{
    std::string digits = std::to_string(value);
    std::string grouped;
    grouped.reserve(digits.size() + digits.size() / 3);
    const std::size_t n = digits.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (i > 0 && (n - i) % 3 == 0) {
            grouped.push_back(',');
        }
        grouped.push_back(digits[i]);
    }
    return grouped;
}

std::string
formatEntries(u64 entries)
{
    if (entries >= 1024 && entries % 1024 == 0) {
        return std::to_string(entries / 1024) + "K";
    }
    return std::to_string(entries);
}

void
printHeading(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n\n";
}

} // namespace bpred
