#include "support/table.hh"

#include <cassert>
#include <cstdio>
#include <iomanip>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace bpred
{

TextTable::TextTable(std::vector<std::string> headers)
    : header(std::move(headers))
{
    assert(!header.empty());
}

TextTable &
TextTable::row()
{
    rows.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(const std::string &text)
{
    if (rows.empty()) {
        panic("TextTable::cell called before row()");
    }
    rows.back().push_back({text, JsonValue(text)});
    return *this;
}

TextTable &
TextTable::cell(u64 value)
{
    if (rows.empty()) {
        panic("TextTable::cell called before row()");
    }
    rows.back().push_back({std::to_string(value), JsonValue(value)});
    return *this;
}

TextTable &
TextTable::cell(i64 value)
{
    if (rows.empty()) {
        panic("TextTable::cell called before row()");
    }
    rows.back().push_back({std::to_string(value), JsonValue(value)});
    return *this;
}

TextTable &
TextTable::cell(double value, int precision)
{
    if (rows.empty()) {
        panic("TextTable::cell called before row()");
    }
    rows.back().push_back(
        {formatDouble(value, precision), JsonValue(value)});
    return *this;
}

TextTable &
TextTable::percentCell(double percent_value, int precision)
{
    if (rows.empty()) {
        panic("TextTable::cell called before row()");
    }
    rows.back().push_back({formatDouble(percent_value, precision) + " %",
                           JsonValue(percent_value)});
    return *this;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size(), 0);
    for (std::size_t c = 0; c < header.size(); ++c) {
        widths[c] = header[c].size();
    }
    for (const auto &r : rows) {
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
            widths[c] = std::max(widths[c], r[c].text.size());
        }
    }

    auto cell_text = [](const std::vector<Cell> &cells, std::size_t c) {
        return c < cells.size() ? cells[c].text : std::string();
    };

    auto print_rule = [&]() {
        os << "+";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << std::string(widths[c] + 2, '-') << "+";
        }
        os << "\n";
    };

    auto print_cells = [&](auto &&text_of) {
        os << "| ";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << std::setw(static_cast<int>(widths[c])) << text_of(c);
            os << (c + 1 < widths.size() ? " | " : " |\n");
        }
    };

    print_rule();
    print_cells([&](std::size_t c) { return header[c]; });
    print_rule();
    for (const auto &r : rows) {
        print_cells([&](std::size_t c) { return cell_text(r, c); });
    }
    print_rule();
}

void
TextTable::printCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < header.size(); ++c) {
        os << header[c] << (c + 1 < header.size() ? "," : "");
    }
    os << "\n";
    for (const auto &r : rows) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            os << r[c].text << (c + 1 < r.size() ? "," : "");
        }
        os << "\n";
    }
}

JsonValue
TextTable::toJson() const
{
    JsonValue table = JsonValue::object();
    JsonValue columns = JsonValue::array();
    for (const std::string &name : header) {
        columns.push(name);
    }
    table["columns"] = std::move(columns);
    JsonValue json_rows = JsonValue::array();
    for (const auto &r : rows) {
        JsonValue json_row = JsonValue::object();
        for (std::size_t c = 0; c < r.size() && c < header.size(); ++c) {
            json_row[header[c]] = r[c].json;
        }
        json_rows.push(std::move(json_row));
    }
    table["rows"] = std::move(json_rows);
    return table;
}

std::string
formatDouble(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

std::string
formatCount(u64 value)
{
    std::string digits = std::to_string(value);
    std::string grouped;
    grouped.reserve(digits.size() + digits.size() / 3);
    const std::size_t n = digits.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (i > 0 && (n - i) % 3 == 0) {
            grouped.push_back(',');
        }
        grouped.push_back(digits[i]);
    }
    return grouped;
}

std::string
formatEntries(u64 entries)
{
    if (entries >= 1024 && entries % 1024 == 0) {
        return std::to_string(entries / 1024) + "K";
    }
    return std::to_string(entries);
}

void
printHeading(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n\n";
}

} // namespace bpred
