#include "support/rng.hh"

#include <cmath>

namespace bpred
{

namespace
{

constexpr u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(u64 seed)
{
    SplitMix64 sm(seed);
    for (auto &word : state) {
        word = sm.next();
    }
    // Avoid the all-zero state, which xoshiro cannot leave.
    if ((state[0] | state[1] | state[2] | state[3]) == 0) {
        state[0] = 1;
    }
}

u64
Rng::next()
{
    const u64 result = rotl(state[1] * 5, 7) * 9;
    const u64 t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

u64
Rng::uniformInt(u64 bound)
{
    assert(bound != 0);
    // Rejection to remove modulo bias.
    const u64 threshold = -bound % bound;
    for (;;) {
        const u64 raw = next();
        if (raw >= threshold) {
            return raw % bound;
        }
    }
}

u64
Rng::uniformRange(u64 lo, u64 hi)
{
    assert(lo <= hi);
    return lo + uniformInt(hi - lo + 1);
}

double
Rng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return uniformReal() < p;
}

u64
Rng::geometric(double p)
{
    assert(p > 0.0 && p <= 1.0);
    if (p >= 1.0) {
        return 0;
    }
    const double u = uniformReal();
    // Inverse-CDF; clamp the degenerate u == 0 case.
    const double denom = std::log1p(-p);
    const double value = std::log1p(-u) / denom;
    return static_cast<u64>(value);
}

u64
Rng::zipf(u64 n, double s)
{
    assert(n > 0);
    if (n == 1) {
        return 0;
    }
    if (s <= 0.0) {
        return uniformInt(n);
    }

    // Hörmann rejection-inversion for Zipf on [1, n]; returns rank-1.
    const double nd = static_cast<double>(n);
    auto h = [s](double x) {
        if (s == 1.0) {
            return std::log(x);
        }
        return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
    };
    auto hInv = [s](double x) {
        if (s == 1.0) {
            return std::exp(x);
        }
        return std::pow(1.0 + x * (1.0 - s), 1.0 / (1.0 - s));
    };

    const double hx0 = h(0.5) - 1.0;
    const double hn = h(nd + 0.5);

    for (;;) {
        const double u = hx0 + uniformReal() * (hn - hx0);
        const double x = hInv(u);
        const u64 k = static_cast<u64>(x + 0.5) < 1
            ? 1
            : static_cast<u64>(x + 0.5);
        if (k > n) {
            continue;
        }
        const double kd = static_cast<double>(k);
        if (u >= h(kd + 0.5) - std::pow(kd, -s)) {
            return k - 1;
        }
    }
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0x5851f42d4c957f2dULL);
}

} // namespace bpred
