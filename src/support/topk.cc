#include "support/topk.hh"

#include <algorithm>

#include "support/logging.hh"

namespace bpred
{

TopKCounter::TopKCounter(std::size_t capacity) : capacity_(capacity)
{
    if (capacity == 0) {
        fatal("TopKCounter: capacity must be positive");
    }
    slots.reserve(capacity);
}

void
TopKCounter::add(u64 key, u64 weight)
{
    total += weight;
    auto it = slots.find(key);
    if (it != slots.end()) {
        it->second.count += weight;
        return;
    }
    if (slots.size() < capacity_) {
        slots.emplace(key, Slot{weight, 0});
        return;
    }
    // Space-saving eviction: the new key replaces the smallest
    // slot and inherits its count as an overcount bound.
    auto victim = slots.begin();
    for (auto candidate = slots.begin(); candidate != slots.end();
         ++candidate) {
        if (candidate->second.count < victim->second.count) {
            victim = candidate;
        }
    }
    const u64 floor = victim->second.count;
    slots.erase(victim);
    slots.emplace(key, Slot{floor + weight, floor});
}

std::vector<TopKCounter::Item>
TopKCounter::items() const
{
    std::vector<Item> result;
    result.reserve(slots.size());
    for (const auto &[key, slot] : slots) {
        result.push_back({key, slot.count, slot.overcount});
    }
    std::sort(result.begin(), result.end(),
              [](const Item &a, const Item &b) {
                  return a.count != b.count ? a.count > b.count
                                            : a.key < b.key;
              });
    return result;
}

void
TopKCounter::reset()
{
    slots.clear();
    total = 0;
}

} // namespace bpred
