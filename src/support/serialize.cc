#include "support/serialize.hh"

#include <istream>
#include <ostream>

#include "support/logging.hh"

namespace bpred
{

void
putU8(std::ostream &os, u8 value)
{
    os.put(static_cast<char>(value));
}

u8
getU8(std::istream &is)
{
    const int byte = is.get();
    if (byte == std::char_traits<char>::eof()) {
        fatal("serialize: truncated stream");
    }
    return static_cast<u8>(byte);
}

void
putU16(std::ostream &os, u16 value)
{
    char bytes[2];
    bytes[0] = static_cast<char>(value & 0xff);
    bytes[1] = static_cast<char>((value >> 8) & 0xff);
    os.write(bytes, sizeof(bytes));
}

u16
getU16(std::istream &is)
{
    char bytes[2];
    is.read(bytes, sizeof(bytes));
    if (!is) {
        fatal("serialize: truncated stream");
    }
    return static_cast<u16>(
        static_cast<u16>(static_cast<u8>(bytes[0])) |
        (static_cast<u16>(static_cast<u8>(bytes[1])) << 8));
}

void
putU64(std::ostream &os, u64 value)
{
    char bytes[8];
    for (unsigned i = 0; i < 8; ++i) {
        bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
    os.write(bytes, sizeof(bytes));
}

u64
getU64(std::istream &is)
{
    char bytes[8];
    is.read(bytes, sizeof(bytes));
    if (!is) {
        fatal("serialize: truncated stream");
    }
    u64 value = 0;
    for (unsigned i = 0; i < 8; ++i) {
        value |= static_cast<u64>(static_cast<u8>(bytes[i])) << (8 * i);
    }
    return value;
}

void
putBytes(std::ostream &os, const void *data, std::size_t size)
{
    os.write(static_cast<const char *>(data),
             static_cast<std::streamsize>(size));
}

void
getBytes(std::istream &is, void *data, std::size_t size)
{
    is.read(static_cast<char *>(data),
            static_cast<std::streamsize>(size));
    if (!is) {
        fatal("serialize: truncated stream");
    }
}

void
putString(std::ostream &os, const std::string &value)
{
    putU64(os, value.size());
    putBytes(os, value.data(), value.size());
}

std::string
getString(std::istream &is, std::size_t max_length)
{
    const u64 length = getU64(is);
    if (length > max_length) {
        fatal("serialize: unreasonable string length");
    }
    std::string value(static_cast<std::size_t>(length), '\0');
    if (length > 0) {
        getBytes(is, value.data(),
                 static_cast<std::size_t>(length));
    }
    return value;
}

} // namespace bpred
