/**
 * @file
 * Checked-build invariant macros and strong index types.
 *
 * The paper's results depend on bit-exact counter and index
 * behaviour, so the hot paths carry machine-checkable invariants:
 * every table access in range, every skewing-hash output within its
 * bank, every history width representable, every snapshot frame
 * read exactly. Those checks must cost nothing in release builds —
 * the fused predict/update path is the throughput product — so they
 * compile away unless the tree is configured with
 * `-DBPRED_CHECKED=ON` (which defines the BPRED_CHECKED macro).
 *
 * - BP_CHECK(cond, message): active in checked builds; violation is
 *   an internal bug and panics with file/line and the condition
 *   text. In unchecked builds the condition is syntactically
 *   validated (inside sizeof) but never evaluated, so checks cannot
 *   bit-rot and cannot cost cycles.
 * - BP_DCHECK(cond, message): as BP_CHECK but also compiled out in
 *   checked builds that define NDEBUG — for per-prediction checks
 *   too hot even for routine checked runs.
 *
 * The strong types (BankIndex, HistWidth) validate at construction
 * and convert implicitly to their raw representation, so they can
 * sit in existing signatures without touching call sites; in
 * unchecked builds they are single-word wrappers the optimizer
 * erases.
 *
 * fatal() remains the tool for *user* errors (bad specs, corrupt
 * traces): those must be reported in every build, never gated here.
 */

#pragma once

#include "support/types.hh"

namespace bpred
{

/**
 * Report a BP_CHECK violation and abort (via panic()). Out of line
 * so the macro expansion stays a single compare-and-branch.
 */
[[noreturn]] void checkFailed(const char *file, int line,
                              const char *condition,
                              const char *message);

} // namespace bpred

#if BPRED_CHECKED
#define BP_CHECK(cond, message)                                       \
    ((cond) ? static_cast<void>(0)                                    \
            : ::bpred::checkFailed(__FILE__, __LINE__, #cond,         \
                                   message))
#else
// Unevaluated: keeps the condition compiling (and its operands
// "used" for -Wunused purposes) at zero runtime cost.
#define BP_CHECK(cond, message)                                       \
    static_cast<void>(sizeof(static_cast<bool>(cond)))
#endif

#if BPRED_CHECKED && !defined(NDEBUG)
#define BP_DCHECK(cond, message) BP_CHECK(cond, message)
#else
#define BP_DCHECK(cond, message)                                      \
    static_cast<void>(sizeof(static_cast<bool>(cond)))
#endif

namespace bpred
{

/**
 * A table/bank index validated against its table size at
 * construction. Implicitly converts to u64, so functions can return
 * BankIndex while callers keep treating the result as a raw index.
 */
class BankIndex
{
  public:
    /**
     * @param value The index.
     * @param size Number of entries in the table it indexes; the
     *        checked build panics unless value < size.
     */
    constexpr BankIndex(u64 value, u64 size) : value_(value)
    {
        BP_CHECK(value < size, "table index out of range");
        static_cast<void>(size);
    }

    /** The raw index. */
    constexpr u64 get() const { return value_; }

    /** Implicit conversion keeps existing call sites unchanged. */
    constexpr operator u64() const { return value_; }

  private:
    u64 value_;
};

/**
 * A history-register width in bits, validated to fit the 64-bit
 * GlobalHistory register. Implicitly constructible from unsigned so
 * existing `unsigned history_bits` call sites pick up validation
 * without a signature migration.
 */
class HistWidth
{
  public:
    constexpr HistWidth(unsigned bits) : bits_(bits)
    {
        BP_CHECK(bits <= 64, "history width exceeds 64 bits");
    }

    /** The width in bits. */
    constexpr unsigned get() const { return bits_; }

    /** Implicit conversion keeps existing call sites unchanged. */
    constexpr operator unsigned() const { return bits_; }

  private:
    unsigned bits_;
};

} // namespace bpred
