/**
 * @file
 * A minimal JSON document builder.
 *
 * Telemetry (stat registries, simulation results, bench tables) is
 * serialized through this one module so every machine-readable
 * artifact the project emits has identical formatting: ordered
 * object keys, shortest round-trippable doubles, and NaN/Inf mapped
 * to null (JSON has no literals for them). No parser — the project
 * only ever writes JSON.
 */

#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "support/types.hh"

namespace bpred
{

/**
 * A JSON document node: null, bool, integer, double, string, array
 * or object. Objects preserve insertion order so emitted documents
 * are deterministic and diffable run-to-run.
 */
class JsonValue
{
  public:
    /** Constructs null. */
    JsonValue() = default;

    JsonValue(bool boolean) : store(boolean) {}
    JsonValue(int number) : store(static_cast<i64>(number)) {}
    JsonValue(unsigned number) : store(static_cast<u64>(number)) {}
    JsonValue(i64 number) : store(number) {}
    JsonValue(u64 number) : store(number) {}
    JsonValue(double number) : store(number) {}
    JsonValue(const char *text) : store(std::string(text)) {}
    JsonValue(std::string text) : store(std::move(text)) {}

    /** An empty JSON object. */
    static JsonValue object();

    /** An empty JSON array. */
    static JsonValue array();

    bool isNull() const;
    bool isObject() const;
    bool isArray() const;

    /**
     * Member access on an object: returns the value under @p key,
     * inserting a null member if absent. A null node silently
     * becomes an object; any other kind panics (internal misuse).
     */
    JsonValue &operator[](const std::string &key);

    /** Member lookup on an object; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Element lookup on an array; nullptr when out of range. */
    const JsonValue *at(std::size_t index) const;

    /**
     * Array append. A null node silently becomes an array; any
     * other kind panics.
     */
    void push(JsonValue element);

    /** Number of members (object) or elements (array), else 0. */
    std::size_t size() const;

    /**
     * Render to @p os. @p indent is the number of spaces per
     * nesting level; 0 renders compact (no whitespace at all).
     */
    void write(std::ostream &os, int indent = 0) const;

    /** write() into a string. */
    std::string dump(int indent = 0) const;

  private:
    using Array = std::vector<JsonValue>;
    using Object = std::vector<std::pair<std::string, JsonValue>>;

    void writeAtDepth(std::ostream &os, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, i64, u64, double,
                 std::string, Array, Object> store = nullptr;
};

/** Escape @p text for inclusion in a double-quoted JSON string. */
std::string jsonEscape(const std::string &text);

/**
 * Format @p value with the fewest digits that parse back exactly;
 * NaN and infinities render as "null".
 */
std::string jsonFormatDouble(double value);

} // namespace bpred

