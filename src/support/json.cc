#include "support/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/logging.hh"

namespace bpred
{

JsonValue
JsonValue::object()
{
    JsonValue value;
    value.store = Object{};
    return value;
}

JsonValue
JsonValue::array()
{
    JsonValue value;
    value.store = Array{};
    return value;
}

bool
JsonValue::isNull() const
{
    return std::holds_alternative<std::nullptr_t>(store);
}

bool
JsonValue::isObject() const
{
    return std::holds_alternative<Object>(store);
}

bool
JsonValue::isArray() const
{
    return std::holds_alternative<Array>(store);
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    if (isNull()) {
        store = Object{};
    }
    if (!isObject()) {
        panic("JsonValue: member access on a non-object");
    }
    auto &members = std::get<Object>(store);
    for (auto &[name, value] : members) {
        if (name == key) {
            return value;
        }
    }
    members.emplace_back(key, JsonValue());
    return members.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (!isObject()) {
        return nullptr;
    }
    for (const auto &[name, value] : std::get<Object>(store)) {
        if (name == key) {
            return &value;
        }
    }
    return nullptr;
}

const JsonValue *
JsonValue::at(std::size_t index) const
{
    if (!isArray()) {
        return nullptr;
    }
    const auto &elements = std::get<Array>(store);
    return index < elements.size() ? &elements[index] : nullptr;
}

void
JsonValue::push(JsonValue element)
{
    if (isNull()) {
        store = Array{};
    }
    if (!isArray()) {
        panic("JsonValue: push on a non-array");
    }
    std::get<Array>(store).push_back(std::move(element));
}

std::size_t
JsonValue::size() const
{
    if (isObject()) {
        return std::get<Object>(store).size();
    }
    if (isArray()) {
        return std::get<Array>(store).size();
    }
    return 0;
}

namespace
{

void
writeIndent(std::ostream &os, int indent, int depth)
{
    if (indent > 0) {
        os << '\n' << std::string(std::size_t(indent) * depth, ' ');
    }
}

} // namespace

void
JsonValue::writeAtDepth(std::ostream &os, int indent, int depth) const
{
    if (std::holds_alternative<std::nullptr_t>(store)) {
        os << "null";
    } else if (const auto *boolean = std::get_if<bool>(&store)) {
        os << (*boolean ? "true" : "false");
    } else if (const auto *signed_number = std::get_if<i64>(&store)) {
        os << *signed_number;
    } else if (const auto *unsigned_number = std::get_if<u64>(&store)) {
        os << *unsigned_number;
    } else if (const auto *real = std::get_if<double>(&store)) {
        os << jsonFormatDouble(*real);
    } else if (const auto *text = std::get_if<std::string>(&store)) {
        os << '"' << jsonEscape(*text) << '"';
    } else if (const auto *elements = std::get_if<Array>(&store)) {
        if (elements->empty()) {
            os << "[]";
            return;
        }
        os << '[';
        bool first = true;
        for (const JsonValue &element : *elements) {
            if (!first) {
                os << ',';
            }
            first = false;
            writeIndent(os, indent, depth + 1);
            element.writeAtDepth(os, indent, depth + 1);
        }
        writeIndent(os, indent, depth);
        os << ']';
    } else {
        const auto &members = std::get<Object>(store);
        if (members.empty()) {
            os << "{}";
            return;
        }
        os << '{';
        bool first = true;
        for (const auto &[name, value] : members) {
            if (!first) {
                os << ',';
            }
            first = false;
            writeIndent(os, indent, depth + 1);
            os << '"' << jsonEscape(name) << "\":";
            if (indent > 0) {
                os << ' ';
            }
            value.writeAtDepth(os, indent, depth + 1);
        }
        writeIndent(os, indent, depth);
        os << '}';
    }
}

void
JsonValue::write(std::ostream &os, int indent) const
{
    writeAtDepth(os, indent, 0);
}

std::string
JsonValue::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

std::string
jsonEscape(const std::string &text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            escaped += "\\\"";
            break;
          case '\\':
            escaped += "\\\\";
            break;
          case '\n':
            escaped += "\\n";
            break;
          case '\r':
            escaped += "\\r";
            break;
          case '\t':
            escaped += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                escaped += buffer;
            } else {
                escaped += c;
            }
        }
    }
    return escaped;
}

std::string
jsonFormatDouble(double value)
{
    if (!std::isfinite(value)) {
        return "null";
    }
    char buffer[40];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
        if (std::strtod(buffer, nullptr) == value) {
            break;
        }
    }
    return buffer;
}

} // namespace bpred
