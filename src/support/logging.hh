/**
 * @file
 * Minimal gem5-flavoured status/error reporting.
 *
 * fatal() is for user errors (bad configuration, malformed trace
 * files): it throws FatalError so library embedders can recover.
 * panic() is for internal invariant violations and aborts.
 */

#pragma once

#include <stdexcept>
#include <string>

namespace bpred
{

/** Exception thrown by fatal(): a user-correctable error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/** Report an unrecoverable user error by throwing FatalError. */
[[noreturn]] void fatal(const std::string &message);

/** Report an internal bug and abort. */
[[noreturn]] void panic(const std::string &message);

/** Print a warning to stderr (simulation continues). */
void warn(const std::string &message);

/** Print an informational message to stderr. */
void inform(const std::string &message);

/**
 * Suppress / restore warn() and inform() output (for tests).
 * Returns the previous quiet state so callers can restore it.
 */
bool setQuiet(bool quiet);

/**
 * RAII guard around setQuiet(): sets the quiet state for the
 * enclosing scope and restores the previous state on destruction,
 * so tests cannot leak quiet mode across cases.
 */
class QuietScope
{
  public:
    explicit QuietScope(bool quiet = true) : previous(setQuiet(quiet)) {}
    ~QuietScope() { setQuiet(previous); }

    QuietScope(const QuietScope &) = delete;
    QuietScope &operator=(const QuietScope &) = delete;

  private:
    bool previous;
};

} // namespace bpred

