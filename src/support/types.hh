/**
 * @file
 * Fixed-width integer aliases used throughout the library.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace bpred
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Branch (instruction) address. */
using Addr = u64;

/** Global-history register contents, youngest outcome in bit 0. */
using History = u64;

} // namespace bpred

