#include "support/sat_counter.hh"

#include <vector>

namespace bpred
{

SatCounterArray::SatCounterArray(u64 num_entries, unsigned width,
                                 u8 initial)
    : values(num_entries, initial),
      width_(static_cast<u8>(width)),
      maxCounterValue(static_cast<u8>(mask(width))),
      thresholdValue(static_cast<u8>(u8(1) << (width - 1)))
{
    assert(width >= 1 && width <= 8);
    assert(initial <= maxCounterValue);
}

void
SatCounterArray::reset(u8 initial)
{
    assert(initial <= maxCounterValue);
    std::fill(values.begin(), values.end(), initial);
}

} // namespace bpred
