#include "support/sat_counter.hh"

#include <vector>

#include "support/logging.hh"
#include "support/serialize.hh"

namespace bpred
{

SatCounterArray::SatCounterArray(u64 num_entries, unsigned width,
                                 u8 initial)
    : values(num_entries, initial),
      width_(static_cast<u8>(width)),
      maxCounterValue(static_cast<u8>(mask(width))),
      thresholdValue(static_cast<u8>(u8(1) << (width - 1)))
{
    BP_CHECK(width >= 1 && width <= 8,
             "counter width outside 1..8");
    BP_CHECK(initial <= maxCounterValue,
             "initial counter value exceeds its width");
}

void
SatCounterArray::reset(u8 initial)
{
    BP_CHECK(initial <= maxCounterValue,
             "reset counter value exceeds its width");
    std::fill(values.begin(), values.end(), initial);
}

void
SatCounterArray::saveState(std::ostream &os) const
{
    putU64(os, values.size());
    putU8(os, width_);
    putBytes(os, values.data(), values.size());
}

void
SatCounterArray::loadState(std::istream &is)
{
    const u64 stored_size = getU64(is);
    const u8 stored_width = getU8(is);
    if (stored_size != values.size() || stored_width != width_) {
        fatal("sat counter array: snapshot geometry mismatch");
    }
    getBytes(is, values.data(), values.size());
    for (const u8 value : values) {
        if (value > maxCounterValue) {
            fatal("sat counter array: snapshot counter out of range");
        }
    }
}

} // namespace bpred
