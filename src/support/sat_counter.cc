#include "support/sat_counter.hh"

#include <vector>

#include "support/logging.hh"
#include "support/serialize.hh"

namespace bpred
{

SatCounterArray::SatCounterArray(u64 num_entries, unsigned width,
                                 u8 initial)
    : values(num_entries, initial),
      width_(static_cast<u8>(width)),
      maxCounterValue(static_cast<u8>(mask(width))),
      thresholdValue(static_cast<u8>(u8(1) << (width - 1)))
{
    BP_CHECK(width >= 1 && width <= 8,
             "counter width outside 1..8");
    BP_CHECK(initial <= maxCounterValue,
             "initial counter value exceeds its width");
}

void
SatCounterArray::reset(u8 initial)
{
    BP_CHECK(initial <= maxCounterValue,
             "reset counter value exceeds its width");
    std::fill(values.begin(), values.end(), initial);
}

void
SatCounterArray::saveState(std::ostream &os) const
{
    putU64(os, values.size());
    putU8(os, width_);
    putBytes(os, values.data(), values.size());
}

void
SatCounterArray::loadState(std::istream &is)
{
    const u64 stored_size = getU64(is);
    const u8 stored_width = getU8(is);
    if (stored_size != values.size() || stored_width != width_) {
        fatal("sat counter array: snapshot geometry mismatch");
    }
    getBytes(is, values.data(), values.size());
    for (const u8 value : values) {
        if (value > maxCounterValue) {
            fatal("sat counter array: snapshot counter out of range");
        }
    }
}

SatCounterBankGroup::SatCounterBankGroup(unsigned num_banks,
                                         u64 entries_per_bank,
                                         unsigned width,
                                         BankLayout layout, u8 initial)
    : values(u64(num_banks) * entries_per_bank, initial),
      entriesPerBank_(entries_per_bank),
      numBanks_(num_banks),
      layout_(layout),
      width_(static_cast<u8>(width)),
      maxCounterValue(static_cast<u8>(mask(width))),
      thresholdValue(static_cast<u8>(u8(1) << (width - 1)))
{
    BP_CHECK(num_banks >= 1, "bank group needs at least one bank");
    BP_CHECK(width >= 1 && width <= 8,
             "counter width outside 1..8");
    BP_CHECK(initial <= maxCounterValue,
             "initial counter value exceeds its width");
}

SatCounterArray::View
SatCounterBankGroup::bankView(unsigned bank)
{
    BP_CHECK(bank < numBanks_, "bank view out of range");
    if (layout_ == BankLayout::Planar) {
        return {values.data() + u64(bank) * entriesPerBank_,
                maxCounterValue, thresholdValue, 1};
    }
    return {values.data() + bank, maxCounterValue, thresholdValue,
            numBanks_};
}

void
SatCounterBankGroup::set(unsigned bank, u64 index, u8 new_value)
{
    BP_CHECK(bank < numBanks_ && index < entriesPerBank_,
             "bank counter write out of range");
    BP_CHECK(new_value <= maxCounterValue,
             "counter value exceeds its width");
    values[offsetOf(bank, index)] = new_value;
}

void
SatCounterBankGroup::reset(u8 initial)
{
    BP_CHECK(initial <= maxCounterValue,
             "reset counter value exceeds its width");
    std::fill(values.begin(), values.end(), initial);
}

void
SatCounterBankGroup::saveBankState(unsigned bank,
                                   std::ostream &os) const
{
    BP_CHECK(bank < numBanks_, "bank save out of range");
    putU64(os, entriesPerBank_);
    putU8(os, width_);
    // Gather the (possibly strided) bank into the flat run of bytes
    // SatCounterArray::saveState() would have written.
    std::vector<u8> flat(entriesPerBank_);
    for (u64 index = 0; index < entriesPerBank_; ++index) {
        flat[index] = values[offsetOf(bank, index)];
    }
    putBytes(os, flat.data(), flat.size());
}

void
SatCounterBankGroup::loadBankState(unsigned bank, std::istream &is)
{
    BP_CHECK(bank < numBanks_, "bank load out of range");
    const u64 stored_size = getU64(is);
    const u8 stored_width = getU8(is);
    if (stored_size != entriesPerBank_ || stored_width != width_) {
        fatal("sat counter bank: snapshot geometry mismatch");
    }
    std::vector<u8> flat(entriesPerBank_);
    getBytes(is, flat.data(), flat.size());
    for (const u8 value : flat) {
        if (value > maxCounterValue) {
            fatal("sat counter bank: snapshot counter out of range");
        }
    }
    for (u64 index = 0; index < entriesPerBank_; ++index) {
        values[offsetOf(bank, index)] = flat[index];
    }
}

} // namespace bpred
