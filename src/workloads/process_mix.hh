/**
 * @file
 * Multi-process trace composition: user program + kernel process
 * interleaved by a preemptive scheduler.
 */

#pragma once

#include "trace/trace.hh"
#include "workloads/params.hh"
#include "workloads/program.hh"

namespace bpred
{

/**
 * Generate a complete workload trace from @p params: build the user
 * program (and the kernel program when kernelShare > 0), then
 * interleave their execution with geometric scheduling quanta until
 * the dynamic conditional-branch target is reached.
 *
 * The IBS traces this substitutes for were captured on a live
 * machine including all kernel activity; interleaving a second
 * address space through the same (shared) global history register
 * reproduces the aliasing pressure and history pollution that made
 * those traces demanding.
 */
Trace generateWorkload(const WorkloadParams &params);

/**
 * Generate a trace by running a single already-built @p program for
 * @p conditional_target conditional branches (no kernel, no context
 * switches). Used by tests that need precise control of the
 * program.
 */
Trace runProgramToTrace(const Program &program, u64 seed,
                        u64 conditional_target,
                        const std::string &name = "single");

} // namespace bpred

