/**
 * @file
 * Tunable parameters of the synthetic workload generator.
 */

#pragma once

#include <string>

#include "support/types.hh"

namespace bpred
{

/**
 * Generation parameters for one synthetic process (one "program").
 *
 * The defaults describe a generic user program; the per-benchmark
 * presets in presets.hh override the knobs that differentiate the
 * IBS workloads (static branch count, bias mix, loop structure).
 */
struct ProgramParams
{
    /** RNG seed; everything downstream is deterministic in it. */
    u64 seed = 1;

    /** Approximate number of static conditional branch sites. */
    u32 staticBranchTarget = 5000;

    /** Code base address of the program (processes get disjoint). */
    Addr addressBase = 0x0040'0000;

    /**
     * Fractions of branch sites by behaviour; they are applied in
     * the order loop, biased, correlated, with pattern taking the
     * remainder. Values are clamped to a valid simplex.
     */
    double loopFraction = 0.18;
    double biasedFraction = 0.55;
    double correlatedFraction = 0.12;

    /** Mean loop trip count (per-site means scatter around this). */
    double meanLoopTrips = 8.0;

    /** Fraction of loops with a deterministic trip count. */
    double fixedLoopFraction = 0.95;

    /**
     * Mean probability of the dominant direction for biased sites
     * (per-site biases scatter toward 1.0 from here).
     */
    double biasStrength = 0.985;

    /** Flip probability for correlated sites' ideal outcome. */
    double correlationNoise = 0.08;

    /** Farthest global-history bit a correlated site may read. */
    unsigned maxCorrelationSpan = 10;

    /** Probability a generated statement is a procedure call. */
    double callDensity = 0.05;

    /** Probability a generated statement is an unconditional jump. */
    double jumpDensity = 0.10;

    /** Maximum If/Loop nesting depth inside a procedure. */
    unsigned maxNestingDepth = 4;

    /** Approximate branch sites per procedure. */
    unsigned sitesPerProcedure = 28;
};

/**
 * Parameters of a full workload: a user program plus an optional
 * interleaved kernel process, and a dynamic-length target.
 */
struct WorkloadParams
{
    /** Benchmark name (becomes the trace name). */
    std::string name = "synthetic";

    /** Master seed (program seeds derive from it). */
    u64 seed = 1;

    /** Conditional branches to emit in total. */
    u64 dynamicConditionalTarget = 2'000'000;

    /** The user process. */
    ProgramParams user;

    /**
     * Fraction of dynamic conditional branches contributed by the
     * kernel process; 0 disables the kernel entirely.
     */
    double kernelShare = 0.20;

    /** The kernel process (used when kernelShare > 0). */
    ProgramParams kernel;

    /** Mean conditional branches per user scheduling quantum. */
    u64 userQuantumMean = 40'000;
};

} // namespace bpred

