#include "workloads/program_builder.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace bpred
{

ProgramBuilder::ProgramBuilder(const ProgramParams &p)
    : params(p),
      rng(p.seed),
      addrCursor(p.addressBase),
      remainingSites(std::max<u32>(p.staticBranchTarget, 8)),
      numProcedures(0)
{
    if (params.sitesPerProcedure == 0) {
        fatal("ProgramBuilder: sitesPerProcedure must be positive");
    }
}

Addr
ProgramBuilder::nextAddr()
{
    // Word-aligned addresses with small straight-line gaps, mimicking
    // compiled code layout.
    const Addr addr = addrCursor;
    addrCursor += 4 * (1 + rng.uniformInt(6));
    return addr;
}

u32
ProgramBuilder::newSite(SiteKind kind, unsigned depth)
{
    BranchSite site;
    site.kind = kind;
    site.addr = nextAddr();

    switch (kind) {
      case SiteKind::Biased: {
        // Bias strength scatters from biasStrength toward 1.0; the
        // dominant direction is a fair coin so that two branches
        // aliased into one counter disagree about as often as they
        // agree -- the regime in which aliasing is destructive, as
        // in real traces (loops already skew the stream taken).
        const double strength = params.biasStrength +
            (1.0 - params.biasStrength) * rng.uniformReal();
        const bool dominant_taken = rng.chance(0.5);
        site.takenProbability =
            dominant_taken ? strength : 1.0 - strength;
        break;
      }
      case SiteKind::Loop: {
        // Per-site mean trips scatter log-uniformly around the
        // configured mean, and shrink with nesting depth so nested
        // loop nests do not multiply into runaway iteration counts
        // that would starve the rest of the program of execution
        // time (and the trace of site coverage).
        const double log_mean = std::log2(
            std::max(2.0, params.meanLoopTrips));
        const double site_log = 1.0 + rng.uniformReal() * log_mean;
        const double depth_scale = std::exp2(
            2.0 * static_cast<double>(depth > 1 ? depth - 1 : 0));
        site.meanTrips = std::clamp(
            std::exp2(site_log) / depth_scale,
            depth > 1 ? 2.0 : 16.0, depth > 1 ? 16.0 : 64.0);
        site.fixedTrips = rng.chance(params.fixedLoopFraction);
        site.exitTaken = rng.chance(0.5);
        break;
      }
      case SiteKind::Correlated: {
        const unsigned span = static_cast<unsigned>(
            rng.uniformRange(2, std::max(2u, params.maxCorrelationSpan)));
        // The farthest bit is always at span-1, so a site's history
        // requirement is exactly its span: predictors with history
        // length >= span can capture it, shorter ones cannot. This
        // is what makes Table 2's history-length sensitivity (and
        // Figures 7/12's sweet spots) reproducible.
        History mask = History(1) << (span - 1);
        const unsigned extra_bits =
            static_cast<unsigned>(rng.uniformRange(0, 2));
        for (unsigned i = 0; i < extra_bits; ++i) {
            mask |= History(1) << rng.uniformInt(span);
        }
        site.historyMask = mask;
        site.invert = rng.chance(0.5);
        site.noise = params.correlationNoise *
            (0.5 + rng.uniformReal());
        break;
      }
      case SiteKind::Pattern: {
        // Loop-like patterns: taken in every slot but one. A random
        // bit soup would be ~50% unpredictable whenever the pattern
        // phase is not visible in the history; real repeating
        // branches are mostly-one-direction with a periodic
        // exception.
        site.patternLength =
            static_cast<u8>(rng.uniformRange(4, 8));
        site.patternBits = static_cast<u16>(
            mask(site.patternLength) &
            ~(u64(1) << rng.uniformInt(site.patternLength)));
        if (rng.chance(0.5)) {
            // Opposite polarity: mostly not-taken with one taken.
            site.patternBits = static_cast<u16>(
                ~site.patternBits & mask(site.patternLength));
        }
        break;
      }
    }

    program.sites.push_back(site);
    if (remainingSites > 0) {
        --remainingSites;
    }
    return static_cast<u32>(program.sites.size() - 1);
}

SiteKind
ProgramBuilder::drawIfSiteKind()
{
    // Normalize the non-loop fractions (loops are drawn separately
    // as loop statements).
    const double biased = std::max(0.0, params.biasedFraction);
    const double correlated = std::max(0.0, params.correlatedFraction);
    const double pattern = std::max(
        0.0, 1.0 - params.loopFraction - biased - correlated);
    const double total = biased + correlated + pattern;
    if (total <= 0.0) {
        return SiteKind::Biased;
    }
    const double draw = rng.uniformReal() * total;
    if (draw < biased) {
        return SiteKind::Biased;
    }
    if (draw < biased + correlated) {
        return SiteKind::Correlated;
    }
    return SiteKind::Pattern;
}

Statement
ProgramBuilder::makeCall(u32 proc_index)
{
    Statement stmt;
    stmt.kind = StatementKind::Call;
    stmt.callee = static_cast<u32>(
        rng.uniformRange(proc_index + 1, numProcedures - 1));
    stmt.branchAddr = nextAddr();
    stmt.returnAddr = nextAddr();
    return stmt;
}

StmtBlock
ProgramBuilder::buildBlock(unsigned depth, u32 proc_index,
                           u32 &proc_budget)
{
    StmtBlock block;
    const u64 length = rng.uniformRange(1, depth > 1 ? 3 : 5);
    for (u64 i = 0; i < length; ++i) {
        if (proc_budget == 0 || remainingSites == 0) {
            break;
        }
        const double draw = rng.uniformReal();
        // Calls only at a procedure's top level: a call nested in a
        // loop multiplies the whole callee subtree by the trip
        // count, and transitive chains turn that into an emission
        // explosion that concentrates execution in a handful of
        // procedures. Top-level-only keeps the dispatch rate high
        // and site coverage realistic.
        const bool can_call =
            depth == 1 && proc_index + 1 < numProcedures;
        if (draw < params.callDensity && can_call) {
            block.push_back(makeCall(proc_index));
            continue;
        }
        if (draw < params.callDensity + params.jumpDensity) {
            Statement stmt;
            stmt.kind = StatementKind::Jump;
            stmt.branchAddr = nextAddr();
            block.push_back(stmt);
            continue;
        }

        // Loops become rarer with depth for the same reason trips
        // shrink: nests multiply.
        const bool nested = depth < params.maxNestingDepth;
        if (nested &&
            rng.chance(params.loopFraction /
                       static_cast<double>(depth))) {
            Statement stmt;
            stmt.kind = StatementKind::Loop;
            stmt.site = newSite(SiteKind::Loop, depth);
            --proc_budget;
            stmt.body = buildBlock(depth + 1, proc_index, proc_budget);
            block.push_back(std::move(stmt));
        } else {
            Statement stmt;
            stmt.kind = StatementKind::If;
            stmt.site = newSite(drawIfSiteKind(), depth);
            --proc_budget;
            if (nested && rng.chance(0.55)) {
                stmt.thenBlock =
                    buildBlock(depth + 1, proc_index, proc_budget);
            }
            if (nested && rng.chance(0.30)) {
                stmt.elseBlock =
                    buildBlock(depth + 1, proc_index, proc_budget);
            }
            block.push_back(std::move(stmt));
        }
    }
    return block;
}

void
ProgramBuilder::buildDispatcher()
{
    // Main guards a call to every procedure with a biased branch
    // whose popularity decays steeply with rank, then loops forever
    // (the interpreter restarts main when it returns). When a guard
    // fires, the procedure runs in a short *burst* (a fixed-trip
    // loop around the call): popular procedures keep their
    // predictor state resident while rarely-run code pays its
    // cold-start cost once per burst rather than once per visit.
    // This phase-like locality is what keeps the hot
    // (address, history) working set small relative to the static
    // set -- the property of the IBS traces that makes capacity
    // aliasing vanish in mid-sized tables (Figures 1-2) while
    // conflicts persist.
    Procedure &main = program.procedures[0];
    std::vector<u32> order;
    for (u32 proc = 1; proc < numProcedures; ++proc) {
        order.push_back(proc);
    }
    rng.shuffle(order);

    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        Statement guard;
        guard.kind = StatementKind::If;
        // Steep Zipf-like popularity; floor keeps every procedure
        // live so static branch counts match the presets.
        const double popularity = std::clamp(
            1.2 / std::pow(static_cast<double>(rank + 1), 0.8),
            0.015, 1.0);
        u32 site;
        if (popularity >= 0.12) {
            // Popular guards fire *periodically*, not at random:
            // real dispatch branches are heavily structured, and a
            // random guard soup would make main's global history a
            // fresh random string every pass, inflating the
            // substream working set far beyond what the IBS traces
            // show at long history lengths.
            site = newSite(SiteKind::Pattern, 1);
            BranchSite &guard_site = program.sites[site];
            guard_site.patternLength = 8;
            const unsigned ones = std::clamp<unsigned>(
                static_cast<unsigned>(
                    std::llround(popularity * 8.0)),
                1, 8);
            u16 bits = 0;
            for (unsigned i = 0; i < ones; ++i) {
                // Spread the taken slots evenly over the period.
                bits |= u16(1) << ((i * 8) / ones % 8);
            }
            guard_site.patternBits = bits;
        } else {
            site = newSite(SiteKind::Biased, 1);
            program.sites[site].takenProbability = popularity;
        }
        guard.site = site;

        Statement call;
        call.kind = StatementKind::Call;
        call.callee = order[rank];
        call.branchAddr = nextAddr();
        call.returnAddr = nextAddr();

        Statement burst;
        burst.kind = StatementKind::Loop;
        const u32 burst_site = newSite(SiteKind::Loop, 1);
        program.sites[burst_site].fixedTrips = true;
        program.sites[burst_site].meanTrips =
            static_cast<double>(rng.uniformRange(3, 8));
        burst.site = burst_site;
        burst.body.push_back(std::move(call));

        guard.thenBlock.push_back(std::move(burst));
        main.body.push_back(std::move(guard));
    }
}

Program
ProgramBuilder::build()
{
    assert(program.procedures.empty() && "build() is single-shot");

    numProcedures = 1 + std::max<u32>(
        1, remainingSites / std::max(1u, params.sitesPerProcedure));

    program.procedures.resize(numProcedures);
    for (u32 proc = 0; proc < numProcedures; ++proc) {
        program.procedures[proc].entryAddr = nextAddr();
    }

    // Main's dispatcher consumes one site per procedure.
    buildDispatcher();

    for (u32 proc = 1; proc < numProcedures; ++proc) {
        u32 proc_budget = params.sitesPerProcedure;
        Procedure &procedure = program.procedures[proc];
        while (proc_budget > 0 && remainingSites > 0) {
            StmtBlock chunk = buildBlock(1, proc, proc_budget);
            if (chunk.empty()) {
                break;
            }
            for (Statement &stmt : chunk) {
                procedure.body.push_back(std::move(stmt));
            }
        }
        if (procedure.body.empty()) {
            // Degenerate budget: give the procedure one biased
            // branch so calls to it still emit something.
            Statement stmt;
            stmt.kind = StatementKind::If;
            stmt.site = newSite(SiteKind::Biased, 1);
            procedure.body.push_back(std::move(stmt));
        }
    }

    if (program.sites.empty()) {
        fatal("ProgramBuilder: generated a program with no branch "
              "sites");
    }
    return std::move(program);
}

Program
buildProgram(const ProgramParams &params)
{
    return ProgramBuilder(params).build();
}

} // namespace bpred
