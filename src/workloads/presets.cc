#include "workloads/presets.hh"

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "support/logging.hh"
#include "trace/trace_io.hh"
#include "workloads/process_mix.hh"

namespace bpred
{

namespace
{

/** Library default dynamic length at scale 1.0. */
constexpr u64 baseDynamicTarget = 2'000'000;

WorkloadParams
basePreset()
{
    WorkloadParams params;
    params.dynamicConditionalTarget = baseDynamicTarget;
    params.kernelShare = 0.20;
    params.userQuantumMean = 40'000;

    params.user.addressBase = 0x0040'0000;
    params.kernel.addressBase = 0x8000'0000;
    params.kernel.staticBranchTarget = 1400;
    params.kernel.biasedFraction = 0.68;
    params.kernel.loopFraction = 0.15;
    params.kernel.correlatedFraction = 0.10;
    params.kernel.biasStrength = 0.985;
    params.kernel.meanLoopTrips = 5.0;
    return params;
}

} // namespace

const std::vector<std::string> &
ibsBenchmarkNames()
{
    static const std::vector<std::string> names = {
        "groff", "gs", "mpeg_play", "nroff", "real_gcc", "verilog",
    };
    return names;
}

const std::vector<std::string> &
ibsAllBenchmarkNames()
{
    // The paper also simulated sdet and video_play but omitted
    // them from its tables and figures.
    static const std::vector<std::string> names = {
        "groff",    "gs",      "mpeg_play", "nroff",
        "real_gcc", "verilog", "sdet",      "video_play",
    };
    return names;
}

WorkloadParams
ibsPreset(const std::string &name, double scale)
{
    WorkloadParams params = basePreset();
    params.name = name;

    if (name == "groff") {
        // Text formatter: mid-size code, regular loops, moderately
        // predictable (Table 2: 3.77% @ h4/2bit).
        params.seed = 0x67726f66; // "grof"
        params.user.staticBranchTarget = 5634;
        params.user.loopFraction = 0.18;
        params.user.biasedFraction = 0.62;
        params.user.correlatedFraction = 0.12;
        params.user.correlationNoise = 0.015;
        params.user.meanLoopTrips = 9.0;
        params.user.maxCorrelationSpan = 10;
    } else if (name == "gs") {
        // Ghostscript: large interpreter, more static branches,
        // harder to predict (5.28%).
        params.seed = 0x6773'0001;
        params.user.staticBranchTarget = 10935;
        params.user.loopFraction = 0.16;
        params.user.biasedFraction = 0.62;
        params.user.correlatedFraction = 0.14;
        params.user.correlationNoise = 0.025;
        params.user.meanLoopTrips = 6.0;
        params.user.maxCorrelationSpan = 10;
        params.user.sitesPerProcedure = 32;
    } else if (name == "mpeg_play") {
        // Video decoder: data-dependent branches dominate — the
        // least predictable workload (7.24%).
        params.seed = 0x6d706567; // "mpeg"
        params.user.staticBranchTarget = 4752;
        params.user.loopFraction = 0.17;
        params.user.biasedFraction = 0.53;
        params.user.correlatedFraction = 0.22;
        params.user.correlationNoise = 0.05;
        params.user.biasStrength = 0.96;
        params.user.meanLoopTrips = 7.0;
        params.user.maxCorrelationSpan = 11;
    } else if (name == "nroff") {
        // Simple text processor: tight loops, very predictable
        // (3.72% / 2.20%).
        params.seed = 0x6e726f66; // "nrof"
        params.user.staticBranchTarget = 4480;
        params.user.loopFraction = 0.20;
        params.user.biasedFraction = 0.65;
        params.user.correlatedFraction = 0.09;
        params.user.correlationNoise = 0.008;
        params.user.biasStrength = 0.985;
        params.user.meanLoopTrips = 12.0;
        params.user.maxCorrelationSpan = 9;
    } else if (name == "real_gcc") {
        // Compiler: by far the largest static working set, diverse
        // contexts (substream ratio 12.9 @ h12), hard to predict
        // (7.16%).
        params.seed = 0x67636300; // "gcc"
        params.user.staticBranchTarget = 16716;
        params.user.loopFraction = 0.15;
        params.user.biasedFraction = 0.59;
        params.user.correlatedFraction = 0.18;
        params.user.correlationNoise = 0.035;
        params.user.biasStrength = 0.975;
        params.user.meanLoopTrips = 5.0;
        params.user.maxCorrelationSpan = 12;
        params.user.sitesPerProcedure = 26;
        params.user.callDensity = 0.07;
        params.kernelShare = 0.25;
    } else if (name == "verilog") {
        // Hardware simulator: small static set, event-loop
        // structure, middling predictability (4.57%).
        params.seed = 0x7665726c; // "verl"
        params.user.staticBranchTarget = 3918;
        params.user.loopFraction = 0.19;
        params.user.biasedFraction = 0.64;
        params.user.correlatedFraction = 0.12;
        params.user.correlationNoise = 0.018;
        params.user.meanLoopTrips = 8.0;
        params.user.maxCorrelationSpan = 10;
    } else if (name == "sdet") {
        // SPEC SDM-style multi-process system benchmark. The paper
        // simulated it but omitted it from the plots ("exhibited no
        // special behavior"); provided here for completeness.
        params.seed = 0x73646574; // "sdet"
        params.user.staticBranchTarget = 5200;
        params.user.loopFraction = 0.20;
        params.user.biasedFraction = 0.60;
        params.user.correlatedFraction = 0.12;
        params.user.correlationNoise = 0.03;
        params.user.meanLoopTrips = 7.0;
        params.user.maxCorrelationSpan = 10;
        params.kernelShare = 0.35; // OS-heavy by design
    } else if (name == "video_play") {
        // Video player: like mpeg_play with a lighter decoder.
        params.seed = 0x76696465; // "vide"
        params.user.staticBranchTarget = 4300;
        params.user.loopFraction = 0.18;
        params.user.biasedFraction = 0.56;
        params.user.correlatedFraction = 0.18;
        params.user.correlationNoise = 0.06;
        params.user.biasStrength = 0.94;
        params.user.meanLoopTrips = 8.0;
        params.user.maxCorrelationSpan = 10;
    } else {
        fatal("ibsPreset: unknown benchmark '" + name + "'");
    }

    if (scale <= 0.0) {
        fatal("ibsPreset: scale must be positive");
    }
    params.dynamicConditionalTarget = static_cast<u64>(
        static_cast<double>(baseDynamicTarget) * scale);
    if (params.dynamicConditionalTarget == 0) {
        params.dynamicConditionalTarget = 1;
    }
    return params;
}

Trace
makeIbsTrace(const std::string &name, double scale)
{
    return generateWorkload(ibsPreset(name, scale));
}

double
effectiveTraceScale(double requested)
{
    // Read once at startup; nothing in this process calls setenv.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *env = std::getenv("BPRED_TRACE_SCALE");
    if (env == nullptr || *env == '\0') {
        return requested;
    }
    try {
        const double parsed = std::stod(env);
        if (parsed > 0.0) {
            return parsed;
        }
    } catch (const std::exception &) {
        // fall through to the warning
    }
    warn("ignoring invalid BPRED_TRACE_SCALE value");
    return requested;
}

std::vector<Trace>
ibsSuite(double scale)
{
    const double effective = effectiveTraceScale(scale);
    // Read once at startup; nothing in this process calls setenv.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *cache_env = std::getenv("BPRED_TRACE_CACHE");
    const std::string cache_dir =
        cache_env == nullptr ? "" : cache_env;

    std::vector<Trace> suite;
    suite.reserve(ibsBenchmarkNames().size());
    for (const std::string &name : ibsBenchmarkNames()) {
        std::string cache_path;
        if (!cache_dir.empty()) {
            std::ostringstream path;
            path << cache_dir << "/" << name << "-x" << effective
                 << ".bpt";
            cache_path = path.str();
            if (std::filesystem::exists(cache_path)) {
                suite.push_back(loadBinaryTrace(cache_path));
                continue;
            }
        }
        Trace trace = makeIbsTrace(name, effective);
        if (!cache_path.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(cache_dir, ec);
            saveBinaryTrace(cache_path, trace);
        }
        suite.push_back(std::move(trace));
    }
    return suite;
}

} // namespace bpred
