#include "workloads/interpreter.hh"

#include <cassert>
#include <cmath>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace bpred
{

Interpreter::Interpreter(const Program &prog, u64 seed)
    : program(prog),
      rng(seed),
      patternPhase(prog.sites.size(), 0)
{
    if (program.procedures.empty() || program.sites.empty()) {
        fatal("Interpreter: empty program");
    }
}

bool
Interpreter::resolveSite(u32 site_index, const StreamContext &context)
{
    assert(site_index < program.sites.size());
    const BranchSite &site = program.sites[site_index];

    switch (site.kind) {
      case SiteKind::Biased:
        return rng.chance(site.takenProbability);

      case SiteKind::Correlated: {
        const History history = context.globalHistory().raw();
        bool outcome =
            (popCount(history & site.historyMask) & 1) != 0;
        if (site.invert) {
            outcome = !outcome;
        }
        if (rng.chance(site.noise)) {
            outcome = !outcome;
        }
        return outcome;
      }

      case SiteKind::Pattern: {
        u16 &phase = patternPhase[site_index];
        const bool outcome = bit(site.patternBits, phase);
        phase = static_cast<u16>((phase + 1) % site.patternLength);
        return outcome;
      }

      case SiteKind::Loop:
        // Loop sites are resolved by the trip-count machinery, not
        // here.
        panic("resolveSite called on a loop site");
    }
    panic("resolveSite: bad site kind");
}

u64
Interpreter::drawTrips(const BranchSite &site)
{
    assert(site.kind == SiteKind::Loop);
    if (site.fixedTrips) {
        return std::max<u64>(
            1, static_cast<u64>(std::llround(site.meanTrips)));
    }
    // 1 + Geometric(1/mean) has mean ~= meanTrips.
    const double p = 1.0 / std::max(1.0, site.meanTrips);
    return 1 + rng.geometric(p);
}

void
Interpreter::pushBlock(const StmtBlock *block)
{
    Frame frame;
    frame.kind = Frame::Kind::Block;
    frame.block = block;
    frame.next = 0;
    stack.push_back(frame);
}

u64
Interpreter::run(StreamContext &context, u64 quantum)
{
    u64 emitted = 0;
    // Safety valve: a synthetic program must emit a conditional
    // branch at least once per this many dispatch steps, or
    // something is structurally wrong with it.
    u64 steps_since_conditional = 0;
    constexpr u64 maxBarrenSteps = 1u << 22;

    while (emitted < quantum) {
        if (++steps_since_conditional > maxBarrenSteps) {
            panic("Interpreter: program emits no conditional "
                  "branches");
        }

        if (stack.empty()) {
            pushBlock(&program.procedures[0].body);
            continue;
        }

        const std::size_t top = stack.size() - 1;
        switch (stack[top].kind) {
          case Frame::Kind::Block: {
            if (stack[top].next >= stack[top].block->size()) {
                stack.pop_back();
                break;
            }
            const Statement &stmt =
                (*stack[top].block)[stack[top].next++];

            switch (stmt.kind) {
              case StatementKind::If: {
                const bool taken = resolveSite(stmt.site, context);
                context.emitConditional(
                    program.sites[stmt.site].addr, taken);
                ++emitted;
                steps_since_conditional = 0;
                const StmtBlock &chosen =
                    taken ? stmt.thenBlock : stmt.elseBlock;
                if (!chosen.empty()) {
                    pushBlock(&chosen);
                }
                break;
              }
              case StatementKind::Loop: {
                Frame frame;
                frame.kind = Frame::Kind::Loop;
                frame.loopStmt = &stmt;
                frame.remainingTrips =
                    drawTrips(program.sites[stmt.site]);
                stack.push_back(frame);
                if (!stmt.body.empty()) {
                    pushBlock(&stmt.body);
                }
                break;
              }
              case StatementKind::Call: {
                context.emitUnconditional(stmt.branchAddr);
                Frame frame;
                frame.kind = Frame::Kind::Call;
                frame.returnAddr = stmt.returnAddr;
                stack.push_back(frame);
                pushBlock(&program.procedures[stmt.callee].body);
                break;
              }
              case StatementKind::Jump:
                context.emitUnconditional(stmt.branchAddr);
                break;
            }
            break;
          }

          case Frame::Kind::Loop: {
            // One body iteration just finished (or the body was
            // empty): emit the bottom-test branch.
            assert(stack[top].remainingTrips >= 1);
            --stack[top].remainingTrips;
            const bool more = stack[top].remainingTrips > 0;
            const Statement *loop_stmt = stack[top].loopStmt;
            const BranchSite &loop_site =
                program.sites[loop_stmt->site];
            context.emitConditional(
                loop_site.addr,
                loop_site.exitTaken ? !more : more);
            ++emitted;
            steps_since_conditional = 0;
            if (more) {
                if (!loop_stmt->body.empty()) {
                    pushBlock(&loop_stmt->body);
                }
            } else {
                stack.pop_back();
            }
            break;
          }

          case Frame::Kind::Call:
            context.emitUnconditional(stack[top].returnAddr);
            stack.pop_back();
            break;
        }
    }
    return emitted;
}

} // namespace bpred
