/**
 * @file
 * On-the-fly synthetic workload generation as a TraceSource.
 */

#pragma once

#include <string>

#include "support/rng.hh"
#include "trace/stream.hh"
#include "trace/trace.hh"
#include "workloads/interpreter.hh"
#include "workloads/params.hh"
#include "workloads/program.hh"

namespace bpred
{

/**
 * Streams the exact record sequence generateWorkload() would
 * materialize, one scheduler quantum at a time, so arbitrarily long
 * synthetic workloads can be simulated in bounded memory.
 *
 * generateWorkload() is itself implemented by draining this source,
 * so the two can never diverge.
 */
class WorkloadStream : public TraceSource
{
  public:
    /**
     * @param params Workload recipe; programs are built eagerly,
     *        records are generated lazily.
     * @throws FatalError on a zero conditional-branch target.
     */
    explicit WorkloadStream(const WorkloadParams &params);

    const std::string &name() const override { return name_; }
    std::size_t pull(BranchRecord *out, std::size_t max) override;

    /** Conditional branches generated so far. */
    u64 conditionalsEmitted() const { return context.conditionals(); }

  private:
    void refill();

    std::string name_;
    u64 target;
    bool withKernel;
    Rng schedulerRng;
    Program userProgram;
    Program kernelProgram;
    Trace buffer;
    StreamContext context;
    Interpreter user;
    Interpreter kernel;
    u64 userMean = 1;
    u64 kernelMean = 0;
    std::size_t served = 0;
};

} // namespace bpred

