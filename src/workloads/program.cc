#include "workloads/program.hh"

#include <algorithm>

namespace bpred
{

namespace
{

void
analyzeBlock(const StmtBlock &block, u64 depth, ProgramShape &shape)
{
    shape.maxDepth = std::max(shape.maxDepth, depth);
    for (const Statement &stmt : block) {
        switch (stmt.kind) {
          case StatementKind::If:
            ++shape.ifCount;
            analyzeBlock(stmt.thenBlock, depth + 1, shape);
            analyzeBlock(stmt.elseBlock, depth + 1, shape);
            break;
          case StatementKind::Loop:
            ++shape.loopCount;
            analyzeBlock(stmt.body, depth + 1, shape);
            break;
          case StatementKind::Call:
            ++shape.callCount;
            break;
          case StatementKind::Jump:
            ++shape.jumpCount;
            break;
        }
    }
}

} // namespace

ProgramShape
analyzeProgram(const Program &program)
{
    ProgramShape shape;
    for (const Procedure &procedure : program.procedures) {
        analyzeBlock(procedure.body, 1, shape);
    }
    return shape;
}

} // namespace bpred
