/**
 * @file
 * Resumable execution of synthetic programs.
 */

#pragma once

#include <vector>

#include "predictors/history.hh"
#include "support/rng.hh"
#include "trace/trace.hh"
#include "workloads/program.hh"

namespace bpred
{

/**
 * The shared stream the interleaved processes emit into: the trace
 * under construction plus the machine-level global history that
 * history-correlated branch sites read. The history is shared
 * across processes on purpose — it models the single hardware
 * history register that makes OS/multiprogramming interference
 * visible to global-history predictors.
 */
class StreamContext
{
  public:
    explicit StreamContext(Trace &sink) : trace(sink) {}

    /** Append a conditional branch and advance the history. */
    void
    emitConditional(Addr pc, bool taken)
    {
        trace.appendConditional(pc, taken);
        history.shiftIn(taken);
        ++conditionalCount;
    }

    /** Append an unconditional branch (enters history as taken). */
    void
    emitUnconditional(Addr pc)
    {
        trace.appendUnconditional(pc);
        history.shiftIn(true);
    }

    /** The machine global history as of the last emitted branch. */
    const GlobalHistory &globalHistory() const { return history; }

    /** Conditional branches emitted so far. */
    u64 conditionals() const { return conditionalCount; }

  private:
    Trace &trace;
    GlobalHistory history;
    u64 conditionalCount = 0;
};

/**
 * Executes a Program statement by statement, emitting its branches
 * into a StreamContext. Execution state lives in an explicit frame
 * stack so a run can be paused after any branch — the process-mix
 * scheduler context-switches between interpreters mid-procedure,
 * exactly like a preemptive OS.
 *
 * When main returns, it is restarted, so a program runs forever.
 */
class Interpreter
{
  public:
    /**
     * @param program The program to execute (not owned; must
     *        outlive the interpreter).
     * @param seed Seed for this process's private outcome RNG.
     */
    Interpreter(const Program &program, u64 seed);

    /**
     * Execute until @p quantum more conditional branches have been
     * emitted, then pause (resumable).
     *
     * @return Conditional branches actually emitted (== quantum).
     */
    u64 run(StreamContext &context, u64 quantum);

    /** Current call/loop/block nesting depth (for tests). */
    std::size_t stackDepth() const { return stack.size(); }

  private:
    struct Frame
    {
        enum class Kind : u8 { Block, Loop, Call };

        Kind kind;
        const StmtBlock *block = nullptr; // Block
        std::size_t next = 0;             // Block
        const Statement *loopStmt = nullptr; // Loop
        u64 remainingTrips = 0;           // Loop
        Addr returnAddr = 0;              // Call
    };

    bool resolveSite(u32 site_index, const StreamContext &context);
    u64 drawTrips(const BranchSite &site);
    void pushBlock(const StmtBlock *block);

    const Program &program;
    Rng rng;
    std::vector<Frame> stack;
    std::vector<u16> patternPhase;
};

} // namespace bpred

