/**
 * @file
 * Random generation of synthetic programs.
 */

#pragma once

#include "support/rng.hh"
#include "workloads/params.hh"
#include "workloads/program.hh"

namespace bpred
{

/**
 * Builds a random Program from ProgramParams.
 *
 * Structure: procedure 0 ("main") is a dispatcher that guards a
 * call to every other procedure with a biased branch whose taken
 * probability follows a Zipf-like popularity, so site execution
 * frequencies are skewed the way real programs' are and every
 * procedure stays reachable. Other procedures are random nests of
 * loops, conditionals, calls (to higher-numbered procedures only,
 * keeping the call graph acyclic) and jumps, drawn according to the
 * parameter mix. All randomness comes from the seed in the params.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(const ProgramParams &params);

    /** Generate the program (callable once per builder). */
    Program build();

  private:
    u32 newSite(SiteKind kind, unsigned depth);
    SiteKind drawIfSiteKind();
    Addr nextAddr();
    StmtBlock buildBlock(unsigned depth, u32 proc_index,
                         u32 &proc_budget);
    Statement makeCall(u32 proc_index);
    void buildDispatcher();

    ProgramParams params;
    Rng rng;
    Program program;
    Addr addrCursor;
    u32 remainingSites;
    u32 numProcedures;
};

/** Convenience: build a program directly from @p params. */
Program buildProgram(const ProgramParams &params);

} // namespace bpred

