#include "workloads/stream_source.hh"

#include <algorithm>

#include "support/logging.hh"
#include "workloads/program_builder.hh"

namespace bpred
{

namespace
{

Program
buildUserProgram(const WorkloadParams &params)
{
    ProgramParams user_params = params.user;
    user_params.seed = params.seed * 2654435761ULL + 1;
    return buildProgram(user_params);
}

Program
buildKernelProgram(const WorkloadParams &params)
{
    ProgramParams kernel_params = params.kernel;
    kernel_params.seed = params.seed * 0x9e3779b9ULL + 7;
    return buildProgram(kernel_params);
}

} // namespace

WorkloadStream::WorkloadStream(const WorkloadParams &params)
    : name_(params.name),
      target(params.dynamicConditionalTarget),
      withKernel(params.kernelShare > 0.0),
      schedulerRng(params.seed ^ 0x5ced'01e5'0000'0001ULL),
      userProgram(buildUserProgram(params)),
      kernelProgram(withKernel ? buildKernelProgram(params)
                               : Program{}),
      buffer(params.name),
      context(buffer),
      user(userProgram, params.seed + 11),
      kernel(withKernel ? kernelProgram : userProgram,
             params.seed + 23)
{
    if (target == 0) {
        fatal("WorkloadStream: zero-length trace requested");
    }

    const double share = std::clamp(params.kernelShare, 0.0, 0.9);
    // Cap the quantum so short (scaled-down) traces still
    // interleave: a full-length quantum would otherwise let the
    // user process exhaust the whole trace before the kernel ever
    // ran.
    userMean = std::clamp<u64>(params.userQuantumMean, 1,
                               std::max<u64>(1, target / 10));
    kernelMean = withKernel
        ? std::max<u64>(1, static_cast<u64>(
              static_cast<double>(userMean) * share / (1.0 - share)))
        : 0;
}

void
WorkloadStream::refill()
{
    buffer.clear();
    served = 0;
    if (context.conditionals() >= target) {
        return;
    }

    const u64 remaining = target - context.conditionals();
    u64 quantum = 1 + schedulerRng.geometric(
        1.0 / static_cast<double>(userMean));
    user.run(context, std::min(quantum, remaining));

    if (withKernel && context.conditionals() < target) {
        const u64 kernel_remaining = target - context.conditionals();
        quantum = 1 + schedulerRng.geometric(
            1.0 / static_cast<double>(kernelMean));
        kernel.run(context, std::min(quantum, kernel_remaining));
    }
}

std::size_t
WorkloadStream::pull(BranchRecord *out, std::size_t max)
{
    std::size_t produced = 0;
    while (produced < max) {
        if (served == buffer.size()) {
            refill();
            if (buffer.empty()) {
                break; // target reached; stream exhausted
            }
        }
        const std::size_t n =
            std::min(max - produced, buffer.size() - served);
        const BranchRecord *begin = buffer.records().data() + served;
        std::copy(begin, begin + n, out + produced);
        served += n;
        produced += n;
    }
    return produced;
}

} // namespace bpred
