/**
 * @file
 * The synthetic program representation: a control-flow structure
 * whose execution emits a branch trace.
 */

#pragma once

#include <vector>

#include "workloads/branch_site.hh"

namespace bpred
{

struct Statement;

/** A straight-line sequence of statements. */
using StmtBlock = std::vector<Statement>;

/** What a statement does when executed. */
enum class StatementKind : u8
{
    /** Conditional branch: execute thenBlock or elseBlock. */
    If,

    /** Bottom-tested loop around body (trip count from the site). */
    Loop,

    /** Call a procedure (emits unconditional call + return). */
    Call,

    /** An unconditional jump (emits one unconditional record). */
    Jump,
};

/**
 * One statement of a synthetic program. A tagged struct rather
 * than a variant keeps the interpreter's dispatch trivial.
 */
struct Statement
{
    StatementKind kind = StatementKind::Jump;

    /** If/Loop: index into Program::sites. */
    u32 site = 0;

    /** Call: index of the callee procedure. */
    u32 callee = 0;

    /** Call/Jump: address of the unconditional branch instruction. */
    Addr branchAddr = 0;

    /** Call: address of the matching return branch. */
    Addr returnAddr = 0;

    StmtBlock thenBlock;
    StmtBlock elseBlock;
    StmtBlock body;
};

/** A procedure: an entry address and a body. */
struct Procedure
{
    Addr entryAddr = 0;
    StmtBlock body;
};

/**
 * A complete synthetic program. Procedure 0 is "main"; the call
 * graph is acyclic (a procedure only calls higher-numbered ones),
 * so call depth is bounded by the procedure count.
 */
struct Program
{
    std::vector<Procedure> procedures;
    std::vector<BranchSite> sites;

    /** Number of static conditional branch sites. */
    u64 numSites() const { return sites.size(); }
};

/** Count the statements of every kind in @p program (for tests). */
struct ProgramShape
{
    u64 ifCount = 0;
    u64 loopCount = 0;
    u64 callCount = 0;
    u64 jumpCount = 0;
    u64 maxDepth = 0;
};

/** Walk @p program and summarize its static shape. */
ProgramShape analyzeProgram(const Program &program);

} // namespace bpred

