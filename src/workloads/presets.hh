/**
 * @file
 * IBS-Ultrix-like benchmark presets.
 *
 * The paper's evaluation runs on six IBS-Ultrix traces captured
 * with a hardware monitor (user + kernel activity of groff, gs,
 * mpeg_play, nroff, real_gcc and verilog). Those traces are not
 * redistributable, so each preset here configures the synthetic
 * generator to match the trace-level characteristics the paper
 * reports: the static conditional branch counts of Table 1, and a
 * behaviour mix tuned so baseline misprediction rates and substream
 * ratios land in the neighbourhood of Table 2. See DESIGN.md §2
 * for the substitution argument.
 */

#pragma once

#include <string>
#include <vector>

#include "trace/trace.hh"
#include "workloads/params.hh"

namespace bpred
{

/** The six benchmark names, in the paper's order. */
const std::vector<std::string> &ibsBenchmarkNames();

/**
 * All eight IBS workloads, including sdet and video_play, which
 * the paper simulated but omitted from its tables and figures.
 */
const std::vector<std::string> &ibsAllBenchmarkNames();

/**
 * The workload parameters for IBS-like benchmark @p name.
 *
 * @param scale Multiplies the dynamic conditional-branch target
 *        (1.0 = the library default of 2M branches).
 * @throws FatalError for an unknown name.
 */
WorkloadParams ibsPreset(const std::string &name, double scale = 1.0);

/** Generate the trace for IBS-like benchmark @p name. */
Trace makeIbsTrace(const std::string &name, double scale = 1.0);

/**
 * Generate all six benchmark traces (the standard suite every
 * bench binary iterates over).
 *
 * Honours two environment variables:
 *  - BPRED_TRACE_SCALE: overrides @p scale when set (a float).
 *  - BPRED_TRACE_CACHE: a directory; traces are loaded from it
 *    when present and saved into it after generation, keyed by
 *    name and scale.
 */
std::vector<Trace> ibsSuite(double scale = 1.0);

/** The scale in effect after applying BPRED_TRACE_SCALE. */
double effectiveTraceScale(double requested);

} // namespace bpred

