#include "workloads/process_mix.hh"

#include <vector>

#include "workloads/interpreter.hh"
#include "workloads/stream_source.hh"

namespace bpred
{

Trace
generateWorkload(const WorkloadParams &params)
{
    // One generator, two consumption modes: the batch trace is just
    // the drained WorkloadStream, so it is byte-identical to what a
    // streaming session sees.
    WorkloadStream stream(params);

    Trace trace(params.name);
    // Pre-reserve from the scaled conditional target: records are
    // appended one at a time, and unconditional branches (jumps,
    // calls, returns) ride along at well under half the conditional
    // rate for every preset, so +50% covers the mix without a
    // regrowth copy of a multi-million-record vector.
    trace.reserve(params.dynamicConditionalTarget +
                  params.dynamicConditionalTarget / 2);

    std::vector<BranchRecord> chunk(65536);
    while (const std::size_t n = stream.pull(chunk.data(),
                                             chunk.size())) {
        for (std::size_t i = 0; i < n; ++i) {
            trace.append(chunk[i]);
        }
    }
    trace.shrinkToFit();
    return trace;
}

Trace
runProgramToTrace(const Program &program, u64 seed,
                  u64 conditional_target, const std::string &name)
{
    Trace trace(name);
    trace.reserve(conditional_target + conditional_target / 2);
    StreamContext context(trace);
    Interpreter interpreter(program, seed);
    interpreter.run(context, conditional_target);
    trace.shrinkToFit();
    return trace;
}

} // namespace bpred
