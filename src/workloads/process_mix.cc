#include "workloads/process_mix.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/interpreter.hh"
#include "workloads/program_builder.hh"

namespace bpred
{

Trace
generateWorkload(const WorkloadParams &params)
{
    if (params.dynamicConditionalTarget == 0) {
        fatal("generateWorkload: zero-length trace requested");
    }

    Rng scheduler_rng(params.seed ^ 0x5ced'01e5'0000'0001ULL);

    ProgramParams user_params = params.user;
    user_params.seed = params.seed * 2654435761ULL + 1;
    const Program user_program = buildProgram(user_params);

    const bool with_kernel = params.kernelShare > 0.0;
    Program kernel_program;
    if (with_kernel) {
        ProgramParams kernel_params = params.kernel;
        kernel_params.seed = params.seed * 0x9e3779b9ULL + 7;
        kernel_program = buildProgram(kernel_params);
    }

    Trace trace(params.name);
    // Pre-reserve from the scaled conditional target: records are
    // appended one at a time, and unconditional branches (jumps,
    // calls, returns) ride along at well under half the conditional
    // rate for every preset, so +50% covers the mix without a
    // regrowth copy of a multi-million-record vector.
    trace.reserve(params.dynamicConditionalTarget +
                  params.dynamicConditionalTarget / 2);
    StreamContext context(trace);

    Interpreter user(user_program, params.seed + 11);
    Interpreter kernel_interp(
        with_kernel ? kernel_program : user_program, params.seed + 23);

    const double share =
        std::clamp(params.kernelShare, 0.0, 0.9);
    // Cap the quantum so short (scaled-down) traces still
    // interleave: a full-length quantum would otherwise let the
    // user process exhaust the whole trace before the kernel ever
    // ran.
    const u64 user_mean = std::clamp<u64>(
        params.userQuantumMean, 1,
        std::max<u64>(1, params.dynamicConditionalTarget / 10));
    const u64 kernel_mean = with_kernel
        ? std::max<u64>(1, static_cast<u64>(
              static_cast<double>(user_mean) * share / (1.0 - share)))
        : 0;

    const u64 target = params.dynamicConditionalTarget;
    while (context.conditionals() < target) {
        const u64 remaining = target - context.conditionals();
        u64 quantum = 1 + scheduler_rng.geometric(
            1.0 / static_cast<double>(user_mean));
        user.run(context, std::min(quantum, remaining));

        if (with_kernel && context.conditionals() < target) {
            const u64 kernel_remaining =
                target - context.conditionals();
            quantum = 1 + scheduler_rng.geometric(
                1.0 / static_cast<double>(kernel_mean));
            kernel_interp.run(context,
                              std::min(quantum, kernel_remaining));
        }
    }
    trace.shrinkToFit();
    return trace;
}

Trace
runProgramToTrace(const Program &program, u64 seed,
                  u64 conditional_target, const std::string &name)
{
    Trace trace(name);
    trace.reserve(conditional_target + conditional_target / 2);
    StreamContext context(trace);
    Interpreter interpreter(program, seed);
    interpreter.run(context, conditional_target);
    trace.shrinkToFit();
    return trace;
}

} // namespace bpred
