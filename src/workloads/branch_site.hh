/**
 * @file
 * Static branch-site behaviour models for synthetic workloads.
 */

#pragma once

#include "support/types.hh"

namespace bpred
{

/**
 * The behaviour class of a synthetic branch site. The mix of these
 * classes is what gives a synthetic trace the same predictability
 * structure as the paper's IBS traces: strongly biased branches,
 * loop-exit branches, branches correlated with recent global
 * outcomes, and short repeating local patterns.
 */
enum class SiteKind : u8
{
    /** Bernoulli with a per-site (usually strong) taken bias. */
    Biased,

    /**
     * Loop bottom-test: taken while iterations remain. Trip counts
     * are drawn per activation (fixed or geometric around a mean).
     */
    Loop,

    /**
     * Direction is a (noisy) boolean function of selected recent
     * global-history bits — the behaviour that makes long global
     * histories intrinsically more predictive (Table 2).
     */
    Correlated,

    /** Short repeating taken/not-taken pattern (period 2..16). */
    Pattern,
};

/**
 * A static conditional branch site: its address and the parameters
 * of its behaviour model. Runtime state (pattern phase) lives in
 * the interpreter so the Program stays immutable and shareable.
 */
struct BranchSite
{
    SiteKind kind = SiteKind::Biased;

    /** Branch instruction address (word-aligned). */
    Addr addr = 0;

    /** Biased: probability of being taken. */
    double takenProbability = 0.5;

    /** Loop: mean trip count (>= 1). */
    double meanTrips = 4.0;

    /** Loop: when true the trip count is always exactly meanTrips. */
    bool fixedTrips = false;

    /**
     * Loop: polarity. false = "taken means continue" (classic
     * backward branch), true = "taken means exit" (forward exit
     * test). Both occur in compiled code; mixing them keeps the
     * substream bias density b near 1/2, where aliasing is most
     * destructive.
     */
    bool exitTaken = false;

    /** Correlated: which global-history bits feed the function. */
    History historyMask = 0;

    /** Correlated: invert the parity function. */
    bool invert = false;

    /** Correlated: probability the ideal outcome is flipped. */
    double noise = 0.0;

    /** Pattern: the repeating outcome bits (bit 0 first). */
    u16 patternBits = 0;

    /** Pattern: period in [2, 16]. */
    u8 patternLength = 2;
};

} // namespace bpred

