/**
 * @file
 * Last-use-distance profiling: the bridge between a concrete trace
 * and the analytical model of §5.2.
 *
 * The model's only trace-dependent input is the distribution of D,
 * the LRU stack distance of (address, history) pairs. Profiling D
 * directly explains *why* a given table size behaves as it does:
 * the mass below ~N/10 is where gskewed wins; the mass above N is
 * capacity aliasing no associativity can remove.
 */

#pragma once

#include "support/stats.hh"
#include "trace/trace.hh"

namespace bpred
{

/** The distance profile of one trace at one history length. */
struct DistanceProfile
{
    /** Histogram of finite last-use distances. */
    Histogram distances;

    /** First-time references (infinite distance). */
    u64 compulsory = 0;

    /** Dynamic conditional branches profiled. */
    u64 dynamicBranches = 0;

    /** Fraction of references with finite D <= @p bound. */
    double fractionWithin(u64 bound) const;

    /**
     * The model's expected per-bank aliasing probability for an
     * @p entries-entry bank: E[1 - (1 - 1/N)^D], with compulsory
     * references contributing probability 1.
     */
    double expectedAliasingProbability(u64 entries) const;
};

/**
 * Profile the last-use distances of (address, history) pairs over
 * @p trace at @p history_bits of global history.
 */
DistanceProfile profileDistances(const Trace &trace,
                                 unsigned history_bits);

} // namespace bpred

