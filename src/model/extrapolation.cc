#include "model/extrapolation.hh"

#include <unordered_map>

#include "aliasing/stack_distance.hh"
#include "model/formulas.hh"
#include "predictors/history.hh"
#include "predictors/info_vector.hh"
#include "predictors/unaliased.hh"

namespace bpred
{

TraceModelInputs
measureModelInputs(const Trace &trace, unsigned history_bits)
{
    // Per-substream taken/total counts for the bias density, and an
    // unaliased 1-bit predictor for the baseline rate, in one pass.
    struct PairCounts
    {
        u64 taken = 0;
        u64 total = 0;
    };
    std::unordered_map<u64, PairCounts> pairs;
    UnaliasedPredictor unaliased(history_bits, 1);
    GlobalHistory history;
    u64 dynamic_branches = 0;

    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            history.shiftIn(true);
            unaliased.notifyUnconditional(record.pc);
            continue;
        }
        ++dynamic_branches;
        const u64 key =
            packInfoVector(record.pc, history.raw(), history_bits);
        PairCounts &counts = pairs[key];
        ++counts.total;
        if (record.taken) {
            ++counts.taken;
        }
        unaliased.predict(record.pc);
        unaliased.update(record.pc, record.taken);
        history.shiftIn(record.taken);
    }

    u64 biased_taken = 0;
    for (const auto &[key, counts] : pairs) {
        (void)key;
        if (2 * counts.taken >= counts.total) {
            ++biased_taken;
        }
    }

    TraceModelInputs inputs;
    inputs.biasTaken = pairs.empty()
        ? 0.5
        : static_cast<double>(biased_taken) /
            static_cast<double>(pairs.size());
    inputs.unaliasedMispredict = unaliased.mispredictionRatio();
    inputs.numSubstreams = pairs.size();
    inputs.dynamicBranches = dynamic_branches;
    return inputs;
}

ExtrapolationResult
extrapolateMispredictions(const Trace &trace, unsigned history_bits,
                          u64 bank_entries, u64 dm_entries,
                          const TraceModelInputs &inputs)
{
    StackDistanceTracker distances;
    GlobalHistory history;
    const double b = inputs.biasTaken;

    double skew_overhead = 0.0;
    double dm_overhead = 0.0;
    double p_sum = 0.0;
    u64 dynamic_branches = 0;

    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            history.shiftIn(true);
            continue;
        }
        ++dynamic_branches;
        const u64 key =
            packInfoVector(record.pc, history.raw(), history_bits);
        const u64 distance = distances.reference(key);

        const double p_bank = aliasingProbability(bank_entries, distance);
        const double p_dm = aliasingProbability(dm_entries, distance);
        skew_overhead += destructiveProbabilitySkewed3(p_bank, b);
        dm_overhead += destructiveProbabilityDirectMapped(p_dm, b);
        p_sum += p_bank;

        history.shiftIn(record.taken);
    }

    ExtrapolationResult result;
    result.inputs = inputs;
    if (dynamic_branches > 0) {
        const double n = static_cast<double>(dynamic_branches);
        result.skewedExtrapolated =
            skew_overhead / n + inputs.unaliasedMispredict;
        result.directMappedExtrapolated =
            dm_overhead / n + inputs.unaliasedMispredict;
        result.meanBankAliasingProbability = p_sum / n;
    }
    return result;
}

} // namespace bpred
