/**
 * @file
 * Closed-form expressions of the paper's analytical model (§5.2).
 */

#pragma once

#include "support/types.hh"

namespace bpred
{

/**
 * Formula (1): the probability that a reference with last-use
 * distance @p distance finds its entry aliased in an
 * @p num_entries-entry table under a well-distributing hash:
 * p = 1 - (1 - 1/N)^D.
 *
 * A first-time reference (infinite distance, represented by
 * StackDistanceTracker::infiniteDistance) yields probability 1.
 */
double aliasingProbability(u64 num_entries, u64 distance);

/** Formula (2): the large-N approximation p = 1 - exp(-D/N). */
double aliasingProbabilityApprox(u64 num_entries, u64 distance);

/**
 * Formula (4): probability that a direct-mapped 1-bank, 1-bit
 * predictor's prediction differs from the unaliased prediction,
 * given per-bank aliasing probability @p p and taken-bias density
 * @p b: Pdm = 2 b (1-b) p.
 */
double destructiveProbabilityDirectMapped(double p, double b);

/**
 * Formula (3): probability that the 3-bank skewed predictor's
 * majority vote differs from the unaliased prediction (1-bit
 * counters, total update), given per-bank aliasing probability
 * @p p and taken-bias density @p b.
 */
double destructiveProbabilitySkewed3(double p, double b);

/**
 * Generalization of formula (3) to an arbitrary odd @p num_banks
 * under the same assumptions: each aliased bank holds an
 * independent substream's prediction (taken with probability
 * @p b); un-aliased banks vote with the unaliased prediction; the
 * result is the probability the majority differs from the
 * unaliased prediction. Matches destructiveProbabilitySkewed3 for
 * num_banks == 3 and destructiveProbabilityDirectMapped for
 * num_banks == 1.
 */
double destructiveProbabilitySkewed(unsigned num_banks, double p,
                                    double b);

/**
 * The paper's D-threshold observation: for a 3 x (N/3)-entry
 * gskewed against an N-entry direct-mapped table, Psk < Pdm roughly
 * when D < N/10. This helper returns the crossover distance D* at
 * which the two destructive probabilities are equal, found by
 * bisection (b = 0.5 worst case by default).
 */
u64 skewedCrossoverDistance(u64 dm_entries, double b = 0.5);

} // namespace bpred

