#include "model/distance_profile.hh"

#include "aliasing/stack_distance.hh"
#include "model/formulas.hh"
#include "predictors/history.hh"
#include "predictors/info_vector.hh"

namespace bpred
{

double
DistanceProfile::fractionWithin(u64 bound) const
{
    if (dynamicBranches == 0) {
        return 0.0;
    }
    u64 within = 0;
    for (const auto &[distance, count] : distances.sorted()) {
        if (distance > bound) {
            break;
        }
        within += count;
    }
    return static_cast<double>(within) /
        static_cast<double>(dynamicBranches);
}

double
DistanceProfile::expectedAliasingProbability(u64 entries) const
{
    if (dynamicBranches == 0) {
        return 0.0;
    }
    double expectation = static_cast<double>(compulsory);
    for (const auto &[distance, count] : distances.sorted()) {
        expectation += aliasingProbability(entries, distance) *
            static_cast<double>(count);
    }
    return expectation / static_cast<double>(dynamicBranches);
}

DistanceProfile
profileDistances(const Trace &trace, unsigned history_bits)
{
    DistanceProfile profile;
    StackDistanceTracker tracker;
    GlobalHistory history;

    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            history.shiftIn(true);
            continue;
        }
        ++profile.dynamicBranches;
        const u64 key =
            packInfoVector(record.pc, history.raw(), history_bits);
        const u64 distance = tracker.reference(key);
        if (distance == StackDistanceTracker::infiniteDistance) {
            ++profile.compulsory;
        } else {
            profile.distances.sample(distance);
        }
        history.shiftIn(record.taken);
    }
    return profile;
}

} // namespace bpred
