/**
 * @file
 * Trace-driven extrapolation of the analytical model (Figure 11).
 */

#pragma once

#include "trace/trace.hh"

namespace bpred
{

/**
 * Trace-wide inputs the model needs: the taken-bias density b and
 * the unaliased misprediction rate that the aliasing overhead is
 * added onto.
 */
struct TraceModelInputs
{
    /**
     * Density of static (address, history) pairs whose majority
     * direction is taken — the paper's measurement of b.
     */
    double biasTaken = 0.5;

    /**
     * Unaliased 1-bit misprediction ratio (first encounters
     * excluded), as in Table 2.
     */
    double unaliasedMispredict = 0.0;

    /** Distinct (address, history) pairs in the trace. */
    u64 numSubstreams = 0;

    /** Dynamic conditional branches. */
    u64 dynamicBranches = 0;
};

/**
 * Measure the model inputs for @p trace at @p history_bits, exactly
 * as the paper does: b from the density of static pairs biased
 * taken over the whole trace; the unaliased rate from a 1-bit
 * infinite predictor.
 */
TraceModelInputs measureModelInputs(const Trace &trace,
                                    unsigned history_bits);

/** The extrapolated misprediction rates of Figure 11. */
struct ExtrapolationResult
{
    /** Model-predicted misprediction ratio for 3-bank gskewed. */
    double skewedExtrapolated = 0.0;

    /** Model-predicted misprediction ratio for 1-bank gshare. */
    double directMappedExtrapolated = 0.0;

    /** Mean per-bank aliasing probability over the trace (gskewed). */
    double meanBankAliasingProbability = 0.0;

    /** The inputs the extrapolation used. */
    TraceModelInputs inputs;
};

/**
 * Apply formulas (1), (3) and (4) reference-by-reference over
 * @p trace: for each dynamic conditional branch, measure the
 * last-use distance D of its (address, history) pair, convert to a
 * per-bank aliasing probability, and accumulate the expected
 * destructive-aliasing overhead. First encounters use p = 1. The
 * unaliased misprediction rate is added at the end, per the paper.
 *
 * @param trace The branch trace.
 * @param history_bits Global-history length k.
 * @param bank_entries Entries per gskewed bank (N for 3 banks).
 * @param dm_entries Entries of the 1-bank comparison table.
 * @param inputs Pre-measured model inputs (from
 *        measureModelInputs, or synthetic values in tests).
 */
ExtrapolationResult
extrapolateMispredictions(const Trace &trace, unsigned history_bits,
                          u64 bank_entries, u64 dm_entries,
                          const TraceModelInputs &inputs);

} // namespace bpred

