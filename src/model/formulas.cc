#include "model/formulas.hh"

#include <cassert>
#include <cmath>

#include "aliasing/stack_distance.hh"
#include "support/logging.hh"

namespace bpred
{

double
aliasingProbability(u64 num_entries, u64 distance)
{
    assert(num_entries > 0);
    if (distance == StackDistanceTracker::infiniteDistance) {
        return 1.0;
    }
    if (num_entries == 1) {
        return distance == 0 ? 0.0 : 1.0;
    }
    const double keep = 1.0 - 1.0 / static_cast<double>(num_entries);
    return 1.0 - std::pow(keep, static_cast<double>(distance));
}

double
aliasingProbabilityApprox(u64 num_entries, u64 distance)
{
    assert(num_entries > 0);
    if (distance == StackDistanceTracker::infiniteDistance) {
        return 1.0;
    }
    return 1.0 - std::exp(-static_cast<double>(distance) /
                          static_cast<double>(num_entries));
}

double
destructiveProbabilityDirectMapped(double p, double b)
{
    assert(p >= 0.0 && p <= 1.0 && b >= 0.0 && b <= 1.0);
    return 2.0 * b * (1.0 - b) * p;
}

double
destructiveProbabilitySkewed3(double p, double b)
{
    assert(p >= 0.0 && p <= 1.0 && b >= 0.0 && b <= 1.0);
    const double q = 1.0 - b;
    // Case 3: aliased in exactly two banks; both differ.
    const double two_banks = 3.0 * p * p * (1.0 - p) * b * q;
    // Case 4: aliased in all three banks; at least two differ.
    const double three_banks =
        p * p * p *
        (b * (3.0 * b * q * q + q * q * q) +
         q * (3.0 * q * b * b + b * b * b));
    return two_banks + three_banks;
}

namespace
{

/** C(n, k) for tiny n. */
double
binomial(unsigned n, unsigned k)
{
    double result = 1.0;
    for (unsigned i = 0; i < k; ++i) {
        result *= static_cast<double>(n - i) /
            static_cast<double>(i + 1);
    }
    return result;
}

} // namespace

double
destructiveProbabilitySkewed(unsigned num_banks, double p, double b)
{
    if (num_banks == 0 || num_banks % 2 == 0) {
        fatal("destructiveProbabilitySkewed: bank count must be odd");
    }
    assert(p >= 0.0 && p <= 1.0 && b >= 0.0 && b <= 1.0);

    const unsigned m = num_banks;
    const unsigned need = m / 2 + 1; // votes needed for the majority
    double total = 0.0;

    // Condition on the unaliased direction: taken w.p. b. Given the
    // direction, each aliased bank agrees with it w.p. `agree`
    // (an independent substream votes taken w.p. b).
    for (int direction = 0; direction < 2; ++direction) {
        const double dir_prob = direction == 0 ? b : 1.0 - b;
        const double agree = direction == 0 ? b : 1.0 - b;

        for (unsigned aliased = 0; aliased <= m; ++aliased) {
            const double aliased_prob = binomial(m, aliased) *
                std::pow(p, aliased) *
                std::pow(1.0 - p, m - aliased);
            const unsigned loyal = m - aliased; // vote the direction

            // Majority differs iff votes for the direction < need.
            // Votes for the direction = loyal + (aliased agreeing).
            double differ = 0.0;
            for (unsigned agreeing = 0; agreeing <= aliased;
                 ++agreeing) {
                if (loyal + agreeing >= need) {
                    continue;
                }
                differ += binomial(aliased, agreeing) *
                    std::pow(agree, agreeing) *
                    std::pow(1.0 - agree, aliased - agreeing);
            }
            total += dir_prob * aliased_prob * differ;
        }
    }
    return total;
}

u64
skewedCrossoverDistance(u64 dm_entries, double b)
{
    assert(dm_entries >= 3);
    const u64 bank_entries = dm_entries / 3;

    auto difference = [&](u64 d) {
        const double p_bank = aliasingProbability(bank_entries, d);
        const double p_dm = aliasingProbability(dm_entries, d);
        return destructiveProbabilitySkewed3(p_bank, b) -
            destructiveProbabilityDirectMapped(p_dm, b);
    };

    // Psk < Pdm for small D; find the first D where Psk >= Pdm.
    u64 lo = 1;
    u64 hi = dm_entries * 4;
    if (difference(hi) < 0.0) {
        return hi; // no crossover in range (degenerate small tables)
    }
    while (lo + 1 < hi) {
        const u64 mid = lo + (hi - lo) / 2;
        if (difference(mid) < 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return hi;
}

} // namespace bpred
