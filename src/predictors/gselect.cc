#include "predictors/gselect.hh"

#include "predictors/block_kernel.hh"
#include "predictors/block_kernel_simd.hh"
#include "predictors/info_vector.hh"
#include "predictors/replay_scratch.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace bpred
{

namespace
{

/**
 * gselect hot state lifted into locals (see block_kernel.hh);
 * mirrors GShareBlockState with the concatenating index function.
 */
struct GSelectBlockState
{
    SatCounterArray::View table;
    GlobalHistory history;
    unsigned historyBits;
    unsigned indexBits;
    GlobalHistory *historyOut;

    bool
    step(Addr pc, bool taken)
    {
        const u64 index =
            gselectIndex(pc, history.raw(), historyBits, indexBits);
        const bool prediction = table.predictTaken(index);
        table.update(index, taken);
        history.shiftIn(taken);
        return prediction;
    }

    void unconditional(Addr) { history.shiftIn(true); }
    void commit() { *historyOut = history; }
};

} // namespace

GSelectPredictor::GSelectPredictor(unsigned index_bits,
                                   unsigned history_bits,
                                   unsigned counter_bits)
    : table(u64(1) << index_bits, counter_bits),
      indexBits(index_bits),
      historyBits_(history_bits)
{
}

u64
GSelectPredictor::indexOf(Addr pc) const
{
    return gselectIndex(pc, history.raw(), historyBits_, indexBits);
}

bool
GSelectPredictor::predict(Addr pc)
{
    return table.predictTaken(indexOf(pc));
}

void
GSelectPredictor::update(Addr pc, bool taken)
{
    table.update(indexOf(pc), taken);
    history.shiftIn(taken);
}

Outcome
GSelectPredictor::predictAndUpdate(Addr pc, bool taken)
{
    const u64 index = indexOf(pc);
    const bool prediction = table.predictTaken(index);
    table.update(index, taken);
    history.shiftIn(taken);
    return {prediction};
}

void
GSelectPredictor::replayBlock(const BranchRecord *records,
                              std::size_t count,
                              ReplayCounters &counters,
                              ReplayScratch *scratch)
{
    if (probeSink) [[unlikely]] {
        // Scalar delegation keeps any future event stream identical.
        Predictor::replayBlock(records, count, counters);
        return;
    }
    if (scratch && simdIndexWidthOk(indexBits) &&
        resolveSimdMode(scratch->mode) == SimdMode::Avx2) {
        // Phase-split path (block_kernel_simd.hh); see gshare.cc for
        // why the speculative history advance is exact.
        const bool prefetch = simdWantsCounterPrefetch(table.size());
        const u64 history_out = replayTiled(
            records, count, history.raw(), *scratch, 1,
            [&](std::size_t conditionals) {
                fillGselectIndices(SimdMode::Avx2, scratch->pc.data(),
                                   scratch->history.data(),
                                   conditionals, historyBits_,
                                   indexBits,
                                   scratch->indices[0].data());
                resolveSingleTable(
                    table.view(), scratch->indices[0].data(),
                    scratch->taken.data(), conditionals, prefetch,
                    counters, [&](std::size_t j) {
                        return u64(gselectIndex(scratch->pc[j],
                                                scratch->history[j],
                                                historyBits_,
                                                indexBits));
                    });
            });
        history.set(history_out);
        return;
    }
    replayBlockWithState(
        GSelectBlockState{table.view(), history, historyBits_, indexBits,
                          &history},
        records, count, counters);
}

void
GSelectPredictor::notifyUnconditional(Addr)
{
    history.shiftIn(true);
}

std::string
GSelectPredictor::name() const
{
    return "gselect-" + formatEntries(table.size()) + "-h" +
        std::to_string(historyBits_);
}

void
GSelectPredictor::reset()
{
    table.reset();
    history.reset();
}

void
GSelectPredictor::saveState(std::ostream &os) const
{
    table.saveState(os);
    putU64(os, history.raw());
}

void
GSelectPredictor::loadState(std::istream &is)
{
    table.loadState(is);
    history.set(getU64(is));
}

} // namespace bpred
