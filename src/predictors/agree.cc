#include "predictors/agree.hh"

#include "predictors/info_vector.hh"
#include "support/logging.hh"
#include "support/probe.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace bpred
{

namespace
{
constexpr u8 biasUnset = 2;
} // namespace

AgreePredictor::AgreePredictor(unsigned index_bits,
                               unsigned history_bits,
                               unsigned bias_index_bits,
                               unsigned counter_bits)
    : agreeTable(u64(1) << index_bits, counter_bits,
                 // Initialize weakly "agree": cold branches follow
                 // their bias, the design's whole premise.
                 static_cast<u8>(u8(1) << (counter_bits - 1))),
      biasTable(u64(1) << bias_index_bits, biasUnset),
      indexBits(index_bits),
      historyBits(history_bits),
      biasIndexBits(bias_index_bits)
{
}

bool
AgreePredictor::biasOf(Addr pc) const
{
    const u8 bias = biasTable[addressIndex(pc, biasIndexBits)];
    // Unset bias defaults to taken (static heuristic).
    return bias == biasUnset ? true : bias != 0;
}

bool
AgreePredictor::predict(Addr pc)
{
    const u64 index =
        gshareIndex(pc, history.raw(), historyBits, indexBits);
    const bool agree = agreeTable.predictTaken(index);
    const bool bias = biasOf(pc);
    return agree ? bias : !bias;
}

void
AgreePredictor::update(Addr pc, bool taken)
{
    // Dispatch before any work so the no-sink path keeps nothing
    // live across the probed helper's virtual sink calls (which
    // would force a stack frame on the hot path).
    if (probeSink) [[unlikely]] {
        updateProbed(pc, taken);
        return;
    }
    u8 &bias_entry = biasTable[addressIndex(pc, biasIndexBits)];
    const u64 index =
        gshareIndex(pc, history.raw(), historyBits, indexBits);
    if (bias_entry == biasUnset) {
        // First encounter: the observed outcome becomes the bias.
        bias_entry = taken ? 1 : 0;
    }
    agreeTable.update(index, taken == (bias_entry != 0));
    history.shiftIn(taken);
}

void
AgreePredictor::updateProbed(Addr pc, bool taken)
{
    u8 &bias_entry = biasTable[addressIndex(pc, biasIndexBits)];
    const u64 index =
        gshareIndex(pc, history.raw(), historyBits, indexBits);
    // Resolve with the pre-update bias, as predict() saw it.
    const bool predicted_bias =
        bias_entry == biasUnset ? true : bias_entry != 0;
    const bool agree = agreeTable.predictTaken(index);
    probeSink->onResolved(
        {pc, agree ? predicted_bias : !predicted_bias, taken});
    if (bias_entry == biasUnset) {
        bias_entry = taken ? 1 : 0;
    }
    const bool bias = bias_entry != 0;
    const u8 before = agreeTable.value(index);
    agreeTable.update(index, taken == bias);
    const u8 after = agreeTable.value(index);
    if (before != after) {
        probeSink->onCounterWrite({0, before, after});
    }
    history.shiftIn(taken);
}

void
AgreePredictor::notifyUnconditional(Addr)
{
    history.shiftIn(true);
}

std::string
AgreePredictor::name() const
{
    return "agree-" + formatEntries(agreeTable.size()) + "-h" +
        std::to_string(historyBits);
}

u64
AgreePredictor::storageBits() const
{
    // Counter bits plus one bias bit per bias entry.
    return agreeTable.storageBits() + biasTable.size();
}

void
AgreePredictor::reset()
{
    agreeTable.reset(
        static_cast<u8>(u8(1) << (agreeTable.width() - 1)));
    std::fill(biasTable.begin(), biasTable.end(), biasUnset);
    history.reset();
}

void
AgreePredictor::saveState(std::ostream &os) const
{
    agreeTable.saveState(os);
    putU64(os, biasTable.size());
    for (const u8 entry : biasTable) {
        putU8(os, entry);
    }
    putU64(os, history.raw());
}

void
AgreePredictor::loadState(std::istream &is)
{
    agreeTable.loadState(is);
    const u64 count = getU64(is);
    if (count != biasTable.size()) {
        fatal("agree snapshot: bias table size mismatch (stored " +
              std::to_string(count) + ", predictor has " +
              std::to_string(biasTable.size()) + ")");
    }
    std::vector<u8> restored(biasTable.size());
    for (u8 &entry : restored) {
        entry = getU8(is);
        if (entry > biasUnset) {
            fatal("agree snapshot: invalid bias value");
        }
    }
    biasTable = std::move(restored);
    history.set(getU64(is));
}

} // namespace bpred
