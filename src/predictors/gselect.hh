/**
 * @file
 * gselect (GAs) global-history predictor.
 */

#pragma once

#include "predictors/history.hh"
#include "predictors/predictor.hh"
#include "support/sat_counter.hh"

namespace bpred
{

/**
 * gselect: a tag-less counter table indexed by the *concatenation*
 * of global-history bits (high) and branch-address bits (low) —
 * GAs in Yeh and Patt's taxonomy. With a history length >= the
 * index width, no address bits survive, the degenerate case behind
 * its poor 12-bit-history results in the paper.
 */
class GSelectPredictor : public Predictor
{
  public:
    /**
     * @param index_bits log2 of the table size.
     * @param history_bits Global-history length k.
     * @param counter_bits Counter width (1 or 2).
     */
    GSelectPredictor(unsigned index_bits, unsigned history_bits,
                     unsigned counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    Outcome predictAndUpdate(Addr pc, bool taken) override;
    void replayBlock(const BranchRecord *records, std::size_t count,
                     ReplayCounters &counters,
                     ReplayScratch *scratch) override;
    void notifyUnconditional(Addr pc) override;
    std::string name() const override;
    u64 storageBits() const override { return table.storageBits(); }
    void reset() override;
    bool supportsSnapshot() const override { return true; }
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

    /** History length in bits. */
    unsigned historyBits() const { return historyBits_; }

  private:
    u64 indexOf(Addr pc) const;

    SatCounterArray table;
    GlobalHistory history;
    unsigned indexBits;
    unsigned historyBits_;
};

} // namespace bpred

