/**
 * @file
 * gshare global-history predictor [McFarling '93].
 */

#pragma once

#include "predictors/history.hh"
#include "predictors/predictor.hh"
#include "support/sat_counter.hh"

namespace bpred
{

/**
 * gshare: one tag-less table of 2^n saturating counters indexed by
 * XOR of low-order branch-address bits with the global history
 * (history aligned to the high-order end of the index when shorter
 * than it). This is the paper's reference single-bank organization.
 */
class GSharePredictor : public Predictor
{
  public:
    /**
     * @param index_bits log2 of the table size.
     * @param history_bits Global-history length k.
     * @param counter_bits Counter width (1 or 2).
     */
    GSharePredictor(unsigned index_bits, unsigned history_bits,
                    unsigned counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    Outcome predictAndUpdate(Addr pc, bool taken) override;
    void replayBlock(const BranchRecord *records, std::size_t count,
                     ReplayCounters &counters,
                     ReplayScratch *scratch) override;
    void notifyUnconditional(Addr pc) override;
    std::string name() const override;
    u64 storageBits() const override { return table.storageBits(); }
    void reset() override;
    bool supportsSnapshot() const override { return true; }
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

    /** History length in bits. */
    unsigned historyBits() const { return historyBits_; }

  private:
    u64 indexOf(Addr pc) const;

    /** The whole update() when a probe is attached (kept out of the
     * hot path so the uninstrumented loop stays frameless). */
    void updateProbed(Addr pc, bool taken);

    SatCounterArray table;
    GlobalHistory history;
    unsigned indexBits;
    unsigned historyBits_;
};

} // namespace bpred

