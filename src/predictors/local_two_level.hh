/**
 * @file
 * Per-address two-level adaptive predictor (PAg) [Yeh & Patt].
 */

#pragma once

#include <vector>

#include "predictors/predictor.hh"
#include "support/sat_counter.hh"

namespace bpred
{

/**
 * PAg two-level predictor: a first-level table of per-address local
 * histories (indexed by PC) feeding a shared second-level pattern
 * table of saturating counters (indexed by the local history).
 *
 * The paper discusses per-address schemes as the other major family
 * its technique applies to; this implementation backs the baseline
 * comparison bench and the hybrid predictor.
 */
class LocalTwoLevelPredictor : public Predictor
{
  public:
    /**
     * @param bht_index_bits log2 of the branch-history-table size.
     * @param local_history_bits Local history length (also the
     *        pattern-table index width).
     * @param counter_bits Pattern-table counter width.
     */
    LocalTwoLevelPredictor(unsigned bht_index_bits,
                           unsigned local_history_bits,
                           unsigned counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    std::string name() const override;
    u64 storageBits() const override;
    void reset() override;
    bool supportsSnapshot() const override { return true; }
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

  private:
    u64 bhtIndexOf(Addr pc) const;

    std::vector<u16> historyTable;
    SatCounterArray patternTable;
    unsigned bhtIndexBits;
    unsigned localHistoryBits;
};

} // namespace bpred

