#include "predictors/bimode.hh"

#include "predictors/info_vector.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace bpred
{

BiModePredictor::BiModePredictor(unsigned direction_index_bits,
                                 unsigned history_bits,
                                 unsigned choice_index_bits,
                                 unsigned counter_bits)
    : takenTable(u64(1) << direction_index_bits, counter_bits,
                 // Direction tables start leaning their way.
                 static_cast<u8>(mask(counter_bits))),
      notTakenTable(u64(1) << direction_index_bits, counter_bits, 0),
      choiceTable(u64(1) << choice_index_bits, counter_bits,
                  static_cast<u8>(u8(1) << (counter_bits - 1))),
      directionIndexBits(direction_index_bits),
      historyBits(history_bits),
      choiceIndexBits(choice_index_bits)
{
}

u64
BiModePredictor::directionIndexOf(Addr pc) const
{
    return gshareIndex(pc, history.raw(), historyBits,
                       directionIndexBits);
}

bool
BiModePredictor::predict(Addr pc)
{
    const bool choose_taken =
        choiceTable.predictTaken(addressIndex(pc, choiceIndexBits));
    const u64 index = directionIndexOf(pc);
    return choose_taken ? takenTable.predictTaken(index)
                        : notTakenTable.predictTaken(index);
}

void
BiModePredictor::update(Addr pc, bool taken)
{
    const u64 choice_index = addressIndex(pc, choiceIndexBits);
    const bool choose_taken = choiceTable.predictTaken(choice_index);
    const u64 index = directionIndexOf(pc);

    SatCounterArray &selected =
        choose_taken ? takenTable : notTakenTable;
    const bool selected_correct =
        selected.predictTaken(index) == taken;

    // Only the selected direction table trains — the segregation
    // that keeps each table's population like-minded.
    selected.update(index, taken);

    // Choice partial update: leave the choice alone when it
    // "mischose" but the selected table still got the branch right.
    if (!(choose_taken != taken && selected_correct)) {
        choiceTable.update(choice_index, taken);
    }
    history.shiftIn(taken);
}

void
BiModePredictor::notifyUnconditional(Addr)
{
    history.shiftIn(true);
}

std::string
BiModePredictor::name() const
{
    return "bimode-2x" + formatEntries(takenTable.size()) + "+" +
        formatEntries(choiceTable.size()) + "-h" +
        std::to_string(historyBits);
}

u64
BiModePredictor::storageBits() const
{
    return takenTable.storageBits() + notTakenTable.storageBits() +
        choiceTable.storageBits();
}

void
BiModePredictor::reset()
{
    takenTable.reset(static_cast<u8>(mask(takenTable.width())));
    notTakenTable.reset(0);
    choiceTable.reset(
        static_cast<u8>(u8(1) << (choiceTable.width() - 1)));
    history.reset();
}

void
BiModePredictor::saveState(std::ostream &os) const
{
    takenTable.saveState(os);
    notTakenTable.saveState(os);
    choiceTable.saveState(os);
    putU64(os, history.raw());
}

void
BiModePredictor::loadState(std::istream &is)
{
    takenTable.loadState(is);
    notTakenTable.loadState(is);
    choiceTable.loadState(is);
    history.set(getU64(is));
}

} // namespace bpred
