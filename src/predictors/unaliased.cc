#include "predictors/unaliased.hh"

#include "predictors/info_vector.hh"

namespace bpred
{

UnaliasedPredictor::UnaliasedPredictor(unsigned history_bits,
                                       unsigned counter_bits)
    : historyBits(history_bits), counterBits(counter_bits)
{
}

u64
UnaliasedPredictor::keyOf(Addr pc) const
{
    return packInfoVector(pc, history.raw(), historyBits);
}

bool
UnaliasedPredictor::predict(Addr pc)
{
    const auto it = counters.find(keyOf(pc));
    lastWasCold = it == counters.end();
    // Cold entries have no information; predict taken (the static
    // fallback), but the miss will not be charged as a misprediction.
    lastPrediction = lastWasCold ? true : it->second.predictTaken();
    lastPredictionValid = true;
    return lastPrediction;
}

void
UnaliasedPredictor::update(Addr pc, bool taken)
{
    const u64 key = keyOf(pc);
    if (!lastPredictionValid) {
        // update() without a paired predict(): recompute.
        const auto it = counters.find(key);
        lastWasCold = it == counters.end();
        lastPrediction = lastWasCold ? true : it->second.predictTaken();
    }
    lastPredictionValid = false;

    ++dynamicCount;
    staticBranches.insert(pc);

    if (lastWasCold) {
        ++compulsoryCount;
        SatCounter counter(counterBits);
        counter.setStrong(taken);
        counters.emplace(key, counter);
    } else {
        warmMispredicts.sample(lastPrediction != taken);
        counters.find(key)->second.update(taken);
    }
    history.shiftIn(taken);
}

void
UnaliasedPredictor::notifyUnconditional(Addr)
{
    history.shiftIn(true);
}

std::string
UnaliasedPredictor::name() const
{
    return "unaliased-h" + std::to_string(historyBits) + "-" +
        std::to_string(counterBits) + "bit";
}

u64
UnaliasedPredictor::storageBits() const
{
    return counters.size() * counterBits;
}

void
UnaliasedPredictor::reset()
{
    counters.clear();
    staticBranches.clear();
    history.reset();
    warmMispredicts.reset();
    dynamicCount = 0;
    compulsoryCount = 0;
    lastPredictionValid = false;
}

double
UnaliasedPredictor::substreamRatio() const
{
    return staticBranches.empty()
        ? 0.0
        : static_cast<double>(counters.size()) /
            static_cast<double>(staticBranches.size());
}

double
UnaliasedPredictor::compulsoryAliasingRatio() const
{
    return dynamicCount == 0
        ? 0.0
        : static_cast<double>(compulsoryCount) /
            static_cast<double>(dynamicCount);
}

} // namespace bpred
