#include "predictors/unaliased.hh"

#include <algorithm>
#include <vector>

#include "predictors/info_vector.hh"
#include "support/logging.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace bpred
{

UnaliasedPredictor::UnaliasedPredictor(unsigned history_bits,
                                       unsigned counter_bits)
    : historyBits(history_bits), counterBits(counter_bits)
{
}

u64
UnaliasedPredictor::keyOf(Addr pc) const
{
    return packInfoVector(pc, history.raw(), historyBits);
}

bool
UnaliasedPredictor::predict(Addr pc)
{
    const auto it = counters.find(keyOf(pc));
    lastWasCold = it == counters.end();
    // Cold entries have no information; predict taken (the static
    // fallback), but the miss will not be charged as a misprediction.
    lastPrediction = lastWasCold ? true : it->second.predictTaken();
    lastPredictionValid = true;
    return lastPrediction;
}

void
UnaliasedPredictor::update(Addr pc, bool taken)
{
    const u64 key = keyOf(pc);
    if (!lastPredictionValid) {
        // update() without a paired predict(): recompute.
        const auto it = counters.find(key);
        lastWasCold = it == counters.end();
        lastPrediction = lastWasCold ? true : it->second.predictTaken();
    }
    lastPredictionValid = false;

    ++dynamicCount;
    staticBranches.insert(pc);

    if (lastWasCold) {
        ++compulsoryCount;
        SatCounter counter(counterBits);
        counter.setStrong(taken);
        counters.emplace(key, counter);
    } else {
        warmMispredicts.sample(lastPrediction != taken);
        counters.find(key)->second.update(taken);
    }
    history.shiftIn(taken);
}

void
UnaliasedPredictor::notifyUnconditional(Addr)
{
    history.shiftIn(true);
}

std::string
UnaliasedPredictor::name() const
{
    return "unaliased-h" + std::to_string(historyBits) + "-" +
        std::to_string(counterBits) + "bit";
}

u64
UnaliasedPredictor::storageBits() const
{
    return counters.size() * counterBits;
}

void
UnaliasedPredictor::reset()
{
    counters.clear();
    staticBranches.clear();
    history.reset();
    warmMispredicts.reset();
    dynamicCount = 0;
    compulsoryCount = 0;
    lastPredictionValid = false;
}

void
UnaliasedPredictor::saveState(std::ostream &os) const
{
    std::vector<std::pair<u64, u8>> sorted_counters;
    sorted_counters.reserve(counters.size());
    for (const auto &[key, counter] : counters) {
        sorted_counters.emplace_back(key, counter.value());
    }
    std::sort(sorted_counters.begin(), sorted_counters.end());
    putU64(os, sorted_counters.size());
    for (const auto &[key, value] : sorted_counters) {
        putU64(os, key);
        putU8(os, value);
    }

    std::vector<Addr> sorted_branches(staticBranches.begin(),
                                      staticBranches.end());
    std::sort(sorted_branches.begin(), sorted_branches.end());
    putU64(os, sorted_branches.size());
    for (const Addr pc : sorted_branches) {
        putU64(os, pc);
    }

    putU64(os, warmMispredicts.events());
    putU64(os, warmMispredicts.total());
    putU64(os, dynamicCount);
    putU64(os, compulsoryCount);
    putU64(os, history.raw());
}

void
UnaliasedPredictor::loadState(std::istream &is)
{
    const u64 counter_count = getU64(is);
    std::unordered_map<u64, SatCounter> restored_counters;
    restored_counters.reserve(
        static_cast<std::size_t>(counter_count));
    for (u64 i = 0; i < counter_count; ++i) {
        const u64 key = getU64(is);
        const u8 value = getU8(is);
        if (value > mask(counterBits)) {
            fatal("unaliased snapshot: counter value exceeds " +
                  std::to_string(counterBits) + " bits");
        }
        const bool inserted =
            restored_counters.emplace(key, SatCounter(counterBits, value))
                .second;
        if (!inserted) {
            fatal("unaliased snapshot: duplicate counter key");
        }
    }

    const u64 branch_count = getU64(is);
    std::unordered_set<Addr> restored_branches;
    restored_branches.reserve(
        static_cast<std::size_t>(branch_count));
    for (u64 i = 0; i < branch_count; ++i) {
        if (!restored_branches.insert(getU64(is)).second) {
            fatal("unaliased snapshot: duplicate branch address");
        }
    }

    const u64 warm_events = getU64(is);
    const u64 warm_total = getU64(is);
    if (warm_events > warm_total) {
        fatal("unaliased snapshot: inconsistent misprediction "
              "tallies");
    }
    const u64 dynamic_count = getU64(is);
    const u64 compulsory_count = getU64(is);
    const u64 history_raw = getU64(is);

    counters = std::move(restored_counters);
    staticBranches = std::move(restored_branches);
    warmMispredicts.restore(warm_events, warm_total);
    dynamicCount = dynamic_count;
    compulsoryCount = compulsory_count;
    history.set(history_raw);
    // The predict()/update() latch does not survive a checkpoint
    // boundary; update() recomputes when unpaired.
    lastPredictionValid = false;
}

double
UnaliasedPredictor::substreamRatio() const
{
    return staticBranches.empty()
        ? 0.0
        : static_cast<double>(counters.size()) /
            static_cast<double>(staticBranches.size());
}

double
UnaliasedPredictor::compulsoryAliasingRatio() const
{
    return dynamicCount == 0
        ? 0.0
        : static_cast<double>(compulsoryCount) /
            static_cast<double>(dynamicCount);
}

} // namespace bpred
