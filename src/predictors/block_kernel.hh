/**
 * @file
 * The shared per-block replay kernel behind every
 * Predictor::replayBlock() override.
 *
 * Each concrete predictor defines a private BlockState: its hot
 * state (history register, raw counter pointers, config fields)
 * lifted into plain locals whose addresses never escape. The kernel
 * template instantiates once per state type and inlines its step,
 * so the inner loop runs with zero virtual calls — the block's
 * single replayBlock() dispatch is the only one — AND the compiler
 * can keep the lifted state in registers across the whole block:
 * counter stores are char-typed and would otherwise force every
 * member field to be re-loaded from memory after each branch.
 *
 * A BlockState provides:
 *   bool step(Addr pc, bool taken)  — the fused resolve, returning
 *                                     the pre-update prediction;
 *   void unconditional(Addr pc)     — the notifyUnconditional
 *                                     equivalent;
 *   void commit()                   — write mutated state back to
 *                                     the predictor.
 * step()/unconditional() must mirror the scalar fused path exactly;
 * test_predictor_contract pins block replay to the scalar loop for
 * every registered scheme.
 *
 * Overrides must run the kernel only on the no-probe path (a probed
 * predictor delegates to the scalar Predictor::replayBlock() so
 * event streams stay identical, mirroring the fused-path contract).
 */

#pragma once

#include <cstddef>

#include "predictors/predictor.hh"

namespace bpred
{

/**
 * Replay @p count records through @p state (a predictor's
 * BlockState, constructed fresh for this block), committing the
 * state back and adding the block's tallies to @p counters.
 */
template <typename BlockState>
void
replayBlockWithState(BlockState state, const BranchRecord *records,
                     std::size_t count, ReplayCounters &counters)
{
    u64 conditionals = 0;
    u64 mispredicts = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const BranchRecord &record = records[i];
        if (!record.conditional) {
            state.unconditional(record.pc);
            continue;
        }
        const bool prediction = state.step(record.pc, record.taken);
        ++conditionals;
        // Arithmetic, not a branch: whether a prediction was right
        // is data, and maximally unpredictable data for exactly the
        // records that make a predictor study interesting.
        mispredicts += u64(prediction != record.taken);
    }
    state.commit();
    counters.conditionals += conditionals;
    counters.mispredicts += mispredicts;
}

} // namespace bpred
