#include "predictors/hybrid.hh"

#include <cassert>

#include "predictors/block_kernel.hh"
#include "predictors/block_kernel_simd.hh"
#include "predictors/info_vector.hh"
#include "predictors/replay_scratch.hh"
#include "support/logging.hh"
#include "support/probe.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace bpred
{

namespace
{

/**
 * Hybrid hot state (see block_kernel.hh): the chooser view and its
 * index width stay in registers; the type-erased components remain
 * virtual calls — one dispatch per component per branch instead of
 * two plus the driver's own. commit() clears the predictor's cached
 * split-path prediction exactly when the scalar fused loop would
 * have (i.e. only if a conditional was actually stepped).
 */
struct HybridBlockState
{
    SatCounterArray::View chooser;
    unsigned chooserIndexBits;
    Predictor *first;
    Predictor *second;
    bool *havePredictionOut;
    bool steppedConditional = false;

    bool
    step(Addr pc, bool taken)
    {
        const u64 chooser_index = addressIndex(pc, chooserIndexBits);
        const bool use_first = chooser.predictTaken(chooser_index);
        const bool first_prediction =
            first->predictAndUpdate(pc, taken).prediction;
        const bool second_prediction =
            second->predictAndUpdate(pc, taken).prediction;
        if (first_prediction != second_prediction) {
            chooser.update(chooser_index, first_prediction == taken);
        }
        steppedConditional = true;
        return use_first ? first_prediction : second_prediction;
    }

    void
    unconditional(Addr pc)
    {
        first->notifyUnconditional(pc);
        second->notifyUnconditional(pc);
    }

    void
    commit()
    {
        if (steppedConditional) {
            *havePredictionOut = false;
        }
    }
};

} // namespace

HybridPredictor::HybridPredictor(std::unique_ptr<Predictor> first,
                                 std::unique_ptr<Predictor> second,
                                 unsigned chooser_index_bits)
    : firstComponent(std::move(first)),
      secondComponent(std::move(second)),
      chooser(u64(1) << chooser_index_bits, 2,
              2 /* weakly prefer first */),
      chooserIndexBits(chooser_index_bits)
{
    assert(firstComponent && secondComponent);
}

bool
HybridPredictor::predict(Addr pc)
{
    firstPrediction = firstComponent->predict(pc);
    secondPrediction = secondComponent->predict(pc);
    predictedPc = pc;
    havePrediction = true;
    const bool use_first =
        chooser.predictTaken(addressIndex(pc, chooserIndexBits));
    return use_first ? firstPrediction : secondPrediction;
}

void
HybridPredictor::update(Addr pc, bool taken)
{
    if (!havePrediction || predictedPc != pc) {
        // Tolerate a missing predict() (e.g. warm-up replay): obtain
        // component predictions now so the chooser can still train.
        firstPrediction = firstComponent->predict(pc);
        secondPrediction = secondComponent->predict(pc);
    }
    havePrediction = false;

    if (probeSink) [[unlikely]] {
        const bool use_first =
            chooser.predictTaken(addressIndex(pc, chooserIndexBits));
        const bool overall =
            use_first ? firstPrediction : secondPrediction;
        probeSink->onResolved({pc, overall, taken});
        probeSink->onChoice({use_first,
                             firstPrediction != secondPrediction,
                             overall == taken});
    }

    if (firstPrediction != secondPrediction) {
        // Strengthen toward the component that was right.
        chooser.update(addressIndex(pc, chooserIndexBits),
                       firstPrediction == taken);
    }
    firstComponent->update(pc, taken);
    secondComponent->update(pc, taken);
}

Outcome
HybridPredictor::predictAndUpdate(Addr pc, bool taken)
{
    if (probeSink) [[unlikely]] {
        // Off the hot loop; reuse the split implementation so event
        // order stays identical to predict()+update().
        const bool prediction = predict(pc);
        update(pc, taken);
        return {prediction};
    }
    // One chooser index computation and one pass over each
    // component: the fused component calls return the pre-update
    // predictions the chooser needs while training the components.
    // The chooser table is independent of both components, so
    // reading it here (instead of before the component updates)
    // sees the same counter value the split path read in predict().
    const u64 chooser_index = addressIndex(pc, chooserIndexBits);
    const bool use_first = chooser.predictTaken(chooser_index);
    const bool first = firstComponent->predictAndUpdate(pc, taken)
                           .prediction;
    const bool second = secondComponent->predictAndUpdate(pc, taken)
                            .prediction;
    if (first != second) {
        chooser.update(chooser_index, first == taken);
    }
    havePrediction = false;
    return {use_first ? first : second};
}

void
HybridPredictor::replayBlock(const BranchRecord *records,
                             std::size_t count,
                             ReplayCounters &counters,
                             ReplayScratch *scratch)
{
    if (probeSink) [[unlikely]] {
        // Scalar delegation keeps the event stream bit-identical.
        Predictor::replayBlock(records, count, counters);
        return;
    }
    if (scratch && simdIndexWidthOk(chooserIndexBits) &&
        resolveSimdMode(scratch->mode) == SimdMode::Avx2 &&
        simdWantsCounterPrefetch(chooser.size())) {
        // Phase-split pays for itself here only through the chooser
        // prefetch: the address index is one shift-and-mask, so for
        // an L1-resident chooser the staging pass is pure overhead
        // on top of the dominant virtual component calls — those
        // configurations take the fused kernel below instead.
        // Phase-split for the chooser only: its address index has no
        // history dependence, so the chooser indices vectorize up
        // front, one L1-resident tile at a time (staging the whole
        // block would stream ~20x the tile through the scratch
        // arrays). The type-erased components still resolve per
        // branch (their virtual fused step dominates here), so the
        // resolve walks the tile's original records with a cursor
        // into the precomputed indices.
        SatCounterArray::View chooser_view = chooser.view();
        u64 conditionals = 0;
        u64 mispredicts = 0;
        for (std::size_t tile = 0; tile < count;
             tile += simdTileRecords) {
            const std::size_t tile_count =
                std::min(simdTileRecords, count - tile);
            const BranchRecord *tile_records = records + tile;
            scratch->ensure(tile_count, 1);
            u64 history_out = 0;
            const std::size_t chooser_count = compactConditionals(
                tile_records, tile_count, 0, *scratch, &history_out);
            fillAddressIndices(SimdMode::Avx2, scratch->pc.data(),
                               chooser_count, chooserIndexBits,
                               scratch->indices[0].data());
            const u32 *chooser_idx = scratch->indices[0].data();
            std::size_t cursor = 0;
            for (std::size_t i = 0; i < tile_count; ++i) {
                const BranchRecord &record = tile_records[i];
                if (!record.conditional) {
                    firstComponent->notifyUnconditional(record.pc);
                    secondComponent->notifyUnconditional(record.pc);
                    continue;
                }
                if (cursor + simdPrefetchDistance < chooser_count) {
                    __builtin_prefetch(
                        &chooser_view.at(
                            chooser_idx[cursor +
                                        simdPrefetchDistance]),
                        1);
                }
                u64 chooser_index = chooser_idx[cursor];
#ifdef BPRED_CHECKED
                const u64 expected =
                    u64(addressIndex(record.pc, chooserIndexBits));
                if (chooser_index != expected) [[unlikely]] {
                    noteIndexRepair();
                    chooser_index = expected;
                }
#endif
                const bool use_first =
                    chooser_view.predictTaken(chooser_index);
                const bool first_prediction =
                    firstComponent
                        ->predictAndUpdate(record.pc, record.taken)
                        .prediction;
                const bool second_prediction =
                    secondComponent
                        ->predictAndUpdate(record.pc, record.taken)
                        .prediction;
                if (first_prediction != second_prediction) {
                    chooser_view.update(chooser_index,
                                        first_prediction ==
                                            record.taken);
                }
                const bool prediction =
                    use_first ? first_prediction : second_prediction;
                ++conditionals;
                mispredicts += u64(prediction != record.taken);
                ++cursor;
            }
        }
        if (conditionals != 0) {
            havePrediction = false;
        }
        counters.conditionals += conditionals;
        counters.mispredicts += mispredicts;
        return;
    }
    // The kernel devirtualizes the hybrid's own fused step (chooser
    // read + train); the component calls inside it stay virtual —
    // components are type-erased (see HybridBlockState).
    replayBlockWithState(
        HybridBlockState{chooser.view(), chooserIndexBits,
                         firstComponent.get(), secondComponent.get(),
                         &havePrediction},
        records, count, counters);
}

void
HybridPredictor::notifyUnconditional(Addr pc)
{
    firstComponent->notifyUnconditional(pc);
    secondComponent->notifyUnconditional(pc);
}

std::string
HybridPredictor::name() const
{
    return "hybrid(" + firstComponent->name() + "," +
        secondComponent->name() + ")";
}

u64
HybridPredictor::storageBits() const
{
    return firstComponent->storageBits() +
        secondComponent->storageBits() + chooser.storageBits();
}

void
HybridPredictor::reset()
{
    firstComponent->reset();
    secondComponent->reset();
    chooser.reset(2);
    havePrediction = false;
}

bool
HybridPredictor::supportsSnapshot() const
{
    return firstComponent->supportsSnapshot() &&
        secondComponent->supportsSnapshot();
}

void
HybridPredictor::saveState(std::ostream &os) const
{
    // Snapshots are taken at branch boundaries, where the cached
    // component predictions are dead state — only the tables and
    // chooser travel.
    firstComponent->saveState(os);
    secondComponent->saveState(os);
    chooser.saveState(os);
}

void
HybridPredictor::loadState(std::istream &is)
{
    firstComponent->loadState(is);
    secondComponent->loadState(is);
    chooser.loadState(is);
    havePrediction = false;
}

} // namespace bpred
