#include "predictors/hybrid.hh"

#include <cassert>

#include "predictors/info_vector.hh"
#include "support/logging.hh"
#include "support/probe.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace bpred
{

HybridPredictor::HybridPredictor(std::unique_ptr<Predictor> first,
                                 std::unique_ptr<Predictor> second,
                                 unsigned chooser_index_bits)
    : firstComponent(std::move(first)),
      secondComponent(std::move(second)),
      chooser(u64(1) << chooser_index_bits, 2,
              2 /* weakly prefer first */),
      chooserIndexBits(chooser_index_bits)
{
    assert(firstComponent && secondComponent);
}

bool
HybridPredictor::predict(Addr pc)
{
    firstPrediction = firstComponent->predict(pc);
    secondPrediction = secondComponent->predict(pc);
    predictedPc = pc;
    havePrediction = true;
    const bool use_first =
        chooser.predictTaken(addressIndex(pc, chooserIndexBits));
    return use_first ? firstPrediction : secondPrediction;
}

void
HybridPredictor::update(Addr pc, bool taken)
{
    if (!havePrediction || predictedPc != pc) {
        // Tolerate a missing predict() (e.g. warm-up replay): obtain
        // component predictions now so the chooser can still train.
        firstPrediction = firstComponent->predict(pc);
        secondPrediction = secondComponent->predict(pc);
    }
    havePrediction = false;

    if (probeSink) [[unlikely]] {
        const bool use_first =
            chooser.predictTaken(addressIndex(pc, chooserIndexBits));
        const bool overall =
            use_first ? firstPrediction : secondPrediction;
        probeSink->onResolved({pc, overall, taken});
        probeSink->onChoice({use_first,
                             firstPrediction != secondPrediction,
                             overall == taken});
    }

    if (firstPrediction != secondPrediction) {
        // Strengthen toward the component that was right.
        chooser.update(addressIndex(pc, chooserIndexBits),
                       firstPrediction == taken);
    }
    firstComponent->update(pc, taken);
    secondComponent->update(pc, taken);
}

Outcome
HybridPredictor::predictAndUpdate(Addr pc, bool taken)
{
    if (probeSink) [[unlikely]] {
        // Off the hot loop; reuse the split implementation so event
        // order stays identical to predict()+update().
        const bool prediction = predict(pc);
        update(pc, taken);
        return {prediction};
    }
    // One chooser index computation and one pass over each
    // component: the fused component calls return the pre-update
    // predictions the chooser needs while training the components.
    // The chooser table is independent of both components, so
    // reading it here (instead of before the component updates)
    // sees the same counter value the split path read in predict().
    const u64 chooser_index = addressIndex(pc, chooserIndexBits);
    const bool use_first = chooser.predictTaken(chooser_index);
    const bool first = firstComponent->predictAndUpdate(pc, taken)
                           .prediction;
    const bool second = secondComponent->predictAndUpdate(pc, taken)
                            .prediction;
    if (first != second) {
        chooser.update(chooser_index, first == taken);
    }
    havePrediction = false;
    return {use_first ? first : second};
}

void
HybridPredictor::notifyUnconditional(Addr pc)
{
    firstComponent->notifyUnconditional(pc);
    secondComponent->notifyUnconditional(pc);
}

std::string
HybridPredictor::name() const
{
    return "hybrid(" + firstComponent->name() + "," +
        secondComponent->name() + ")";
}

u64
HybridPredictor::storageBits() const
{
    return firstComponent->storageBits() +
        secondComponent->storageBits() + chooser.storageBits();
}

void
HybridPredictor::reset()
{
    firstComponent->reset();
    secondComponent->reset();
    chooser.reset(2);
    havePrediction = false;
}

bool
HybridPredictor::supportsSnapshot() const
{
    return firstComponent->supportsSnapshot() &&
        secondComponent->supportsSnapshot();
}

void
HybridPredictor::saveState(std::ostream &os) const
{
    // Snapshots are taken at branch boundaries, where the cached
    // component predictions are dead state — only the tables and
    // chooser travel.
    firstComponent->saveState(os);
    secondComponent->saveState(os);
    chooser.saveState(os);
}

void
HybridPredictor::loadState(std::istream &is)
{
    firstComponent->loadState(is);
    secondComponent->loadState(is);
    chooser.loadState(is);
    havePrediction = false;
}

} // namespace bpred
