#include "predictors/gshare.hh"

#include "predictors/block_kernel.hh"
#include "predictors/block_kernel_simd.hh"
#include "predictors/info_vector.hh"
#include "predictors/replay_scratch.hh"
#include "support/probe.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace bpred
{

namespace
{

/**
 * gshare hot state lifted into locals (see block_kernel.hh): the
 * counter view, a by-value copy of the history register, and the
 * index geometry stay in registers across the block; commit()
 * publishes the advanced history back to the predictor.
 */
struct GShareBlockState
{
    SatCounterArray::View table;
    GlobalHistory history;
    unsigned historyBits;
    unsigned indexBits;
    GlobalHistory *historyOut;

    bool
    step(Addr pc, bool taken)
    {
        const u64 index =
            gshareIndex(pc, history.raw(), historyBits, indexBits);
        const bool prediction = table.predictTaken(index);
        table.update(index, taken);
        history.shiftIn(taken);
        return prediction;
    }

    void unconditional(Addr) { history.shiftIn(true); }
    void commit() { *historyOut = history; }
};

} // namespace

GSharePredictor::GSharePredictor(unsigned index_bits,
                                 unsigned history_bits,
                                 unsigned counter_bits)
    : table(u64(1) << index_bits, counter_bits),
      indexBits(index_bits),
      historyBits_(history_bits)
{
}

u64
GSharePredictor::indexOf(Addr pc) const
{
    return gshareIndex(pc, history.raw(), historyBits_, indexBits);
}

bool
GSharePredictor::predict(Addr pc)
{
    return table.predictTaken(indexOf(pc));
}

void
GSharePredictor::update(Addr pc, bool taken)
{
    // Dispatch before any work so the no-sink path keeps nothing
    // live across a call with unknown clobbers (the probed helper's
    // virtual sink calls) — that would force a stack frame on the
    // hot path.
    if (probeSink) [[unlikely]] {
        updateProbed(pc, taken);
        return;
    }
    table.update(indexOf(pc), taken);
    history.shiftIn(taken);
}

Outcome
GSharePredictor::predictAndUpdate(Addr pc, bool taken)
{
    if (probeSink) [[unlikely]] {
        // Off the hot loop; reuse the split implementation so event
        // order stays identical to predict()+update().
        const bool prediction = predict(pc);
        updateProbed(pc, taken);
        return {prediction};
    }
    const u64 index = indexOf(pc);
    const bool prediction = table.predictTaken(index);
    table.update(index, taken);
    history.shiftIn(taken);
    return {prediction};
}

void
GSharePredictor::replayBlock(const BranchRecord *records,
                             std::size_t count,
                             ReplayCounters &counters,
                             ReplayScratch *scratch)
{
    if (probeSink) [[unlikely]] {
        // Scalar delegation keeps the event stream bit-identical.
        Predictor::replayBlock(records, count, counters);
        return;
    }
    if (scratch && simdIndexWidthOk(indexBits) &&
        resolveSimdMode(scratch->mode) == SimdMode::Avx2) {
        // Phase-split path (block_kernel_simd.hh): history is
        // outcome-determined, so compaction's speculative advance is
        // exact and each tile's indices vectorize up front.
        const bool prefetch = simdWantsCounterPrefetch(table.size());
        const u64 history_out = replayTiled(
            records, count, history.raw(), *scratch, 1,
            [&](std::size_t conditionals) {
                fillGshareIndices(SimdMode::Avx2, scratch->pc.data(),
                                  scratch->history.data(),
                                  conditionals, historyBits_,
                                  indexBits,
                                  scratch->indices[0].data());
                resolveSingleTable(
                    table.view(), scratch->indices[0].data(),
                    scratch->taken.data(), conditionals, prefetch,
                    counters, [&](std::size_t j) {
                        return u64(gshareIndex(scratch->pc[j],
                                               scratch->history[j],
                                               historyBits_,
                                               indexBits));
                    });
            });
        history.set(history_out);
        return;
    }
    replayBlockWithState(
        GShareBlockState{table.view(), history, historyBits_, indexBits,
                         &history},
        records, count, counters);
}

void
GSharePredictor::updateProbed(Addr pc, bool taken)
{
    const u64 index = indexOf(pc);
    probeSink->onResolved({pc, table.predictTaken(index), taken});
    const u8 before = table.value(index);
    table.update(index, taken);
    const u8 after = table.value(index);
    if (before != after) {
        probeSink->onCounterWrite({0, before, after});
    }
    history.shiftIn(taken);
}

void
GSharePredictor::notifyUnconditional(Addr)
{
    history.shiftIn(true);
}

std::string
GSharePredictor::name() const
{
    return "gshare-" + formatEntries(table.size()) + "-h" +
        std::to_string(historyBits_);
}

void
GSharePredictor::reset()
{
    table.reset();
    history.reset();
}

void
GSharePredictor::saveState(std::ostream &os) const
{
    table.saveState(os);
    putU64(os, history.raw());
}

void
GSharePredictor::loadState(std::istream &is)
{
    table.loadState(is);
    history.set(getU64(is));
}

} // namespace bpred
