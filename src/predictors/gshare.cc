#include "predictors/gshare.hh"

#include "predictors/info_vector.hh"
#include "support/table.hh"

namespace bpred
{

GSharePredictor::GSharePredictor(unsigned index_bits,
                                 unsigned history_bits,
                                 unsigned counter_bits)
    : table(u64(1) << index_bits, counter_bits),
      indexBits(index_bits),
      historyBits_(history_bits)
{
}

u64
GSharePredictor::indexOf(Addr pc) const
{
    return gshareIndex(pc, history.raw(), historyBits_, indexBits);
}

bool
GSharePredictor::predict(Addr pc)
{
    return table.predictTaken(indexOf(pc));
}

void
GSharePredictor::update(Addr pc, bool taken)
{
    table.update(indexOf(pc), taken);
    history.shiftIn(taken);
}

void
GSharePredictor::notifyUnconditional(Addr)
{
    history.shiftIn(true);
}

std::string
GSharePredictor::name() const
{
    return "gshare-" + formatEntries(table.size()) + "-h" +
        std::to_string(historyBits_);
}

void
GSharePredictor::reset()
{
    table.reset();
    history.reset();
}

} // namespace bpred
